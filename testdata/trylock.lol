BTW §V lock fragment: trylock first (IM MESIN WIF sets IT), fall back to
BTW the blocking acquire, bump the shared tally, release. Each PE reports
BTW its own completion, so grouped output is deterministic under races.
HAI 1.2
WE HAS A tally ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A pe ITZ A NUMBR AN ITZ ME
HUGZ
IM MESIN WIF tally, O RLY?
YA RLY
  TXT MAH BFF 0, UR tally R SUM OF UR tally AN 1
  DUN MESIN WIF tally
NO WAI
  IM SRSLY MESIN WIF tally
  TXT MAH BFF 0, UR tally R SUM OF UR tally AN 1
  DUN MESIN WIF tally
OIC
HUGZ
VISIBLE "PE :{pe} DUN MESIN"
KTHXBYE
