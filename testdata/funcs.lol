BTW Table I modular programming: recursion (gcd), multiple return paths
BTW (clamp), and a fall-off-the-end return (greet returns IT).
HAI 1.2
HOW IZ I gcd YR a AN YR b
  BOTH SAEM b AN 0, O RLY?
  YA RLY
    FOUND YR a
  OIC
  FOUND YR I IZ gcd YR b AN YR MOD OF a AN b MKAY
IF U SAY SO
HOW IZ I clamp YR x AN YR lo AN YR hi
  SMALLR x AN lo, O RLY?
  YA RLY
    FOUND YR lo
  OIC
  BIGGER x AN hi, O RLY?
  YA RLY
    FOUND YR hi
  OIC
  FOUND YR x
IF U SAY SO
HOW IZ I greet
  SMOOSH "O HAI" AN "!!!" MKAY
IF U SAY SO
VISIBLE I IZ gcd YR 252 AN YR 105 MKAY
VISIBLE I IZ clamp YR 9 AN YR 0 AN YR 10 MKAY
VISIBLE I IZ clamp YR -7 AN YR 0 AN YR 5 MKAY
VISIBLE I IZ clamp YR 12 AN YR 1 AN YR 5 MKAY
VISIBLE I IZ greet MKAY
KTHXBYE
