BTW §VI.B: np concurrent increments of PE 0's shared counter, made exact
BTW by the implicit lock that AN IM SHARIN IT attaches to the symbol.
HAI 1.2
WE HAS A counter ITZ SRSLY A NUMBR AN IM SHARIN IT
HUGZ
TXT MAH BFF 0 AN STUFF
  IM SRSLY MESIN WIF counter
  UR counter R SUM OF UR counter AN 1
  DUN MESIN WIF counter
TTYL
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE "COUNTER IZ :{counter}"
OIC
KTHXBYE
