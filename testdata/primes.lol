BTW Distributed trial-division sieve: PE k tests 2+k, 2+k+np, ... below
BTW 100, then PE 0 gathers the per-PE counts and the largest prime seen.
HAI 1.2
I HAS A pe ITZ A NUMBR AN ITZ ME
WE HAS A cnt ITZ SRSLY A NUMBR
WE HAS A big ITZ SRSLY A NUMBR
I HAS A n ITZ A NUMBR AN ITZ SUM OF 2 AN pe
I HAS A d ITZ A NUMBR
IM IN YR huntin UPPIN YR iter WILE SMALLR n AN 100
  I HAS A izprime ITZ A NUMBR
  izprime R 1
  IM IN YR testin UPPIN YR t WILE SMALLR PRODUKT OF SUM OF t AN 2 AN SUM OF t AN 2 AN SUM OF n AN 1
    d R SUM OF t AN 2
    BOTH SAEM MOD OF n AN d AN 0, O RLY?
    YA RLY
      izprime R 0
      GTFO
    OIC
  IM OUTTA YR testin
  BOTH SAEM izprime AN 1, O RLY?
  YA RLY
    cnt R SUM OF cnt AN 1
    BIGGER n AN big, O RLY?
    YA RLY
      big R n
    OIC
  OIC
  n R SUM OF n AN MAH FRENZ
IM OUTTA YR huntin
HUGZ
BOTH SAEM pe AN 0, O RLY?
YA RLY
  I HAS A total ITZ A NUMBR
  I HAS A best ITZ A NUMBR
  IM IN YR gatherin UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    I HAS A c ITZ A NUMBR
    I HAS A b ITZ A NUMBR
    TXT MAH BFF k AN STUFF
      c R UR cnt
      b R UR big
    TTYL
    total R SUM OF total AN c
    BIGGER b AN best, O RLY?
    YA RLY
      best R b
    OIC
  IM OUTTA YR gatherin
  VISIBLE "FOUND :{total} PRIMEZ"
  VISIBLE "LAST WUN WUZ :{best}"
  BOTH SAEM total AN 25, O RLY?
  YA RLY
    VISIBLE "DATS RITE"
  NO WAI
    VISIBLE "SOMETHING BORKED"
  OIC
OIC
KTHXBYE
