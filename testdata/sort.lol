BTW Odd-even transposition sort across PEs. Every PE holds one value,
BTW (7*(ME+3)) mod 10; after MAH FRENZ compare-exchange phases the values
BTW are globally sorted. The left PE of each active pair does both sides
BTW of the exchange, so no two PEs ever write the same cell in a phase.
HAI 1.2
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ
WE HAS A val ITZ SRSLY A NUMBR
val R MOD OF PRODUKT OF 7 AN SUM OF pe AN 3 AN 10
HUGZ
IM IN YR phase UPPIN YR p TIL BOTH SAEM p AN n_pes
  I HAS A active ITZ A NUMBR
  active R MOD OF SUM OF pe AN p AN 2
  I HAS A partner ITZ A NUMBR AN ITZ SUM OF pe AN 1
  BOTH OF BOTH SAEM active AN 0 AN SMALLR partner AN n_pes, O RLY?
  YA RLY
    I HAS A thar ITZ A NUMBR
    TXT MAH BFF partner, thar R UR val
    BIGGER val AN thar, O RLY?
    YA RLY
      TXT MAH BFF partner, UR val R MAH val
      val R thar
    OIC
  OIC
  HUGZ
IM OUTTA YR phase
VISIBLE "PE :{pe} HAS :{val}"
KTHXBYE
