BTW 1D heat diffusion with halo exchange built from the paper's
BTW primitives: 8 cells per PE, 20 Jacobi steps of
BTW u[i] += 0.5 * (left - 2*u[i] + right), with a constant hot ghost cell
BTW of 100.0 at PE 0's left edge and a cold 0.0 ghost past the last PE.
HAI 1.2
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A last_pe ITZ A NUMBR AN ITZ DIFF OF MAH FRENZ AN 1
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 8
I HAS A new ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 8
I HAS A lhalo ITZ SRSLY A NUMBAR
I HAS A rhalo ITZ SRSLY A NUMBAR
I HAS A left_pe ITZ A NUMBR AN ITZ DIFF OF pe AN 1
I HAS A right_pe ITZ A NUMBR AN ITZ SUM OF pe AN 1
HUGZ
IM IN YR steppin UPPIN YR s TIL BOTH SAEM s AN 20
  BOTH SAEM pe AN 0, O RLY?
  YA RLY
    lhalo R 100.0
  NO WAI
    TXT MAH BFF left_pe, lhalo R UR u'Z 7
  OIC
  BOTH SAEM pe AN last_pe, O RLY?
  YA RLY
    rhalo R 0.0
  NO WAI
    TXT MAH BFF right_pe, rhalo R UR u'Z 0
  OIC
  IM IN YR sweepin UPPIN YR i TIL BOTH SAEM i AN 8
    I HAS A l ITZ SRSLY A NUMBAR
    I HAS A r ITZ SRSLY A NUMBAR
    BOTH SAEM i AN 0, O RLY?
    YA RLY
      l R lhalo
    NO WAI
      l R u'Z DIFF OF i AN 1
    OIC
    BOTH SAEM i AN 7, O RLY?
    YA RLY
      r R rhalo
    NO WAI
      r R u'Z SUM OF i AN 1
    OIC
    new'Z i R SUM OF u'Z i AN PRODUKT OF 0.5 AN SUM OF DIFF OF l AN PRODUKT OF 2.0 AN u'Z i AN r
  IM OUTTA YR sweepin
  HUGZ
  IM IN YR copyin UPPIN YR i TIL BOTH SAEM i AN 8
    u'Z i R new'Z i
  IM OUTTA YR copyin
  HUGZ
IM OUTTA YR steppin
I HAS A lo ITZ SRSLY A NUMBAR AN ITZ u'Z 0
I HAS A hi ITZ SRSLY A NUMBAR AN ITZ u'Z 7
VISIBLE "PE :{pe} EDGE TEMPZ :{lo} :{hi}"
KTHXBYE
