BTW §VI.A ring exchange, race-free form: every PE fills its own block and
BTW pulls its ring successor's block into a second symmetric array.
HAI 1.2
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ
WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32
WE HAS A recv ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32
I HAS A next_pe ITZ A NUMBR AN ITZ SUM OF pe AN 1
next_pe R MOD OF next_pe AN n_pes
IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN 32
  array'Z i R SUM OF PRODUKT OF pe AN 100 AN i
IM OUTTA YR fill
HUGZ
TXT MAH BFF next_pe, MAH recv R UR array
HUGZ
I HAS A lo ITZ A NUMBR AN ITZ recv'Z 0
I HAS A hi ITZ A NUMBR AN ITZ recv'Z 31
VISIBLE "PE :{pe} HAZ :{lo} THRU :{hi}"
KTHXBYE
