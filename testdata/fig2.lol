BTW Figure 2: the barrier-synchronized neighbour exchange.
BTW Every PE computes a, puts it into its ring successor's b, and after
BTW the second HUGZ reads the deterministic sum c = a + b.
HAI 1.2
WE HAS A a ITZ SRSLY A NUMBR
WE HAS A b ITZ SRSLY A NUMBR
WE HAS A c ITZ SRSLY A NUMBR
I HAS A me ITZ A NUMBR AN ITZ ME
I HAS A k ITZ A NUMBR AN ITZ SUM OF ME AN 1
k R MOD OF k AN MAH FRENZ
a R PRODUKT OF SUM OF ME AN 1 AN 10
HUGZ
TXT MAH BFF k, UR b R MAH a
HUGZ
c R SUM OF a AN b
VISIBLE "PE :{me}:: a=:{a} b=:{b} c=:{c}"
KTHXBYE
