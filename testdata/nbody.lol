BTW The paper's SVI.D 2D n-body listing: 32 particles per PE, 10 steps,
BTW all-pairs forces with remote reads of every other PE's positions.
HAI 1.2
VISIBLE "HAI ITZ " ME " I HAS PARTICLZ 2 MUV 10 TIMEZ"
I HAS A little_time ITZ SRSLY A NUMBAR AN ITZ 0.001
I HAS A x ITZ SRSLY A NUMBAR
I HAS A y ITZ SRSLY A NUMBAR
I HAS A vx ITZ SRSLY A NUMBAR
I HAS A vy ITZ SRSLY A NUMBAR
I HAS A ax ITZ SRSLY A NUMBAR
I HAS A ay ITZ SRSLY A NUMBAR
I HAS A dx ITZ SRSLY A NUMBAR
I HAS A dy ITZ SRSLY A NUMBAR
I HAS A inv_d ITZ SRSLY A NUMBAR
I HAS A f ITZ SRSLY A NUMBAR
I HAS A vel_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32
I HAS A vel_y ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32
I HAS A tmppos_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32
I HAS A tmppos_y ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32
WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT
WE HAS A pos_y ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT
HUGZ
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32
  pos_x'Z i R SUM OF ME AN WHATEVAR
  pos_y'Z i R SUM OF ME AN WHATEVAR
  vel_x'Z i R QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000
  vel_y'Z i R QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000
IM OUTTA YR loop
BTW erratum fix: synchronize initialization before the first force phase
HUGZ
IM IN YR loop UPPIN YR time TIL BOTH SAEM time AN 10
  IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32
    x R pos_x'Z i
    y R pos_y'Z i
    vx R vel_x'Z i
    vy R vel_y'Z i
    ax R 0
    ay R 0
    IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 32
      DIFFRINT i AN j, O RLY?
      YA RLY
        dx R DIFF OF pos_x'Z i AN pos_x'Z j
        dy R DIFF OF pos_y'Z i AN pos_y'Z j
        dx R PRODUKT OF dx AN dx
        dy R PRODUKT OF dy AN dy
        inv_d R FLIP OF UNSQUAR OF SUM OF dx AN dy
        f R PRODUKT OF inv_d AN SQUAR OF inv_d
        ax R SUM OF ax AN PRODUKT OF dx AN f
        ay R SUM OF ay AN PRODUKT OF dy AN f
      OIC
    IM OUTTA YR loop
    IM IN YR loop UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
      DIFFRINT k AN ME, O RLY?
      YA RLY
        IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 32
          TXT MAH BFF k AN STUFF
            dx R DIFF OF pos_x'Z i AN UR pos_x'Z j
            dy R DIFF OF pos_y'Z i AN UR pos_y'Z j
          TTYL
          dx R PRODUKT OF dx AN dx
          dy R PRODUKT OF dy AN dy
          inv_d R FLIP OF UNSQUAR OF SUM OF dx AN dy
          f R PRODUKT OF inv_d AN SQUAR OF inv_d
          ax R SUM OF ax AN PRODUKT OF dx AN f
          ay R SUM OF ay AN PRODUKT OF dy AN f
        IM OUTTA YR loop
      OIC
    IM OUTTA YR loop
    x R SUM OF x AN SUM OF PRODUKT OF vx AN little_time AN PRODUKT OF 0.5 AN PRODUKT OF ax AN SQUAR OF little_time
    y R SUM OF y AN SUM OF PRODUKT OF vy AN little_time AN PRODUKT OF 0.5 AN PRODUKT OF ay AN SQUAR OF little_time
    vx R SUM OF vx AN PRODUKT OF ax AN little_time
    vy R SUM OF vy AN PRODUKT OF ay AN little_time
    tmppos_x'Z i R x
    tmppos_y'Z i R y
    vel_x'Z i R vx
    vel_y'Z i R vy
  IM OUTTA YR loop
  HUGZ
  IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32
    pos_x'Z i R tmppos_x'Z i
    pos_y'Z i R tmppos_y'Z i
  IM OUTTA YR loop
  HUGZ
IM OUTTA YR loop
VISIBLE "O HAI ITZ " ME ", MAH PARTICLZ IZ::"
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32
  VISIBLE pos_x'Z i " " pos_y'Z i
IM OUTTA YR loop
KTHXBYE
