BTW savina barrier storm: 12 back-to-back HUGZ episodes across 8 PEs.
BTW Each episode publishes a round stamp, synchronizes, and audits every
BTW peer's stamp; the second HUGZ fences the audit from the next round's
BTW publish. A single stale or early release anywhere breaks the tally.
HAI 1.2
WE HAS A round ITZ SRSLY A NUMBR
I HAS A rounds ITZ A NUMBR AN ITZ 12
I HAS A good ITZ A NUMBR AN ITZ 0
I HAS A total ITZ A NUMBR
IM IN YR storm UPPIN YR r TIL BOTH SAEM r AN rounds
  round R SUM OF r AN 1
  HUGZ
  total R 0
  IM IN YR scan UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    TXT MAH BFF k, total R SUM OF total AN UR round
  IM OUTTA YR scan
  BOTH SAEM total AN PRODUKT OF SUM OF r AN 1 AN MAH FRENZ, O RLY?
  YA RLY
    good R SUM OF good AN 1
  OIC
  HUGZ
IM OUTTA YR storm
BOTH SAEM good AN rounds, O RLY?
YA RLY
  VISIBLE "STORM OK"
OIC
KTHXBYE
