BTW savina dining philosophers: 4 PEs, 4 forks as shared lock symbols.
BTW Lock names are static in the dialect, so each philosopher's fork pair
BTW is hard-coded in a WTF? branch. Forks are claimed with the trylock
BTW form (IM MESIN WIF sets IT) and fully backed off on failure, and the
BTW meal tally takes a blocking lock WHILE HOLDING both forks — parking a
BTW PE that owns locks is exactly the scheduler hazard under test.
HAI 1.2
WE HAS A forkA ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A forkB ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A forkC ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A forkD ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A eaten ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A meals ITZ A NUMBR AN ITZ 0
HUGZ
IM IN YR feast UPPIN YR tick TIL BOTH SAEM meals AN 3
  pe, WTF?
  OMG 0
    IM MESIN WIF forkA, O RLY?
    YA RLY
      IM MESIN WIF forkB, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkB
      OIC
      DUN MESIN WIF forkA
    OIC
    GTFO
  OMG 1
    IM MESIN WIF forkB, O RLY?
    YA RLY
      IM MESIN WIF forkC, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkC
      OIC
      DUN MESIN WIF forkB
    OIC
    GTFO
  OMG 2
    IM MESIN WIF forkC, O RLY?
    YA RLY
      IM MESIN WIF forkD, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkD
      OIC
      DUN MESIN WIF forkC
    OIC
    GTFO
  OMG 3
    BTW asymmetric order: the last philosopher reaches across for forkA
    BTW first, breaking the circular-wait pattern of the classic hang.
    IM MESIN WIF forkA, O RLY?
    YA RLY
      IM MESIN WIF forkD, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkD
      OIC
      DUN MESIN WIF forkA
    OIC
    GTFO
  OIC
IM OUTTA YR feast
HUGZ
I HAS A total ITZ A NUMBR
TXT MAH BFF 0, total R UR eaten
VISIBLE "PHILOSOPHER :{pe} ATE :{meals} SAW :{total}"
KTHXBYE
