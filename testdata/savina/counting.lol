BTW savina Counting actor: 4 PEs send 25 increments each to the counter
BTW homed on PE 0, serialized by the global lock attached to the shared
BTW symbol. The audit read is fenced by HUGZ, so every PE must report the
BTW exact total — any lost update under park/resume shows up here.
HAI 1.2
WE HAS A count ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A iters ITZ A NUMBR AN ITZ 25
HUGZ
IM IN YR work UPPIN YR i TIL BOTH SAEM i AN iters
  IM SRSLY MESIN WIF count
  TXT MAH BFF 0, UR count R SUM OF UR count AN 1
  DUN MESIN WIF count
IM OUTTA YR work
HUGZ
I HAS A seen ITZ A NUMBR
TXT MAH BFF 0, seen R UR count
VISIBLE "COUNT IZ :{seen}"
KTHXBYE
