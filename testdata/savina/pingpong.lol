BTW savina PingPong over one-sided put/get: two PEs volley a counter.
BTW The server of round i bumps its local copy of the ball and puts it
BTW into its partner's court; HUGZ is the return net. After 8 volleys
BTW PE 0 holds ball 8 (last put in round 7) and PE 1 holds ball 7.
HAI 1.2
WE HAS A ball ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A buddy ITZ A NUMBR AN ITZ DIFF OF 1 AN pe
I HAS A rounds ITZ A NUMBR AN ITZ 8
I HAS A b ITZ A NUMBR
HUGZ
IM IN YR volley UPPIN YR i TIL BOTH SAEM i AN rounds
  BOTH SAEM MOD OF i AN 2 AN pe, O RLY?
  YA RLY
    b R SUM OF ball AN 1
    TXT MAH BFF buddy, UR ball R b
  OIC
  HUGZ
IM OUTTA YR volley
VISIBLE "PE :{pe} BALL :{ball}"
KTHXBYE
