package shmem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ticketLock is a FIFO spin lock in the style of the distributed queueing
// locks OpenSHMEM implementations use for shmem_set_lock: arrivals take a
// ticket, the holder advances the serving counter on release. FIFO ordering
// keeps lock handoff fair under contention, which the teaching examples
// (everyone increments PE 0's counter) rely on to finish promptly.
type ticketLock struct {
	next    atomic.Int64
	serving atomic.Int64
	owner   atomic.Int64 // PE id + 1; 0 = unheld (diagnostics only)

	// Scheduler-mode waiters, keyed by ticket. release hands the lock
	// directly to the parked holder of the next ticket (FIFO preserved)
	// and unparks it; World.fail drains the map on teardown.
	pmu    sync.Mutex
	parked map[int64]*peTask
}

// acquire spins until this PE's ticket is served or the world fails.
// Abandoning a ticket on failure would corrupt the queue for PEs behind
// it, but a failed world is tearing down: every other spinner observes the
// same failCh, so nobody is left waiting on the orphaned ticket.
func (l *ticketLock) acquire(pe int, failCh <-chan struct{}) error {
	t := l.next.Add(1) - 1
	for spins := 0; l.serving.Load() != t; spins++ {
		select {
		case <-failCh:
			return ErrWorldFailed
		default:
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
	l.owner.Store(int64(pe) + 1)
	return nil
}

// acquirePark is acquire under the worker scheduler: take a ticket, and
// either acquire immediately (nil) or register the task for a release-
// time hand-off and suspend. The failCh check happens under pmu, which
// release and drainParked also take, so a concurrent World.fail either
// is observed here (the mutex orders us after the close) or finds our
// registration when it drains — a waiter can never be stranded.
func (l *ticketLock) acquirePark(t *peTask, failCh <-chan struct{}) error {
	tk := l.next.Add(1) - 1
	l.pmu.Lock()
	if l.serving.Load() == tk {
		l.owner.Store(int64(t.pe.id) + 1)
		l.pmu.Unlock()
		return nil
	}
	select {
	case <-failCh:
		l.pmu.Unlock()
		return ErrWorldFailed
	default:
	}
	if l.parked == nil {
		l.parked = make(map[int64]*peTask)
	}
	l.parked[tk] = t
	l.pmu.Unlock()
	return suspendPark
}

// drainParked unparks every scheduler-mode waiter with ErrWorldFailed.
func (l *ticketLock) drainParked() {
	l.pmu.Lock()
	var ts []*peTask
	for tk, t := range l.parked {
		delete(l.parked, tk)
		ts = append(ts, t)
	}
	l.pmu.Unlock()
	for _, t := range ts {
		t.sched.unpark(t, ErrWorldFailed, true)
	}
}

// tryAcquire succeeds only when the lock is completely idle.
func (l *ticketLock) tryAcquire(pe int) bool {
	cur := l.serving.Load()
	if l.next.Load() != cur {
		return false
	}
	if !l.next.CompareAndSwap(cur, cur+1) {
		return false
	}
	l.owner.Store(int64(pe) + 1)
	return true
}

func (l *ticketLock) release(pe int) error {
	if own := l.owner.Load(); own != int64(pe)+1 {
		if own == 0 {
			return fmt.Errorf("shmem: PE %d released a lock it does not hold", pe)
		}
		return fmt.Errorf("shmem: PE %d released a lock held by PE %d", pe, own-1)
	}
	l.owner.Store(0)
	s := l.serving.Add(1)
	// Hand the lock to the parked holder of the now-serving ticket, if
	// any. Goroutine-mode spinners observe the serving counter directly;
	// a parked task must be made owner here (it does not re-run the
	// acquire loop — its resumed SetLock just records the acquisition).
	l.pmu.Lock()
	wt := l.parked[s]
	if wt != nil {
		delete(l.parked, s)
		l.owner.Store(int64(wt.pe.id) + 1)
	}
	l.pmu.Unlock()
	if wt != nil {
		wt.sched.unpark(wt, nil, true)
	}
	return nil
}

func (w *World) checkLock(id int) error {
	if id < 0 || id >= len(w.locks) {
		return fmt.Errorf("shmem: lock %d out of range [0,%d)", id, len(w.locks))
	}
	return nil
}

// lockHome is the PE that conceptually owns lock state for cost accounting;
// like symmetric objects in SHMEM, lock id i is homed on PE i mod N.
func (w *World) lockHome(id int) int { return id % w.n }

// SetLock blocks until this PE holds lock id (IM SRSLY MESIN WIF). Under
// the worker scheduler it may return a *Suspend; the release-time
// hand-off makes the parked PE the owner, so its re-invocation only
// consumes the wakeup and records the acquisition.
func (pe *PE) SetLock(id int) error {
	if err := pe.w.checkLock(id); err != nil {
		return err
	}
	if pe.task != nil {
		if pending, rerr, _ := pe.consumeResume(); pending {
			if rerr != nil {
				return rerr
			}
			pe.w.stats.LockAcquires.Add(1)
			pe.stats.LockAcquires++
			pe.trace(EvLock, pe.w.lockHome(id), id, 0)
			return nil
		}
		pe.charge(pe.w.model.LockNanos(pe.id, pe.w.lockHome(id)))
		l := &pe.w.locks[id]
		if !l.tryAcquire(pe.id) {
			pe.w.stats.LockContended.Add(1)
			if err := l.acquirePark(pe.task, pe.w.failCh); err != nil {
				return err
			}
		}
		pe.w.stats.LockAcquires.Add(1)
		pe.stats.LockAcquires++
		pe.trace(EvLock, pe.w.lockHome(id), id, 0)
		return nil
	}
	pe.charge(pe.w.model.LockNanos(pe.id, pe.w.lockHome(id)))
	l := &pe.w.locks[id]
	if !l.tryAcquire(pe.id) {
		pe.w.stats.LockContended.Add(1)
		if err := l.acquire(pe.id, pe.w.failCh); err != nil {
			return err
		}
	}
	pe.w.stats.LockAcquires.Add(1)
	pe.stats.LockAcquires++
	pe.trace(EvLock, pe.w.lockHome(id), id, 0)
	return nil
}

// drainLockWaiters releases every scheduler-mode lock waiter after a
// world failure; goroutine-mode spinners observe failCh themselves.
func (w *World) drainLockWaiters() {
	for i := range w.locks {
		w.locks[i].drainParked()
	}
}

// TestLock attempts lock id without blocking (IM MESIN WIF); it reports
// whether the lock was acquired.
func (pe *PE) TestLock(id int) (bool, error) {
	if err := pe.w.checkLock(id); err != nil {
		return false, err
	}
	pe.charge(pe.w.model.LockNanos(pe.id, pe.w.lockHome(id)))
	ok := pe.w.locks[id].tryAcquire(pe.id)
	if ok {
		pe.w.stats.LockAcquires.Add(1)
		pe.stats.LockAcquires++
	}
	pe.trace(EvTryLock, pe.w.lockHome(id), id, 0)
	return ok, nil
}

// ClearLock releases lock id (DUN MESIN WIF). Releasing a lock this PE
// does not hold is an error, which the teaching tool reports rather than
// corrupting the queue.
func (pe *PE) ClearLock(id int) error {
	if err := pe.w.checkLock(id); err != nil {
		return err
	}
	pe.charge(pe.w.model.LockNanos(pe.id, pe.w.lockHome(id)))
	pe.trace(EvUnlock, pe.w.lockHome(id), id, 0)
	return pe.w.locks[id].release(pe.id)
}
