package shmem_test

import (
	"fmt"
	"log"

	"repro/internal/shmem"
	"repro/internal/value"
)

// Example demonstrates the substrate on its own: an SPMD world where every
// PE publishes a value into its symmetric slot, meets at a barrier, and
// PE 0 reads them all one-sided — the minimal OpenSHMEM-style program the
// paper's extensions compile down to.
func Example() {
	world, err := shmem.NewWorld(4, []shmem.SymbolSpec{{Name: "v"}}, 0, shmem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(pe *shmem.PE) error {
		if err := pe.InitScalar(0, value.NewNumbr(int64(pe.ID()*pe.ID()))); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.ID() != 0 {
			return nil
		}
		total := int64(0)
		for rank := 0; rank < pe.NPEs(); rank++ {
			v, err := pe.Get(rank, 0)
			if err != nil {
				return err
			}
			total += v.Numbr()
		}
		fmt.Println("sum of squares:", total)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// sum of squares: 14
}
