package shmem

import (
	"fmt"
	"sync"

	"repro/internal/value"
)

// cell is one slot of a PE's symmetric heap: either a scalar value or a
// typed array. The mutex makes single-element remote operations atomic, the
// granularity real one-sided hardware gives for word-sized transfers.
type cell struct {
	mu  sync.Mutex
	v   value.Value
	arr *value.Array
}

func (c *cell) lock()   { c.mu.Lock() }
func (c *cell) unlock() { c.mu.Unlock() }

// valueBytes approximates the wire size of a scalar for cost accounting.
func valueBytes(v value.Value) int {
	switch v.Kind() {
	case value.Numbr, value.Numbar:
		return 8
	case value.Troof:
		return 1
	case value.Yarn:
		return len(v.Yarn())
	}
	return 0
}

func elemBytes(k value.Kind) int {
	switch k {
	case value.Numbr, value.Numbar:
		return 8
	case value.Troof:
		return 1
	case value.Yarn:
		return 16 // header estimate; strings are variable
	}
	return 8
}

func (w *World) checkSlot(slot int) error {
	if slot < 0 || slot >= len(w.syms) {
		return fmt.Errorf("shmem: symmetric slot %d out of range [0,%d)", slot, len(w.syms))
	}
	return nil
}

func (w *World) checkPE(pe int) error {
	if pe < 0 || pe >= w.n {
		return fmt.Errorf("shmem: PE %d out of range [0,%d)", pe, w.n)
	}
	return nil
}

func (w *World) cellAt(pe, slot int) *cell { return &w.heaps[pe][slot] }

// AllocArray performs this PE's share of a collective symmetric array
// allocation: every PE must allocate the same slot with the same size, the
// invariant real SHMEM requires of shmem_malloc. A size mismatch across
// PEs is reported as an error.
func (pe *PE) AllocArray(slot, size int) error {
	w := pe.w
	if err := w.checkSlot(slot); err != nil {
		return err
	}
	spec := w.syms[slot]
	if !spec.IsArray {
		return fmt.Errorf("shmem: slot %d (%s) is not an array", slot, spec.Name)
	}

	w.symSizeMu.Lock()
	switch cur := w.symSize[slot]; {
	case cur == -1:
		w.symSize[slot] = size
	case cur != size:
		w.symSizeMu.Unlock()
		return fmt.Errorf("shmem: asymmetric allocation of %s: PE %d wants %d elements, another PE allocated %d",
			spec.Name, pe.id, size, cur)
	}
	w.symSizeMu.Unlock()

	arr, err := value.NewArrayOf(spec.Elem, size)
	if err != nil {
		return fmt.Errorf("shmem: allocating %s: %w", spec.Name, err)
	}
	c := w.cellAt(pe.id, slot)
	c.lock()
	c.arr = arr
	c.unlock()
	return nil
}

// InitScalar sets this PE's local instance of a scalar slot without cost
// (declaration-time initialization).
func (pe *PE) InitScalar(slot int, v value.Value) error {
	if err := pe.w.checkSlot(slot); err != nil {
		return err
	}
	c := pe.w.cellAt(pe.id, slot)
	c.lock()
	c.v = v
	c.unlock()
	return nil
}

// Put writes a scalar into target's instance of slot (one-sided write).
func (pe *PE) Put(target, slot int, v value.Value) error {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return err
	}
	if err := w.checkSlot(slot); err != nil {
		return err
	}
	nbytes := valueBytes(v)
	pe.charge(w.model.PutNanos(pe.id, target, nbytes))
	if target != pe.id {
		w.stats.RemotePuts.Add(1)
		w.stats.PutBytes.Add(int64(nbytes))
		pe.stats.RemotePuts++
	}
	pe.trace(EvPut, target, slot, nbytes)
	c := w.cellAt(target, slot)
	c.lock()
	c.v = v
	c.unlock()
	return nil
}

// Get reads a scalar from target's instance of slot (one-sided read).
func (pe *PE) Get(target, slot int) (value.Value, error) {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return value.NOOB, err
	}
	if err := w.checkSlot(slot); err != nil {
		return value.NOOB, err
	}
	c := w.cellAt(target, slot)
	c.lock()
	v := c.v
	c.unlock()
	nbytes := valueBytes(v)
	pe.charge(w.model.GetNanos(pe.id, target, nbytes))
	if target != pe.id {
		w.stats.RemoteGets.Add(1)
		w.stats.GetBytes.Add(int64(nbytes))
		pe.stats.RemoteGets++
	}
	pe.trace(EvGet, target, slot, nbytes)
	return v, nil
}

func (w *World) arrayAt(pe, slot int) (*cell, *value.Array, error) {
	c := w.cellAt(pe, slot)
	c.lock()
	arr := c.arr
	c.unlock()
	if arr == nil {
		return nil, nil, fmt.Errorf(
			"shmem: PE %d's array %s is not allocated yet (did the program reach its WE HAS A, or is a HUGZ missing?)",
			pe, w.syms[slot].Name)
	}
	return c, arr, nil
}

// PutElem writes one array element into target's instance of slot.
func (pe *PE) PutElem(target, slot, index int, v value.Value) error {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return err
	}
	if err := w.checkSlot(slot); err != nil {
		return err
	}
	c, arr, err := w.arrayAt(target, slot)
	if err != nil {
		return err
	}
	nbytes := elemBytes(arr.Elem())
	pe.charge(w.model.PutNanos(pe.id, target, nbytes))
	if target != pe.id {
		w.stats.RemotePuts.Add(1)
		w.stats.PutBytes.Add(int64(nbytes))
		pe.stats.RemotePuts++
	}
	pe.trace(EvPut, target, slot, nbytes)
	c.lock()
	err = arr.Set(index, v)
	c.unlock()
	return err
}

// GetElem reads one array element from target's instance of slot.
func (pe *PE) GetElem(target, slot, index int) (value.Value, error) {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return value.NOOB, err
	}
	if err := w.checkSlot(slot); err != nil {
		return value.NOOB, err
	}
	c, arr, err := w.arrayAt(target, slot)
	if err != nil {
		return value.NOOB, err
	}
	nbytes := elemBytes(arr.Elem())
	pe.charge(w.model.GetNanos(pe.id, target, nbytes))
	if target != pe.id {
		w.stats.RemoteGets.Add(1)
		w.stats.GetBytes.Add(int64(nbytes))
		pe.stats.RemoteGets++
	}
	pe.trace(EvGet, target, slot, nbytes)
	c.lock()
	v, err := arr.GetChecked(index)
	c.unlock()
	return v, err
}

// GetArray reads a deep copy of target's whole array instance (the paper's
// `MAH array R UR array` bulk transfer).
func (pe *PE) GetArray(target, slot int) (*value.Array, error) {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return nil, err
	}
	if err := w.checkSlot(slot); err != nil {
		return nil, err
	}
	c, arr, err := w.arrayAt(target, slot)
	if err != nil {
		return nil, err
	}
	c.lock()
	cp := arr.Clone()
	c.unlock()
	nbytes := cp.Len() * elemBytes(cp.Elem())
	pe.charge(w.model.GetNanos(pe.id, target, nbytes))
	if target != pe.id {
		w.stats.RemoteGets.Add(1)
		w.stats.GetBytes.Add(int64(nbytes))
		pe.stats.RemoteGets++
	}
	pe.trace(EvGet, target, slot, nbytes)
	return cp, nil
}

// PutArray overwrites target's whole array instance with a copy of src.
func (pe *PE) PutArray(target, slot int, src *value.Array) error {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return err
	}
	if err := w.checkSlot(slot); err != nil {
		return err
	}
	c, arr, err := w.arrayAt(target, slot)
	if err != nil {
		return err
	}
	nbytes := src.Len() * elemBytes(src.Elem())
	pe.charge(w.model.PutNanos(pe.id, target, nbytes))
	if target != pe.id {
		w.stats.RemotePuts.Add(1)
		w.stats.PutBytes.Add(int64(nbytes))
		pe.stats.RemotePuts++
	}
	pe.trace(EvPut, target, slot, nbytes)
	c.lock()
	err = arr.CopyFrom(src)
	c.unlock()
	return err
}

// LocalArray returns this PE's own array instance as a direct, unlocked
// view. Access through the view is not synchronized against concurrent
// remote PutElem/GetElem from other PEs; use LocalGetElem/LocalSetElem for
// element access that must coexist with remote traffic.
func (pe *PE) LocalArray(slot int) (*value.Array, error) {
	if err := pe.w.checkSlot(slot); err != nil {
		return nil, err
	}
	_, arr, err := pe.w.arrayAt(pe.id, slot)
	return arr, err
}

// LocalGetElem reads one element of this PE's own array instance under the
// cell lock (zero simulated cost). This is the element-read path the
// language backends use so that even a racy program (one that skips HUGZ)
// sees whole values rather than torn ones.
func (pe *PE) LocalGetElem(slot, index int) (value.Value, error) {
	if err := pe.w.checkSlot(slot); err != nil {
		return value.NOOB, err
	}
	c, arr, err := pe.w.arrayAt(pe.id, slot)
	if err != nil {
		return value.NOOB, err
	}
	c.lock()
	v, err := arr.GetChecked(index)
	c.unlock()
	return v, err
}

// LocalSetElem writes one element of this PE's own array instance under
// the cell lock (zero simulated cost).
func (pe *PE) LocalSetElem(slot, index int, v value.Value) error {
	if err := pe.w.checkSlot(slot); err != nil {
		return err
	}
	c, arr, err := pe.w.arrayAt(pe.id, slot)
	if err != nil {
		return err
	}
	c.lock()
	err = arr.Set(index, v)
	c.unlock()
	return err
}

// LocalGet reads this PE's own scalar instance without cost.
func (pe *PE) LocalGet(slot int) (value.Value, error) {
	if err := pe.w.checkSlot(slot); err != nil {
		return value.NOOB, err
	}
	c := pe.w.cellAt(pe.id, slot)
	c.lock()
	v := c.v
	c.unlock()
	return v, nil
}
