package shmem

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/value"
)

// countingStep builds the standard lock-counting SPMD body as a resumable
// step function: every PE increments PE 0's shared counter iters times
// under the global lock, between two barriers. The phase machine keeps
// each blocking call alone at its phase boundary, so a resumed step
// re-executes exactly the suspended operation first — the suspend
// protocol's contract for hand-written scheduled bodies.
func countingStep(iters int, got *atomic.Int64) func(pe *PE) func() error {
	return func(pe *PE) func() error {
		phase, i := 0, 0
		return func() error {
			for {
				switch phase {
				case 0: // local init; no blocking op in this phase
					if pe.ID() == 0 {
						if err := pe.InitScalar(0, value.NewNumbr(0)); err != nil {
							return err
						}
					}
					phase = 1
				case 1:
					if err := pe.Barrier(); err != nil {
						return err
					}
					phase = 2
				case 2:
					if i >= iters {
						phase = 4
						continue
					}
					if err := pe.SetLock(0); err != nil {
						return err
					}
					phase = 3
				case 3: // critical section + release; ClearLock never blocks
					v, err := pe.Get(0, 0)
					if err != nil {
						return err
					}
					if err := pe.Put(0, 0, value.NewNumbr(v.Numbr()+1)); err != nil {
						return err
					}
					if err := pe.ClearLock(0); err != nil {
						return err
					}
					i++
					phase = 2
				case 4:
					if err := pe.Barrier(); err != nil {
						return err
					}
					phase = 5
				case 5:
					v, err := pe.Get(0, 0)
					if err != nil {
						return err
					}
					if pe.ID() == 0 {
						got.Store(v.Numbr())
					}
					return nil
				}
			}
		}
	}
}

func TestRunScheduledLockCounting(t *testing.T) {
	for _, alg := range []BarrierAlg{BarrierCentral, BarrierDissemination} {
		for _, workers := range []int{1, 2, 4} {
			const np, iters = 32, 5
			w, err := NewWorld(np, []SymbolSpec{{Name: "ctr"}}, 1, Options{Barrier: alg})
			if err != nil {
				t.Fatal(err)
			}
			var got atomic.Int64
			if err := w.RunScheduled(workers, countingStep(iters, &got)); err != nil {
				t.Fatalf("%v workers=%d: %v", alg, workers, err)
			}
			if got.Load() != np*iters {
				t.Fatalf("%v workers=%d: counter = %d, want %d", alg, workers, got.Load(), np*iters)
			}
			s := w.Stats().Sched
			if s.Mode != "workers" {
				t.Fatalf("sched mode = %q, want workers", s.Mode)
			}
			if s.Parked != 0 || s.Ready != 0 || s.Running != 0 {
				t.Fatalf("%v workers=%d: gauges not drained: %+v", alg, workers, s)
			}
			if s.Parks != s.Unparks {
				t.Fatalf("%v workers=%d: parks %d != unparks %d", alg, workers, s.Parks, s.Unparks)
			}
			if s.MaxRunning > workers {
				t.Fatalf("%v workers=%d: max running %d exceeds pool", alg, workers, s.MaxRunning)
			}
		}
	}
}

// TestRunScheduledSpuriousUnpark runs the counting workload with the
// sched.spurious.unpark failpoint firing on every park: each parked task
// takes a detour through the run queue with its wake incomplete and must
// be re-parked without running, then resumed exactly once by the real
// wakeup — no lost wakeup, no double resume, counters still exact.
func TestRunScheduledSpuriousUnpark(t *testing.T) {
	defer faultinject.Reset()
	if err := faultinject.Arm("sched.spurious.unpark"); err != nil {
		t.Fatal(err)
	}
	const np, iters = 16, 4
	w, err := NewWorld(np, []SymbolSpec{{Name: "ctr"}}, 1, Options{Barrier: BarrierDissemination})
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	if err := w.RunScheduled(2, countingStep(iters, &got)); err != nil {
		t.Fatal(err)
	}
	if got.Load() != np*iters {
		t.Fatalf("counter = %d, want %d", got.Load(), np*iters)
	}
	s := w.Stats().Sched
	if s.Spurious == 0 {
		t.Fatal("failpoint armed but no spurious wakeups recorded")
	}
	if s.Parked != 0 || s.Ready != 0 || s.Running != 0 {
		t.Fatalf("gauges not drained: %+v", s)
	}
	if faultinject.Fired("sched.spurious.unpark") != s.Spurious {
		t.Fatalf("failpoint fired %d times but scheduler saw %d spurious wakes",
			faultinject.Fired("sched.spurious.unpark"), s.Spurious)
	}
}

// TestRunScheduledWakeReleasesParkedWaiters is the centralBarrier.wake
// audit: a parked (not goroutine-blocked) waiter holds no goroutine to
// observe the condition broadcast, so a failing world must unpark it
// explicitly or the run never terminates. Exercised for both barrier
// algorithms: PE 0 fails before arriving, everyone else is parked.
func TestRunScheduledWakeReleasesParkedWaiters(t *testing.T) {
	boom := errors.New("boom")
	for _, alg := range []BarrierAlg{BarrierCentral, BarrierDissemination} {
		w, err := NewWorld(4, nil, 0, Options{Barrier: alg})
		if err != nil {
			t.Fatal(err)
		}
		// One worker pops tasks in PE order, so PEs 0..2 are parked in the
		// barrier before PE 3 fails — the drain is genuinely exercised.
		err = w.RunScheduled(1, func(pe *PE) func() error {
			return func() error {
				if pe.ID() == 3 {
					return boom
				}
				return pe.Barrier()
			}
		})
		if !errors.Is(err, boom) {
			t.Fatalf("%v: want PE 3's error, got %v", alg, err)
		}
		if !strings.Contains(err.Error(), "PE 3") {
			t.Fatalf("%v: error not attributed to PE 3: %v", alg, err)
		}
		if s := w.Stats().Sched; s.Parked != 0 || s.Ready != 0 || s.Running != 0 {
			t.Fatalf("%v: gauges not drained after teardown: %+v", alg, s)
		}
	}
}

// TestRunScheduledDeadlockDetected: the scheduler's exact deadlock test.
// One PE exits holding the global lock; every other PE is parked on it
// with no wakeup ever coming. Goroutine mode would hang until a context
// deadline — worker mode must fail immediately with ErrDeadlock.
func TestRunScheduledDeadlockDetected(t *testing.T) {
	w, err := NewWorld(3, nil, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.RunScheduled(2, func(pe *PE) func() error {
		return func() error {
			if err := pe.SetLock(0); err != nil {
				return err
			}
			return nil // exit holding the lock: the others can never proceed
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if !errors.Is(w.Err(), ErrDeadlock) {
		t.Fatalf("world cause = %v, want ErrDeadlock", w.Err())
	}
}

// TestRunScheduledWaitUntilYields: a point-to-point wait under the
// scheduler polls by yielding, so a single worker can interleave the
// waiter (PE 0) with the putter (PE 1) instead of pinning the pool.
func TestRunScheduledWaitUntilYields(t *testing.T) {
	w, err := NewWorld(2, []SymbolSpec{{Name: "flag"}}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.RunScheduled(1, func(pe *PE) func() error {
		initialized := false
		return func() error {
			if pe.ID() == 0 {
				if !initialized {
					initialized = true
					if err := pe.InitScalar(0, value.NewNumbr(0)); err != nil {
						return err
					}
				}
				return pe.WaitUntilNumbr(0, WaitEq, 1)
			}
			return pe.Put(0, 0, value.NewNumbr(1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := w.Stats().Sched; s.Yields == 0 {
		t.Fatalf("waiter never yielded: %+v", s)
	}
}

// TestRunScheduledCollectivesRejected: Broadcast/Reduce are multi-barrier
// composites whose bodies cannot honor the re-invocation contract; under
// the scheduler they must fail loudly instead of corrupting the run.
func TestRunScheduledCollectivesRejected(t *testing.T) {
	w, err := NewWorld(2, []SymbolSpec{{Name: "v"}}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.RunScheduled(1, func(pe *PE) func() error {
		return func() error { return pe.Broadcast(0, 0) }
	})
	if err == nil || !strings.Contains(err.Error(), "worker scheduler") {
		t.Fatalf("want a park-safety error, got %v", err)
	}
}
