package shmem

import "fmt"

// EventKind classifies a traced runtime event.
type EventKind int

// Traced event kinds.
const (
	EvPut EventKind = iota
	EvGet
	EvBarrier
	EvLock
	EvTryLock
	EvUnlock
)

func (k EventKind) String() string {
	switch k {
	case EvPut:
		return "put"
	case EvGet:
		return "get"
	case EvBarrier:
		return "barrier"
	case EvLock:
		return "lock"
	case EvTryLock:
		return "trylock"
	case EvUnlock:
		return "unlock"
	}
	return "?"
}

// Event is one observed runtime operation. For data movement, PE is the
// initiator and Target the owner of the accessed memory; Slot names the
// symmetric symbol. Barrier events carry the episode number in Episode.
type Event struct {
	Kind    EventKind
	PE      int
	Target  int
	Slot    int
	Bytes   int
	Episode int // barrier episodes completed by PE before this event
}

func (e Event) String() string {
	switch e.Kind {
	case EvBarrier:
		return fmt.Sprintf("PE %d: HUGZ (episode %d)", e.PE, e.Episode)
	case EvPut, EvGet:
		return fmt.Sprintf("PE %d: %v slot %d @ PE %d (%dB)", e.PE, e.Kind, e.Slot, e.Target, e.Bytes)
	default:
		return fmt.Sprintf("PE %d: %v", e.PE, e.Kind)
	}
}

// Tracer receives runtime events. Implementations must be safe for
// concurrent use: all PEs call it.
type Tracer func(Event)

// trace emits an event when tracing is enabled. The per-PE barrier count
// stamps each event with its synchronization phase, which is what the
// Figure 2 renderer groups by.
func (pe *PE) trace(kind EventKind, target, slot, bytes int) {
	if pe.w.opts.Tracer == nil {
		return
	}
	pe.w.opts.Tracer(Event{
		Kind:    kind,
		PE:      pe.id,
		Target:  target,
		Slot:    slot,
		Bytes:   bytes,
		Episode: int(pe.stats.Barriers),
	})
}
