// Package shmem is a from-scratch PGAS runtime in the spirit of the minimal
// OpenSHMEM subset the paper builds on: SPMD execution over N processing
// elements (PEs), symmetric memory, one-sided put/get, collective barriers,
// global locks, and a handful of collectives and atomics that real
// OpenSHMEM backends use implicitly.
//
// Symmetric memory is a per-PE heap of cells laid out identically on
// every PE (the paper's Figure 1); a remote reference is a (pe, slot)
// pair. A pluggable cost model (see internal/machine) charges simulated
// nanoseconds to the calling PE for every one-sided operation, so
// programs report hardware-shaped timing without the hardware.
//
// A world executes in one of two modes. Under World.Run each PE is a
// dedicated goroutine and blocking operations block it — simple, and the
// differential oracle for everything else. Under World.RunScheduled each
// PE is a resumable continuation multiplexed onto a bounded worker pool:
// blocking operations return a *Suspend (see suspend.go) instead of
// blocking, the scheduler parks the task, and the wait structures —
// barriers, ticket locks — unpark it explicitly when satisfied. That is
// what makes NP in the thousands affordable: a parked PE costs one small
// struct, not a goroutine stack.
package shmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// CostModel prices one-sided operations in simulated nanoseconds.
// internal/machine provides implementations for the paper's platforms.
type CostModel interface {
	Name() string
	PutNanos(src, dst, bytes int) float64
	GetNanos(src, dst, bytes int) float64
	LockNanos(src, home int) float64
	BarrierNanos(n int) float64
}

// zeroCost is the default model: no simulated latency.
type zeroCost struct{}

func (zeroCost) Name() string                         { return "none" }
func (zeroCost) PutNanos(src, dst, bytes int) float64 { return 0 }
func (zeroCost) GetNanos(src, dst, bytes int) float64 { return 0 }
func (zeroCost) LockNanos(src, home int) float64      { return 0 }
func (zeroCost) BarrierNanos(n int) float64           { return 0 }

// SymbolSpec describes one slot of the symmetric heap.
type SymbolSpec struct {
	Name    string
	IsArray bool
	Elem    value.Kind // element type for arrays; Noob for dynamic scalars
}

// BarrierAlg selects the barrier implementation.
type BarrierAlg int

const (
	// BarrierCentral is a sense-reversing central barrier (mutex + cond).
	BarrierCentral BarrierAlg = iota
	// BarrierDissemination is a log2(n)-round dissemination barrier built
	// on buffered channels.
	BarrierDissemination
)

func (a BarrierAlg) String() string {
	if a == BarrierDissemination {
		return "dissemination"
	}
	return "central"
}

// Options configures a World.
type Options struct {
	// Model prices one-sided operations; nil means free.
	Model CostModel
	// Barrier selects the barrier algorithm.
	Barrier BarrierAlg
	// Seed is the base seed for per-PE deterministic RNG streams;
	// PE i uses Seed + i.
	Seed int64
	// Tracer, when non-nil, receives every runtime event (one-sided
	// accesses, barriers, lock operations). It must be safe for concurrent
	// use; see internal/trace for a ready-made recorder.
	Tracer Tracer
}

// ErrWorldFailed is returned from blocking operations when another PE has
// already failed, so that the whole SPMD program tears down instead of
// deadlocking at the next barrier.
var ErrWorldFailed = errors.New("shmem: another PE failed")

// World is one SPMD program instance: N PEs with symmetric heaps.
type World struct {
	n     int
	syms  []SymbolSpec
	heaps [][]cell // heaps[pe][slot]

	// symSize records the collective size of each symmetric array slot;
	// the first allocator sets it, later allocators must match (symmetric
	// allocation symmetry check).
	symSizeMu sync.Mutex
	symSize   []int // -1 = not yet allocated

	locks []ticketLock

	barrier barrier

	model CostModel
	opts  Options

	failOnce sync.Once
	failCh   chan struct{}
	failErr  atomic.Value // error

	// sched is non-nil iff this world runs under RunScheduled.
	sched *scheduler

	stats Stats
}

// NewWorld creates a world of n PEs with the given symmetric heap layout
// and lock count.
func NewWorld(n int, syms []SymbolSpec, nLocks int, opts Options) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmem: world size %d must be positive", n)
	}
	if opts.Model == nil {
		opts.Model = zeroCost{}
	}
	w := &World{
		n:       n,
		syms:    syms,
		heaps:   make([][]cell, n),
		symSize: make([]int, len(syms)),
		locks:   make([]ticketLock, nLocks),
		model:   opts.Model,
		opts:    opts,
		failCh:  make(chan struct{}),
	}
	for i := range w.symSize {
		w.symSize[i] = -1
	}
	for pe := 0; pe < n; pe++ {
		w.heaps[pe] = make([]cell, len(syms))
	}
	switch opts.Barrier {
	case BarrierDissemination:
		w.barrier = newDisseminationBarrier(n, w.failCh)
	default:
		w.barrier = newCentralBarrier(n)
	}
	return w, nil
}

// N returns the number of PEs.
func (w *World) N() int { return w.n }

// Model returns the active cost model.
func (w *World) Model() CostModel { return w.model }

// Symbols returns the symmetric heap layout.
func (w *World) Symbols() []SymbolSpec { return w.syms }

// Stats returns a snapshot of the world's operation counters.
func (w *World) Stats() StatsSnapshot {
	s := w.stats.snapshot()
	if w.sched != nil {
		s.Sched = w.sched.snapshot()
	}
	return s
}

// fail records the first failure and releases all blocked PEs — both
// goroutines blocked in waits (they observe failCh or the barrier wake)
// and tasks parked under the worker scheduler (the wake paths unpark
// them with ErrWorldFailed).
func (w *World) fail(err error) {
	w.failOnce.Do(func() {
		w.failErr.Store(err)
		close(w.failCh)
		w.barrier.wake()
		w.drainLockWaiters()
	})
}

// Fail aborts the world cooperatively from outside the SPMD body: every PE
// blocked in a barrier, lock acquisition, or point-to-point wait returns
// ErrWorldFailed instead of blocking forever, and PEs that are still
// computing tear down at their next blocking operation. Launchers use it
// to implement cancellation (deadline hit, client disconnected) without
// deadlocking peers in HUGZ. The first failure wins; later calls are
// no-ops.
func (w *World) Fail(err error) {
	if err == nil {
		err = ErrWorldFailed
	}
	w.fail(err)
}

func (w *World) failed() error {
	if err, ok := w.failErr.Load().(error); ok {
		return err
	}
	return nil
}

// Err returns the first failure recorded for this world (a PE error or an
// external Fail), or nil while the world is healthy. Launchers use it to
// distinguish a cancellation-driven teardown from a PE's own error.
func (w *World) Err() error { return w.failed() }

// PE is the per-processing-element handle passed to the SPMD body.
type PE struct {
	id  int
	w   *World
	rng *rand.Rand

	// task is non-nil under the worker scheduler; blocking operations
	// then suspend instead of blocking. resume* is the wakeup payload
	// staged by the scheduler before a parked task's step is re-invoked;
	// the re-executed blocking operation consumes it (consumeResume).
	task          *peTask
	resumePending bool
	resumeDone    bool
	resumeErr     error

	simNanos float64 // simulated time consumed by this PE
	stats    PEStats
}

// consumeResume hands the staged wakeup payload to the blocking
// operation being re-invoked after a park, clearing it so a later
// blocking call on the same PE starts fresh.
func (pe *PE) consumeResume() (pending bool, err error, done bool) {
	if !pe.resumePending {
		return false, nil, false
	}
	pe.resumePending = false
	return true, pe.resumeErr, pe.resumeDone
}

// ID returns this PE's rank, 0..N-1 (the paper's ME).
func (pe *PE) ID() int { return pe.id }

// NPEs returns the world size (the paper's MAH FRENZ).
func (pe *PE) NPEs() int { return pe.w.n }

// World returns the owning world.
func (pe *PE) World() *World { return pe.w }

// Rand returns this PE's deterministic random stream (WHATEVR/WHATEVAR).
func (pe *PE) Rand() *rand.Rand { return pe.rng }

// SimNanos returns the simulated time this PE has consumed under the
// world's cost model.
func (pe *PE) SimNanos() float64 { return pe.simNanos }

// PEStats returns this PE's operation counters.
func (pe *PE) PEStats() PEStats { return pe.stats }

func (pe *PE) charge(nanos float64) { pe.simNanos += nanos }

// Run executes body once per PE in its own goroutine and waits for all of
// them. The first error (or panic, converted to an error) aborts blocked
// collectives on other PEs; Run returns the joined errors.
func (w *World) Run(body func(pe *PE) error) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for id := 0; id < w.n; id++ {
		pe := &PE{id: id, w: w, rng: rand.New(rand.NewSource(w.opts.Seed + int64(id)))}
		go func(pe *PE) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("PE %d panicked: %v", pe.id, r)
					errs[pe.id] = err
					w.fail(err)
				}
			}()
			if err := body(pe); err != nil {
				errs[pe.id] = fmt.Errorf("PE %d: %w", pe.id, err)
				w.fail(errs[pe.id])
			}
		}(pe)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Barrier is the collective barrier (the paper's HUGZ). Every PE must call
// it before any PE continues. Under the worker scheduler it may return a
// *Suspend; the re-invocation after the wakeup completes it.
func (pe *PE) Barrier() error {
	if pe.task != nil {
		return pe.barrierScheduled()
	}
	pe.charge(pe.w.model.BarrierNanos(pe.w.n))
	pe.w.stats.Barriers.Add(1)
	pe.stats.Barriers++
	err := pe.w.barrier.wait(pe.id, pe.w)
	if err == nil {
		pe.trace(EvBarrier, -1, -1, 0)
	}
	return err
}

// barrierScheduled is Barrier under the worker scheduler. The cost-model
// charge and the counters apply once, on first arrival; a resume with
// done=false (an intermediate dissemination round token) re-enters
// arrive without re-charging.
func (pe *PE) barrierScheduled() error {
	pending, rerr, done := pe.consumeResume()
	if pending {
		if rerr != nil {
			return rerr
		}
		if done {
			pe.trace(EvBarrier, -1, -1, 0)
			return nil
		}
	} else {
		pe.charge(pe.w.model.BarrierNanos(pe.w.n))
		pe.w.stats.Barriers.Add(1)
		pe.stats.Barriers++
	}
	err := pe.w.barrier.arrive(pe.task)
	if err == nil {
		pe.trace(EvBarrier, -1, -1, 0)
	}
	return err
}
