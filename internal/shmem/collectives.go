package shmem

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/value"
)

// The collectives below are the "other OpenSHMEM routines … used implicitly
// in the backend" (paper §II.A): broadcast, reductions, and point-to-point
// waiting. The LOLCODE surface only exposes HUGZ, but the compiler backend
// and the benchmark harness use these directly.

// ReduceOp selects a reduction operator.
type ReduceOp int

// Reduction operators.
const (
	ReduceSum ReduceOp = iota
	ReduceProd
	ReduceMin
	ReduceMax
)

func (op ReduceOp) String() string {
	switch op {
	case ReduceSum:
		return "sum"
	case ReduceProd:
		return "prod"
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	}
	return "?"
}

// Broadcast copies root's instance of a scalar slot into every PE's
// instance. Collective: every PE must call it.
//
// Broadcast and Reduce are multi-barrier composites whose bodies are not
// idempotent, so they cannot honor the suspend protocol's re-invocation
// contract; they are goroutine-mode only (the LOLCODE engines never emit
// them — only harness code running under World.Run does).
func (pe *PE) Broadcast(root, slot int) error {
	if pe.task != nil {
		return errNotParkSafe("Broadcast")
	}
	if err := pe.w.checkPE(root); err != nil {
		return err
	}
	if err := pe.Barrier(); err != nil {
		return err
	}
	if pe.id != root {
		v, err := pe.Get(root, slot)
		if err != nil {
			return err
		}
		if err := pe.InitScalar(slot, v); err != nil {
			return err
		}
	}
	return pe.Barrier()
}

// Reduce combines every PE's scalar instance of slot with op and leaves the
// result in every PE's instance. Values are combined with the LOLCODE
// numeric rules (NUMBR stays NUMBR until a NUMBAR appears). Collective.
func (pe *PE) Reduce(slot int, op ReduceOp) error {
	if pe.task != nil {
		return errNotParkSafe("Reduce")
	}
	if err := pe.Barrier(); err != nil {
		return err
	}
	// PE 0 combines, then everyone pulls: a linear reduction is plenty for
	// the world sizes goroutines support, and keeps the combine order
	// deterministic (rank order) for floating point.
	if pe.id == 0 {
		acc, err := pe.Get(0, slot)
		if err != nil {
			return err
		}
		for r := 1; r < pe.w.n; r++ {
			v, err := pe.Get(r, slot)
			if err != nil {
				return err
			}
			acc, err = combine(op, acc, v)
			if err != nil {
				return err
			}
		}
		if err := pe.InitScalar(slot, acc); err != nil {
			return err
		}
	}
	if err := pe.Barrier(); err != nil {
		return err
	}
	if pe.id != 0 {
		v, err := pe.Get(0, slot)
		if err != nil {
			return err
		}
		if err := pe.InitScalar(slot, v); err != nil {
			return err
		}
	}
	return pe.Barrier()
}

func errNotParkSafe(op string) error {
	return fmt.Errorf("shmem: %s is a non-idempotent composite collective and cannot run under the worker scheduler; run this body with World.Run", op)
}

func combine(op ReduceOp, a, b value.Value) (value.Value, error) {
	switch op {
	case ReduceSum:
		return value.Binary(value.OpSum, a, b)
	case ReduceProd:
		return value.Binary(value.OpProdukt, a, b)
	case ReduceMin:
		return value.Binary(value.OpSmallrOf, a, b)
	case ReduceMax:
		return value.Binary(value.OpBiggrOf, a, b)
	}
	return value.NOOB, fmt.Errorf("shmem: unknown reduction %v", op)
}

// FetchAddNumbr atomically adds delta to target's NUMBR instance of slot
// and returns the previous value (shmem_atomic_fetch_add).
func (pe *PE) FetchAddNumbr(target, slot int, delta int64) (int64, error) {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return 0, err
	}
	if err := w.checkSlot(slot); err != nil {
		return 0, err
	}
	pe.charge(w.model.GetNanos(pe.id, target, 8))
	w.stats.Atomics.Add(1)
	c := w.cellAt(target, slot)
	c.lock()
	defer c.unlock()
	old, err := c.v.ToNumbr()
	if err != nil {
		return 0, fmt.Errorf("shmem: fetch-add on non-NUMBR %s: %w", w.syms[slot].Name, err)
	}
	c.v = value.NewNumbr(old + delta)
	return old, nil
}

// CompareSwapNumbr atomically replaces target's NUMBR instance of slot with
// next when it currently equals expect; it returns the observed value
// (shmem_atomic_compare_swap).
func (pe *PE) CompareSwapNumbr(target, slot int, expect, next int64) (int64, error) {
	w := pe.w
	if err := w.checkPE(target); err != nil {
		return 0, err
	}
	if err := w.checkSlot(slot); err != nil {
		return 0, err
	}
	pe.charge(w.model.GetNanos(pe.id, target, 8))
	w.stats.Atomics.Add(1)
	c := w.cellAt(target, slot)
	c.lock()
	defer c.unlock()
	old, err := c.v.ToNumbr()
	if err != nil {
		return 0, fmt.Errorf("shmem: compare-swap on non-NUMBR %s: %w", w.syms[slot].Name, err)
	}
	if old == expect {
		c.v = value.NewNumbr(next)
	}
	return old, nil
}

// WaitCond is the comparison used by WaitUntilNumbr.
type WaitCond int

// Wait conditions (shmem_wait_until comparison operators).
const (
	WaitEq WaitCond = iota
	WaitNe
	WaitGt
	WaitGe
	WaitLt
	WaitLe
)

func (c WaitCond) holds(a, b int64) bool {
	switch c {
	case WaitEq:
		return a == b
	case WaitNe:
		return a != b
	case WaitGt:
		return a > b
	case WaitGe:
		return a >= b
	case WaitLt:
		return a < b
	case WaitLe:
		return a <= b
	}
	return false
}

// WaitUntilNumbr blocks until this PE's local instance of slot satisfies
// cond against operand — point-to-point synchronization
// (shmem_wait_until), the partner of a remote Put. Under the worker
// scheduler an unsatisfied condition yields instead of spinning: the
// whole call is one idempotent check, so re-invoking it on resume is the
// poll. This keeps a put/wait partner from pinning a pool worker.
func (pe *PE) WaitUntilNumbr(slot int, cond WaitCond, operand int64) error {
	if err := pe.w.checkSlot(slot); err != nil {
		return err
	}
	c := pe.w.cellAt(pe.id, slot)
	for spins := 0; ; spins++ {
		c.lock()
		cur, err := c.v.ToNumbr()
		c.unlock()
		if err == nil && cond.holds(cur, operand) {
			return nil
		}
		select {
		case <-pe.w.failCh:
			return ErrWorldFailed
		default:
		}
		if pe.task != nil {
			return suspendYield
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}
