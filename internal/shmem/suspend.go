package shmem

// Suspend is the scheduler's yield protocol. Under the worker scheduler
// (World.RunScheduled) a blocking runtime operation — barrier arrival,
// lock acquisition, point-to-point wait — does not block its OS thread:
// it registers the calling PE's task in the relevant wait structure and
// returns a *Suspend through the ordinary error path. The engine's step
// function propagates it out to the scheduler, which parks the task and
// reuses the worker for a runnable PE. The task is resumed by an explicit
// unpark from whichever PE (or teardown path) satisfies the wait.
//
// The contract for engines:
//
//   - A *Suspend is never wrapped; AsSuspend type-asserts directly.
//   - The suspended operation is RE-INVOKED on resume. The engine must
//     rewind so the parked operation is the first thing the resumed step
//     executes (the VM sets fr.ip back to the parked instruction and
//     refunds its meter weight). The re-invoked operation consumes the
//     wakeup payload and completes — or suspends again, for multi-phase
//     waits like dissemination-barrier rounds.
//   - Code between the previous suspension point and the blocking call
//     must therefore be idempotent; in practice the blocking call is the
//     whole instruction.
//
// Yield is a cooperative reschedule with no wait structure attached: the
// task goes straight back on the run queue. Compute loops use it so a
// bounded worker pool cannot be starved by fewer-than-NP long-running
// PEs, and WaitUntilNumbr uses it to poll without pinning a worker.
type Suspend struct {
	// Yield distinguishes a reschedule request from a park request.
	Yield bool
}

func (s *Suspend) Error() string {
	if s.Yield {
		return "shmem: PE yielded (scheduler-internal, should not escape)"
	}
	return "shmem: PE suspended (scheduler-internal, should not escape)"
}

// The two suspension values. They carry no per-use state, so every
// suspension point shares them; identity is never compared, only type.
var (
	suspendPark  = &Suspend{}
	suspendYield = &Suspend{Yield: true}
)

// AsSuspend returns err as a *Suspend, or nil when err is anything else.
// Suspends are never wrapped, so a direct type assertion is the whole
// test — engines call this on every error edge that can cross a blocking
// operation.
func AsSuspend(err error) *Suspend {
	s, _ := err.(*Suspend)
	return s
}

// SuspendYield returns the shared yield request. Hand-written scheduled
// step functions (tests, experiment harnesses) return it to reschedule
// cooperatively; engines have their own yield checks built in.
func SuspendYield() error { return suspendYield }
