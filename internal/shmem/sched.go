package shmem

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/faultinject"
)

// ErrDeadlock reports that the worker scheduler found every live PE
// parked with nothing runnable and no wakeup in flight: the program has
// deadlocked (a PE exited holding a lock, mismatched barrier arrivals
// across an IM MESIN WIF branch, and so on). Goroutine mode has no such
// detector — a deadlocked program simply hangs until its context
// deadline — so this is a deliberate, documented divergence: worker mode
// converts an eventual timeout into an immediate, attributable error.
var ErrDeadlock = errors.New("shmem: deadlock: every unfinished PE is parked")

// taskState is the scheduler-side lifecycle of one PE.
type taskState int8

const (
	taskReady   taskState = iota // on the run queue (or headed there)
	taskRunning                  // a worker is executing its step
	taskParked                   // registered in a wait structure
	taskDone                     // step returned nil or a real error
)

// wakeState is the wakeup mailbox of one task, guarded by scheduler.mu.
type wakeState struct {
	// complete marks a deliverable wakeup: the initial spawn or a real
	// unpark. A task popped from the run queue with an incomplete wake
	// was requeued spuriously (failpoint injection) and is re-parked
	// without running — the real wakeup is still on its way.
	complete bool
	// deliver, err, done form the resume payload handed to the PE before
	// its step is re-invoked; see PE.consumeResume.
	deliver bool
	done    bool
	err     error
}

// peTask is one PE's continuation under the worker scheduler.
type peTask struct {
	pe    *PE
	sched *scheduler
	state taskState
	wake  wakeState
}

// scheduler multiplexes N PE continuations onto a bounded worker pool.
// One mutex guards every task-state transition and every counter, which
// keeps the invariants checkable by inspection: a task is on the run
// queue at most once (enqueues happen only on a transition to
// taskReady), wakeups cannot be lost (unpark and park serialize on mu),
// and the deadlock test below is exact, not heuristic.
type scheduler struct {
	w       *World
	workers int

	mu       sync.Mutex
	runq     chan *peTask
	nReady   int
	nRunning int
	nParked  int
	nDone    int

	parks      int64
	unparks    int64
	spurious   int64
	yields     int64
	maxRunning int
}

// SchedSnapshot reports worker-scheduler activity for one world. Mode is
// empty for goroutine-per-PE worlds (everything else is then zero).
type SchedSnapshot struct {
	Mode       string `json:"mode,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Parks      int64  `json:"parks,omitempty"`
	Unparks    int64  `json:"unparks,omitempty"`
	Spurious   int64  `json:"spurious,omitempty"`
	Yields     int64  `json:"yields,omitempty"`
	MaxRunning int    `json:"max_running,omitempty"`
	Parked     int    `json:"parked,omitempty"`
	Ready      int    `json:"ready,omitempty"`
	Running    int    `json:"running,omitempty"`
}

func (s *scheduler) snapshot() SchedSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedSnapshot{
		Mode:       "workers",
		Workers:    s.workers,
		Parks:      s.parks,
		Unparks:    s.unparks,
		Spurious:   s.spurious,
		Yields:     s.yields,
		MaxRunning: s.maxRunning,
		Parked:     s.nParked,
		Ready:      s.nReady,
		Running:    s.nRunning,
	}
}

// DefaultSchedWorkers is the worker-pool size used when the caller does
// not override it: enough parallelism to keep every core busy with
// headroom for workers briefly blocked in output plumbing, but
// independent of NP — the whole point is that NP=4096 costs 4096 small
// task structs, not 4096 stacks.
func DefaultSchedWorkers(n int) int {
	w := runtime.GOMAXPROCS(0) * 2
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunScheduled executes the SPMD program with a bounded worker pool
// instead of a goroutine per PE. makeStep builds one resumable step
// function per PE: the step runs until the PE finishes (returns nil),
// fails (returns a real error), or reaches a blocking point (returns a
// *Suspend after the runtime has registered the task for wakeup). Parked
// tasks cost no goroutine; at most `workers` steps execute concurrently
// (workers <= 0 selects DefaultSchedWorkers).
//
// Error semantics match Run: per-PE errors are wrapped "PE %d: %w",
// panics become errors, the first failure tears down the world, and the
// joined errors are returned — additionally wrapped with ErrDeadlock
// when the scheduler's exact deadlock detector fired the teardown.
func (w *World) RunScheduled(workers int, makeStep func(pe *PE) func() error) error {
	n := w.n
	if workers <= 0 {
		workers = DefaultSchedWorkers(n)
	}
	if workers > n {
		workers = n
	}
	s := &scheduler{
		w:       w,
		workers: workers,
		runq:    make(chan *peTask, n),
		nReady:  n,
	}
	w.sched = s
	errs := make([]error, n)
	steps := make([]func() error, n)
	tasks := make([]*peTask, n)
	for id := 0; id < n; id++ {
		pe := &PE{id: id, w: w, rng: rand.New(rand.NewSource(w.opts.Seed + int64(id)))}
		t := &peTask{pe: pe, sched: s, state: taskReady, wake: wakeState{complete: true}}
		pe.task = t
		tasks[id] = t
		steps[id] = makeStep(pe)
	}
	for _, t := range tasks {
		s.runq <- t
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			s.worker(steps, errs)
		}()
	}
	wg.Wait()
	err := errors.Join(errs...)
	if err != nil && errors.Is(w.Err(), ErrDeadlock) && !errors.Is(err, ErrDeadlock) {
		err = fmt.Errorf("%w: %w", ErrDeadlock, err)
	}
	return err
}

// worker is one pool goroutine: pop a ready task, run its step, and
// route the outcome (done, park, yield) back through the state machine.
func (s *scheduler) worker(steps []func() error, errs []error) {
	for t := range s.runq {
		s.mu.Lock()
		if t.state != taskReady {
			// A queue entry can only exist for a ready task; anything else
			// is a scheduler bug, but skipping is safer than running a
			// task twice.
			s.mu.Unlock()
			continue
		}
		if !t.wake.complete {
			// Spuriously requeued at park time (failpoint): the wait
			// structure still holds the registration and the real wakeup
			// has not arrived. Re-park without running the operation. (If
			// the real wakeup raced in before this pop, complete is true
			// and the task simply runs — the spurious detour is absorbed.)
			t.state = taskParked
			s.nReady--
			s.nParked++
			dead := s.deadlockedLocked()
			s.mu.Unlock()
			if dead {
				s.w.fail(ErrDeadlock)
			}
			continue
		}
		t.state = taskRunning
		s.nReady--
		s.nRunning++
		if s.nRunning > s.maxRunning {
			s.maxRunning = s.nRunning
		}
		wk := t.wake
		t.wake = wakeState{}
		s.mu.Unlock()

		if wk.deliver {
			t.pe.resumePending = true
			t.pe.resumeErr = wk.err
			t.pe.resumeDone = wk.done
		}
		err := runStep(t.pe.id, steps[t.pe.id])

		if sus := AsSuspend(err); sus != nil {
			if sus.Yield {
				s.mu.Lock()
				t.state = taskReady
				t.wake = wakeState{complete: true}
				s.nRunning--
				s.nReady++
				s.yields++
				s.mu.Unlock()
				s.runq <- t
				continue
			}
			// Park request: the blocking operation registered t in a wait
			// structure before returning, so the wakeup may already have
			// raced in while the step was unwinding.
			spur := faultinject.Fire("sched.spurious.unpark")
			s.mu.Lock()
			s.nRunning--
			if t.wake.complete {
				t.state = taskReady
				s.nReady++
				s.mu.Unlock()
				s.runq <- t
				continue
			}
			s.parks++
			if spur {
				// Injected spurious wakeup: requeue with the wake left
				// incomplete. The pop above re-parks it (or runs it, if
				// the real wakeup arrives first); the wait structure's
				// registration stands throughout. The assertion this
				// failpoint buys: no lost wakeup, no double resume.
				s.spurious++
				t.state = taskReady
				s.nReady++
				s.mu.Unlock()
				s.runq <- t
				continue
			}
			t.state = taskParked
			s.nParked++
			dead := s.deadlockedLocked()
			s.mu.Unlock()
			if dead {
				s.w.fail(ErrDeadlock)
			}
			continue
		}

		// The PE finished (nil) or failed (real error).
		if pErr, ok := err.(*taskPanicError); ok {
			errs[t.pe.id] = pErr.err
			s.w.fail(pErr.err)
		} else if err != nil {
			errs[t.pe.id] = fmt.Errorf("PE %d: %w", t.pe.id, err)
			s.w.fail(errs[t.pe.id])
		}
		s.mu.Lock()
		t.state = taskDone
		s.nRunning--
		s.nDone++
		fin := s.nDone == s.w.n
		dead := !fin && s.deadlockedLocked()
		s.mu.Unlock()
		if fin {
			close(s.runq)
		}
		if dead {
			s.w.fail(ErrDeadlock)
		}
	}
}

// deadlockedLocked is the exact deadlock test, valid under s.mu: a real
// wakeup can only be produced by a task currently executing its step
// (barrier completion, lock release, point-to-point put) or by an
// external World.Fail, which itself makes tasks ready under mu. So if
// nothing is running and nothing is ready while PEs remain unfinished,
// no wakeup can ever arrive.
func (s *scheduler) deadlockedLocked() bool {
	return s.nRunning == 0 && s.nReady == 0 && s.nDone < s.w.n
}

// unpark delivers a wakeup to t. done=false marks an intermediate wake
// (a dissemination-barrier round token): the resumed operation re-enters
// its wait loop instead of completing. Callers must not hold any wait-
// structure lock that the woken task's next step could need — the
// convention is: mutate the structure, unlock it, then unpark.
func (s *scheduler) unpark(t *peTask, err error, done bool) {
	s.mu.Lock()
	if t.state == taskDone {
		s.mu.Unlock()
		return
	}
	s.unparks++
	t.wake.complete = true
	t.wake.deliver = true
	t.wake.err = err
	t.wake.done = done
	if t.state != taskParked {
		// Ready (queued, possibly spuriously) or still unwinding toward
		// its park: the worker handling it observes the completed wake
		// under mu and runs it. No second queue entry.
		s.mu.Unlock()
		return
	}
	t.state = taskReady
	s.nParked--
	s.nReady++
	s.mu.Unlock()
	s.runq <- t
}

// taskPanicError carries a recovered panic so the worker can store it
// unwrapped, matching goroutine mode's "PE %d panicked" shape.
type taskPanicError struct{ err error }

func (e *taskPanicError) Error() string { return e.err.Error() }

func runStep(id int, step func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &taskPanicError{fmt.Errorf("PE %d panicked: %v", id, r)}
		}
	}()
	return step()
}
