package shmem

import "sync/atomic"

// Stats aggregates world-wide operation counters, updated atomically by
// all PEs.
type Stats struct {
	RemotePuts    atomic.Int64
	RemoteGets    atomic.Int64
	PutBytes      atomic.Int64
	GetBytes      atomic.Int64
	Barriers      atomic.Int64
	LockAcquires  atomic.Int64
	LockContended atomic.Int64
	Atomics       atomic.Int64
}

// StatsSnapshot is an immutable copy of Stats, plus the worker-scheduler
// activity for worlds run under RunScheduled (zero-valued otherwise).
type StatsSnapshot struct {
	RemotePuts    int64
	RemoteGets    int64
	PutBytes      int64
	GetBytes      int64
	Barriers      int64
	LockAcquires  int64
	LockContended int64
	Atomics       int64
	Sched         SchedSnapshot
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		RemotePuts:    s.RemotePuts.Load(),
		RemoteGets:    s.RemoteGets.Load(),
		PutBytes:      s.PutBytes.Load(),
		GetBytes:      s.GetBytes.Load(),
		Barriers:      s.Barriers.Load(),
		LockAcquires:  s.LockAcquires.Load(),
		LockContended: s.LockContended.Load(),
		Atomics:       s.Atomics.Load(),
	}
}

// PEStats counts one PE's operations (no atomics needed: single writer).
type PEStats struct {
	RemotePuts   int64
	RemoteGets   int64
	Barriers     int64
	LockAcquires int64
}
