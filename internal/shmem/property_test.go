package shmem

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// TestPropertyPutGetShadow drives a random sequence of one-sided puts from
// PE 0 against a shadow model, with a barrier separating the write phase
// from verification: after the barrier, every PE must observe exactly the
// shadow state.
func TestPropertyPutGetShadow(t *testing.T) {
	f := func(writes []uint16) bool {
		const np, slots = 4, 3
		syms := make([]SymbolSpec, slots)
		for i := range syms {
			syms[i] = SymbolSpec{Name: string(rune('a' + i))}
		}
		w, err := NewWorld(np, syms, 0, Options{})
		if err != nil {
			return false
		}
		// shadow[pe][slot] mirrors what PE 0 wrote last.
		var shadow [np][slots]int64
		ok := true
		err = w.Run(func(pe *PE) error {
			for s := 0; s < slots; s++ {
				if err := pe.InitScalar(s, value.NewNumbr(0)); err != nil {
					return err
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.ID() == 0 {
				for i, wv := range writes {
					target := int(wv) % np
					slot := int(wv>>4) % slots
					val := int64(i + 1)
					if err := pe.Put(target, slot, value.NewNumbr(val)); err != nil {
						return err
					}
					shadow[target][slot] = val
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			for target := 0; target < np; target++ {
				for slot := 0; slot < slots; slot++ {
					v, err := pe.Get(target, slot)
					if err != nil {
						return err
					}
					if v.Numbr() != shadow[target][slot] {
						ok = false
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReduceMatchesSequentialFold checks that the parallel
// reduction agrees with a sequential fold over the same inputs for any
// world size 1..8 and any input values.
func TestPropertyReduceMatchesSequentialFold(t *testing.T) {
	f := func(raw []int16, npRaw uint8) bool {
		np := int(npRaw)%8 + 1
		inputs := make([]int64, np)
		for i := range inputs {
			if i < len(raw) {
				inputs[i] = int64(raw[i])
			}
		}
		var want int64
		for _, v := range inputs {
			want += v
		}

		syms := []SymbolSpec{{Name: "v"}}
		w, err := NewWorld(np, syms, 0, Options{})
		if err != nil {
			return false
		}
		ok := true
		err = w.Run(func(pe *PE) error {
			if err := pe.InitScalar(0, value.NewNumbr(inputs[pe.ID()])); err != nil {
				return err
			}
			if err := pe.Reduce(0, ReduceSum); err != nil {
				return err
			}
			v, err := pe.LocalGet(0)
			if err != nil {
				return err
			}
			if v.Numbr() != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDisseminationBarrierUnderWorkerScheduler: for any world
// size, episode count, and pool width, every completed barrier episode
// separates the PEs exactly — after PE p's episode-k barrier returns,
// every PE has published its episode-k arrival. Under the worker
// scheduler the dissemination rounds park and resume mid-episode, so
// this is precisely the property that fails if a PE's round cursor (the
// sense-reversal generation state) does not survive park/resume, or if
// a stale round token releases a waiter into the wrong episode.
func TestPropertyDisseminationBarrierUnderWorkerScheduler(t *testing.T) {
	f := func(npRaw, epRaw, wkRaw uint8) bool {
		np := int(npRaw)%13 + 2 // 2..14, mostly non-powers-of-two
		episodes := int(epRaw)%10 + 1
		workers := int(wkRaw)%4 + 1
		w, err := NewWorld(np, []SymbolSpec{{Name: "progress"}}, 0, Options{Barrier: BarrierDissemination})
		if err != nil {
			return false
		}
		var violated atomic.Bool
		err = w.RunScheduled(workers, func(pe *PE) func() error {
			episode, published := 0, false
			return func() error {
				for episode < episodes {
					if !published {
						if err := pe.Put(pe.ID(), 0, value.NewNumbr(int64(episode+1))); err != nil {
							return err
						}
						published = true
					}
					// May suspend mid-episode; the resumed step re-enters
					// here (published is already true) and continues the
					// same episode from the parked round.
					if err := pe.Barrier(); err != nil {
						return err
					}
					for q := 0; q < np; q++ {
						v, err := pe.Get(q, 0)
						if err != nil {
							return err
						}
						if v.Numbr() < int64(episode+1) {
							violated.Store(true)
						}
					}
					episode++
					published = false
				}
				return nil
			}
		})
		if err != nil || violated.Load() {
			return false
		}
		s := w.Stats().Sched
		return s.Parked == 0 && s.Ready == 0 && s.Running == 0 && s.Parks == s.Unparks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLockSerializesUnderRandomSchedules: with random per-PE work
// patterns, a lock-protected read-modify-write never loses updates.
func TestPropertyLockSerializesUnderRandomSchedules(t *testing.T) {
	f := func(itersRaw [6]uint8) bool {
		const np = 6
		var total int64
		iters := make([]int, np)
		for i := range iters {
			iters[i] = int(itersRaw[i]) % 40
			total += int64(iters[i])
		}
		syms := []SymbolSpec{{Name: "ctr"}}
		w, err := NewWorld(np, syms, 1, Options{})
		if err != nil {
			return false
		}
		ok := true
		err = w.Run(func(pe *PE) error {
			if err := pe.InitScalar(0, value.NewNumbr(0)); err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			for i := 0; i < iters[pe.ID()]; i++ {
				if err := pe.SetLock(0); err != nil {
					return err
				}
				v, err := pe.Get(0, 0)
				if err != nil {
					return err
				}
				if err := pe.Put(0, 0, value.NewNumbr(v.Numbr()+1)); err != nil {
					return err
				}
				if err := pe.ClearLock(0); err != nil {
					return err
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			v, err := pe.Get(0, 0)
			if err != nil {
				return err
			}
			if v.Numbr() != total {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
