package shmem

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/value"
)

func newTestWorld(t *testing.T, n int, syms []SymbolSpec, nLocks int, opts Options) *World {
	t.Helper()
	w, err := NewWorld(n, syms, nLocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldRejectsBadSize(t *testing.T) {
	if _, err := NewWorld(0, nil, 0, Options{}); err == nil {
		t.Fatal("accepted world of size 0")
	}
}

func TestPutGetScalar(t *testing.T) {
	syms := []SymbolSpec{{Name: "x"}}
	w := newTestWorld(t, 4, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		if err := pe.InitScalar(0, value.NewNumbr(int64(pe.ID()))); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		next := (pe.ID() + 1) % pe.NPEs()
		v, err := pe.Get(next, 0)
		if err != nil {
			return err
		}
		if got, want := v.Numbr(), int64(next); got != want {
			t.Errorf("PE %d read %d from PE %d, want %d", pe.ID(), got, next, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := w.Stats(); s.RemoteGets != 4 {
		t.Errorf("RemoteGets = %d, want 4", s.RemoteGets)
	}
}

// TestBarrierSafety checks the fundamental barrier invariant: no PE exits
// barrier episode k before every PE has entered it.
func TestBarrierSafety(t *testing.T) {
	for _, alg := range []BarrierAlg{BarrierCentral, BarrierDissemination} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			const n, episodes = 8, 200
			w := newTestWorld(t, n, nil, 0, Options{Barrier: alg})
			var entered [episodes]atomic.Int64
			err := w.Run(func(pe *PE) error {
				for k := 0; k < episodes; k++ {
					entered[k].Add(1)
					if err := pe.Barrier(); err != nil {
						return err
					}
					if got := entered[k].Load(); got != n {
						t.Errorf("PE %d exited episode %d with %d/%d entries", pe.ID(), k, got, n)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBarrierReleasesOnFailure checks that a failing PE does not leave the
// others blocked forever at HUGZ.
func TestBarrierReleasesOnFailure(t *testing.T) {
	for _, alg := range []BarrierAlg{BarrierCentral, BarrierDissemination} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			w := newTestWorld(t, 4, nil, 0, Options{Barrier: alg})
			err := w.Run(func(pe *PE) error {
				if pe.ID() == 2 {
					return errStub
				}
				return pe.Barrier()
			})
			if err == nil {
				t.Fatal("expected failure to propagate")
			}
			if !strings.Contains(err.Error(), "stub") {
				t.Errorf("error %v does not mention the root cause", err)
			}
		})
	}
}

var errStub = &stubErr{}

type stubErr struct{}

func (*stubErr) Error() string { return "stub failure" }

// TestLockMutualExclusion runs a classic lost-update experiment: with the
// lock the counter is exact; each PE adds its increments under mutual
// exclusion.
func TestLockMutualExclusion(t *testing.T) {
	const n, iters = 8, 100
	syms := []SymbolSpec{{Name: "x"}}
	w := newTestWorld(t, n, syms, 1, Options{})
	err := w.Run(func(pe *PE) error {
		if err := pe.InitScalar(0, value.NewNumbr(0)); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := pe.SetLock(0); err != nil {
				return err
			}
			v, err := pe.Get(0, 0)
			if err != nil {
				return err
			}
			if err := pe.Put(0, 0, value.NewNumbr(v.Numbr()+1)); err != nil {
				return err
			}
			if err := pe.ClearLock(0); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		v, err := pe.Get(0, 0)
		if err != nil {
			return err
		}
		if got := v.Numbr(); got != n*iters {
			t.Errorf("PE %d sees counter %d, want %d", pe.ID(), got, n*iters)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockReleaseWithoutHoldErrors(t *testing.T) {
	w := newTestWorld(t, 1, nil, 1, Options{})
	err := w.Run(func(pe *PE) error { return pe.ClearLock(0) })
	if err == nil {
		t.Fatal("releasing an unheld lock should error")
	}
}

func TestTestLock(t *testing.T) {
	w := newTestWorld(t, 2, nil, 1, Options{})
	err := w.Run(func(pe *PE) error {
		if pe.ID() == 0 {
			if err := pe.SetLock(0); err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil { // partner observes held lock
				return err
			}
			if err := pe.Barrier(); err != nil { // partner done observing
				return err
			}
			return pe.ClearLock(0)
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		ok, err := pe.TestLock(0)
		if err != nil {
			return err
		}
		if ok {
			t.Error("TestLock acquired a lock held by PE 0")
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsymmetricAllocationDetected(t *testing.T) {
	syms := []SymbolSpec{{Name: "a", IsArray: true, Elem: value.Numbr}}
	w := newTestWorld(t, 4, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		size := 16
		if pe.ID() == 3 {
			size = 17 // symmetry violation
		}
		return pe.AllocArray(0, size)
	})
	if err == nil {
		t.Fatal("asymmetric allocation not detected")
	}
	if !strings.Contains(err.Error(), "asymmetric") {
		t.Errorf("error %v does not mention asymmetry", err)
	}
}

func TestArrayPutGet(t *testing.T) {
	syms := []SymbolSpec{{Name: "a", IsArray: true, Elem: value.Numbar}}
	w := newTestWorld(t, 4, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		if err := pe.AllocArray(0, 8); err != nil {
			return err
		}
		arr, err := pe.LocalArray(0)
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := arr.Set(i, value.NewNumbar(float64(pe.ID()*100+i))); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		next := (pe.ID() + 1) % pe.NPEs()
		got, err := pe.GetElem(next, 0, 3)
		if err != nil {
			return err
		}
		if want := float64(next*100 + 3); got.Numbar() != want {
			t.Errorf("PE %d got %v, want %v", pe.ID(), got.Numbar(), want)
		}
		whole, err := pe.GetArray(next, 0)
		if err != nil {
			return err
		}
		if whole.Len() != 8 || whole.Get(7).Numbar() != float64(next*100+7) {
			t.Errorf("PE %d whole-array copy wrong: %v", pe.ID(), whole.Get(7))
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteAccessBeforeAllocationDiagnosed(t *testing.T) {
	syms := []SymbolSpec{{Name: "a", IsArray: true, Elem: value.Numbr}}
	w := newTestWorld(t, 2, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		if pe.ID() == 0 {
			_, err := pe.GetElem(1, 0, 0) // PE 1 may not have allocated yet
			return err
		}
		return nil
	})
	// PE 1 never allocates, so PE 0 must get the teaching diagnostic.
	if err == nil || !strings.Contains(err.Error(), "not allocated") {
		t.Fatalf("want allocation diagnostic, got %v", err)
	}
}

func TestFetchAdd(t *testing.T) {
	syms := []SymbolSpec{{Name: "ctr"}}
	const n, iters = 8, 50
	w := newTestWorld(t, n, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		if err := pe.InitScalar(0, value.NewNumbr(0)); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if _, err := pe.FetchAddNumbr(0, 0, 1); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		v, err := pe.Get(0, 0)
		if err != nil {
			return err
		}
		if v.Numbr() != n*iters {
			t.Errorf("counter = %d, want %d", v.Numbr(), n*iters)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	syms := []SymbolSpec{{Name: "v"}}
	const n = 6
	w := newTestWorld(t, n, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		if err := pe.InitScalar(0, value.NewNumbr(int64(pe.ID()+1))); err != nil {
			return err
		}
		if err := pe.Reduce(0, ReduceSum); err != nil {
			return err
		}
		v, err := pe.LocalGet(0)
		if err != nil {
			return err
		}
		if want := int64(n * (n + 1) / 2); v.Numbr() != want {
			t.Errorf("PE %d reduce sum = %d, want %d", pe.ID(), v.Numbr(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitUntil(t *testing.T) {
	syms := []SymbolSpec{{Name: "flag"}}
	w := newTestWorld(t, 2, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		if err := pe.InitScalar(0, value.NewNumbr(0)); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.ID() == 0 {
			return pe.Put(1, 0, value.NewNumbr(42))
		}
		if err := pe.WaitUntilNumbr(0, WaitEq, 42); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	syms := []SymbolSpec{{Name: "v"}}
	w := newTestWorld(t, 5, syms, 0, Options{})
	err := w.Run(func(pe *PE) error {
		if err := pe.InitScalar(0, value.NewNumbr(int64(pe.ID()))); err != nil {
			return err
		}
		if err := pe.Broadcast(3, 0); err != nil {
			return err
		}
		v, err := pe.LocalGet(0)
		if err != nil {
			return err
		}
		if v.Numbr() != 3 {
			t.Errorf("PE %d broadcast value = %d, want 3", pe.ID(), v.Numbr())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
