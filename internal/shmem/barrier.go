package shmem

import "sync"

// barrier is the internal collective-barrier interface. wait is the
// goroutine-mode entry (blocks the caller); arrive is the scheduler-mode
// entry (returns *Suspend instead of blocking, with the wait structure
// unparking the task later). wake releases all waiters — blocked AND
// parked — after a world failure so SPMD programs tear down instead of
// deadlocking.
type barrier interface {
	wait(pe int, w *World) error
	arrive(t *peTask) error
	wake()
}

// centralBarrier is a sense-reversing central barrier: a mutex-protected
// arrival count plus a generation number broadcast over a condition
// variable. Simple, fair enough, and O(n) wakeup — the teaching default.
//
// Scheduler mode shares the arrival count: parked tasks are appended to
// parked instead of waiting on cond, and the episode-closing arrival (or
// wake) drains that list with explicit unparks. The sense-reversal
// generation is preserved structurally — parked is emptied atomically
// with the gen++ under mu, so a task parked in episode k can never be
// woken by episode k+1's completion.
type centralBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	broken  bool
	parked  []*peTask
}

func newCentralBarrier(n int) *centralBarrier {
	b := &centralBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *centralBarrier) wait(pe int, w *World) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return ErrWorldFailed
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for b.gen == gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		return ErrWorldFailed
	}
	return nil
}

func (b *centralBarrier) arrive(t *peTask) error {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return ErrWorldFailed
	}
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		woken := b.parked
		b.parked = nil
		// A world is scheduled or goroutine-per-PE, never both, but
		// broadcasting is harmless and keeps wait/arrive composable.
		b.cond.Broadcast()
		b.mu.Unlock()
		for _, pt := range woken {
			pt.sched.unpark(pt, nil, true)
		}
		return nil
	}
	b.parked = append(b.parked, t)
	b.mu.Unlock()
	return suspendPark
}

func (b *centralBarrier) wake() {
	b.mu.Lock()
	b.broken = true
	woken := b.parked
	b.parked = nil
	b.cond.Broadcast()
	b.mu.Unlock()
	// Parked waiters hold no goroutine to observe the broadcast; they
	// must be unparked explicitly or a failing world strands them.
	for _, pt := range woken {
		pt.sched.unpark(pt, ErrWorldFailed, true)
	}
}

// disseminationBarrier runs ceil(log2 n) rounds; in round r, PE p sends a
// token to PE (p + 2^r) mod n and receives one from PE (p - 2^r) mod n.
// Token channels have capacity 2: a PE can be at most two barrier episodes
// ahead of a partner (completing episode k+2 implies every PE entered it,
// hence consumed its episode-k token), so two slots can never overflow.
//
// Scheduler mode replaces the channels with counters (ptokens) plus a
// parked-task slot per (round, PE), all under one mutex, and keeps the
// per-PE round cursor (pround/pdeposited) ON the barrier so it survives
// park/resume: a task woken by a round token re-enters arrive and
// continues from the round it parked in, not from round 0. The cap-2
// skew argument bounds the counters exactly as it bounds the channels.
type disseminationBarrier struct {
	n      int
	rounds int
	// ch[r][p] carries the token received by PE p in round r.
	ch     [][]chan struct{}
	failCh <-chan struct{}

	// Scheduler-mode state, lazily initialized, all under pmu.
	pmu        sync.Mutex
	pbroken    bool
	ptokens    [][]int     // ptokens[r][p]: undelivered round-r tokens for PE p
	pwait      [][]*peTask // pwait[r][p]: task parked on its round-r token
	pround     []int       // PE p's current round in its current episode
	pdeposited []bool      // PE p already sent its pround[p] token
}

func newDisseminationBarrier(n int, failCh <-chan struct{}) *disseminationBarrier {
	rounds := 0
	for (1 << rounds) < n {
		rounds++
	}
	b := &disseminationBarrier{n: n, rounds: rounds, failCh: failCh}
	b.ch = make([][]chan struct{}, rounds)
	for r := 0; r < rounds; r++ {
		b.ch[r] = make([]chan struct{}, n)
		for p := 0; p < n; p++ {
			b.ch[r][p] = make(chan struct{}, 2)
		}
	}
	return b
}

func (b *disseminationBarrier) wait(pe int, w *World) error {
	for r := 0; r < b.rounds; r++ {
		to := (pe + (1 << r)) % b.n
		select {
		case b.ch[r][to] <- struct{}{}:
		case <-b.failCh:
			return ErrWorldFailed
		}
		select {
		case <-b.ch[r][pe]:
		case <-b.failCh:
			return ErrWorldFailed
		}
	}
	return nil
}

func (b *disseminationBarrier) arrive(t *peTask) error {
	pe := t.pe.id
	b.pmu.Lock()
	if b.ptokens == nil {
		b.ptokens = make([][]int, b.rounds)
		b.pwait = make([][]*peTask, b.rounds)
		for r := 0; r < b.rounds; r++ {
			b.ptokens[r] = make([]int, b.n)
			b.pwait[r] = make([]*peTask, b.n)
		}
		b.pround = make([]int, b.n)
		b.pdeposited = make([]bool, b.n)
	}
	if b.pbroken {
		b.pmu.Unlock()
		return ErrWorldFailed
	}
	var wakes []*peTask
	for b.pround[pe] < b.rounds {
		r := b.pround[pe]
		if !b.pdeposited[pe] {
			to := (pe + (1 << r)) % b.n
			b.ptokens[r][to]++
			b.pdeposited[pe] = true
			if wt := b.pwait[r][to]; wt != nil {
				b.pwait[r][to] = nil
				wakes = append(wakes, wt)
			}
		}
		if b.ptokens[r][pe] > 0 {
			b.ptokens[r][pe]--
			b.pround[pe]++
			b.pdeposited[pe] = false
			continue
		}
		b.pwait[r][pe] = t
		b.pmu.Unlock()
		// Intermediate wakes (done=false): the woken task re-enters
		// arrive and resumes from its own pround cursor.
		for _, wt := range wakes {
			wt.sched.unpark(wt, nil, false)
		}
		return suspendPark
	}
	// Episode complete for this PE: reset its cursor for the next HUGZ.
	b.pround[pe] = 0
	b.pdeposited[pe] = false
	b.pmu.Unlock()
	for _, wt := range wakes {
		wt.sched.unpark(wt, nil, false)
	}
	return nil
}

func (b *disseminationBarrier) wake() {
	// Goroutine-mode waiters select on failCh, which the world closes
	// before calling wake. Parked tasks must be drained explicitly.
	b.pmu.Lock()
	b.pbroken = true
	var wakes []*peTask
	for r := range b.pwait {
		for p, t := range b.pwait[r] {
			if t != nil {
				b.pwait[r][p] = nil
				wakes = append(wakes, t)
			}
		}
	}
	b.pmu.Unlock()
	for _, t := range wakes {
		t.sched.unpark(t, ErrWorldFailed, true)
	}
}
