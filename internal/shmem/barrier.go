package shmem

import "sync"

// barrier is the internal collective-barrier interface. wake releases all
// waiters after a world failure so SPMD programs tear down instead of
// deadlocking.
type barrier interface {
	wait(pe int, w *World) error
	wake()
}

// centralBarrier is a sense-reversing central barrier: a mutex-protected
// arrival count plus a generation number broadcast over a condition
// variable. Simple, fair enough, and O(n) wakeup — the teaching default.
type centralBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	broken  bool
}

func newCentralBarrier(n int) *centralBarrier {
	b := &centralBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *centralBarrier) wait(pe int, w *World) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return ErrWorldFailed
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for b.gen == gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		return ErrWorldFailed
	}
	return nil
}

func (b *centralBarrier) wake() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// disseminationBarrier runs ceil(log2 n) rounds; in round r, PE p sends a
// token to PE (p + 2^r) mod n and receives one from PE (p - 2^r) mod n.
// Token channels have capacity 2: a PE can be at most two barrier episodes
// ahead of a partner (completing episode k+2 implies every PE entered it,
// hence consumed its episode-k token), so two slots can never overflow.
type disseminationBarrier struct {
	n      int
	rounds int
	// ch[r][p] carries the token received by PE p in round r.
	ch     [][]chan struct{}
	failCh <-chan struct{}
}

func newDisseminationBarrier(n int, failCh <-chan struct{}) *disseminationBarrier {
	rounds := 0
	for (1 << rounds) < n {
		rounds++
	}
	b := &disseminationBarrier{n: n, rounds: rounds, failCh: failCh}
	b.ch = make([][]chan struct{}, rounds)
	for r := 0; r < rounds; r++ {
		b.ch[r] = make([]chan struct{}, n)
		for p := 0; p < n; p++ {
			b.ch[r][p] = make(chan struct{}, 2)
		}
	}
	return b
}

func (b *disseminationBarrier) wait(pe int, w *World) error {
	for r := 0; r < b.rounds; r++ {
		to := (pe + (1 << r)) % b.n
		select {
		case b.ch[r][to] <- struct{}{}:
		case <-b.failCh:
			return ErrWorldFailed
		}
		select {
		case <-b.ch[r][pe]:
		case <-b.failCh:
			return ErrWorldFailed
		}
	}
	return nil
}

func (b *disseminationBarrier) wake() {
	// Waiters select on failCh, which the world closes before calling wake;
	// nothing further to do.
}
