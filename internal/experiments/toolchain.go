package experiments

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/gogen"
	"repro/internal/interp"
)

// Toolchain runs experiment E3: the §VI.E workflow. Every .lol program in
// dir is lowered to Go the way lcc lowered LOLCODE to C; the report shows
// the generated size and verifies the output is valid Go. (The gogen test
// suite additionally builds and runs a generated program with the host
// toolchain and compares output against the interpreter.)
func Toolchain(w io.Writer, dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "*.lol"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("experiments: no .lol programs under %s", dir)
	}
	sort.Strings(files)

	fmt.Fprintf(w, "E3 — lcc source-to-source toolchain over %s\n", dir)
	fmt.Fprintf(w, "%-18s %-10s %-12s %-10s\n", "program", "lol lines", "go lines", "valid go")
	for _, f := range files {
		prog, err := core.ParseFile(f)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		out, err := gogen.Emit(prog.Info)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		fset := token.NewFileSet()
		_, parseErr := parser.ParseFile(fset, "gen.go", out, 0)
		ok := "yes"
		if parseErr != nil {
			ok = "NO: " + parseErr.Error()
		}
		fmt.Fprintf(w, "%-18s %-10d %-12d %-10s\n",
			filepath.Base(f),
			strings.Count(prog.Source, "\n")+1,
			strings.Count(string(out), "\n")+1,
			ok)
		if parseErr != nil {
			return fmt.Errorf("experiments: %s generated invalid Go", f)
		}
	}
	fmt.Fprintln(w, "\nequivalent of: lcc code.lol -o x && coprsh -np 16 ./x")
	return nil
}

// Listings runs the paper's §VI example programs (A: ring, B: locks,
// C: Figure 2 code, D: n-body) at the given PE count and prints their
// output, grouped by PE for readability.
func Listings(w io.Writer, dir string, np int, which string) error {
	names := map[string]string{
		"A": "ring.lol",
		"B": "locks.lol",
		"C": "fig2.lol",
		"D": "nbody.lol",
	}
	file, ok := names[strings.ToUpper(which)]
	if !ok {
		return fmt.Errorf("experiments: unknown listing %q (want A, B, C, or D)", which)
	}
	path := filepath.Join(dir, file)
	prog, err := core.ParseFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "§VI.%s — %s at np=%d\n\n", strings.ToUpper(which), file, np)
	res, err := prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config:  interp.Config{NP: np, Seed: 7, Stdout: w, GroupOutput: true},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(%d remote puts, %d remote gets, %d barrier episodes)\n",
		res.Stats.RemotePuts, res.Stats.RemoteGets, res.Stats.Barriers/int64(np))
	return nil
}
