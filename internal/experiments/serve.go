package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
)

// Serve is the load-generator experiment for the lolserv execution
// service: it stands up the real HTTP handler in-process, drives it with
// `clients` concurrent connections issuing `requests` jobs each over a
// mixed working set (several programs × all three backends), and reports
// throughput, compiled-program cache hit rate, and the latency
// distribution (p50/p90/p99). This is the measurable form of the
// ROADMAP's serve-heavy-traffic goal: the program cache should absorb
// every frontend cost after the first sight of each program, and the
// bounded worker pool should keep tail latency finite under saturation.
// The returned metrics feed BENCH_serve.json (`lolbench serve -bench-json`).
func Serve(w io.Writer, clients, requests, workers int) (*ServeMetrics, error) {
	if clients <= 0 {
		clients = 8
	}
	if requests <= 0 {
		requests = 50
	}
	if workers <= 0 {
		workers = 4
	}

	srv := server.New(server.Options{
		Workers:    workers,
		QueueDepth: clients * 4,
		CacheSize:  64,
		// This scenario measures the execution/pool path: with the
		// result cache on, the repeating (src, backend, np, seed) tuples
		// would degenerate into lookups and the latency numbers would
		// stop meaning what the doc comment says. ServeZipf is the
		// designated cache-on measurement.
		ResultCacheSize: -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The working set: small, distinct programs so the run is dominated by
	// service overhead rather than program runtime, mixed across engines.
	programs := []string{
		"HAI 1.2\nVISIBLE SMOOSH \"PE \" AN ME MKAY\nKTHXBYE",
		"HAI 1.2\nI HAS A x ITZ 0\nIM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n  x R SUM OF x AN i\nIM OUTTA YR l\nVISIBLE x\nKTHXBYE",
		GenMonteCarlo(200, 2),
		"HAI 1.2\nWE HAS A c ITZ A NUMBR AN ITZ ME\nHUGZ\nVISIBLE SUM OF c AN MAH FRENZ\nKTHXBYE",
	}
	nps := []int{1, 2, 2, 2}
	backends := []string{"interp", "vm", "compile"}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  int
		firstErr  error
	)
	client := ts.Client()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				i := (c + r) % len(programs)
				req := server.RunRequest{
					Src:     programs[i],
					NP:      nps[i],
					Backend: backends[(c+r)%len(backends)],
					Seed:    1,
				}
				body, err := json.Marshal(req)
				if err != nil {
					recordFailure(&mu, &failures, &firstErr, err)
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					recordFailure(&mu, &failures, &firstErr, err)
					continue
				}
				var rr server.RunResponse
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				switch {
				case err != nil:
					recordFailure(&mu, &failures, &firstErr, err)
				case resp.StatusCode != http.StatusOK || rr.Outcome != server.OutcomeOK:
					recordFailure(&mu, &failures, &firstErr,
						fmt.Errorf("job failed: status %d outcome %q: %s", resp.StatusCode, rr.Outcome, rr.Error))
				default:
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	// Server-side attribution, read back through the same front door an
	// operator's Prometheus would use.
	queueP99, stageP99, err := obsScrape(client, ts.URL)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	total := clients * requests
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	m := &ServeMetrics{
		Scenario: "mixed", Clients: clients, Requests: requests, Workers: workers,
		ReqPerSec:           float64(total) / elapsed.Seconds(),
		P50MS:               ms(quantile(latencies, 0.50)),
		P90MS:               ms(quantile(latencies, 0.90)),
		P99MS:               ms(quantile(latencies, 0.99)),
		ProgramCacheHitRate: st.Cache.HitRate(),
		TierRates:           tierRates(st),
		Failures:            failures,
		QueueWaitP99MS:      queueP99,
		StageP99MS:          stageP99,
	}
	fmt.Fprintf(w, "serve — lolserv load experiment (the production-service side of §VI's launcher)\n")
	fmt.Fprintf(w, "%-26s %d clients x %d requests, %d workers, %d distinct programs x %d backends\n",
		"workload:", clients, requests, workers, len(programs), len(backends))
	fmt.Fprintf(w, "%-26s %d ok, %d failed, %.0f req/s over %.2fs\n",
		"throughput:", len(latencies), failures, float64(total)/elapsed.Seconds(), elapsed.Seconds())
	fmt.Fprintf(w, "%-26s %.1f%% (%d hits / %d lookups; %d unique compiles, %d evictions)\n",
		"program cache hit rate:", 100*st.Cache.HitRate(), st.Cache.Hits, st.Cache.Hits+st.Cache.Misses,
		st.Cache.Misses, st.Cache.Evicted)
	if len(latencies) > 0 {
		fmt.Fprintf(w, "%-26s p50 %s   p90 %s   p99 %s   max %s\n", "request latency:",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			quantile(latencies, 0.99), latencies[len(latencies)-1].Round(time.Microsecond))
	}
	printStageAttribution(w, queueP99, stageP99)
	if firstErr != nil {
		return nil, fmt.Errorf("serve: %d/%d requests failed; first failure: %w", failures, total, firstErr)
	}
	return m, nil
}

func recordFailure(mu *sync.Mutex, failures *int, firstErr *error, err error) {
	mu.Lock()
	*failures++
	if *firstErr == nil {
		*firstErr = err
	}
	mu.Unlock()
}

// quantile reads the q-quantile from sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(time.Microsecond)
}
