package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/machine"
	"repro/internal/shmem"
	"repro/internal/value"
)

// RemoteAccess reports the simulated cost of one-sided puts and gets as a
// function of mesh distance on the Parallella model — the Epiphany's
// defining asymmetry (writes cheap, reads ~8x) and distance dependence,
// which Table II's UR/MAH semantics expose to students.
func RemoteAccess(w io.Writer) error {
	model := machine.NewParallella()
	fmt.Fprintf(w, "T2 micro — one-sided access cost on the Epiphany mesh model (8-byte payload)\n")
	fmt.Fprintf(w, "%-22s %-8s %-14s %-14s %-8s\n", "route", "hops", "put (ns sim)", "get (ns sim)", "get/put")
	routes := []struct {
		name     string
		src, dst int
	}{
		{"self (0 -> 0)", 0, 0},
		{"neighbour (0 -> 1)", 0, 1},
		{"same row (0 -> 3)", 0, 3},
		{"diagonal (0 -> 5)", 0, 5},
		{"corner (0 -> 15)", 0, 15},
	}
	for _, r := range routes {
		put := model.PutNanos(r.src, r.dst, 8)
		get := model.GetNanos(r.src, r.dst, 8)
		ratio := "-"
		if put > 0 {
			ratio = fmt.Sprintf("%.1fx", get/put)
		}
		fmt.Fprintf(w, "%-22s %-8d %-14.2f %-14.2f %-8s\n",
			r.name, model.Mesh().Hops(r.src, r.dst), put, get, ratio)
	}

	x := machine.NewXC40()
	fmt.Fprintf(w, "\nsame operations on the XC40 model:\n")
	fmt.Fprintf(w, "%-22s %-14s %-14s\n", "locality", "put (ns sim)", "get (ns sim)")
	tiers := []struct {
		name     string
		src, dst int
	}{
		{"same node", 0, 1},
		{"same group", 0, x.PEsPerNode},
		{"cross fabric", 0, x.PEsPerNode * x.NodesPerGroup},
	}
	for _, tr := range tiers {
		fmt.Fprintf(w, "%-22s %-14.0f %-14.0f\n", tr.name,
			x.PutNanos(tr.src, tr.dst, 8), x.GetNanos(tr.src, tr.dst, 8))
	}
	return nil
}

// LockContention measures throughput of the implicit-lock protocol as
// contention grows: np PEs all hammering one lock (the §VI.B pattern).
type LockContentionResult struct {
	NP         int
	OpsPerSec  float64
	Contended  int64
	FinalExact bool
}

// LockContention runs the lock microbenchmark and reports per-np rows.
func LockContention(w io.Writer, npList []int, itersPerPE int) ([]LockContentionResult, error) {
	fmt.Fprintf(w, "T2 micro — lock acquire/release under contention (%d ops per PE)\n", itersPerPE)
	fmt.Fprintf(w, "%-6s %-14s %-12s %-8s\n", "np", "locked ops/s", "contended", "exact")

	var results []LockContentionResult
	for _, np := range npList {
		syms := []shmem.SymbolSpec{{Name: "ctr"}}
		world, err := shmem.NewWorld(np, syms, 1, shmem.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		err = world.Run(func(pe *shmem.PE) error {
			if err := pe.InitScalar(0, value.NewNumbr(0)); err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			for i := 0; i < itersPerPE; i++ {
				if err := pe.SetLock(0); err != nil {
					return err
				}
				v, err := pe.Get(0, 0)
				if err != nil {
					return err
				}
				if err := pe.Put(0, 0, value.NewNumbr(v.Numbr()+1)); err != nil {
					return err
				}
				if err := pe.ClearLock(0); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)

		final, err := finalCounter(world, np)
		if err != nil {
			return nil, err
		}
		stats := world.Stats()
		r := LockContentionResult{
			NP:         np,
			OpsPerSec:  float64(np*itersPerPE) / elapsed.Seconds(),
			Contended:  stats.LockContended,
			FinalExact: final == int64(np*itersPerPE),
		}
		results = append(results, r)
		fmt.Fprintf(w, "%-6d %-14.0f %-12d %-8v\n", r.NP, r.OpsPerSec, r.Contended, r.FinalExact)
		if !r.FinalExact {
			return nil, fmt.Errorf("experiments: lock lost updates at np=%d (counter %d)", np, final)
		}
	}
	fmt.Fprintln(w, "\nexactness under every contention level is the mutual-exclusion result of §VI.B")
	return results, nil
}

// finalCounter reads the counter on PE 0 after the world has finished.
func finalCounter(world *shmem.World, np int) (int64, error) {
	var out int64
	err := world.Run(func(pe *shmem.PE) error {
		if pe.ID() != 0 {
			return nil
		}
		v, err := pe.LocalGet(0)
		if err != nil {
			return err
		}
		out = v.Numbr()
		return nil
	})
	return out, err
}
