package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/server"
)

// ServeZipf is the hot-key batch scenario for the lolserv result cache:
// the classroom workload of the paper, scaled — many clients submit
// whole assignments as /v1/batch requests whose jobs are drawn
// zipfian-distributed from a small program set, so a handful of
// (program, NP, seed) keys dominate the traffic. The same deterministic
// workload runs twice, result cache on and off (`-result-cache=0`), and
// the report is the measured multiplier plus a byte-level check that
// both phases returned identical response bodies — the cache must buy
// speed, never different answers. The returned metrics feed
// BENCH_serve.json (`lolbench serve -bench-json`).
func ServeZipf(w io.Writer, clients, requests, workers int) (*ServeMetrics, error) {
	if clients <= 0 {
		clients = 8
	}
	if requests <= 0 {
		requests = 50
	}
	if workers <= 0 {
		workers = 4
	}

	// The working set: pure-compute kernels of graded cost, all of which
	// pass the determinism audit at any NP. The interpreter is the
	// engine a course defaults to, and the one whose re-execution is
	// most worth eliding.
	const nProgs = 8
	progs := make([]server.RunRequest, nProgs)
	for k := 0; k < nProgs; k++ {
		src := fmt.Sprintf(`HAI 1.2
I HAS A x ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN %d
  x R SUM OF x AN MOD OF i AN 7
IM OUTTA YR l
VISIBLE x
KTHXBYE`, 2000+1000*k)
		progs[k] = server.RunRequest{Src: src, NP: 1 + k%3, Backend: "interp", Seed: 1}
	}

	// semantic is the replayable part of a response: what the acceptance
	// check compares across phases. Timing and cache-diagnostic fields
	// legitimately differ.
	type semantic struct {
		Outcome server.Outcome
		Output  string
		Errout  string
		Error   string
	}

	const batchLen = 25
	type phaseObs struct {
		queueP99MS float64
		stageP99MS map[string]float64
	}
	runPhase := func(resultCache int) (reqps float64, bodies map[int]semantic, st server.Stats, po phaseObs, err error) {
		srv := server.New(server.Options{
			Workers:         workers,
			QueueDepth:      clients * batchLen * 2,
			CacheSize:       64,
			ResultCacheSize: resultCache,
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()

		bodies = make(map[int]semantic, nProgs)
		var mu sync.Mutex
		var firstErr error
		record := func(prog int, got semantic) {
			mu.Lock()
			defer mu.Unlock()
			if got.Outcome != server.OutcomeOK && firstErr == nil {
				firstErr = fmt.Errorf("program %d: outcome %q: %s", prog, got.Outcome, got.Error)
				return
			}
			if prev, ok := bodies[prog]; !ok {
				bodies[prog] = got
			} else if prev != got && firstErr == nil {
				firstErr = fmt.Errorf("program %d answered two different bodies within one phase", prog)
			}
		}

		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Deterministic per-client zipf stream: both phases draw
				// the exact same job sequence.
				zipf := rand.NewZipf(rand.New(rand.NewSource(int64(1000+c))), 1.4, 1, nProgs-1)
				sent := 0
				for sent < requests {
					n := batchLen
					if requests-sent < n {
						n = requests - sent
					}
					idxs := make([]int, n)
					batch := server.BatchRequest{Jobs: make([]server.RunRequest, n)}
					for i := range idxs {
						idxs[i] = int(zipf.Uint64())
						batch.Jobs[i] = progs[idxs[i]]
					}
					sent += n

					body, merr := json.Marshal(batch)
					if merr != nil {
						record(-1, semantic{Outcome: "error", Error: merr.Error()})
						continue
					}
					resp, perr := client.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
					if perr != nil {
						record(-1, semantic{Outcome: "error", Error: perr.Error()})
						continue
					}
					sc := bufio.NewScanner(resp.Body)
					sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
					got := 0
					for sc.Scan() {
						var item server.BatchItem
						if uerr := json.Unmarshal(sc.Bytes(), &item); uerr != nil {
							record(-1, semantic{Outcome: "error", Error: uerr.Error()})
							continue
						}
						got++
						record(idxs[item.Index], semantic{
							Outcome: item.Outcome, Output: item.Output,
							Errout: item.Errout, Error: item.Error,
						})
					}
					resp.Body.Close()
					if got != n {
						record(-1, semantic{Outcome: "error",
							Error: fmt.Sprintf("batch returned %d/%d items", got, n)})
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st = srv.Stats()
		// Scrape while the test server is still up: server-side queue and
		// stage attribution for this phase.
		if po.queueP99MS, po.stageP99MS, err = obsScrape(client, ts.URL); err != nil {
			return 0, nil, st, po, err
		}
		return float64(clients*requests) / elapsed.Seconds(), bodies, st, po, firstErr
	}

	cachedRPS, cachedBodies, cachedStats, cachedObs, err := runPhase(0 /* default size */)
	if err != nil {
		return nil, fmt.Errorf("servezipf (cache on): %w", err)
	}
	plainRPS, plainBodies, plainStats, _, err := runPhase(-1 /* -result-cache=0 */)
	if err != nil {
		return nil, fmt.Errorf("servezipf (cache off): %w", err)
	}

	// The correctness half of the claim: caching must be invisible in
	// the bytes.
	for prog, want := range plainBodies {
		if got, ok := cachedBodies[prog]; !ok || got != want {
			return nil, fmt.Errorf("servezipf: program %d: cached body differs from uncached execution\ncached:   %+v\nuncached: %+v",
				prog, cachedBodies[prog], want)
		}
	}

	rc := cachedStats.ResultCache
	total := int64(clients * requests)
	m := &ServeMetrics{
		Scenario: "zipf", Clients: clients, Requests: requests, Workers: workers,
		ReqPerSec: cachedRPS, BaselineReqPerSec: plainRPS, Speedup: cachedRPS / plainRPS,
		ProgramCacheHitRate: cachedStats.Cache.HitRate(),
		ResultCacheHitRate:  rc.HitRate(),
		TierRates:           tierRates(cachedStats),
		QueueWaitP99MS:      cachedObs.queueP99MS,
		StageP99MS:          cachedObs.stageP99MS,
	}
	fmt.Fprintf(w, "servezipf — hot-key batch workload over /v1/batch (result cache on vs -result-cache=0)\n")
	fmt.Fprintf(w, "%-26s %d clients x %d jobs in batches of %d; zipf(1.4) over %d programs x NP{1,2,3}; %d workers\n",
		"workload:", clients, requests, batchLen, nProgs, workers)
	fmt.Fprintf(w, "%-26s %.0f req/s with result cache, %.0f req/s without\n", "throughput:", cachedRPS, plainRPS)
	fmt.Fprintf(w, "%-26s %.1fx on identical response bodies (verified per program)\n", "speedup:", cachedRPS/plainRPS)
	fmt.Fprintf(w, "%-26s %d hits + %d coalesced + %d misses over %d jobs (%.1f%% served without executing; %d executions vs %d uncached)\n",
		"result cache:", rc.Hits, rc.Coalesced, rc.Misses, total,
		100*float64(rc.Hits+rc.Coalesced)/float64(total), cachedStats.JobsRun, plainStats.JobsRun)
	printStageAttribution(w, cachedObs.queueP99MS, cachedObs.stageP99MS)
	return m, nil
}
