package experiments

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// The serve experiments report server-side latency attribution next to
// the client-side numbers, and they get it the way an operator would: by
// scraping GET /metrics and computing quantiles from the cumulative
// histogram buckets (the same estimate Prometheus's histogram_quantile
// yields). Parsing our own exposition doubles as an end-to-end check
// that the format is consumable.

// bucketSeries is one histogram's cumulative buckets for one labelset.
type bucketSeries struct {
	labels map[string]string // le excluded
	bounds []float64         // finite bounds, ascending
	cum    []uint64          // len(bounds)+1; last is +Inf
}

// obsScrape fetches baseURL+"/metrics" and derives the queue-wait p99
// and the per-stage p99s (milliseconds, stages merged across tiers) from
// the server's histograms.
func obsScrape(client *http.Client, baseURL string) (queueWaitP99MS float64, stageP99MS map[string]float64, err error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return 0, nil, fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("scraping /metrics: status %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("scraping /metrics: %w", err)
	}

	queue := parseBucketSeries(string(text), "lolserv_queue_wait_seconds")
	if p99, ok := mergedQuantile(queue, nil, 0.99); ok {
		queueWaitP99MS = 1000 * p99
	}
	stages := parseBucketSeries(string(text), "lolserv_stage_seconds")
	names := map[string]bool{}
	for _, s := range stages {
		names[s.labels["stage"]] = true
	}
	stageP99MS = make(map[string]float64, len(names))
	for name := range names {
		if p99, ok := mergedQuantile(stages, map[string]string{"stage": name}, 0.99); ok {
			stageP99MS[name] = 1000 * p99
		}
	}
	return queueWaitP99MS, stageP99MS, nil
}

// printStageAttribution renders the scraped server-side attribution the
// same way in every serve scenario's report.
func printStageAttribution(w io.Writer, queueP99MS float64, stageP99MS map[string]float64) {
	fmt.Fprintf(w, "%-26s p99 %.3fms\n", "queue wait (server):", queueP99MS)
	order := []string{"admission", "result_cache", "queue_wait", "program_cache", "compile", "execute", "respond"}
	var parts []string
	for _, name := range order {
		if v, ok := stageP99MS[name]; ok {
			parts = append(parts, fmt.Sprintf("%s %.3f", name, v))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "%-26s %s (ms)\n", "stage p99 (server):", strings.Join(parts, "   "))
	}
}

// parseBucketSeries extracts metric's cumulative _bucket series from
// Prometheus text exposition, one bucketSeries per distinct labelset.
func parseBucketSeries(text, metric string) []bucketSeries {
	type sample struct {
		le  float64
		cum uint64
	}
	prefix := metric + "_bucket{"
	groups := map[string]*struct {
		labels  map[string]string
		samples []sample
	}{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		end := strings.Index(rest, "} ")
		if end < 0 {
			continue
		}
		labels := parseLabels(rest[:end])
		val, err := strconv.ParseUint(strings.TrimSpace(rest[end+2:]), 10, 64)
		if err != nil {
			continue
		}
		leStr, ok := labels["le"]
		if !ok {
			continue
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			var perr error
			if le, perr = strconv.ParseFloat(leStr, 64); perr != nil {
				continue
			}
		}
		delete(labels, "le")
		key := labelKey(labels)
		g := groups[key]
		if g == nil {
			g = &struct {
				labels  map[string]string
				samples []sample
			}{labels: labels}
			groups[key] = g
		}
		g.samples = append(g.samples, sample{le: le, cum: val})
	}

	out := make([]bucketSeries, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g.samples, func(i, j int) bool { return g.samples[i].le < g.samples[j].le })
		s := bucketSeries{labels: g.labels}
		for _, smp := range g.samples {
			if !math.IsInf(smp.le, 1) {
				s.bounds = append(s.bounds, smp.le)
			}
			s.cum = append(s.cum, smp.cum)
		}
		if len(s.cum) == len(s.bounds)+1 {
			out = append(out, s)
		}
	}
	return out
}

// parseLabels splits `a="x",b="y"` honouring the exposition's escapes.
func parseLabels(s string) map[string]string {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=\"")
		if eq < 0 {
			break
		}
		name := s[:eq]
		s = s[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		s = s[i:]
		s = strings.TrimPrefix(s, "\"")
		s = strings.TrimPrefix(s, ",")
	}
	return out
}

func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
		sb.WriteByte(';')
	}
	return sb.String()
}

// mergedQuantile merges every series whose labels include match (nil
// matches all) and computes the q-quantile over the union. Series with
// differing bucket layouts are skipped rather than mis-merged.
func mergedQuantile(series []bucketSeries, match map[string]string, q float64) (float64, bool) {
	var bounds []float64
	var cum []uint64
	for _, s := range series {
		ok := true
		for k, v := range match {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if bounds == nil {
			bounds = s.bounds
			cum = append([]uint64(nil), s.cum...)
			continue
		}
		if len(s.bounds) != len(bounds) {
			continue
		}
		same := true
		for i := range bounds {
			if s.bounds[i] != bounds[i] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		for i := range cum {
			cum[i] += s.cum[i]
		}
	}
	if bounds == nil || len(cum) == 0 || cum[len(cum)-1] == 0 {
		return 0, false
	}
	return obs.QuantileFromCumulative(bounds, cum, q), true
}
