package experiments

import "fmt"

// GenMonteCarlo builds the Monte Carlo pi workload: every PE throws darts
// at the unit square using its own WHATEVAR stream (Table III), writes its
// hit count one-sided into PE 0's symmetric array, and PE 0 combines after
// the barrier. np sizes the result array and must match the PE count the
// program is launched with. examples/montecarlo runs it standalone; the E1
// experiment and the backend benchmarks use it as the random-heavy kernel.
func GenMonteCarlo(darts, np int) string {
	return fmt.Sprintf(`HAI 1.2
I HAS A darts ITZ A NUMBR AN ITZ %d
WE HAS A hits ITZ SRSLY LOTZ A NUMBRS AN THAR IZ %d
BTW synchronize so no PE's one-sided write can beat PE 0's allocation
HUGZ

I HAS A x ITZ SRSLY A NUMBAR
I HAS A y ITZ SRSLY A NUMBAR
I HAS A insider ITZ A NUMBR AN ITZ 0

IM IN YR throwin UPPIN YR i TIL BOTH SAEM i AN darts
  x R WHATEVAR
  y R WHATEVAR
  SMALLR SUM OF SQUAR OF x AN SQUAR OF y AN 1.0, O RLY?
  YA RLY
    insider R SUM OF insider AN 1
  OIC
IM OUTTA YR throwin

TXT MAH BFF 0, UR hits'Z ME R insider

HUGZ

BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A total ITZ A NUMBR AN ITZ 0
  IM IN YR gatherin UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    total R SUM OF total AN hits'Z k
  IM OUTTA YR gatherin
  I HAS A pi ITZ SRSLY A NUMBAR
  pi R QUOSHUNT OF PRODUKT OF 4.0 AN MAEK total A NUMBAR ...
    AN PRODUKT OF MAEK darts A NUMBAR AN MAEK MAH FRENZ A NUMBAR
  VISIBLE pi
OIC
KTHXBYE`, darts, np)
}
