package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/native"
	"repro/internal/server"
)

// ServeMetrics is the machine-readable result of one serve scenario,
// emitted into BENCH_serve.json by `lolbench serve -bench-json`. For the
// two-phase scenarios (zipf, promote) ReqPerSec is the optimized phase
// and BaselineReqPerSec the control; Speedup is their ratio.
type ServeMetrics struct {
	Scenario          string  `json:"scenario"`
	Clients           int     `json:"clients"`
	Requests          int     `json:"requests"`
	Workers           int     `json:"workers"`
	ReqPerSec         float64 `json:"req_per_sec"`
	BaselineReqPerSec float64 `json:"baseline_req_per_sec,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	P50MS             float64 `json:"p50_ms,omitempty"`
	P90MS             float64 `json:"p90_ms,omitempty"`
	P99MS             float64 `json:"p99_ms,omitempty"`
	// Cache hit rates, 0..1.
	ProgramCacheHitRate float64 `json:"program_cache_hit_rate"`
	ResultCacheHitRate  float64 `json:"result_cache_hit_rate"`
	// TierRates is the fraction of executed jobs answered by each
	// execution tier (interp/vm/compile/native), 0..1 each.
	TierRates map[string]float64 `json:"tier_rates,omitempty"`
	Failures  int                `json:"failures"`
	// QueueWaitP99MS and StageP99MS are server-side attribution, scraped
	// from the measured server's GET /metrics histograms after the timed
	// phase (the optimized phase for two-phase scenarios): how long jobs
	// waited for a worker, and where request time went stage by stage.
	QueueWaitP99MS float64            `json:"queue_wait_p99_ms,omitempty"`
	StageP99MS     map[string]float64 `json:"stage_p99_ms,omitempty"`
}

// tierRates converts the server's per-tier counters into fractions.
func tierRates(st server.Stats) map[string]float64 {
	total := st.Tiers.Interp + st.Tiers.VM + st.Tiers.Compile + st.Tiers.Native
	if total == 0 {
		return nil
	}
	return map[string]float64{
		"interp":  float64(st.Tiers.Interp) / float64(total),
		"vm":      float64(st.Tiers.VM) / float64(total),
		"compile": float64(st.Tiers.Compile) / float64(total),
		"native":  float64(st.Tiers.Native) / float64(total),
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ServePromote measures what the native tier buys on a hot CPU-bound
// program: the same interp-requested Monte Carlo workload (varying seeds,
// NP=2 so the shared-array audit bypasses the result cache and every
// request really executes) is driven twice — once against a server with
// promotion enabled, after waiting for the background build to land, and
// once with -native-threshold=0. The report is the measured multiplier
// plus a per-seed check that both phases returned semantically identical
// bodies: promotion must buy speed, never different answers.
//
// When the go toolchain is unavailable the scenario reports itself
// skipped and returns no error, so `lolbench all` stays runnable on
// toolchain-less hosts.
func ServePromote(w io.Writer, clients, requests, workers int) (*ServeMetrics, error) {
	if clients <= 0 {
		clients = 8
	}
	if requests <= 0 {
		requests = 50
	}
	if workers <= 0 {
		workers = 4
	}
	const (
		darts     = 40_000
		np        = 2
		seedSpace = 16
		threshold = 3
	)
	src := GenMonteCarlo(darts, np)

	cacheDir, err := os.MkdirTemp("", "lolbench-native-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cacheDir)
	nativeCache, err := native.NewCache(cacheDir, "")
	if err != nil {
		fmt.Fprintf(w, "servepromote — skipped: %v\n", err)
		return nil, nil
	}

	// semantic is the replayable part of a response; tier, backend and
	// timing fields legitimately differ between phases.
	type semantic struct {
		Outcome server.Outcome
		Output  string
		Errout  string
		Error   string
	}

	type phaseObs struct {
		queueP99MS float64
		stageP99MS map[string]float64
	}
	runPhase := func(opts server.Options) (reqps float64, lats []time.Duration,
		bodies map[int64]semantic, nativeRuns int, st server.Stats, po phaseObs, err error) {
		srv := server.New(opts)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()

		post := func(seed int64) (server.RunResponse, time.Duration, error) {
			req := server.RunRequest{Src: src, NP: np, Backend: "interp", Seed: seed}
			body, merr := json.Marshal(req)
			if merr != nil {
				return server.RunResponse{}, 0, merr
			}
			t0 := time.Now()
			resp, perr := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			lat := time.Since(t0)
			if perr != nil {
				return server.RunResponse{}, lat, perr
			}
			defer resp.Body.Close()
			var rr server.RunResponse
			if derr := json.NewDecoder(resp.Body).Decode(&rr); derr != nil {
				return server.RunResponse{}, lat, derr
			}
			if resp.StatusCode != http.StatusOK || rr.Outcome != server.OutcomeOK {
				return rr, lat, fmt.Errorf("job failed: status %d outcome %q: %s", resp.StatusCode, rr.Outcome, rr.Error)
			}
			return rr, lat, nil
		}

		// Promotion warm-up: cross the hit threshold, then wait for the
		// background `go build` to publish the binary. On the control
		// server (no native tier) Ready stays 0 and the deadline passes
		// harmlessly fast because the loop exits on threshold instead.
		if opts.NativeThreshold > 0 {
			for i := 0; i < threshold+1; i++ {
				if _, _, err = post(1); err != nil {
					return 0, nil, nil, 0, st, po, fmt.Errorf("warm-up: %w", err)
				}
			}
			deadline := time.Now().Add(120 * time.Second)
			for srv.Stats().Native.Ready == 0 {
				if ns := srv.Stats().Native; ns.Unsupported > 0 || ns.BuildFailures > 0 {
					return 0, nil, nil, 0, st, po, fmt.Errorf("warm-up: promotion failed (%d unsupported, %d build failures)",
						ns.Unsupported, ns.BuildFailures)
				}
				if time.Now().After(deadline) {
					return 0, nil, nil, 0, st, po, fmt.Errorf("warm-up: binary not ready after 120s")
				}
				time.Sleep(50 * time.Millisecond)
			}
		}

		bodies = make(map[int64]semantic, seedSpace)
		var mu sync.Mutex
		var firstErr error
		record := func(seed int64, got semantic, lat time.Duration, perr error) {
			mu.Lock()
			defer mu.Unlock()
			if perr != nil {
				if firstErr == nil {
					firstErr = perr
				}
				return
			}
			lats = append(lats, lat)
			if prev, ok := bodies[seed]; !ok {
				bodies[seed] = got
			} else if prev != got && firstErr == nil {
				firstErr = fmt.Errorf("seed %d answered two different bodies within one phase", seed)
			}
		}

		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := 0; r < requests; r++ {
					seed := int64(1 + (c*requests+r)%seedSpace)
					rr, lat, perr := post(seed)
					record(seed, semantic{
						Outcome: rr.Outcome, Output: rr.Output,
						Errout: rr.Errout, Error: rr.Error,
					}, lat, perr)
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st = srv.Stats()
		// Scrape while the test server is still up: server-side queue and
		// stage attribution for this phase, including the native execute
		// stage once promotion has landed.
		if po.queueP99MS, po.stageP99MS, err = obsScrape(client, ts.URL); err != nil {
			return 0, nil, nil, 0, st, po, err
		}
		return float64(clients*requests) / elapsed.Seconds(), lats, bodies,
			int(st.Tiers.Native), st, po, firstErr
	}

	base := server.Options{Workers: workers, QueueDepth: clients * 4, CacheSize: 64}

	promoted := base
	promoted.NativeCache = nativeCache
	promoted.NativeThreshold = threshold
	natRPS, natLats, natBodies, nativeRuns, natStats, natObs, err := runPhase(promoted)
	if err != nil {
		return nil, fmt.Errorf("servepromote (native): %w", err)
	}
	plainRPS, _, plainBodies, _, _, _, err := runPhase(base)
	if err != nil {
		return nil, fmt.Errorf("servepromote (threshold 0): %w", err)
	}

	// The correctness half of the claim: promotion must be invisible in
	// the semantic bytes, seed by seed.
	for seed, want := range plainBodies {
		if got, ok := natBodies[seed]; !ok || got != want {
			return nil, fmt.Errorf("servepromote: seed %d: native body differs from in-process execution\nnative:     %+v\nin-process: %+v",
				seed, natBodies[seed], want)
		}
	}

	sort.Slice(natLats, func(i, j int) bool { return natLats[i] < natLats[j] })
	total := clients * requests
	m := &ServeMetrics{
		Scenario: "promote", Clients: clients, Requests: requests, Workers: workers,
		ReqPerSec: natRPS, BaselineReqPerSec: plainRPS, Speedup: natRPS / plainRPS,
		P50MS: ms(quantile(natLats, 0.50)), P90MS: ms(quantile(natLats, 0.90)), P99MS: ms(quantile(natLats, 0.99)),
		ProgramCacheHitRate: natStats.Cache.HitRate(),
		ResultCacheHitRate:  natStats.ResultCache.HitRate(),
		TierRates:           tierRates(natStats),
		Failures:            total - len(natLats),
		QueueWaitP99MS:      natObs.queueP99MS,
		StageP99MS:          natObs.stageP99MS,
	}

	nt := natStats.Native
	fmt.Fprintf(w, "servepromote — hot-program promotion to gogen-compiled binaries (vs -native-threshold=0)\n")
	fmt.Fprintf(w, "%-26s %d clients x %d requests; montecarlo %dk darts np=%d, backend=interp, %d seeds; %d workers\n",
		"workload:", clients, requests, darts/1000, np, seedSpace, workers)
	fmt.Fprintf(w, "%-26s %.0f req/s promoted, %.0f req/s in-process\n", "throughput:", natRPS, plainRPS)
	fmt.Fprintf(w, "%-26s %.1fx on semantically identical response bodies (verified per seed)\n", "speedup:", m.Speedup)
	fmt.Fprintf(w, "%-26s %d of %d timed jobs ran native (%d promotions, %d fallbacks, %d demotions)\n",
		"native tier:", nativeRuns, total, nt.Promotions, nt.Fallbacks, nt.Demotions)
	fmt.Fprintf(w, "%-26s p50 %s   p90 %s   p99 %s\n", "request latency (native):",
		quantile(natLats, 0.50), quantile(natLats, 0.90), quantile(natLats, 0.99))
	printStageAttribution(w, natObs.queueP99MS, natObs.stageP99MS)
	return m, nil
}
