package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/noc"
)

// NocHeatmap runs the paper's n-body on the Epiphany mesh model and draws
// the resulting network-on-chip traffic: per-link byte counts laid out on
// the 4x4 grid, plus the hottest link. This is the hardware-side view of
// the same communication the trace package shows from the software side —
// the all-pairs particle exchange lights up the whole mesh.
func NocHeatmap(w io.Writer, np, particles, steps int) error {
	model := machine.NewParallella()
	prog, err := core.Parse("nbody.lol", GenNBody(particles, steps))
	if err != nil {
		return err
	}
	if _, err := prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config:  interp.Config{NP: np, Seed: 7, Model: model},
	}); err != nil {
		return err
	}

	mesh := model.Mesh()
	cfg := mesh.Config()
	fmt.Fprintf(w, "NoC traffic heatmap — n-body (%dp x %d steps) at np=%d on the %dx%d Epiphany mesh\n\n",
		particles, steps, np, cfg.Width, cfg.Height)

	// Each router cell shows its core id; east and south link loads are
	// printed between cells (in KiB, the dominant directions of XY routing).
	for row := 0; row < cfg.Height; row++ {
		for col := 0; col < cfg.Width; col++ {
			core := mesh.CoreAt(col, row)
			fmt.Fprintf(w, "[%2d]", core)
			if col+1 < cfg.Width {
				east := mesh.LinkTraffic(core, noc.East)
				west := mesh.LinkTraffic(mesh.CoreAt(col+1, row), noc.West)
				fmt.Fprintf(w, "=%4.0fK=", float64(east+west)/1024)
			}
		}
		fmt.Fprintln(w)
		if row+1 < cfg.Height {
			for col := 0; col < cfg.Width; col++ {
				core := mesh.CoreAt(col, row)
				south := mesh.LinkTraffic(core, noc.South)
				north := mesh.LinkTraffic(mesh.CoreAt(col, row+1), noc.North)
				fmt.Fprintf(w, "%4.0fK      ", float64(south+north)/1024)
			}
			fmt.Fprintln(w)
		}
	}

	bytes, msgs := mesh.TotalTraffic()
	hotCore, hotDir, hotBytes := mesh.HottestLink()
	fmt.Fprintf(w, "\ntotal: %.1f KiB in %d messages; hottest link: core %d %v (%.1f KiB)\n",
		float64(bytes)/1024, msgs, hotCore, hotDir, float64(hotBytes)/1024)
	fmt.Fprintln(w, "links near the mesh centre carry the most traffic: XY routing funnels")
	fmt.Fprintln(w, "the all-pairs exchange through the middle rows and columns")
	return nil
}
