package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/sema"
	"repro/internal/trace"
)

// Fig1 regenerates the paper's Figure 1: the PGAS memory model. For the
// given program it renders the symmetric heap layout — the same symbols at
// the same slots on every PE, each PE owning its own instance — which is
// exactly what the figure draws as stacked PE boxes.
func Fig1(w io.Writer, path string, np int) error {
	prog, err := core.ParseFile(path)
	if err != nil {
		return err
	}
	info := prog.Info

	fmt.Fprintf(w, "FIGURE 1 — PGAS memory model for %s across %d PEs\n\n", path, np)
	if len(info.Shared) == 0 {
		fmt.Fprintln(w, "(program declares no WE HAS A symmetric symbols)")
		return nil
	}

	fmt.Fprintf(w, "symmetric heap layout (identical on every PE):\n")
	fmt.Fprintf(w, "  %-6s %-12s %-8s %-7s %s\n", "slot", "symbol", "type", "lock", "kind")
	for _, s := range info.Shared {
		kind := "scalar"
		if s.IsArray {
			kind = "array"
		}
		lock := "-"
		if s.Lock >= 0 {
			lock = fmt.Sprintf("#%d", s.Lock)
		}
		fmt.Fprintf(w, "  %-6d %-12s %-8v %-7s %s\n", s.Heap, s.Name, s.Type, lock, kind)
	}

	fmt.Fprintf(w, "\nper-PE instances (SPMD: every PE allocates the same symbols):\n\n")
	var row strings.Builder
	for pe := 0; pe < np; pe++ {
		fmt.Fprintf(&row, "+--------PE %-2d-------+  ", pe)
	}
	fmt.Fprintln(w, row.String())
	for _, s := range info.Shared {
		row.Reset()
		for pe := 0; pe < np; pe++ {
			fmt.Fprintf(&row, "| %-18s |  ", instanceLabel(s))
		}
		fmt.Fprintln(w, row.String())
	}
	row.Reset()
	for pe := 0; pe < np; pe++ {
		row.WriteString("+--------------------+  ")
	}
	fmt.Fprintln(w, row.String())
	fmt.Fprintln(w, "\nremote access: TXT MAH BFF k, ... UR <symbol> addresses PE k's instance")
	return nil
}

func instanceLabel(s *sema.Symbol) string {
	if s.IsArray {
		return fmt.Sprintf("%s: [..]%v", s.Name, s.Type)
	}
	return fmt.Sprintf("%s: %v", s.Name, s.Type)
}

// fig2Source builds the Figure 2 program, optionally omitting the barrier
// between the remote put and the local read (failure injection).
func fig2Source(withHugz bool) string {
	barrier := "HUGZ"
	if !withHugz {
		barrier = "BTW HUGZ removed: the read below races with the remote puts"
	}
	return `HAI 1.2
WE HAS A a ITZ SRSLY A NUMBR
WE HAS A b ITZ SRSLY A NUMBR
WE HAS A c ITZ SRSLY A NUMBR
I HAS A k ITZ A NUMBR AN ITZ SUM OF ME AN 1
k R MOD OF k AN MAH FRENZ
a R PRODUKT OF SUM OF ME AN 1 AN 10
HUGZ
TXT MAH BFF k, UR b R MAH a
` + barrier + `
c R SUM OF a AN b
VISIBLE c
KTHXBYE`
}

// fig2Expected is the deterministic output of the synchronized program.
func fig2Expected(np int) string {
	var b strings.Builder
	for pe := 0; pe < np; pe++ {
		prev := (pe - 1 + np) % np
		fmt.Fprintf(&b, "%d\n", (pe+1)*10+(prev+1)*10)
	}
	return b.String()
}

// Fig2Result reports one Figure 2 determinism experiment.
type Fig2Result struct {
	NP            int
	Trials        int
	SyncedCorrect int // runs matching the expected output, with HUGZ
	RacyCorrect   int // runs matching the expected output, without HUGZ
}

// Fig2 regenerates Figure 2's lesson (experiment F2): with the barrier the
// neighbour exchange is deterministic; with the barrier removed, fast PEs
// may compute c before b arrives. Returns one result per PE count.
func Fig2(w io.Writer, npList []int, trials int) ([]Fig2Result, error) {
	fmt.Fprintf(w, "FIGURE 2 — symmetric data movement: c = a + b after neighbour put\n")
	fmt.Fprintf(w, "%-6s %-8s %-22s %-22s\n", "np", "trials", "with HUGZ correct", "without HUGZ correct")

	results := make([]Fig2Result, 0, len(npList))
	for _, np := range npList {
		res := Fig2Result{NP: np, Trials: trials}
		want := fig2Expected(np)
		for trial := 0; trial < trials; trial++ {
			if out, err := runSource(fig2Source(true), np, int64(trial)); err != nil {
				return nil, err
			} else if out == want {
				res.SyncedCorrect++
			}
			if out, err := runSource(fig2Source(false), np, int64(trial)); err != nil {
				return nil, err
			} else if out == want {
				res.RacyCorrect++
			}
		}
		fmt.Fprintf(w, "%-6d %-8d %-22s %-22s\n", np, trials,
			fmt.Sprintf("%d/%d", res.SyncedCorrect, trials),
			fmt.Sprintf("%d/%d", res.RacyCorrect, trials))
		if res.SyncedCorrect != trials {
			return nil, fmt.Errorf("experiments: synchronized Figure 2 was nondeterministic at np=%d", np)
		}
		results = append(results, res)
	}
	fmt.Fprintln(w, "\nwith HUGZ the result is always exact; without it, lost reads appear")
	fmt.Fprintln(w, "under load (\"fast PEs calculate the sum before b has been updated\")")
	return results, nil
}

func runSource(src string, np int, seed int64) (string, error) {
	prog, err := core.Parse("exp.lol", src)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	_, err = prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config: interp.Config{
			NP: np, Seed: seed, Stdout: &out, GroupOutput: true,
		},
	})
	return out.String(), err
}

// Fig2Draw regenerates the *drawing* of Figure 2 from a real execution:
// the runtime trace of the synchronized program is grouped by barrier
// phase and rendered as per-PE data-movement arrows, plus the measured
// traffic matrix.
func Fig2Draw(w io.Writer, np int) error {
	prog, err := core.Parse("fig2.lol", fig2Source(true))
	if err != nil {
		return err
	}
	var rec trace.Recorder
	if _, err := prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config:  interp.Config{NP: np, Tracer: rec.Record},
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "FIGURE 2 (drawn from the runtime trace) — np=%d\n\n", np)
	symbols := make([]string, len(prog.Info.Shared))
	for i, s := range prog.Info.Shared {
		symbols[i] = s.Name
	}
	rec.Render(w, np, symbols)
	rec.Summary(w, np)
	return nil
}
