package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/shmem"
)

// GenNBody builds the paper's §VI.D 2D n-body program with a parameterized
// particle count and step count (the paper hard-codes 32 and 10). The
// algorithm, declarations and communication structure are the paper's.
func GenNBody(particles, steps int) string {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	p("HAI 1.2")
	p("I HAS A little_time ITZ SRSLY A NUMBAR AN ITZ 0.001")
	for _, v := range []string{"x", "y", "vx", "vy", "ax", "ay", "dx", "dy", "inv_d", "f"} {
		p("I HAS A %s ITZ SRSLY A NUMBAR", v)
	}
	for _, v := range []string{"vel_x", "vel_y", "tmppos_x", "tmppos_y"} {
		p("I HAS A %s ITZ SRSLY LOTZ A NUMBARS AN THAR IZ %d", v, particles)
	}
	p("WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ %d AN IM SHARIN IT", particles)
	p("WE HAS A pos_y ITZ SRSLY LOTZ A NUMBARS AN THAR IZ %d AN IM SHARIN IT", particles)
	p("HUGZ")
	p("IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN %d", particles)
	p("  pos_x'Z i R SUM OF ME AN WHATEVAR")
	p("  pos_y'Z i R SUM OF ME AN WHATEVAR")
	p("  vel_x'Z i R QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000")
	p("  vel_y'Z i R QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000")
	p("IM OUTTA YR loop")
	p("BTW erratum fix: synchronize initialization before the first force phase")
	p("HUGZ")
	p("IM IN YR loop UPPIN YR time TIL BOTH SAEM time AN %d", steps)
	p("  IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN %d", particles)
	p("    x R pos_x'Z i")
	p("    y R pos_y'Z i")
	p("    vx R vel_x'Z i")
	p("    vy R vel_y'Z i")
	p("    ax R 0")
	p("    ay R 0")
	p("    IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN %d", particles)
	p("      DIFFRINT i AN j, O RLY?")
	p("      YA RLY")
	p("        dx R DIFF OF pos_x'Z i AN pos_x'Z j")
	p("        dy R DIFF OF pos_y'Z i AN pos_y'Z j")
	p("        dx R PRODUKT OF dx AN dx")
	p("        dy R PRODUKT OF dy AN dy")
	p("        inv_d R FLIP OF UNSQUAR OF SUM OF dx AN dy")
	p("        f R PRODUKT OF inv_d AN SQUAR OF inv_d")
	p("        ax R SUM OF ax AN PRODUKT OF dx AN f")
	p("        ay R SUM OF ay AN PRODUKT OF dy AN f")
	p("      OIC")
	p("    IM OUTTA YR loop")
	p("    IM IN YR loop UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ")
	p("      DIFFRINT k AN ME, O RLY?")
	p("      YA RLY")
	p("        IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN %d", particles)
	p("          TXT MAH BFF k AN STUFF")
	p("            dx R DIFF OF pos_x'Z i AN UR pos_x'Z j")
	p("            dy R DIFF OF pos_y'Z i AN UR pos_y'Z j")
	p("          TTYL")
	p("          dx R PRODUKT OF dx AN dx")
	p("          dy R PRODUKT OF dy AN dy")
	p("          inv_d R FLIP OF UNSQUAR OF SUM OF dx AN dy")
	p("          f R PRODUKT OF inv_d AN SQUAR OF inv_d")
	p("          ax R SUM OF ax AN PRODUKT OF dx AN f")
	p("          ay R SUM OF ay AN PRODUKT OF dy AN f")
	p("        IM OUTTA YR loop")
	p("      OIC")
	p("    IM OUTTA YR loop")
	p("    x R SUM OF x AN SUM OF PRODUKT OF vx AN little_time AN PRODUKT OF 0.5 AN PRODUKT OF ax AN SQUAR OF little_time")
	p("    y R SUM OF y AN SUM OF PRODUKT OF vy AN little_time AN PRODUKT OF 0.5 AN PRODUKT OF ay AN SQUAR OF little_time")
	p("    vx R SUM OF vx AN PRODUKT OF ax AN little_time")
	p("    vy R SUM OF vy AN PRODUKT OF ay AN little_time")
	p("    tmppos_x'Z i R x")
	p("    tmppos_y'Z i R y")
	p("    vel_x'Z i R vx")
	p("    vel_y'Z i R vy")
	p("  IM OUTTA YR loop")
	p("  HUGZ")
	p("  IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN %d", particles)
	p("    pos_x'Z i R tmppos_x'Z i")
	p("    pos_y'Z i R tmppos_y'Z i")
	p("  IM OUTTA YR loop")
	p("  HUGZ")
	p("IM OUTTA YR loop")
	p("KTHXBYE")
	return b.String()
}

// BackendsResult is one row of the E1 compiler-vs-interpreter comparison.
type BackendsResult struct {
	Workload string
	Interp   time.Duration
	VM       time.Duration
	Compile  time.Duration
}

// Speedup is the interpreter-to-compiler ratio.
func (r BackendsResult) Speedup() float64 {
	if r.Compile == 0 {
		return 0
	}
	return float64(r.Interp) / float64(r.Compile)
}

// VMSpeedup is the interpreter-to-VM ratio.
func (r BackendsResult) VMSpeedup() float64 {
	if r.VM == 0 {
		return 0
	}
	return float64(r.Interp) / float64(r.VM)
}

// VMOverCompile is the VM-to-compiler ratio: how far the bytecode tier
// trails the closure compiler (1.0 = parity). This is the number the
// superinstruction/unboxing work drives down, and the one CI tracks
// against the committed baseline.
func (r BackendsResult) VMOverCompile() float64 {
	if r.Compile == 0 {
		return 0
	}
	return float64(r.VM) / float64(r.Compile)
}

// Backends measures experiment E1: the paper's claim that a compiler "is
// more flexible and efficient than an interpreter", now a three-way
// comparison across the design space — tree-walker, bytecode VM, closure
// compiler. Each workload runs on every backend with identical seeds;
// outputs are compared for agreement.
func Backends(w io.Writer) ([]BackendsResult, error) {
	workloads := []struct {
		name string
		src  string
		np   int
	}{
		{"scalar-arith (50k iters)", genArithLoop(50_000), 1},
		{"array-stride (20k iters)", genArrayLoop(20_000), 1},
		{"montecarlo 20k darts np=2", GenMonteCarlo(20_000, 2), 2},
		{"nbody 16p x 4steps np=2", GenNBody(16, 4), 2},
		{"nbody 32p x 10steps np=2 (paper)", GenNBody(32, 10), 2},
	}

	fmt.Fprintf(w, "E1 — execution backends (paper: compiled LOLCODE vs interpreter)\n")
	fmt.Fprintf(w, "%-34s %-12s %-12s %-12s %-10s %-8s %-10s\n",
		"workload", "interp", "vm", "compile", "vm-speedup", "speedup", "vm/compile")

	var results []BackendsResult
	for _, wl := range workloads {
		prog, err := core.Parse("bench.lol", wl.src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		run := func(b core.Backend) (time.Duration, string, error) {
			var out strings.Builder
			start := time.Now()
			_, err := prog.Run(core.RunConfig{
				Backend: b,
				Config:  interp.Config{NP: wl.np, Seed: 7, Stdout: &out, GroupOutput: true},
			})
			return time.Since(start), out.String(), err
		}
		iTime, iOut, err := run(core.BackendInterp)
		if err != nil {
			return nil, fmt.Errorf("%s interp: %w", wl.name, err)
		}
		vTime, vOut, err := run(core.BackendVM)
		if err != nil {
			return nil, fmt.Errorf("%s vm: %w", wl.name, err)
		}
		cTime, cOut, err := run(core.BackendCompile)
		if err != nil {
			return nil, fmt.Errorf("%s compile: %w", wl.name, err)
		}
		if iOut != cOut || iOut != vOut {
			return nil, fmt.Errorf("%s: backends disagree on output", wl.name)
		}
		r := BackendsResult{Workload: wl.name, Interp: iTime, VM: vTime, Compile: cTime}
		results = append(results, r)
		fmt.Fprintf(w, "%-34s %-12v %-12v %-12v %-10s %-8s %.2fx\n",
			r.Workload, r.Interp.Round(time.Microsecond), r.VM.Round(time.Microsecond),
			r.Compile.Round(time.Microsecond), fmt.Sprintf("%.2fx", r.VMSpeedup()),
			fmt.Sprintf("%.2fx", r.Speedup()), r.VMOverCompile())
	}
	return results, nil
}

func genArithLoop(iters int) string {
	return fmt.Sprintf(`HAI 1.2
I HAS A acc ITZ SRSLY A NUMBAR AN ITZ 0.0
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN %d
  acc R SUM OF acc AN FLIP OF SUM OF i AN 1
IM OUTTA YR loop
VISIBLE acc
KTHXBYE`, iters)
}

func genArrayLoop(iters int) string {
	return fmt.Sprintf(`HAI 1.2
I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 64
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN %d
  I HAS A idx ITZ A NUMBR
  idx R MOD OF i AN 64
  a'Z idx R SUM OF a'Z idx AN 1
IM OUTTA YR loop
VISIBLE a'Z 63
KTHXBYE`, iters)
}

// ScalingResult is one row of the E2 scaling experiment.
type ScalingResult struct {
	Machine    string
	NP         int
	Wall       time.Duration
	SimMicros  float64 // slowest PE's simulated communication time
	RemoteGets int64
}

// Scaling runs experiment E2: the same n-body source at growing PE counts
// under the Parallella and XC40 cost models — the paper's "scale from
// inexpensive parallel education platforms to the largest supercomputers".
// Weak scaling: per-PE work is constant, so ideal behaviour is flat wall
// time with communication growing as PEs are added.
func Scaling(w io.Writer, parallellaNP, xc40NP []int) ([]ScalingResult, error) {
	fmt.Fprintf(w, "E2 — weak scaling of the paper's n-body across machine models\n")
	fmt.Fprintf(w, "%-12s %-6s %-12s %-16s %-12s\n", "machine", "np", "wall", "sim comm (us)", "remote gets")

	var results []ScalingResult
	run := func(modelName string, np, particles, steps int) error {
		model, err := machine.ByName(modelName)
		if err != nil {
			return err
		}
		prog, err := core.Parse("scaling.lol", GenNBody(particles, steps))
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := prog.Run(core.RunConfig{
			Backend: core.BackendCompile,
			Config:  interp.Config{NP: np, Seed: 7, Model: model},
		})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		var slowest float64
		for _, ns := range res.SimNanos {
			if ns > slowest {
				slowest = ns
			}
		}
		r := ScalingResult{
			Machine:    modelName,
			NP:         np,
			Wall:       wall,
			SimMicros:  slowest / 1000,
			RemoteGets: res.Stats.RemoteGets,
		}
		results = append(results, r)
		fmt.Fprintf(w, "%-12s %-6d %-12v %-16.1f %-12d\n",
			r.Machine, r.NP, r.Wall.Round(time.Millisecond), r.SimMicros, r.RemoteGets)
		return nil
	}

	for _, np := range parallellaNP {
		if err := run("parallella", np, 16, 3); err != nil {
			return nil, err
		}
	}
	for _, np := range xc40NP {
		if err := run("xc40", np, 4, 2); err != nil {
			return nil, err
		}
	}
	fmt.Fprintln(w, "\nsame source, no changes: only -machine and -np differ (paper §I)")
	return results, nil
}

// BarrierScaling measures HUGZ latency per episode for both barrier
// algorithms across PE counts (the T2 microbenchmark).
func BarrierScaling(w io.Writer, npList []int, episodes int) error {
	fmt.Fprintf(w, "T2 micro — HUGZ (barrier) wall latency per episode\n")
	fmt.Fprintf(w, "%-6s %-16s %-16s\n", "np", "central", "dissemination")
	for _, np := range npList {
		var times [2]time.Duration
		for i, alg := range []shmem.BarrierAlg{shmem.BarrierCentral, shmem.BarrierDissemination} {
			world, err := shmem.NewWorld(np, nil, 0, shmem.Options{Barrier: alg})
			if err != nil {
				return err
			}
			start := time.Now()
			err = world.Run(func(pe *shmem.PE) error {
				for k := 0; k < episodes; k++ {
					if err := pe.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			times[i] = time.Since(start) / time.Duration(episodes)
		}
		fmt.Fprintf(w, "%-6d %-16v %-16v\n", np, times[0], times[1])
	}
	return nil
}
