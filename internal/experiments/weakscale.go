package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/machine"
)

// WeakscaleResult is one point of the E4 weak-scaling curve: the Monte
// Carlo kernel at one PE count on the vm tier under the worker
// scheduler, priced by the XC40 cost model.
type WeakscaleResult struct {
	NP         int
	Workers    int           // worker-pool size the scheduler ran with
	Wall       time.Duration // host wall clock for the whole run
	PEsPerSec  float64       // NP / Wall: completed PE programs per second
	SimMS      float64       // max per-PE simulated time (XC40 model), ms
	Parks      int64         // scheduler parks across the run
	MaxRunning int           // peak concurrently-executing steps
}

// Weakscale measures experiment E4: weak scaling of the event-driven
// worker scheduler. Each PE throws the same number of darts, so the
// problem grows with NP while per-PE work is constant; goroutine-per-PE
// execution would need NP stacks, the worker scheduler needs a fixed
// pool plus NP parked continuations. The XC40 cost model prices the
// barrier and the one-sided hit-count writes, so the simulated-time
// column reports what the fabric would charge — rising with NP through
// the log-depth barrier and PE 0's gather — independent of host load.
// Throughput is reported as completed PE programs per wall second, the
// weak-scaling figure of merit.
func Weakscale(w io.Writer, nps []int, darts int) ([]WeakscaleResult, error) {
	model, err := machine.ByName("xc40")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "E4 — weak scaling, montecarlo %d darts/PE, vm tier, worker scheduler, %s model\n", darts, model.Name())
	fmt.Fprintf(w, "%-8s %-9s %-12s %-12s %-12s %-8s %-11s\n",
		"np", "workers", "wall", "PEs/s", "sim-ms", "parks", "max-running")

	var results []WeakscaleResult
	for _, np := range nps {
		prog, err := core.Parse("weakscale.lol", GenMonteCarlo(darts, np))
		if err != nil {
			return nil, fmt.Errorf("np=%d: %w", np, err)
		}
		var out strings.Builder
		start := time.Now()
		res, err := prog.Run(core.RunConfig{
			Backend: core.BackendVM,
			Config: interp.Config{
				NP:          np,
				Seed:        7,
				Stdout:      &out,
				GroupOutput: true,
				Model:       model,
				Sched:       backend.SchedWorkers,
			},
		})
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("np=%d: %w", np, err)
		}
		var simMax float64
		for _, s := range res.SimNanos {
			if s > simMax {
				simMax = s
			}
		}
		sched := res.Stats.Sched
		r := WeakscaleResult{
			NP:         np,
			Workers:    sched.Workers,
			Wall:       wall,
			PEsPerSec:  float64(np) / wall.Seconds(),
			SimMS:      simMax / 1e6,
			Parks:      sched.Parks,
			MaxRunning: sched.MaxRunning,
		}
		results = append(results, r)
		fmt.Fprintf(w, "%-8d %-9d %-12v %-12.0f %-12.3f %-8d %-11d\n",
			r.NP, r.Workers, r.Wall.Round(time.Microsecond), r.PEsPerSec, r.SimMS, r.Parks, r.MaxRunning)
	}
	return results, nil
}
