// Package experiments regenerates every table and figure of Richie & Ross
// (2017) plus the measurable versions of the paper's qualitative claims.
// Each experiment writes a human-readable report; cmd/lolbench is the CLI
// front end and EXPERIMENTS.md records paper-vs-measured.
//
// Experiment index (see DESIGN.md section 4):
//
//	T1, T2, T3 — conformance tables I-III
//	F1         — Figure 1, the PGAS symmetric memory layout
//	F2         — Figure 2, barrier-synchronized data movement (+ failure injection)
//	E1         — compiler vs interpreter backends
//	E2         — scaling from Parallella-like to XC40-like machines
//	E3         — the lcc -> Go -> executable toolchain
package experiments

import (
	"fmt"
	"io"

	"repro/internal/conformance"
)

// Tables regenerates paper Tables I-III (experiments T1-T3): every
// construct row is executed on every registered execution engine and
// reported pass/fail — the backend×fixture conformance matrix. It returns
// an error if any cell fails.
func Tables(w io.Writer, which string) error {
	var rows []conformance.Row
	switch which {
	case "I", "1":
		rows = conformance.TableI()
	case "II", "2":
		rows = conformance.TableII()
	case "III", "3":
		rows = conformance.TableIII()
	case "all", "":
		rows = conformance.All()
	default:
		return fmt.Errorf("experiments: unknown table %q (want I, II, III, or all)", which)
	}

	engines := conformance.Engines()
	failures := 0
	cur := ""
	for _, row := range rows {
		if row.Table != cur {
			cur = row.Table
			fmt.Fprintf(w, "\nTABLE %s — %s\n", cur, tableTitle(cur))
			fmt.Fprintf(w, "%-55s", "construct")
			for _, eng := range engines {
				fmt.Fprintf(w, " %-8s", eng.Name())
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-55s", trim(row.Construct, 55))
		for _, eng := range engines {
			res := status(row.Run(eng))
			if res != "ok" {
				failures++
			}
			fmt.Fprintf(w, " %-8s", res)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n%d rows x %d engines, %d failures\n", len(rows), len(engines), failures)
	if failures > 0 {
		return fmt.Errorf("experiments: %d conformance cells failed", failures)
	}
	return nil
}

func tableTitle(t string) string {
	switch t {
	case "I":
		return "basic syntax for LOLCODE language"
	case "II":
		return "parallel and distributed computing extensions"
	case "III":
		return "additional LOLCODE extensions"
	}
	return ""
}

func status(err error) string {
	if err != nil {
		return "FAIL"
	}
	return "ok"
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
