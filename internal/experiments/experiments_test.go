package experiments

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
)

// The experiment suite is exercised end-to-end by cmd/lolbench; these
// tests keep each experiment runnable and its headline claims true.

func TestTablesAllPass(t *testing.T) {
	var out strings.Builder
	if err := Tables(&out, "all"); err != nil {
		t.Fatalf("conformance tables failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 failures") {
		t.Errorf("report does not state zero failures:\n%s", out.String())
	}
}

func TestTablesUnknownName(t *testing.T) {
	if err := Tables(io.Discard, "XIV"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestFig1RendersLayout(t *testing.T) {
	var out strings.Builder
	if err := Fig1(&out, "../../testdata/nbody.lol", 4); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pos_x", "pos_y", "PE 0", "PE 3", "lock"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFig2SyncedAlwaysCorrect(t *testing.T) {
	var out strings.Builder
	results, err := Fig2(&out, []int{2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.SyncedCorrect != r.Trials {
			t.Errorf("np=%d: synced %d/%d", r.NP, r.SyncedCorrect, r.Trials)
		}
	}
}

func TestGenNBodyParsesAndRuns(t *testing.T) {
	src := GenNBody(4, 1)
	prog, err := core.Parse("gen-nbody.lol", src)
	if err != nil {
		t.Fatalf("generated n-body does not parse: %v", err)
	}
	if _, err := prog.Run(core.RunConfig{}); err != nil {
		t.Fatalf("generated n-body does not run: %v", err)
	}
}

func TestBackendsCompiledWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	results, err := Backends(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: compiled beats interpreted. Individual runs can
	// jitter; requiring the paper-sized workload to win keeps this stable.
	last := results[len(results)-1]
	if last.Speedup() <= 1.0 {
		t.Errorf("compiled backend did not beat interpreter on %q: %.2fx", last.Workload, last.Speedup())
	}
}

func TestScalingCommunicationGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	results, err := Scaling(io.Discard, []int{1, 2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d rows", len(results))
	}
	if !(results[0].RemoteGets < results[1].RemoteGets && results[1].RemoteGets < results[2].RemoteGets) {
		t.Errorf("remote gets should grow with np: %v", results)
	}
	if !(results[0].SimMicros <= results[1].SimMicros && results[1].SimMicros < results[2].SimMicros) {
		t.Errorf("simulated comm time should grow with np: %v", results)
	}
}

func TestLockContentionStaysExact(t *testing.T) {
	results, err := LockContention(io.Discard, []int{1, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.FinalExact {
			t.Errorf("np=%d: lock lost updates", r.NP)
		}
	}
}

func TestBarrierScalingRuns(t *testing.T) {
	if err := BarrierScaling(io.Discard, []int{2, 4}, 50); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteAccessReport(t *testing.T) {
	var out strings.Builder
	if err := RemoteAccess(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "corner (0 -> 15)") {
		t.Errorf("missing mesh rows:\n%s", out.String())
	}
}

func TestNocHeatmap(t *testing.T) {
	var out strings.Builder
	if err := NocHeatmap(&out, 8, 4, 1); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"heatmap", "[ 0]", "hottest link", "total:"} {
		if !strings.Contains(s, want) {
			t.Errorf("heatmap missing %q:\n%s", want, s)
		}
	}
}

func TestToolchainAllValid(t *testing.T) {
	var out strings.Builder
	if err := Toolchain(&out, "../../testdata"); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
}

func TestListings(t *testing.T) {
	for _, l := range []string{"A", "B", "C"} {
		if err := Listings(io.Discard, "../../testdata", 4, l); err != nil {
			t.Errorf("listing %s: %v", l, err)
		}
	}
	if err := Listings(io.Discard, "../../testdata", 4, "Z"); err == nil {
		t.Error("unknown listing accepted")
	}
}

// TestServeZipfIdenticalBodies runs the hot-key batch scenario small:
// ServeZipf itself errors if any job fails, if one program answers two
// different bodies within a phase, or if the cached and uncached phases
// disagree — so a nil error IS the correctness assertion. Throughput
// numbers are reported, not asserted: CI machines are not benchmarks.
func TestServeZipfIdenticalBodies(t *testing.T) {
	var out strings.Builder
	m, err := ServeZipf(&out, 4, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "speedup:") {
		t.Errorf("report is missing the speedup line:\n%s", out.String())
	}
	if m == nil || m.Scenario != "zipf" || m.ReqPerSec <= 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
}

// TestServePromoteIdenticalBodies runs the native-promotion scenario
// small. Like ServeZipf, a nil error IS the correctness assertion: the
// scenario itself fails if promotion never lands, any job fails, or the
// promoted phase answers a semantically different body for any seed.
// Throughput is reported, not asserted — the 3x acceptance claim is for
// benchmark-sized runs, not CI smoke. Skips without a go toolchain.
func TestServePromoteIdenticalBodies(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a native binary")
	}
	var out strings.Builder
	m, err := ServePromote(&out, 2, 8, 2)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if m == nil { // toolchain unavailable: scenario reported itself skipped
		if !strings.Contains(out.String(), "skipped") {
			t.Errorf("nil metrics without a skip notice:\n%s", out.String())
		}
		return
	}
	if m.TierRates["native"] == 0 {
		t.Errorf("no timed job ran on the native tier:\n%s", out.String())
	}
}
