package backend

import (
	"bufio"
	"io"
	"strings"
	"sync"
)

// Output serializes VISIBLE writes from concurrent PEs onto one io.Writer,
// optionally buffering per PE and emitting grouped in PE order at Flush
// (deterministic multi-PE output for golden tests). Every execution
// backend shares it.
type Output struct {
	mu      sync.Mutex
	w       io.Writer
	grouped bool
	bufs    []strings.Builder
}

// NewOutput wraps w. When grouped is true, writes are buffered per PE.
func NewOutput(w io.Writer, grouped bool, np int) *Output {
	o := &Output{w: w, grouped: grouped}
	if grouped {
		o.bufs = make([]strings.Builder, np)
	}
	return o
}

// PEWriter is the per-PE view of an Output.
type PEWriter struct {
	o  *Output
	pe int
}

// ForPE returns the writer PE rank pe must use.
func (o *Output) ForPE(pe int) *PEWriter { return &PEWriter{o: o, pe: pe} }

// WriteString emits s atomically with respect to other PEs.
func (p *PEWriter) WriteString(s string) {
	o := p.o
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.grouped {
		o.bufs[p.pe].WriteString(s)
		return
	}
	if o.w != nil {
		io.WriteString(o.w, s)
	}
}

// Flush emits grouped buffers in PE order. A no-op for live output.
func (o *Output) Flush() {
	if !o.grouped || o.w == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range o.bufs {
		io.WriteString(o.w, o.bufs[i].String())
	}
}

// SharedReader hands out stdin lines to whichever PE asks first (GIMMEH).
type SharedReader struct {
	mu sync.Mutex
	sc *bufio.Scanner
}

// NewSharedReader wraps r; nil reads as empty input.
func NewSharedReader(r io.Reader) *SharedReader {
	if r == nil {
		r = strings.NewReader("")
	}
	return &SharedReader{sc: bufio.NewScanner(r)}
}

// Line returns the next input line, reporting false at EOF.
func (s *SharedReader) Line() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sc.Scan() {
		return s.sc.Text(), true
	}
	return "", false
}
