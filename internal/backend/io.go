package backend

import (
	"bufio"
	"io"
	"strings"
	"sync"
)

// Output serializes VISIBLE writes from concurrent PEs onto one io.Writer,
// optionally buffering per PE and emitting grouped in PE order at Flush
// (deterministic multi-PE output for golden tests). Every execution
// backend shares it. An optional byte limit bounds how much output is
// retained or forwarded — the memory-side resource budget a hosted job
// runs under (internal/server) — with overflow discarded and reported via
// Truncated. In grouped mode the limit is split evenly across PEs so the
// truncation point depends only on each PE's own (deterministic) output,
// never on cross-PE scheduling; in live mode it is a global cap on an
// already order-nondeterministic stream.
type Output struct {
	mu        sync.Mutex
	w         io.Writer
	grouped   bool
	bufs      []strings.Builder
	limit     int // per-PE when grouped, global when live; 0 = unlimited
	written   int // live mode only
	truncated bool
}

// NewOutput wraps w. When grouped is true, writes are buffered per PE.
// limit caps the total bytes accepted across all PEs; 0 means unlimited.
func NewOutput(w io.Writer, grouped bool, np, limit int) *Output {
	o := &Output{w: w, grouped: grouped, limit: limit}
	if grouped {
		o.bufs = make([]strings.Builder, np)
		if limit > 0 {
			// Deterministic truncation: each PE owns an equal share.
			o.limit = limit / np
			if o.limit < 1 {
				o.limit = 1
			}
		}
	}
	return o
}

// PEWriter is the per-PE view of an Output.
type PEWriter struct {
	o  *Output
	pe int
}

// ForPE returns the writer PE rank pe must use.
func (o *Output) ForPE(pe int) *PEWriter { return &PEWriter{o: o, pe: pe} }

// WriteString emits s atomically with respect to other PEs. Once the
// output limit is reached, the tail is dropped and Truncated reports it.
func (p *PEWriter) WriteString(s string) {
	o := p.o
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.limit > 0 {
		used := o.written
		if o.grouped {
			used = o.bufs[p.pe].Len()
		}
		room := o.limit - used
		if room <= 0 {
			if len(s) > 0 {
				o.truncated = true
			}
			return
		}
		if len(s) > room {
			s = s[:room]
			o.truncated = true
		}
	}
	if o.grouped {
		o.bufs[p.pe].WriteString(s)
		return
	}
	o.written += len(s)
	if o.w != nil {
		io.WriteString(o.w, s)
	}
}

// Truncated reports whether the byte limit dropped any output.
func (o *Output) Truncated() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.truncated
}

// Flush emits grouped buffers in PE order. A no-op for live output.
func (o *Output) Flush() {
	if !o.grouped || o.w == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range o.bufs {
		io.WriteString(o.w, o.bufs[i].String())
	}
}

// SharedReader hands out stdin lines to whichever PE asks first (GIMMEH).
type SharedReader struct {
	mu sync.Mutex
	sc *bufio.Scanner
}

// NewSharedReader wraps r; nil reads as empty input.
func NewSharedReader(r io.Reader) *SharedReader {
	if r == nil {
		r = strings.NewReader("")
	}
	return &SharedReader{sc: bufio.NewScanner(r)}
}

// Line returns the next input line, reporting false at EOF.
func (s *SharedReader) Line() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sc.Scan() {
		return s.sc.Text(), true
	}
	return "", false
}
