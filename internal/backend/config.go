package backend

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/shmem"
	"repro/internal/token"
)

// SchedMode selects how PEs are executed: a dedicated goroutine per PE
// (the classic mode, and the differential oracle) or continuations
// multiplexed onto a bounded worker pool by the shmem scheduler. Only
// engines with resumable execution state honor SchedWorkers — today the
// VM; interp and compile silently run goroutine-per-PE.
type SchedMode int

const (
	// SchedAuto picks workers on capable engines when NP is large enough
	// (>= SchedAutoNP) that goroutine-per-PE economics start to hurt.
	SchedAuto SchedMode = iota
	// SchedGoroutines forces one goroutine per PE.
	SchedGoroutines
	// SchedWorkers forces the bounded worker pool on capable engines.
	SchedWorkers
)

// SchedAutoNP is the world size at which SchedAuto switches a capable
// engine to the worker pool.
const SchedAutoNP = 64

func (m SchedMode) String() string {
	switch m {
	case SchedGoroutines:
		return "goroutines"
	case SchedWorkers:
		return "workers"
	}
	return "auto"
}

// ParseSchedMode parses a -sched flag or request field value.
func ParseSchedMode(s string) (SchedMode, error) {
	switch s {
	case "", "auto":
		return SchedAuto, nil
	case "goroutines":
		return SchedGoroutines, nil
	case "workers":
		return SchedWorkers, nil
	}
	return SchedAuto, fmt.Errorf("backend: unknown sched mode %q (want auto, goroutines, or workers)", s)
}

// Config controls one SPMD execution. It is shared verbatim by every
// engine, so a run is reproducible across backends: same NP, same seeds,
// same cost model, same output discipline.
type Config struct {
	// NP is the number of processing elements (the coprsh/aprun -np flag).
	NP int
	// Model prices one-sided operations; nil runs at zero cost.
	Model shmem.CostModel
	// Barrier selects the HUGZ implementation.
	Barrier shmem.BarrierAlg
	// Seed is the base seed for WHATEVR/WHATEVAR; PE i uses Seed+i.
	Seed int64
	// Stdout and Stderr receive VISIBLE and INVISIBLE output. nil discards.
	Stdout io.Writer
	Stderr io.Writer
	// Stdin feeds GIMMEH; nil reads empty input.
	Stdin io.Reader
	// GroupOutput buffers each PE's output and emits it grouped in PE order
	// after the run, making multi-PE output deterministic for golden tests.
	GroupOutput bool
	// Tracer, when non-nil, receives every runtime event (remote accesses,
	// barriers, lock traffic); see internal/trace for a recorder and the
	// Figure 2 data-movement renderer.
	Tracer shmem.Tracer
	// Context, when non-nil, bounds the run: when it is cancelled (deadline,
	// client disconnect) every PE is torn down cooperatively, including PEs
	// blocked in HUGZ, locks, or point-to-point waits. The run's error then
	// satisfies errors.Is against the context's error.
	Context context.Context
	// StepBudget caps the number of engine steps each PE may execute;
	// 0 means unlimited. What one step is depends on the engine (see the
	// Meter docs); exceeding the budget aborts the run with ErrStepBudget.
	StepBudget int64
	// MaxOutput caps the total bytes of VISIBLE (and, separately,
	// INVISIBLE) output retained or forwarded; 0 means unlimited. Overflow
	// is dropped, not fatal, and reported via Result.OutputTruncated.
	MaxOutput int
	// Sched selects goroutine-per-PE or worker-pool execution; engines
	// without resumable state ignore it. Output is byte-identical across
	// modes (the conformance differentials enforce this), so SchedAuto is
	// safe as a default.
	Sched SchedMode
	// SchedWorkers overrides the worker-pool size in workers mode;
	// 0 selects shmem.DefaultSchedWorkers (min(2*GOMAXPROCS, NP)).
	SchedWorkers int
}

// UseWorkers reports whether this config selects the worker scheduler
// for a capable engine at world size np.
func (c *Config) UseWorkers(np int) bool {
	switch c.Sched {
	case SchedWorkers:
		return true
	case SchedGoroutines:
		return false
	}
	return np >= SchedAutoNP
}

// Result reports what a run did.
type Result struct {
	Stats    shmem.StatsSnapshot
	SimNanos []float64 // per-PE simulated time under the cost model
	// OutputTruncated reports that Config.MaxOutput dropped output bytes.
	OutputTruncated bool
	// ExecWall is the wall-clock time spent inside the SPMD run proper —
	// PE execution between world start and teardown, excluding program
	// preparation and output assembly — so callers can separate engine
	// time from the plumbing around it.
	ExecWall time.Duration
}

// RuntimeError is an execution error with its source position. All engines
// produce it, so error handling is backend-independent.
type RuntimeError struct {
	Pos token.Pos
	Err error
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: %v", e.Pos, e.Err) }

func (e *RuntimeError) Unwrap() error { return e.Err }
