package backend

import (
	"fmt"
	"io"

	"repro/internal/shmem"
	"repro/internal/token"
)

// Config controls one SPMD execution. It is shared verbatim by every
// engine, so a run is reproducible across backends: same NP, same seeds,
// same cost model, same output discipline.
type Config struct {
	// NP is the number of processing elements (the coprsh/aprun -np flag).
	NP int
	// Model prices one-sided operations; nil runs at zero cost.
	Model shmem.CostModel
	// Barrier selects the HUGZ implementation.
	Barrier shmem.BarrierAlg
	// Seed is the base seed for WHATEVR/WHATEVAR; PE i uses Seed+i.
	Seed int64
	// Stdout and Stderr receive VISIBLE and INVISIBLE output. nil discards.
	Stdout io.Writer
	Stderr io.Writer
	// Stdin feeds GIMMEH; nil reads empty input.
	Stdin io.Reader
	// GroupOutput buffers each PE's output and emits it grouped in PE order
	// after the run, making multi-PE output deterministic for golden tests.
	GroupOutput bool
	// Tracer, when non-nil, receives every runtime event (remote accesses,
	// barriers, lock traffic); see internal/trace for a recorder and the
	// Figure 2 data-movement renderer.
	Tracer shmem.Tracer
}

// Result reports what a run did.
type Result struct {
	Stats    shmem.StatsSnapshot
	SimNanos []float64 // per-PE simulated time under the cost model
}

// RuntimeError is an execution error with its source position. All engines
// produce it, so error handling is backend-independent.
type RuntimeError struct {
	Pos token.Pos
	Err error
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: %v", e.Pos, e.Err) }

func (e *RuntimeError) Unwrap() error { return e.Err }
