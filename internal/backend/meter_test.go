package backend_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
)

// infiniteLoop spins forever with no barrier — only the step budget or the
// context deadline can stop it.
const infiniteLoop = `HAI 1.2
I HAS A x ITZ 0
IM IN YR forever
  x R SUM OF x AN 1
IM OUTTA YR forever
KTHXBYE`

// TestStepBudgetKillsEveryBackend runs an infinite loop with a small step
// budget through every engine and expects the run to die with
// ErrStepBudget instead of hanging.
func TestStepBudgetKillsEveryBackend(t *testing.T) {
	prog, err := core.Parse("forever.lol", infiniteLoop)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range backend.All() {
		eng := eng
		t.Run(eng.Name(), func(t *testing.T) {
			t.Parallel()
			_, err := eng.Run(prog.Info, backend.Config{NP: 2, StepBudget: 10_000})
			if err == nil {
				t.Fatal("infinite loop completed under a step budget")
			}
			if !errors.Is(err, backend.ErrStepBudget) {
				t.Fatalf("error = %v, want ErrStepBudget", err)
			}
		})
	}
}

// TestContextDeadlineKillsEveryBackend bounds the same infinite loop with
// a wall-clock deadline and expects errors.Is against the context error.
func TestContextDeadlineKillsEveryBackend(t *testing.T) {
	prog, err := core.Parse("forever.lol", infiniteLoop)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range backend.All() {
		eng := eng
		t.Run(eng.Name(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_, err := eng.Run(prog.Info, backend.Config{NP: 2, Context: ctx})
			if err == nil {
				t.Fatal("infinite loop completed under a deadline")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error = %v, want DeadlineExceeded", err)
			}
		})
	}
}

// TestCancelReleasesBarrier cancels a run where one PE spins forever while
// the others block in HUGZ: cancellation must release the blocked PEs
// rather than deadlocking the barrier.
func TestCancelReleasesBarrier(t *testing.T) {
	const src = `HAI 1.2
BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A x ITZ 0
  IM IN YR forever
    x R SUM OF x AN 1
  IM OUTTA YR forever
OIC
HUGZ
KTHXBYE`
	prog, err := core.Parse("stuck.lol", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range backend.All() {
		eng := eng
		t.Run(eng.Name(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			done := make(chan error, 1)
			go func() {
				_, err := eng.Run(prog.Info, backend.Config{NP: 4, Context: ctx})
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("error = %v, want Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("cancelled run did not release PEs blocked in HUGZ")
			}
		})
	}
}

// TestMeterExactBudgetBoundary pins the budget's fencepost: a budget of N
// permits exactly N steps; the N+1th attempt is the one that dies.
func TestMeterExactBudgetBoundary(t *testing.T) {
	for _, limit := range []int64{1, 2, 1023, 1024, 1025, 5000} {
		m := backend.NewMeter(&backend.Config{StepBudget: limit})
		for i := int64(0); i < limit; i++ {
			if err := m.Step(); err != nil {
				t.Fatalf("limit %d: step %d failed early: %v", limit, i+1, err)
			}
		}
		if err := m.Step(); !errors.Is(err, backend.ErrStepBudget) {
			t.Errorf("limit %d: step %d error = %v, want ErrStepBudget", limit, limit+1, err)
		}
	}
}

// TestStepBudgetRoomToFinish checks that a budget large enough for the
// program is invisible: the run completes with identical output.
func TestStepBudgetRoomToFinish(t *testing.T) {
	prog, err := core.Parse("ok.lol", "HAI 1.2\nVISIBLE SMOOSH \"PE \" AN ME MKAY\nKTHXBYE")
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range backend.All() {
		var out strings.Builder
		cfg := backend.Config{NP: 2, Stdout: &out, GroupOutput: true, StepBudget: 1 << 20, Context: context.Background()}
		if _, err := eng.Run(prog.Info, cfg); err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if out.String() != "PE 0\nPE 1\n" {
			t.Errorf("%s output = %q", eng.Name(), out.String())
		}
	}
}

// TestMeterStepNBoundary pins the weighted fencepost the VM's fused
// superinstructions rely on: StepN(w) must behave exactly like w
// consecutive Steps, so a budget of N permits exactly N pre-fusion steps
// regardless of how they are grouped into weighted blocks.
func TestMeterStepNBoundary(t *testing.T) {
	for _, limit := range []int64{1, 2, 3, 4, 7, 1023, 1024, 1025, 5000} {
		for _, w := range []int64{2, 3, 4} {
			m := backend.NewMeter(&backend.Config{StepBudget: limit})
			used := int64(0)
			for used+w <= limit {
				if err := m.StepN(w); err != nil {
					t.Fatalf("limit %d w %d: StepN at used=%d failed early: %v", limit, w, used, err)
				}
				used += w
			}
			// The next weighted attempt overdraws (used+w > limit) and must
			// die, exactly as the w-th unfused Step would.
			if err := m.StepN(w); !errors.Is(err, backend.ErrStepBudget) {
				t.Errorf("limit %d w %d: overdraw error = %v, want ErrStepBudget", limit, w, err)
			}
		}
	}
}

// TestMeterStepNMixed interleaves plain and weighted steps across a grant
// boundary.
func TestMeterStepNMixed(t *testing.T) {
	m := backend.NewMeter(&backend.Config{StepBudget: 10})
	for i := 0; i < 3; i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := m.StepN(4); err != nil { // 7 used
		t.Fatalf("StepN(4): %v", err)
	}
	if err := m.StepN(3); err != nil { // 10 used: exactly the budget
		t.Fatalf("StepN(3): %v", err)
	}
	if err := m.StepN(2); !errors.Is(err, backend.ErrStepBudget) {
		t.Errorf("StepN past budget = %v, want ErrStepBudget", err)
	}
}
