package backend_test

import (
	"strings"
	"testing"

	"repro/internal/backend"

	// Importing core registers all three engines.
	"repro/internal/core"
)

func TestRegistryHasAllEngines(t *testing.T) {
	want := []string{"compile", "interp", "vm"}
	got := backend.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		eng, err := backend.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, eng.Name())
		}
	}
	if _, err := backend.ByName("jit"); err == nil {
		t.Error("ByName accepted an unknown engine")
	}
}

// TestEnginesRunViaInterface runs the same program through every engine
// using only the Backend interface and compares outputs.
func TestEnginesRunViaInterface(t *testing.T) {
	prog, err := core.Parse("iface.lol", "HAI 1.2\nVISIBLE SMOOSH \"PE \" AN ME MKAY\nKTHXBYE")
	if err != nil {
		t.Fatal(err)
	}
	want := "PE 0\nPE 1\nPE 2\n"
	for _, eng := range backend.All() {
		var out strings.Builder
		if _, err := eng.Run(prog.Info, backend.Config{NP: 3, Stdout: &out, GroupOutput: true}); err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if out.String() != want {
			t.Errorf("%s output = %q, want %q", eng.Name(), out.String(), want)
		}
	}
}
