package backend

// Audit summarizes which input sources and scheduling-dependent features
// a program uses. It is computed once per parsed program from the AST
// (core.Program.Audit) and consulted by callers that want to reuse a
// run's result — most importantly the internal/server result cache,
// which may only serve a stored result when a fresh execution would be
// guaranteed to produce identical bytes.
//
// The contract: a run is a pure function of (source, engine, NP, seed,
// stdin) exactly when every input the program consumes is one of those
// keyed values and no observable value depends on the goroutine
// schedule. WHATEVR/WHATEVAR are keyed by the seed (PE i draws from
// Seed+i) and GIMMEH by the stdin bytes, so neither breaks determinism
// on its own; what does is cross-PE arbitration, which only the flags
// below can introduce.
type Audit struct {
	// ReadsStdin reports a GIMMEH anywhere in the program. At NP=1 the
	// single PE consumes lines in program order (deterministic given the
	// stdin bytes); at NP>1 lines go to whichever PE asks first, a race.
	ReadsStdin bool
	// UsesRandom reports WHATEVR or WHATEVAR. Harmless for determinism:
	// each PE's stream is fully determined by Seed+rank.
	UsesRandom bool
	// UsesShared reports any WE HAS A declaration. Shared symbols are the
	// only channel for cross-PE data flow (UR/MAH remote access), and an
	// unsynchronized remote read racing the owner's write is
	// schedule-dependent, so any shared state disqualifies NP>1 runs.
	UsesShared bool
	// UsesLocks reports any lock statement (IM [SRSLY] MESIN WIF,
	// DUN MESIN WIF). Acquisition order is scheduler-chosen.
	UsesLocks bool
	// UsesTrylock reports the non-blocking IM MESIN WIF form, whose IT
	// result samples the instantaneous lock state — a race even when the
	// final data values would agree.
	UsesTrylock bool
}

// DeterministicAt reports whether a run at np PEs is a pure function of
// (source, engine, np, seed, stdin). A single PE cannot race with
// anyone, so NP=1 is always deterministic; at NP>1 the program must be
// communication-free: no stdin arbitration, no shared symbols (hence no
// remote access), no locks. This is deliberately conservative — a
// barrier-disciplined exchange can be deterministic in practice — but
// it is sound, and soundness is what a result cache needs.
func (a Audit) DeterministicAt(np int) bool {
	if np <= 1 {
		return true
	}
	return !a.ReadsStdin && !a.UsesShared && !a.UsesLocks && !a.UsesTrylock
}

// DeterministicOutput reports whether cfg's output discipline makes the
// merged VISIBLE/INVISIBLE streams schedule-independent: grouped mode
// buffers per PE and flushes in rank order, and a single PE has nothing
// to interleave with. Live multi-PE output interleaves at the
// scheduler's whim and must never be replayed from a cache even when
// the program itself passes DeterministicAt.
func (cfg Config) DeterministicOutput() bool {
	return cfg.GroupOutput || cfg.NP <= 1
}
