package backend

import (
	"context"
	"errors"
	"fmt"
)

// ErrStepBudget reports that a PE ran past Config.StepBudget. Engines wrap
// it in a RuntimeError carrying the position of the statement that crossed
// the line, so errors.Is(err, ErrStepBudget) identifies budget kills from
// any backend.
var ErrStepBudget = errors.New("step budget exceeded")

// meterInterval is how many steps a PE may take between deadline/budget
// checks. Amortizing the check keeps the engines' dispatch loops hot: the
// per-step cost is one decrement and one predictable branch; the context
// poll and budget arithmetic happen at most once per interval (or sooner
// when the remaining budget is smaller than the interval).
const meterInterval = 1024

// unmetered is the credit grant used when neither a context nor a budget
// is configured: large enough that syncSlow is never reached in practice.
const unmetered = int64(1) << 62

// Meter enforces Config.Context and Config.StepBudget for one PE. Each
// engine calls Step once per unit of work — the interpreter per statement,
// the VM per instruction, the closure compiler per loop back-edge and
// barrier — so the budget is engine-relative but the enforcement machinery
// is shared. The zero Meter is not valid; build one with NewMeter.
type Meter struct {
	ctx    context.Context
	done   <-chan struct{}
	limit  int64 // steps allowed in total; 0 = unlimited
	used   int64 // steps fully accounted at the last sync
	grant  int64 // size of the credit issued at the last sync
	credit int64 // steps remaining before the next sync
}

// NewMeter builds the per-PE meter for cfg.
func NewMeter(cfg *Config) Meter {
	m := Meter{limit: cfg.StepBudget}
	if cfg.Context != nil {
		m.ctx = cfg.Context
		m.done = cfg.Context.Done()
	}
	m.grant = m.nextGrant()
	m.credit = m.grant
	return m
}

func (m *Meter) nextGrant() int64 {
	if m.limit <= 0 && m.done == nil {
		return unmetered
	}
	g := int64(meterInterval)
	if m.limit > 0 {
		// +1 so the grant covers the first over-budget *attempt*: Step runs
		// before the step executes, so the budget kill fires on attempting
		// step limit+1, after exactly limit steps have run.
		if rem := m.limit - m.used + 1; rem < g {
			g = rem
		}
	}
	return g
}

// Step accounts one engine step. The fast path is branch-plus-decrement;
// it is small enough for the compiler to inline into dispatch loops.
func (m *Meter) Step() error {
	if m.credit--; m.credit > 0 {
		return nil
	}
	return m.syncSlow(1)
}

// StepN accounts n engine steps at once. The VM uses it for fused
// superinstructions, which carry the static step weight of the sequence
// they replaced: a budget of N still permits exactly N pre-fusion steps,
// because the kill condition (used+n > limit) is identical whether the n
// steps are attempted one at a time or as a block. The only observable
// difference is where inside the block the kill is reported — a killed
// fused instruction reports the whole block unexecuted, where the
// unfused sequence may have executed a prefix before dying.
func (m *Meter) StepN(n int64) error {
	if m.credit -= n; m.credit > 0 {
		return nil
	}
	return m.syncSlow(n)
}

// syncSlow settles the consumed credit, checks the context and the budget,
// and issues the next credit. n is the size of the step attempt that
// triggered the sync; with weighted steps the credit can be overdrawn by
// up to n-1, so the settled amount is grant minus the (non-positive)
// remaining credit.
func (m *Meter) syncSlow(n int64) error {
	m.used += m.grant - m.credit
	if m.done != nil {
		select {
		case <-m.done:
			return m.ctx.Err()
		default:
		}
	}
	// m.used counts the attempt that triggered this sync, which has not
	// executed; strictly-greater means exactly limit steps are allowed.
	if m.limit > 0 && m.used > m.limit {
		return fmt.Errorf("%w: PE ran %d steps (limit %d)", ErrStepBudget, m.used-n, m.limit)
	}
	m.grant = m.nextGrant()
	m.credit = m.grant
	return nil
}

// Refund returns n steps of credit. The VM calls it when an instruction
// suspends instead of executing: the instruction was charged before
// dispatch and will be charged again when the resumed frame re-executes
// it, so without the refund every park would bill one phantom step and
// worker mode would kill budgeted programs earlier than goroutine mode.
// If the original charge crossed a sync (settling `used`), the refunded
// credit exactly absorbs the re-charge, so `used` still counts the
// instruction once — metering stays mode-independent.
func (m *Meter) Refund(n int64) { m.credit += n }

// Used reports the steps accounted so far (within one interval of exact).
func (m *Meter) Used() int64 { return m.used + (m.grant - m.credit) }
