// Package backend defines the common execution-backend abstraction shared
// by the three engines that can run a checked parallel-LOLCODE program:
//
//   - internal/interp: the tree-walking interpreter (baseline);
//   - internal/vm: the slot-addressed bytecode VM (middle point);
//   - internal/compile: the closure compiler (production path).
//
// All three implement Backend and register themselves here, so launchers
// (cmd/lolrun, cmd/lolbench) and the conformance harness can select an
// engine by name and run the same backend×fixture matrix over every engine.
// The package also owns the execution plumbing every engine shares: the run
// Config, the Result, the per-PE output/stdin multiplexers, and the SPMD
// driver that maps one engine body over the shmem world.
package backend

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sema"
	"repro/internal/shmem"
)

// Backend is one execution engine. Run executes a semantically checked
// program SPMD under cfg and reports run statistics. Engines are stateless;
// callers that want to amortize per-program preparation (bytecode or
// closure compilation) should use the engine package's Program type
// directly (core.Program does, caching one prepared form per engine).
type Backend interface {
	// Name is the stable identifier used by -backend flags and reports.
	Name() string
	// Run executes the program across cfg.NP processing elements.
	Run(info *sema.Info, cfg Config) (*Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register makes an engine selectable by name. Engines call it from init;
// importing repro/internal/core links in all three. Re-registering a name
// panics: it is a wiring bug, not a runtime condition.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("backend: %q registered twice", b.Name()))
	}
	registry[b.Name()] = b
}

// ByName returns the engine registered under name.
func ByName(name string) (Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (want one of %v)", name, Names())
	}
	return b, nil
}

// Names lists the registered engine names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered engines sorted by name.
func All() []Backend {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Backend, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// NewWorld builds the shmem world implied by the program's symmetric
// symbols: one heap slot per WE HAS A declaration, one lock per
// AN IM SHARIN IT, exactly the per-PE layout of the paper's Figure 1.
func NewWorld(info *sema.Info, cfg Config) (*shmem.World, error) {
	syms := make([]shmem.SymbolSpec, len(info.Shared))
	for i, s := range info.Shared {
		syms[i] = shmem.SymbolSpec{Name: s.Name, IsArray: s.IsArray, Elem: s.Type}
	}
	return shmem.NewWorld(cfg.NP, syms, len(info.Locks), shmem.Options{
		Model:   cfg.Model,
		Barrier: cfg.Barrier,
		Seed:    cfg.Seed,
		Tracer:  cfg.Tracer,
	})
}

// PEIO bundles the per-PE I/O endpoints an engine body uses.
type PEIO struct {
	Out   *PEWriter
	Err   *PEWriter
	Stdin *SharedReader
}

// RunSPMD drives one engine body per PE over an existing world, wiring the
// grouped-output and shared-stdin plumbing identically for every engine,
// and collects the Result. body runs concurrently on every PE.
//
// When cfg.Context is set, a watcher fails the world the moment the
// context is cancelled, so PEs blocked in HUGZ, locks, or point-to-point
// waits are released promptly even if no PE is currently running engine
// steps; the engines' own meters catch cancellation on compute-bound
// paths. The returned error then satisfies errors.Is against the
// context's error.
func RunSPMD(cfg Config, world *shmem.World, body func(pe *shmem.PE, io PEIO) error) (*Result, error) {
	run := startSPMD(cfg, world)
	defer run.stopWatcher()
	err := world.Run(func(pe *shmem.PE) error {
		if err := body(pe, run.ioFor(pe.ID())); err != nil {
			return err
		}
		run.res.SimNanos[pe.ID()] = pe.SimNanos()
		return nil
	})
	return run.finish(cfg, world, err)
}

// RunSPMDScheduled is RunSPMD for the worker-scheduler mode: instead of
// a run-to-completion body, makeStep builds one resumable step function
// per PE (see shmem.World.RunScheduled for the suspend/resume contract).
// Output plumbing, context teardown, and Result assembly are shared with
// RunSPMD, so the two modes can only diverge inside the engine's own
// execution order — which the conformance differentials pin down.
func RunSPMDScheduled(cfg Config, world *shmem.World, makeStep func(pe *shmem.PE, io PEIO) func() error) (*Result, error) {
	run := startSPMD(cfg, world)
	defer run.stopWatcher()
	err := world.RunScheduled(cfg.SchedWorkers, func(pe *shmem.PE) func() error {
		step := makeStep(pe, run.ioFor(pe.ID()))
		return func() error {
			err := step()
			if err == nil {
				run.res.SimNanos[pe.ID()] = pe.SimNanos()
			}
			return err
		}
	})
	return run.finish(cfg, world, err)
}

// spmdRun is the plumbing shared by both execution modes: the grouped
// output multiplexers, the shared stdin, the context watcher that fails
// the world on cancellation, and the Result under assembly.
type spmdRun struct {
	out, errw *Output
	stdin     *SharedReader
	res       *Result
	start     time.Time
	stop      chan struct{}
}

func startSPMD(cfg Config, world *shmem.World) *spmdRun {
	r := &spmdRun{
		out:   NewOutput(cfg.Stdout, cfg.GroupOutput, cfg.NP, cfg.MaxOutput),
		errw:  NewOutput(cfg.Stderr, cfg.GroupOutput, cfg.NP, cfg.MaxOutput),
		stdin: NewSharedReader(cfg.Stdin),
		res:   &Result{SimNanos: make([]float64, cfg.NP)},
	}
	if ctx := cfg.Context; ctx != nil {
		// The goroutine captures the channel locally: it must not read the
		// r.stop field, which stopWatcher overwrites from the caller.
		stop := make(chan struct{})
		r.stop = stop
		go func() {
			select {
			case <-ctx.Done():
				world.Fail(ctx.Err())
			case <-stop:
			}
		}()
	}
	r.start = time.Now()
	return r
}

func (r *spmdRun) ioFor(pe int) PEIO {
	return PEIO{Out: r.out.ForPE(pe), Err: r.errw.ForPE(pe), Stdin: r.stdin}
}

func (r *spmdRun) stopWatcher() {
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
	}
}

func (r *spmdRun) finish(cfg Config, world *shmem.World, err error) (*Result, error) {
	execWall := time.Since(r.start)
	r.out.Flush()
	r.errw.Flush()
	truncated := r.out.Truncated() || r.errw.Truncated()
	if err != nil {
		// Blocked PEs report the generic world failure; when the teardown
		// was actually caused by the context (the watcher's Fail), surface
		// the cancel cause so callers can classify with errors.Is. A
		// genuine PE error that merely races the deadline keeps its own
		// identity: the world's recorded cause is the PE error, not the
		// context's.
		if ctx := cfg.Context; ctx != nil {
			if cerr := ctx.Err(); cerr != nil && !errors.Is(err, cerr) && errors.Is(world.Err(), cerr) {
				err = fmt.Errorf("%w: %w", cerr, err)
			}
		}
		// The Result still carries output metadata (the launcher shows the
		// partial output it captured) and the post-teardown runtime stats
		// (every PE has joined by now, so the snapshot is quiescent — the
		// kill tests assert the scheduler gauges drained to zero); callers
		// must treat a run with a non-nil error as failed regardless.
		return &Result{Stats: world.Stats(), OutputTruncated: truncated, ExecWall: execWall}, err
	}
	r.res.Stats = world.Stats()
	r.res.OutputTruncated = truncated
	r.res.ExecWall = execWall
	return r.res, nil
}
