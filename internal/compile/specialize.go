package compile

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/value"
)

// This file implements the typed fast paths that make the closure backend a
// real compiler rather than a cached interpreter: expressions whose static
// type is known (SRSLY-typed variables, loop counters, literals, the
// Table III math) compile to closures over raw float64/int64, skipping the
// dynamic value dispatch entirely. The paper's §II.B motivates exactly
// this: "dynamic typing which we extend to support statically typed
// variables as a transition to a compiled ... language".
//
// Correctness containment: specialization may only be applied where the
// static kind is guaranteed by construction — SRSLY scalars are cast on
// every write, loop counters are always NUMBRs, typed array elements are
// cast by Array.Set. The differential test suite runs both backends on
// every program to keep these guarantees honest.

// floatFn evaluates a statically float-valued expression.
type floatFn func(*env) (float64, error)

// intFn evaluates a statically int-valued expression.
type intFn func(*env) (int64, error)

// boolFn evaluates a statically TROOF-valued expression.
type boolFn func(*env) (bool, error)

// staticKind infers the runtime kind of e when it is statically known.
func (c *compiler) staticKind(e ast.Expr) (value.Kind, bool) {
	switch n := e.(type) {
	case *ast.NumbrLit:
		return value.Numbr, true
	case *ast.NumbarLit:
		return value.Numbar, true
	case *ast.TroofLit:
		return value.Troof, true
	case *ast.NoobLit:
		return value.Noob, true
	case *ast.YarnLit:
		if len(n.Segs) <= 1 && (len(n.Segs) == 0 || n.Segs[0].Var == "") {
			return value.Yarn, true
		}
		return value.Yarn, true // interpolation still yields a YARN
	case *ast.Me, *ast.MahFrenz, *ast.Whatevr:
		return value.Numbr, true
	case *ast.Whatevar:
		return value.Numbar, true
	case *ast.VarRef:
		sym, err := c.resolve(n)
		if err != nil {
			return 0, false
		}
		if sym.Kind == sema.SymLoopVar {
			return value.Numbr, true
		}
		if sym.Static && !sym.IsArray {
			return sym.Type, true
		}
		return 0, false
	case *ast.Index:
		sym, err := c.resolve(n.Arr)
		if err != nil {
			return 0, false
		}
		if sym.IsArray && sym.Type != value.Noob {
			return sym.Type, true
		}
		return 0, false
	case *ast.BinExpr:
		switch n.Op {
		case value.OpBothSaem, value.OpDiffrint, value.OpBigger, value.OpSmallr,
			value.OpBothOf, value.OpEitherOf, value.OpWonOf:
			return value.Troof, true
		}
		xk, xok := c.staticKind(n.X)
		yk, yok := c.staticKind(n.Y)
		if !xok || !yok || !isNumericKind(xk) || !isNumericKind(yk) {
			return 0, false
		}
		if xk == value.Numbar || yk == value.Numbar {
			return value.Numbar, true
		}
		return value.Numbr, true
	case *ast.UnExpr:
		switch n.Op {
		case value.OpNot:
			return value.Troof, true
		case value.OpUnsquar, value.OpFlip:
			return value.Numbar, true
		case value.OpSquar:
			k, ok := c.staticKind(n.X)
			if ok && isNumericKind(k) {
				return k, true
			}
			return 0, false
		}
		return 0, false
	case *ast.NaryExpr:
		switch n.Op {
		case value.OpAllOf, value.OpAnyOf:
			return value.Troof, true
		case value.OpSmoosh:
			return value.Yarn, true
		}
		return 0, false
	case *ast.CastExpr:
		return n.Type, true
	}
	return 0, false
}

func isNumericKind(k value.Kind) bool { return k == value.Numbr || k == value.Numbar }

// floatExpr compiles e to a raw-float closure when its static kind is
// numeric and its structure is supported. The bool result reports success.
//
// Kind discipline: a subtree whose own static kind is NUMBR keeps integer
// semantics (QUOSHUNT OF -3 AN 7 is 0, not -0.43) and is compiled through
// intExpr, then widened — exactly how the dynamic evaluator behaves.
func (c *compiler) floatExpr(e ast.Expr) (floatFn, bool) {
	k, ok := c.staticKind(e)
	if !ok || !isNumericKind(k) {
		return nil, false
	}
	if k == value.Numbr {
		ifn, ok := c.intExpr(e)
		if !ok {
			return nil, false
		}
		return func(e *env) (float64, error) {
			n, err := ifn(e)
			return float64(n), err
		}, true
	}
	switch n := e.(type) {
	case *ast.NumbrLit:
		f := float64(n.Value)
		return func(*env) (float64, error) { return f, nil }, true

	case *ast.NumbarLit:
		f := n.Value
		return func(*env) (float64, error) { return f, nil }, true

	case *ast.Me:
		return func(e *env) (float64, error) { return float64(e.pe.ID()), nil }, true

	case *ast.MahFrenz:
		return func(e *env) (float64, error) { return float64(e.pe.NPEs()), nil }, true

	case *ast.Whatevr:
		return func(e *env) (float64, error) { return float64(e.pe.Rand().Int63n(1 << 31)), nil }, true

	case *ast.Whatevar:
		return func(e *env) (float64, error) { return e.pe.Rand().Float64(), nil }, true

	case *ast.VarRef:
		return c.floatVar(n)

	case *ast.Index:
		return c.floatIndex(n)

	case *ast.BinExpr:
		x, xok := c.floatExpr(n.X)
		y, yok := c.floatExpr(n.Y)
		if !xok || !yok {
			return nil, false
		}
		pos := n.Position
		switch n.Op {
		case value.OpSum:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return a + b, nil
			}, true
		case value.OpDiff:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return a - b, nil
			}, true
		case value.OpProdukt:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return a * b, nil
			}, true
		case value.OpQuoshunt:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, rerrf(pos, "QUOSHUNT OF: division by zero")
				}
				return a / b, nil
			}, true
		case value.OpMod:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, rerrf(pos, "MOD OF: modulo by zero")
				}
				return math.Mod(a, b), nil
			}, true
		case value.OpBiggrOf:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return math.Max(a, b), nil
			}, true
		case value.OpSmallrOf:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return math.Min(a, b), nil
			}, true
		}
		return nil, false

	case *ast.UnExpr:
		x, xok := c.floatExpr(n.X)
		if !xok {
			return nil, false
		}
		pos := n.Position
		switch n.Op {
		case value.OpSquar:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				return a * a, nil
			}, true
		case value.OpUnsquar:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				if a < 0 {
					return 0, rerrf(pos, "UNSQUAR OF: negative operand %g", a)
				}
				return math.Sqrt(a), nil
			}, true
		case value.OpFlip:
			return func(e *env) (float64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				if a == 0 {
					return 0, rerrf(pos, "FLIP OF: division by zero")
				}
				return 1 / a, nil
			}, true
		}
		return nil, false
	}
	return nil, false
}

// floatVar compiles a numeric static variable reference to a raw read.
func (c *compiler) floatVar(n *ast.VarRef) (floatFn, bool) {
	sym, err := c.resolve(n)
	if err != nil {
		return nil, false
	}
	pos := n.Position
	if sym.Kind == sema.SymLoopVar {
		// A body may reassign its counter to anything; fall back to the
		// dynamic conversion (and its diagnostic) when that happens.
		slot := sym.Slot
		return func(e *env) (float64, error) {
			v := e.frame[slot]
			if v.Kind() == value.Numbr {
				return float64(v.Numbr()), nil
			}
			f, err := v.ToNumbar()
			return f, rerr(pos, err)
		}, true
	}
	if !sym.Static || sym.IsArray {
		return nil, false
	}
	switch {
	case sym.Kind != sema.SymShared && sym.Type == value.Numbar:
		slot := sym.Slot
		return func(e *env) (float64, error) { return e.frame[slot].Numbar(), nil }, true
	case sym.Kind != sema.SymShared && sym.Type == value.Numbr:
		slot := sym.Slot
		return func(e *env) (float64, error) { return float64(e.frame[slot].Numbr()), nil }, true
	case sym.Kind == sema.SymShared && isNumericKind(sym.Type):
		heap := sym.Heap
		sp := n.Space
		return func(e *env) (float64, error) {
			var v value.Value
			var err error
			if sp == ast.SpaceUr {
				t, terr := e.predTarget(pos)
				if terr != nil {
					return 0, terr
				}
				v, err = e.pe.Get(t, heap)
			} else {
				v, err = e.pe.LocalGet(heap)
			}
			if err != nil {
				return 0, rerr(pos, err)
			}
			return v.ToNumbar()
		}, true
	}
	return nil, false
}

// floatIndex compiles typed-array element reads: private NUMBAR/NUMBR
// arrays read straight from the backing slice; local shared arrays go
// through LocalArray once per access.
func (c *compiler) floatIndex(n *ast.Index) (floatFn, bool) {
	sym, err := c.resolve(n.Arr)
	if err != nil || !sym.IsArray || !isNumericKind(sym.Type) {
		return nil, false
	}
	idx, iok := c.intExpr(n.IndexE)
	if !iok {
		// Fall back to the generic index expression for the subscript.
		gen, err := c.expr(n.IndexE)
		if err != nil {
			return nil, false
		}
		pos := n.Position
		idx = func(e *env) (int64, error) {
			v, err := gen(e)
			if err != nil {
				return 0, err
			}
			i, err := v.ToNumbr()
			if err != nil {
				return 0, rerr(pos, err)
			}
			return i, nil
		}
	}
	pos := n.Position
	isFloat := sym.Type == value.Numbar

	if sym.Kind != sema.SymShared {
		slot := sym.Slot
		name := n.Arr.Name
		return func(e *env) (float64, error) {
			i, err := idx(e)
			if err != nil {
				return 0, err
			}
			av := e.frame[slot]
			if av.Kind() != value.ArrayK {
				return 0, rerrf(pos, "%s is not an array", name)
			}
			arr := av.Array()
			if i < 0 || int(i) >= arr.Len() {
				return 0, rerr(pos, &value.IndexError{Index: int(i), Len: arr.Len()})
			}
			if isFloat {
				return arr.Numbars()[i], nil
			}
			return float64(arr.Numbrs()[i]), nil
		}, true
	}

	heap := sym.Heap
	sp := n.Arr.Space
	return func(e *env) (float64, error) {
		i, err := idx(e)
		if err != nil {
			return 0, err
		}
		if sp == ast.SpaceUr {
			t, terr := e.predTarget(pos)
			if terr != nil {
				return 0, terr
			}
			v, err := e.pe.GetElem(t, heap, int(i))
			if err != nil {
				return 0, rerr(pos, err)
			}
			return v.ToNumbar()
		}
		// Local shared elements go through the locked accessor so
		// concurrent remote traffic never observes torn values.
		v, err := e.pe.LocalGetElem(heap, int(i))
		if err != nil {
			return 0, rerr(pos, err)
		}
		if isFloat {
			return v.Numbar(), nil
		}
		return float64(v.Numbr()), nil
	}, true
}

// intExpr compiles e to a raw-int closure when it is statically a NUMBR.
func (c *compiler) intExpr(e ast.Expr) (intFn, bool) {
	k, ok := c.staticKind(e)
	if !ok || k != value.Numbr {
		return nil, false
	}
	switch n := e.(type) {
	case *ast.NumbrLit:
		v := n.Value
		return func(*env) (int64, error) { return v, nil }, true
	case *ast.Me:
		return func(e *env) (int64, error) { return int64(e.pe.ID()), nil }, true
	case *ast.MahFrenz:
		return func(e *env) (int64, error) { return int64(e.pe.NPEs()), nil }, true
	case *ast.Whatevr:
		return func(e *env) (int64, error) { return e.pe.Rand().Int63n(1 << 31), nil }, true
	case *ast.VarRef:
		sym, err := c.resolve(n)
		if err != nil {
			return nil, false
		}
		pos := n.Position
		if sym.Kind == sema.SymLoopVar ||
			(sym.Kind != sema.SymShared && sym.Static && !sym.IsArray && sym.Type == value.Numbr) {
			slot := sym.Slot
			return func(e *env) (int64, error) {
				v := e.frame[slot]
				if v.Kind() == value.Numbr {
					return v.Numbr(), nil
				}
				i, err := v.ToNumbr()
				return i, rerr(pos, err)
			}, true
		}
		if sym.Kind == sema.SymShared && sym.Static && !sym.IsArray && sym.Type == value.Numbr {
			heap := sym.Heap
			sp := n.Space
			return func(e *env) (int64, error) {
				var v value.Value
				var err error
				if sp == ast.SpaceUr {
					t, terr := e.predTarget(pos)
					if terr != nil {
						return 0, terr
					}
					v, err = e.pe.Get(t, heap)
				} else {
					v, err = e.pe.LocalGet(heap)
				}
				if err != nil {
					return 0, rerr(pos, err)
				}
				return v.ToNumbr()
			}, true
		}
		return nil, false
	case *ast.Index:
		return c.intIndex(n)
	case *ast.UnExpr:
		if n.Op != value.OpSquar {
			return nil, false
		}
		x, ok := c.intExpr(n.X)
		if !ok {
			return nil, false
		}
		return func(e *env) (int64, error) {
			a, err := x(e)
			if err != nil {
				return 0, err
			}
			return a * a, nil
		}, true
	case *ast.CastExpr:
		if n.Type != value.Numbr {
			return nil, false
		}
		gen, err := c.expr(n.X)
		if err != nil {
			return nil, false
		}
		pos := n.Position
		return func(e *env) (int64, error) {
			v, err := gen(e)
			if err != nil {
				return 0, err
			}
			cv, err := value.Cast(v, value.Numbr)
			if err != nil {
				return 0, rerr(pos, err)
			}
			return cv.Numbr(), nil
		}, true
	case *ast.BinExpr:
		x, xok := c.intExpr(n.X)
		y, yok := c.intExpr(n.Y)
		if !xok || !yok {
			return nil, false
		}
		pos := n.Position
		switch n.Op {
		case value.OpSum:
			return func(e *env) (int64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return a + b, nil
			}, true
		case value.OpDiff:
			return func(e *env) (int64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return a - b, nil
			}, true
		case value.OpProdukt:
			return func(e *env) (int64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return a * b, nil
			}, true
		case value.OpMod:
			return func(e *env) (int64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, rerrf(pos, "MOD OF: modulo by zero")
				}
				return a % b, nil
			}, true
		case value.OpQuoshunt:
			return func(e *env) (int64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, rerrf(pos, "QUOSHUNT OF: division by zero")
				}
				return a / b, nil
			}, true
		case value.OpBiggrOf:
			return func(e *env) (int64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return max(a, b), nil
			}, true
		case value.OpSmallrOf:
			return func(e *env) (int64, error) {
				a, err := x(e)
				if err != nil {
					return 0, err
				}
				b, err := y(e)
				if err != nil {
					return 0, err
				}
				return min(a, b), nil
			}, true
		}
		return nil, false
	}
	return nil, false
}

// intIndex compiles NUMBR array element reads to raw int64 access.
func (c *compiler) intIndex(n *ast.Index) (intFn, bool) {
	sym, err := c.resolve(n.Arr)
	if err != nil || !sym.IsArray || sym.Type != value.Numbr {
		return nil, false
	}
	idx, iok := c.intExpr(n.IndexE)
	if !iok {
		gen, err := c.expr(n.IndexE)
		if err != nil {
			return nil, false
		}
		pos := n.Position
		idx = func(e *env) (int64, error) {
			v, err := gen(e)
			if err != nil {
				return 0, err
			}
			i, err := v.ToNumbr()
			return i, rerr(pos, err)
		}
	}
	pos := n.Position

	if sym.Kind != sema.SymShared {
		slot := sym.Slot
		name := n.Arr.Name
		return func(e *env) (int64, error) {
			i, err := idx(e)
			if err != nil {
				return 0, err
			}
			av := e.frame[slot]
			if av.Kind() != value.ArrayK {
				return 0, rerrf(pos, "%s is not an array", name)
			}
			arr := av.Array()
			if i < 0 || int(i) >= arr.Len() {
				return 0, rerr(pos, &value.IndexError{Index: int(i), Len: arr.Len()})
			}
			return arr.Numbrs()[i], nil
		}, true
	}

	heap := sym.Heap
	sp := n.Arr.Space
	return func(e *env) (int64, error) {
		i, err := idx(e)
		if err != nil {
			return 0, err
		}
		if sp == ast.SpaceUr {
			t, terr := e.predTarget(pos)
			if terr != nil {
				return 0, terr
			}
			v, err := e.pe.GetElem(t, heap, int(i))
			if err != nil {
				return 0, rerr(pos, err)
			}
			return v.ToNumbr()
		}
		v, err := e.pe.LocalGetElem(heap, int(i))
		if err != nil {
			return 0, rerr(pos, err)
		}
		return v.Numbr(), nil
	}, true
}

// boolExpr compiles comparison conditions over specializable numeric
// operands (the hot path of every counted loop).
func (c *compiler) boolExpr(e ast.Expr) (boolFn, bool) {
	n, ok := e.(*ast.BinExpr)
	if !ok {
		return nil, false
	}
	eq := func(x, y floatFn) boolFn {
		return func(e *env) (bool, error) {
			a, err := x(e)
			if err != nil {
				return false, err
			}
			b, err := y(e)
			if err != nil {
				return false, err
			}
			return a == b, nil
		}
	}
	switch n.Op {
	case value.OpBothSaem, value.OpDiffrint, value.OpBigger, value.OpSmallr:
		xk, xok := c.staticKind(n.X)
		yk, yok := c.staticKind(n.Y)
		if !xok || !yok || !isNumericKind(xk) || !isNumericKind(yk) {
			return nil, false
		}
		// Two int-kind operands compare as int64 (float64 loses precision
		// past 2^53); mixed comparisons promote like the dynamic evaluator.
		if xk == value.Numbr && yk == value.Numbr {
			xi, xok2 := c.intExpr(n.X)
			yi, yok2 := c.intExpr(n.Y)
			if !xok2 || !yok2 {
				return nil, false
			}
			op := n.Op
			return func(e *env) (bool, error) {
				a, err := xi(e)
				if err != nil {
					return false, err
				}
				b, err := yi(e)
				if err != nil {
					return false, err
				}
				switch op {
				case value.OpBothSaem:
					return a == b, nil
				case value.OpDiffrint:
					return a != b, nil
				case value.OpBigger:
					return a > b, nil
				default:
					return a < b, nil
				}
			}, true
		}
		x, xok2 := c.floatExpr(n.X)
		y, yok2 := c.floatExpr(n.Y)
		if !xok2 || !yok2 {
			return nil, false
		}
		switch n.Op {
		case value.OpBothSaem:
			return eq(x, y), true
		case value.OpDiffrint:
			inner := eq(x, y)
			return func(e *env) (bool, error) {
				same, err := inner(e)
				return !same, err
			}, true
		case value.OpBigger:
			return func(e *env) (bool, error) {
				a, err := x(e)
				if err != nil {
					return false, err
				}
				b, err := y(e)
				if err != nil {
					return false, err
				}
				return a > b, nil
			}, true
		default: // OpSmallr
			return func(e *env) (bool, error) {
				a, err := x(e)
				if err != nil {
					return false, err
				}
				b, err := y(e)
				if err != nil {
					return false, err
				}
				return a < b, nil
			}, true
		}
	}
	return nil, false
}

// specializedExpr wraps a typed fast path back into the generic exprFn
// interface; used when a statically numeric expression appears in a
// dynamic context.
func (c *compiler) specializedExpr(e ast.Expr) (exprFn, bool) {
	k, ok := c.staticKind(e)
	if !ok {
		return nil, false
	}
	switch k {
	case value.Numbr:
		if fn, ok := c.intExpr(e); ok {
			return func(e *env) (value.Value, error) {
				n, err := fn(e)
				if err != nil {
					return value.NOOB, err
				}
				return value.NewNumbr(n), nil
			}, true
		}
	case value.Numbar:
		if fn, ok := c.floatExpr(e); ok {
			return func(e *env) (value.Value, error) {
				f, err := fn(e)
				if err != nil {
					return value.NOOB, err
				}
				return value.NewNumbar(f), nil
			}, true
		}
	case value.Troof:
		if fn, ok := c.boolExpr(e); ok {
			return func(e *env) (value.Value, error) {
				b, err := fn(e)
				if err != nil {
					return value.NOOB, err
				}
				return value.NewTroof(b), nil
			}, true
		}
	}
	return nil, false
}

// specializedAssign builds a fast store for `target R value` when both
// sides have known numeric types: static scalars and typed array elements
// skip the dynamic cast machinery.
func (c *compiler) specializedAssign(n *ast.Assign) (stmtFn, bool) {
	switch target := n.Target.(type) {
	case *ast.VarRef:
		sym, err := c.resolve(target)
		if err != nil || sym.Kind == sema.SymShared || sym.IsArray || !sym.Static {
			return nil, false
		}
		switch sym.Type {
		case value.Numbar:
			fx, ok := c.floatExpr(n.Value)
			if !ok {
				return nil, false
			}
			slot := sym.Slot
			return func(e *env) (ctrl, error) {
				f, err := fx(e)
				if err != nil {
					return ctrlNone, err
				}
				e.frame[slot] = value.NewNumbar(f)
				return ctrlNone, nil
			}, true
		case value.Numbr:
			fx, ok := c.intExpr(n.Value)
			if !ok {
				return nil, false
			}
			slot := sym.Slot
			return func(e *env) (ctrl, error) {
				v, err := fx(e)
				if err != nil {
					return ctrlNone, err
				}
				e.frame[slot] = value.NewNumbr(v)
				return ctrlNone, nil
			}, true
		}
		return nil, false

	case *ast.Index:
		sym, err := c.resolve(target.Arr)
		if err != nil || sym.Kind == sema.SymShared || !sym.IsArray || sym.Type != value.Numbar {
			return nil, false
		}
		fx, ok := c.floatExpr(n.Value)
		if !ok {
			return nil, false
		}
		idx, ok := c.intExpr(target.IndexE)
		if !ok {
			return nil, false
		}
		slot := sym.Slot
		pos := target.Position
		name := target.Arr.Name
		return func(e *env) (ctrl, error) {
			f, err := fx(e)
			if err != nil {
				return ctrlNone, err
			}
			i, err := idx(e)
			if err != nil {
				return ctrlNone, err
			}
			av := e.frame[slot]
			if av.Kind() != value.ArrayK {
				return ctrlNone, rerrf(pos, "%s is not an array", name)
			}
			arr := av.Array()
			if i < 0 || int(i) >= arr.Len() {
				return ctrlNone, rerr(pos, &value.IndexError{Index: int(i), Len: arr.Len()})
			}
			arr.Numbars()[i] = f
			return ctrlNone, nil
		}, true
	}
	return nil, false
}

// specializedLoop compiles the common counted-loop shape with a raw int64
// counter and a specialized condition.
func (c *compiler) specializedLoop(n *ast.Loop, body []stmtFn) (stmtFn, bool) {
	if n.Var == "" || n.Cond == nil {
		return nil, false
	}
	sym := c.info.Refs[n]
	if sym == nil {
		return nil, false
	}
	cond, ok := c.boolExpr(n.Cond)
	if !ok {
		return nil, false
	}
	slot := sym.Slot
	isImplicit := sym.Kind == sema.SymLoopVar
	condTil := n.CondKind == ast.CondTil
	nerfin := n.Op == ast.LoopNerfin
	pos := n.Position
	varName := n.Var

	return func(e *env) (ctrl, error) {
		saved := e.frame[slot]
		e.frame[slot] = value.NewNumbr(0)
		if isImplicit {
			defer func() { e.frame[slot] = saved }()
		}
		for {
			if err := e.meter.Step(); err != nil {
				return ctrlNone, rerr(pos, err)
			}
			stop, err := cond(e)
			if err != nil {
				return ctrlNone, err
			}
			if !condTil {
				stop = !stop
			}
			if stop {
				return ctrlNone, nil
			}
			ctl, err := runStmts(e, body)
			if err != nil {
				return ctrlNone, err
			}
			if ctl == ctrlBreak {
				return ctrlNone, nil
			}
			if ctl == ctrlReturn {
				return ctl, nil
			}
			// The body may have reassigned the counter, possibly to a
			// non-NUMBR; honour the value and diagnose like the generic path.
			var i int64
			if cur := e.frame[slot]; cur.Kind() == value.Numbr {
				i = cur.Numbr()
			} else {
				i, err = cur.ToNumbr()
				if err != nil {
					return ctrlNone, rerr(pos, fmt.Errorf("loop variable %s: %w", varName, err))
				}
			}
			if nerfin {
				i--
			} else {
				i++
			}
			e.frame[slot] = value.NewNumbr(i)
		}
	}, true
}
