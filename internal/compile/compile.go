// Package compile is the compiled execution backend: it lowers a checked
// parallel-LOLCODE program into a tree of Go closures once, then runs that
// closure program SPMD over the shmem runtime.
//
// Compilation resolves all symbols, slots, static casts and operator
// dispatch ahead of time, so the per-statement interpreter overhead (AST
// type switches, map lookups) disappears. This is the repository's analog
// of the paper's lcc pipeline being "more flexible and efficient than an
// interpreter" (experiment E1 measures the gap); internal/gogen additionally
// emits real Go source the way lcc emitted C.
package compile

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/interp"
	"repro/internal/sema"
	"repro/internal/shmem"
	"repro/internal/token"
	"repro/internal/value"
)

// engine implements backend.Backend. It recompiles on every Run; callers
// that run one program repeatedly should hold a Program (core.Program
// caches one per engine).
type engine struct{}

func (engine) Name() string { return "compile" }

func (engine) Run(info *sema.Info, cfg interp.Config) (*interp.Result, error) {
	p, err := Compile(info)
	if err != nil {
		return nil, err
	}
	return p.Run(cfg)
}

func init() { backend.Register(engine{}) }

// ctrl is the statement-level control-flow signal.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlReturn
)

// stmtFn executes one compiled statement on a PE's environment.
type stmtFn func(*env) (ctrl, error)

// exprFn evaluates one compiled expression.
type exprFn func(*env) (value.Value, error)

// assignFn stores a value into a compiled assignment target.
type assignFn func(*env, value.Value) error

// Program is a compiled parallel-LOLCODE program, safe for concurrent runs.
type Program struct {
	info  *sema.Info
	main  []stmtFn
	funcs map[string]*compiledFunc
}

type compiledFunc struct {
	decl   *ast.FuncDecl
	scope  *sema.Scope
	body   []stmtFn
	nSlots int
}

// env is the per-PE runtime state of a compiled program.
type env struct {
	prog  *Program
	pe    *shmem.PE
	frame []value.Value
	scope *sema.Scope // active name table for SRS lookups

	pred      []int
	retval    value.Value
	callDepth int

	// meter enforces the run's deadline and step budget. Straight-line
	// closure code runs unmetered (it terminates by construction); one
	// compiled step is one loop back-edge or one barrier, the program
	// points where execution time and blocking can become unbounded.
	meter backend.Meter

	out   *interp.PEWriter
	errw  *interp.PEWriter
	stdin *interp.SharedReader
}

const maxCallDepth = 10_000

func (e *env) predTarget(pos token.Pos) (int, error) {
	if len(e.pred) == 0 {
		return 0, rerrf(pos, "UR used outside of TXT MAH BFF predication")
	}
	return e.pred[len(e.pred)-1], nil
}

func rerr(pos token.Pos, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*interp.RuntimeError); ok {
		return err
	}
	return &interp.RuntimeError{Pos: pos, Err: err}
}

func rerrf(pos token.Pos, format string, args ...any) error {
	return &interp.RuntimeError{Pos: pos, Err: fmt.Errorf(format, args...)}
}

// Options tunes compilation. The zero value is the production
// configuration.
type Options struct {
	// DisableSpecialization turns off the typed fast paths (specialize.go),
	// leaving the purely generic closure lowering. Exists for the ablation
	// benchmarks that quantify what static typing buys the backend.
	DisableSpecialization bool
}

// Compile lowers a checked program with default options.
func Compile(info *sema.Info) (*Program, error) {
	return CompileOpts(info, Options{})
}

// CompileOpts lowers a checked program with explicit options.
func CompileOpts(info *sema.Info, opts Options) (*Program, error) {
	p := &Program{info: info, funcs: make(map[string]*compiledFunc)}
	c := &compiler{prog: p, info: info, noSpec: opts.DisableSpecialization}

	for name, fi := range info.Funcs {
		cf := &compiledFunc{decl: fi.Decl, scope: fi.Scope, nSlots: len(fi.Scope.Order)}
		p.funcs[name] = cf
	}
	// Compile bodies after headers exist so calls resolve in any order.
	for name, fi := range info.Funcs {
		c.scope = fi.Scope
		body, err := c.stmts(fi.Decl.Body)
		if err != nil {
			return nil, err
		}
		p.funcs[name].body = body
	}
	c.scope = info.Main
	main, err := c.stmts(info.Prog.Body)
	if err != nil {
		return nil, err
	}
	p.main = main
	return p, nil
}

// Run executes the compiled program under cfg.
func (p *Program) Run(cfg interp.Config) (*interp.Result, error) {
	if cfg.NP <= 0 {
		cfg.NP = 1
	}
	world, err := interp.NewWorld(p.info, cfg)
	if err != nil {
		return nil, err
	}
	return p.RunWorld(cfg, world)
}

// RunWorld executes the compiled program on an existing world.
func (p *Program) RunWorld(cfg interp.Config, world *shmem.World) (*interp.Result, error) {
	return backend.RunSPMD(cfg, world, func(pe *shmem.PE, io backend.PEIO) error {
		e := &env{
			prog:  p,
			pe:    pe,
			frame: make([]value.Value, len(p.info.Main.Order)),
			scope: p.info.Main,
			meter: backend.NewMeter(&cfg),
			out:   io.Out,
			errw:  io.Err,
			stdin: io.Stdin,
		}
		for _, fn := range p.main {
			c, err := fn(e)
			if err != nil {
				return err
			}
			if c != ctrlNone {
				return fmt.Errorf("GTFO or FOUND YR escaped the main program")
			}
		}
		return nil
	})
}

// compiler holds compile-time state.
type compiler struct {
	prog   *Program
	info   *sema.Info
	scope  *sema.Scope
	noSpec bool // disable typed fast paths (ablation)
}

func (c *compiler) stmts(ss []ast.Stmt) ([]stmtFn, error) {
	out := make([]stmtFn, 0, len(ss))
	for _, s := range ss {
		fn, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		if fn != nil {
			out = append(out, fn)
		}
	}
	return out, nil
}

func runStmts(e *env, fns []stmtFn) (ctrl, error) {
	for _, fn := range fns {
		c, err := fn(e)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (c *compiler) stmt(s ast.Stmt) (stmtFn, error) {
	switch n := s.(type) {
	case *ast.Decl:
		return c.decl(n)

	case *ast.Assign:
		if !c.noSpec {
			if fn, ok := c.specializedAssign(n); ok {
				return fn, nil
			}
		}
		val, err := c.expr(n.Value)
		if err != nil {
			return nil, err
		}
		store, err := c.assignTarget(n.Target)
		if err != nil {
			return nil, err
		}
		return func(e *env) (ctrl, error) {
			v, err := val(e)
			if err != nil {
				return ctrlNone, err
			}
			return ctrlNone, store(e, v)
		}, nil

	case *ast.CastStmt:
		load, err := c.readTarget(n.Target)
		if err != nil {
			return nil, err
		}
		store, err := c.assignTarget(n.Target)
		if err != nil {
			return nil, err
		}
		typ := n.Type
		pos := n.Position
		return func(e *env) (ctrl, error) {
			cur, err := load(e)
			if err != nil {
				return ctrlNone, err
			}
			cv, err := value.Cast(cur, typ)
			if err != nil {
				return ctrlNone, rerr(pos, err)
			}
			return ctrlNone, store(e, cv)
		}, nil

	case *ast.Visible:
		args := make([]exprFn, len(n.Args))
		for i, a := range n.Args {
			fn, err := c.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = fn
		}
		newline := !n.NoNewline
		invisible := n.Invisible
		return func(e *env) (ctrl, error) {
			var b strings.Builder
			for _, fn := range args {
				v, err := fn(e)
				if err != nil {
					return ctrlNone, err
				}
				b.WriteString(v.Display())
			}
			if newline {
				b.WriteByte('\n')
			}
			if invisible {
				e.errw.WriteString(b.String())
			} else {
				e.out.WriteString(b.String())
			}
			return ctrlNone, nil
		}, nil

	case *ast.Gimmeh:
		store, err := c.assignTarget(n.Target)
		if err != nil {
			return nil, err
		}
		return func(e *env) (ctrl, error) {
			line, _ := e.stdin.Line()
			return ctrlNone, store(e, value.NewYarn(line))
		}, nil

	case *ast.ExprStmt:
		fn, err := c.expr(n.X)
		if err != nil {
			return nil, err
		}
		return func(e *env) (ctrl, error) {
			v, err := fn(e)
			if err != nil {
				return ctrlNone, err
			}
			e.frame[0] = v // IT
			return ctrlNone, nil
		}, nil

	case *ast.If:
		return c.ifStmt(n)

	case *ast.Switch:
		return c.switchStmt(n)

	case *ast.Loop:
		return c.loop(n)

	case *ast.Gtfo:
		return func(*env) (ctrl, error) { return ctrlBreak, nil }, nil

	case *ast.FoundYr:
		fn, err := c.expr(n.X)
		if err != nil {
			return nil, err
		}
		return func(e *env) (ctrl, error) {
			v, err := fn(e)
			if err != nil {
				return ctrlNone, err
			}
			e.retval = v
			return ctrlReturn, nil
		}, nil

	case *ast.FuncDecl:
		return nil, nil // hoisted

	case *ast.Barrier:
		pos := n.Position
		return func(e *env) (ctrl, error) {
			if err := e.meter.Step(); err != nil {
				return ctrlNone, rerr(pos, err)
			}
			return ctrlNone, rerr(pos, e.pe.Barrier())
		}, nil

	case *ast.Lock:
		return c.lock(n)

	case *ast.TxtStmt:
		target, err := c.peExpr(n.Target)
		if err != nil {
			return nil, err
		}
		inner, err := c.stmt(n.Stmt)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			inner = func(*env) (ctrl, error) { return ctrlNone, nil }
		}
		return func(e *env) (ctrl, error) {
			t, err := target(e)
			if err != nil {
				return ctrlNone, err
			}
			e.pred = append(e.pred, t)
			ctl, err := inner(e)
			e.pred = e.pred[:len(e.pred)-1]
			return ctl, err
		}, nil

	case *ast.TxtBlock:
		target, err := c.peExpr(n.Target)
		if err != nil {
			return nil, err
		}
		body, err := c.stmts(n.Body)
		if err != nil {
			return nil, err
		}
		return func(e *env) (ctrl, error) {
			t, err := target(e)
			if err != nil {
				return ctrlNone, err
			}
			e.pred = append(e.pred, t)
			ctl, err := runStmts(e, body)
			e.pred = e.pred[:len(e.pred)-1]
			return ctl, err
		}, nil
	}
	return nil, fmt.Errorf("compile: unhandled statement %T at %s", s, s.Pos())
}

func (c *compiler) decl(n *ast.Decl) (stmtFn, error) {
	sym := c.info.Refs[n]
	if sym == nil {
		return nil, fmt.Errorf("compile: %s: unresolved declaration %s", n.Position, n.Name)
	}
	pos := n.Position

	if n.IsArray {
		size, err := c.expr(n.Size)
		if err != nil {
			return nil, err
		}
		elem := n.Type
		if sym.Kind == sema.SymShared {
			heap := sym.Heap
			return func(e *env) (ctrl, error) {
				sz, err := evalSize(e, size, pos, n.Name)
				if err != nil {
					return ctrlNone, err
				}
				return ctrlNone, rerr(pos, e.pe.AllocArray(heap, sz))
			}, nil
		}
		slot := sym.Slot
		return func(e *env) (ctrl, error) {
			sz, err := evalSize(e, size, pos, n.Name)
			if err != nil {
				return ctrlNone, err
			}
			arr, err := value.NewArrayOf(elem, sz)
			if err != nil {
				return ctrlNone, rerr(pos, err)
			}
			e.frame[slot] = value.NewArray(arr)
			return ctrlNone, nil
		}, nil
	}

	var init exprFn
	if n.Init != nil {
		fn, err := c.expr(n.Init)
		if err != nil {
			return nil, err
		}
		init = fn
	}
	zero := value.NOOB
	if n.Typed {
		z, err := value.Cast(value.NOOB, n.Type)
		if err != nil {
			return nil, err
		}
		zero = z
	}
	static, styp := sym.Static, sym.Type

	eval := func(e *env) (value.Value, error) {
		v := zero
		if init != nil {
			iv, err := init(e)
			if err != nil {
				return value.NOOB, err
			}
			v = iv
			if static {
				cv, err := value.Cast(v, styp)
				if err != nil {
					return value.NOOB, rerr(pos, err)
				}
				v = cv
			}
		}
		return v, nil
	}

	if sym.Kind == sema.SymShared {
		heap := sym.Heap
		return func(e *env) (ctrl, error) {
			v, err := eval(e)
			if err != nil {
				return ctrlNone, err
			}
			return ctrlNone, rerr(pos, e.pe.InitScalar(heap, v))
		}, nil
	}
	slot := sym.Slot
	return func(e *env) (ctrl, error) {
		v, err := eval(e)
		if err != nil {
			return ctrlNone, err
		}
		e.frame[slot] = v
		return ctrlNone, nil
	}, nil
}

func evalSize(e *env, size exprFn, pos token.Pos, name string) (int, error) {
	sv, err := size(e)
	if err != nil {
		return 0, err
	}
	n, err := sv.ToNumbr()
	if err != nil {
		return 0, rerr(pos, fmt.Errorf("array size of %s: %w", name, err))
	}
	if n < 0 {
		return 0, rerrf(pos, "array size of %s is negative (%d)", name, n)
	}
	return int(n), nil
}

func (c *compiler) ifStmt(n *ast.If) (stmtFn, error) {
	thenB, err := c.stmts(n.Then)
	if err != nil {
		return nil, err
	}
	type mebbe struct {
		cond exprFn
		body []stmtFn
	}
	mebbes := make([]mebbe, len(n.Mebbes))
	for i, m := range n.Mebbes {
		cond, err := c.expr(m.Cond)
		if err != nil {
			return nil, err
		}
		body, err := c.stmts(m.Body)
		if err != nil {
			return nil, err
		}
		mebbes[i] = mebbe{cond, body}
	}
	var elseB []stmtFn
	if n.Else != nil {
		elseB, err = c.stmts(n.Else)
		if err != nil {
			return nil, err
		}
	}
	hasElse := n.Else != nil
	return func(e *env) (ctrl, error) {
		if e.frame[0].ToTroof() {
			return runStmts(e, thenB)
		}
		for i := range mebbes {
			v, err := mebbes[i].cond(e)
			if err != nil {
				return ctrlNone, err
			}
			e.frame[0] = v
			if v.ToTroof() {
				return runStmts(e, mebbes[i].body)
			}
		}
		if hasElse {
			return runStmts(e, elseB)
		}
		return ctrlNone, nil
	}, nil
}

func (c *compiler) switchStmt(n *ast.Switch) (stmtFn, error) {
	lits := make([]exprFn, len(n.Cases))
	bodies := make([][]stmtFn, len(n.Cases))
	for i, cs := range n.Cases {
		lit, err := c.expr(cs.Lit)
		if err != nil {
			return nil, err
		}
		body, err := c.stmts(cs.Body)
		if err != nil {
			return nil, err
		}
		lits[i], bodies[i] = lit, body
	}
	var def []stmtFn
	hasDefault := n.Default != nil
	if hasDefault {
		d, err := c.stmts(n.Default)
		if err != nil {
			return nil, err
		}
		def = d
	}
	return func(e *env) (ctrl, error) {
		it := e.frame[0]
		start := -1
		for i := range lits {
			lv, err := lits[i](e)
			if err != nil {
				return ctrlNone, err
			}
			if value.Equal(it, lv) {
				start = i
				break
			}
		}
		if start >= 0 {
			for i := start; i < len(bodies); i++ {
				ctl, err := runStmts(e, bodies[i])
				if err != nil {
					return ctrlNone, err
				}
				if ctl == ctrlBreak {
					return ctrlNone, nil
				}
				if ctl == ctrlReturn {
					return ctl, nil
				}
			}
			return ctrlNone, nil
		}
		if hasDefault {
			ctl, err := runStmts(e, def)
			if err != nil {
				return ctrlNone, err
			}
			if ctl == ctrlBreak {
				return ctrlNone, nil
			}
			return ctl, nil
		}
		return ctrlNone, nil
	}, nil
}

func (c *compiler) loop(n *ast.Loop) (stmtFn, error) {
	body, err := c.stmts(n.Body)
	if err != nil {
		return nil, err
	}
	if !c.noSpec {
		if fn, ok := c.specializedLoop(n, body); ok {
			return fn, nil
		}
	}
	var cond exprFn
	if n.Cond != nil {
		cond, err = c.expr(n.Cond)
		if err != nil {
			return nil, err
		}
	}
	condTil := n.CondKind == ast.CondTil
	nerfin := n.Op == ast.LoopNerfin
	pos := n.Position
	varName := n.Var

	slot := -1
	isImplicit := false
	if n.Var != "" {
		sym := c.info.Refs[n]
		if sym == nil {
			return nil, fmt.Errorf("compile: %s: unresolved loop variable %s", n.Position, n.Var)
		}
		slot = sym.Slot
		isImplicit = sym.Kind == sema.SymLoopVar
	}

	return func(e *env) (ctrl, error) {
		var saved value.Value
		if slot >= 0 {
			saved = e.frame[slot]
			e.frame[slot] = value.NewNumbr(0)
			if isImplicit {
				defer func() { e.frame[slot] = saved }()
			}
		}
		for {
			if err := e.meter.Step(); err != nil {
				return ctrlNone, rerr(pos, err)
			}
			if cond != nil {
				cv, err := cond(e)
				if err != nil {
					return ctrlNone, err
				}
				stop := cv.ToTroof()
				if !condTil {
					stop = !stop
				}
				if stop {
					return ctrlNone, nil
				}
			}
			ctl, err := runStmts(e, body)
			if err != nil {
				return ctrlNone, err
			}
			if ctl == ctrlBreak {
				return ctrlNone, nil
			}
			if ctl == ctrlReturn {
				return ctl, nil
			}
			if slot >= 0 {
				cur, err := e.frame[slot].ToNumbr()
				if err != nil {
					return ctrlNone, rerr(pos, fmt.Errorf("loop variable %s: %w", varName, err))
				}
				if nerfin {
					cur--
				} else {
					cur++
				}
				e.frame[slot] = value.NewNumbr(cur)
			}
		}
	}, nil
}

func (c *compiler) lock(n *ast.Lock) (stmtFn, error) {
	sym := c.info.Refs[n.Var]
	if sym == nil {
		sym = c.scope.Names[n.Var.Name]
	}
	if sym == nil || sym.Lock < 0 {
		return nil, fmt.Errorf("compile: %s: %v on %s without a lock", n.Position, n.Action, n.Var.Name)
	}
	id := sym.Lock
	pos := n.Position
	switch n.Action {
	case ast.LockAcquire:
		return func(e *env) (ctrl, error) {
			if err := e.pe.SetLock(id); err != nil {
				return ctrlNone, rerr(pos, err)
			}
			e.frame[0] = value.NewTroof(true)
			return ctrlNone, nil
		}, nil
	case ast.LockTry:
		return func(e *env) (ctrl, error) {
			ok, err := e.pe.TestLock(id)
			if err != nil {
				return ctrlNone, rerr(pos, err)
			}
			e.frame[0] = value.NewTroof(ok)
			return ctrlNone, nil
		}, nil
	default: // LockRelease
		return func(e *env) (ctrl, error) {
			return ctrlNone, rerr(pos, e.pe.ClearLock(id))
		}, nil
	}
}
