package compile

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sema"
)

func compileSrc(t *testing.T, src string) *Program {
	t.Helper()
	tree, err := parser.Parse("t.lol", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runCompiled(t *testing.T, p *Program, np int) string {
	t.Helper()
	var out strings.Builder
	if _, err := p.Run(interp.Config{NP: np, Seed: 3, Stdout: &out, GroupOutput: true}); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestCompiledProgramIsReusable runs the same compiled program several
// times; compilation must not capture per-run state.
func TestCompiledProgramIsReusable(t *testing.T) {
	p := compileSrc(t, `HAI 1.2
I HAS A n ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5
  n R SUM OF n AN i
IM OUTTA YR l
VISIBLE n
KTHXBYE`)
	first := runCompiled(t, p, 1)
	for i := 0; i < 3; i++ {
		if got := runCompiled(t, p, 1); got != first {
			t.Fatalf("run %d produced %q, first produced %q", i, got, first)
		}
	}
	if first != "10\n" {
		t.Errorf("output %q, want 10", first)
	}
}

// TestCompiledProgramConcurrentRuns exercises two whole SPMD worlds running
// the same compiled program at once (e.g. a test harness and a benchmark).
func TestCompiledProgramConcurrentRuns(t *testing.T) {
	p := compileSrc(t, `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
x R PRODUKT OF ME AN 3
HUGZ
I HAS A next ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
I HAS A got ITZ A NUMBR
TXT MAH BFF next, got R UR x
VISIBLE got
KTHXBYE`)
	var wg sync.WaitGroup
	errs := make([]string, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out strings.Builder
			if _, err := p.Run(interp.Config{NP: 4, Stdout: &out, GroupOutput: true}); err != nil {
				errs[i] = err.Error()
				return
			}
			if out.String() != "3\n6\n9\n0\n" {
				errs[i] = fmt.Sprintf("bad output %q", out.String())
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Errorf("concurrent run %d: %s", i, e)
		}
	}
}

// TestSrsWorksInCompileBackend: SRS needs runtime name resolution, which
// the closure backend supports (unlike gogen).
func TestSrsWorksInCompileBackend(t *testing.T) {
	p := compileSrc(t, `HAI 1.2
I HAS A lol ITZ 7
I HAS A which ITZ "lol"
SRS which R 9
VISIBLE lol
VISIBLE SRS "which"
KTHXBYE`)
	// SRS "which" names the variable which, whose value is the YARN "lol".
	if got := runCompiled(t, p, 1); got != "9\nlol\n" {
		t.Errorf("got %q", got)
	}
}

// TestCompileRejectsNothing checks compile succeeds on every conformance
// construct (the conformance suite runs them; here we just guard the
// compile step itself against regressions on a program using most syntax).
func TestCompileKitchenSink(t *testing.T) {
	p := compileSrc(t, `HAI 1.2
CAN HAS STDIO?
I HAS A a ITZ LOTZ A NUMBARS AN THAR IZ 4
WE HAS A s ITZ SRSLY A NUMBR AN IM SHARIN IT
HOW IZ I clamp YR x AN YR hi
  BIGGER x AN hi, O RLY?
  YA RLY
    FOUND YR hi
  OIC
  FOUND YR x
IF U SAY SO
a'Z 0 R 9.5
a'Z 1 R I IZ clamp YR a'Z 0 AN YR 5 MKAY
VISIBLE a'Z 1
IM MESIN WIF s, O RLY?
YA RLY
  DUN MESIN WIF s
  VISIBLE "lock ok"
OIC
"2", WTF?
OMG "1"
  VISIBLE "one"
OMG "2"
  VISIBLE "two"
  GTFO
OIC
MAEK "3" A NUMBR
VISIBLE SMOOSH "IT=" AN IT MKAY
KTHXBYE`)
	want := "5.00\nlock ok\ntwo\nIT=3\n"
	if got := runCompiled(t, p, 1); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestCompileErrorsCarryPositions confirms runtime diagnostics still point
// at source after compilation.
func TestCompileErrorsCarryPositions(t *testing.T) {
	p := compileSrc(t, "HAI 1.2\nVISIBLE FLIP OF 0\nKTHXBYE")
	_, err := p.Run(interp.Config{NP: 1})
	if err == nil || !strings.Contains(err.Error(), "t.lol:2:") {
		t.Errorf("want positioned error, got %v", err)
	}
}

// TestSpecializationAblationAgrees runs the same programs with and without
// the typed fast paths; outputs must be identical (the ablation changes
// speed, never semantics).
func TestSpecializationAblationAgrees(t *testing.T) {
	sources := []string{
		`HAI 1.2
I HAS A acc ITZ SRSLY A NUMBAR AN ITZ 0.0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100
  acc R SUM OF acc AN FLIP OF SUM OF i AN 1
IM OUTTA YR l
VISIBLE acc
KTHXBYE`,
		`HAI 1.2
I HAS A a ITZ LOTZ A NUMBARS AN THAR IZ 8
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8
  a'Z i R PRODUKT OF i AN 1.5
IM OUTTA YR l
VISIBLE a'Z 7
VISIBLE QUOSHUNT OF -3 AN 7
VISIBLE QUOSHUNT OF PRODUKT OF 1.0 AN -3 AN 7
KTHXBYE`,
	}
	for i, src := range sources {
		tree, err := parser.Parse("t.lol", src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := sema.Check(tree)
		if err != nil {
			t.Fatal(err)
		}
		var outs [2]string
		for j, opts := range []Options{{}, {DisableSpecialization: true}} {
			p, err := CompileOpts(info, opts)
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if _, err := p.Run(interp.Config{NP: 1, Stdout: &out, GroupOutput: true}); err != nil {
				t.Fatal(err)
			}
			outs[j] = out.String()
		}
		if outs[0] != outs[1] {
			t.Errorf("program %d: specialized %q != generic %q", i, outs[0], outs[1])
		}
	}
}

// TestSpecializedIntDivisionStaysInteger pins the regression the
// differential suite caught during development: an all-NUMBR QUOSHUNT
// inside a float context must keep integer semantics.
func TestSpecializedIntDivisionStaysInteger(t *testing.T) {
	p := compileSrc(t, `HAI 1.2
I HAS A sf ITZ SRSLY A NUMBAR
sf R PRODUKT OF PRODUKT OF 4 AN 5.8 AN QUOSHUNT OF -3 AN 7
VISIBLE sf
KTHXBYE`)
	// QUOSHUNT OF -3 AN 7 is integer division = 0, so the product is 0.
	if got := runCompiled(t, p, 1); got != "0.00\n" {
		t.Errorf("got %q, want 0.00 (integer division inside float context)", got)
	}
}
