package compile

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/token"
	"repro/internal/value"
)

// expr compiles an expression to a closure. Symbol resolution, operator
// dispatch and static casts happen here, once, instead of on every
// evaluation. Statically typed subtrees take the raw float64/int64 fast
// paths from specialize.go.
func (c *compiler) expr(e ast.Expr) (exprFn, error) {
	if !c.noSpec {
		switch e.(type) {
		case *ast.BinExpr, *ast.UnExpr, *ast.Index:
			// Only composite nodes benefit; leaves are already cheap.
			if fn, ok := c.specializedExpr(e); ok {
				return fn, nil
			}
		}
	}
	switch n := e.(type) {
	case *ast.NumbrLit:
		v := value.NewNumbr(n.Value)
		return func(*env) (value.Value, error) { return v, nil }, nil

	case *ast.NumbarLit:
		v := value.NewNumbar(n.Value)
		return func(*env) (value.Value, error) { return v, nil }, nil

	case *ast.TroofLit:
		v := value.NewTroof(n.Value)
		return func(*env) (value.Value, error) { return v, nil }, nil

	case *ast.NoobLit:
		return func(*env) (value.Value, error) { return value.NOOB, nil }, nil

	case *ast.YarnLit:
		return c.yarn(n)

	case *ast.VarRef:
		return c.readVar(n)

	case *ast.Index:
		return c.readIndex(n)

	case *ast.BinExpr:
		return c.binExpr(n)

	case *ast.UnExpr:
		x, err := c.expr(n.X)
		if err != nil {
			return nil, err
		}
		op, pos := n.Op, n.Position
		return func(e *env) (value.Value, error) {
			xv, err := x(e)
			if err != nil {
				return value.NOOB, err
			}
			v, err := value.Unary(op, xv)
			return v, rerr(pos, err)
		}, nil

	case *ast.NaryExpr:
		return c.naryExpr(n)

	case *ast.CastExpr:
		x, err := c.expr(n.X)
		if err != nil {
			return nil, err
		}
		typ, pos := n.Type, n.Position
		return func(e *env) (value.Value, error) {
			xv, err := x(e)
			if err != nil {
				return value.NOOB, err
			}
			v, err := value.Cast(xv, typ)
			return v, rerr(pos, err)
		}, nil

	case *ast.Call:
		return c.call(n)

	case *ast.Srs:
		return c.srsRead(n)

	case *ast.Me:
		return func(e *env) (value.Value, error) {
			return value.NewNumbr(int64(e.pe.ID())), nil
		}, nil

	case *ast.MahFrenz:
		return func(e *env) (value.Value, error) {
			return value.NewNumbr(int64(e.pe.NPEs())), nil
		}, nil

	case *ast.Whatevr:
		return func(e *env) (value.Value, error) {
			return value.NewNumbr(e.pe.Rand().Int63n(1 << 31)), nil
		}, nil

	case *ast.Whatevar:
		return func(e *env) (value.Value, error) {
			return value.NewNumbar(e.pe.Rand().Float64()), nil
		}, nil
	}
	return nil, fmt.Errorf("compile: unhandled expression %T at %s", e, e.Pos())
}

func (c *compiler) binExpr(n *ast.BinExpr) (exprFn, error) {
	x, err := c.expr(n.X)
	if err != nil {
		return nil, err
	}
	y, err := c.expr(n.Y)
	if err != nil {
		return nil, err
	}
	op, pos := n.Op, n.Position
	switch op {
	case value.OpBothOf:
		return func(e *env) (value.Value, error) {
			xv, err := x(e)
			if err != nil {
				return value.NOOB, err
			}
			if !xv.ToTroof() {
				return value.NewTroof(false), nil
			}
			yv, err := y(e)
			if err != nil {
				return value.NOOB, err
			}
			return value.NewTroof(yv.ToTroof()), nil
		}, nil
	case value.OpEitherOf:
		return func(e *env) (value.Value, error) {
			xv, err := x(e)
			if err != nil {
				return value.NOOB, err
			}
			if xv.ToTroof() {
				return value.NewTroof(true), nil
			}
			yv, err := y(e)
			if err != nil {
				return value.NOOB, err
			}
			return value.NewTroof(yv.ToTroof()), nil
		}, nil
	}
	return func(e *env) (value.Value, error) {
		xv, err := x(e)
		if err != nil {
			return value.NOOB, err
		}
		yv, err := y(e)
		if err != nil {
			return value.NOOB, err
		}
		v, err := value.Binary(op, xv, yv)
		return v, rerr(pos, err)
	}, nil
}

func (c *compiler) naryExpr(n *ast.NaryExpr) (exprFn, error) {
	ops := make([]exprFn, len(n.Operands))
	for i, o := range n.Operands {
		fn, err := c.expr(o)
		if err != nil {
			return nil, err
		}
		ops[i] = fn
	}
	op, pos := n.Op, n.Position
	switch op {
	case value.OpAllOf:
		return func(e *env) (value.Value, error) {
			for _, fn := range ops {
				v, err := fn(e)
				if err != nil {
					return value.NOOB, err
				}
				if !v.ToTroof() {
					return value.NewTroof(false), nil
				}
			}
			return value.NewTroof(true), nil
		}, nil
	case value.OpAnyOf:
		return func(e *env) (value.Value, error) {
			for _, fn := range ops {
				v, err := fn(e)
				if err != nil {
					return value.NOOB, err
				}
				if v.ToTroof() {
					return value.NewTroof(true), nil
				}
			}
			return value.NewTroof(false), nil
		}, nil
	}
	return func(e *env) (value.Value, error) {
		vs := make([]value.Value, len(ops))
		for i, fn := range ops {
			v, err := fn(e)
			if err != nil {
				return value.NOOB, err
			}
			vs[i] = v
		}
		v, err := value.Nary(op, vs)
		return v, rerr(pos, err)
	}, nil
}

func (c *compiler) yarn(n *ast.YarnLit) (exprFn, error) {
	if len(n.Segs) == 0 {
		v := value.NewYarn("")
		return func(*env) (value.Value, error) { return v, nil }, nil
	}
	if len(n.Segs) == 1 && n.Segs[0].Var == "" {
		v := value.NewYarn(n.Segs[0].Text)
		return func(*env) (value.Value, error) { return v, nil }, nil
	}
	// Interpolated YARN: compile each var segment as a reference.
	type seg struct {
		text string
		read exprFn
	}
	segs := make([]seg, len(n.Segs))
	for i, s := range n.Segs {
		if s.Var == "" {
			segs[i] = seg{text: s.Text}
			continue
		}
		read, err := c.readVar(&ast.VarRef{Position: n.Position, Name: s.Var})
		if err != nil {
			return nil, err
		}
		segs[i] = seg{read: read}
	}
	return func(e *env) (value.Value, error) {
		var out []byte
		for i := range segs {
			if segs[i].read == nil {
				out = append(out, segs[i].text...)
				continue
			}
			v, err := segs[i].read(e)
			if err != nil {
				return value.NOOB, err
			}
			out = append(out, v.Display()...)
		}
		return value.NewYarn(string(out)), nil
	}, nil
}

// resolve returns the symbol for a reference, preferring sema annotations.
func (c *compiler) resolve(v *ast.VarRef) (*sema.Symbol, error) {
	if s, ok := c.info.Refs[v]; ok {
		return s, nil
	}
	if s, ok := c.scope.Names[v.Name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("compile: %s: unresolved variable %s", v.Position, v.Name)
}

// target computes the PE a space-qualified access addresses at runtime.
func target(e *env, sp ast.Space, pos token.Pos) (pe int, remote bool, err error) {
	if sp == ast.SpaceUr {
		t, err := e.predTarget(pos)
		return t, true, err
	}
	return e.pe.ID(), false, nil
}

func (c *compiler) readVar(n *ast.VarRef) (exprFn, error) {
	sym, err := c.resolve(n)
	if err != nil {
		return nil, err
	}
	pos, sp := n.Position, n.Space

	if sym.Kind != sema.SymShared {
		slot := sym.Slot
		return func(e *env) (value.Value, error) { return e.frame[slot], nil }, nil
	}

	heap := sym.Heap
	if sym.IsArray {
		return func(e *env) (value.Value, error) {
			t, _, err := target(e, sp, pos)
			if err != nil {
				return value.NOOB, err
			}
			arr, err := e.pe.GetArray(t, heap)
			if err != nil {
				return value.NOOB, rerr(pos, err)
			}
			return value.NewArray(arr), nil
		}, nil
	}
	if sp != ast.SpaceUr {
		return func(e *env) (value.Value, error) {
			v, err := e.pe.LocalGet(heap)
			return v, rerr(pos, err)
		}, nil
	}
	return func(e *env) (value.Value, error) {
		t, err := e.predTarget(pos)
		if err != nil {
			return value.NOOB, err
		}
		v, err := e.pe.Get(t, heap)
		return v, rerr(pos, err)
	}, nil
}

func (c *compiler) readIndex(n *ast.Index) (exprFn, error) {
	sym, err := c.resolve(n.Arr)
	if err != nil {
		return nil, err
	}
	idx, err := c.expr(n.IndexE)
	if err != nil {
		return nil, err
	}
	pos, sp := n.Position, n.Arr.Space

	if sym.Kind == sema.SymShared {
		heap := sym.Heap
		return func(e *env) (value.Value, error) {
			i, err := evalIndex(e, idx, pos)
			if err != nil {
				return value.NOOB, err
			}
			t, remote, err := target(e, sp, pos)
			if err != nil {
				return value.NOOB, err
			}
			if !remote {
				v, err := e.pe.LocalGetElem(heap, i)
				return v, rerr(pos, err)
			}
			v, err := e.pe.GetElem(t, heap, i)
			return v, rerr(pos, err)
		}, nil
	}

	slot := sym.Slot
	name := n.Arr.Name
	return func(e *env) (value.Value, error) {
		i, err := evalIndex(e, idx, pos)
		if err != nil {
			return value.NOOB, err
		}
		av := e.frame[slot]
		if av.Kind() != value.ArrayK {
			return value.NOOB, rerrf(pos, "%s is not an array", name)
		}
		v, err := av.Array().GetChecked(i)
		return v, rerr(pos, err)
	}, nil
}

func evalIndex(e *env, idx exprFn, pos token.Pos) (int, error) {
	v, err := idx(e)
	if err != nil {
		return 0, err
	}
	i, err := v.ToNumbr()
	if err != nil {
		return 0, rerr(pos, fmt.Errorf("array index: %w", err))
	}
	return int(i), nil
}

// assignTarget compiles the store side of an assignment.
func (c *compiler) assignTarget(targetE ast.Expr) (assignFn, error) {
	switch n := targetE.(type) {
	case *ast.VarRef:
		return c.writeVar(n)
	case *ast.Index:
		return c.writeIndex(n)
	case *ast.Srs:
		return c.srsWrite(n)
	}
	return nil, fmt.Errorf("compile: %s: cannot assign to this expression", targetE.Pos())
}

// readTarget compiles the load side of IS NOW A.
func (c *compiler) readTarget(targetE ast.Expr) (exprFn, error) {
	switch n := targetE.(type) {
	case *ast.VarRef:
		return c.readVar(n)
	case *ast.Index:
		return c.readIndex(n)
	case *ast.Srs:
		return c.srsRead(n)
	}
	return nil, fmt.Errorf("compile: %s: not a readable target", targetE.Pos())
}

func (c *compiler) writeVar(n *ast.VarRef) (assignFn, error) {
	sym, err := c.resolve(n)
	if err != nil {
		return nil, err
	}
	pos, sp, name := n.Position, n.Space, n.Name

	cast := func(v value.Value) (value.Value, error) { return v, nil }
	if sym.Static && !sym.IsArray {
		styp := sym.Type
		cast = func(v value.Value) (value.Value, error) {
			cv, err := value.Cast(v, styp)
			if err != nil {
				return value.NOOB, rerr(pos, fmt.Errorf("assigning to SRSLY %s %s: %w", styp, name, err))
			}
			return cv, nil
		}
	}

	if sym.Kind == sema.SymShared {
		heap := sym.Heap
		if sym.IsArray {
			return func(e *env, v value.Value) error {
				if v.Kind() != value.ArrayK {
					return rerrf(pos, "cannot assign %s to array %s", v.Kind(), name)
				}
				t, _, err := target(e, sp, pos)
				if err != nil {
					return err
				}
				return rerr(pos, e.pe.PutArray(t, heap, v.Array()))
			}, nil
		}
		return func(e *env, v value.Value) error {
			cv, err := cast(v)
			if err != nil {
				return err
			}
			t, _, err := target(e, sp, pos)
			if err != nil {
				return err
			}
			return rerr(pos, e.pe.Put(t, heap, cv))
		}, nil
	}

	slot := sym.Slot
	if sym.IsArray {
		return func(e *env, v value.Value) error {
			cur := e.frame[slot]
			if v.Kind() == value.ArrayK && cur.Kind() == value.ArrayK {
				return rerr(pos, cur.Array().CopyFrom(v.Array()))
			}
			e.frame[slot] = v
			return nil
		}, nil
	}
	return func(e *env, v value.Value) error {
		cv, err := cast(v)
		if err != nil {
			return err
		}
		e.frame[slot] = cv
		return nil
	}, nil
}

func (c *compiler) writeIndex(n *ast.Index) (assignFn, error) {
	sym, err := c.resolve(n.Arr)
	if err != nil {
		return nil, err
	}
	idx, err := c.expr(n.IndexE)
	if err != nil {
		return nil, err
	}
	pos, sp, name := n.Position, n.Arr.Space, n.Arr.Name

	if sym.Kind == sema.SymShared {
		heap := sym.Heap
		return func(e *env, v value.Value) error {
			i, err := evalIndex(e, idx, pos)
			if err != nil {
				return err
			}
			t, remote, err := target(e, sp, pos)
			if err != nil {
				return err
			}
			if !remote {
				return rerr(pos, e.pe.LocalSetElem(heap, i, v))
			}
			return rerr(pos, e.pe.PutElem(t, heap, i, v))
		}, nil
	}

	slot := sym.Slot
	return func(e *env, v value.Value) error {
		i, err := evalIndex(e, idx, pos)
		if err != nil {
			return err
		}
		av := e.frame[slot]
		if av.Kind() != value.ArrayK {
			return rerrf(pos, "%s is not an array", name)
		}
		return rerr(pos, av.Array().Set(i, v))
	}, nil
}

// srsName compiles the name expression of SRS and resolves it at runtime.
func (c *compiler) srsName(n *ast.Srs) (func(*env) (*sema.Symbol, error), error) {
	x, err := c.expr(n.X)
	if err != nil {
		return nil, err
	}
	pos := n.Position
	return func(e *env) (*sema.Symbol, error) {
		v, err := x(e)
		if err != nil {
			return nil, err
		}
		name, err := v.ToYarn()
		if err != nil {
			return nil, rerr(pos, fmt.Errorf("SRS: %w", err))
		}
		sym, ok := e.scope.Names[name]
		if !ok {
			return nil, rerrf(pos, "SRS %q: no such variable", name)
		}
		return sym, nil
	}, nil
}

func (c *compiler) srsRead(n *ast.Srs) (exprFn, error) {
	resolve, err := c.srsName(n)
	if err != nil {
		return nil, err
	}
	pos, sp := n.Position, n.Space
	return func(e *env) (value.Value, error) {
		sym, err := resolve(e)
		if err != nil {
			return value.NOOB, err
		}
		return dynamicRead(e, sym, sp, pos)
	}, nil
}

func (c *compiler) srsWrite(n *ast.Srs) (assignFn, error) {
	resolve, err := c.srsName(n)
	if err != nil {
		return nil, err
	}
	pos, sp := n.Position, n.Space
	return func(e *env, v value.Value) error {
		sym, err := resolve(e)
		if err != nil {
			return err
		}
		return dynamicWrite(e, sym, sp, pos, v)
	}, nil
}

// dynamicRead/dynamicWrite are the uncompiled fallbacks SRS needs, since
// the symbol is only known at runtime.
func dynamicRead(e *env, sym *sema.Symbol, sp ast.Space, pos token.Pos) (value.Value, error) {
	if sym.Kind != sema.SymShared {
		return e.frame[sym.Slot], nil
	}
	t, remote, err := target(e, sp, pos)
	if err != nil {
		return value.NOOB, err
	}
	if sym.IsArray {
		arr, err := e.pe.GetArray(t, sym.Heap)
		if err != nil {
			return value.NOOB, rerr(pos, err)
		}
		return value.NewArray(arr), nil
	}
	if !remote {
		v, err := e.pe.LocalGet(sym.Heap)
		return v, rerr(pos, err)
	}
	v, err := e.pe.Get(t, sym.Heap)
	return v, rerr(pos, err)
}

func dynamicWrite(e *env, sym *sema.Symbol, sp ast.Space, pos token.Pos, v value.Value) error {
	if sym.Static && !sym.IsArray {
		cv, err := value.Cast(v, sym.Type)
		if err != nil {
			return rerr(pos, err)
		}
		v = cv
	}
	if sym.Kind != sema.SymShared {
		e.frame[sym.Slot] = v
		return nil
	}
	t, _, err := target(e, sp, pos)
	if err != nil {
		return err
	}
	if sym.IsArray {
		if v.Kind() != value.ArrayK {
			return rerrf(pos, "cannot assign %s to array %s", v.Kind(), sym.Name)
		}
		return rerr(pos, e.pe.PutArray(t, sym.Heap, v.Array()))
	}
	return rerr(pos, e.pe.Put(t, sym.Heap, v))
}

// call compiles I IZ name YR … MKAY.
func (c *compiler) call(n *ast.Call) (exprFn, error) {
	args := make([]exprFn, len(n.Args))
	for i, a := range n.Args {
		fn, err := c.expr(a)
		if err != nil {
			return nil, err
		}
		args[i] = fn
	}
	name, pos := n.Name, n.Position
	return func(e *env) (value.Value, error) {
		cf, ok := e.prog.funcs[name]
		if !ok {
			return value.NOOB, rerrf(pos, "I IZ %s: no such function", name)
		}
		if e.callDepth >= maxCallDepth {
			return value.NOOB, rerrf(pos, "I IZ %s: call depth exceeds %d (runaway recursion?)", name, maxCallDepth)
		}
		vals := make([]value.Value, len(args))
		for i, fn := range args {
			v, err := fn(e)
			if err != nil {
				return value.NOOB, err
			}
			vals[i] = v
		}
		savedFrame, savedScope := e.frame, e.scope
		e.frame = make([]value.Value, cf.nSlots)
		e.scope = cf.scope
		e.callDepth++
		for i := range vals {
			e.frame[i+1] = vals[i] // slot 0 is IT
		}
		ctl, err := runStmts(e, cf.body)
		ret := value.NOOB
		switch {
		case err != nil:
		case ctl == ctrlReturn:
			ret = e.retval
		case ctl == ctrlBreak:
			ret = value.NOOB
		default:
			ret = e.frame[0]
		}
		e.callDepth--
		e.frame, e.scope = savedFrame, savedScope
		return ret, err
	}, nil
}

// peExpr compiles a TXT MAH BFF target expression with range validation.
func (c *compiler) peExpr(e ast.Expr) (func(*env) (int, error), error) {
	fn, err := c.expr(e)
	if err != nil {
		return nil, err
	}
	pos := e.Pos()
	return func(en *env) (int, error) {
		v, err := fn(en)
		if err != nil {
			return 0, err
		}
		t, err := v.ToNumbr()
		if err != nil {
			return 0, rerr(pos, fmt.Errorf("TXT MAH BFF target: %w", err))
		}
		if t < 0 || t >= int64(en.pe.NPEs()) {
			return 0, rerrf(pos, "TXT MAH BFF %d: no such friend (MAH FRENZ is %d)", t, en.pe.NPEs())
		}
		return int(t), nil
	}, nil
}
