// Package parser implements a recursive-descent parser for parallel
// LOLCODE: the LOLCODE-1.2 grammar (paper Table I) plus the SPMD/PGAS
// extensions (Tables II and III).
//
// The original system used lex and yacc; this parser is hand-written in the
// usual Go style, accepts the same language, and recovers from errors at
// statement boundaries so a teaching tool can report several diagnostics in
// one run.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/token"
	"repro/internal/value"
)

// Error is a syntax error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty collection of parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

const maxErrors = 20

type parser struct {
	toks []token.Token
	i    int
	errs ErrorList

	inFunc bool // parsing a HOW IZ I body
}

// Parse parses a complete parallel-LOLCODE program.
func Parse(file, src string) (*ast.Program, error) {
	toks, lexErrs := lexer.ScanAll(file, src)
	p := &parser{toks: toks}
	for _, e := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	prog := p.parseProgram(file)
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

type bailout struct{}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) >= maxErrors {
		panic(bailout{})
	}
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) peek() token.Token { return p.toks[p.i] }

func (p *parser) at(k token.Kind) bool { return p.toks[p.i].Kind == k }

func (p *parser) next() token.Token {
	t := p.toks[p.i]
	if t.Kind != token.EOF {
		p.i++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	t := p.peek()
	p.errorf(t.Pos, "expected %v, found %v", k, t)
	return token.Token{Kind: k, Pos: t.Pos}
}

// sync skips tokens until the start of the next statement.
func (p *parser) sync() {
	for !p.at(token.EOF) && !p.at(token.Newline) {
		p.next()
	}
	p.skipNewlines()
}

func (p *parser) skipNewlines() {
	for p.at(token.Newline) {
		p.next()
	}
}

// endOfStmt consumes the statement terminator (newline or EOF) and reports
// stray tokens before it.
func (p *parser) endOfStmt() {
	if p.at(token.Newline) {
		p.next()
		return
	}
	if p.at(token.EOF) {
		return
	}
	t := p.peek()
	p.errorf(t.Pos, "unexpected %v at end of statement", t)
	p.sync()
}

func (p *parser) parseProgram(file string) *ast.Program {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()

	prog := &ast.Program{File: file}
	p.skipNewlines()

	hai := p.expect(token.KwHai)
	prog.HaiPos = hai.Pos
	switch p.peek().Kind {
	case token.NumbarLit, token.NumbrLit:
		prog.Version = p.next().Text
	}
	p.endOfStmt()

	stop := map[token.Kind]bool{token.KwKthxbye: true}
	prog.Body = p.parseStmts(stop, prog)

	p.expect(token.KwKthxbye)
	p.skipNewlines()
	if !p.at(token.EOF) {
		p.errorf(p.peek().Pos, "trailing input after KTHXBYE")
	}
	return prog
}

// parseStmts parses statements until a token in stop (or EOF). HOW IZ I
// declarations are hoisted into prog.Funcs when prog is non-nil (top level).
func (p *parser) parseStmts(stop map[token.Kind]bool, prog *ast.Program) []ast.Stmt {
	var out []ast.Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Kind == token.EOF || stop[t.Kind] {
			return out
		}
		s := p.parseStmt(stop, prog)
		if s != nil {
			if fd, ok := s.(*ast.FuncDecl); ok && prog != nil {
				prog.Funcs = append(prog.Funcs, fd)
				continue
			}
			out = append(out, s)
		}
	}
}

func (p *parser) parseStmt(stop map[token.Kind]bool, prog *ast.Program) ast.Stmt {
	t := p.peek()
	switch t.Kind {
	case token.KwCanHas:
		return p.parseCanHas(prog)
	case token.KwVisible, token.KwInvisibl:
		return p.parseVisible()
	case token.KwGimmeh:
		return p.parseGimmeh()
	case token.KwIHasA, token.KwWeHasA:
		return p.parseDecl()
	case token.KwORly:
		return p.parseIf()
	case token.KwWtf:
		return p.parseSwitch()
	case token.KwImInYr:
		return p.parseLoop()
	case token.KwGtfo:
		p.next()
		p.endOfStmt()
		return &ast.Gtfo{Position: t.Pos}
	case token.KwFoundYr:
		p.next()
		x := p.parseExpr()
		p.endOfStmt()
		return &ast.FoundYr{Position: t.Pos, X: x}
	case token.KwHowIzI:
		return p.parseFuncDecl()
	case token.KwHugz:
		p.next()
		p.endOfStmt()
		return &ast.Barrier{Position: t.Pos}
	case token.KwImSrslyMesinWif:
		return p.parseLock(ast.LockAcquire)
	case token.KwImMesinWif:
		return p.parseLock(ast.LockTry)
	case token.KwDunMesinWif:
		return p.parseLock(ast.LockRelease)
	case token.KwTxtMahBff:
		return p.parseTxt(stop, prog)
	case token.Ident, token.KwUr, token.KwMah, token.KwSrs, token.KwIt:
		return p.parseRefStmt()
	default:
		// Anything else must begin an expression statement (sets IT).
		x := p.parseExpr()
		p.endOfStmt()
		return &ast.ExprStmt{Position: t.Pos, X: x}
	}
}

func (p *parser) parseCanHas(prog *ast.Program) ast.Stmt {
	t := p.expect(token.KwCanHas)
	var lib string
	switch p.peek().Kind {
	case token.Ident:
		lib = p.next().Text
	default:
		// Library names may collide with keywords; take the raw phrase.
		lib = p.next().Kind.String()
	}
	p.expect(token.Question)
	p.endOfStmt()
	ch := &ast.CanHas{Position: t.Pos, Lib: lib}
	if prog != nil {
		prog.Uses = append(prog.Uses, ch)
		return nil
	}
	return &ast.ExprStmt{Position: t.Pos, X: &ast.NoobLit{Position: t.Pos}}
}

func (p *parser) parseVisible() ast.Stmt {
	t := p.next() // VISIBLE or INVISIBLE
	v := &ast.Visible{Position: t.Pos, Invisible: t.Kind == token.KwInvisibl}
	for !p.at(token.Newline) && !p.at(token.EOF) && !p.at(token.Bang) {
		v.Args = append(v.Args, p.parseExpr())
	}
	if p.accept(token.Bang) {
		v.NoNewline = true
	}
	p.endOfStmt()
	if len(v.Args) == 0 {
		p.errorf(t.Pos, "VISIBLE needs at least one expression")
	}
	return v
}

func (p *parser) parseGimmeh() ast.Stmt {
	t := p.expect(token.KwGimmeh)
	ref := p.parseRef()
	p.endOfStmt()
	return &ast.Gimmeh{Position: t.Pos, Target: ref}
}

// parseElemType parses a scalar type name in array-declaration position,
// where the paper pluralizes it ("LOTZ A NUMBRS").
func (p *parser) parseElemType() value.Kind {
	t := p.peek()
	switch t.Kind {
	case token.KwNumbr:
		p.next()
		return value.Numbr
	case token.KwNumbar:
		p.next()
		return value.Numbar
	case token.KwYarn:
		p.next()
		return value.Yarn
	case token.KwTroof:
		p.next()
		return value.Troof
	case token.Ident:
		switch strings.ToUpper(t.Text) {
		case "NUMBRS", "NUMBRZ":
			p.next()
			return value.Numbr
		case "NUMBARS", "NUMBARZ":
			p.next()
			return value.Numbar
		case "YARNS", "YARNZ":
			p.next()
			return value.Yarn
		case "TROOFS", "TROOFZ":
			p.next()
			return value.Troof
		}
	}
	p.errorf(t.Pos, "expected a type name, found %v", t)
	p.next()
	return value.Noob
}

func (p *parser) parseScalarType() value.Kind {
	t := p.peek()
	switch t.Kind {
	case token.KwNumbr:
		p.next()
		return value.Numbr
	case token.KwNumbar:
		p.next()
		return value.Numbar
	case token.KwYarn:
		p.next()
		return value.Yarn
	case token.KwTroof:
		p.next()
		return value.Troof
	case token.KwNoob:
		p.next()
		return value.Noob
	}
	p.errorf(t.Pos, "expected a type name, found %v", t)
	p.next()
	return value.Noob
}

func (p *parser) parseDecl() ast.Stmt {
	t := p.next() // I HAS A / WE HAS A
	d := &ast.Decl{Position: t.Pos}
	if t.Kind == token.KwWeHasA {
		d.Scope = ast.ScopeWe
	}
	name := p.expect(token.Ident)
	d.Name = name.Text

	switch p.peek().Kind {
	case token.KwItz:
		p.next()
		d.Init = p.parseExpr()
	case token.KwItzA:
		p.next()
		d.Typed = true
		d.Type = p.parseScalarType()
	case token.KwItzSrslyA:
		p.next()
		d.Typed = true
		d.Static = true
		d.Type = p.parseScalarType()
	case token.KwItzLotzA:
		p.next()
		d.Typed = true
		d.IsArray = true
		d.Type = p.parseElemType()
	case token.KwItzSrslyLotzA:
		p.next()
		d.Typed = true
		d.Static = true
		d.IsArray = true
		d.Type = p.parseElemType()
	}

	// Multi-clause extensions: AN THAR IZ size, AN ITZ init, AN IM SHARIN IT.
clauses:
	for {
		switch p.peek().Kind {
		case token.KwAnTharIz:
			pos := p.next().Pos
			if !d.IsArray {
				p.errorf(pos, "AN THAR IZ is only valid for LOTZ A declarations")
			}
			d.Size = p.parseExpr()
		case token.KwAnItz:
			p.next()
			if d.Init != nil {
				p.errorf(p.peek().Pos, "duplicate initializer clause")
			}
			d.Init = p.parseExpr()
		case token.KwAnImSharinIt:
			p.next()
			d.Sharin = true
		default:
			break clauses
		}
	}
	if d.IsArray && d.Size == nil {
		p.errorf(t.Pos, "array declaration of %s needs AN THAR IZ <size>", d.Name)
	}
	p.endOfStmt()
	return d
}

// parseRefStmt handles statements that begin with a variable reference:
// assignment, IS NOW A, or a bare expression statement.
func (p *parser) parseRefStmt() ast.Stmt {
	t := p.peek()
	ref := p.parseRef()
	switch p.peek().Kind {
	case token.KwR:
		p.next()
		val := p.parseExpr()
		p.endOfStmt()
		return &ast.Assign{Position: t.Pos, Target: ref, Value: val}
	case token.KwIsNowA:
		p.next()
		typ := p.parseScalarType()
		p.endOfStmt()
		return &ast.CastStmt{Position: t.Pos, Target: ref, Type: typ}
	default:
		p.endOfStmt()
		return &ast.ExprStmt{Position: t.Pos, X: ref}
	}
}

// parseRef parses `[UR|MAH] name ['Z index]` or `SRS expr`.
func (p *parser) parseRef() ast.Expr {
	t := p.peek()
	space := ast.SpaceDefault
	switch t.Kind {
	case token.KwUr:
		p.next()
		space = ast.SpaceUr
	case token.KwMah:
		p.next()
		space = ast.SpaceMah
	}

	if p.at(token.KwSrs) {
		pos := p.next().Pos
		x := p.parseExpr()
		return &ast.Srs{Position: pos, X: x, Space: space}
	}

	var v *ast.VarRef
	switch p.peek().Kind {
	case token.Ident:
		id := p.next()
		v = &ast.VarRef{Position: id.Pos, Name: id.Text, Space: space}
	case token.KwIt:
		pos := p.next().Pos
		v = &ast.VarRef{Position: pos, Name: "IT", Space: space}
	default:
		p.errorf(p.peek().Pos, "expected a variable name, found %v", p.peek())
		return &ast.NoobLit{Position: p.peek().Pos}
	}

	if p.at(token.IndexZ) {
		pos := p.next().Pos
		idx := p.parseExpr()
		return &ast.Index{Position: pos, Arr: v, IndexE: idx}
	}
	return v
}

func (p *parser) parseIf() ast.Stmt {
	t := p.expect(token.KwORly)
	p.expect(token.Question)
	p.skipNewlines()

	n := &ast.If{Position: t.Pos}
	stop := map[token.Kind]bool{
		token.KwMebbe: true, token.KwNoWai: true, token.KwOic: true,
		token.KwKthxbye: true,
	}
	// YA RLY is optional: the paper's §V lock fragment writes
	// `O RLY? NO WAI, … OIC` with no YA RLY arm.
	if p.accept(token.KwYaRly) {
		p.skipNewlines()
		n.Then = p.parseStmts(stop, nil)
	}

	for p.at(token.KwMebbe) {
		mp := p.next().Pos
		cond := p.parseExpr()
		p.skipNewlines()
		body := p.parseStmts(stop, nil)
		n.Mebbes = append(n.Mebbes, ast.MebbeClause{Position: mp, Cond: cond, Body: body})
	}
	if p.accept(token.KwNoWai) {
		p.skipNewlines()
		n.Else = p.parseStmts(stop, nil)
	}
	p.expect(token.KwOic)
	p.endOfStmt()
	return n
}

func (p *parser) parseSwitch() ast.Stmt {
	t := p.expect(token.KwWtf)
	p.expect(token.Question)
	p.skipNewlines()

	n := &ast.Switch{Position: t.Pos}
	stop := map[token.Kind]bool{
		token.KwOmg: true, token.KwOmgwtf: true, token.KwOic: true,
		token.KwKthxbye: true,
	}
	for p.at(token.KwOmg) {
		cp := p.next().Pos
		lit := p.parseLiteral()
		p.skipNewlines()
		body := p.parseStmts(stop, nil)
		n.Cases = append(n.Cases, ast.OmgClause{Position: cp, Lit: lit, Body: body})
	}
	if p.accept(token.KwOmgwtf) {
		p.skipNewlines()
		n.Default = p.parseStmts(stop, nil)
	}
	if len(n.Cases) == 0 && n.Default == nil {
		p.errorf(t.Pos, "WTF? needs at least one OMG case")
	}
	p.expect(token.KwOic)
	p.endOfStmt()
	return n
}

// parseLiteral parses the literal after OMG.
func (p *parser) parseLiteral() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case token.NumbrLit, token.NumbarLit, token.YarnLit, token.KwWin, token.KwFail, token.KwNoob:
		return p.parseExpr()
	}
	p.errorf(t.Pos, "OMG needs a literal value, found %v", t)
	p.next()
	return &ast.NoobLit{Position: t.Pos}
}

func (p *parser) parseLoop() ast.Stmt {
	t := p.expect(token.KwImInYr)
	label := p.expect(token.Ident)
	n := &ast.Loop{Position: t.Pos, Label: label.Text}

	switch p.peek().Kind {
	case token.KwUppin:
		p.next()
		n.Op = ast.LoopUppin
		p.expect(token.KwYr)
		n.Var = p.expect(token.Ident).Text
	case token.KwNerfin:
		p.next()
		n.Op = ast.LoopNerfin
		p.expect(token.KwYr)
		n.Var = p.expect(token.Ident).Text
	}
	switch p.peek().Kind {
	case token.KwTil:
		p.next()
		n.CondKind = ast.CondTil
		n.Cond = p.parseExpr()
	case token.KwWile:
		p.next()
		n.CondKind = ast.CondWile
		n.Cond = p.parseExpr()
	}
	p.endOfStmt()

	stop := map[token.Kind]bool{token.KwImOuttaYr: true, token.KwKthxbye: true}
	n.Body = p.parseStmts(stop, nil)

	p.expect(token.KwImOuttaYr)
	end := p.expect(token.Ident)
	n.EndLabel = end.Text
	if n.EndLabel != n.Label {
		// The paper's own listing closes nested loops that all share the
		// label "loop", so mismatches are tolerated; truly different names
		// are still worth a diagnostic.
		p.errorf(end.Pos, "loop label mismatch: IM IN YR %s closed by IM OUTTA YR %s", n.Label, n.EndLabel)
	}
	p.endOfStmt()
	return n
}

func (p *parser) parseFuncDecl() ast.Stmt {
	t := p.expect(token.KwHowIzI)
	if p.inFunc {
		p.errorf(t.Pos, "HOW IZ I cannot nest inside another function")
	}
	name := p.expect(token.Ident)
	fd := &ast.FuncDecl{Position: t.Pos, Name: name.Text}

	if p.accept(token.KwYr) {
		fd.Params = append(fd.Params, p.expect(token.Ident).Text)
		for p.at(token.KwAn) {
			p.next()
			p.expect(token.KwYr)
			fd.Params = append(fd.Params, p.expect(token.Ident).Text)
		}
	}
	p.endOfStmt()

	p.inFunc = true
	stop := map[token.Kind]bool{token.KwIfUSaySo: true, token.KwKthxbye: true}
	fd.Body = p.parseStmts(stop, nil)
	p.inFunc = false

	p.expect(token.KwIfUSaySo)
	p.endOfStmt()
	return fd
}

func (p *parser) parseLock(action ast.LockAction) ast.Stmt {
	t := p.next()
	// Optional UR/MAH qualifier: the lock object is global per symbol, so
	// the qualifier is accepted and recorded but does not change semantics.
	space := ast.SpaceDefault
	switch p.peek().Kind {
	case token.KwUr:
		p.next()
		space = ast.SpaceUr
	case token.KwMah:
		p.next()
		space = ast.SpaceMah
	}
	name := p.expect(token.Ident)
	v := &ast.VarRef{Position: name.Pos, Name: name.Text, Space: space}
	p.endOfStmt()
	return &ast.Lock{Position: t.Pos, Action: action, Var: v}
}

func (p *parser) parseTxt(stop map[token.Kind]bool, prog *ast.Program) ast.Stmt {
	t := p.expect(token.KwTxtMahBff)
	target := p.parseExpr()

	if p.accept(token.KwAnStuff) {
		p.endOfStmt()
		inner := map[token.Kind]bool{token.KwTtyl: true, token.KwKthxbye: true}
		body := p.parseStmts(inner, nil)
		p.expect(token.KwTtyl)
		p.endOfStmt()
		return &ast.TxtBlock{Position: t.Pos, Target: target, Body: body}
	}

	// Single-statement predication: `TXT MAH BFF k, <stmt>`. The comma is a
	// statement separator, so the predicated statement follows a Newline.
	if p.at(token.Newline) {
		p.next()
	}
	p.skipNewlines()
	if p.at(token.EOF) || stop[p.peek().Kind] {
		p.errorf(t.Pos, "TXT MAH BFF needs a statement to predicate")
		return &ast.TxtStmt{Position: t.Pos, Target: target,
			Stmt: &ast.ExprStmt{Position: t.Pos, X: &ast.NoobLit{Position: t.Pos}}}
	}
	inner := p.parseStmt(stop, nil)
	if inner == nil {
		inner = &ast.ExprStmt{Position: t.Pos, X: &ast.NoobLit{Position: t.Pos}}
	}
	return &ast.TxtStmt{Position: t.Pos, Target: target, Stmt: inner}
}

// parseNumbr converts integer literal text.
func parseNumbr(t token.Token) int64 {
	n, _ := strconv.ParseInt(t.Text, 10, 64)
	return n
}

func parseNumbar(t token.Token) float64 {
	f, _ := strconv.ParseFloat(t.Text, 64)
	return f
}
