package parser

import (
	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/token"
	"repro/internal/value"
)

// binOps maps binary-operator keywords to their semantic operator.
var binOps = map[token.Kind]value.BinOp{
	token.KwSumOf:      value.OpSum,
	token.KwDiffOf:     value.OpDiff,
	token.KwProduktOf:  value.OpProdukt,
	token.KwQuoshuntOf: value.OpQuoshunt,
	token.KwModOf:      value.OpMod,
	token.KwBiggrOf:    value.OpBiggrOf,
	token.KwSmallrOf:   value.OpSmallrOf,
	token.KwBigger:     value.OpBigger,
	token.KwSmallr:     value.OpSmallr,
	token.KwBothSaem:   value.OpBothSaem,
	token.KwDiffrint:   value.OpDiffrint,
	token.KwBothOf:     value.OpBothOf,
	token.KwEitherOf:   value.OpEitherOf,
	token.KwWonOf:      value.OpWonOf,
}

// parseExpr parses one expression. LOLCODE expressions are prefix-form, so
// no precedence climbing is needed; operators consume a fixed (or
// MKAY-terminated) number of operands.
func (p *parser) parseExpr() ast.Expr {
	t := p.peek()

	if op, ok := binOps[t.Kind]; ok {
		p.next()
		x := p.parseExpr()
		// The AN separator is conventional but optional in LOLCODE-1.2.
		p.accept(token.KwAn)
		y := p.parseExpr()
		return &ast.BinExpr{Position: t.Pos, Op: op, X: x, Y: y}
	}

	switch t.Kind {
	case token.NumbrLit:
		p.next()
		return &ast.NumbrLit{Position: t.Pos, Value: parseNumbr(t)}

	case token.NumbarLit:
		p.next()
		return &ast.NumbarLit{Position: t.Pos, Value: parseNumbar(t), Text: t.Text}

	case token.YarnLit:
		p.next()
		segs, err := lexer.DecodeYarn(t.Text)
		if err != nil {
			p.errorf(t.Pos, "bad YARN literal: %v", err)
		}
		return &ast.YarnLit{Position: t.Pos, Raw: t.Text, Segs: segs}

	case token.KwWin:
		p.next()
		return &ast.TroofLit{Position: t.Pos, Value: true}

	case token.KwFail:
		p.next()
		return &ast.TroofLit{Position: t.Pos, Value: false}

	case token.KwNoob:
		p.next()
		return &ast.NoobLit{Position: t.Pos}

	case token.KwNot:
		p.next()
		return &ast.UnExpr{Position: t.Pos, Op: value.OpNot, X: p.parseExpr()}

	case token.KwSquarOf:
		p.next()
		return &ast.UnExpr{Position: t.Pos, Op: value.OpSquar, X: p.parseExpr()}

	case token.KwUnsquarOf:
		p.next()
		return &ast.UnExpr{Position: t.Pos, Op: value.OpUnsquar, X: p.parseExpr()}

	case token.KwFlipOf:
		p.next()
		return &ast.UnExpr{Position: t.Pos, Op: value.OpFlip, X: p.parseExpr()}

	case token.KwAllOf:
		p.next()
		return p.parseNary(t.Pos, value.OpAllOf)

	case token.KwAnyOf:
		p.next()
		return p.parseNary(t.Pos, value.OpAnyOf)

	case token.KwSmoosh:
		p.next()
		return p.parseNary(t.Pos, value.OpSmoosh)

	case token.KwMaek:
		p.next()
		x := p.parseExpr()
		// `MAEK expr A type`; the A is conventional but optional.
		p.accept(token.KwA)
		typ := p.parseScalarType()
		return &ast.CastExpr{Position: t.Pos, X: x, Type: typ}

	case token.KwIIz:
		p.next()
		return p.parseCall(t.Pos)

	case token.KwMe:
		p.next()
		return &ast.Me{Position: t.Pos}

	case token.KwMahFrenz:
		p.next()
		return &ast.MahFrenz{Position: t.Pos}

	case token.KwWhatevr:
		p.next()
		return &ast.Whatevr{Position: t.Pos}

	case token.KwWhatevar:
		p.next()
		return &ast.Whatevar{Position: t.Pos}

	case token.KwIt, token.Ident, token.KwUr, token.KwMah, token.KwSrs:
		return p.parseRef()

	default:
		p.errorf(t.Pos, "expected an expression, found %v", t)
		p.next()
		return &ast.NoobLit{Position: t.Pos}
	}
}

// parseNary parses the operand list of ALL OF / ANY OF / SMOOSH. The list
// ends at MKAY or at the end of the statement (MKAY is optional at
// line end per the specification).
func (p *parser) parseNary(pos token.Pos, op value.NaryOp) ast.Expr {
	n := &ast.NaryExpr{Position: pos, Op: op}
	for {
		n.Operands = append(n.Operands, p.parseExpr())
		if p.accept(token.KwMkay) {
			n.HasMkay = true
			break
		}
		if p.at(token.Newline) || p.at(token.EOF) || p.at(token.Bang) || p.at(token.Question) {
			break
		}
		if !p.accept(token.KwAn) {
			// Operands may be juxtaposed without AN; continue unless the
			// next token cannot start an expression.
			if !p.startsExpr() {
				break
			}
		}
	}
	if len(n.Operands) == 0 {
		p.errorf(pos, "%v needs at least one operand", op)
	}
	return n
}

// parseCall parses `I IZ name [YR a (AN YR a)*] MKAY`.
func (p *parser) parseCall(pos token.Pos) ast.Expr {
	name := p.expect(token.Ident)
	c := &ast.Call{Position: pos, Name: name.Text}
	if p.accept(token.KwYr) {
		c.Args = append(c.Args, p.parseExpr())
		for p.at(token.KwAn) {
			p.next()
			p.expect(token.KwYr)
			c.Args = append(c.Args, p.parseExpr())
		}
	}
	// MKAY is optional at end of statement.
	p.accept(token.KwMkay)
	return c
}

// startsExpr reports whether the next token can begin an expression.
func (p *parser) startsExpr() bool {
	t := p.peek()
	if _, ok := binOps[t.Kind]; ok {
		return true
	}
	switch t.Kind {
	case token.NumbrLit, token.NumbarLit, token.YarnLit,
		token.KwWin, token.KwFail, token.KwNoob,
		token.KwNot, token.KwSquarOf, token.KwUnsquarOf, token.KwFlipOf,
		token.KwAllOf, token.KwAnyOf, token.KwSmoosh,
		token.KwMaek, token.KwIIz, token.KwMe, token.KwMahFrenz,
		token.KwWhatevr, token.KwWhatevar,
		token.KwIt, token.Ident, token.KwUr, token.KwMah, token.KwSrs:
		return true
	}
	return false
}
