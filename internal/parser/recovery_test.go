package parser

import (
	"strings"
	"testing"

	"repro/internal/token"
)

// TestErrorRecoveryReportsMultiple verifies the parser keeps going after a
// bad statement and reports several diagnostics in one pass — the behaviour
// a teaching tool needs.
func TestErrorRecoveryReportsMultiple(t *testing.T) {
	_, err := Parse("t.lol", `HAI 1.2
I HAS A
VISIBLE "fine"
GIMMEH 42
VISIBLE "also fine"
I HAS A ok ITZ
KTHXBYE`)
	if err == nil {
		t.Fatal("expected errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T, want ErrorList", err)
	}
	if len(list) < 2 {
		t.Fatalf("got %d errors, want at least 2: %v", len(list), list)
	}
	// Each error carries a position in the right file.
	for _, e := range list {
		if e.Pos.File != "t.lol" || e.Pos.Line == 0 {
			t.Errorf("error without position: %v", e)
		}
	}
}

func TestErrorCap(t *testing.T) {
	// A pathological file must not produce unbounded errors.
	var b strings.Builder
	b.WriteString("HAI 1.2\n")
	for i := 0; i < 100; i++ {
		b.WriteString("GIMMEH 42\n")
	}
	b.WriteString("KTHXBYE\n")
	_, err := Parse("t.lol", b.String())
	if err == nil {
		t.Fatal("expected errors")
	}
	if list := err.(ErrorList); len(list) > 25 {
		t.Errorf("got %d errors; recovery should cap around %d", len(list), 20)
	}
}

func TestMissingKthxbye(t *testing.T) {
	_, err := Parse("t.lol", "HAI 1.2\nVISIBLE 1\n")
	if err == nil || !strings.Contains(err.Error(), "KTHXBYE") {
		t.Errorf("want KTHXBYE diagnostic, got %v", err)
	}
}

func TestTrailingInputAfterKthxbye(t *testing.T) {
	_, err := Parse("t.lol", "HAI 1.2\nKTHXBYE\nVISIBLE 1\n")
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("want trailing-input diagnostic, got %v", err)
	}
}

func TestUnclosedConstructs(t *testing.T) {
	cases := []string{
		"HAI 1.2\nO RLY?\nYA RLY\nVISIBLE 1\nKTHXBYE",         // missing OIC
		"HAI 1.2\nIM IN YR l\nVISIBLE 1\nKTHXBYE",             // missing IM OUTTA YR
		"HAI 1.2\nHOW IZ I f\nFOUND YR 1\nKTHXBYE",            // missing IF U SAY SO
		"HAI 1.2\nTXT MAH BFF 0 AN STUFF\nVISIBLE 1\nKTHXBYE", // missing TTYL
		"HAI 1.2\nWTF?\nOMG 1\nVISIBLE 1\nKTHXBYE",            // missing OIC
	}
	for _, src := range cases {
		if _, err := Parse("t.lol", src); err == nil {
			t.Errorf("parser accepted unclosed construct:\n%s", src)
		}
	}
}

func TestLoopLabelMismatchDiagnosed(t *testing.T) {
	_, err := Parse("t.lol", "HAI 1.2\nIM IN YR a\nGTFO\nIM OUTTA YR b\nKTHXBYE")
	if err == nil || !strings.Contains(err.Error(), "label mismatch") {
		t.Errorf("want label-mismatch diagnostic, got %v", err)
	}
}

// TestPositionsOnStatements spot-checks that parsed nodes carry accurate
// line/column positions for diagnostics.
func TestPositionsOnStatements(t *testing.T) {
	prog := mustParse(t, "HAI 1.2\nVISIBLE 1\n  HUGZ\nKTHXBYE")
	if got := prog.Body[0].Pos(); got.Line != 2 || got.Col != 1 {
		t.Errorf("VISIBLE at %v, want 2:1", got)
	}
	if got := prog.Body[1].Pos(); got.Line != 3 || got.Col != 3 {
		t.Errorf("HUGZ at %v, want 3:3", got)
	}
}

// TestTokenPhraseTable guards the keyword table: every phrase must be
// non-empty, unique, and made of upper-case words.
func TestTokenPhraseTable(t *testing.T) {
	seen := map[string]token.Kind{}
	for kind, phrase := range token.Phrases {
		if phrase == "" {
			t.Errorf("kind %v has empty phrase", kind)
		}
		if prev, dup := seen[phrase]; dup {
			t.Errorf("phrase %q maps to both %v and %v", phrase, prev, kind)
		}
		seen[phrase] = kind
		if phrase != strings.ToUpper(phrase) {
			t.Errorf("phrase %q is not upper-case", phrase)
		}
	}
}
