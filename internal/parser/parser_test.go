package parser

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/sema"
)

// TestParseTestdata parses every .lol program under testdata/ and runs
// semantic analysis; the suite includes the paper's §VI listings verbatim.
func TestParseTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.lol")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Parse(f, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := sema.Check(prog); err != nil {
				t.Fatalf("sema: %v", err)
			}
		})
	}
}

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.lol", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestParseDeclarationForms(t *testing.T) {
	prog := mustParse(t, `HAI 1.2
I HAS A a
I HAS A b ITZ 5
I HAS A c ITZ A NUMBR
I HAS A d ITZ A NUMBR AN ITZ ME
I HAS A e ITZ SRSLY A NUMBAR AN ITZ 0.5
I HAS A f ITZ LOTZ A NUMBRS AN THAR IZ 8
WE HAS A g ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A h ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT
KTHXBYE`)
	if len(prog.Body) != 8 {
		t.Fatalf("got %d statements, want 8", len(prog.Body))
	}
	d := prog.Body[7].(*ast.Decl)
	if d.Scope != ast.ScopeWe || !d.Static || !d.IsArray || !d.Sharin {
		t.Errorf("decl h: got %+v", d)
	}
	if d.Size == nil {
		t.Error("decl h: missing THAR IZ size")
	}
}

func TestParseTxtForms(t *testing.T) {
	prog := mustParse(t, `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
TXT MAH BFF 1, MAH x R UR x
TXT MAH BFF 2 AN STUFF
  MAH x R UR x
TTYL
KTHXBYE`)
	if _, ok := prog.Body[1].(*ast.TxtStmt); !ok {
		t.Errorf("statement 1: got %T, want *ast.TxtStmt", prog.Body[1])
	}
	if _, ok := prog.Body[2].(*ast.TxtBlock); !ok {
		t.Errorf("statement 2: got %T, want *ast.TxtBlock", prog.Body[2])
	}
}

func TestSemaRejectsUnpredicatedUr(t *testing.T) {
	prog := mustParse(t, `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
UR x R 5
KTHXBYE`)
	if _, err := sema.Check(prog); err == nil {
		t.Fatal("sema accepted UR outside TXT MAH BFF")
	}
}

func TestSemaRejectsLockWithoutSharin(t *testing.T) {
	prog := mustParse(t, `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
IM SRSLY MESIN WIF x
KTHXBYE`)
	if _, err := sema.Check(prog); err == nil {
		t.Fatal("sema accepted a lock on a variable without IM SHARIN IT")
	}
}
