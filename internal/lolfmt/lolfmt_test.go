package lolfmt

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/progen"
)

// TestRoundTrip checks the formatter's core invariant on every testdata
// program: parse(Format(parse(src))) is structurally identical to
// parse(src), and Format is idempotent.
func TestRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.lol"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			p1, err := parser.Parse(f, string(src))
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			formatted := Format(p1)
			p2, err := parser.Parse(f+".fmt", formatted)
			if err != nil {
				t.Fatalf("re-parse formatted source: %v\n--- formatted ---\n%s", err, formatted)
			}
			if d1, d2 := ast.Dump(p1), ast.Dump(p2); d1 != d2 {
				t.Errorf("round trip changed structure:\noriginal:  %s\nformatted: %s\n--- formatted source ---\n%s", d1, d2, formatted)
			}
			again := Format(p2)
			if again != formatted {
				t.Errorf("Format is not idempotent:\nfirst:\n%s\nsecond:\n%s", formatted, again)
			}
		})
	}
}

// TestRoundTripGenerated extends the round-trip invariant beyond the
// checked-in corpus: for a swath of progen-generated programs,
// parse(Format(parse(src))) is structurally identical to parse(src) and
// Format(Format(src)) is byte-identical to Format(src).
func TestRoundTripGenerated(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := progen.New(seed).Program(15)
			p1, err := parser.Parse("gen.lol", src)
			if err != nil {
				t.Fatalf("parse generated program: %v\n--- source ---\n%s", err, src)
			}
			formatted := Format(p1)
			p2, err := parser.Parse("gen.lol.fmt", formatted)
			if err != nil {
				t.Fatalf("re-parse formatted source: %v\n--- formatted ---\n%s", err, formatted)
			}
			if d1, d2 := ast.Dump(p1), ast.Dump(p2); d1 != d2 {
				t.Errorf("round trip changed structure:\noriginal:  %s\nformatted: %s\n--- formatted source ---\n%s", d1, d2, formatted)
			}
			if again := Format(p2); again != formatted {
				t.Errorf("Format is not idempotent:\nfirst:\n%s\nsecond:\n%s", formatted, again)
			}
		})
	}
}

// TestFormatConstructs spot-checks canonical renderings.
func TestFormatConstructs(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{
			"HAI 1.2\nI HAS A x ITZ SRSLY A NUMBAR AN ITZ 0.001\nKTHXBYE",
			"HAI 1.2\nI HAS A x ITZ SRSLY A NUMBAR AN ITZ 0.001\nKTHXBYE\n",
		},
		{
			"HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32 AN IM SHARIN IT\nKTHXBYE",
			"HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32 AN IM SHARIN IT\nKTHXBYE\n",
		},
		{
			"HAI 1.2\nHUGZ\nKTHXBYE",
			"HAI 1.2\nHUGZ\nKTHXBYE\n",
		},
	}
	for _, c := range cases {
		p, err := parser.Parse("t.lol", c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := Format(p); got != c.want {
			t.Errorf("Format(%q) =\n%q\nwant\n%q", c.src, got, c.want)
		}
	}
}
