// Package lolfmt pretty-prints parallel-LOLCODE programs in a canonical
// style: two-space indentation for nested blocks, one statement per line,
// keywords printed from the canonical phrase table. It is gofmt for
// LOLCODE, which a teaching tool badly wants.
//
// The formatter guarantees parse(Format(p)) is structurally identical to p
// (see the round-trip tests). Comments are not preserved: the scanner
// discards them, and Format says so rather than pretending otherwise.
package lolfmt

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// Format renders the program in canonical style.
func Format(p *ast.Program) string {
	f := &formatter{}
	f.line("HAI %s", orDefault(p.Version, "1.2"))
	for _, u := range p.Uses {
		f.line("CAN HAS %s?", u.Lib)
	}
	f.stmts(p.Body)
	for _, fn := range p.Funcs {
		f.line("")
		f.funcDecl(fn)
	}
	f.line("KTHXBYE")
	return f.buf.String()
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

type formatter struct {
	buf strings.Builder
	ind int
}

func (f *formatter) line(format string, args ...any) {
	if format == "" {
		f.buf.WriteByte('\n')
		return
	}
	f.buf.WriteString(strings.Repeat("  ", f.ind))
	fmt.Fprintf(&f.buf, format, args...)
	f.buf.WriteByte('\n')
}

func (f *formatter) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		f.stmt(s)
	}
}

func typeName(k value.Kind) string { return k.String() }

func pluralType(k value.Kind) string { return k.String() + "S" }

func (f *formatter) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Decl:
		f.line("%s", declString(n))
	case *ast.Assign:
		f.line("%s R %s", expr(n.Target), expr(n.Value))
	case *ast.CastStmt:
		f.line("%s IS NOW A %s", expr(n.Target), typeName(n.Type))
	case *ast.Visible:
		kw := "VISIBLE"
		if n.Invisible {
			kw = "INVISIBLE"
		}
		parts := make([]string, 0, len(n.Args))
		for _, a := range n.Args {
			parts = append(parts, expr(a))
		}
		bang := ""
		if n.NoNewline {
			bang = " !"
		}
		f.line("%s %s%s", kw, strings.Join(parts, " "), bang)
	case *ast.Gimmeh:
		f.line("GIMMEH %s", expr(n.Target))
	case *ast.ExprStmt:
		f.line("%s", expr(n.X))
	case *ast.If:
		f.line("O RLY?")
		f.ind++
		if len(n.Then) > 0 || len(n.Mebbes) > 0 || n.Else != nil {
			f.line("YA RLY")
			f.ind++
			f.stmts(n.Then)
			f.ind--
			for _, m := range n.Mebbes {
				f.line("MEBBE %s", expr(m.Cond))
				f.ind++
				f.stmts(m.Body)
				f.ind--
			}
			if n.Else != nil {
				f.line("NO WAI")
				f.ind++
				f.stmts(n.Else)
				f.ind--
			}
		}
		f.ind--
		f.line("OIC")
	case *ast.Switch:
		f.line("WTF?")
		f.ind++
		for _, c := range n.Cases {
			f.line("OMG %s", expr(c.Lit))
			f.ind++
			f.stmts(c.Body)
			f.ind--
		}
		if n.Default != nil {
			f.line("OMGWTF")
			f.ind++
			f.stmts(n.Default)
			f.ind--
		}
		f.ind--
		f.line("OIC")
	case *ast.Loop:
		head := "IM IN YR " + n.Label
		switch n.Op {
		case ast.LoopUppin:
			head += " UPPIN YR " + n.Var
		case ast.LoopNerfin:
			head += " NERFIN YR " + n.Var
		}
		switch n.CondKind {
		case ast.CondTil:
			head += " TIL " + expr(n.Cond)
		case ast.CondWile:
			head += " WILE " + expr(n.Cond)
		}
		f.line("%s", head)
		f.ind++
		f.stmts(n.Body)
		f.ind--
		f.line("IM OUTTA YR %s", n.Label)
	case *ast.Gtfo:
		f.line("GTFO")
	case *ast.FoundYr:
		f.line("FOUND YR %s", expr(n.X))
	case *ast.FuncDecl:
		f.funcDecl(n)
	case *ast.Barrier:
		f.line("HUGZ")
	case *ast.Lock:
		f.line("%s %s", n.Action, expr(n.Var))
	case *ast.TxtStmt:
		// The comma is a statement separator, so the predicated statement
		// may legally follow on its own (indented) line.
		f.line("TXT MAH BFF %s,", expr(n.Target))
		f.ind++
		f.stmt(n.Stmt)
		f.ind--
	case *ast.TxtBlock:
		f.line("TXT MAH BFF %s AN STUFF", expr(n.Target))
		f.ind++
		f.stmts(n.Body)
		f.ind--
		f.line("TTYL")
	default:
		f.line("BTW lolfmt: unhandled statement %T", s)
	}
}

func (f *formatter) funcDecl(n *ast.FuncDecl) {
	head := "HOW IZ I " + n.Name
	for i, p := range n.Params {
		if i == 0 {
			head += " YR " + p
		} else {
			head += " AN YR " + p
		}
	}
	f.line("%s", head)
	f.ind++
	f.stmts(n.Body)
	f.ind--
	f.line("IF U SAY SO")
}

func declString(n *ast.Decl) string {
	var b strings.Builder
	b.WriteString(n.Scope.String())
	b.WriteByte(' ')
	b.WriteString(n.Name)
	switch {
	case n.IsArray && n.Static:
		fmt.Fprintf(&b, " ITZ SRSLY LOTZ A %s", pluralType(n.Type))
	case n.IsArray:
		fmt.Fprintf(&b, " ITZ LOTZ A %s", pluralType(n.Type))
	case n.Typed && n.Static:
		fmt.Fprintf(&b, " ITZ SRSLY A %s", typeName(n.Type))
	case n.Typed:
		fmt.Fprintf(&b, " ITZ A %s", typeName(n.Type))
	case n.Init != nil:
		fmt.Fprintf(&b, " ITZ %s", expr(n.Init))
		if n.Sharin {
			b.WriteString(" AN IM SHARIN IT")
		}
		return b.String()
	}
	if n.Size != nil {
		fmt.Fprintf(&b, " AN THAR IZ %s", expr(n.Size))
	}
	if n.Init != nil && n.Typed {
		fmt.Fprintf(&b, " AN ITZ %s", expr(n.Init))
	}
	if n.Sharin {
		b.WriteString(" AN IM SHARIN IT")
	}
	return b.String()
}

// expr renders an expression in canonical prefix form.
func expr(e ast.Expr) string {
	switch n := e.(type) {
	case *ast.NumbrLit:
		return strconv.FormatInt(n.Value, 10)
	case *ast.NumbarLit:
		if n.Text != "" {
			return n.Text
		}
		return strconv.FormatFloat(n.Value, 'g', -1, 64)
	case *ast.YarnLit:
		return `"` + n.Raw + `"`
	case *ast.TroofLit:
		if n.Value {
			return "WIN"
		}
		return "FAIL"
	case *ast.NoobLit:
		return "NOOB"
	case *ast.VarRef:
		if n.Space != ast.SpaceDefault {
			return n.Space.String() + " " + n.Name
		}
		return n.Name
	case *ast.Index:
		return expr(n.Arr) + "'Z " + expr(n.IndexE)
	case *ast.BinExpr:
		return fmt.Sprintf("%v %s AN %s", n.Op, expr(n.X), expr(n.Y))
	case *ast.UnExpr:
		return fmt.Sprintf("%v %s", n.Op, expr(n.X))
	case *ast.NaryExpr:
		parts := make([]string, len(n.Operands))
		for i, o := range n.Operands {
			parts[i] = expr(o)
		}
		return fmt.Sprintf("%v %s MKAY", n.Op, strings.Join(parts, " AN "))
	case *ast.CastExpr:
		return fmt.Sprintf("MAEK %s A %s", expr(n.X), typeName(n.Type))
	case *ast.Call:
		s := "I IZ " + n.Name
		for i, a := range n.Args {
			if i == 0 {
				s += " YR " + expr(a)
			} else {
				s += " AN YR " + expr(a)
			}
		}
		return s + " MKAY"
	case *ast.Srs:
		if n.Space != ast.SpaceDefault {
			return n.Space.String() + " SRS " + expr(n.X)
		}
		return "SRS " + expr(n.X)
	case *ast.Me:
		return "ME"
	case *ast.MahFrenz:
		return "MAH FRENZ"
	case *ast.Whatevr:
		return "WHATEVR"
	case *ast.Whatevar:
		return "WHATEVAR"
	}
	return fmt.Sprintf("BTW?%T", e)
}
