package machine

import (
	"testing"
)

func TestRegistry(t *testing.T) {
	for _, name := range []string{"smp", "parallella", "xc40"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("model name = %q, want %q", m.Name(), name)
		}
	}
	if _, err := ByName("cray-1"); err == nil {
		t.Error("unknown machine accepted")
	}
	names := Names()
	if len(names) < 3 {
		t.Errorf("Names() = %v", names)
	}
}

func TestSMPIsFree(t *testing.T) {
	m := SMP{}
	if m.PutNanos(0, 5, 100) != 0 || m.GetNanos(0, 5, 100) != 0 ||
		m.LockNanos(0, 1) != 0 || m.BarrierNanos(64) != 0 {
		t.Error("SMP model must be zero-cost")
	}
}

func TestParallellaShape(t *testing.T) {
	p := NewParallella()
	// Local access free; remote gets cost more than puts; farther costs more.
	if p.PutNanos(3, 3, 8) != 0 {
		t.Error("local put should be free")
	}
	put := p.PutNanos(0, 1, 8)
	get := p.GetNanos(0, 1, 8)
	if put <= 0 || get <= put {
		t.Errorf("put=%v get=%v: want 0 < put < get (reads are round trips)", put, get)
	}
	near := p.PutNanos(0, 1, 8)
	far := p.PutNanos(0, 15, 8)
	if far <= near {
		t.Errorf("corner-to-corner put %v should cost more than neighbour put %v", far, near)
	}
	if p.BarrierNanos(16) <= p.BarrierNanos(2) {
		t.Error("barrier cost should grow with PE count")
	}
	// PEs beyond the 16-core mesh wrap, mirroring oversubscription.
	if p.PutNanos(16, 17, 8) != p.PutNanos(0, 1, 8) {
		t.Error("PE ids should wrap onto the mesh")
	}
}

func TestXC40LocalityTiers(t *testing.T) {
	x := NewXC40()
	sameNode := x.PutNanos(0, 1, 8)
	sameGroup := x.PutNanos(0, x.PEsPerNode, 8)
	global := x.PutNanos(0, x.PEsPerNode*x.NodesPerGroup, 8)
	if !(sameNode < sameGroup && sameGroup < global) {
		t.Errorf("locality tiers broken: node=%v group=%v global=%v", sameNode, sameGroup, global)
	}
	if x.GetNanos(0, 1, 8) <= x.PutNanos(0, 1, 8) {
		t.Error("gets are round trips and must cost more than puts")
	}
	if x.PutNanos(5, 5, 1<<20) != 0 {
		t.Error("self put should be free")
	}
	big := x.PutNanos(0, 1, 1<<20)
	small := x.PutNanos(0, 1, 8)
	if big <= small {
		t.Error("bandwidth term missing: 1MB transfer priced like 8B")
	}
}

func TestXC40BarrierScales(t *testing.T) {
	x := NewXC40()
	small := x.BarrierNanos(16)
	large := x.BarrierNanos(100_000) // paper-scale core count
	if large <= small {
		t.Errorf("100k-PE barrier %v should cost more than 16-PE %v", large, small)
	}
	if x.BarrierNanos(1) != 0 {
		t.Error("1-PE barrier should be free")
	}
}

func TestRegisterCustomModel(t *testing.T) {
	Register("test-model", func() Model { return SMP{} })
	if _, err := ByName("test-model"); err != nil {
		t.Fatal(err)
	}
}
