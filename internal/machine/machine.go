// Package machine provides latency models for the platforms the paper runs
// on: a plain shared-memory host, the 16-core Epiphany-III of the $99
// Parallella board, and a Cray XC40 class supercomputer.
//
// A model translates one-sided PGAS operations (put, get, lock, barrier)
// into simulated nanoseconds. The shmem runtime charges these costs to the
// calling PE's simulated clock, so experiments can report paper-shaped
// results (remote access is distance-dependent on the mesh, cheap within a
// node, expensive across a supercomputer fabric) without owning the
// hardware.
package machine

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/noc"
)

// Model prices one-sided operations in simulated nanoseconds.
type Model interface {
	// Name identifies the model ("smp", "parallella", "xc40").
	Name() string
	// PutNanos is the cost of writing bytes from PE src into PE dst.
	PutNanos(src, dst, bytes int) float64
	// GetNanos is the cost of reading bytes on PE src from PE dst.
	GetNanos(src, dst, bytes int) float64
	// LockNanos is the cost of one lock protocol message from PE src to the
	// lock's home PE.
	LockNanos(src, home int) float64
	// BarrierNanos is the cost of one barrier across n PEs.
	BarrierNanos(n int) float64
}

// SMP is the zero-cost model: a plain shared-memory host where the Go
// scheduler provides the only timing. It is the default for correctness
// tests.
type SMP struct{}

// Name implements Model.
func (SMP) Name() string { return "smp" }

// PutNanos implements Model.
func (SMP) PutNanos(src, dst, bytes int) float64 { return 0 }

// GetNanos implements Model.
func (SMP) GetNanos(src, dst, bytes int) float64 { return 0 }

// LockNanos implements Model.
func (SMP) LockNanos(src, home int) float64 { return 0 }

// BarrierNanos implements Model.
func (SMP) BarrierNanos(n int) float64 { return 0 }

// Parallella models the 16-core Epiphany-III coprocessor: a 4x4 mesh NoC
// at 600 MHz where writes are cheap single-cycle hops and reads are
// round trips roughly 8x slower, exactly the asymmetry the Epiphany
// documentation describes.
type Parallella struct {
	mesh     *noc.Mesh
	clockGHz float64
}

// NewParallella returns the 16-core Epiphany-III model.
func NewParallella() *Parallella {
	m, err := noc.New(noc.DefaultEpiphanyConfig())
	if err != nil {
		panic(err) // static config cannot fail
	}
	return &Parallella{mesh: m, clockGHz: 0.6}
}

// NewParallellaMesh returns an Epiphany-style model over an arbitrary mesh,
// e.g. 8x8 for the Epiphany-IV.
func NewParallellaMesh(w, h int) (*Parallella, error) {
	cfg := noc.DefaultEpiphanyConfig()
	cfg.Width, cfg.Height = w, h
	m, err := noc.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Parallella{mesh: m, clockGHz: 0.6}, nil
}

// Name implements Model.
func (p *Parallella) Name() string { return "parallella" }

// Mesh exposes the underlying NoC for traffic inspection.
func (p *Parallella) Mesh() *noc.Mesh { return p.mesh }

func (p *Parallella) cyclesToNanos(c float64) float64 { return c / p.clockGHz }

func (p *Parallella) wrap(pe int) int { return pe % p.mesh.Cores() }

// PutNanos implements Model.
func (p *Parallella) PutNanos(src, dst, bytes int) float64 {
	return p.cyclesToNanos(p.mesh.WriteCycles(p.wrap(src), p.wrap(dst), bytes))
}

// GetNanos implements Model.
func (p *Parallella) GetNanos(src, dst, bytes int) float64 {
	return p.cyclesToNanos(p.mesh.ReadCycles(p.wrap(src), p.wrap(dst), bytes))
}

// LockNanos implements Model: one round trip to the lock home.
func (p *Parallella) LockNanos(src, home int) float64 {
	return p.cyclesToNanos(p.mesh.ReadCycles(p.wrap(src), p.wrap(home), 8))
}

// BarrierNanos implements Model: a dissemination barrier pays log2(n)
// rounds of one-word writes across the mesh diameter on average.
func (p *Parallella) BarrierNanos(n int) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	avgHop := float64(p.mesh.Config().Width+p.mesh.Config().Height) / 2
	return p.cyclesToNanos(rounds * avgHop * 2)
}

// XC40 models a Cray XC40: PEs pack into nodes, nodes into electrical
// groups, groups join over the optical Aries dragonfly fabric. Latency is
// hierarchical and bandwidth is charged per byte.
type XC40 struct {
	// PEsPerNode is the number of PEs sharing one node's memory.
	PEsPerNode int
	// NodesPerGroup is the number of nodes in one electrical group.
	NodesPerGroup int

	// Latencies in nanoseconds for the three locality classes.
	IntraNodeNanos  float64
	IntraGroupNanos float64
	GlobalNanos     float64

	// BytesPerNano is the injection bandwidth (bytes per simulated ns).
	BytesPerNano float64
}

// NewXC40 returns a model shaped like the paper's 101,312-core Cray XC40:
// 32 PEs per node, 96 nodes per group, ~0.25/1.4/2.2 microsecond latency
// tiers and ~10 GB/s injection bandwidth.
func NewXC40() *XC40 {
	return &XC40{
		PEsPerNode:      32,
		NodesPerGroup:   96,
		IntraNodeNanos:  250,
		IntraGroupNanos: 1400,
		GlobalNanos:     2200,
		BytesPerNano:    10,
	}
}

// Name implements Model.
func (x *XC40) Name() string { return "xc40" }

func (x *XC40) classNanos(src, dst int) float64 {
	srcNode := src / x.PEsPerNode
	dstNode := dst / x.PEsPerNode
	if srcNode == dstNode {
		return x.IntraNodeNanos
	}
	if srcNode/x.NodesPerGroup == dstNode/x.NodesPerGroup {
		return x.IntraGroupNanos
	}
	return x.GlobalNanos
}

// PutNanos implements Model.
func (x *XC40) PutNanos(src, dst, bytes int) float64 {
	if src == dst {
		return 0
	}
	return x.classNanos(src, dst) + float64(bytes)/x.BytesPerNano
}

// GetNanos implements Model: a get is a round trip, so it pays the latency
// twice plus the data movement.
func (x *XC40) GetNanos(src, dst, bytes int) float64 {
	if src == dst {
		return 0
	}
	return 2*x.classNanos(src, dst) + float64(bytes)/x.BytesPerNano
}

// LockNanos implements Model.
func (x *XC40) LockNanos(src, home int) float64 {
	if src == home {
		return x.IntraNodeNanos
	}
	return 2 * x.classNanos(src, home)
}

// BarrierNanos implements Model: log2(n) rounds at the global latency once
// more than one group is involved.
func (x *XC40) BarrierNanos(n int) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	tier := x.IntraNodeNanos
	if n > x.PEsPerNode {
		tier = x.IntraGroupNanos
	}
	if n > x.PEsPerNode*x.NodesPerGroup {
		tier = x.GlobalNanos
	}
	return rounds * tier
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Model{
		"smp":        func() Model { return SMP{} },
		"parallella": func() Model { return NewParallella() },
		"xc40":       func() Model { return NewXC40() },
		// The 64-core Epiphany-IV the Parallella documentation also ships;
		// same NoC rules on an 8x8 mesh.
		"parallella64": func() Model {
			m, err := NewParallellaMesh(8, 8)
			if err != nil {
				panic(err) // static geometry cannot fail
			}
			return m
		},
	}
)

// Register installs a named model constructor (test hooks, new targets).
func Register(name string, mk func() Model) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = mk
}

// ByName constructs the model registered under name.
func ByName(name string) (Model, error) {
	registryMu.RLock()
	mk, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("machine: unknown model %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return mk(), nil
}

// Names lists the registered model names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
