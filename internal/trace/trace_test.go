package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/shmem"
)

// TestFig2TraceShape runs the paper's Figure 2 program and checks the
// recorded trace has exactly its structure: in the phase after the first
// HUGZ, each PE performs one remote put of `b` to its ring successor.
func TestFig2TraceShape(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "fig2.lol"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Parse("fig2.lol", string(src))
	if err != nil {
		t.Fatal(err)
	}
	const np = 4
	var rec Recorder
	if _, err := prog.Run(core.RunConfig{Config: interp.Config{
		NP: np, Tracer: rec.Record,
	}}); err != nil {
		t.Fatal(err)
	}

	phases := r2phases(t, &rec, 1)
	puts := phases[0].Movements
	if len(puts) != np {
		t.Fatalf("phase 1 has %d movements, want %d: %+v", len(puts), np, puts)
	}
	for _, m := range puts {
		if m.Kind != shmem.EvPut {
			t.Errorf("movement %+v is not a put", m)
		}
		if want := (m.From + 1) % np; m.To != want {
			t.Errorf("PE %d wrote to PE %d, want ring successor %d", m.From, m.To, want)
		}
		if m.Slot != 1 { // b is the second symmetric symbol
			t.Errorf("PE %d wrote slot %d, want slot 1 (b)", m.From, m.Slot)
		}
	}
}

// r2phases finds the phase with the given episode number.
func r2phases(t *testing.T, rec *Recorder, episode int) []Phase {
	t.Helper()
	var out []Phase
	for _, ph := range rec.Phases() {
		if ph.Episode == episode {
			out = append(out, ph)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no phase with episode %d; phases: %+v", episode, rec.Phases())
	}
	return out
}

func TestRenderMentionsSymbols(t *testing.T) {
	var rec Recorder
	rec.Record(shmem.Event{Kind: shmem.EvPut, PE: 0, Target: 1, Slot: 0, Bytes: 8, Episode: 1})
	rec.Record(shmem.Event{Kind: shmem.EvGet, PE: 1, Target: 0, Slot: 1, Bytes: 8, Episode: 2})
	var out strings.Builder
	rec.Render(&out, 2, []string{"a", "b"})
	s := out.String()
	for _, want := range []string{"after HUGZ episode 1", "PE 0 --put--> PE 1", "(a, 8B)", "<--get--", "(b, 8B)"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	var rec Recorder
	var out strings.Builder
	rec.Render(&out, 4, nil)
	if !strings.Contains(out.String(), "no remote data movement") {
		t.Errorf("unexpected: %s", out.String())
	}
}

func TestSummaryMatrix(t *testing.T) {
	var rec Recorder
	rec.Record(shmem.Event{Kind: shmem.EvPut, PE: 0, Target: 1, Bytes: 8})
	rec.Record(shmem.Event{Kind: shmem.EvPut, PE: 0, Target: 1, Bytes: 8})
	rec.Record(shmem.Event{Kind: shmem.EvGet, PE: 1, Target: 0, Bytes: 4})
	rec.Record(shmem.Event{Kind: shmem.EvBarrier, PE: 0}) // ignored
	var out strings.Builder
	rec.Summary(&out, 2)
	s := out.String()
	if !strings.Contains(s, "from0 0     2") && !strings.Contains(s, "from0 0     2     ") {
		// column layout: from0 row should show 2 messages to PE 1
		if !strings.Contains(s, "2") {
			t.Errorf("summary missing counts:\n%s", s)
		}
	}
}

func TestRecorderReset(t *testing.T) {
	var rec Recorder
	rec.Record(shmem.Event{Kind: shmem.EvPut, PE: 0, Target: 1})
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Error("reset did not clear events")
	}
}

// TestLockTraceFromLolcode checks lock events flow through from LOLCODE.
func TestLockTraceFromLolcode(t *testing.T) {
	prog, err := core.Parse("l.lol", `HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
IM SRSLY MESIN WIF x
DUN MESIN WIF x
KTHXBYE`)
	if err != nil {
		t.Fatal(err)
	}
	var rec Recorder
	if _, err := prog.Run(core.RunConfig{Config: interp.Config{NP: 1, Tracer: rec.Record}}); err != nil {
		t.Fatal(err)
	}
	var haveLock, haveUnlock bool
	for _, e := range rec.Events() {
		switch e.Kind {
		case shmem.EvLock:
			haveLock = true
		case shmem.EvUnlock:
			haveUnlock = true
		}
	}
	if !haveLock || !haveUnlock {
		t.Errorf("missing lock events: %+v", rec.Events())
	}
}
