// Package trace records and renders the runtime events of an SPMD run.
// Its headline use regenerates the paper's Figure 2 — "visualization of
// symmetric parallel data movement" — from an *actual execution*: the
// recorder is plugged into the shmem runtime as a Tracer, and the renderer
// groups the observed one-sided transfers by barrier phase and draws them
// as per-PE lanes with arrows.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/shmem"
)

// Recorder collects events from all PEs. The zero value is ready to use;
// pass Recorder.Record as shmem.Options.Tracer (or interp.Config.Tracer).
type Recorder struct {
	mu     sync.Mutex
	events []shmem.Event
}

// Record implements the shmem.Tracer contract.
func (r *Recorder) Record(e shmem.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []shmem.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]shmem.Event(nil), r.events...)
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// Movement is one observed one-sided transfer.
type Movement struct {
	Kind   shmem.EventKind // EvPut or EvGet
	From   int             // initiating PE
	To     int             // owner of the accessed memory
	Slot   int
	Bytes  int
	Remote bool
}

// Phase is the data movement between two barrier episodes.
type Phase struct {
	Episode   int // barrier episodes completed when these transfers ran
	Movements []Movement
}

// Phases splits the recorded events into barrier-delimited phases,
// keeping only remote data movement (local accesses are not "movement" in
// the Figure 2 sense).
func (r *Recorder) Phases() []Phase {
	byEpisode := map[int][]Movement{}
	for _, e := range r.Events() {
		if e.Kind != shmem.EvPut && e.Kind != shmem.EvGet {
			continue
		}
		if e.PE == e.Target {
			continue
		}
		byEpisode[e.Episode] = append(byEpisode[e.Episode], Movement{
			Kind: e.Kind, From: e.PE, To: e.Target,
			Slot: e.Slot, Bytes: e.Bytes, Remote: true,
		})
	}
	episodes := make([]int, 0, len(byEpisode))
	for ep := range byEpisode {
		episodes = append(episodes, ep)
	}
	sort.Ints(episodes)
	phases := make([]Phase, 0, len(episodes))
	for _, ep := range episodes {
		ms := byEpisode[ep]
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].From != ms[j].From {
				return ms[i].From < ms[j].From
			}
			return ms[i].To < ms[j].To
		})
		phases = append(phases, Phase{Episode: ep, Movements: ms})
	}
	return phases
}

// Render draws the recorded data movement as the paper's Figure 2 does:
// one box per PE, with put/get arrows between them, grouped by barrier
// phase. symbols names the symmetric slots (from sema.Info.Shared order);
// nil falls back to slot numbers.
func (r *Recorder) Render(w io.Writer, np int, symbols []string) {
	name := func(slot int) string {
		if slot >= 0 && slot < len(symbols) {
			return symbols[slot]
		}
		return fmt.Sprintf("slot%d", slot)
	}

	phases := r.Phases()
	if len(phases) == 0 {
		fmt.Fprintln(w, "(no remote data movement recorded)")
		return
	}

	// The PE lane header.
	var header strings.Builder
	for pe := 0; pe < np; pe++ {
		fmt.Fprintf(&header, "+--PE %-2d--+   ", pe)
	}

	for _, ph := range phases {
		fmt.Fprintf(w, "after HUGZ episode %d:\n", ph.Episode)
		fmt.Fprintf(w, "  %s\n", header.String())
		for _, m := range ph.Movements {
			arrow := "--put-->"
			if m.Kind == shmem.EvGet {
				arrow = "<--get--"
			}
			fmt.Fprintf(w, "  PE %d %s PE %d   (%s, %dB)\n", m.From, arrow, m.To, name(m.Slot), m.Bytes)
		}
		fmt.Fprintln(w)
	}
}

// Summary aggregates the trace: transfers and bytes per (from, to) pair —
// a software-measured traffic matrix to put beside the NoC counters.
func (r *Recorder) Summary(w io.Writer, np int) {
	type cellStat struct {
		msgs  int
		bytes int
	}
	matrix := make([][]cellStat, np)
	for i := range matrix {
		matrix[i] = make([]cellStat, np)
	}
	for _, e := range r.Events() {
		if e.Kind != shmem.EvPut && e.Kind != shmem.EvGet {
			continue
		}
		if e.PE == e.Target || e.PE >= np || e.Target >= np {
			continue
		}
		matrix[e.PE][e.Target].msgs++
		matrix[e.PE][e.Target].bytes += e.Bytes
	}
	fmt.Fprintf(w, "traffic matrix (initiator -> owner), messages:\n")
	fmt.Fprintf(w, "      ")
	for to := 0; to < np; to++ {
		fmt.Fprintf(w, "to%-4d", to)
	}
	fmt.Fprintln(w)
	for from := 0; from < np; from++ {
		fmt.Fprintf(w, "from%-2d", from)
		for to := 0; to < np; to++ {
			fmt.Fprintf(w, "%-6d", matrix[from][to].msgs)
		}
		fmt.Fprintln(w)
	}
}
