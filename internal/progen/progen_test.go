package progen_test

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/progen"
)

// TestDeterministic checks the generator's core contract: equal seeds
// generate byte-identical programs, distinct seeds diverge.
func TestDeterministic(t *testing.T) {
	a := progen.New(42).Program(20)
	b := progen.New(42).Program(20)
	if a != b {
		t.Fatal("same seed generated different programs")
	}
	c := progen.New(43).Program(20)
	if a == c {
		t.Fatal("different seeds generated identical programs (suspicious)")
	}
}

// TestGeneratedProgramsAreWellFormed parses and checks a swath of
// generated programs: everything progen emits must survive the frontend.
func TestGeneratedProgramsAreWellFormed(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		src := progen.New(seed).Program(15)
		if _, err := core.Parse("gen.lol", src); err != nil {
			t.Errorf("seed %d: generated program rejected: %v\n--- source ---\n%s", seed, err, src)
		}
	}
}

// TestBackendsAgreeOnGeneratedPrograms is the differential test progen
// exists for: every generated program is total, so all three engines must
// produce byte-identical output at NP=1. Any divergence is an engine bug.
func TestBackendsAgreeOnGeneratedPrograms(t *testing.T) {
	engines := backend.All()
	if len(engines) != 3 {
		t.Fatalf("expected 3 registered engines, got %v", backend.Names())
	}
	for seed := int64(1); seed <= 25; seed++ {
		src := progen.New(seed).Program(12)
		prog, err := core.Parse("gen.lol", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		outputs := make(map[string]string, len(engines))
		for _, eng := range engines {
			var out strings.Builder
			cfg := backend.Config{NP: 1, Seed: 7, Stdout: &out, GroupOutput: true}
			if _, err := eng.Run(prog.Info, cfg); err != nil {
				t.Fatalf("seed %d: %s: generated program died: %v\n--- source ---\n%s",
					seed, eng.Name(), err, src)
			}
			outputs[eng.Name()] = out.String()
		}
		want := outputs[engines[0].Name()]
		for name, got := range outputs {
			if got != want {
				t.Errorf("seed %d: %s and %s disagree:\n%s: %q\n%s: %q\n--- source ---\n%s",
					seed, engines[0].Name(), name, engines[0].Name(), want, name, got, src)
			}
		}
	}
}
