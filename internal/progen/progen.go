// Package progen generates random, well-formed parallel-LOLCODE programs
// for differential and round-trip testing. Generated programs are total:
// divisors are nonzero literals, variables only ever hold numbers, and
// boolean expressions appear only where truthiness is expected — so any
// behavioural divergence between two consumers (interpreter vs compiler,
// original vs formatted source) is a bug in a consumer, not luck.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gen is a deterministic program generator seeded via New.
type Gen struct {
	rng  *rand.Rand
	b    strings.Builder
	vars []string
	ind  int
}

// New returns a generator; equal seeds generate equal programs.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

func (g *Gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", g.ind))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// NumExpr produces a numeric expression of bounded depth.
func (g *Gen) NumExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(21)-10)
		case 1:
			return fmt.Sprintf("%d.%d", g.rng.Intn(10), g.rng.Intn(100))
		default:
			return g.vars[g.rng.Intn(len(g.vars))]
		}
	}
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("SUM OF %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	case 1:
		return fmt.Sprintf("DIFF OF %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	case 2:
		return fmt.Sprintf("PRODUKT OF %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	case 3:
		// Divisor is a nonzero literal so evaluation is total.
		return fmt.Sprintf("QUOSHUNT OF %s AN %d", g.NumExpr(depth-1), g.rng.Intn(9)+1)
	case 4:
		return fmt.Sprintf("MOD OF %s AN %d", g.NumExpr(depth-1), g.rng.Intn(9)+1)
	case 5:
		return fmt.Sprintf("BIGGR OF %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	default:
		return fmt.Sprintf("SMALLR OF %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	}
}

// BoolExpr produces a TROOF expression of bounded depth.
func (g *Gen) BoolExpr(depth int) string {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return "WIN"
		}
		return "FAIL"
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("BOTH SAEM %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	case 1:
		return fmt.Sprintf("DIFFRINT %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	case 2:
		return fmt.Sprintf("BIGGER %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	case 3:
		return fmt.Sprintf("SMALLR %s AN %s", g.NumExpr(depth-1), g.NumExpr(depth-1))
	case 4:
		return fmt.Sprintf("NOT %s", g.BoolExpr(depth-1))
	default:
		return fmt.Sprintf("BOTH OF %s AN %s", g.BoolExpr(depth-1), g.BoolExpr(depth-1))
	}
}

// arrLen is the fixed length of the generated array; indices are always
// reduced MOD arrLen so access stays in range.
const arrLen = 8

// idxExpr produces an always-in-range array index.
func (g *Gen) idxExpr() string {
	return fmt.Sprintf("MOD OF BIGGR OF %s AN 0 AN %d", g.NumExpr(1), arrLen)
}

// Stmt emits one random statement with nesting bounded by depth.
func (g *Gen) Stmt(depth int) {
	switch g.rng.Intn(10) {
	case 0, 1:
		g.w("%s R %s", g.vars[g.rng.Intn(len(g.vars))], g.NumExpr(2))
	case 6:
		g.w("arr'Z %s R %s", g.idxExpr(), g.NumExpr(2))
	case 7:
		g.w("VISIBLE arr'Z %s", g.idxExpr())
	case 2:
		if g.rng.Intn(2) == 0 {
			g.w("VISIBLE %s", g.NumExpr(2))
		} else {
			g.w("VISIBLE %s", g.BoolExpr(2))
		}
	case 3:
		if depth <= 0 {
			g.w("VISIBLE %s", g.NumExpr(1))
			return
		}
		g.w("%s, O RLY?", g.BoolExpr(2))
		g.w("YA RLY")
		g.ind++
		g.Stmt(depth - 1)
		g.ind--
		if g.rng.Intn(2) == 0 {
			g.w("NO WAI")
			g.ind++
			g.Stmt(depth - 1)
			g.ind--
		}
		g.w("OIC")
	case 4:
		if depth <= 0 {
			g.w("VISIBLE %s", g.NumExpr(1))
			return
		}
		label := fmt.Sprintf("l%d", g.rng.Int31())
		bound := g.rng.Intn(4) + 1
		ctr := fmt.Sprintf("i%d", g.rng.Int31())
		g.w("IM IN YR %s UPPIN YR %s TIL BOTH SAEM %s AN %d", label, ctr, ctr, bound)
		g.ind++
		g.Stmt(depth - 1)
		g.ind--
		g.w("IM OUTTA YR %s", label)
	case 8:
		// Loop-head shapes the VM's fusion pass targets: a slot-slot
		// compare against a fresh never-reassigned bound variable, or a
		// WILE comparison head. The counter only grows and the bound is
		// constant for the loop's lifetime, so both stay total.
		if depth <= 0 {
			g.w("VISIBLE %s", g.NumExpr(1))
			return
		}
		label := fmt.Sprintf("l%d", g.rng.Int31())
		ctr := fmt.Sprintf("i%d", g.rng.Int31())
		if g.rng.Intn(2) == 0 {
			bound := fmt.Sprintf("b%d", g.rng.Int31())
			g.w("I HAS A %s ITZ %d", bound, g.rng.Intn(4)+1)
			g.w("IM IN YR %s UPPIN YR %s TIL BOTH SAEM %s AN %s", label, ctr, ctr, bound)
		} else {
			g.w("IM IN YR %s UPPIN YR %s WILE SMALLR %s AN %d", label, ctr, ctr, g.rng.Intn(4)+1)
		}
		g.ind++
		g.Stmt(depth - 1)
		g.ind--
		g.w("IM OUTTA YR %s", label)
	case 9:
		// Array-element arithmetic (read-modify-write of one element),
		// the OpLoadElemSlot+OpBinary fused shape.
		idx := g.idxExpr()
		g.w("arr'Z %s R SUM OF arr'Z %s AN %s", idx, idx, g.NumExpr(1))
	default:
		g.w("VISIBLE SMOOSH \"v=\" AN %s MKAY", g.NumExpr(1))
	}
}

// Program builds a complete program with the given number of top-level
// statements over a mixed pool of dynamic and SRSLY-typed variables,
// printing every variable at the end so divergence is observable.
func (g *Gen) Program(stmts int) string {
	g.b.Reset()
	g.vars = []string{"va", "vb", "vc", "sf", "si"}
	g.w("HAI 1.2")
	for _, v := range g.vars[:3] {
		g.w("I HAS A %s ITZ %d", v, g.rng.Intn(10))
	}
	g.w("I HAS A sf ITZ SRSLY A NUMBAR AN ITZ %d.%d", g.rng.Intn(5), g.rng.Intn(10))
	g.w("I HAS A si ITZ SRSLY A NUMBR AN ITZ %d", g.rng.Intn(10))
	g.w("I HAS A arr ITZ LOTZ A NUMBARS AN THAR IZ %d", arrLen)
	for i := 0; i < stmts; i++ {
		g.Stmt(2)
	}
	for _, v := range g.vars {
		g.w("VISIBLE %s", v)
	}
	g.w("VISIBLE arr'Z 0 \" \" arr'Z %d", arrLen-1)
	g.w("KTHXBYE")
	return g.b.String()
}
