package ast

import (
	"fmt"
	"strings"
)

// Dump renders the tree as a position-free S-expression, used by tests to
// compare program structure (e.g. the formatter round-trip invariant
// parse(format(p)) == p) without being distracted by line numbers or
// formatting metadata such as NumbarLit.Text and NaryExpr.HasMkay.
func Dump(n Node) string {
	var b strings.Builder
	dump(&b, n)
	return b.String()
}

func dump(b *strings.Builder, n Node) {
	switch x := n.(type) {
	case nil:
		b.WriteString("()")
	case *Program:
		fmt.Fprintf(b, "(program %q", x.Version)
		for _, u := range x.Uses {
			fmt.Fprintf(b, " (canhas %s)", u.Lib)
		}
		dumpStmts(b, x.Body)
		for _, f := range x.Funcs {
			b.WriteByte(' ')
			dump(b, f)
		}
		b.WriteByte(')')
	case *CanHas:
		fmt.Fprintf(b, "(canhas %s)", x.Lib)
	case *Decl:
		fmt.Fprintf(b, "(decl %v %s typed=%v static=%v type=%v array=%v sharin=%v",
			x.Scope, x.Name, x.Typed, x.Static, x.Type, x.IsArray, x.Sharin)
		if x.Size != nil {
			b.WriteString(" size=")
			dump(b, x.Size)
		}
		if x.Init != nil {
			b.WriteString(" init=")
			dump(b, x.Init)
		}
		b.WriteByte(')')
	case *Assign:
		b.WriteString("(assign ")
		dump(b, x.Target)
		b.WriteByte(' ')
		dump(b, x.Value)
		b.WriteByte(')')
	case *CastStmt:
		b.WriteString("(isnowa ")
		dump(b, x.Target)
		fmt.Fprintf(b, " %v)", x.Type)
	case *Visible:
		if x.Invisible {
			b.WriteString("(invisible")
		} else {
			b.WriteString("(visible")
		}
		for _, a := range x.Args {
			b.WriteByte(' ')
			dump(b, a)
		}
		if x.NoNewline {
			b.WriteString(" !")
		}
		b.WriteByte(')')
	case *Gimmeh:
		b.WriteString("(gimmeh ")
		dump(b, x.Target)
		b.WriteByte(')')
	case *ExprStmt:
		b.WriteString("(expr ")
		dump(b, x.X)
		b.WriteByte(')')
	case *If:
		b.WriteString("(if")
		dumpStmts(b, x.Then)
		for _, m := range x.Mebbes {
			b.WriteString(" (mebbe ")
			dump(b, m.Cond)
			dumpStmts(b, m.Body)
			b.WriteByte(')')
		}
		if x.Else != nil {
			b.WriteString(" (else")
			dumpStmts(b, x.Else)
			b.WriteByte(')')
		}
		b.WriteByte(')')
	case *Switch:
		b.WriteString("(wtf")
		for _, c := range x.Cases {
			b.WriteString(" (omg ")
			dump(b, c.Lit)
			dumpStmts(b, c.Body)
			b.WriteByte(')')
		}
		if x.Default != nil {
			b.WriteString(" (omgwtf")
			dumpStmts(b, x.Default)
			b.WriteByte(')')
		}
		b.WriteByte(')')
	case *Loop:
		fmt.Fprintf(b, "(loop %s op=%d var=%s cond=%d", x.Label, x.Op, x.Var, x.CondKind)
		if x.Cond != nil {
			b.WriteByte(' ')
			dump(b, x.Cond)
		}
		dumpStmts(b, x.Body)
		b.WriteByte(')')
	case *Gtfo:
		b.WriteString("(gtfo)")
	case *FoundYr:
		b.WriteString("(foundyr ")
		dump(b, x.X)
		b.WriteByte(')')
	case *FuncDecl:
		fmt.Fprintf(b, "(func %s (%s)", x.Name, strings.Join(x.Params, " "))
		dumpStmts(b, x.Body)
		b.WriteByte(')')
	case *Barrier:
		b.WriteString("(hugz)")
	case *Lock:
		fmt.Fprintf(b, "(lock %d ", x.Action)
		dump(b, x.Var)
		b.WriteByte(')')
	case *TxtStmt:
		b.WriteString("(txt ")
		dump(b, x.Target)
		b.WriteByte(' ')
		dump(b, x.Stmt)
		b.WriteByte(')')
	case *TxtBlock:
		b.WriteString("(txtblock ")
		dump(b, x.Target)
		dumpStmts(b, x.Body)
		b.WriteByte(')')
	case *NumbrLit:
		fmt.Fprintf(b, "%d", x.Value)
	case *NumbarLit:
		fmt.Fprintf(b, "%g", x.Value)
	case *YarnLit:
		fmt.Fprintf(b, "%q", x.Raw)
	case *TroofLit:
		if x.Value {
			b.WriteString("WIN")
		} else {
			b.WriteString("FAIL")
		}
	case *NoobLit:
		b.WriteString("NOOB")
	case *VarRef:
		if x.Space != SpaceDefault {
			fmt.Fprintf(b, "(%v %s)", x.Space, x.Name)
		} else {
			b.WriteString(x.Name)
		}
	case *Index:
		b.WriteString("(idx ")
		dump(b, x.Arr)
		b.WriteByte(' ')
		dump(b, x.IndexE)
		b.WriteByte(')')
	case *BinExpr:
		fmt.Fprintf(b, "(%v ", x.Op)
		dump(b, x.X)
		b.WriteByte(' ')
		dump(b, x.Y)
		b.WriteByte(')')
	case *UnExpr:
		fmt.Fprintf(b, "(%v ", x.Op)
		dump(b, x.X)
		b.WriteByte(')')
	case *NaryExpr:
		fmt.Fprintf(b, "(%v", x.Op)
		for _, o := range x.Operands {
			b.WriteByte(' ')
			dump(b, o)
		}
		b.WriteByte(')')
	case *CastExpr:
		b.WriteString("(maek ")
		dump(b, x.X)
		fmt.Fprintf(b, " %v)", x.Type)
	case *Call:
		fmt.Fprintf(b, "(call %s", x.Name)
		for _, a := range x.Args {
			b.WriteByte(' ')
			dump(b, a)
		}
		b.WriteByte(')')
	case *Srs:
		fmt.Fprintf(b, "(srs %v ", x.Space)
		dump(b, x.X)
		b.WriteByte(')')
	case *Me:
		b.WriteString("ME")
	case *MahFrenz:
		b.WriteString("FRENZ")
	case *Whatevr:
		b.WriteString("WHATEVR")
	case *Whatevar:
		b.WriteString("WHATEVAR")
	default:
		fmt.Fprintf(b, "(?%T)", n)
	}
}

func dumpStmts(b *strings.Builder, ss []Stmt) {
	for _, s := range ss {
		b.WriteByte(' ')
		dump(b, s)
	}
}
