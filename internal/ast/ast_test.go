package ast_test

import (
	"os"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func parseNBody(t *testing.T) *ast.Program {
	t.Helper()
	src, err := os.ReadFile("../../testdata/nbody.lol")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("nbody.lol", string(src))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestWalkVisitsEveryConstruct(t *testing.T) {
	prog := parseNBody(t)
	counts := map[string]int{}
	ast.Walk(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Decl:
			counts["decl"]++
		case *ast.Loop:
			counts["loop"]++
		case *ast.Barrier:
			counts["hugz"]++
		case *ast.TxtBlock:
			counts["txtblock"]++
		case *ast.Index:
			counts["index"]++
		case *ast.BinExpr:
			counts["bin"]++
		}
		return true
	})
	// The paper listing has 17 declarations, 8 loops, 3 barriers (plus the
	// erratum barrier after initialization, see DESIGN.md §2.6), and one
	// predicated block; the expression counts just need to be substantial.
	if counts["decl"] != 17 {
		t.Errorf("decls = %d, want 17", counts["decl"])
	}
	if counts["loop"] != 8 {
		t.Errorf("loops = %d, want 8", counts["loop"])
	}
	if counts["hugz"] != 4 {
		t.Errorf("barriers = %d, want 4 (3 from the paper + 1 erratum)", counts["hugz"])
	}
	if counts["txtblock"] != 1 {
		t.Errorf("txt blocks = %d, want 1", counts["txtblock"])
	}
	if counts["index"] < 25 || counts["bin"] < 40 {
		t.Errorf("suspiciously few expressions: %v", counts)
	}
}

func TestWalkPrune(t *testing.T) {
	prog := parseNBody(t)
	visited := 0
	ast.Walk(prog, func(n ast.Node) bool {
		visited++
		_, isLoop := n.(*ast.Loop)
		return !isLoop // do not descend into loops
	})
	pruned := 0
	ast.Walk(prog, func(n ast.Node) bool {
		pruned++
		return true
	})
	if visited >= pruned {
		t.Errorf("pruned walk visited %d nodes, full walk %d", visited, pruned)
	}
}

func TestDumpIsDeterministic(t *testing.T) {
	prog := parseNBody(t)
	if ast.Dump(prog) != ast.Dump(prog) {
		t.Error("Dump is not deterministic")
	}
}

func TestDumpIgnoresPositions(t *testing.T) {
	a, err := parser.Parse("a.lol", "HAI 1.2\nVISIBLE 1\nKTHXBYE")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parser.Parse("b.lol", "HAI 1.2\n\n\n  VISIBLE   1\nKTHXBYE")
	if err != nil {
		t.Fatal(err)
	}
	if ast.Dump(a) != ast.Dump(b) {
		t.Errorf("Dump depends on layout:\n%s\n%s", ast.Dump(a), ast.Dump(b))
	}
}
