// Package ast declares the abstract syntax tree for parallel LOLCODE:
// LOLCODE-1.2 plus the SPMD/PGAS extensions of Richie & Ross (2017).
package ast

import (
	"repro/internal/lexer"
	"repro/internal/token"
	"repro/internal/value"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Space identifies which PE address space a variable reference targets
// (paper Table II: UR = remote, MAH = local). Unqualified references are
// local; UR/MAH are only legal under TXT MAH BFF predication.
type Space int

const (
	SpaceDefault Space = iota // unqualified: the local PE
	SpaceMah                  // MAH var: explicitly local
	SpaceUr                   // UR var: the predicated remote PE
)

func (s Space) String() string {
	switch s {
	case SpaceMah:
		return "MAH"
	case SpaceUr:
		return "UR"
	}
	return ""
}

// Program is a whole parsed source file: HAI … KTHXBYE.
type Program struct {
	HaiPos  token.Pos
	Version string // text after HAI ("1.2"); may be empty
	Uses    []*CanHas
	Body    []Stmt
	Funcs   []*FuncDecl // HOW IZ I declarations, in source order
	File    string
}

func (p *Program) Pos() token.Pos { return p.HaiPos }

// CanHas is a `CAN HAS <lib>?` library inclusion. The standard libraries
// (STDIO, STRING, SOCKS, STDLIB) are built in; the node is retained for
// formatting and diagnostics.
type CanHas struct {
	Position token.Pos
	Lib      string
}

func (n *CanHas) Pos() token.Pos { return n.Position }

// ---------------------------------------------------------------- statements

// DeclScope distinguishes `I HAS A` (private) from `WE HAS A` (symmetric).
type DeclScope int

const (
	ScopeI  DeclScope = iota // I HAS A: private per-PE variable
	ScopeWe                  // WE HAS A: symmetric shared variable (PGAS)
)

func (s DeclScope) String() string {
	if s == ScopeWe {
		return "WE HAS A"
	}
	return "I HAS A"
}

// Decl is a variable or array declaration with the paper's multi-clause
// extensions:
//
//	I HAS A x
//	I HAS A x ITZ <expr>
//	I HAS A x ITZ A NUMBR [AN ITZ <expr>]
//	I HAS A x ITZ SRSLY A NUMBAR [AN ITZ <expr>]
//	I HAS A x ITZ [SRSLY] LOTZ A NUMBRS AN THAR IZ <size>
//	WE HAS A x ITZ SRSLY A NUMBR [AN IM SHARIN IT]
//	WE HAS A x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 [AN IM SHARIN IT]
type Decl struct {
	Position token.Pos
	Scope    DeclScope
	Name     string
	Typed    bool       // a type clause was present
	Static   bool       // SRSLY: statically typed
	Type     value.Kind // element/scalar type when Typed
	IsArray  bool       // LOTZ A <type>S
	Size     Expr       // AN THAR IZ <size>, for arrays
	Init     Expr       // ITZ <expr> or AN ITZ <expr>; nil if none
	Sharin   bool       // AN IM SHARIN IT: attach an implicit lock

	// Sym is the declared *sema.Symbol, attached by sema.Check (see
	// VarRef.Sym).
	Sym any
}

func (n *Decl) Pos() token.Pos { return n.Position }
func (*Decl) stmtNode()        {}

// Assign is `<target> R <expr>`.
type Assign struct {
	Position token.Pos
	Target   Expr // *VarRef or *Index
	Value    Expr
}

func (n *Assign) Pos() token.Pos { return n.Position }
func (*Assign) stmtNode()        {}

// CastStmt is `<var> IS NOW A <type>`, an in-place cast.
type CastStmt struct {
	Position token.Pos
	Target   Expr // *VarRef or *Index
	Type     value.Kind
}

func (n *CastStmt) Pos() token.Pos { return n.Position }
func (*CastStmt) stmtNode()        {}

// Visible is `VISIBLE <expr>… [!]`, printing to standard output. Invisible
// selects standard error (a common interpreter extension kept for
// diagnostics in teaching settings).
type Visible struct {
	Position  token.Pos
	Args      []Expr
	NoNewline bool // trailing !
	Invisible bool // INVISIBLE: write to stderr
}

func (n *Visible) Pos() token.Pos { return n.Position }
func (*Visible) stmtNode()        {}

// Gimmeh is `GIMMEH <var>`: read one line into the variable as a YARN.
type Gimmeh struct {
	Position token.Pos
	Target   Expr // *VarRef or *Index
}

func (n *Gimmeh) Pos() token.Pos { return n.Position }
func (*Gimmeh) stmtNode()        {}

// ExprStmt is a bare expression; its value is assigned to IT.
type ExprStmt struct {
	Position token.Pos
	X        Expr
}

func (n *ExprStmt) Pos() token.Pos { return n.Position }
func (*ExprStmt) stmtNode()        {}

// If is the `O RLY?` conditional. The condition is the implicit IT set by
// the immediately preceding expression statement.
type If struct {
	Position token.Pos
	Then     []Stmt
	Mebbes   []MebbeClause
	Else     []Stmt // NO WAI; nil when absent
}

// MebbeClause is a `MEBBE <expr>` alternative arm.
type MebbeClause struct {
	Position token.Pos
	Cond     Expr
	Body     []Stmt
}

func (n *If) Pos() token.Pos { return n.Position }
func (*If) stmtNode()        {}

// Switch is `WTF?` … `OIC` with OMG literal cases and OMGWTF default.
// LOLCODE cases fall through unless terminated by GTFO.
type Switch struct {
	Position token.Pos
	Cases    []OmgClause
	Default  []Stmt // OMGWTF; nil when absent
}

// OmgClause is one `OMG <literal>` case arm.
type OmgClause struct {
	Position token.Pos
	Lit      Expr // literal expression (NUMBR/NUMBAR/YARN/TROOF)
	Body     []Stmt
}

func (n *Switch) Pos() token.Pos { return n.Position }
func (*Switch) stmtNode()        {}

// LoopOp is the loop-variable update operation.
type LoopOp int

const (
	LoopNone   LoopOp = iota // no update clause: infinite until GTFO
	LoopUppin                // UPPIN YR var: increment
	LoopNerfin               // NERFIN YR var: decrement
)

// LoopCond distinguishes TIL (run until expr is WIN) from WILE (run while
// expr is WIN).
type LoopCond int

const (
	CondNone LoopCond = iota
	CondTil
	CondWile
)

// Loop is `IM IN YR <label> [UPPIN|NERFIN YR <var> [TIL|WILE <expr>]] …
// IM OUTTA YR <label>`.
type Loop struct {
	Position token.Pos
	Label    string
	Op       LoopOp
	Var      string // loop variable; empty when Op == LoopNone
	CondKind LoopCond
	Cond     Expr
	Body     []Stmt
	EndLabel string // label after IM OUTTA YR (checked against Label)

	// Sym is the loop counter's *sema.Symbol (existing variable or the
	// implicitly declared counter), attached by sema.Check; nil when the
	// loop has no update clause (see VarRef.Sym).
	Sym any
}

func (n *Loop) Pos() token.Pos { return n.Position }
func (*Loop) stmtNode()        {}

// Gtfo breaks the innermost loop or switch, or returns NOOB from a function.
type Gtfo struct {
	Position token.Pos
}

func (n *Gtfo) Pos() token.Pos { return n.Position }
func (*Gtfo) stmtNode()        {}

// FoundYr is `FOUND YR <expr>`: return a value from a HOW IZ I function.
type FoundYr struct {
	Position token.Pos
	X        Expr
}

func (n *FoundYr) Pos() token.Pos { return n.Position }
func (*FoundYr) stmtNode()        {}

// FuncDecl is `HOW IZ I <name> [YR p1 [AN YR p2]…] … IF U SAY SO`.
type FuncDecl struct {
	Position token.Pos
	Name     string
	Params   []string
	Body     []Stmt
}

func (n *FuncDecl) Pos() token.Pos { return n.Position }
func (*FuncDecl) stmtNode()        {}

// ---------------------------------------------- parallel extension statements

// Barrier is `HUGZ`, the collective barrier (paper Table II).
type Barrier struct {
	Position token.Pos
}

func (n *Barrier) Pos() token.Pos { return n.Position }
func (*Barrier) stmtNode()        {}

// LockAction distinguishes the three lock statements.
type LockAction int

const (
	LockAcquire LockAction = iota // IM SRSLY MESIN WIF x: blocking acquire
	LockTry                       // IM MESIN WIF x: trylock; sets IT
	LockRelease                   // DUN MESIN WIF x: release
)

func (a LockAction) String() string {
	switch a {
	case LockAcquire:
		return "IM SRSLY MESIN WIF"
	case LockTry:
		return "IM MESIN WIF"
	case LockRelease:
		return "DUN MESIN WIF"
	}
	return "LOCK?"
}

// Lock operates on the implicit lock attached to a shared variable by
// `AN IM SHARIN IT`. The optional UR/MAH qualifier is accepted (the lock is
// a single global object per symbol, as in OpenSHMEM, so the qualifier does
// not change behaviour).
type Lock struct {
	Position token.Pos
	Action   LockAction
	Var      *VarRef
}

func (n *Lock) Pos() token.Pos { return n.Position }
func (*Lock) stmtNode()        {}

// TxtStmt is single-statement predication:
// `TXT MAH BFF <expr>, <statement>`. UR references inside Stmt resolve to
// the address space of PE Target.
type TxtStmt struct {
	Position token.Pos
	Target   Expr
	Stmt     Stmt
}

func (n *TxtStmt) Pos() token.Pos { return n.Position }
func (*TxtStmt) stmtNode()        {}

// TxtBlock is block predication:
// `TXT MAH BFF <expr> AN STUFF … TTYL`.
type TxtBlock struct {
	Position token.Pos
	Target   Expr
	Body     []Stmt
}

func (n *TxtBlock) Pos() token.Pos { return n.Position }
func (*TxtBlock) stmtNode()        {}

// ---------------------------------------------------------------- expressions

// NumbrLit is an integer literal.
type NumbrLit struct {
	Position token.Pos
	Value    int64
}

func (n *NumbrLit) Pos() token.Pos { return n.Position }
func (*NumbrLit) exprNode()        {}

// NumbarLit is a float literal.
type NumbarLit struct {
	Position token.Pos
	Value    float64
	Text     string // original spelling, for exact formatting
}

func (n *NumbarLit) Pos() token.Pos { return n.Position }
func (*NumbarLit) exprNode()        {}

// YarnLit is a string literal. Raw is the undecoded interior; Segs is the
// decoded segment list including :{var} interpolations.
type YarnLit struct {
	Position token.Pos
	Raw      string
	Segs     []lexer.YarnSegment
}

func (n *YarnLit) Pos() token.Pos { return n.Position }
func (*YarnLit) exprNode()        {}

// TroofLit is WIN or FAIL.
type TroofLit struct {
	Position token.Pos
	Value    bool
}

func (n *TroofLit) Pos() token.Pos { return n.Position }
func (*TroofLit) exprNode()        {}

// NoobLit is the NOOB literal.
type NoobLit struct {
	Position token.Pos
}

func (n *NoobLit) Pos() token.Pos { return n.Position }
func (*NoobLit) exprNode()        {}

// VarRef is a variable reference, optionally qualified with UR or MAH.
// The special name "IT" refers to the implicit result variable.
type VarRef struct {
	Position token.Pos
	Name     string
	Space    Space

	// Sym is the resolved *sema.Symbol, attached by sema.Check's slot
	// resolution pass (typed any to avoid an import cycle, in the style of
	// go/ast's Ident.Obj). Backends read it for direct frame-slot access
	// instead of re-resolving the name; it is nil on synthetic references
	// built at runtime (SRS, :{var} interpolation), which fall back to the
	// live scope's name table.
	Sym any
}

func (n *VarRef) Pos() token.Pos { return n.Position }
func (*VarRef) exprNode()        {}

// Index is the paper's clean array indexing: `arr'Z i` (optionally
// space-qualified through the underlying VarRef: `UR pos_x'Z j`).
type Index struct {
	Position token.Pos
	Arr      *VarRef
	IndexE   Expr
}

func (n *Index) Pos() token.Pos { return n.Position }
func (*Index) exprNode()        {}

// BinExpr is a fixed-arity-two operator: `SUM OF x AN y`.
type BinExpr struct {
	Position token.Pos
	Op       value.BinOp
	X, Y     Expr
}

func (n *BinExpr) Pos() token.Pos { return n.Position }
func (*BinExpr) exprNode()        {}

// UnExpr is a unary operator: NOT, SQUAR OF, UNSQUAR OF, FLIP OF.
type UnExpr struct {
	Position token.Pos
	Op       value.UnOp
	X        Expr
}

func (n *UnExpr) Pos() token.Pos { return n.Position }
func (*UnExpr) exprNode()        {}

// NaryExpr is a variadic operator closed by MKAY: ALL OF, ANY OF, SMOOSH.
type NaryExpr struct {
	Position token.Pos
	Op       value.NaryOp
	Operands []Expr
	HasMkay  bool // explicit MKAY was present (round-trip formatting)
}

func (n *NaryExpr) Pos() token.Pos { return n.Position }
func (*NaryExpr) exprNode()        {}

// CastExpr is `MAEK <expr> A <type>`.
type CastExpr struct {
	Position token.Pos
	X        Expr
	Type     value.Kind
}

func (n *CastExpr) Pos() token.Pos { return n.Position }
func (*CastExpr) exprNode()        {}

// Call is a function invocation: `I IZ <name> [YR a1 [AN YR a2]…] MKAY`.
type Call struct {
	Position token.Pos
	Name     string
	Args     []Expr
}

func (n *Call) Pos() token.Pos { return n.Position }
func (*Call) exprNode()        {}

// Srs is `SRS <expr>`: interpret a YARN value as a variable name.
type Srs struct {
	Position token.Pos
	X        Expr
	Space    Space
}

func (n *Srs) Pos() token.Pos { return n.Position }
func (*Srs) exprNode()        {}

// Me is `ME`: the executing PE's id (paper Table II).
type Me struct {
	Position token.Pos
}

func (n *Me) Pos() token.Pos { return n.Position }
func (*Me) exprNode()        {}

// MahFrenz is `MAH FRENZ`: the total number of PEs (paper Table II).
type MahFrenz struct {
	Position token.Pos
}

func (n *MahFrenz) Pos() token.Pos { return n.Position }
func (*MahFrenz) exprNode()        {}

// Whatevr is `WHATEVR`: a random NUMBR (paper Table III).
type Whatevr struct {
	Position token.Pos
}

func (n *Whatevr) Pos() token.Pos { return n.Position }
func (*Whatevr) exprNode()        {}

// Whatevar is `WHATEVAR`: a random NUMBAR in [0,1) (paper Table III).
type Whatevar struct {
	Position token.Pos
}

func (n *Whatevar) Pos() token.Pos { return n.Position }
func (*Whatevar) exprNode()        {}
