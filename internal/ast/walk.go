package ast

// Visitor is invoked by Walk for each node. A false return prunes the
// subtree below the node.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first source order.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		for _, u := range x.Uses {
			Walk(u, v)
		}
		for _, s := range x.Body {
			Walk(s, v)
		}
		for _, f := range x.Funcs {
			Walk(f, v)
		}
	case *Decl:
		Walk(x.Size, v)
		Walk(x.Init, v)
	case *Assign:
		Walk(x.Target, v)
		Walk(x.Value, v)
	case *CastStmt:
		Walk(x.Target, v)
	case *Visible:
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *Gimmeh:
		Walk(x.Target, v)
	case *ExprStmt:
		Walk(x.X, v)
	case *If:
		walkStmts(x.Then, v)
		for _, m := range x.Mebbes {
			Walk(m.Cond, v)
			walkStmts(m.Body, v)
		}
		walkStmts(x.Else, v)
	case *Switch:
		for _, c := range x.Cases {
			Walk(c.Lit, v)
			walkStmts(c.Body, v)
		}
		walkStmts(x.Default, v)
	case *Loop:
		Walk(x.Cond, v)
		walkStmts(x.Body, v)
	case *FoundYr:
		Walk(x.X, v)
	case *FuncDecl:
		walkStmts(x.Body, v)
	case *Lock:
		Walk(x.Var, v)
	case *TxtStmt:
		Walk(x.Target, v)
		Walk(x.Stmt, v)
	case *TxtBlock:
		Walk(x.Target, v)
		walkStmts(x.Body, v)
	case *Index:
		Walk(x.Arr, v)
		Walk(x.IndexE, v)
	case *BinExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *UnExpr:
		Walk(x.X, v)
	case *NaryExpr:
		for _, o := range x.Operands {
			Walk(o, v)
		}
	case *CastExpr:
		Walk(x.X, v)
	case *Call:
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *Srs:
		Walk(x.X, v)
	}
}

func walkStmts(ss []Stmt, v Visitor) {
	for _, s := range ss {
		Walk(s, v)
	}
}
