// Package value implements the LOLCODE-1.2 dynamic value system: the NOOB,
// TROOF, NUMBR, NUMBAR and YARN types, the casting rules of the
// specification, and the typed arrays added by the parallel-LOLCODE paper
// ("LOTZ A NUMBRS AN THAR IZ n").
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types.
type Kind int

const (
	Noob   Kind = iota // untyped / uninitialized
	Troof              // boolean
	Numbr              // signed 64-bit integer
	Numbar             // 64-bit float
	Yarn               // string
	ArrayK             // typed array (paper extension)
)

var kindNames = [...]string{"NOOB", "TROOF", "NUMBR", "NUMBAR", "YARN", "ARRAY"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a LOLCODE runtime value. The zero Value is NOOB.
type Value struct {
	kind Kind
	n    int64
	f    float64
	s    string
	arr  *Array
}

// The NOOB value.
var NOOB = Value{kind: Noob}

// NewNumbr returns a NUMBR value.
func NewNumbr(n int64) Value { return Value{kind: Numbr, n: n} }

// NewNumbar returns a NUMBAR value.
func NewNumbar(f float64) Value { return Value{kind: Numbar, f: f} }

// NewYarn returns a YARN value.
func NewYarn(s string) Value { return Value{kind: Yarn, s: s} }

// NewTroof returns a TROOF value.
func NewTroof(b bool) Value {
	if b {
		return Value{kind: Troof, n: 1}
	}
	return Value{kind: Troof}
}

// NewArray wraps a typed array as a value.
func NewArray(a *Array) Value { return Value{kind: ArrayK, arr: a} }

// Kind returns the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNoob reports whether the value is NOOB.
func (v Value) IsNoob() bool { return v.kind == Noob }

// Numbr returns the integer payload; valid only when Kind() == Numbr.
func (v Value) Numbr() int64 { return v.n }

// Numbar returns the float payload; valid only when Kind() == Numbar.
func (v Value) Numbar() float64 { return v.f }

// Yarn returns the string payload; valid only when Kind() == Yarn.
func (v Value) Yarn() string { return v.s }

// Troof returns the boolean payload; valid only when Kind() == Troof.
func (v Value) Troof() bool { return v.n != 0 }

// Array returns the array payload; valid only when Kind() == ArrayK.
func (v Value) Array() *Array { return v.arr }

// TypeError records an illegal cast or operation on mismatched types.
type TypeError struct {
	Op   string
	Have Kind
	Want Kind
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("%s: cannot use %s where %s is needed", e.Op, e.Have, e.Want)
}

// ToTroof implements the universal implicit cast to TROOF: NOOB, 0, 0.0 and
// the empty YARN are FAIL; everything else is WIN.
func (v Value) ToTroof() bool {
	switch v.kind {
	case Noob:
		return false
	case Troof:
		return v.n != 0
	case Numbr:
		return v.n != 0
	case Numbar:
		return v.f != 0
	case Yarn:
		return v.s != ""
	case ArrayK:
		return v.arr != nil && v.arr.Len() > 0
	}
	return false
}

// ToNumbr implicitly casts to NUMBR following the specification: TROOF maps
// to 0/1, NUMBAR truncates, numeric YARNs parse; NOOB and non-numeric YARNs
// are errors.
func (v Value) ToNumbr() (int64, error) {
	switch v.kind {
	case Troof:
		return v.n, nil
	case Numbr:
		return v.n, nil
	case Numbar:
		return int64(v.f), nil
	case Yarn:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("YARN %q is not a NUMBR", v.s)
		}
		return n, nil
	}
	return 0, &TypeError{Op: "implicit cast", Have: v.kind, Want: Numbr}
}

// ToNumbar implicitly casts to NUMBAR.
func (v Value) ToNumbar() (float64, error) {
	switch v.kind {
	case Troof:
		return float64(v.n), nil
	case Numbr:
		return float64(v.n), nil
	case Numbar:
		return v.f, nil
	case Yarn:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, fmt.Errorf("YARN %q is not a NUMBAR", v.s)
		}
		return f, nil
	}
	return 0, &TypeError{Op: "implicit cast", Have: v.kind, Want: Numbar}
}

// ToYarn implicitly casts to YARN. NUMBARs print with two decimal places as
// the LOLCODE-1.2 specification requires. NOOB is an error under implicit
// cast; use Display for output contexts.
func (v Value) ToYarn() (string, error) {
	switch v.kind {
	case Troof:
		if v.n != 0 {
			return "WIN", nil
		}
		return "FAIL", nil
	case Numbr:
		return strconv.FormatInt(v.n, 10), nil
	case Numbar:
		return FormatNumbar(v.f), nil
	case Yarn:
		return v.s, nil
	}
	return "", &TypeError{Op: "implicit cast", Have: v.kind, Want: Yarn}
}

// FormatNumbar renders a NUMBAR the way VISIBLE does: two decimal places,
// per the LOLCODE-1.2 specification.
func FormatNumbar(f float64) string { return strconv.FormatFloat(f, 'f', 2, 64) }

// Display renders any value for VISIBLE. It differs from ToYarn only for
// NOOB, which displays as "NOOB", and arrays, which display as a
// space-joined element list.
func (v Value) Display() string {
	switch v.kind {
	case Noob:
		return "NOOB"
	case ArrayK:
		var b strings.Builder
		for i := 0; i < v.arr.Len(); i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.arr.Get(i).Display())
		}
		return b.String()
	default:
		s, _ := v.ToYarn()
		return s
	}
}

// Cast performs an explicit MAEK cast. Explicit casts from NOOB yield the
// target type's zero value (spec §types); anything else follows the
// implicit-cast rules.
func Cast(v Value, to Kind) (Value, error) {
	if v.kind == ArrayK && to != ArrayK {
		return NOOB, &TypeError{Op: "MAEK", Have: ArrayK, Want: to}
	}
	switch to {
	case Noob:
		return NOOB, nil
	case Troof:
		return NewTroof(v.ToTroof()), nil
	case Numbr:
		if v.kind == Noob {
			return NewNumbr(0), nil
		}
		n, err := v.ToNumbr()
		if err != nil {
			return NOOB, err
		}
		return NewNumbr(n), nil
	case Numbar:
		if v.kind == Noob {
			return NewNumbar(0), nil
		}
		f, err := v.ToNumbar()
		if err != nil {
			return NOOB, err
		}
		return NewNumbar(f), nil
	case Yarn:
		if v.kind == Noob {
			return NewYarn(""), nil
		}
		s, err := v.ToYarn()
		if err != nil {
			return NOOB, err
		}
		return NewYarn(s), nil
	case ArrayK:
		if v.kind == ArrayK {
			return v, nil
		}
		return NOOB, &TypeError{Op: "MAEK", Have: v.kind, Want: ArrayK}
	}
	return NOOB, fmt.Errorf("MAEK: unknown target type %v", to)
}

// Equal implements BOTH SAEM: values of the same type compare directly;
// NUMBR and NUMBAR compare numerically; any other cross-type comparison is
// not-equal (the specification performs no other implicit casts here).
func Equal(a, b Value) bool {
	if a.kind == b.kind {
		switch a.kind {
		case Noob:
			return true
		case Troof, Numbr:
			return a.n == b.n
		case Numbar:
			return a.f == b.f
		case Yarn:
			return a.s == b.s
		case ArrayK:
			return a.arr == b.arr
		}
	}
	if a.kind == Numbr && b.kind == Numbar {
		return float64(a.n) == b.f
	}
	if a.kind == Numbar && b.kind == Numbr {
		return a.f == float64(b.n)
	}
	return false
}

func (v Value) String() string { return v.Display() }
