package value

import "fmt"

// Array is the paper's first-class array extension: a dynamically sized,
// statically element-typed vector ("WE HAS A x ITZ SRSLY LOTZ A NUMBRS AN
// THAR IZ 100"). Element storage is a single typed slice so the PGAS
// runtime can move elements without boxing.
type Array struct {
	elem Kind
	n    []int64
	f    []float64
	s    []string
	b    []bool
}

// NewArrayOf allocates an array of size elements of the given scalar type.
func NewArrayOf(elem Kind, size int) (*Array, error) {
	if size < 0 {
		return nil, fmt.Errorf("array size %d is negative", size)
	}
	a := &Array{elem: elem}
	switch elem {
	case Numbr:
		a.n = make([]int64, size)
	case Numbar:
		a.f = make([]float64, size)
	case Yarn:
		a.s = make([]string, size)
	case Troof:
		a.b = make([]bool, size)
	default:
		return nil, fmt.Errorf("cannot make an array of %v", elem)
	}
	return a, nil
}

// Elem returns the element type.
func (a *Array) Elem() Kind { return a.elem }

// Len returns the number of elements.
func (a *Array) Len() int {
	switch a.elem {
	case Numbr:
		return len(a.n)
	case Numbar:
		return len(a.f)
	case Yarn:
		return len(a.s)
	case Troof:
		return len(a.b)
	}
	return 0
}

// IndexError reports an out-of-range array access.
type IndexError struct {
	Index int
	Len   int
}

func (e *IndexError) Error() string {
	return fmt.Sprintf("array index %d out of range [0,%d)", e.Index, e.Len)
}

func (a *Array) check(i int) error {
	if i < 0 || i >= a.Len() {
		return &IndexError{Index: i, Len: a.Len()}
	}
	return nil
}

// Get returns element i. Out-of-range access returns NOOB; callers that
// need the error use GetChecked.
func (a *Array) Get(i int) Value {
	v, _ := a.GetChecked(i)
	return v
}

// GetChecked returns element i or an *IndexError.
func (a *Array) GetChecked(i int) (Value, error) {
	if err := a.check(i); err != nil {
		return NOOB, err
	}
	switch a.elem {
	case Numbr:
		return NewNumbr(a.n[i]), nil
	case Numbar:
		return NewNumbar(a.f[i]), nil
	case Yarn:
		return NewYarn(a.s[i]), nil
	case Troof:
		return NewTroof(a.b[i]), nil
	}
	return NOOB, fmt.Errorf("array has invalid element type %v", a.elem)
}

// Set stores v into element i, casting it to the element type.
func (a *Array) Set(i int, v Value) error {
	if err := a.check(i); err != nil {
		return err
	}
	cv, err := Cast(v, a.elem)
	if err != nil {
		return err
	}
	switch a.elem {
	case Numbr:
		a.n[i] = cv.n
	case Numbar:
		a.f[i] = cv.f
	case Yarn:
		a.s[i] = cv.s
	case Troof:
		a.b[i] = cv.n != 0
	}
	return nil
}

// Resize grows or shrinks the array in place, zero-filling new elements.
// The paper calls for arrays "that can be dynamically sized".
func (a *Array) Resize(size int) error {
	if size < 0 {
		return fmt.Errorf("array size %d is negative", size)
	}
	grow := func(cur int) bool { return size > cur }
	switch a.elem {
	case Numbr:
		if grow(len(a.n)) {
			a.n = append(a.n, make([]int64, size-len(a.n))...)
		} else {
			a.n = a.n[:size]
		}
	case Numbar:
		if grow(len(a.f)) {
			a.f = append(a.f, make([]float64, size-len(a.f))...)
		} else {
			a.f = a.f[:size]
		}
	case Yarn:
		if grow(len(a.s)) {
			a.s = append(a.s, make([]string, size-len(a.s))...)
		} else {
			a.s = a.s[:size]
		}
	case Troof:
		if grow(len(a.b)) {
			a.b = append(a.b, make([]bool, size-len(a.b))...)
		} else {
			a.b = a.b[:size]
		}
	}
	return nil
}

// CopyFrom overwrites this array's contents with src's, resizing to match.
// Element types must agree; this is the whole-array assignment used by the
// paper's ring example ("MAH array R UR array").
func (a *Array) CopyFrom(src *Array) error {
	if a.elem != src.elem {
		return fmt.Errorf("cannot copy array of %v into array of %v", src.elem, a.elem)
	}
	if err := a.Resize(src.Len()); err != nil {
		return err
	}
	switch a.elem {
	case Numbr:
		copy(a.n, src.n)
	case Numbar:
		copy(a.f, src.f)
	case Yarn:
		copy(a.s, src.s)
	case Troof:
		copy(a.b, src.b)
	}
	return nil
}

// Clone returns a deep copy.
func (a *Array) Clone() *Array {
	c := &Array{elem: a.elem}
	switch a.elem {
	case Numbr:
		c.n = append([]int64(nil), a.n...)
	case Numbar:
		c.f = append([]float64(nil), a.f...)
	case Yarn:
		c.s = append([]string(nil), a.s...)
	case Troof:
		c.b = append([]bool(nil), a.b...)
	}
	return c
}

// Numbrs exposes the backing slice of a NUMBR array (nil otherwise).
// The PGAS runtime uses the typed views for bulk transfers.
func (a *Array) Numbrs() []int64 { return a.n }

// Numbars exposes the backing slice of a NUMBAR array (nil otherwise).
func (a *Array) Numbars() []float64 { return a.f }

// Yarns exposes the backing slice of a YARN array (nil otherwise).
func (a *Array) Yarns() []string { return a.s }

// Troofs exposes the backing slice of a TROOF array (nil otherwise).
func (a *Array) Troofs() []bool { return a.b }
