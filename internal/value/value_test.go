package value

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Noob: "NOOB", Troof: "TROOF", Numbr: "NUMBR", Numbar: "NUMBAR",
		Yarn: "YARN", ArrayK: "ARRAY",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestToTroof(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{NOOB, false},
		{NewNumbr(0), false},
		{NewNumbr(1), true},
		{NewNumbr(-1), true},
		{NewNumbar(0), false},
		{NewNumbar(0.001), true},
		{NewYarn(""), false},
		{NewYarn("0"), true}, // non-empty YARN is WIN, even "0"
		{NewTroof(true), true},
		{NewTroof(false), false},
	}
	for _, c := range cases {
		if got := c.v.ToTroof(); got != c.want {
			t.Errorf("ToTroof(%v %v) = %v, want %v", c.v.Kind(), c.v, got, c.want)
		}
	}
}

func TestToNumbr(t *testing.T) {
	if n, err := NewYarn(" 42 ").ToNumbr(); err != nil || n != 42 {
		t.Errorf("YARN \" 42 \" -> (%d, %v), want 42", n, err)
	}
	if _, err := NewYarn("cat").ToNumbr(); err == nil {
		t.Error("YARN \"cat\" should not cast to NUMBR")
	}
	if n, err := NewNumbar(3.9).ToNumbr(); err != nil || n != 3 {
		t.Errorf("NUMBAR 3.9 -> (%d, %v), want truncation to 3", n, err)
	}
	if n, err := NewTroof(true).ToNumbr(); err != nil || n != 1 {
		t.Errorf("WIN -> (%d, %v), want 1", n, err)
	}
	if _, err := NOOB.ToNumbr(); err == nil {
		t.Error("implicit NOOB->NUMBR must error per the spec")
	}
}

func TestToYarnFormatsNumbarTwoPlaces(t *testing.T) {
	// LOLCODE-1.2: NUMBAR casts to YARN with two decimal places.
	cases := map[float64]string{
		3.14159: "3.14",
		1:       "1.00",
		-0.5:    "-0.50",
		1e6:     "1000000.00",
	}
	for f, want := range cases {
		got, err := NewNumbar(f).ToYarn()
		if err != nil || got != want {
			t.Errorf("NUMBAR %v -> (%q, %v), want %q", f, got, err, want)
		}
	}
}

func TestCastFromNoobExplicit(t *testing.T) {
	// Explicit MAEK casts from NOOB produce zero values.
	if v, err := Cast(NOOB, Numbr); err != nil || v.Numbr() != 0 {
		t.Errorf("MAEK NOOB A NUMBR = (%v, %v)", v, err)
	}
	if v, err := Cast(NOOB, Yarn); err != nil || v.Yarn() != "" {
		t.Errorf("MAEK NOOB A YARN = (%v, %v)", v, err)
	}
	if v, err := Cast(NOOB, Troof); err != nil || v.Troof() {
		t.Errorf("MAEK NOOB A TROOF = (%v, %v), want FAIL", v, err)
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(NewNumbr(3), NewNumbar(3.0)) {
		t.Error("NUMBR 3 should BOTH SAEM NUMBAR 3.0")
	}
	if Equal(NewNumbr(3), NewYarn("3")) {
		t.Error("NUMBR 3 should not implicitly equal YARN \"3\"")
	}
	if !Equal(NOOB, NOOB) {
		t.Error("NOOB equals NOOB")
	}
}

func TestBinaryIntegerSemantics(t *testing.T) {
	mustNumbr := func(op BinOp, a, b int64) int64 {
		t.Helper()
		v, err := Binary(op, NewNumbr(a), NewNumbr(b))
		if err != nil {
			t.Fatalf("%v %d %d: %v", op, a, b, err)
		}
		if v.Kind() != Numbr {
			t.Fatalf("%v on NUMBRs returned %v", op, v.Kind())
		}
		return v.Numbr()
	}
	if got := mustNumbr(OpQuoshunt, 7, 2); got != 3 {
		t.Errorf("QUOSHUNT OF 7 AN 2 = %d, want integer division 3", got)
	}
	if got := mustNumbr(OpMod, 7, 2); got != 1 {
		t.Errorf("MOD OF 7 AN 2 = %d, want 1", got)
	}
	if got := mustNumbr(OpBiggrOf, 3, 9); got != 9 {
		t.Errorf("BIGGR OF = %d, want 9", got)
	}
}

func TestBinaryPromotesToNumbar(t *testing.T) {
	v, err := Binary(OpQuoshunt, NewNumbr(7), NewNumbar(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != Numbar || v.Numbar() != 3.5 {
		t.Errorf("7 / 2.0 = %v (%v), want NUMBAR 3.5", v, v.Kind())
	}
}

func TestBinaryYarnCoercion(t *testing.T) {
	v, err := Binary(OpSum, NewYarn("2"), NewYarn("3"))
	if err != nil || v.Kind() != Numbr || v.Numbr() != 5 {
		t.Errorf("SUM OF \"2\" AN \"3\" = (%v, %v), want NUMBR 5", v, err)
	}
	v, err = Binary(OpSum, NewYarn("2.5"), NewNumbr(1))
	if err != nil || v.Kind() != Numbar || v.Numbar() != 3.5 {
		t.Errorf("SUM OF \"2.5\" AN 1 = (%v, %v), want NUMBAR 3.5", v, err)
	}
	if _, err := Binary(OpSum, NewTroof(true), NewNumbr(1)); err == nil {
		t.Error("math on TROOF should error (spec: not numeric)")
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Binary(OpQuoshunt, NewNumbr(1), NewNumbr(0)); err == nil {
		t.Error("integer division by zero must error")
	}
	if _, err := Binary(OpMod, NewNumbar(1), NewNumbar(0)); err == nil {
		t.Error("float modulo by zero must error")
	}
	if _, err := Unary(OpFlip, NewNumbr(0)); err == nil {
		t.Error("FLIP OF 0 must error")
	}
}

func TestComparisonOps(t *testing.T) {
	v, _ := Binary(OpBigger, NewNumbr(3), NewNumbr(2))
	if !v.Troof() {
		t.Error("BIGGER 3 AN 2 should be WIN")
	}
	v, _ = Binary(OpSmallr, NewNumbar(1.5), NewNumbr(2))
	if !v.Troof() {
		t.Error("SMALLR 1.5 AN 2 should be WIN")
	}
}

func TestUnaryTableIII(t *testing.T) {
	if v, _ := Unary(OpSquar, NewNumbr(5)); v.Kind() != Numbr || v.Numbr() != 25 {
		t.Errorf("SQUAR OF 5 = %v, want NUMBR 25", v)
	}
	if v, _ := Unary(OpUnsquar, NewNumbr(16)); v.Kind() != Numbar || v.Numbar() != 4 {
		t.Errorf("UNSQUAR OF 16 = %v, want NUMBAR 4", v)
	}
	if v, _ := Unary(OpFlip, NewNumbar(4)); v.Numbar() != 0.25 {
		t.Errorf("FLIP OF 4 = %v, want 0.25", v)
	}
	if _, err := Unary(OpUnsquar, NewNumbr(-1)); err == nil {
		t.Error("UNSQUAR OF -1 must error")
	}
}

func TestSmoosh(t *testing.T) {
	v, err := Nary(OpSmoosh, []Value{NewYarn("a"), NewNumbr(1), NewTroof(true)})
	if err != nil || v.Yarn() != "a1WIN" {
		t.Errorf("SMOOSH = (%q, %v), want \"a1WIN\"", v.Yarn(), err)
	}
}

func TestDisplayNoob(t *testing.T) {
	if got := NOOB.Display(); got != "NOOB" {
		t.Errorf("Display(NOOB) = %q", got)
	}
}

// Property: SQUAR OF x is never negative, and UNSQUAR OF SQUAR OF |x|
// returns |x| for safe magnitudes.
func TestPropertySquarUnsquar(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
			return true
		}
		sq, err := Unary(OpSquar, NewNumbar(x))
		if err != nil || sq.Numbar() < 0 {
			return false
		}
		if sq.Numbar() == 0 {
			return true
		}
		root, err := Unary(OpUnsquar, sq)
		if err != nil {
			return false
		}
		return math.Abs(root.Numbar()-math.Abs(x)) <= 1e-9*math.Abs(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: casting any NUMBR to YARN and back is the identity.
func TestPropertyNumbrYarnRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		y, err := Cast(NewNumbr(n), Yarn)
		if err != nil {
			return false
		}
		back, err := Cast(y, Numbr)
		return err == nil && back.Numbr() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is symmetric across all scalar kinds.
func TestPropertyEqualSymmetric(t *testing.T) {
	gen := func(tag uint8, n int64, fl float64, s string, b bool) Value {
		switch tag % 5 {
		case 0:
			return NOOB
		case 1:
			return NewTroof(b)
		case 2:
			return NewNumbr(n)
		case 3:
			return NewNumbar(fl)
		default:
			return NewYarn(s)
		}
	}
	f := func(t1 uint8, n1 int64, f1 float64, s1 string, b1 bool,
		t2 uint8, n2 int64, f2 float64, s2 string, b2 bool) bool {
		a := gen(t1, n1, f1, s1, b1)
		b := gen(t2, n2, f2, s2, b2)
		return Equal(a, b) == Equal(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SUM then DIFF of the same NUMBR operand is the identity
// (int64 wraparound is well-defined in Go and in our NUMBR).
func TestPropertySumDiffInverse(t *testing.T) {
	f := func(a, b int64) bool {
		s, err := Binary(OpSum, NewNumbr(a), NewNumbr(b))
		if err != nil {
			return false
		}
		d, err := Binary(OpDiff, s, NewNumbr(b))
		return err == nil && d.Numbr() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayBasics(t *testing.T) {
	a, err := NewArrayOf(Numbr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 || a.Elem() != Numbr {
		t.Fatalf("bad array: len=%d elem=%v", a.Len(), a.Elem())
	}
	if err := a.Set(2, NewNumbar(7.9)); err != nil {
		t.Fatal(err)
	}
	if got := a.Get(2).Numbr(); got != 7 {
		t.Errorf("element cast on Set: got %d, want truncated 7", got)
	}
	if _, err := a.GetChecked(4); err == nil {
		t.Error("out-of-range read must error")
	}
	if err := a.Set(-1, NewNumbr(0)); err == nil {
		t.Error("negative index must error")
	}
	var ie *IndexError
	if _, err := a.GetChecked(9); err != nil {
		var ok bool
		ie, ok = err.(*IndexError)
		if !ok || ie.Index != 9 || ie.Len != 4 {
			t.Errorf("IndexError details wrong: %v", err)
		}
	}
}

func TestArrayResizeAndCopy(t *testing.T) {
	a, _ := NewArrayOf(Yarn, 2)
	a.Set(0, NewYarn("hai"))
	if err := a.Resize(5); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 5 || a.Get(0).Yarn() != "hai" || a.Get(4).Yarn() != "" {
		t.Errorf("resize grew wrong: %v", a)
	}
	if err := a.Resize(1); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Errorf("resize shrink wrong: len=%d", a.Len())
	}

	b, _ := NewArrayOf(Yarn, 3)
	b.Set(2, NewYarn("kthx"))
	if err := a.CopyFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 || a.Get(2).Yarn() != "kthx" {
		t.Errorf("copy wrong: %v", a)
	}
	c, _ := NewArrayOf(Numbr, 3)
	if err := a.CopyFrom(c); err == nil {
		t.Error("copy across element types must error")
	}
}

func TestArrayCloneIsDeep(t *testing.T) {
	a, _ := NewArrayOf(Numbar, 3)
	a.Set(1, NewNumbar(2.5))
	c := a.Clone()
	c.Set(1, NewNumbar(9))
	if a.Get(1).Numbar() != 2.5 {
		t.Error("clone shares storage with original")
	}
}

func TestArrayOfNoobRejected(t *testing.T) {
	if _, err := NewArrayOf(Noob, 3); err == nil {
		t.Error("LOTZ A NOOBS should be rejected")
	}
	if _, err := NewArrayOf(Numbr, -1); err == nil {
		t.Error("negative size should be rejected")
	}
}

// Property: for any sequence of sets within range, Get returns the cast of
// the last Set at that index.
func TestPropertyArraySetGet(t *testing.T) {
	f := func(vals []int64) bool {
		const n = 8
		a, err := NewArrayOf(Numbr, n)
		if err != nil {
			return false
		}
		shadow := make([]int64, n)
		for i, v := range vals {
			idx := i % n
			if err := a.Set(idx, NewNumbr(v)); err != nil {
				return false
			}
			shadow[idx] = v
		}
		for i := 0; i < n; i++ {
			if a.Get(i).Numbr() != shadow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisplayArray(t *testing.T) {
	a, _ := NewArrayOf(Numbr, 3)
	a.Set(0, NewNumbr(1))
	a.Set(1, NewNumbr(2))
	a.Set(2, NewNumbr(3))
	if got := NewArray(a).Display(); got != "1 2 3" {
		t.Errorf("array Display = %q", got)
	}
}

func TestTypeErrorMessage(t *testing.T) {
	_, err := Cast(NewArray(mustArr(t)), Numbr)
	if err == nil || !strings.Contains(err.Error(), "ARRAY") {
		t.Errorf("casting array to NUMBR: %v", err)
	}
}

func mustArr(t *testing.T) *Array {
	t.Helper()
	a, err := NewArrayOf(Numbr, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
