package value

import (
	"fmt"
	"math"
	"strings"
)

// BinOp enumerates the binary operators of Table I (plus DIFF OF, which the
// paper's n-body listing uses, and BIGGR/SMALLR OF from LOLCODE-1.2).
type BinOp int

const (
	OpSum      BinOp = iota // SUM OF
	OpDiff                  // DIFF OF
	OpProdukt               // PRODUKT OF
	OpQuoshunt              // QUOSHUNT OF
	OpMod                   // MOD OF
	OpBiggrOf               // BIGGR OF  (max)
	OpSmallrOf              // SMALLR OF (min)
	OpBigger                // BIGGER    (greater-than, paper Table I)
	OpSmallr                // SMALLR    (less-than, paper Table I)
	OpBothSaem              // BOTH SAEM
	OpDiffrint              // DIFFRINT
	OpBothOf                // BOTH OF   (logical and)
	OpEitherOf              // EITHER OF (logical or)
	OpWonOf                 // WON OF    (logical xor)
)

var binOpNames = [...]string{
	"SUM OF", "DIFF OF", "PRODUKT OF", "QUOSHUNT OF", "MOD OF",
	"BIGGR OF", "SMALLR OF", "BIGGER", "SMALLR", "BOTH SAEM", "DIFFRINT",
	"BOTH OF", "EITHER OF", "WON OF",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// Arith reports whether op dispatches through the numeric-coercion path
// of Binary (SUM OF … SMALLR). The equality and logical operators compare
// or coerce to TROOF without requiring numeric operands.
func (op BinOp) Arith() bool { return op >= OpSum && op <= OpSmallr }

// UnOp enumerates the unary operators (NOT plus the paper's Table III math).
type UnOp int

const (
	OpNot     UnOp = iota // NOT
	OpSquar               // SQUAR OF   (x*x)
	OpUnsquar             // UNSQUAR OF (sqrt)
	OpFlip                // FLIP OF    (1/x)
)

var unOpNames = [...]string{"NOT", "SQUAR OF", "UNSQUAR OF", "FLIP OF"}

func (op UnOp) String() string {
	if int(op) < len(unOpNames) {
		return unOpNames[op]
	}
	return fmt.Sprintf("UnOp(%d)", int(op))
}

// numeric converts a math operand per the spec: NUMBR and NUMBAR pass
// through; numeric YARNs parse (as NUMBAR when they contain '.', 'e' or
// 'E'); everything else is an error.
func numeric(op string, v Value) (Value, error) {
	switch v.kind {
	case Numbr, Numbar:
		return v, nil
	case Yarn:
		s := strings.TrimSpace(v.s)
		if strings.ContainsAny(s, ".eE") {
			f, err := v.ToNumbar()
			if err != nil {
				return NOOB, fmt.Errorf("%s: %w", op, err)
			}
			return NewNumbar(f), nil
		}
		n, err := v.ToNumbr()
		if err != nil {
			return NOOB, fmt.Errorf("%s: %w", op, err)
		}
		return NewNumbr(n), nil
	}
	return NOOB, fmt.Errorf("%s: %s is not numeric", op, v.kind)
}

// Binary applies op to a and b with the casting rules of LOLCODE-1.2.
func Binary(op BinOp, a, b Value) (Value, error) {
	switch op {
	case OpBothSaem:
		return NewTroof(Equal(a, b)), nil
	case OpDiffrint:
		return NewTroof(!Equal(a, b)), nil
	case OpBothOf:
		return NewTroof(a.ToTroof() && b.ToTroof()), nil
	case OpEitherOf:
		return NewTroof(a.ToTroof() || b.ToTroof()), nil
	case OpWonOf:
		return NewTroof(a.ToTroof() != b.ToTroof()), nil
	}

	name := op.String()
	na, err := numeric(name, a)
	if err != nil {
		return NOOB, err
	}
	nb, err := numeric(name, b)
	if err != nil {
		return NOOB, err
	}

	if na.kind == Numbr && nb.kind == Numbr {
		return binaryNumbr(op, na.n, nb.n)
	}
	fa, _ := na.ToNumbar()
	fb, _ := nb.ToNumbar()
	return binaryNumbar(op, fa, fb)
}

// The Raw* helpers are the operand-checked forms of the operators whose
// typed lowering is not a single Go expression (division and modulo need
// a zero check, the Table III unaries have domain errors, float modulo
// needs math.Mod). Generated code (internal/gogen) and the dynamic
// dispatch below share them so the error behaviour stays single-sourced:
// a typed fast path must fail with byte-identical messages to the
// interpreter or the server's differential tests reject the tier.

// RawQuoshuntNumbr is QUOSHUNT OF on two NUMBRs.
func RawQuoshuntNumbr(a, b int64) (int64, error) {
	if b == 0 {
		return 0, fmt.Errorf("QUOSHUNT OF: division by zero")
	}
	return a / b, nil
}

// RawQuoshuntNumbar is QUOSHUNT OF on two NUMBARs.
func RawQuoshuntNumbar(a, b float64) (float64, error) {
	if b == 0 {
		return 0, fmt.Errorf("QUOSHUNT OF: division by zero")
	}
	return a / b, nil
}

// RawModNumbr is MOD OF on two NUMBRs.
func RawModNumbr(a, b int64) (int64, error) {
	if b == 0 {
		return 0, fmt.Errorf("MOD OF: modulo by zero")
	}
	return a % b, nil
}

// RawModNumbar is MOD OF on two NUMBARs.
func RawModNumbar(a, b float64) (float64, error) {
	if b == 0 {
		return 0, fmt.Errorf("MOD OF: modulo by zero")
	}
	return math.Mod(a, b), nil
}

// RawUnsquar is UNSQUAR OF on a NUMBAR operand.
func RawUnsquar(f float64) (float64, error) {
	if f < 0 {
		return 0, fmt.Errorf("UNSQUAR OF: negative operand %g", f)
	}
	return math.Sqrt(f), nil
}

// RawFlip is FLIP OF on a NUMBAR operand.
func RawFlip(f float64) (float64, error) {
	if f == 0 {
		return 0, fmt.Errorf("FLIP OF: division by zero")
	}
	return 1 / f, nil
}

// BinaryNumbr applies an Arith op to two raw NUMBR payloads, skipping the
// operand coercion (and operand boxing) of Binary. For NUMBR operands the
// result and error behaviour are identical to Binary's — the bytecode
// VM's unboxed fast path and Binary's own dispatch share this body, so a
// fused superinstruction cannot drift from the generic semantics.
func BinaryNumbr(op BinOp, a, b int64) (Value, error) { return binaryNumbr(op, a, b) }

// BinaryNumbar is BinaryNumbr for raw NUMBAR payloads. It is also the
// mixed NUMBR/NUMBAR path: Binary resolves mixed numeric operands by
// widening the NUMBR side to float64, exactly as a caller of this helper
// does.
func BinaryNumbar(op BinOp, a, b float64) (Value, error) { return binaryNumbar(op, a, b) }

// RawCmpNumbr evaluates a comparison op on raw NUMBR payloads without
// boxing a TROOF result. ok is false when op is not one of the four
// comparison operators (BIGGER, SMALLR, BOTH SAEM, DIFFRINT); the caller
// falls back to the generic dispatch. The BOTH SAEM/DIFFRINT results
// match Equal's same-kind NUMBR case.
func RawCmpNumbr(op BinOp, a, b int64) (res, ok bool) {
	switch op {
	case OpBigger:
		return a > b, true
	case OpSmallr:
		return a < b, true
	case OpBothSaem:
		return a == b, true
	case OpDiffrint:
		return a != b, true
	}
	return false, false
}

// RawCmpNumbar is RawCmpNumbr on raw NUMBAR payloads; it also serves the
// mixed NUMBR/NUMBAR comparison, which both Binary and Equal resolve by
// widening the NUMBR side to float64.
func RawCmpNumbar(op BinOp, a, b float64) (res, ok bool) {
	switch op {
	case OpBigger:
		return a > b, true
	case OpSmallr:
		return a < b, true
	case OpBothSaem:
		return a == b, true
	case OpDiffrint:
		return a != b, true
	}
	return false, false
}

func binaryNumbr(op BinOp, a, b int64) (Value, error) {
	switch op {
	case OpSum:
		return NewNumbr(a + b), nil
	case OpDiff:
		return NewNumbr(a - b), nil
	case OpProdukt:
		return NewNumbr(a * b), nil
	case OpQuoshunt:
		n, err := RawQuoshuntNumbr(a, b)
		if err != nil {
			return NOOB, err
		}
		return NewNumbr(n), nil
	case OpMod:
		n, err := RawModNumbr(a, b)
		if err != nil {
			return NOOB, err
		}
		return NewNumbr(n), nil
	case OpBiggrOf:
		if a > b {
			return NewNumbr(a), nil
		}
		return NewNumbr(b), nil
	case OpSmallrOf:
		if a < b {
			return NewNumbr(a), nil
		}
		return NewNumbr(b), nil
	case OpBigger:
		return NewTroof(a > b), nil
	case OpSmallr:
		return NewTroof(a < b), nil
	}
	return NOOB, fmt.Errorf("invalid NUMBR operator %v", op)
}

func binaryNumbar(op BinOp, a, b float64) (Value, error) {
	switch op {
	case OpSum:
		return NewNumbar(a + b), nil
	case OpDiff:
		return NewNumbar(a - b), nil
	case OpProdukt:
		return NewNumbar(a * b), nil
	case OpQuoshunt:
		f, err := RawQuoshuntNumbar(a, b)
		if err != nil {
			return NOOB, err
		}
		return NewNumbar(f), nil
	case OpMod:
		f, err := RawModNumbar(a, b)
		if err != nil {
			return NOOB, err
		}
		return NewNumbar(f), nil
	case OpBiggrOf:
		return NewNumbar(math.Max(a, b)), nil
	case OpSmallrOf:
		return NewNumbar(math.Min(a, b)), nil
	case OpBigger:
		return NewTroof(a > b), nil
	case OpSmallr:
		return NewTroof(a < b), nil
	}
	return NOOB, fmt.Errorf("invalid NUMBAR operator %v", op)
}

// Unary applies NOT or one of the paper's Table III math extensions.
// SQUAR OF preserves NUMBR; UNSQUAR OF and FLIP OF always produce NUMBAR.
func Unary(op UnOp, v Value) (Value, error) {
	switch op {
	case OpNot:
		return NewTroof(!v.ToTroof()), nil
	case OpSquar:
		n, err := numeric("SQUAR OF", v)
		if err != nil {
			return NOOB, err
		}
		if n.kind == Numbr {
			return NewNumbr(n.n * n.n), nil
		}
		return NewNumbar(n.f * n.f), nil
	case OpUnsquar:
		f, err := v.ToNumbar()
		if err != nil {
			return NOOB, fmt.Errorf("UNSQUAR OF: %w", err)
		}
		r, err := RawUnsquar(f)
		if err != nil {
			return NOOB, err
		}
		return NewNumbar(r), nil
	case OpFlip:
		f, err := v.ToNumbar()
		if err != nil {
			return NOOB, fmt.Errorf("FLIP OF: %w", err)
		}
		r, err := RawFlip(f)
		if err != nil {
			return NOOB, err
		}
		return NewNumbar(r), nil
	}
	return NOOB, fmt.Errorf("invalid unary operator %v", op)
}

// NaryOp enumerates the variadic operators terminated by MKAY.
type NaryOp int

const (
	OpAllOf  NaryOp = iota // ALL OF … MKAY (and)
	OpAnyOf                // ANY OF … MKAY (or)
	OpSmoosh               // SMOOSH … MKAY (string concat)
)

func (op NaryOp) String() string {
	switch op {
	case OpAllOf:
		return "ALL OF"
	case OpAnyOf:
		return "ANY OF"
	case OpSmoosh:
		return "SMOOSH"
	}
	return fmt.Sprintf("NaryOp(%d)", int(op))
}

// Nary applies a variadic operator to already-evaluated operands.
// (Short-circuit evaluation of ALL OF / ANY OF is the evaluator's business;
// this helper is the strict fallback used once operands exist.)
func Nary(op NaryOp, vs []Value) (Value, error) {
	switch op {
	case OpAllOf:
		for _, v := range vs {
			if !v.ToTroof() {
				return NewTroof(false), nil
			}
		}
		return NewTroof(true), nil
	case OpAnyOf:
		for _, v := range vs {
			if v.ToTroof() {
				return NewTroof(true), nil
			}
		}
		return NewTroof(false), nil
	case OpSmoosh:
		var b strings.Builder
		for _, v := range vs {
			b.WriteString(v.Display())
		}
		return NewYarn(b.String()), nil
	}
	return NOOB, fmt.Errorf("invalid n-ary operator %v", op)
}
