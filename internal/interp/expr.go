package interp

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/token"
	"repro/internal/value"
)

// symbolFor resolves a VarRef through the symbol sema attached to the node
// during slot resolution — a pointer load, not a map lookup; this is the
// variable-access hot path. Synthetic references built at runtime (SRS,
// :{var} interpolation) carry no annotation and fall back to the live name
// table.
func (ev *evaluator) symbolFor(v *ast.VarRef) *sema.Symbol {
	if s, ok := v.Sym.(*sema.Symbol); ok {
		return s
	}
	return ev.lookup(v.Name)
}

// space resolves which PE a reference addresses: the local PE for
// unqualified and MAH references, the predication target for UR.
func (ev *evaluator) space(pos token.Pos, sp ast.Space) (pe int, remote bool, err error) {
	if sp == ast.SpaceUr {
		t, err := ev.predTarget(pos)
		return t, true, err
	}
	return ev.pe.ID(), false, nil
}

// readVar reads a variable reference.
func (ev *evaluator) readVar(v *ast.VarRef) (value.Value, error) {
	sym := ev.symbolFor(v)
	if sym == nil {
		return value.NOOB, rerrf(v.Position, "variable %s has not been declared", v.Name)
	}
	if sym.Kind == sema.SymShared {
		target, remote, err := ev.space(v.Position, v.Space)
		if err != nil {
			return value.NOOB, err
		}
		if sym.IsArray {
			// Whole-array read: a deep copy, as on real one-sided hardware.
			arr, err := ev.pe.GetArray(target, sym.Heap)
			if err != nil {
				return value.NOOB, rerr(v.Position, err)
			}
			return value.NewArray(arr), nil
		}
		if !remote {
			val, err := ev.pe.LocalGet(sym.Heap)
			return val, rerr(v.Position, err)
		}
		val, err := ev.pe.Get(target, sym.Heap)
		return val, rerr(v.Position, err)
	}
	return ev.frame.slots[sym.Slot], nil
}

// writeVar assigns to a variable reference, applying static-type casts.
func (ev *evaluator) writeVar(v *ast.VarRef, val value.Value) error {
	sym := ev.symbolFor(v)
	if sym == nil {
		return rerrf(v.Position, "variable %s has not been declared", v.Name)
	}
	if sym.Static && !sym.IsArray {
		cv, err := value.Cast(val, sym.Type)
		if err != nil {
			return rerr(v.Position, fmt.Errorf("assigning to SRSLY %s %s: %w", sym.Type, v.Name, err))
		}
		val = cv
	}
	if sym.Kind == sema.SymShared {
		target, _, err := ev.space(v.Position, v.Space)
		if err != nil {
			return err
		}
		if sym.IsArray {
			if val.Kind() != value.ArrayK {
				return rerrf(v.Position, "cannot assign %s to array %s", val.Kind(), v.Name)
			}
			return rerr(v.Position, ev.pe.PutArray(target, sym.Heap, val.Array()))
		}
		return rerr(v.Position, ev.pe.Put(target, sym.Heap, val))
	}
	if sym.IsArray && val.Kind() == value.ArrayK {
		// Private whole-array assignment copies contents (value semantics).
		cur := ev.frame.slots[sym.Slot]
		if cur.Kind() == value.ArrayK {
			return rerr(v.Position, cur.Array().CopyFrom(val.Array()))
		}
	}
	ev.frame.slots[sym.Slot] = val
	return nil
}

// index evaluates an array index expression to an int.
func (ev *evaluator) index(n *ast.Index) (int, error) {
	iv, err := ev.eval(n.IndexE)
	if err != nil {
		return 0, err
	}
	i, err := iv.ToNumbr()
	if err != nil {
		return 0, rerr(n.Position, fmt.Errorf("array index: %w", err))
	}
	return int(i), nil
}

// readIndex reads arr'Z i.
func (ev *evaluator) readIndex(n *ast.Index) (value.Value, error) {
	sym := ev.symbolFor(n.Arr)
	if sym == nil {
		return value.NOOB, rerrf(n.Position, "variable %s has not been declared", n.Arr.Name)
	}
	i, err := ev.index(n)
	if err != nil {
		return value.NOOB, err
	}
	if sym.Kind == sema.SymShared {
		target, remote, err := ev.space(n.Position, n.Arr.Space)
		if err != nil {
			return value.NOOB, err
		}
		if !remote {
			v, err := ev.pe.LocalGetElem(sym.Heap, i)
			return v, rerr(n.Position, err)
		}
		v, err := ev.pe.GetElem(target, sym.Heap, i)
		return v, rerr(n.Position, err)
	}
	slotv := ev.frame.slots[sym.Slot]
	if slotv.Kind() != value.ArrayK {
		return value.NOOB, rerrf(n.Position, "%s is not an array", n.Arr.Name)
	}
	v, err := slotv.Array().GetChecked(i)
	return v, rerr(n.Position, err)
}

// writeIndex assigns arr'Z i R val.
func (ev *evaluator) writeIndex(n *ast.Index, val value.Value) error {
	sym := ev.symbolFor(n.Arr)
	if sym == nil {
		return rerrf(n.Position, "variable %s has not been declared", n.Arr.Name)
	}
	i, err := ev.index(n)
	if err != nil {
		return err
	}
	if sym.Kind == sema.SymShared {
		target, remote, err := ev.space(n.Position, n.Arr.Space)
		if err != nil {
			return err
		}
		if !remote {
			return rerr(n.Position, ev.pe.LocalSetElem(sym.Heap, i, val))
		}
		return rerr(n.Position, ev.pe.PutElem(target, sym.Heap, i, val))
	}
	slotv := ev.frame.slots[sym.Slot]
	if slotv.Kind() != value.ArrayK {
		return rerrf(n.Position, "%s is not an array", n.Arr.Name)
	}
	return rerr(n.Position, slotv.Array().Set(i, val))
}

// assign stores val into an assignment target.
func (ev *evaluator) assign(target ast.Expr, val value.Value) error {
	switch t := target.(type) {
	case *ast.VarRef:
		return ev.writeVar(t, val)
	case *ast.Index:
		return ev.writeIndex(t, val)
	case *ast.Srs:
		ref, err := ev.srsRef(t)
		if err != nil {
			return err
		}
		return ev.writeVar(ref, val)
	}
	return rerrf(target.Pos(), "cannot assign to this expression")
}

// readTarget reads the current value of an assignment target (IS NOW A).
func (ev *evaluator) readTarget(target ast.Expr) (value.Value, error) {
	switch t := target.(type) {
	case *ast.VarRef:
		return ev.readVar(t)
	case *ast.Index:
		return ev.readIndex(t)
	case *ast.Srs:
		ref, err := ev.srsRef(t)
		if err != nil {
			return value.NOOB, err
		}
		return ev.readVar(ref)
	}
	return value.NOOB, rerrf(target.Pos(), "not a readable target")
}

// srsRef resolves SRS <expr> to a synthetic VarRef.
func (ev *evaluator) srsRef(n *ast.Srs) (*ast.VarRef, error) {
	v, err := ev.eval(n.X)
	if err != nil {
		return nil, err
	}
	name, err := v.ToYarn()
	if err != nil {
		return nil, rerr(n.Position, fmt.Errorf("SRS: %w", err))
	}
	sym := ev.lookup(name)
	if sym == nil {
		return nil, rerrf(n.Position, "SRS %q: no such variable", name)
	}
	return &ast.VarRef{Position: n.Position, Name: name, Space: n.Space, Sym: sym}, nil
}

// evalPE evaluates an expression to a PE rank and validates the range.
func (ev *evaluator) evalPE(e ast.Expr) (int, error) {
	v, err := ev.eval(e)
	if err != nil {
		return 0, err
	}
	n, err := v.ToNumbr()
	if err != nil {
		return 0, rerr(e.Pos(), fmt.Errorf("TXT MAH BFF target: %w", err))
	}
	if n < 0 || n >= int64(ev.pe.NPEs()) {
		return 0, rerrf(e.Pos(), "TXT MAH BFF %d: no such friend (MAH FRENZ is %d)", n, ev.pe.NPEs())
	}
	return int(n), nil
}

// eval evaluates an expression.
func (ev *evaluator) eval(e ast.Expr) (value.Value, error) {
	switch n := e.(type) {
	case *ast.NumbrLit:
		return value.NewNumbr(n.Value), nil
	case *ast.NumbarLit:
		return value.NewNumbar(n.Value), nil
	case *ast.TroofLit:
		return value.NewTroof(n.Value), nil
	case *ast.NoobLit:
		return value.NOOB, nil
	case *ast.YarnLit:
		return ev.evalYarn(n)
	case *ast.VarRef:
		return ev.readVar(n)
	case *ast.Index:
		return ev.readIndex(n)
	case *ast.BinExpr:
		return ev.evalBin(n)
	case *ast.UnExpr:
		x, err := ev.eval(n.X)
		if err != nil {
			return value.NOOB, err
		}
		v, err := value.Unary(n.Op, x)
		return v, rerr(n.Position, err)
	case *ast.NaryExpr:
		return ev.evalNary(n)
	case *ast.CastExpr:
		x, err := ev.eval(n.X)
		if err != nil {
			return value.NOOB, err
		}
		v, err := value.Cast(x, n.Type)
		return v, rerr(n.Position, err)
	case *ast.Call:
		return ev.call(n)
	case *ast.Srs:
		ref, err := ev.srsRef(n)
		if err != nil {
			return value.NOOB, err
		}
		return ev.readVar(ref)
	case *ast.Me:
		return value.NewNumbr(int64(ev.pe.ID())), nil
	case *ast.MahFrenz:
		return value.NewNumbr(int64(ev.pe.NPEs())), nil
	case *ast.Whatevr:
		// rand()-shaped: a non-negative 31-bit integer.
		return value.NewNumbr(ev.pe.Rand().Int63n(1 << 31)), nil
	case *ast.Whatevar:
		return value.NewNumbar(ev.pe.Rand().Float64()), nil
	}
	return value.NOOB, rerrf(e.Pos(), "interp: unhandled expression %T", e)
}

func (ev *evaluator) evalBin(n *ast.BinExpr) (value.Value, error) {
	// BOTH OF / EITHER OF short-circuit, as the specification permits.
	switch n.Op {
	case value.OpBothOf:
		x, err := ev.eval(n.X)
		if err != nil {
			return value.NOOB, err
		}
		if !x.ToTroof() {
			return value.NewTroof(false), nil
		}
		y, err := ev.eval(n.Y)
		if err != nil {
			return value.NOOB, err
		}
		return value.NewTroof(y.ToTroof()), nil
	case value.OpEitherOf:
		x, err := ev.eval(n.X)
		if err != nil {
			return value.NOOB, err
		}
		if x.ToTroof() {
			return value.NewTroof(true), nil
		}
		y, err := ev.eval(n.Y)
		if err != nil {
			return value.NOOB, err
		}
		return value.NewTroof(y.ToTroof()), nil
	}
	x, err := ev.eval(n.X)
	if err != nil {
		return value.NOOB, err
	}
	y, err := ev.eval(n.Y)
	if err != nil {
		return value.NOOB, err
	}
	v, err := value.Binary(n.Op, x, y)
	return v, rerr(n.Position, err)
}

func (ev *evaluator) evalNary(n *ast.NaryExpr) (value.Value, error) {
	switch n.Op {
	case value.OpAllOf:
		for _, o := range n.Operands {
			v, err := ev.eval(o)
			if err != nil {
				return value.NOOB, err
			}
			if !v.ToTroof() {
				return value.NewTroof(false), nil
			}
		}
		return value.NewTroof(true), nil
	case value.OpAnyOf:
		for _, o := range n.Operands {
			v, err := ev.eval(o)
			if err != nil {
				return value.NOOB, err
			}
			if v.ToTroof() {
				return value.NewTroof(true), nil
			}
		}
		return value.NewTroof(false), nil
	default: // SMOOSH
		vs := make([]value.Value, len(n.Operands))
		for i, o := range n.Operands {
			v, err := ev.eval(o)
			if err != nil {
				return value.NOOB, err
			}
			vs[i] = v
		}
		v, err := value.Nary(n.Op, vs)
		return v, rerr(n.Position, err)
	}
}

// evalYarn assembles a YARN literal, resolving :{var} interpolations
// against the live scope.
func (ev *evaluator) evalYarn(n *ast.YarnLit) (value.Value, error) {
	if len(n.Segs) == 1 && n.Segs[0].Var == "" {
		return value.NewYarn(n.Segs[0].Text), nil
	}
	var out []byte
	for _, seg := range n.Segs {
		if seg.Var == "" {
			out = append(out, seg.Text...)
			continue
		}
		ref := &ast.VarRef{Position: n.Position, Name: seg.Var}
		v, err := ev.readVar(ref)
		if err != nil {
			return value.NOOB, err
		}
		out = append(out, v.Display()...)
	}
	return value.NewYarn(string(out)), nil
}
