package interp

import (
	"io"

	"repro/internal/backend"
)

// The per-PE output and shared-stdin multiplexers are shared by every
// execution backend; they live in internal/backend and are aliased here
// for the package's historical callers.
type (
	Output       = backend.Output
	PEWriter     = backend.PEWriter
	SharedReader = backend.SharedReader
)

// NewOutput wraps w. When grouped is true, writes are buffered per PE.
func NewOutput(w io.Writer, grouped bool, np int) *Output {
	return backend.NewOutput(w, grouped, np, 0)
}

// NewSharedReader wraps r; nil reads as empty input.
func NewSharedReader(r io.Reader) *SharedReader {
	return backend.NewSharedReader(r)
}
