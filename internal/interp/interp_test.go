package interp

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/sema"
)

// run executes src at np=1 (unless overridden) and returns stdout.
func run(t *testing.T, src string, np int) string {
	t.Helper()
	out, err := tryRun(src, np, "")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func tryRun(src string, np int, stdin string) (string, error) {
	tree, err := parser.Parse("t.lol", src)
	if err != nil {
		return "", err
	}
	info, err := sema.Check(tree)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	_, err = Run(info, Config{
		NP:          np,
		Seed:        5,
		Stdout:      &out,
		Stdin:       strings.NewReader(stdin),
		GroupOutput: true,
	})
	return out.String(), err
}

func TestFunctionsReturnPaths(t *testing.T) {
	// FOUND YR returns a value; GTFO returns NOOB; falling off returns IT.
	src := `HAI 1.2
HOW IZ I found YR n
  FOUND YR SUM OF n AN 1
IF U SAY SO
HOW IZ I bail
  GTFO
  VISIBLE "unreachable"
IF U SAY SO
HOW IZ I fall
  PRODUKT OF 6 AN 7
IF U SAY SO
VISIBLE I IZ found YR 1 MKAY
VISIBLE I IZ bail MKAY
VISIBLE I IZ fall MKAY
KTHXBYE`
	want := "2\nNOOB\n42\n"
	if got := run(t, src, 1); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestRecursion(t *testing.T) {
	src := `HAI 1.2
HOW IZ I fib YR n
  SMALLR n AN 2, O RLY?
  YA RLY
    FOUND YR n
  OIC
  FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY AN I IZ fib YR DIFF OF n AN 2 MKAY
IF U SAY SO
VISIBLE I IZ fib YR 10 MKAY
KTHXBYE`
	if got := run(t, src, 1); got != "55\n" {
		t.Errorf("fib(10) = %q, want 55", got)
	}
}

func TestRunawayRecursionDiagnosed(t *testing.T) {
	src := `HAI 1.2
HOW IZ I forever YR n
  FOUND YR I IZ forever YR n MKAY
IF U SAY SO
VISIBLE I IZ forever YR 1 MKAY
KTHXBYE`
	_, err := tryRun(src, 1, "")
	if err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Errorf("want call-depth diagnostic, got %v", err)
	}
}

func TestFunctionScopeIsIsolated(t *testing.T) {
	// Functions see only their params and locals, not main's variables.
	src := `HAI 1.2
I HAS A x ITZ 99
HOW IZ I peek
  FOUND YR x
IF U SAY SO
VISIBLE I IZ peek MKAY
KTHXBYE`
	tree, err := parser.Parse("t.lol", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sema.Check(tree); err == nil {
		t.Fatal("function referencing main's variable should fail sema")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	src := `HAI 1.2
I HAS A color ITZ "R"
color, WTF?
OMG "R"
  VISIBLE "RED"
OMG "Y"
  VISIBLE "YELLOW"
  GTFO
OMG "G"
  VISIBLE "GREEN"
OMGWTF
  VISIBLE "BEIGE"
OIC
KTHXBYE`
	// "R" matches, falls into "Y", GTFO stops before "G"; default skipped.
	if got := run(t, src, 1); got != "RED\nYELLOW\n" {
		t.Errorf("got %q", got)
	}
}

func TestSwitchFallsOffLastCase(t *testing.T) {
	src := `HAI 1.2
I HAS A x ITZ 2
x, WTF?
OMG 1
  VISIBLE "one"
OMG 2
  VISIBLE "two"
OIC
VISIBLE "after"
KTHXBYE`
	if got := run(t, src, 1); got != "two\nafter\n" {
		t.Errorf("got %q", got)
	}
}

func TestNestedLoopsAndGtfo(t *testing.T) {
	src := `HAI 1.2
IM IN YR outer UPPIN YR i TIL BOTH SAEM i AN 3
  IM IN YR inner UPPIN YR j TIL BOTH SAEM j AN 10
    BOTH SAEM j AN 2, O RLY?
    YA RLY
      GTFO
    OIC
    VISIBLE SMOOSH i AN "-" AN j MKAY
  IM OUTTA YR inner
IM OUTTA YR outer
KTHXBYE`
	want := "0-0\n0-1\n1-0\n1-1\n2-0\n2-1\n"
	if got := run(t, src, 1); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestLoopCounterResetsPerLoop(t *testing.T) {
	// The paper's n-body reuses i across sequential loops, relying on the
	// counter resetting to 0 at each loop entry.
	src := `HAI 1.2
IM IN YR a UPPIN YR i TIL BOTH SAEM i AN 2
  VISIBLE i
IM OUTTA YR a
IM IN YR b UPPIN YR i TIL BOTH SAEM i AN 2
  VISIBLE i
IM OUTTA YR b
KTHXBYE`
	if got := run(t, src, 1); got != "0\n1\n0\n1\n" {
		t.Errorf("got %q", got)
	}
}

func TestDeclaredLoopVarVisibleAfterLoop(t *testing.T) {
	src := `HAI 1.2
I HAS A i ITZ 99
IM IN YR a UPPIN YR i TIL BOTH SAEM i AN 3
  VISIBLE "x"
IM OUTTA YR a
VISIBLE i
KTHXBYE`
	// A declared counter keeps its final value after the loop (3 here).
	if got := run(t, src, 1); got != "x\nx\nx\n3\n" {
		t.Errorf("got %q", got)
	}
}

func TestWileLoop(t *testing.T) {
	src := `HAI 1.2
I HAS A n ITZ 0
IM IN YR w UPPIN YR i WILE SMALLR i AN 4
  n R SUM OF n AN 10
IM OUTTA YR w
VISIBLE n
KTHXBYE`
	if got := run(t, src, 1); got != "40\n" {
		t.Errorf("got %q", got)
	}
}

func TestInfiniteLoopWithGtfo(t *testing.T) {
	src := `HAI 1.2
I HAS A n ITZ 0
IM IN YR forever
  n R SUM OF n AN 1
  BOTH SAEM n AN 5, O RLY?
  YA RLY
    GTFO
  OIC
IM OUTTA YR forever
VISIBLE n
KTHXBYE`
	if got := run(t, src, 1); got != "5\n" {
		t.Errorf("got %q", got)
	}
}

func TestItThreadsThroughConditionals(t *testing.T) {
	src := `HAI 1.2
SUM OF 1 AN 1
BOTH SAEM IT AN 2, O RLY?
YA RLY
  VISIBLE "two"
OIC
KTHXBYE`
	if got := run(t, src, 1); got != "two\n" {
		t.Errorf("got %q", got)
	}
}

func TestMebbeSetsIt(t *testing.T) {
	src := `HAI 1.2
FAIL, O RLY?
YA RLY
  VISIBLE "no"
MEBBE "truthy string"
  VISIBLE IT
OIC
KTHXBYE`
	if got := run(t, src, 1); got != "truthy string\n" {
		t.Errorf("got %q", got)
	}
}

func TestStaticTypingCastsOnAssign(t *testing.T) {
	src := `HAI 1.2
I HAS A x ITZ SRSLY A NUMBR
x R 3.99
VISIBLE x
x R "12"
VISIBLE x
KTHXBYE`
	if got := run(t, src, 1); got != "3\n12\n" {
		t.Errorf("got %q", got)
	}
}

func TestStaticTypingRejectsBadCast(t *testing.T) {
	src := `HAI 1.2
I HAS A x ITZ SRSLY A NUMBR
x R "kitteh"
KTHXBYE`
	_, err := tryRun(src, 1, "")
	if err == nil || !strings.Contains(err.Error(), "SRSLY") {
		t.Errorf("want static-cast failure, got %v", err)
	}
}

func TestYarnInterpolationReadsScope(t *testing.T) {
	src := `HAI 1.2
I HAS A name ITZ "CEILING CAT"
VISIBLE "O HAI :{name}!"
KTHXBYE`
	if got := run(t, src, 1); got != "O HAI CEILING CAT!\n" {
		t.Errorf("got %q", got)
	}
}

func TestSrsDynamicAccess(t *testing.T) {
	src := `HAI 1.2
I HAS A cheez ITZ 1
I HAS A burger ITZ 2
I HAS A which ITZ "cheez"
VISIBLE SRS which
SRS which R 10
VISIBLE cheez
KTHXBYE`
	if got := run(t, src, 1); got != "1\n10\n" {
		t.Errorf("got %q", got)
	}
}

func TestSrsUnknownNameDiagnosed(t *testing.T) {
	src := `HAI 1.2
I HAS A which ITZ "nope"
VISIBLE SRS which
KTHXBYE`
	_, err := tryRun(src, 1, "")
	if err == nil || !strings.Contains(err.Error(), "no such variable") {
		t.Errorf("want SRS diagnostic, got %v", err)
	}
}

func TestGimmehReadsLines(t *testing.T) {
	src := `HAI 1.2
I HAS A a
I HAS A b
GIMMEH a
GIMMEH b
VISIBLE b a
KTHXBYE`
	out, err := tryRun(src, 1, "first\nsecond\n")
	if err != nil {
		t.Fatal(err)
	}
	if out != "secondfirst\n" {
		t.Errorf("got %q", out)
	}
}

func TestVisibleBangSuppressesNewline(t *testing.T) {
	src := "HAI 1.2\nVISIBLE \"a\" !\nVISIBLE \"b\"\nKTHXBYE"
	if got := run(t, src, 1); got != "ab\n" {
		t.Errorf("got %q", got)
	}
}

func TestInvisibleRoutesToStderr(t *testing.T) {
	tree, err := parser.Parse("t.lol", "HAI 1.2\nINVISIBLE \"warn\"\nVISIBLE \"out\"\nKTHXBYE")
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if _, err := Run(info, Config{NP: 1, Stdout: &out, Stderr: &errw}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "out\n" {
		t.Errorf("stdout = %q", out.String())
	}
	if errw.String() != "warn\n" {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestIsNowA(t *testing.T) {
	src := `HAI 1.2
I HAS A x ITZ "5"
x IS NOW A NUMBR
VISIBLE SUM OF x AN 5
x IS NOW A YARN
VISIBLE SMOOSH x AN "!" MKAY
KTHXBYE`
	// The SUM assigns IT, not x, so x is still 5 when recast to YARN.
	if got := run(t, src, 1); got != "10\n5!\n" {
		t.Errorf("got %q", got)
	}
}

func TestArrayOutOfBoundsDiagnosed(t *testing.T) {
	src := `HAI 1.2
I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 4
VISIBLE a'Z 4
KTHXBYE`
	_, err := tryRun(src, 1, "")
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("want index diagnostic, got %v", err)
	}
}

func TestDynamicArraySize(t *testing.T) {
	// "dynamically sized" arrays: THAR IZ takes any expression.
	src := `HAI 1.2
I HAS A n ITZ 3
I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ PRODUKT OF n AN 2
a'Z 5 R 42
VISIBLE a'Z 5
KTHXBYE`
	if got := run(t, src, 1); got != "42\n" {
		t.Errorf("got %q", got)
	}
}

func TestTxtTargetOutOfRangeDiagnosed(t *testing.T) {
	src := `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
TXT MAH BFF 7, MAH x R UR x
KTHXBYE`
	_, err := tryRun(src, 2, "")
	if err == nil || !strings.Contains(err.Error(), "no such friend") {
		t.Errorf("want range diagnostic, got %v", err)
	}
}

func TestNestedPredicationInnermostWins(t *testing.T) {
	src := `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
x R PRODUKT OF ME AN 10
HUGZ
I HAS A got ITZ A NUMBR
TXT MAH BFF 1 AN STUFF
  TXT MAH BFF 2, got R UR x
TTYL
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE got
OIC
KTHXBYE`
	if got := run(t, src, 3); got != "20\n" {
		t.Errorf("nested predication read %q, want PE 2's value 20", got)
	}
}

func TestLockReleaseWithoutHoldFromLolcode(t *testing.T) {
	src := `HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
DUN MESIN WIF x
KTHXBYE`
	_, err := tryRun(src, 1, "")
	if err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Errorf("want lock diagnostic, got %v", err)
	}
}

func TestAsymmetricAllocFromLolcode(t *testing.T) {
	// A PE-dependent symmetric size is the classic SPMD bug; the runtime
	// must catch it rather than silently diverge.
	src := `HAI 1.2
WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ SUM OF ME AN 4
KTHXBYE`
	_, err := tryRun(src, 2, "")
	if err == nil || !strings.Contains(err.Error(), "asymmetric") {
		t.Errorf("want asymmetric-allocation diagnostic, got %v", err)
	}
}

func TestWhatevrDeterministicPerSeed(t *testing.T) {
	src := `HAI 1.2
VISIBLE WHATEVR
VISIBLE WHATEVAR
KTHXBYE`
	a := run(t, src, 1)
	b := run(t, src, 1)
	if a != b {
		t.Errorf("same seed produced different randomness: %q vs %q", a, b)
	}
}

func TestDivisionByZeroDiagnosed(t *testing.T) {
	_, err := tryRun("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE", 1, "")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division diagnostic, got %v", err)
	}
}

func TestRuntimeErrorCarriesPosition(t *testing.T) {
	_, err := tryRun("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE", 1, "")
	if err == nil || !strings.Contains(err.Error(), "t.lol:2:") {
		t.Errorf("error should carry source position, got %v", err)
	}
}
