package interp

import (
	"strings"
	"sync"
	"testing"
)

func TestOutputGroupedOrdersByPE(t *testing.T) {
	var sink strings.Builder
	out := NewOutput(&sink, true, 3)
	var wg sync.WaitGroup
	// PEs write interleaved; grouped output must still emit in rank order.
	for pe := 0; pe < 3; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			w := out.ForPE(pe)
			w.WriteString(strings.Repeat(string(rune('a'+pe)), 2))
			w.WriteString("\n")
		}(pe)
	}
	wg.Wait()
	out.Flush()
	if got, want := sink.String(), "aa\nbb\ncc\n"; got != want {
		t.Errorf("grouped output = %q, want %q", got, want)
	}
}

func TestOutputLiveWritesThrough(t *testing.T) {
	var sink strings.Builder
	out := NewOutput(&sink, false, 2)
	out.ForPE(1).WriteString("hi")
	if sink.String() != "hi" {
		t.Errorf("live output did not write through: %q", sink.String())
	}
	out.Flush() // no-op for live mode
	if sink.String() != "hi" {
		t.Errorf("flush changed live output: %q", sink.String())
	}
}

func TestOutputNilWriterDiscards(t *testing.T) {
	out := NewOutput(nil, false, 1)
	out.ForPE(0).WriteString("dropped") // must not panic
	grouped := NewOutput(nil, true, 1)
	grouped.ForPE(0).WriteString("dropped")
	grouped.Flush()
}

func TestSharedReaderHandsOutLines(t *testing.T) {
	r := NewSharedReader(strings.NewReader("one\ntwo\n"))
	a, ok := r.Line()
	if !ok || a != "one" {
		t.Fatalf("first line = %q, %v", a, ok)
	}
	b, ok := r.Line()
	if !ok || b != "two" {
		t.Fatalf("second line = %q, %v", b, ok)
	}
	if _, ok := r.Line(); ok {
		t.Fatal("expected EOF")
	}
}

func TestSharedReaderNilIsEmpty(t *testing.T) {
	r := NewSharedReader(nil)
	if _, ok := r.Line(); ok {
		t.Fatal("nil reader should be empty")
	}
}
