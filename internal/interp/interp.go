// Package interp is the tree-walking interpreter backend: it executes a
// semantically checked parallel-LOLCODE program directly over the shmem
// SPMD runtime, one evaluator per PE.
//
// The paper argues a compiler is "more flexible and efficient than an
// interpreter"; this backend is the baseline side of that comparison (see
// internal/compile for the compiled backend and the E1 experiment).
package interp

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/sema"
	"repro/internal/shmem"
	"repro/internal/token"
	"repro/internal/value"
)

// Config, Result and RuntimeError are shared by every execution backend;
// they live in internal/backend and are aliased here for the package's
// historical callers.
type (
	Config       = backend.Config
	Result       = backend.Result
	RuntimeError = backend.RuntimeError
)

// engine implements backend.Backend.
type engine struct{}

func (engine) Name() string { return "interp" }

func (engine) Run(info *sema.Info, cfg Config) (*Result, error) { return Run(info, cfg) }

func init() { backend.Register(engine{}) }

func rerr(pos token.Pos, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*RuntimeError); ok {
		return err
	}
	return &RuntimeError{Pos: pos, Err: err}
}

func rerrf(pos token.Pos, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Err: fmt.Errorf(format, args...)}
}

// Run executes the checked program under cfg and returns run statistics.
func Run(info *sema.Info, cfg Config) (*Result, error) {
	if cfg.NP <= 0 {
		cfg.NP = 1
	}
	world, err := NewWorld(info, cfg)
	if err != nil {
		return nil, err
	}
	return RunWorld(info, cfg, world)
}

// NewWorld builds the shmem world implied by the program's symmetric
// symbols; exposed so benchmarks can reuse worlds and inspect models.
func NewWorld(info *sema.Info, cfg Config) (*shmem.World, error) {
	return backend.NewWorld(info, cfg)
}

// RunWorld executes the program on an existing world.
func RunWorld(info *sema.Info, cfg Config, world *shmem.World) (*Result, error) {
	return backend.RunSPMD(cfg, world, func(pe *shmem.PE, io backend.PEIO) error {
		ev := &evaluator{
			info:  info,
			pe:    pe,
			out:   io.Out,
			errw:  io.Err,
			stdin: io.Stdin,
			meter: backend.NewMeter(&cfg),
		}
		ev.frame = newFrame(len(info.Main.Order))
		return ev.execBlock(info.Prog.Body)
	})
}

// frame is one activation record: a value per symbol slot. Arrays are
// values of kind ArrayK; shared symbols keep their storage in the shmem
// heap and leave their slot unused.
type frame struct {
	slots []value.Value
}

func newFrame(n int) *frame { return &frame{slots: make([]value.Value, n)} }

// ctrl is the statement-level control-flow signal.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlReturn
)

// evaluator runs one PE's program.
type evaluator struct {
	info  *sema.Info
	pe    *shmem.PE
	frame *frame
	out   *PEWriter
	errw  *PEWriter
	stdin *SharedReader

	// scope tracks the active name table for SRS and :{var} lookups.
	scope *sema.Scope

	// pred is the TXT MAH BFF predication stack of target PE ids.
	pred []int

	// retval carries the FOUND YR value while ctrlReturn unwinds.
	retval value.Value

	// meter enforces the run's deadline and step budget; one interpreter
	// step is one executed statement (plus one per loop iteration, so an
	// empty-bodied loop still meters).
	meter backend.Meter

	callDepth int
}

const maxCallDepth = 10_000

func (ev *evaluator) curScope() *sema.Scope {
	if ev.scope != nil {
		return ev.scope
	}
	return ev.info.Main
}

// predTarget returns the active predication target.
func (ev *evaluator) predTarget(pos token.Pos) (int, error) {
	if len(ev.pred) == 0 {
		return 0, rerrf(pos, "UR used outside of TXT MAH BFF predication")
	}
	return ev.pred[len(ev.pred)-1], nil
}

func (ev *evaluator) execBlock(ss []ast.Stmt) error {
	for _, s := range ss {
		c, err := ev.exec(s)
		if err != nil {
			return err
		}
		if c != ctrlNone {
			return rerrf(s.Pos(), "GTFO or FOUND YR escaped its enclosing construct")
		}
	}
	return nil
}

// execStmts runs statements, propagating control signals to the caller.
func (ev *evaluator) execStmts(ss []ast.Stmt) (ctrl, error) {
	for _, s := range ss {
		c, err := ev.exec(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (ev *evaluator) exec(s ast.Stmt) (ctrl, error) {
	if err := ev.meter.Step(); err != nil {
		return ctrlNone, rerr(s.Pos(), err)
	}
	switch n := s.(type) {
	case *ast.Decl:
		return ctrlNone, ev.execDecl(n)
	case *ast.Assign:
		v, err := ev.eval(n.Value)
		if err != nil {
			return ctrlNone, err
		}
		return ctrlNone, ev.assign(n.Target, v)
	case *ast.CastStmt:
		return ctrlNone, ev.execCast(n)
	case *ast.Visible:
		return ctrlNone, ev.execVisible(n)
	case *ast.Gimmeh:
		line, _ := ev.stdin.Line()
		return ctrlNone, ev.assign(n.Target, value.NewYarn(line))
	case *ast.ExprStmt:
		v, err := ev.eval(n.X)
		if err != nil {
			return ctrlNone, err
		}
		ev.setIT(v)
		return ctrlNone, nil
	case *ast.If:
		return ev.execIf(n)
	case *ast.Switch:
		return ev.execSwitch(n)
	case *ast.Loop:
		return ev.execLoop(n)
	case *ast.Gtfo:
		if ev.callDepth > 0 {
			// Inside a function GTFO may be a bare return; the loop/switch
			// handlers intercept ctrlBreak first, so break semantics win
			// when applicable.
			return ctrlBreak, nil
		}
		return ctrlBreak, nil
	case *ast.FoundYr:
		v, err := ev.eval(n.X)
		if err != nil {
			return ctrlNone, err
		}
		ev.retval = v
		return ctrlReturn, nil
	case *ast.FuncDecl:
		return ctrlNone, nil // hoisted; nothing to execute
	case *ast.Barrier:
		return ctrlNone, rerr(n.Position, ev.pe.Barrier())
	case *ast.Lock:
		return ctrlNone, ev.execLock(n)
	case *ast.TxtStmt:
		target, err := ev.evalPE(n.Target)
		if err != nil {
			return ctrlNone, err
		}
		ev.pred = append(ev.pred, target)
		c, err := ev.exec(n.Stmt)
		ev.pred = ev.pred[:len(ev.pred)-1]
		return c, err
	case *ast.TxtBlock:
		target, err := ev.evalPE(n.Target)
		if err != nil {
			return ctrlNone, err
		}
		ev.pred = append(ev.pred, target)
		c, err := ev.execStmts(n.Body)
		ev.pred = ev.pred[:len(ev.pred)-1]
		return c, err
	}
	return ctrlNone, rerrf(s.Pos(), "interp: unhandled statement %T", s)
}

func (ev *evaluator) execDecl(n *ast.Decl) error {
	sym, _ := n.Sym.(*sema.Symbol)
	if sym == nil {
		return rerrf(n.Position, "undeclared symbol %s survived sema", n.Name)
	}

	if n.IsArray {
		sizeV, err := ev.eval(n.Size)
		if err != nil {
			return err
		}
		size64, err := sizeV.ToNumbr()
		if err != nil {
			return rerr(n.Position, fmt.Errorf("array size of %s: %w", n.Name, err))
		}
		if size64 < 0 {
			return rerrf(n.Position, "array size of %s is negative (%d)", n.Name, size64)
		}
		if sym.Kind == sema.SymShared {
			return rerr(n.Position, ev.pe.AllocArray(sym.Heap, int(size64)))
		}
		arr, err := value.NewArrayOf(n.Type, int(size64))
		if err != nil {
			return rerr(n.Position, err)
		}
		ev.frame.slots[sym.Slot] = value.NewArray(arr)
		return nil
	}

	init := value.NOOB
	if n.Typed {
		z, err := value.Cast(value.NOOB, n.Type)
		if err != nil {
			return rerr(n.Position, err)
		}
		init = z
	}
	if n.Init != nil {
		v, err := ev.eval(n.Init)
		if err != nil {
			return err
		}
		init = v
		if sym.Static {
			cv, err := value.Cast(v, sym.Type)
			if err != nil {
				return rerr(n.Position, fmt.Errorf("initializing SRSLY %s %s: %w", sym.Type, n.Name, err))
			}
			init = cv
		}
	}
	if sym.Kind == sema.SymShared {
		return rerr(n.Position, ev.pe.InitScalar(sym.Heap, init))
	}
	ev.frame.slots[sym.Slot] = init
	return nil
}

func (ev *evaluator) execCast(n *ast.CastStmt) error {
	cur, err := ev.readTarget(n.Target)
	if err != nil {
		return err
	}
	cv, err := value.Cast(cur, n.Type)
	if err != nil {
		return rerr(n.Position, err)
	}
	return ev.assign(n.Target, cv)
}

func (ev *evaluator) execVisible(n *ast.Visible) error {
	var b strings.Builder
	for _, a := range n.Args {
		v, err := ev.eval(a)
		if err != nil {
			return err
		}
		b.WriteString(v.Display())
	}
	if !n.NoNewline {
		b.WriteByte('\n')
	}
	if n.Invisible {
		ev.errw.WriteString(b.String())
	} else {
		ev.out.WriteString(b.String())
	}
	return nil
}

func (ev *evaluator) execIf(n *ast.If) (ctrl, error) {
	it := ev.getIT()
	if it.ToTroof() {
		return ev.execStmts(n.Then)
	}
	for _, m := range n.Mebbes {
		v, err := ev.eval(m.Cond)
		if err != nil {
			return ctrlNone, err
		}
		ev.setIT(v)
		if v.ToTroof() {
			return ev.execStmts(m.Body)
		}
	}
	if n.Else != nil {
		return ev.execStmts(n.Else)
	}
	return ctrlNone, nil
}

func (ev *evaluator) execSwitch(n *ast.Switch) (ctrl, error) {
	it := ev.getIT()
	start := -1
	for i, cs := range n.Cases {
		lit, err := ev.eval(cs.Lit)
		if err != nil {
			return ctrlNone, err
		}
		if value.Equal(it, lit) {
			start = i
			break
		}
	}
	runDefault := start < 0
	if start >= 0 {
		// LOLCODE cases fall through to subsequent OMG bodies until GTFO.
		for i := start; i < len(n.Cases); i++ {
			c, err := ev.execStmts(n.Cases[i].Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
		}
		runDefault = false // fell off the last case
	}
	if runDefault && n.Default != nil {
		c, err := ev.execStmts(n.Default)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			return ctrlNone, nil
		}
		return c, nil
	}
	return ctrlNone, nil
}

func (ev *evaluator) execLoop(n *ast.Loop) (ctrl, error) {
	var sym *sema.Symbol
	var saved value.Value
	if n.Var != "" {
		sym, _ = n.Sym.(*sema.Symbol)
		if sym == nil {
			return ctrlNone, rerrf(n.Position, "loop variable %s not resolved", n.Var)
		}
		saved = ev.frame.slots[sym.Slot]
		// The loop counter always starts at 0 (lci semantics; the paper's
		// n-body reuses `i` across several loops relying on this reset).
		ev.frame.slots[sym.Slot] = value.NewNumbr(0)
		defer func() {
			if sym.Kind == sema.SymLoopVar {
				ev.frame.slots[sym.Slot] = saved
			}
		}()
	}

	// Body statements meter themselves in exec; only an empty body needs a
	// back-edge tick so a degenerate spin loop still hits the budget.
	meterEdge := len(n.Body) == 0
	for iter := 0; ; iter++ {
		if meterEdge {
			if err := ev.meter.Step(); err != nil {
				return ctrlNone, rerr(n.Position, err)
			}
		}
		if n.Cond != nil {
			cv, err := ev.eval(n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			stop := cv.ToTroof()
			if n.CondKind == ast.CondWile {
				stop = !stop
			}
			if stop {
				return ctrlNone, nil
			}
		}
		c, err := ev.execStmts(n.Body)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			return ctrlNone, nil
		}
		if c == ctrlReturn {
			return c, nil
		}
		if sym != nil {
			cur, err := ev.frame.slots[sym.Slot].ToNumbr()
			if err != nil {
				return ctrlNone, rerr(n.Position, fmt.Errorf("loop variable %s: %w", n.Var, err))
			}
			if n.Op == ast.LoopNerfin {
				cur--
			} else {
				cur++
			}
			ev.frame.slots[sym.Slot] = value.NewNumbr(cur)
		}
	}
}

func (ev *evaluator) execLock(n *ast.Lock) error {
	sym := ev.symbolFor(n.Var)
	if sym == nil || sym.Lock < 0 {
		return rerrf(n.Position, "%v: %s has no lock", n.Action, n.Var.Name)
	}
	switch n.Action {
	case ast.LockAcquire:
		if err := ev.pe.SetLock(sym.Lock); err != nil {
			return rerr(n.Position, err)
		}
		ev.setIT(value.NewTroof(true))
	case ast.LockTry:
		ok, err := ev.pe.TestLock(sym.Lock)
		if err != nil {
			return rerr(n.Position, err)
		}
		ev.setIT(value.NewTroof(ok))
	case ast.LockRelease:
		if err := ev.pe.ClearLock(sym.Lock); err != nil {
			return rerr(n.Position, err)
		}
	}
	return nil
}

// call invokes a HOW IZ I function.
func (ev *evaluator) call(n *ast.Call) (value.Value, error) {
	fi := ev.info.Funcs[n.Name]
	if fi == nil {
		return value.NOOB, rerrf(n.Position, "I IZ %s: no such function", n.Name)
	}
	if ev.callDepth >= maxCallDepth {
		return value.NOOB, rerrf(n.Position, "I IZ %s: call depth exceeds %d (runaway recursion?)", n.Name, maxCallDepth)
	}
	args := make([]value.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ev.eval(a)
		if err != nil {
			return value.NOOB, err
		}
		args[i] = v
	}

	savedFrame, savedScope := ev.frame, ev.scope
	ev.frame = newFrame(len(fi.Scope.Order))
	ev.scope = fi.Scope
	ev.callDepth++
	// Slot 0 is IT; parameters follow in declaration order.
	for i := range args {
		ev.frame.slots[i+1] = args[i]
	}

	c, err := ev.execStmts(fi.Decl.Body)
	ret := value.NOOB
	switch {
	case err != nil:
	case c == ctrlReturn:
		ret = ev.retval
	case c == ctrlBreak:
		ret = value.NOOB // GTFO from a function returns NOOB
	default:
		ret = ev.getIT() // falling off the end returns IT
	}

	ev.callDepth--
	ev.frame, ev.scope = savedFrame, savedScope
	return ret, err
}

func (ev *evaluator) lookup(name string) *sema.Symbol {
	return ev.curScope().Names[name]
}

func (ev *evaluator) setIT(v value.Value) { ev.frame.slots[0] = v }
func (ev *evaluator) getIT() value.Value  { return ev.frame.slots[0] }
