package gogen

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/value"
)

func opGoName(op value.BinOp) string {
	switch op {
	case value.OpSum:
		return "value.OpSum"
	case value.OpDiff:
		return "value.OpDiff"
	case value.OpProdukt:
		return "value.OpProdukt"
	case value.OpQuoshunt:
		return "value.OpQuoshunt"
	case value.OpMod:
		return "value.OpMod"
	case value.OpBiggrOf:
		return "value.OpBiggrOf"
	case value.OpSmallrOf:
		return "value.OpSmallrOf"
	case value.OpBigger:
		return "value.OpBigger"
	case value.OpSmallr:
		return "value.OpSmallr"
	case value.OpBothSaem:
		return "value.OpBothSaem"
	case value.OpDiffrint:
		return "value.OpDiffrint"
	case value.OpBothOf:
		return "value.OpBothOf"
	case value.OpEitherOf:
		return "value.OpEitherOf"
	case value.OpWonOf:
		return "value.OpWonOf"
	}
	return fmt.Sprintf("value.BinOp(%d)", int(op))
}

func unOpGoName(op value.UnOp) string {
	switch op {
	case value.OpNot:
		return "value.OpNot"
	case value.OpSquar:
		return "value.OpSquar"
	case value.OpUnsquar:
		return "value.OpUnsquar"
	case value.OpFlip:
		return "value.OpFlip"
	}
	return fmt.Sprintf("value.UnOp(%d)", int(op))
}

// expr emits evaluation code for e and returns a Go expression (usually a
// temp variable) holding the value.Value result.
func (g *gen) expr(e ast.Expr) (string, error) {
	switch n := e.(type) {
	case *ast.NumbrLit:
		return fmt.Sprintf("value.NewNumbr(%d)", n.Value), nil

	case *ast.NumbarLit:
		return fmt.Sprintf("value.NewNumbar(%g)", n.Value), nil

	case *ast.TroofLit:
		return fmt.Sprintf("value.NewTroof(%v)", n.Value), nil

	case *ast.NoobLit:
		return "value.NOOB", nil

	case *ast.YarnLit:
		return g.yarn(n)

	case *ast.VarRef:
		return g.readVar(n)

	case *ast.Index:
		return g.readIndex(n)

	case *ast.BinExpr:
		if code, ok, err := g.tryRawBox(n); ok || err != nil {
			return code, err
		}
		return g.binExpr(n)

	case *ast.UnExpr:
		if code, ok, err := g.tryRawBox(n); ok || err != nil {
			return code, err
		}
		x, err := g.expr(n.X)
		if err != nil {
			return "", err
		}
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.Unary(%s, %s)", t, errV, unOpGoName(n.Op), x)
		g.failErr(errV)
		return t, nil

	case *ast.NaryExpr:
		return g.naryExpr(n)

	case *ast.CastExpr:
		x, err := g.expr(n.X)
		if err != nil {
			return "", err
		}
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.Cast(%s, value.%s)", t, errV, x, kindName(n.Type))
		g.failErr(errV)
		return t, nil

	case *ast.Call:
		args := make([]string, 0, len(n.Args)+2)
		args = append(args, "pe", "peio")
		for _, a := range n.Args {
			v, err := g.expr(a)
			if err != nil {
				return "", err
			}
			args = append(args, v)
		}
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := fn_%s(%s)", t, errV, sanitize(n.Name), strings.Join(args, ", "))
		g.failErr(errV)
		return t, nil

	case *ast.Srs:
		return "", fmt.Errorf(
			"gogen: %s: SRS resolves identifiers at runtime and cannot be lowered to static Go variables; use the interp or compile backend for SRS programs",
			n.Position)

	case *ast.Me:
		return "value.NewNumbr(int64(pe.ID()))", nil

	case *ast.MahFrenz:
		return "value.NewNumbr(int64(pe.NPEs()))", nil

	case *ast.Whatevr:
		return "value.NewNumbr(pe.Rand().Int63n(1 << 31))", nil

	case *ast.Whatevar:
		return "value.NewNumbar(pe.Rand().Float64())", nil
	}
	return "", fmt.Errorf("gogen: unhandled expression %T at %s", e, e.Pos())
}

func (g *gen) binExpr(n *ast.BinExpr) (string, error) {
	// BOTH OF / EITHER OF short-circuit like the other backends.
	if n.Op == value.OpBothOf || n.Op == value.OpEitherOf {
		t := g.tmp()
		g.w("var %s value.Value", t)
		x, err := g.expr(n.X)
		if err != nil {
			return "", err
		}
		stop := "!(%s).ToTroof()"
		short := "value.NewTroof(false)"
		if n.Op == value.OpEitherOf {
			stop = "(%s).ToTroof()"
			short = "value.NewTroof(true)"
		}
		g.w("if "+stop+" {", x)
		g.ind++
		g.w("%s = %s", t, short)
		g.ind--
		g.w("} else {")
		g.ind++
		y, err := g.expr(n.Y)
		if err != nil {
			return "", err
		}
		g.w("%s = value.NewTroof((%s).ToTroof())", t, y)
		g.ind--
		g.w("}")
		return t, nil
	}

	x, err := g.expr(n.X)
	if err != nil {
		return "", err
	}
	y, err := g.expr(n.Y)
	if err != nil {
		return "", err
	}
	t, errV := g.tmp(), g.tmp()
	g.w("%s, %s := value.Binary(%s, %s, %s)", t, errV, opGoName(n.Op), x, y)
	g.failErr(errV)
	return t, nil
}

func (g *gen) naryExpr(n *ast.NaryExpr) (string, error) {
	switch n.Op {
	case value.OpAllOf, value.OpAnyOf:
		// Short-circuit scan over the operands.
		t := g.tmp()
		label := g.label()
		isAll := n.Op == value.OpAllOf
		if isAll {
			g.w("%s := value.NewTroof(true)", t)
		} else {
			g.w("%s := value.NewTroof(false)", t)
		}
		g.w("%s:", label)
		g.w("for {")
		g.ind++
		for _, o := range n.Operands {
			v, err := g.expr(o)
			if err != nil {
				return "", err
			}
			if isAll {
				g.w("if !(%s).ToTroof() {", v)
				g.ind++
				g.w("%s = value.NewTroof(false)", t)
			} else {
				g.w("if (%s).ToTroof() {", v)
				g.ind++
				g.w("%s = value.NewTroof(true)", t)
			}
			g.w("break %s", label)
			g.ind--
			g.w("}")
		}
		g.w("break %s", label)
		g.ind--
		g.w("}")
		return t, nil
	default: // SMOOSH
		vs := make([]string, 0, len(n.Operands))
		for _, o := range n.Operands {
			v, err := g.expr(o)
			if err != nil {
				return "", err
			}
			vs = append(vs, v)
		}
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.Nary(value.OpSmoosh, []value.Value{%s})", t, errV, strings.Join(vs, ", "))
		g.failErr(errV)
		return t, nil
	}
}

// yarn emits a YARN literal; :{var} interpolations are resolved lexically
// at generation time (their names are static in the source).
func (g *gen) yarn(n *ast.YarnLit) (string, error) {
	if len(n.Segs) == 0 {
		return `value.NewYarn("")`, nil
	}
	if len(n.Segs) == 1 && n.Segs[0].Var == "" {
		return fmt.Sprintf("value.NewYarn(%q)", n.Segs[0].Text), nil
	}
	parts := make([]string, 0, len(n.Segs))
	for _, s := range n.Segs {
		if s.Var == "" {
			parts = append(parts, fmt.Sprintf("%q", s.Text))
			continue
		}
		v, err := g.readVar(&ast.VarRef{Position: n.Position, Name: s.Var})
		if err != nil {
			return "", err
		}
		parts = append(parts, fmt.Sprintf("(%s).Display()", v))
	}
	return fmt.Sprintf("value.NewYarn(%s)", strings.Join(parts, "+")), nil
}

// peOf returns the Go expression for the PE a reference addresses.
func (g *gen) peOf(n *ast.VarRef) (expr string, remote bool, err error) {
	if n.Space == ast.SpaceUr {
		t, err := g.predTarget(n.Position)
		if err != nil {
			return "", false, err
		}
		return t, true, nil
	}
	return "pe.ID()", false, nil
}

func (g *gen) readVar(n *ast.VarRef) (string, error) {
	sym, err := g.symFor(n)
	if err != nil {
		return "", err
	}
	if sym.Kind != sema.SymShared {
		switch g.reps[sym] {
		case repInt:
			return fmt.Sprintf("value.NewNumbr(%s)", goName(sym)), nil
		case repFloat:
			return fmt.Sprintf("value.NewNumbar(%s)", goName(sym)), nil
		}
		return goName(sym), nil
	}

	peExpr, remote, err := g.peOf(n)
	if err != nil {
		return "", err
	}
	if sym.IsArray {
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := pe.GetArray(%s, %s)", t, errV, peExpr, slotConst(sym))
		g.failErr(errV)
		return fmt.Sprintf("value.NewArray(%s)", t), nil
	}
	t, errV := g.tmp(), g.tmp()
	if remote {
		g.w("%s, %s := pe.Get(%s, %s)", t, errV, peExpr, slotConst(sym))
	} else {
		g.w("%s, %s := pe.LocalGet(%s)", t, errV, slotConst(sym))
	}
	g.failErr(errV)
	return t, nil
}

// indexExpr emits an array index as a raw int64 expression; statically
// numeric indexes skip the boxed ToNumbr round-trip.
func (g *gen) indexExpr(e ast.Expr) (string, error) {
	if k, ok := g.staticNumKind(e); ok {
		code, _, err := g.emitRaw(e)
		if err != nil {
			return "", err
		}
		return rawPromote(code, k, value.Numbr), nil
	}
	idx, err := g.expr(e)
	if err != nil {
		return "", err
	}
	idxT, idxE := g.tmp(), g.tmp()
	g.w("%s, %s := (%s).ToNumbr()", idxT, idxE, idx)
	g.failErr(idxE)
	return idxT, nil
}

func (g *gen) readIndex(n *ast.Index) (string, error) {
	sym, err := g.symFor(n.Arr)
	if err != nil {
		return "", err
	}
	idxT, err := g.indexExpr(n.IndexE)
	if err != nil {
		return "", err
	}

	if sym.Kind == sema.SymShared {
		peExpr, remote, err := g.peOf(n.Arr)
		if err != nil {
			return "", err
		}
		t, errV := g.tmp(), g.tmp()
		if remote {
			g.w("%s, %s := pe.GetElem(%s, %s, int(%s))", t, errV, peExpr, slotConst(sym), idxT)
			g.failErr(errV)
			return t, nil
		}
		g.w("%s, %s := pe.LocalGetElem(%s, int(%s))", t, errV, slotConst(sym), idxT)
		g.failErr(errV)
		return t, nil
	}

	t, errV := g.tmp(), g.tmp()
	g.w("if %s.Kind() != value.ArrayK {", goName(sym))
	g.ind++
	g.errReturnf(`fmt.Errorf("%s is not an array")`, n.Arr.Name)
	g.ind--
	g.w("}")
	g.w("%s, %s := %s.Array().GetChecked(int(%s))", t, errV, goName(sym), idxT)
	g.failErr(errV)
	return t, nil
}

// errReturnf emits a `return <error>` for the current context.
func (g *gen) errReturnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if g.inFunc {
		g.w("return value.NOOB, %s", msg)
	} else {
		g.w("return %s", msg)
	}
}

// load emits a read of an assignment target (for IS NOW A).
func (g *gen) load(target ast.Expr) (string, error) {
	switch n := target.(type) {
	case *ast.VarRef:
		return g.readVar(n)
	case *ast.Index:
		return g.readIndex(n)
	}
	return "", fmt.Errorf("gogen: %s: not a readable target", target.Pos())
}

// store emits an assignment of the Go expression v into target.
func (g *gen) store(target ast.Expr, v string) error {
	switch n := target.(type) {
	case *ast.VarRef:
		return g.storeVar(n, v)
	case *ast.Index:
		return g.storeIndex(n, v)
	case *ast.Srs:
		return fmt.Errorf("gogen: %s: SRS targets are not supported by the Go emitter", n.Position)
	}
	return fmt.Errorf("gogen: %s: cannot assign to this expression", target.Pos())
}

func (g *gen) storeVar(n *ast.VarRef, v string) error {
	sym, err := g.symFor(n)
	if err != nil {
		return err
	}
	if r := g.reps[sym]; r != repValue {
		// Unboxed target: cast to the static kind (the same Cast a boxed
		// store performs) and keep only the raw payload.
		want := value.Numbr
		if r == repFloat {
			want = value.Numbar
		}
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.Cast(%s, value.%s)", t, errV, v, kindName(want))
		g.failErr(errV)
		g.w("%s = %s", goName(sym), rawUnwrap(t, want))
		return nil
	}
	if sym.Static && !sym.IsArray {
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.Cast(%s, value.%s)", t, errV, v, kindName(sym.Type))
		g.failErr(errV)
		v = t
	}
	if sym.Kind == sema.SymShared {
		peExpr, _, err := g.peOf(n)
		if err != nil {
			return err
		}
		if sym.IsArray {
			g.w("if (%s).Kind() != value.ArrayK {", v)
			g.ind++
			g.errReturnf(`fmt.Errorf("cannot assign a non-array to array %s")`, n.Name)
			g.ind--
			g.w("}")
			e := g.tmp()
			g.w("if %s := pe.PutArray(%s, %s, (%s).Array()); %s != nil {", e, peExpr, slotConst(sym), v, e)
			g.ind++
			g.errReturnf("%s", e)
			g.ind--
			g.w("}")
			return nil
		}
		e := g.tmp()
		g.w("if %s := pe.Put(%s, %s, %s); %s != nil {", e, peExpr, slotConst(sym), v, e)
		g.ind++
		g.errReturnf("%s", e)
		g.ind--
		g.w("}")
		return nil
	}
	if sym.IsArray {
		vt := g.tmp()
		g.w("%s := %s", vt, v)
		g.w("if %s.Kind() == value.ArrayK && %s.Kind() == value.ArrayK {", vt, goName(sym))
		g.ind++
		e := g.tmp()
		g.w("if %s := %s.Array().CopyFrom(%s.Array()); %s != nil {", e, goName(sym), vt, e)
		g.ind++
		g.errReturnf("%s", e)
		g.ind--
		g.w("}")
		g.ind--
		g.w("} else {")
		g.ind++
		g.w("%s = %s", goName(sym), vt)
		g.ind--
		g.w("}")
		return nil
	}
	g.w("%s = %s", goName(sym), v)
	return nil
}

func (g *gen) storeIndex(n *ast.Index, v string) error {
	sym, err := g.symFor(n.Arr)
	if err != nil {
		return err
	}
	idxT, err := g.indexExpr(n.IndexE)
	if err != nil {
		return err
	}

	if sym.Kind == sema.SymShared {
		peExpr, remote, err := g.peOf(n.Arr)
		if err != nil {
			return err
		}
		if remote {
			e := g.tmp()
			g.w("if %s := pe.PutElem(%s, %s, int(%s), %s); %s != nil {", e, peExpr, slotConst(sym), idxT, v, e)
			g.ind++
			g.errReturnf("%s", e)
			g.ind--
			g.w("}")
			return nil
		}
		e := g.tmp()
		g.w("if %s := pe.LocalSetElem(%s, int(%s), %s); %s != nil {", e, slotConst(sym), idxT, v, e)
		g.ind++
		g.errReturnf("%s", e)
		g.ind--
		g.w("}")
		return nil
	}

	g.w("if %s.Kind() != value.ArrayK {", goName(sym))
	g.ind++
	g.errReturnf(`fmt.Errorf("%s is not an array")`, n.Arr.Name)
	g.ind--
	g.w("}")
	e := g.tmp()
	g.w("if %s := %s.Array().Set(int(%s), %s); %s != nil {", e, goName(sym), idxT, v, e)
	g.ind++
	g.errReturnf("%s", e)
	g.ind--
	g.w("}")
	return nil
}
