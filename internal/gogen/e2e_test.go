package gogen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

// TestGoRunMatchesInterp is the paper's §VI.E workflow end to end:
// lcc-emit programs to Go, build and run them with the host Go toolchain,
// and require the same output the interpreter produces (order-normalized:
// the compiled binary prints live, so PE interleaving is
// scheduler-dependent). The corpus covers the Figure 2 exchange, functions
// with recursion, and the odd-even transposition sort.
func TestGoRunMatchesInterp(t *testing.T) {
	if testing.Short() {
		t.Skip("go toolchain round trip is slow for -short")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		file string
		np   int
	}{
		{"fig2.lol", 4},
		{"funcs.lol", 1},
		{"sort.lol", 6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			lolPath := filepath.Join("..", "..", "testdata", tc.file)
			out := emitFile(t, lolPath)

			// The generated file imports repro/internal/..., so it must live
			// inside this module.
			genDir, err := os.MkdirTemp(moduleRoot, "gen-e2e-")
			if err != nil {
				t.Fatal(err)
			}
			defer os.RemoveAll(genDir)
			if err := os.WriteFile(filepath.Join(genDir, "main.go"), out, 0o644); err != nil {
				t.Fatal(err)
			}

			cmd := exec.Command(goTool, "run", "./"+filepath.Base(genDir),
				"-np", fmt.Sprint(tc.np), "-seed", "42")
			cmd.Dir = moduleRoot
			got, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run failed: %v\n%s", err, got)
			}

			prog, err := core.ParseFile(lolPath)
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if _, err := prog.Run(core.RunConfig{Config: interp.Config{
				NP: tc.np, Seed: 42, Stdout: &want, GroupOutput: true,
			}}); err != nil {
				t.Fatal(err)
			}

			if sortLines(string(got)) != sortLines(want.String()) {
				t.Errorf("toolchain output differs from interpreter:\ngo run:\n%s\ninterp:\n%s", got, want.String())
			}
		})
	}
}

func sortLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
