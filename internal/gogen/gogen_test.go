package gogen

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	lolparser "repro/internal/parser"
	"repro/internal/progen"
	"repro/internal/sema"
)

func emitFile(t *testing.T, path string) []byte {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lolparser.Parse(path, string(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	out, err := Emit(info)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	return out
}

// TestEmitTestdata lowers every testdata program to Go and checks the
// output is parseable Go (Emit already gofmts it; parsing again guards the
// invariant independently).
func TestEmitTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.lol"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			out := emitFile(t, f)
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, "gen.go", out, 0); err != nil {
				t.Fatalf("generated Go does not parse: %v\n%s", err, out)
			}
			src := string(out)
			for _, want := range []string{
				"package main",
				"child.Main(child.Spec{",
				"Body:",
				"func program(pe *shmem.PE, peio backend.PEIO) error",
			} {
				if !strings.Contains(src, want) {
					t.Errorf("generated source missing %q", want)
				}
			}
		})
	}
}

// TestEmitUsesSlotConstants checks the symmetric-heap layout surfaces as
// named constants (the Figure 1 layout must be readable in generated code).
func TestEmitUsesSlotConstants(t *testing.T) {
	out := string(emitFile(t, filepath.Join("..", "..", "testdata", "fig2.lol")))
	for _, want := range []string{"slot_a = 0", "slot_b = 1", "slot_c = 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("generated source missing heap constant %q", want)
		}
	}
}

// TestEmitRandomPrograms fuzzes the emitter with generator programs: every
// one must lower to parseable Go (Emit gofmts internally; parsing again is
// the independent check).
func TestEmitRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		src := progen.New(int64(seed)).Program(5)
		prog, err := lolparser.Parse("rand.lol", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		info, err := sema.Check(prog)
		if err != nil {
			t.Fatalf("seed %d: sema: %v", seed, err)
		}
		out, err := Emit(info)
		if err != nil {
			t.Fatalf("seed %d: emit: %v\n%s", seed, err, src)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "gen.go", out, 0); err != nil {
			t.Fatalf("seed %d: generated Go does not parse: %v", seed, err)
		}
	}
}

// TestEmitRejectsSrs documents the static-lowering limitation.
func TestEmitRejectsSrs(t *testing.T) {
	prog, err := lolparser.Parse("srs.lol", "HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE")
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(info); err == nil || !strings.Contains(err.Error(), "SRS") {
		t.Fatalf("want SRS rejection, got %v", err)
	}
}
