package gogen

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/value"
)

// capture runs f with a fresh buffer and returns what it emitted, restoring
// the outer buffer afterwards. Used to decide whether a label is referenced
// before committing to a labeled construct.
func (g *gen) capture(f func() error) (string, error) {
	saved := g.buf
	g.buf = strings.Builder{}
	err := f()
	out := g.buf.String()
	g.buf = saved
	return out, err
}

func (g *gen) stmts(ss []ast.Stmt) error {
	for _, s := range ss {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s ast.Stmt) error {
	switch n := s.(type) {
	case *ast.Decl:
		return g.decl(n)

	case *ast.Assign:
		// Unboxed targets take the raw RHS directly — the hot-loop form
		// `x R SUM OF x AN ...` compiles to one Go assignment.
		if t, ok := n.Target.(*ast.VarRef); ok {
			if sym, serr := g.symFor(t); serr == nil && g.reps[sym] != repValue {
				return g.storeRaw(sym, n.Value)
			}
		}
		v, err := g.expr(n.Value)
		if err != nil {
			return err
		}
		return g.store(n.Target, v)

	case *ast.CastStmt:
		cur, err := g.load(n.Target)
		if err != nil {
			return err
		}
		t, e := g.tmp(), g.tmp()
		g.w("%s, %s := value.Cast(%s, value.%s)", t, e, cur, kindName(n.Type))
		g.failErr(e)
		return g.store(n.Target, t)

	case *ast.Visible:
		parts := make([]string, 0, len(n.Args)+1)
		for _, a := range n.Args {
			v, err := g.expr(a)
			if err != nil {
				return err
			}
			parts = append(parts, fmt.Sprintf("(%s).Display()", v))
		}
		if !n.NoNewline {
			parts = append(parts, `"\n"`)
		}
		dst := "peio.Out"
		if n.Invisible {
			dst = "peio.Err"
		}
		g.w("%s.WriteString(%s)", dst, strings.Join(parts, "+"))
		return nil

	case *ast.Gimmeh:
		// Shared stdin: lines go to whichever PE asks first, the same
		// arbitration the in-process engines use. EOF reads as "".
		t := g.tmp()
		g.w("%s, _ := peio.Stdin.Line()", t)
		return g.store(n.Target, fmt.Sprintf("value.NewYarn(%s)", t))

	case *ast.ExprStmt:
		v, err := g.expr(n.X)
		if err != nil {
			return err
		}
		g.w("%s = %s", g.itName(), v)
		return nil

	case *ast.If:
		return g.ifStmt(n)

	case *ast.Switch:
		return g.switchStmt(n)

	case *ast.Loop:
		return g.loop(n)

	case *ast.Gtfo:
		if len(g.loops) > 0 {
			g.w("break %s", g.loops[len(g.loops)-1])
			return nil
		}
		if g.inFunc {
			g.w("return value.NOOB, nil // GTFO from a function returns NOOB")
			return nil
		}
		return fmt.Errorf("gogen: %s: GTFO outside loop, switch, or function", n.Position)

	case *ast.FoundYr:
		v, err := g.expr(n.X)
		if err != nil {
			return err
		}
		if !g.inFunc {
			return fmt.Errorf("gogen: %s: FOUND YR outside a function", n.Position)
		}
		g.w("return %s, nil", v)
		return nil

	case *ast.FuncDecl:
		return nil // emitted separately

	case *ast.Barrier:
		e := g.tmp()
		g.w("if %s := pe.Barrier(); %s != nil {", e, e)
		g.ind++
		if g.inFunc {
			g.w("return value.NOOB, %s", e)
		} else {
			g.w("return %s", e)
		}
		g.ind--
		g.w("}")
		return nil

	case *ast.Lock:
		return g.lock(n)

	case *ast.TxtStmt:
		t, err := g.peTarget(n.Target)
		if err != nil {
			return err
		}
		g.pred = append(g.pred, t)
		err = g.stmt(n.Stmt)
		g.pred = g.pred[:len(g.pred)-1]
		return err

	case *ast.TxtBlock:
		t, err := g.peTarget(n.Target)
		if err != nil {
			return err
		}
		g.pred = append(g.pred, t)
		err = g.stmts(n.Body)
		g.pred = g.pred[:len(g.pred)-1]
		return err
	}
	return fmt.Errorf("gogen: unhandled statement %T at %s", s, s.Pos())
}

func (g *gen) itName() string { return goName(g.scope.Order[0]) }

func (g *gen) decl(n *ast.Decl) error {
	sym := g.info.Refs[n]
	if sym == nil {
		return fmt.Errorf("gogen: %s: unresolved declaration %s", n.Position, n.Name)
	}

	if n.IsArray {
		sz, err := g.expr(n.Size)
		if err != nil {
			return err
		}
		szT, szE := g.tmp(), g.tmp()
		g.w("%s, %s := (%s).ToNumbr()", szT, szE, sz)
		g.failErr(szE)
		if sym.Kind == sema.SymShared {
			e := g.tmp()
			g.w("if %s := pe.AllocArray(%s, int(%s)); %s != nil {", e, slotConst(sym), szT, e)
			g.ind++
			if g.inFunc {
				g.w("return value.NOOB, %s", e)
			} else {
				g.w("return %s", e)
			}
			g.ind--
			g.w("}")
			return nil
		}
		arrT, arrE := g.tmp(), g.tmp()
		g.w("%s, %s := value.NewArrayOf(value.%s, int(%s))", arrT, arrE, kindName(n.Type), szT)
		g.failErr(arrE)
		g.w("%s = value.NewArray(%s)", goName(sym), arrT)
		return nil
	}

	if g.reps[sym] != repValue {
		if n.Init == nil {
			g.w("%s = 0", goName(sym))
			return nil
		}
		return g.storeRaw(sym, n.Init)
	}

	init := "value.NOOB"
	if n.Typed {
		init = zeroLiteral(n)
	}
	if n.Init != nil {
		v, err := g.expr(n.Init)
		if err != nil {
			return err
		}
		init = v
		if sym.Static {
			t, e := g.tmp(), g.tmp()
			g.w("%s, %s := value.Cast(%s, value.%s)", t, e, v, kindName(sym.Type))
			g.failErr(e)
			init = t
		}
	}
	if sym.Kind == sema.SymShared {
		e := g.tmp()
		g.w("if %s := pe.InitScalar(%s, %s); %s != nil {", e, slotConst(sym), init, e)
		g.ind++
		if g.inFunc {
			g.w("return value.NOOB, %s", e)
		} else {
			g.w("return %s", e)
		}
		g.ind--
		g.w("}")
		return nil
	}
	g.w("%s = %s", goName(sym), init)
	return nil
}

func zeroLiteral(n *ast.Decl) string {
	switch n.Type {
	case value.Numbr:
		return "value.NewNumbr(0)"
	case value.Numbar:
		return "value.NewNumbar(0)"
	case value.Yarn:
		return `value.NewYarn("")`
	case value.Troof:
		return "value.NewTroof(false)"
	}
	return "value.NOOB"
}

func (g *gen) ifStmt(n *ast.If) error {
	g.w("if %s.ToTroof() {", g.itName())
	g.ind++
	if err := g.stmts(n.Then); err != nil {
		return err
	}
	g.ind--
	if len(n.Mebbes) > 0 || n.Else != nil {
		g.w("} else {")
		g.ind++
		if err := g.mebbeChain(n.Mebbes, n.Else); err != nil {
			return err
		}
		g.ind--
	}
	g.w("}")
	return nil
}

// mebbeChain emits the MEBBE alternatives as nested if/else, assigning each
// tested condition to IT the way the dynamic backends do.
func (g *gen) mebbeChain(mebbes []ast.MebbeClause, elseB []ast.Stmt) error {
	if len(mebbes) == 0 {
		if elseB != nil {
			return g.stmts(elseB)
		}
		return nil
	}
	m := mebbes[0]
	cond, err := g.expr(m.Cond)
	if err != nil {
		return err
	}
	condT := g.tmp()
	g.w("%s := %s", condT, cond)
	g.w("%s = %s", g.itName(), condT)
	g.w("if %s.ToTroof() {", condT)
	g.ind++
	if err := g.stmts(m.Body); err != nil {
		return err
	}
	g.ind--
	if len(mebbes) > 1 || elseB != nil {
		g.w("} else {")
		g.ind++
		if err := g.mebbeChain(mebbes[1:], elseB); err != nil {
			return err
		}
		g.ind--
	}
	g.w("}")
	return nil
}

func (g *gen) switchStmt(n *ast.Switch) error {
	label := g.label()
	matched := g.tmp()

	body, err := g.capture(func() error {
		g.loops = append(g.loops, label)
		defer func() { g.loops = g.loops[:len(g.loops)-1] }()
		for _, cs := range n.Cases {
			lit, err := g.expr(cs.Lit)
			if err != nil {
				return err
			}
			g.w("if !%s && value.Equal(%s, %s) {", matched, g.itName(), lit)
			g.ind++
			g.w("%s = true", matched)
			g.ind--
			g.w("}")
			g.w("if %s {", matched)
			g.ind++
			if err := g.stmts(cs.Body); err != nil {
				return err
			}
			g.ind--
			g.w("}")
		}
		if n.Default != nil {
			g.w("if !%s {", matched)
			g.ind++
			if err := g.stmts(n.Default); err != nil {
				return err
			}
			g.ind--
			g.w("}")
		}
		return nil
	})
	if err != nil {
		return err
	}

	g.w("%s := false", matched)
	g.w("_ = %s", matched)
	if strings.Contains(body, "break "+label) {
		g.w("%s:", label)
		g.w("for {")
	} else {
		g.w("for {")
	}
	g.ind++
	g.buf.WriteString(body)
	g.w("break")
	g.ind--
	g.w("}")
	return nil
}

func (g *gen) loop(n *ast.Loop) error {
	label := g.label()

	var counter string
	var counterRaw bool
	if n.Var != "" {
		sym := g.info.Refs[n]
		if sym == nil {
			return fmt.Errorf("gogen: %s: unresolved loop variable %s", n.Position, n.Var)
		}
		counter = goName(sym)
		counterRaw = g.reps[sym] == repInt
		if counterRaw {
			g.w("%s = 0", counter)
		} else {
			g.w("%s = value.NewNumbr(0)", counter)
		}
	}

	body, err := g.capture(func() error {
		g.loops = append(g.loops, label)
		defer func() { g.loops = g.loops[:len(g.loops)-1] }()
		if n.Cond != nil {
			// The header comparison is the per-iteration tax every loop
			// pays; a statically-typed condition tests a raw Go bool.
			var cond string
			var err error
			if g.staticCondOK(n.Cond) {
				cond, err = g.emitRawCond(n.Cond)
				cond = "(" + cond + ")"
			} else {
				cond, err = g.expr(n.Cond)
				cond = fmt.Sprintf("(%s).ToTroof()", cond)
			}
			if err != nil {
				return err
			}
			if n.CondKind == ast.CondTil {
				g.w("if %s {", cond)
			} else {
				g.w("if !%s {", cond)
			}
			g.ind++
			g.w("break %s", label)
			g.ind--
			g.w("}")
		}
		if err := g.stmts(n.Body); err != nil {
			return err
		}
		switch {
		case counter == "":
		case counterRaw:
			if n.Op == ast.LoopNerfin {
				g.w("%s--", counter)
			} else {
				g.w("%s++", counter)
			}
		default:
			cur, e := g.tmp(), g.tmp()
			g.w("%s, %s := %s.ToNumbr()", cur, e, counter)
			g.failErr(e)
			if n.Op == ast.LoopNerfin {
				g.w("%s = value.NewNumbr(%s - 1)", counter, cur)
			} else {
				g.w("%s = value.NewNumbr(%s + 1)", counter, cur)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	if strings.Contains(body, "break "+label) || strings.Contains(body, "continue "+label) {
		g.w("%s:", label)
	}
	g.w("for {")
	g.ind++
	g.buf.WriteString(body)
	g.ind--
	g.w("}")
	return nil
}

func (g *gen) lock(n *ast.Lock) error {
	sym, err := g.symFor(n.Var)
	if err != nil {
		return err
	}
	if sym.Lock < 0 {
		return fmt.Errorf("gogen: %s: %v on %s without a lock", n.Position, n.Action, n.Var.Name)
	}
	id := lockConst(sym)
	switch n.Action {
	case ast.LockAcquire:
		e := g.tmp()
		g.w("if %s := pe.SetLock(%s); %s != nil {", e, id, e)
		g.ind++
		if g.inFunc {
			g.w("return value.NOOB, %s", e)
		} else {
			g.w("return %s", e)
		}
		g.ind--
		g.w("}")
		g.w("%s = value.NewTroof(true)", g.itName())
	case ast.LockTry:
		ok, e := g.tmp(), g.tmp()
		g.w("%s, %s := pe.TestLock(%s)", ok, e, id)
		g.failErr(e)
		g.w("%s = value.NewTroof(%s)", g.itName(), ok)
	case ast.LockRelease:
		e := g.tmp()
		g.w("if %s := pe.ClearLock(%s); %s != nil {", e, id, e)
		g.ind++
		if g.inFunc {
			g.w("return value.NOOB, %s", e)
		} else {
			g.w("return %s", e)
		}
		g.ind--
		g.w("}")
	}
	return nil
}

// peTarget emits evaluation and validation of a TXT MAH BFF target,
// returning the int temp holding the PE rank.
func (g *gen) peTarget(e ast.Expr) (string, error) {
	v, err := g.expr(e)
	if err != nil {
		return "", err
	}
	t, errV := g.tmp(), g.tmp()
	g.w("%s, %s := (%s).ToNumbr()", t, errV, v)
	g.failErr(errV)
	g.w("if %s < 0 || %s >= int64(pe.NPEs()) {", t, t)
	g.ind++
	msg := fmt.Sprintf(`fmt.Errorf("TXT MAH BFF %%d: no such friend (MAH FRENZ is %%d)", %s, pe.NPEs())`, t)
	if g.inFunc {
		g.w("return value.NOOB, %s", msg)
	} else {
		g.w("return %s", msg)
	}
	g.ind--
	g.w("}")
	ti := g.tmp()
	g.w("%s := int(%s)", ti, t)
	return ti, nil
}
