package gogen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/interp"
)

// TestGogenConformanceCorpus runs the shared backend fixture corpus —
// every row of the paper's Tables I-III — through the full §VI.E
// toolchain: emit each row to Go, compile all of them with ONE `go
// build` invocation (each row is its own main package), and require
// each binary's output to match the interpreter's for the same NP,
// seed, and stdin. This is the fourth column of the backend×fixture
// matrix: the other three engines already run this corpus in
// internal/conformance; the Go emitter must not be the odd one out.
//
// Outputs are compared order-normalized because the generated binary
// prints live (PE interleaving is scheduler-dependent), exactly like
// TestGoRunMatchesInterp. The documented SRS limitation is asserted,
// not skipped silently: a row that fails to emit must fail with the SRS
// diagnostic and must actually use SRS.
func TestGogenConformanceCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("go toolchain round trip is slow for -short")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	genRoot, err := os.MkdirTemp(moduleRoot, "gen-corpus-")
	if err != nil {
		t.Fatal(err)
	}
	// t.Cleanup, not defer: the parallel subtests below outlive this
	// function body, and the binaries must outlive them.
	t.Cleanup(func() { os.RemoveAll(genRoot) })

	type kase struct {
		idx  int
		row  conformance.Row
		prog *core.Program
	}
	var cases []kase
	for i, row := range conformance.All() {
		prog, err := core.Parse(fmt.Sprintf("row%02d.lol", i), row.Source)
		if err != nil {
			t.Fatalf("row %d (%s): parse: %v", i, row.Construct, err)
		}
		out, err := Emit(prog.Info)
		if err != nil {
			if strings.Contains(err.Error(), "SRS") && strings.Contains(row.Source, "SRS") {
				continue // the documented static-lowering limitation
			}
			t.Errorf("row %d (%s): emit: %v", i, row.Construct, err)
			continue
		}
		dir := filepath.Join(genRoot, fmt.Sprintf("row%02d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "main.go"), out, 0o644); err != nil {
			t.Fatal(err)
		}
		cases = append(cases, kase{idx: i, row: row, prog: prog})
	}
	if len(cases) < 40 {
		t.Fatalf("only %d rows emitted; the corpus should be nearly all of Tables I-III", len(cases))
	}

	// One toolchain invocation for the whole corpus: every emitted
	// program must compile, or the emitter produced invalid Go.
	binDir := filepath.Join(genRoot, "bin")
	if err := os.Mkdir(binDir, 0o755); err != nil {
		t.Fatal(err)
	}
	build := exec.Command(goTool, "build", "-o", binDir, "./"+filepath.Base(genRoot)+"/...")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("corpus does not compile: %v\n%s", err, out)
	}

	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("row%02d_%s", c.idx, shorten(c.row.Construct)), func(t *testing.T) {
			t.Parallel()
			np := max(c.row.NP, 1)
			cmd := exec.Command(filepath.Join(binDir, fmt.Sprintf("row%02d", c.idx)),
				"-np", fmt.Sprint(np), "-seed", "2017")
			cmd.Stdin = strings.NewReader(c.row.Stdin)
			got, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("binary failed: %v\n%s\n--- program ---\n%s", err, got, c.row.Source)
			}

			var want strings.Builder
			if _, err := c.prog.Run(core.RunConfig{Config: interp.Config{
				NP: np, Seed: 2017, Stdout: &want,
				Stdin: strings.NewReader(c.row.Stdin), GroupOutput: true,
			}}); err != nil {
				t.Fatalf("interp failed: %v", err)
			}
			if sortLines(string(got)) != sortLines(want.String()) {
				t.Errorf("toolchain output diverges from interp:\ngo binary:\n%s\ninterp:\n%s\n--- program ---\n%s",
					got, want.String(), c.row.Source)
			}
		})
	}
}

// shorten mirrors the conformance test's subtest naming.
func shorten(s string) string {
	out := make([]rune, 0, 24)
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
		if len(out) == 24 {
			break
		}
	}
	return string(out)
}
