package gogen

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/value"
)

// This file is the typed fast path of the emitter: expressions and
// variables whose runtime kind is statically known lower to raw Go
// int64/float64 code instead of boxed value.Value dispatch, the same move
// internal/compile/specialize.go makes for the closure backend and the
// paper's §II.B motivates ("statically typed variables as a transition to
// a compiled ... language"). This is what makes the server's native tier
// an actual promotion: without it the generated binary pays the dynamic
// value.Binary cost per operator and barely beats the tree-walker.
//
// Correctness containment mirrors the compile backend's: a symbol may
// live as a raw Go scalar only when every write provably preserves its
// kind — SRSLY-typed scalars are cast on every store (see storeVar), and
// loop counters qualify only when the body never assigns to them. Typed
// fast paths for operators with failure modes (QUOSHUNT, MOD, FLIP OF,
// UNSQUAR OF) call the value.Raw* helpers so error text stays
// single-sourced with the dynamic backends.

// rep is the Go-level representation of a private scalar symbol.
type rep int

const (
	repValue rep = iota // boxed value.Value (the default)
	repInt              // raw int64: SRSLY NUMBR, pristine loop counters
	repFloat            // raw float64: SRSLY NUMBAR
)

// goType returns the Go declaration type for a symbol.
func (g *gen) goType(sym *sema.Symbol) string {
	switch g.reps[sym] {
	case repInt:
		return "int64"
	case repFloat:
		return "float64"
	}
	return "value.Value"
}

// computeReps decides which private scalars can live unboxed. Shared
// symbols always live in the symmetric heap as value.Value; IT and
// parameters stay boxed because any kind flows into them.
func computeReps(info *sema.Info) map[*sema.Symbol]rep {
	written := writtenSyms(info)
	reps := make(map[*sema.Symbol]rep)
	collect := func(scope *sema.Scope) {
		for _, sym := range scope.Order {
			if sym.IsArray {
				continue
			}
			switch {
			case sym.Kind == sema.SymPrivate && sym.Static && sym.Type == value.Numbr:
				reps[sym] = repInt
			case sym.Kind == sema.SymPrivate && sym.Static && sym.Type == value.Numbar:
				reps[sym] = repFloat
			case sym.Kind == sema.SymLoopVar && !written[sym]:
				// Implicit counters are NUMBR by construction; a body
				// that assigns to one could store any kind, so only
				// never-assigned counters unbox.
				reps[sym] = repInt
			}
		}
	}
	collect(info.Main)
	for _, fi := range info.Funcs {
		collect(fi.Scope)
	}
	return reps
}

// writtenSyms collects every symbol that is the target of an assignment,
// GIMMEH, or IS NOW A anywhere in the program (the loop-header increment
// does not count: it is emitted by the loop itself and preserves NUMBR).
func writtenSyms(info *sema.Info) map[*sema.Symbol]bool {
	written := make(map[*sema.Symbol]bool)
	mark := func(target ast.Expr) {
		if v, ok := target.(*ast.VarRef); ok {
			if sym, ok := info.Refs[v]; ok {
				written[sym] = true
			}
		}
	}
	ast.Walk(info.Prog, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.Assign:
			mark(s.Target)
		case *ast.Gimmeh:
			mark(s.Target)
		case *ast.CastStmt:
			mark(s.Target)
		}
		return true
	})
	return written
}

// staticNumKind reports the numeric kind e is guaranteed to evaluate to,
// without emitting anything. It must stay in lockstep with emitRaw: every
// (kind, true) answer here is a promise emitRaw can keep. The analysis is
// pure so callers can probe before committing — a half-emitted fast path
// that falls back would duplicate side effects like WHATEVR draws.
func (g *gen) staticNumKind(e ast.Expr) (value.Kind, bool) {
	switch n := e.(type) {
	case *ast.NumbrLit:
		return value.Numbr, true
	case *ast.NumbarLit:
		return value.Numbar, true
	case *ast.Me, *ast.MahFrenz, *ast.Whatevr:
		return value.Numbr, true
	case *ast.Whatevar:
		return value.Numbar, true
	case *ast.VarRef:
		sym, err := g.symFor(n)
		if err != nil {
			return 0, false
		}
		switch g.reps[sym] {
		case repInt:
			return value.Numbr, true
		case repFloat:
			return value.Numbar, true
		}
		return 0, false
	case *ast.Index:
		// Typed arrays cast on every Set (value.Array.Set, shmem element
		// stores), so elements are guaranteed their declared kind.
		sym, err := g.symFor(n.Arr)
		if err != nil || !sym.IsArray {
			return 0, false
		}
		if sym.Type == value.Numbr || sym.Type == value.Numbar {
			return sym.Type, true
		}
		return 0, false
	case *ast.BinExpr:
		switch n.Op {
		case value.OpSum, value.OpDiff, value.OpProdukt, value.OpQuoshunt,
			value.OpMod, value.OpBiggrOf, value.OpSmallrOf:
			xk, xok := g.staticNumKind(n.X)
			yk, yok := g.staticNumKind(n.Y)
			if !xok || !yok {
				return 0, false
			}
			if xk == value.Numbar || yk == value.Numbar {
				return value.Numbar, true
			}
			return value.Numbr, true
		}
		return 0, false
	case *ast.UnExpr:
		switch n.Op {
		case value.OpSquar:
			return g.staticNumKind(n.X)
		case value.OpUnsquar, value.OpFlip:
			if _, ok := g.staticNumKind(n.X); ok {
				return value.Numbar, true
			}
			return 0, false
		}
		return 0, false
	case *ast.CastExpr:
		// A numeric MAEK always lands on its target kind; the operand may
		// be dynamic (emitRaw boxes it and casts, then unwraps).
		if n.Type == value.Numbr || n.Type == value.Numbar {
			return n.Type, true
		}
		return 0, false
	}
	return 0, false
}

// staticCondOK reports whether e can be emitted as a raw Go bool: a
// numeric comparison over statically-typed operands, possibly negated.
// Logic over dynamic operands (BOTH OF, ANY OF, ...) stays boxed — its
// short-circuiting must not eagerly evaluate operand side effects.
func (g *gen) staticCondOK(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.BinExpr:
		switch n.Op {
		case value.OpBigger, value.OpSmallr, value.OpBothSaem, value.OpDiffrint:
			_, xok := g.staticNumKind(n.X)
			_, yok := g.staticNumKind(n.Y)
			return xok && yok
		}
		return false
	case *ast.UnExpr:
		return n.Op == value.OpNot && g.staticCondOK(n.X)
	}
	return false
}

// rawPromote converts raw code of kind `from` to kind `want`. NUMBR →
// NUMBAR is float64() (exactly ToNumbar on a NUMBR); NUMBAR → NUMBR is
// int64() truncation (exactly ToNumbr on a NUMBAR).
func rawPromote(code string, from, want value.Kind) string {
	switch {
	case from == want:
		return code
	case want == value.Numbar:
		return fmt.Sprintf("float64(%s)", code)
	default:
		return fmt.Sprintf("int64(%s)", code)
	}
}

func rawUnwrap(boxed string, k value.Kind) string {
	if k == value.Numbar {
		return fmt.Sprintf("(%s).Numbar()", boxed)
	}
	return fmt.Sprintf("(%s).Numbr()", boxed)
}

// emitRaw lowers an expression staticNumKind accepted to raw Go code of
// that kind. The returned string is side-effect free (RNG draws and
// checked operations land in temps emitted above it), so callers may
// embed it in larger expressions but must still use it exactly once.
func (g *gen) emitRaw(e ast.Expr) (string, value.Kind, error) {
	switch n := e.(type) {
	case *ast.NumbrLit:
		return fmt.Sprintf("int64(%d)", n.Value), value.Numbr, nil
	case *ast.NumbarLit:
		return fmt.Sprintf("float64(%g)", n.Value), value.Numbar, nil
	case *ast.Me:
		return "int64(pe.ID())", value.Numbr, nil
	case *ast.MahFrenz:
		return "int64(pe.NPEs())", value.Numbr, nil
	case *ast.Whatevr:
		t := g.tmp()
		g.w("%s := pe.Rand().Int63n(1 << 31)", t)
		return t, value.Numbr, nil
	case *ast.Whatevar:
		t := g.tmp()
		g.w("%s := pe.Rand().Float64()", t)
		return t, value.Numbar, nil
	case *ast.VarRef:
		sym, err := g.symFor(n)
		if err != nil {
			return "", 0, err
		}
		if g.reps[sym] == repFloat {
			return goName(sym), value.Numbar, nil
		}
		return goName(sym), value.Numbr, nil
	case *ast.Index:
		sym, err := g.symFor(n.Arr)
		if err != nil {
			return "", 0, err
		}
		boxed, err := g.readIndex(n)
		if err != nil {
			return "", 0, err
		}
		return rawUnwrap(boxed, sym.Type), sym.Type, nil
	case *ast.BinExpr:
		return g.emitRawBin(n)
	case *ast.UnExpr:
		return g.emitRawUn(n)
	case *ast.CastExpr:
		if ik, ok := g.staticNumKind(n.X); ok {
			x, _, err := g.emitRaw(n.X)
			if err != nil {
				return "", 0, err
			}
			return rawPromote(x, ik, n.Type), n.Type, nil
		}
		boxed, err := g.expr(n.X)
		if err != nil {
			return "", 0, err
		}
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.Cast(%s, value.%s)", t, errV, boxed, kindName(n.Type))
		g.failErr(errV)
		return rawUnwrap(t, n.Type), n.Type, nil
	}
	return "", 0, fmt.Errorf("gogen: internal: emitRaw on unvetted expression %T at %s", e, e.Pos())
}

func (g *gen) emitRawBin(n *ast.BinExpr) (string, value.Kind, error) {
	x, xk, err := g.emitRaw(n.X)
	if err != nil {
		return "", 0, err
	}
	y, yk, err := g.emitRaw(n.Y)
	if err != nil {
		return "", 0, err
	}
	k := value.Numbr
	if xk == value.Numbar || yk == value.Numbar {
		k = value.Numbar
	}
	x, y = rawPromote(x, xk, k), rawPromote(y, yk, k)
	switch n.Op {
	case value.OpSum:
		return fmt.Sprintf("(%s + %s)", x, y), k, nil
	case value.OpDiff:
		return fmt.Sprintf("(%s - %s)", x, y), k, nil
	case value.OpProdukt:
		return fmt.Sprintf("(%s * %s)", x, y), k, nil
	case value.OpBiggrOf:
		// Builtin max/min match math.Max/Min on NaN and signed zero.
		return fmt.Sprintf("max(%s, %s)", x, y), k, nil
	case value.OpSmallrOf:
		return fmt.Sprintf("min(%s, %s)", x, y), k, nil
	case value.OpQuoshunt, value.OpMod:
		fn := map[value.BinOp]map[value.Kind]string{
			value.OpQuoshunt: {value.Numbr: "RawQuoshuntNumbr", value.Numbar: "RawQuoshuntNumbar"},
			value.OpMod:      {value.Numbr: "RawModNumbr", value.Numbar: "RawModNumbar"},
		}[n.Op][k]
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.%s(%s, %s)", t, errV, fn, x, y)
		g.failErr(errV)
		return t, k, nil
	}
	return "", 0, fmt.Errorf("gogen: internal: emitRawBin on unvetted operator %v at %s", n.Op, n.Position)
}

func (g *gen) emitRawUn(n *ast.UnExpr) (string, value.Kind, error) {
	x, xk, err := g.emitRaw(n.X)
	if err != nil {
		return "", 0, err
	}
	switch n.Op {
	case value.OpSquar:
		// Temp the operand: embedding x twice would double its temps'
		// single-use contract (and re-read nothing, but keep it simple).
		t := g.tmp()
		g.w("%s := %s", t, x)
		return fmt.Sprintf("(%s * %s)", t, t), xk, nil
	case value.OpUnsquar, value.OpFlip:
		fn := "RawUnsquar"
		if n.Op == value.OpFlip {
			fn = "RawFlip"
		}
		t, errV := g.tmp(), g.tmp()
		g.w("%s, %s := value.%s(%s)", t, errV, fn, rawPromote(x, xk, value.Numbar))
		g.failErr(errV)
		return t, value.Numbar, nil
	}
	return "", 0, fmt.Errorf("gogen: internal: emitRawUn on unvetted operator %v at %s", n.Op, n.Position)
}

// emitRawCond lowers a comparison staticCondOK accepted to a raw Go bool
// expression. Mixed-kind equality promotes to float64, exactly
// value.Equal's numeric cross-kind rule.
func (g *gen) emitRawCond(e ast.Expr) (string, error) {
	switch n := e.(type) {
	case *ast.BinExpr:
		x, xk, err := g.emitRaw(n.X)
		if err != nil {
			return "", err
		}
		y, yk, err := g.emitRaw(n.Y)
		if err != nil {
			return "", err
		}
		k := value.Numbr
		if xk == value.Numbar || yk == value.Numbar {
			k = value.Numbar
		}
		x, y = rawPromote(x, xk, k), rawPromote(y, yk, k)
		op := map[value.BinOp]string{
			value.OpBigger:   ">",
			value.OpSmallr:   "<",
			value.OpBothSaem: "==",
			value.OpDiffrint: "!=",
		}[n.Op]
		return fmt.Sprintf("%s %s %s", x, op, y), nil
	case *ast.UnExpr: // NOT
		inner, err := g.emitRawCond(n.X)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("!(%s)", inner), nil
	}
	return "", fmt.Errorf("gogen: internal: emitRawCond on unvetted expression %T at %s", e, e.Pos())
}

// tryRawBox attempts the typed lowering of a composite expression in a
// boxed context: the arithmetic runs raw and only the result is boxed.
// ok=false means the caller must take the dynamic path.
func (g *gen) tryRawBox(e ast.Expr) (code string, ok bool, err error) {
	if k, isNum := g.staticNumKind(e); isNum {
		raw, _, err := g.emitRaw(e)
		if err != nil {
			return "", false, err
		}
		if k == value.Numbar {
			return fmt.Sprintf("value.NewNumbar(%s)", raw), true, nil
		}
		return fmt.Sprintf("value.NewNumbr(%s)", raw), true, nil
	}
	if g.staticCondOK(e) {
		raw, err := g.emitRawCond(e)
		if err != nil {
			return "", false, err
		}
		return fmt.Sprintf("value.NewTroof(%s)", raw), true, nil
	}
	return "", false, nil
}

// storeRaw emits `<sym> = <rhs>` for an unboxed symbol from an arbitrary
// source expression: raw when the RHS kind is static, otherwise boxed +
// Cast + unwrap (the Cast is what a boxed store to a SRSLY variable does,
// so error behaviour is identical).
func (g *gen) storeRaw(sym *sema.Symbol, rhs ast.Expr) error {
	want := value.Numbr
	if g.reps[sym] == repFloat {
		want = value.Numbar
	}
	if k, ok := g.staticNumKind(rhs); ok {
		code, _, err := g.emitRaw(rhs)
		if err != nil {
			return err
		}
		g.w("%s = %s", goName(sym), rawPromote(code, k, want))
		return nil
	}
	boxed, err := g.expr(rhs)
	if err != nil {
		return err
	}
	t, errV := g.tmp(), g.tmp()
	g.w("%s, %s := value.Cast(%s, value.%s)", t, errV, boxed, kindName(want))
	g.failErr(errV)
	g.w("%s = %s", goName(sym), rawUnwrap(t, want))
	return nil
}
