package conformance

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/progen"
)

// parallelize splices PGAS traffic into a progen program so the worker
// scheduler actually parks: a barrier-fenced, lock-serialized increment
// of a counter homed on PE 0 right after the prologue, an audit read of
// it, and a closing barrier before KTHXBYE. The injected names are
// outside progen's fixed variable pool (va..vc, sf, si, arr), and the
// injected output — "tally=NP" on every PE — is deterministic at any NP,
// so the whole program stays byte-comparable across schedulers.
func parallelize(src string) string {
	preamble := "HAI 1.2\n" +
		"WE HAS A fuzztally ITZ SRSLY A NUMBR AN IM SHARIN IT\n" +
		"HUGZ\n" +
		"IM SRSLY MESIN WIF fuzztally\n" +
		"TXT MAH BFF 0, UR fuzztally R SUM OF UR fuzztally AN 1\n" +
		"DUN MESIN WIF fuzztally\n" +
		"HUGZ\n" +
		"I HAS A fuzzseen ITZ A NUMBR\n" +
		"TXT MAH BFF 0, fuzzseen R UR fuzztally\n" +
		"VISIBLE SMOOSH \"tally=\" AN fuzzseen MKAY\n"
	src = strings.Replace(src, "HAI 1.2\n", preamble, 1)
	return strings.Replace(src, "KTHXBYE", "HUGZ\nKTHXBYE", 1)
}

// TestSchedDifferentialHighNP is the worker-scheduler differential at
// high PE counts: progen programs with injected PGAS traffic (see
// parallelize) run on the vm tier under Sched=goroutines and
// Sched=workers, and for every (seed, NP) the two modes must agree on
// the exact grouped output bytes and the exit status. Goroutine-per-PE
// mode is the oracle — it is the code path the Tables I-III matrix
// validates against the other engines — so any divergence here is a
// scheduler bug: a lost wakeup, a resume replaying a non-idempotent
// prefix, or metering drift from the park/re-charge cycle.
//
// -short keeps NP in {64, 256} (both above backend.SchedAutoNP, so auto
// mode would also pick workers); the full run adds NP=1024 on a reduced
// seed set.
func TestSchedDifferentialHighNP(t *testing.T) {
	eng, err := backend.ByName("vm")
	if err != nil {
		t.Fatal(err)
	}
	const stmts = 12
	type sweep struct {
		np    int
		seeds int
	}
	sweeps := []sweep{{64, 30}, {256, 30}}
	if !testing.Short() {
		sweeps = append(sweeps, sweep{1024, 10})
	}
	for _, sw := range sweeps {
		sw := sw
		for seed := int64(1); seed <= int64(sw.seeds); seed++ {
			seed := seed
			src := parallelize(progen.New(seed).Program(stmts))
			prog, err := core.Parse("fuzz.lol", src)
			if err != nil {
				t.Fatalf("seed %d: parallelized program rejected: %v\n--- source ---\n%s", seed, err, src)
			}
			t.Run(fmt.Sprintf("np%d/seed%02d", sw.np, seed), func(t *testing.T) {
				t.Parallel()
				modes := []backend.SchedMode{backend.SchedGoroutines, backend.SchedWorkers}
				outs := make([]string, len(modes))
				errs := make([]error, len(modes))
				for i, m := range modes {
					var out strings.Builder
					_, errs[i] = eng.Run(prog.Info, backend.Config{
						NP:          sw.np,
						Seed:        2017,
						Stdout:      &out,
						GroupOutput: true,
						Sched:       m,
					})
					outs[i] = out.String()
				}
				if (errs[0] == nil) != (errs[1] == nil) {
					t.Fatalf("modes disagree on exit status: goroutines=%v workers=%v\n--- source ---\n%s",
						errs[0], errs[1], src)
				}
				if errs[0] != nil {
					t.Fatalf("program died in both modes: %v\n--- source ---\n%s", errs[0], src)
				}
				if outs[0] != outs[1] {
					t.Fatalf("worker scheduler diverged from goroutine mode at np=%d\n--- source ---\n%s", sw.np, src)
				}
				want := fmt.Sprintf("tally=%d\n", sw.np)
				if !strings.Contains(outs[0], want) {
					t.Fatalf("output missing %q — injected traffic did not run\n%s", want, src)
				}
			})
		}
	}
}
