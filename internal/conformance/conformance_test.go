package conformance

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
)

// TestTables runs the full backend×fixture matrix: every row of the
// paper's Tables I-III on every registered execution engine. These rows
// are the specification: a failure here means an engine diverged from the
// paper.
func TestTables(t *testing.T) {
	engines := Engines()
	if len(engines) < 3 {
		t.Fatalf("expected at least 3 registered engines, got %v", backend.Names())
	}
	for _, eng := range engines {
		eng := eng
		for i, row := range All() {
			row := row
			name := fmt.Sprintf("%s/Table%s/%02d_%s", eng.Name(), row.Table, i, shorten(row.Construct))
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				if err := row.Run(eng); err != nil {
					t.Errorf("%s: %v\n--- program ---\n%s", row.Construct, err, row.Source)
				}
			})
		}
	}
}

// TestBackendMatrixIdenticalOutput runs every deterministic fixture at
// NP 1 and 4 and requires all engines to produce byte-identical grouped
// output (or to fail in unison). Rows are skipped at PE counts other than
// their own when their multi-PE behaviour is legitimately scheduling-
// dependent: which PE wins a GIMMEH line, and whether a trylock
// (IM MESIN WIF) samples the lock while a racing PE holds it.
func TestBackendMatrixIdenticalOutput(t *testing.T) {
	engines := Engines()
	for i, row := range All() {
		row := row
		for _, np := range []int{1, 4} {
			np := np
			nondeterministic := row.Stdin != "" ||
				strings.Contains(row.Source, "IM MESIN WIF")
			if nondeterministic && np != max(row.NP, 1) {
				continue
			}
			name := fmt.Sprintf("np%d/%02d_%s", np, i, shorten(row.Construct))
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				prog, err := core.Parse("row.lol", row.Source)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				outs := make([]string, len(engines))
				errs := make([]error, len(engines))
				for j, eng := range engines {
					var out strings.Builder
					_, errs[j] = eng.Run(prog.Info, backend.Config{
						NP:          np,
						Seed:        2017,
						Stdout:      &out,
						Stdin:       strings.NewReader(row.Stdin),
						GroupOutput: true,
					})
					outs[j] = out.String()
				}
				for j := 1; j < len(engines); j++ {
					if (errs[j] == nil) != (errs[0] == nil) {
						t.Fatalf("%s and %s disagree on failure: %v vs %v",
							engines[j].Name(), engines[0].Name(), errs[j], errs[0])
					}
					if errs[0] == nil && outs[j] != outs[0] {
						t.Errorf("%s output %q differs from %s output %q",
							engines[j].Name(), outs[j], engines[0].Name(), outs[0])
					}
				}
			})
		}
	}
}

func shorten(s string) string {
	out := make([]rune, 0, 24)
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
		if len(out) == 24 {
			break
		}
	}
	return string(out)
}
