package conformance

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestTables runs every row of the paper's Tables I-III on both backends.
// These rows are the specification: a failure here means the language
// implementation diverged from the paper.
func TestTables(t *testing.T) {
	for _, backend := range []core.Backend{core.BackendInterp, core.BackendCompile} {
		backend := backend
		for i, row := range All() {
			row := row
			name := fmt.Sprintf("%v/Table%s/%02d_%s", backend, row.Table, i, shorten(row.Construct))
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				if err := row.Run(backend); err != nil {
					t.Errorf("%s: %v\n--- program ---\n%s", row.Construct, err, row.Source)
				}
			})
		}
	}
}

func shorten(s string) string {
	out := make([]rune, 0, 24)
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
		if len(out) == 24 {
			break
		}
	}
	return string(out)
}
