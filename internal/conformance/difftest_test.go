package conformance

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/progen"
)

// TestProgenDifferentialNP is the cross-backend differential fuzz
// harness: a progen-generated corpus runs on every registered engine at
// NP 1, 4 and 8, and for each (seed, NP) all engines must agree on both
// the exact grouped output bytes and the exit status. progen programs
// are total and communication-free, so they are schedule-independent at
// any PE count (every PE computes the same thing; grouped mode orders
// the streams) — any disagreement is an engine bug, not luck. This
// extends the NP=1 progen differential in internal/progen to the
// parallel regime, where the vm and compile backends run a genuinely
// different code path per PE goroutine.
//
// -short caps the corpus (the quick smoke CI runs on every push); the
// full sweep runs in the regular test job.
func TestProgenDifferentialNP(t *testing.T) {
	engines := Engines()
	if len(engines) < 3 {
		t.Fatalf("expected at least 3 registered engines, got %v", backend.Names())
	}
	seeds, stmts := 90, 12
	if testing.Short() {
		seeds = 10
	}
	nps := []int{1, 4, 8}

	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		src := progen.New(seed).Program(stmts)
		prog, err := core.Parse("fuzz.lol", src)
		if err != nil {
			t.Fatalf("seed %d: generated program rejected: %v\n--- source ---\n%s", seed, err, src)
		}
		for _, np := range nps {
			np := np
			t.Run(fmt.Sprintf("seed%02d/np%d", seed, np), func(t *testing.T) {
				t.Parallel()
				outs := make([]string, len(engines))
				errs := make([]error, len(engines))
				for i, eng := range engines {
					var out strings.Builder
					_, errs[i] = eng.Run(prog.Info, backend.Config{
						NP:          np,
						Seed:        2017,
						Stdout:      &out,
						GroupOutput: true,
					})
					outs[i] = out.String()
				}
				for i := 1; i < len(engines); i++ {
					if (errs[i] == nil) != (errs[0] == nil) {
						t.Fatalf("%s and %s disagree on exit status: %v vs %v\n--- source ---\n%s",
							engines[i].Name(), engines[0].Name(), errs[i], errs[0], src)
					}
					if errs[0] == nil && outs[i] != outs[0] {
						t.Fatalf("%s and %s disagree:\n%s: %q\n%s: %q\n--- source ---\n%s",
							engines[i].Name(), engines[0].Name(),
							engines[0].Name(), outs[0], engines[i].Name(), outs[i], src)
					}
				}
				if errs[0] != nil {
					t.Fatalf("total program died on every engine: %v\n--- source ---\n%s", errs[0], src)
				}
				// The NP-fold structure check: with no ME/MAH FRENZ and no
				// communication, the grouped output must be NP identical
				// copies of the NP=1 stream.
				if np > 1 {
					per := len(outs[0]) / np
					if per*np != len(outs[0]) {
						t.Fatalf("grouped output length %d is not divisible by np %d", len(outs[0]), np)
					}
					first := outs[0][:per]
					if outs[0] != strings.Repeat(first, np) {
						t.Fatalf("grouped output is not %d identical per-PE copies:\n%q", np, outs[0])
					}
				}
			})
		}
	}
}
