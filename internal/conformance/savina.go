package conformance

// savina.go encodes the Savina-style concurrency micro-suite (Table S) —
// classic actor-benchmark shapes recast onto the PGAS primitives: message
// ping-pong over one-sided put, a barrier storm, lock-serialized counting,
// and a dining-philosophers trylock loop. Unlike Tables I-III these rows
// exist to stress the runtime's blocking points (HUGZ, IM SRSLY MESIN WIF,
// IM MESIN WIF) rather than the language surface, so they are the corpus
// the worker-scheduler differential leans on hardest.
//
// The row sources are inlined so cmd/lolbench can regenerate the table
// without repo-file access; TestSavinaSourcesMatchTestdata pins each one
// byte-for-byte to its twin under testdata/savina/, which is what
// cmd/lolrun users actually run.

// Savina returns the Table S concurrency rows.
func Savina() []Row {
	return []Row{
		{
			Table: "S", Construct: "savina: ping-pong",
			Meaning: "two PEs volley a counter via one-sided put, HUGZ as the return net",
			NP:      2,
			Source:  savinaPingPong,
			Want:    "PE 0 BALL 8\nPE 1 BALL 7\n",
		},
		{
			Table: "S", Construct: "savina: barrier storm",
			Meaning: "12 back-to-back HUGZ episodes across 8 PEs with peer-stamp audits",
			NP:      8,
			Source:  savinaBarrierStorm,
			Want:    "STORM OK\nSTORM OK\nSTORM OK\nSTORM OK\nSTORM OK\nSTORM OK\nSTORM OK\nSTORM OK\n",
		},
		{
			Table: "S", Construct: "savina: counting",
			Meaning: "4 PEs send 25 lock-serialized increments each to a counter homed on PE 0",
			NP:      4,
			Source:  savinaCounting,
			Want:    "COUNT IZ 100\nCOUNT IZ 100\nCOUNT IZ 100\nCOUNT IZ 100\n",
		},
		{
			Table: "S", Construct: "savina: dining philosophers",
			Meaning: "4 PEs trylock fork pairs with backoff; meal tally audited after HUGZ",
			NP:      4,
			Source:  savinaPhilosophers,
			Want:    "PHILOSOPHER 0 ATE 3 SAW 12\nPHILOSOPHER 1 ATE 3 SAW 12\nPHILOSOPHER 2 ATE 3 SAW 12\nPHILOSOPHER 3 ATE 3 SAW 12\n",
		},
	}
}

const savinaPingPong = `BTW savina PingPong over one-sided put/get: two PEs volley a counter.
BTW The server of round i bumps its local copy of the ball and puts it
BTW into its partner's court; HUGZ is the return net. After 8 volleys
BTW PE 0 holds ball 8 (last put in round 7) and PE 1 holds ball 7.
HAI 1.2
WE HAS A ball ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A buddy ITZ A NUMBR AN ITZ DIFF OF 1 AN pe
I HAS A rounds ITZ A NUMBR AN ITZ 8
I HAS A b ITZ A NUMBR
HUGZ
IM IN YR volley UPPIN YR i TIL BOTH SAEM i AN rounds
  BOTH SAEM MOD OF i AN 2 AN pe, O RLY?
  YA RLY
    b R SUM OF ball AN 1
    TXT MAH BFF buddy, UR ball R b
  OIC
  HUGZ
IM OUTTA YR volley
VISIBLE "PE :{pe} BALL :{ball}"
KTHXBYE
`

const savinaBarrierStorm = `BTW savina barrier storm: 12 back-to-back HUGZ episodes across 8 PEs.
BTW Each episode publishes a round stamp, synchronizes, and audits every
BTW peer's stamp; the second HUGZ fences the audit from the next round's
BTW publish. A single stale or early release anywhere breaks the tally.
HAI 1.2
WE HAS A round ITZ SRSLY A NUMBR
I HAS A rounds ITZ A NUMBR AN ITZ 12
I HAS A good ITZ A NUMBR AN ITZ 0
I HAS A total ITZ A NUMBR
IM IN YR storm UPPIN YR r TIL BOTH SAEM r AN rounds
  round R SUM OF r AN 1
  HUGZ
  total R 0
  IM IN YR scan UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    TXT MAH BFF k, total R SUM OF total AN UR round
  IM OUTTA YR scan
  BOTH SAEM total AN PRODUKT OF SUM OF r AN 1 AN MAH FRENZ, O RLY?
  YA RLY
    good R SUM OF good AN 1
  OIC
  HUGZ
IM OUTTA YR storm
BOTH SAEM good AN rounds, O RLY?
YA RLY
  VISIBLE "STORM OK"
OIC
KTHXBYE
`

const savinaCounting = `BTW savina Counting actor: 4 PEs send 25 increments each to the counter
BTW homed on PE 0, serialized by the global lock attached to the shared
BTW symbol. The audit read is fenced by HUGZ, so every PE must report the
BTW exact total — any lost update under park/resume shows up here.
HAI 1.2
WE HAS A count ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A iters ITZ A NUMBR AN ITZ 25
HUGZ
IM IN YR work UPPIN YR i TIL BOTH SAEM i AN iters
  IM SRSLY MESIN WIF count
  TXT MAH BFF 0, UR count R SUM OF UR count AN 1
  DUN MESIN WIF count
IM OUTTA YR work
HUGZ
I HAS A seen ITZ A NUMBR
TXT MAH BFF 0, seen R UR count
VISIBLE "COUNT IZ :{seen}"
KTHXBYE
`

const savinaPhilosophers = `BTW savina dining philosophers: 4 PEs, 4 forks as shared lock symbols.
BTW Lock names are static in the dialect, so each philosopher's fork pair
BTW is hard-coded in a WTF? branch. Forks are claimed with the trylock
BTW form (IM MESIN WIF sets IT) and fully backed off on failure, and the
BTW meal tally takes a blocking lock WHILE HOLDING both forks — parking a
BTW PE that owns locks is exactly the scheduler hazard under test.
HAI 1.2
WE HAS A forkA ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A forkB ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A forkC ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A forkD ITZ SRSLY A NUMBR AN IM SHARIN IT
WE HAS A eaten ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A meals ITZ A NUMBR AN ITZ 0
HUGZ
IM IN YR feast UPPIN YR tick TIL BOTH SAEM meals AN 3
  pe, WTF?
  OMG 0
    IM MESIN WIF forkA, O RLY?
    YA RLY
      IM MESIN WIF forkB, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkB
      OIC
      DUN MESIN WIF forkA
    OIC
    GTFO
  OMG 1
    IM MESIN WIF forkB, O RLY?
    YA RLY
      IM MESIN WIF forkC, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkC
      OIC
      DUN MESIN WIF forkB
    OIC
    GTFO
  OMG 2
    IM MESIN WIF forkC, O RLY?
    YA RLY
      IM MESIN WIF forkD, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkD
      OIC
      DUN MESIN WIF forkC
    OIC
    GTFO
  OMG 3
    BTW asymmetric order: the last philosopher reaches across for forkA
    BTW first, breaking the circular-wait pattern of the classic hang.
    IM MESIN WIF forkA, O RLY?
    YA RLY
      IM MESIN WIF forkD, O RLY?
      YA RLY
        meals R SUM OF meals AN 1
        IM SRSLY MESIN WIF eaten
        TXT MAH BFF 0, UR eaten R SUM OF UR eaten AN 1
        DUN MESIN WIF eaten
        DUN MESIN WIF forkD
      OIC
      DUN MESIN WIF forkA
    OIC
    GTFO
  OIC
IM OUTTA YR feast
HUGZ
I HAS A total ITZ A NUMBR
TXT MAH BFF 0, total R UR eaten
VISIBLE "PHILOSOPHER :{pe} ATE :{meals} SAW :{total}"
KTHXBYE
`
