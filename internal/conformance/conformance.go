// Package conformance encodes the paper's Tables I, II and III — the
// de-facto specification of parallel LOLCODE — as executable rows: one
// small program per construct with its expected behaviour. The test suite
// runs the full backend×fixture matrix (every row on every registered
// execution engine), and cmd/lolbench regenerates the tables with pass/fail
// status (experiments T1, T2, T3).
package conformance

import (
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
)

// Row is one table row: a language construct and a program demonstrating it.
type Row struct {
	Table     string                 // "I", "II", "III"
	Construct string                 // the syntax column of the paper's table
	Meaning   string                 // the description column
	Source    string                 // complete program exercising the construct
	NP        int                    // PEs to run with (0 = 1)
	Stdin     string                 // input for GIMMEH rows
	Want      string                 // exact expected output (grouped by PE)
	WantCheck func(out string) error // alternative predicate for nondeterministic rows
}

// Run executes the row's program on the given execution engine and checks
// output. Engines come from the backend registry (importing core registers
// all of them); see Engines.
func (r Row) Run(eng backend.Backend) error { return r.RunWith(eng, nil) }

// RunWith is Run with a config hook: mutate (when non-nil) edits the
// row's standard config before the run, which is how the scheduler
// differential forces Sched=workers while keeping the row's own NP,
// seed, and grouped-output contract.
func (r Row) RunWith(eng backend.Backend, mutate func(*backend.Config)) error {
	np := r.NP
	if np == 0 {
		np = 1
	}
	prog, err := core.Parse("row.lol", r.Source)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	var out strings.Builder
	cfg := backend.Config{
		NP:          np,
		Seed:        2017,
		Stdout:      &out,
		Stdin:       strings.NewReader(r.Stdin),
		GroupOutput: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	_, err = eng.Run(prog.Info, cfg)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if r.WantCheck != nil {
		return r.WantCheck(out.String())
	}
	if out.String() != r.Want {
		return fmt.Errorf("output = %q, want %q", out.String(), r.Want)
	}
	return nil
}

// Engines returns every registered execution engine; the conformance
// corpus is the engines × rows matrix.
func Engines() []backend.Backend { return backend.All() }

// All returns every conformance row: Tables I through III in paper
// order, then the Savina-style concurrency corpus (Table S).
func All() []Row {
	var rows []Row
	rows = append(rows, TableI()...)
	rows = append(rows, TableII()...)
	rows = append(rows, TableIII()...)
	rows = append(rows, Savina()...)
	return rows
}

// TableI is the basic LOLCODE syntax of paper Table I.
func TableI() []Row {
	return []Row{
		{
			Table: "I", Construct: "HAI [version] / KTHXBYE",
			Meaning: "begins and terminates a program",
			Source:  "HAI 1.2\nVISIBLE \"OK\"\nKTHXBYE",
			Want:    "OK\n",
		},
		{
			Table: "I", Construct: "BTW",
			Meaning: "single line comment",
			Source:  "HAI 1.2\nBTW nothing to see\nVISIBLE \"OK\" BTW trailing too\nKTHXBYE",
			Want:    "OK\n",
		},
		{
			Table: "I", Construct: "OBTW ... TLDR",
			Meaning: "multi line comment",
			Source:  "HAI 1.2\nOBTW\nthis VISIBLE \"NO\" never runs\nTLDR\nVISIBLE \"OK\"\nKTHXBYE",
			Want:    "OK\n",
		},
		{
			Table: "I", Construct: "CAN HAS [library]?",
			Meaning: "includes the standard libraries",
			Source:  "HAI 1.2\nCAN HAS STDIO?\nVISIBLE \"OK\"\nKTHXBYE",
			Want:    "OK\n",
		},
		{
			Table: "I", Construct: "VISIBLE [arg]",
			Meaning: "prints arg to standard output",
			Source:  "HAI 1.2\nVISIBLE \"A\" 1 \" \" 2.5\nKTHXBYE",
			Want:    "A1 2.50\n",
		},
		{
			Table: "I", Construct: "GIMMEH [var]",
			Meaning: "reads var from standard input",
			Source:  "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE",
			Stdin:   "from stdin\n",
			Want:    "from stdin\n",
		},
		{
			Table: "I", Construct: "I HAS A [var]",
			Meaning: "declares a variable (NOOB until set)",
			Source:  "HAI 1.2\nI HAS A x\nVISIBLE x\nKTHXBYE",
			Want:    "NOOB\n",
		},
		{
			Table: "I", Construct: "I HAS A [var] ITZ [value]",
			Meaning: "declares and initializes",
			Source:  "HAI 1.2\nI HAS A x ITZ 42\nVISIBLE x\nKTHXBYE",
			Want:    "42\n",
		},
		{
			Table: "I", Construct: "I HAS A [var] ITZ A [type]",
			Meaning: "declares a typed variable",
			Source:  "HAI 1.2\nI HAS A x ITZ A NUMBAR\nVISIBLE x\nKTHXBYE",
			Want:    "0.00\n",
		},
		{
			Table: "I", Construct: "[var] R [value]",
			Meaning: "assigns value to variable",
			Source:  "HAI 1.2\nI HAS A x\nx R \"KITTEH\"\nVISIBLE x\nKTHXBYE",
			Want:    "KITTEH\n",
		},
		{
			Table: "I", Construct: "BOTH SAEM / DIFFRINT",
			Meaning: "equality and inequality",
			Source: "HAI 1.2\nVISIBLE BOTH SAEM 3 AN 3\nVISIBLE DIFFRINT 3 AN 4\n" +
				"VISIBLE BOTH SAEM 3 AN 3.0\nVISIBLE BOTH SAEM \"a\" AN \"b\"\nKTHXBYE",
			Want: "WIN\nWIN\nWIN\nFAIL\n",
		},
		{
			Table: "I", Construct: "BIGGER / SMALLR",
			Meaning: "greater-than and less-than (paper Table I)",
			Source:  "HAI 1.2\nVISIBLE BIGGER 3 AN 2\nVISIBLE SMALLR 3 AN 2\nKTHXBYE",
			Want:    "WIN\nFAIL\n",
		},
		{
			Table: "I", Construct: "SUM OF / DIFF OF",
			Meaning: "addition and subtraction",
			Source:  "HAI 1.2\nVISIBLE SUM OF 2 AN 3\nVISIBLE DIFF OF 2 AN 3\nKTHXBYE",
			Want:    "5\n-1\n",
		},
		{
			Table: "I", Construct: "PRODUKT OF / QUOSHUNT OF / MOD OF",
			Meaning: "multiply, divide, modulo",
			Source: "HAI 1.2\nVISIBLE PRODUKT OF 6 AN 7\nVISIBLE QUOSHUNT OF 7 AN 2\n" +
				"VISIBLE QUOSHUNT OF 7.0 AN 2\nVISIBLE MOD OF 7 AN 3\nKTHXBYE",
			Want: "42\n3\n3.50\n1\n",
		},
		{
			Table: "I", Construct: "MAEK [expression] A [type]",
			Meaning: "explicit cast of an expression",
			Source:  "HAI 1.2\nVISIBLE MAEK \"3.99\" A NUMBAR\nVISIBLE MAEK 3.99 A NUMBR\nKTHXBYE",
			Want:    "3.99\n3\n",
		},
		{
			Table: "I", Construct: "[variable] IS NOW A [type]",
			Meaning: "in-place cast of a variable",
			Source:  "HAI 1.2\nI HAS A x ITZ \"5\"\nx IS NOW A NUMBR\nVISIBLE SUM OF x AN 1\nKTHXBYE",
			Want:    "6\n",
		},
		{
			Table: "I", Construct: "SRS [string]",
			Meaning: "interprets a string as an identifier",
			Source:  "HAI 1.2\nI HAS A kitteh ITZ 9\nI HAS A name ITZ \"kitteh\"\nVISIBLE SRS name\nKTHXBYE",
			Want:    "9\n",
		},
		{
			Table: "I", Construct: "[expression], O RLY? YA RLY / NO WAI / OIC",
			Meaning: "if/else statement block",
			Source:  "HAI 1.2\nBOTH SAEM 1 AN 2, O RLY?\nYA RLY\n  VISIBLE \"same\"\nNO WAI\n  VISIBLE \"diff\"\nOIC\nKTHXBYE",
			Want:    "diff\n",
		},
		{
			Table: "I", Construct: "MEBBE [expression]",
			Meaning: "else-if arm of O RLY?",
			Source: "HAI 1.2\nI HAS A x ITZ 2\nBOTH SAEM x AN 1, O RLY?\nYA RLY\n  VISIBLE \"one\"\n" +
				"MEBBE BOTH SAEM x AN 2\n  VISIBLE \"two\"\nNO WAI\n  VISIBLE \"many\"\nOIC\nKTHXBYE",
			Want: "two\n",
		},
		{
			Table: "I", Construct: "[expression], WTF? OMG / OMGWTF / GTFO / OIC",
			Meaning: "switch with fallthrough until GTFO",
			Source:  "HAI 1.2\nI HAS A x ITZ 1\nx, WTF?\nOMG 1\n  VISIBLE \"one\"\nOMG 2\n  VISIBLE \"two\"\n  GTFO\nOMG 3\n  VISIBLE \"three\"\nOMGWTF\n  VISIBLE \"other\"\nOIC\nKTHXBYE",
			Want:    "one\ntwo\n", // case 1 falls through into 2, GTFO stops it
		},
		{
			Table: "I", Construct: "WTF? OMGWTF default",
			Meaning: "switch default arm",
			Source:  "HAI 1.2\nI HAS A x ITZ 9\nx, WTF?\nOMG 1\n  VISIBLE \"one\"\n  GTFO\nOMGWTF\n  VISIBLE \"other\"\nOIC\nKTHXBYE",
			Want:    "other\n",
		},
		{
			Table: "I", Construct: "IM IN YR [label] UPPIN YR [var] TIL [expr]",
			Meaning: "counted loop, increment until true",
			Source:  "HAI 1.2\nIM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 3\n  VISIBLE i\nIM OUTTA YR loop\nKTHXBYE",
			Want:    "0\n1\n2\n",
		},
		{
			Table: "I", Construct: "IM IN YR [label] NERFIN YR [var] WILE [expr]",
			Meaning: "loop, decrement while true",
			Source:  "HAI 1.2\nI HAS A n ITZ 0\nIM IN YR loop NERFIN YR i WILE BIGGER i AN -3\n  n R SUM OF n AN 1\nIM OUTTA YR loop\nVISIBLE n\nKTHXBYE",
			Want:    "3\n", // i = 0,-1,-2 run; stops when i = -3
		},
		{
			Table: "I", Construct: "GTFO in a loop",
			Meaning: "break out of the loop",
			Source:  "HAI 1.2\nIM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 100\n  BOTH SAEM i AN 2, O RLY?\n  YA RLY\n    GTFO\n  OIC\n  VISIBLE i\nIM OUTTA YR loop\nKTHXBYE",
			Want:    "0\n1\n",
		},
		{
			Table: "I", Construct: "... (line continuation)",
			Meaning: "continues a statement on the next line",
			Source:  "HAI 1.2\nVISIBLE SUM OF 1 ...\n  AN 2\nKTHXBYE",
			Want:    "3\n",
		},
		{
			Table: "I", Construct: "[statement],[statement]",
			Meaning: "comma separates statements on one line",
			Source:  "HAI 1.2\nI HAS A x ITZ 1, VISIBLE x, x R 2, VISIBLE x\nKTHXBYE",
			Want:    "1\n2\n",
		},
		{
			Table: "I", Construct: "HOW IZ I / I IZ ... MKAY / FOUND YR",
			Meaning: "function declaration, call, and return",
			Source:  "HAI 1.2\nHOW IZ I twice YR n\n  FOUND YR PRODUKT OF n AN 2\nIF U SAY SO\nVISIBLE I IZ twice YR 21 MKAY\nKTHXBYE",
			Want:    "42\n",
		},
		{
			Table: "I", Construct: "SMOOSH ... MKAY",
			Meaning: "string concatenation",
			Source:  "HAI 1.2\nVISIBLE SMOOSH \"I CAN HAS \" AN 2 AN \" CHEEZBURGERZ\" MKAY\nKTHXBYE",
			Want:    "I CAN HAS 2 CHEEZBURGERZ\n",
		},
		{
			Table: "I", Construct: "BOTH OF / EITHER OF / WON OF / NOT / ALL OF / ANY OF",
			Meaning: "boolean operators",
			Source: "HAI 1.2\nVISIBLE BOTH OF WIN AN FAIL\nVISIBLE EITHER OF WIN AN FAIL\n" +
				"VISIBLE WON OF WIN AN WIN\nVISIBLE NOT FAIL\n" +
				"VISIBLE ALL OF WIN AN WIN AN FAIL MKAY\nVISIBLE ANY OF FAIL AN WIN MKAY\nKTHXBYE",
			Want: "FAIL\nWIN\nFAIL\nWIN\nFAIL\nWIN\n",
		},
		{
			Table: "I", Construct: "IT (implicit result)",
			Meaning: "bare expressions assign the IT variable",
			Source:  "HAI 1.2\nSUM OF 40 AN 2\nVISIBLE IT\nKTHXBYE",
			Want:    "42\n",
		},
		{
			Table: "I", Construct: "VISIBLE ... !",
			Meaning: "trailing bang suppresses the newline",
			Source:  "HAI 1.2\nVISIBLE \"a\" !\nVISIBLE \"b\" !\nVISIBLE \"c\"\nKTHXBYE",
			Want:    "abc\n",
		},
		{
			Table: "I", Construct: "SMOOSH without MKAY",
			Meaning: "MKAY is optional at end of statement",
			Source:  "HAI 1.2\nVISIBLE SMOOSH \"a\" AN \"b\" AN \"c\"\nKTHXBYE",
			Want:    "abc\n",
		},
		{
			Table: "I", Construct: "nested O RLY?",
			Meaning: "conditionals nest; inner IT does not leak out",
			Source: `HAI 1.2
WIN, O RLY?
YA RLY
  FAIL, O RLY?
  YA RLY
    VISIBLE "inner"
  NO WAI
    VISIBLE "inner-else"
  OIC
  VISIBLE "outer"
OIC
KTHXBYE`,
			Want: "inner-else\nouter\n",
		},
		{
			Table: "I", Construct: "TROOF casts",
			Meaning: "WIN/FAIL cast to 1/0 and \"WIN\"/\"FAIL\"",
			Source: "HAI 1.2\nVISIBLE MAEK WIN A NUMBR\nVISIBLE MAEK FAIL A NUMBR\n" +
				"VISIBLE SMOOSH MAEK WIN A YARN AN MAEK FAIL A YARN MKAY\nKTHXBYE",
			Want: "1\n0\nWINFAIL\n",
		},
		{
			Table: "I", Construct: "NOOB semantics",
			Meaning: "NOOB is FAIL-y, equals itself, and displays as NOOB",
			Source: "HAI 1.2\nI HAS A x\nVISIBLE BOTH SAEM x AN NOOB\n" +
				"VISIBLE NOT x\nVISIBLE x\nKTHXBYE",
			Want: "WIN\nWIN\nNOOB\n",
		},
		{
			Table: "I", Construct: "YARN escapes",
			Meaning: ":) :> :\" :: and :(hex) escapes",
			Source:  `HAI 1.2` + "\n" + `VISIBLE "x:)y:>z:"q:":::(41)"` + "\n" + `KTHXBYE`,
			Want:    "x\ny\tz\"q\":A\n",
		},
		{
			Table: "I", Construct: "YARN :{var} interpolation",
			Meaning: "embedded variable values stringify in place",
			Source:  "HAI 1.2\nI HAS A cnt ITZ 3\nVISIBLE \"i haz :{cnt} cheezburgerz\"\nKTHXBYE",
			Want:    "i haz 3 cheezburgerz\n",
		},
	}
}

// TableII is the parallel and distributed computing extensions of Table II.
func TableII() []Row {
	return []Row{
		{
			Table: "II", Construct: "MAH FRENZ",
			Meaning: "total number of parallel PEs",
			NP:      4,
			Source:  "HAI 1.2\nBOTH SAEM ME AN 0, O RLY?\nYA RLY\n  VISIBLE MAH FRENZ\nOIC\nKTHXBYE",
			Want:    "4\n",
		},
		{
			Table: "II", Construct: "ME",
			Meaning: "identity of the executing PE",
			NP:      4,
			Source:  "HAI 1.2\nVISIBLE ME\nKTHXBYE",
			Want:    "0\n1\n2\n3\n",
		},
		{
			Table: "II", Construct: "IM SRSLY MESIN WIF [var]",
			Meaning: "blocking acquire of the implicit lock",
			NP:      4,
			Source: `HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
HUGZ
TXT MAH BFF 0 AN STUFF
  IM SRSLY MESIN WIF x
  UR x R SUM OF UR x AN 1
  DUN MESIN WIF x
TTYL
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE x
OIC
KTHXBYE`,
			Want: "4\n",
		},
		{
			Table: "II", Construct: "IM MESIN WIF [var], O RLY?",
			Meaning: "non-blocking trylock; IT holds the result",
			Source: `HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
IM MESIN WIF x, O RLY?
YA RLY
  VISIBLE "GOT IT"
  DUN MESIN WIF x
NO WAI
  VISIBLE "BUSY"
OIC
KTHXBYE`,
			Want: "GOT IT\n",
		},
		{
			Table: "II", Construct: "DUN MESIN WIF [var]",
			Meaning: "release the lock; releasing unheld is an error",
			Source:  "HAI 1.2\nWE HAS A x ITZ A NUMBR AN IM SHARIN IT\nIM SRSLY MESIN WIF x\nDUN MESIN WIF x\nVISIBLE \"OK\"\nKTHXBYE",
			Want:    "OK\n",
		},
		{
			Table: "II", Construct: "HUGZ",
			Meaning: "collective barrier",
			NP:      8,
			Source: `HAI 1.2
WE HAS A flag ITZ SRSLY A NUMBR
flag R 1
HUGZ
BTW after the barrier every PE must observe every other PE's flag
I HAS A total ITZ A NUMBR
IM IN YR scan UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
  TXT MAH BFF k, total R SUM OF total AN UR flag
IM OUTTA YR scan
BOTH SAEM total AN MAH FRENZ, O RLY?
YA RLY
  VISIBLE "SYNCED"
OIC
KTHXBYE`,
			Want: strings.Repeat("SYNCED\n", 8),
		},
		{
			Table: "II", Construct: "TXT MAH BFF [expr], [statement]",
			Meaning: "predicates one statement onto PE expr",
			NP:      2,
			Source: `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
x R PRODUKT OF SUM OF ME AN 1 AN 11
HUGZ
I HAS A got ITZ A NUMBR
I HAS A buddy ITZ A NUMBR AN ITZ DIFF OF 1 AN ME
TXT MAH BFF buddy, got R UR x
VISIBLE got
KTHXBYE`,
			Want: "22\n11\n",
		},
		{
			Table: "II", Construct: "TXT MAH BFF [expr] AN STUFF ... TTYL",
			Meaning: "predicates a whole block onto PE expr",
			NP:      2,
			Source: `HAI 1.2
WE HAS A y ITZ SRSLY A NUMBR
WE HAS A z ITZ SRSLY A NUMBR
y R SUM OF ME AN 1
z R PRODUKT OF SUM OF ME AN 1 AN 10
HUGZ
I HAS A x ITZ A NUMBR
I HAS A buddy ITZ A NUMBR AN ITZ DIFF OF 1 AN ME
TXT MAH BFF buddy AN STUFF
  x R SUM OF UR y AN UR z
TTYL
VISIBLE x
KTHXBYE`,
			Want: "22\n11\n", // PE0 reads PE1's y+z=2+20; PE1 reads PE0's 1+10
		},
		{
			Table: "II", Construct: "I HAS A [var] ITZ SRSLY A [type]",
			Meaning: "statically typed variable (assignments cast)",
			Source:  "HAI 1.2\nI HAS A x ITZ SRSLY A NUMBR\nx R \"7\"\nVISIBLE SUM OF x AN 1\nKTHXBYE",
			Want:    "8\n",
		},
		{
			Table: "II", Construct: "WE HAS A [var] ITZ SRSLY A [type] AN IM SHARIN IT",
			Meaning: "symmetric shared variable with implicit lock",
			NP:      2,
			Source: `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT
x R ME
HUGZ
I HAS A buddy ITZ A NUMBR AN ITZ DIFF OF 1 AN ME
I HAS A got ITZ A NUMBR
TXT MAH BFF buddy, got R UR x
VISIBLE got
KTHXBYE`,
			Want: "1\n0\n",
		},
		{
			Table: "II", Construct: "WE HAS A [var] ITZ SRSLY LOTZ A [type]S AN THAR IZ [size]",
			Meaning: "symmetric shared array",
			NP:      2,
			Source: `HAI 1.2
WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4
IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN 4
  a'Z i R SUM OF PRODUKT OF ME AN 10 AN i
IM OUTTA YR fill
HUGZ
I HAS A buddy ITZ A NUMBR AN ITZ DIFF OF 1 AN ME
I HAS A got ITZ A NUMBR
TXT MAH BFF buddy, got R UR a'Z 3
VISIBLE got
KTHXBYE`,
			Want: "13\n3\n",
		},
		{
			Table: "II", Construct: "UR [var] / MAH [var]",
			Meaning: "remote vs local address space under predication",
			NP:      2,
			Source: `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
x R PRODUKT OF SUM OF ME AN 1 AN 5
HUGZ
I HAS A buddy ITZ A NUMBR AN ITZ DIFF OF 1 AN ME
I HAS A pair ITZ A NUMBR
TXT MAH BFF buddy, pair R SUM OF MAH x AN UR x
VISIBLE pair
KTHXBYE`,
			Want: "15\n15\n",
		},
		{
			Table: "II", Construct: "[var]'Z [expr]",
			Meaning: "array element access with clean syntax",
			Source:  "HAI 1.2\nI HAS A a ITZ LOTZ A NUMBARS AN THAR IZ 3\na'Z 0 R 1.5\na'Z SUM OF 0 AN 1 R 2.5\nVISIBLE SUM OF a'Z 0 AN a'Z 1\nKTHXBYE",
			Want:    "4.00\n",
		},
	}
}

// TableIII is the additional extensions of paper Table III.
func TableIII() []Row {
	return []Row{
		{
			Table: "III", Construct: "WHATEVR",
			Meaning: "random integer, rand()",
			Source:  "HAI 1.2\nI HAS A r ITZ WHATEVR\nVISIBLE BOTH OF NOT SMALLR r AN 0 AN SMALLR r AN 2147483648\nKTHXBYE",
			Want:    "WIN\n", // 0 <= r < 2^31
		},
		{
			Table: "III", Construct: "WHATEVAR",
			Meaning: "random floating point, randf()",
			Source:  "HAI 1.2\nI HAS A r ITZ WHATEVAR\nVISIBLE BOTH OF NOT SMALLR r AN 0.0 AN SMALLR r AN 1.0\nKTHXBYE",
			Want:    "WIN\n", // 0 <= r < 1
		},
		{
			Table: "III", Construct: "SQUAR OF [var]",
			Meaning: "power of 2, var*var",
			Source:  "HAI 1.2\nVISIBLE SQUAR OF 7\nVISIBLE SQUAR OF 1.5\nKTHXBYE",
			Want:    "49\n2.25\n",
		},
		{
			Table: "III", Construct: "UNSQUAR OF [var]",
			Meaning: "square root, sqrt(var)",
			Source:  "HAI 1.2\nVISIBLE UNSQUAR OF 144\nKTHXBYE",
			Want:    "12.00\n",
		},
		{
			Table: "III", Construct: "FLIP OF [var]",
			Meaning: "reciprocal, 1/var",
			Source:  "HAI 1.2\nVISIBLE FLIP OF 8\nKTHXBYE",
			Want:    "0.12\n", // 0.125 at two decimal places (round half to even)
		},
	}
}
