package conformance

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backend"
)

// savinaFiles maps each Table S row to its twin program under
// testdata/savina/ — the copy cmd/lolrun users actually launch.
var savinaFiles = map[string]string{
	"savina: ping-pong":           "pingpong.lol",
	"savina: barrier storm":       "barrierstorm.lol",
	"savina: counting":            "counting.lol",
	"savina: dining philosophers": "philosophers.lol",
}

// TestSavinaSourcesMatchTestdata pins the inlined Table S sources
// byte-for-byte to testdata/savina/, in both directions: every row has a
// file twin with identical bytes, and every .lol file in the directory is
// registered as a row. Editing either copy without the other fails here.
func TestSavinaSourcesMatchTestdata(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "savina")
	rows := Savina()
	if len(rows) != len(savinaFiles) {
		t.Fatalf("Savina() has %d rows, savinaFiles maps %d", len(rows), len(savinaFiles))
	}
	for _, row := range rows {
		name, ok := savinaFiles[row.Construct]
		if !ok {
			t.Errorf("row %q has no testdata twin registered", row.Construct)
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("row %q: %v", row.Construct, err)
			continue
		}
		if string(b) != row.Source {
			t.Errorf("row %q: inlined source differs from testdata/savina/%s; keep the two copies byte-identical", row.Construct, name)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	known := make(map[string]bool, len(savinaFiles))
	for _, f := range savinaFiles {
		known[f] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("testdata/savina/%s is not registered as a Table S row", e.Name())
		}
	}
}

// TestSavinaWorkerScheduler runs the Table S corpus on the vm engine with
// the worker scheduler forced. Every row blocks — HUGZ, blocking lock
// acquire, trylock-with-lock-held — so each one exercises park/resume on
// a real program, and the Want strings assert the exact same bytes the
// goroutine-per-PE matrix (TestTables) checks.
func TestSavinaWorkerScheduler(t *testing.T) {
	eng, err := backend.ByName("vm")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range Savina() {
		row := row
		t.Run(shorten(row.Construct), func(t *testing.T) {
			t.Parallel()
			err := row.RunWith(eng, func(c *backend.Config) { c.Sched = backend.SchedWorkers })
			if err != nil {
				t.Errorf("%s: %v\n--- program ---\n%s", row.Construct, err, row.Source)
			}
		})
	}
}
