// Package noc simulates a 2D-mesh network-on-chip in the style of the
// Adapteva Epiphany-III used by the paper's Parallella target.
//
// The Epiphany joins its RISC cores with three meshes: the cMesh carries
// on-chip writes (one hop per cycle), the rMesh carries read requests
// (reads are round trips and roughly 8x slower), and the xMesh carries
// off-chip traffic. Routing is dimension-order (X then Y). This package
// reproduces the latency structure and exposes per-link traffic counters so
// experiments can observe congestion; it does not model flit-level timing.
package noc

import (
	"fmt"
	"sync/atomic"
)

// Dir is a mesh link direction.
type Dir int

// The four mesh directions.
const (
	East Dir = iota
	West
	North
	South
	numDirs
)

func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	}
	return "?"
}

// Config sets the mesh geometry and per-hop timing.
type Config struct {
	Width  int // columns
	Height int // rows

	// WriteHopCycles is the cMesh cost of one hop for a write.
	// The Epiphany cMesh moves 8 bytes/cycle in the direction of travel.
	WriteHopCycles float64

	// ReadHopCycles is the rMesh per-hop cost of the request leg of a read;
	// the reply returns on the cMesh. Epiphany reads are documented as
	// roughly 8x slower than writes.
	ReadHopCycles float64

	// RouterCycles is the fixed per-router traversal cost added once per
	// message.
	RouterCycles float64

	// BytesPerFlit is the payload carried per mesh transaction; larger
	// transfers pay proportionally more cycles.
	BytesPerFlit int
}

// DefaultEpiphanyConfig mirrors the Epiphany-III: a 4x4 mesh, single-cycle
// write hops, reads ~8x the cost of writes, 8-byte flits.
func DefaultEpiphanyConfig() Config {
	return Config{
		Width:          4,
		Height:         4,
		WriteHopCycles: 1.0,
		ReadHopCycles:  8.0,
		RouterCycles:   1.5,
		BytesPerFlit:   8,
	}
}

// Mesh is a W x H grid of routers with directed links between neighbours.
type Mesh struct {
	cfg Config

	// traffic[core*numDirs+dir] counts bytes forwarded on each directed
	// link, updated atomically so concurrent PEs can route while
	// experiments read totals.
	traffic []atomic.Int64

	msgs atomic.Int64 // total routed messages
}

// New constructs a mesh from cfg.
func New(cfg Config) (*Mesh, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.BytesPerFlit <= 0 {
		cfg.BytesPerFlit = 8
	}
	return &Mesh{
		cfg:     cfg,
		traffic: make([]atomic.Int64, cfg.Width*cfg.Height*int(numDirs)),
	}, nil
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Cores returns the number of cores (routers) in the mesh.
func (m *Mesh) Cores() int { return m.cfg.Width * m.cfg.Height }

// Coord maps a core id to its (col, row) position, row-major like the
// Epiphany core id scheme.
func (m *Mesh) Coord(core int) (col, row int) {
	return core % m.cfg.Width, core / m.cfg.Width
}

// CoreAt maps (col, row) back to a core id.
func (m *Mesh) CoreAt(col, row int) int { return row*m.cfg.Width + col }

// Hops returns the Manhattan distance between two cores, the hop count of
// the dimension-order route.
func (m *Mesh) Hops(src, dst int) int {
	sc, sr := m.Coord(src)
	dc, dr := m.Coord(dst)
	return abs(sc-dc) + abs(sr-dr)
}

// Route returns the dimension-order (X then Y) path from src to dst as a
// core sequence, including both endpoints.
func (m *Mesh) Route(src, dst int) []int {
	sc, sr := m.Coord(src)
	dc, dr := m.Coord(dst)
	path := []int{src}
	c, r := sc, sr
	for c != dc {
		if c < dc {
			c++
		} else {
			c--
		}
		path = append(path, m.CoreAt(c, r))
	}
	for r != dr {
		if r < dr {
			r++
		} else {
			r--
		}
		path = append(path, m.CoreAt(c, r))
	}
	return path
}

func (m *Mesh) linkIndex(core int, d Dir) int { return core*int(numDirs) + int(d) }

// recordRoute adds bytes of traffic along every directed link of the route.
func (m *Mesh) recordRoute(src, dst, bytes int) {
	if src == dst {
		return
	}
	path := m.Route(src, dst)
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		ac, ar := m.Coord(a)
		bc, br := m.Coord(b)
		var d Dir
		switch {
		case bc > ac:
			d = East
		case bc < ac:
			d = West
		case br > ar:
			d = South
		default:
			d = North
		}
		m.traffic[m.linkIndex(a, d)].Add(int64(bytes))
	}
	m.msgs.Add(1)
}

// flits returns the transaction count for a payload of the given size.
func (m *Mesh) flits(bytes int) float64 {
	if bytes <= 0 {
		return 1
	}
	f := (bytes + m.cfg.BytesPerFlit - 1) / m.cfg.BytesPerFlit
	return float64(f)
}

// WriteCycles returns the simulated cycle cost of a one-sided write of the
// given size and records its traffic.
func (m *Mesh) WriteCycles(src, dst, bytes int) float64 {
	if src == dst {
		return 0
	}
	m.recordRoute(src, dst, bytes)
	hops := float64(m.Hops(src, dst))
	return m.cfg.RouterCycles + hops*m.cfg.WriteHopCycles*m.flits(bytes)
}

// ReadCycles returns the simulated cycle cost of a one-sided read: a
// request on the rMesh plus the data reply on the cMesh.
func (m *Mesh) ReadCycles(src, dst, bytes int) float64 {
	if src == dst {
		return 0
	}
	m.recordRoute(src, dst, 4) // request header
	m.recordRoute(dst, src, bytes)
	hops := float64(m.Hops(src, dst))
	return 2*m.cfg.RouterCycles +
		hops*m.cfg.ReadHopCycles + // request leg
		hops*m.cfg.WriteHopCycles*m.flits(bytes) // reply leg
}

// LinkTraffic returns the bytes forwarded on the directed link leaving core
// in direction d.
func (m *Mesh) LinkTraffic(core int, d Dir) int64 {
	return m.traffic[m.linkIndex(core, d)].Load()
}

// TotalTraffic returns the bytes summed over all links and the number of
// routed messages.
func (m *Mesh) TotalTraffic() (bytes, msgs int64) {
	for i := range m.traffic {
		bytes += m.traffic[i].Load()
	}
	return bytes, m.msgs.Load()
}

// ResetTraffic zeroes all counters.
func (m *Mesh) ResetTraffic() {
	for i := range m.traffic {
		m.traffic[i].Store(0)
	}
	m.msgs.Store(0)
}

// HottestLink returns the most loaded directed link and its byte count.
func (m *Mesh) HottestLink() (core int, d Dir, bytes int64) {
	for c := 0; c < m.Cores(); c++ {
		for dd := Dir(0); dd < numDirs; dd++ {
			if t := m.LinkTraffic(c, dd); t > bytes {
				core, d, bytes = c, dd, t
			}
		}
	}
	return core, d, bytes
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
