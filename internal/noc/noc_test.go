package noc

import (
	"testing"
	"testing/quick"
)

func newMesh(t *testing.T, w, h int) *Mesh {
	t.Helper()
	cfg := DefaultEpiphanyConfig()
	cfg.Width, cfg.Height = w, h
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadGeometry(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 2}} {
		cfg := DefaultEpiphanyConfig()
		cfg.Width, cfg.Height = dims[0], dims[1]
		if _, err := New(cfg); err == nil {
			t.Errorf("accepted %dx%d mesh", dims[0], dims[1])
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := newMesh(t, 4, 4)
	for core := 0; core < m.Cores(); core++ {
		c, r := m.Coord(core)
		if got := m.CoreAt(c, r); got != core {
			t.Errorf("CoreAt(Coord(%d)) = %d", core, got)
		}
	}
}

func TestRouteIsDimensionOrder(t *testing.T) {
	m := newMesh(t, 4, 4)
	// core 1 = (1,0), core 14 = (2,3): X first to col 2, then Y down.
	path := m.Route(1, 14)
	want := []int{1, 2, 6, 10, 14}
	if len(path) != len(want) {
		t.Fatalf("route = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("route = %v, want %v", path, want)
		}
	}
}

// Property: route length equals Manhattan distance + 1, endpoints match,
// and each step moves exactly one hop.
func TestPropertyRouteManhattan(t *testing.T) {
	m := newMesh(t, 8, 8)
	f := func(a, b uint8) bool {
		src := int(a) % m.Cores()
		dst := int(b) % m.Cores()
		path := m.Route(src, dst)
		if len(path) != m.Hops(src, dst)+1 {
			return false
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if m.Hops(path[i], path[i+1]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadCostsMoreThanWrite(t *testing.T) {
	m := newMesh(t, 4, 4)
	for _, pair := range [][2]int{{0, 1}, {0, 15}, {5, 10}} {
		w := m.WriteCycles(pair[0], pair[1], 8)
		r := m.ReadCycles(pair[0], pair[1], 8)
		if r <= w {
			t.Errorf("read %v->%v = %.1f cycles, not above write %.1f (Epiphany reads are ~8x writes)",
				pair[0], pair[1], r, w)
		}
	}
}

func TestLocalAccessIsFree(t *testing.T) {
	m := newMesh(t, 4, 4)
	if c := m.WriteCycles(3, 3, 8); c != 0 {
		t.Errorf("local write cost = %v", c)
	}
	if c := m.ReadCycles(3, 3, 8); c != 0 {
		t.Errorf("local read cost = %v", c)
	}
}

func TestCostGrowsWithDistance(t *testing.T) {
	m := newMesh(t, 4, 4)
	near := m.WriteCycles(0, 1, 8) // 1 hop
	far := m.WriteCycles(0, 15, 8) // 6 hops
	if far <= near {
		t.Errorf("6-hop write %.1f should cost more than 1-hop %.1f", far, near)
	}
}

func TestCostGrowsWithPayload(t *testing.T) {
	m := newMesh(t, 4, 4)
	small := m.WriteCycles(0, 3, 8)
	big := m.WriteCycles(0, 3, 256)
	if big <= small {
		t.Errorf("256B write %.1f should cost more than 8B %.1f", big, small)
	}
}

func TestTrafficCounters(t *testing.T) {
	m := newMesh(t, 4, 4)
	m.WriteCycles(0, 3, 8) // 3 hops east along row 0
	if got := m.LinkTraffic(0, East); got != 8 {
		t.Errorf("link 0->E carried %d bytes, want 8", got)
	}
	if got := m.LinkTraffic(1, East); got != 8 {
		t.Errorf("link 1->E carried %d bytes, want 8", got)
	}
	bytes, msgs := m.TotalTraffic()
	if bytes != 24 || msgs != 1 {
		t.Errorf("total = (%d bytes, %d msgs), want (24, 1)", bytes, msgs)
	}
	core, dir, hot := m.HottestLink()
	if hot != 8 {
		t.Errorf("hottest link %d %v = %d bytes", core, dir, hot)
	}
	m.ResetTraffic()
	if bytes, msgs := m.TotalTraffic(); bytes != 0 || msgs != 0 {
		t.Errorf("after reset: %d bytes, %d msgs", bytes, msgs)
	}
}

// Property: total traffic from a write equals bytes * hops.
func TestPropertyTrafficConservation(t *testing.T) {
	f := func(a, b uint8, sz uint8) bool {
		m := newMesh(t, 4, 4)
		src := int(a) % 16
		dst := int(b) % 16
		bytes := int(sz)%64 + 1
		m.WriteCycles(src, dst, bytes)
		total, _ := m.TotalTraffic()
		return total == int64(bytes*m.Hops(src, dst))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
