package sandbox

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The jail is one-way, so Apply can never run inside the test process:
// every Apply test re-executes the test binary as a helper child (the
// same shape the native tier uses it in).
func TestMain(m *testing.M) {
	switch os.Getenv("SANDBOX_TEST_HELPER") {
	case "":
		os.Exit(m.Run())
	case "apply":
		level, err := Apply(Limits{MemBytes: 4 << 30, NoFile: 64})
		if err != nil {
			fmt.Printf("err=%v\n", err)
			os.Exit(1)
		}
		_, openErr := os.Open(os.Args[0]) // the one file that certainly exists
		fmt.Printf("level=%s open_failed=%v\n", level, openErr != nil)
		os.Exit(0)
	case "spin":
		if _, err := Apply(Limits{CPUSecs: 1}); err != nil {
			fmt.Printf("err=%v\n", err)
			os.Exit(1)
		}
		// Deliberately does NOT subscribe to SIGXCPU: this helper proves
		// the kernel's hard-limit SIGKILL backstop, the path taken by a
		// child whose signal handling is somehow broken. The cooperative
		// SIGXCPU exit is internal/native/child's job and is covered by
		// the native-tier budget tests.
		for i := 0; ; i++ {
			_ = i * i
		}
	}
}

func helper(t *testing.T, mode string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestMain")
	cmd.Env = append(os.Environ(), "SANDBOX_TEST_HELPER="+mode)
	return cmd
}

func TestProbeMatchesPlatform(t *testing.T) {
	level := Probe()
	if runtime.GOOS != "linux" {
		if level != LevelNone || Supported() {
			t.Fatalf("non-linux probe = %q supported=%v, want none/false", level, Supported())
		}
		return
	}
	if !Supported() {
		t.Fatal("Supported() = false on linux")
	}
	if level != LevelRlimit && level != LevelLandlock {
		t.Fatalf("linux probe = %q, want rlimit or rlimit+landlock", level)
	}
}

// TestApplyReachesProbedLevel jails a child and checks two things: the
// achieved level equals what Probe predicted from the parent (same
// kernel), and at the landlock level the filesystem really is sealed —
// opening a file that exists must fail.
func TestApplyReachesProbedLevel(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("sandbox is linux-only")
	}
	out, err := helper(t, "apply").CombinedOutput()
	if err != nil {
		t.Fatalf("helper: %v\n%s", err, out)
	}
	got := strings.TrimSpace(string(out))
	want := fmt.Sprintf("level=%s open_failed=%v", Probe(), Probe() == LevelLandlock)
	if got != want {
		t.Fatalf("helper reported %q, want %q", got, want)
	}
}

// TestCPULimitKillsSpin: a child with a 1-second RLIMIT_CPU spinning
// forever and ignoring SIGXCPU (as the raw Go runtime does) must still
// be destroyed by the hard limit's SIGKILL, a few seconds later, well
// before any wall-clock deadline the parent holds.
func TestCPULimitKillsSpin(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("sandbox is linux-only")
	}
	if testing.Short() {
		t.Skip("burns ~3s of CPU")
	}
	cmd := helper(t, "spin")
	start := time.Now()
	err := cmd.Run()
	if err == nil {
		t.Fatal("spinning child exited cleanly")
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("helper: %v", err)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died with %v, want the hard-limit SIGKILL", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("CPU kill took %s wall time", elapsed)
	}
}
