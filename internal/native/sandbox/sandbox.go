// Package sandbox is the self-jailing prologue for the native tier's
// child processes: a gogen-emitted binary running in lolserv serve mode
// calls Apply before touching untrusted program state, giving up
// resources and filesystem authority it will never need. The jail is
// built from two independent layers:
//
//   - POSIX rlimits (everywhere rlimits exist): RLIMIT_CPU turns the
//     job's step budget into a kernel-enforced CPU-time budget — a true
//     analog of the in-process step meter, unlike a wall-clock deadline
//     which also counts time blocked in barriers — plus RLIMIT_AS
//     (address space), RLIMIT_NOFILE (the child needs stdio and nothing
//     else), and RLIMIT_CORE=0 (a crashing child must not write a core
//     dump of server-adjacent memory to disk).
//
//   - Landlock (Linux 5.13+, best effort): an empty deny-all ruleset
//     over every filesystem access right the running kernel's Landlock
//     ABI knows, applied to all threads. Already-open descriptors
//     (stdio, the result pipe) keep working; any attempt to open,
//     create, or unlink anything else fails with EACCES. Kernels
//     without Landlock fall back — explicitly, reported in the achieved
//     Level — to the rlimit-only jail.
//
// The achieved Level travels back to the parent in the child's JSON
// result and is surfaced through /v1/stats and /v1/healthz, so an
// operator can see at a glance how much containment the fleet actually
// has, not how much it was configured to want.
//
// Apply is deliberately one-way and unprivileged: it needs no
// capabilities (Landlock + prctl(NO_NEW_PRIVS) are unprivileged APIs)
// and cannot be undone from inside the process.
package sandbox

// Level names how much of the jail was actually erected.
type Level string

const (
	// LevelNone: no containment beyond being a separate OS process
	// (non-Linux builds, or Apply never ran).
	LevelNone Level = "none"
	// LevelRlimit: resource limits are in force; the filesystem is not
	// restricted (pre-Landlock kernel or Landlock denied).
	LevelRlimit Level = "rlimit"
	// LevelLandlock: rlimits plus a deny-all Landlock filesystem domain.
	LevelLandlock Level = "rlimit+landlock"
)

// Limits parameterizes the rlimit layer. Zero fields are not applied,
// except Core which is always forced to zero by Apply.
type Limits struct {
	// CPUSecs is the RLIMIT_CPU soft limit in seconds: the kernel
	// delivers SIGXCPU when the process's total CPU time crosses it (the
	// hard limit, two seconds later, is SIGKILL). The parent maps a
	// SIGXCPU death onto the step-budget outcome.
	CPUSecs int64
	// MemBytes is the RLIMIT_AS cap on the process address space. A
	// child that outgrows it sees allocation failure; the Go runtime
	// turns that into a fatal out-of-memory exit the parent treats as a
	// tier failure and re-runs in-process.
	MemBytes int64
	// NoFile is the RLIMIT_NOFILE cap on new file descriptors.
	NoFile int64
}

// Supported reports whether Apply can erect at least the rlimit layer
// on this platform. The parent consults it to decide whether the step
// budget rides on RLIMIT_CPU or must fall back to the wall-clock
// approximation.
func Supported() bool { return supported }

// Probe reports, without modifying the calling process, the Level that
// Apply would reach on this kernel. The parent calls it so stats can
// show the expected containment before the first child has run.
func Probe() Level { return probe() }

// Apply jails the calling process. It returns the Level actually
// reached; the only error it can return is a failure to install the
// rlimit layer (Landlock problems degrade the Level, they are not
// errors — a pre-5.13 kernel is an expected environment, not a fault).
func Apply(l Limits) (Level, error) { return apply(l) }

// OnCPUBudget arranges for fn to run (once, on its own goroutine) when
// the kernel delivers SIGXCPU — the RLIMIT_CPU soft limit. The Go
// runtime ignores SIGXCPU unless subscribed, so a jailed harness that
// wants a classifiable budget death (rather than the hard limit's
// anonymous SIGKILL two seconds later) must call this before running
// untrusted code. No-op on platforms without rlimits.
func OnCPUBudget(fn func()) { onCPUBudget(fn) }
