//go:build !linux

package sandbox

// Non-Linux builds have no rlimit story wired up (the native tier is
// developed and deployed on Linux); the child runs with only OS-process
// isolation and reports LevelNone, and the parent falls back to the
// wall-clock approximation of the step budget.
const supported = false

func probe() Level { return LevelNone }

func apply(Limits) (Level, error) { return LevelNone, nil }

func onCPUBudget(func()) {}
