//go:build linux

package sandbox

import (
	"os"
	"os/signal"
	"syscall"
	"unsafe"
)

const supported = true

// Landlock syscall numbers are identical on every Linux architecture
// (they postdate the asm-generic unification of the syscall table).
const (
	sysLandlockCreateRuleset = 444
	sysLandlockRestrictSelf  = 446

	landlockCreateRulesetVersion = 1 << 0 // flag: query the ABI version

	prSetNoNewPrivs = 38 // prctl
)

// landlock_ruleset_attr, ABI v1 shape: the kernel uses the size we pass
// to interpret the struct, so the 8-byte v1 form works on every later
// ABI.
type landlockRulesetAttr struct {
	handledAccessFS uint64
}

// fsAccessForABI is the full set of filesystem access rights the given
// Landlock ABI version can handle. Handling a right in the ruleset and
// then granting it to nothing is how "deny all" is expressed; rights
// the running kernel does not know must not be named or the ruleset is
// rejected.
func fsAccessForABI(abi int) uint64 {
	// ABI v1: EXECUTE .. MAKE_SYM, 13 rights.
	access := uint64(1<<13 - 1)
	if abi >= 2 {
		access |= 1 << 13 // LANDLOCK_ACCESS_FS_REFER
	}
	if abi >= 3 {
		access |= 1 << 14 // LANDLOCK_ACCESS_FS_TRUNCATE
	}
	if abi >= 5 {
		access |= 1 << 15 // LANDLOCK_ACCESS_FS_IOCTL_DEV
	}
	return access
}

// landlockABI queries the kernel's Landlock ABI version: > 0 when
// Landlock is available and enabled, 0 when it is not.
func landlockABI() int {
	v, _, errno := syscall.Syscall(sysLandlockCreateRuleset, 0, 0, landlockCreateRulesetVersion)
	if errno != 0 {
		return 0 // ENOSYS (old kernel) or EOPNOTSUPP (disabled at boot)
	}
	return int(v)
}

func probe() Level {
	if landlockABI() > 0 {
		return LevelLandlock
	}
	return LevelRlimit
}

func onCPUBudget(fn func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGXCPU)
	go func() { <-ch; fn() }()
}

func apply(l Limits) (Level, error) {
	// Rlimit layer first: if even this fails the caller must know,
	// because the parent has mapped the step budget onto RLIMIT_CPU.
	if err := applyRlimits(l); err != nil {
		return LevelNone, err
	}
	// Landlock layer, best effort: every failure here degrades the level
	// instead of failing the run — an old kernel is an environment, not
	// an error, and a jailed-but-unrestricted child is still better than
	// no child at all.
	if applyLandlock() {
		return LevelLandlock, nil
	}
	return LevelRlimit, nil
}

func applyRlimits(l Limits) error {
	set := func(resource int, soft, hard uint64) error {
		return syscall.Setrlimit(resource, &syscall.Rlimit{Cur: soft, Max: hard})
	}
	// Core dumps: always off. A crashing child must not persist a memory
	// image of the (server-derived) process to disk it can still reach.
	if err := set(syscall.RLIMIT_CORE, 0, 0); err != nil {
		return err
	}
	if l.CPUSecs > 0 {
		// Soft limit delivers SIGXCPU. The Go runtime *ignores* SIGXCPU
		// unless user code subscribes (its sigtable entry is _SigNotify
		// only), so the jailed harness must signal.Notify it and exit —
		// internal/native/child does, with a dedicated exit code the
		// parent classifies as a budget kill. The hard limit two seconds
		// later is the kernel's SIGKILL backstop for a child that
		// somehow never services the signal.
		if err := set(syscall.RLIMIT_CPU, uint64(l.CPUSecs), uint64(l.CPUSecs)+2); err != nil {
			return err
		}
	}
	if l.MemBytes > 0 {
		if err := set(syscall.RLIMIT_AS, uint64(l.MemBytes), uint64(l.MemBytes)); err != nil {
			return err
		}
	}
	if l.NoFile > 0 {
		// Applies to *new* descriptors only; stdio and the already-open
		// runtime fds (epoll) are unaffected.
		if err := set(syscall.RLIMIT_NOFILE, uint64(l.NoFile), uint64(l.NoFile)); err != nil {
			return err
		}
	}
	return nil
}

// applyLandlock erects a deny-all filesystem domain around every thread
// of the process. Returns false (and leaves the process unrestricted)
// on any failure.
func applyLandlock() bool {
	abi := landlockABI()
	if abi <= 0 {
		return false
	}
	attr := landlockRulesetAttr{handledAccessFS: fsAccessForABI(abi)}
	fd, _, errno := syscall.Syscall(sysLandlockCreateRuleset,
		uintptr(unsafe.Pointer(&attr)), unsafe.Sizeof(attr), 0)
	if errno != 0 {
		return false
	}
	defer syscall.Close(int(fd))
	// Landlock domains and no_new_privs are per-thread, and the Go
	// runtime is multithreaded long before user code runs —
	// AllThreadsSyscall is the runtime's mechanism for applying a
	// credential-shaped syscall to every thread at once (it returns
	// ENOTSUP under cgo, which degrades to the rlimit level).
	if _, _, errno := syscall.AllThreadsSyscall(syscall.SYS_PRCTL, prSetNoNewPrivs, 1, 0); errno != 0 {
		return false
	}
	if _, _, errno := syscall.AllThreadsSyscall(sysLandlockRestrictSelf, fd, 0, 0); errno != 0 {
		return false
	}
	return true
}
