//go:build !linux

package native

import (
	"os"
	"time"
)

// atime falls back to the modification time where the platform's Stat
// shape is not wired up: eviction degrades from least-recently-used to
// oldest-published, which is still a sane quota policy.
func atime(fi os.FileInfo) time.Time { return fi.ModTime() }
