//go:build linux

package native

import (
	"os"
	"syscall"
	"time"
)

// atime is the file's access time — the cache's "last used" signal.
// Touch writes it explicitly with Chtimes, so the value is meaningful
// even on relatime/noatime mounts.
func atime(fi os.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
