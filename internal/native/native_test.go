package native

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/parser"
	"repro/internal/sema"
)

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	if testing.Short() {
		t.Skip("skipping go-build test in -short mode")
	}
}

func checkProgram(t *testing.T, src string) *sema.Info {
	t.Helper()
	prog, err := parser.Parse("test.lol", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return info
}

func shaOf(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

func newTestCache(t *testing.T) *Cache {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(t.TempDir(), root)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	return c
}

const helloSrc = `HAI 1.2
VISIBLE SMOOSH "ohai from " AN ME MKAY
KTHXBYE
`

func TestBuildAndRun(t *testing.T) {
	requireGo(t)
	c := newTestCache(t)
	info := checkProgram(t, helloSrc)
	sha := shaOf(helloSrc)

	if _, ok := c.Lookup(sha); ok {
		t.Fatal("Lookup hit before any build")
	}
	bin, err := c.Build(context.Background(), sha, info)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got, ok := c.Lookup(sha); !ok || got != bin {
		t.Fatalf("Lookup after build = %q, %v; want %q, true", got, ok, bin)
	}
	// Idempotent: second Build reuses the binary.
	if again, err := c.Build(context.Background(), sha, info); err != nil || again != bin {
		t.Fatalf("second Build = %q, %v; want cached %q", again, err, bin)
	}

	res, err := RunBinary(context.Background(), bin, RunSpec{NP: 4, Seed: 1, MaxOutput: 1 << 20})
	if err != nil {
		t.Fatalf("RunBinary: %v", err)
	}
	if !res.OK {
		t.Fatalf("child reported failure: %s", res.Error)
	}
	want := "ohai from 0\nohai from 1\nohai from 2\nohai from 3\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
	if res.Stats == nil {
		t.Error("serve result missing stats")
	}
}

func TestBuildUnsupportedSRS(t *testing.T) {
	requireGo(t)
	c := newTestCache(t)
	src := `HAI 1.2
I HAS A x ITZ 1
VISIBLE SRS "x"
KTHXBYE
`
	info := checkProgram(t, src)
	_, err := c.Build(context.Background(), shaOf(src), info)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Build of SRS program = %v, want ErrUnsupported", err)
	}
}

func TestRunBinaryStdinAndFailure(t *testing.T) {
	requireGo(t)
	c := newTestCache(t)
	src := `HAI 1.2
I HAS A line
GIMMEH line
VISIBLE SMOOSH "got " AN line MKAY
KTHXBYE
`
	info := checkProgram(t, src)
	bin, err := c.Build(context.Background(), shaOf(src), info)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := RunBinary(context.Background(), bin, RunSpec{NP: 1, Seed: 1, Stdin: "cheezburger\n", MaxOutput: 1 << 20})
	if err != nil {
		t.Fatalf("RunBinary: %v", err)
	}
	if !res.OK || res.Output != "got cheezburger\n" {
		t.Fatalf("stdin run = ok=%v output=%q error=%q", res.OK, res.Output, res.Error)
	}

	// A failing program is protocol success with OK=false.
	failSrc := `HAI 1.2
I HAS A x ITZ QUOSHUNT OF 1 AN 0
KTHXBYE
`
	finfo := checkProgram(t, failSrc)
	fbin, err := c.Build(context.Background(), shaOf(failSrc), finfo)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	fres, err := RunBinary(context.Background(), fbin, RunSpec{NP: 1, Seed: 1, MaxOutput: 1 << 20})
	if err != nil {
		t.Fatalf("RunBinary on failing program: %v", err)
	}
	if fres.OK || fres.Error == "" {
		t.Fatalf("failing program reported ok=%v error=%q", fres.OK, fres.Error)
	}
}

func TestRunBinaryDeadlineKill(t *testing.T) {
	requireGo(t)
	c := newTestCache(t)
	src := `HAI 1.2
I HAS A i ITZ 0
IM IN YR spin
  i R SUM OF i AN 1
IM OUTTA YR spin
KTHXBYE
`
	info := checkProgram(t, src)
	bin, err := c.Build(context.Background(), shaOf(src), info)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sentinel := errors.New("budget sentinel")
	ctx, cancel := context.WithTimeoutCause(context.Background(), 300*time.Millisecond, sentinel)
	defer cancel()
	_, err = RunBinary(ctx, bin, RunSpec{NP: 1, Seed: 1, MaxOutput: 1 << 20})
	if err == nil {
		t.Fatal("infinite loop returned without error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("kill error = %v, want wrapped budget sentinel", err)
	}
	var te *TierError
	if errors.As(err, &te) {
		t.Fatalf("deadline kill misclassified as TierError: %v", err)
	}
}

func TestRunBinaryTierError(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	// A binary that is not a child-protocol program (here: `go` itself if
	// present, else /bin/sh) yields a TierError, not a panic or a result.
	bin, err := exec.LookPath("sh")
	if err != nil {
		t.Skip("no sh on PATH")
	}
	_, err = RunBinary(context.Background(), bin, RunSpec{NP: 1, Seed: 1, MaxOutput: 1 << 10})
	var te *TierError
	if !errors.As(err, &te) {
		t.Fatalf("non-protocol binary = %v, want TierError", err)
	}
}

func TestLimitedWriter(t *testing.T) {
	var buf bytes.Buffer
	lw := &limitedWriter{w: &buf, n: 5}
	for _, chunk := range []string{"ab", "cd", "efgh"} {
		n, err := lw.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("Write(%q) = %d, %v; want %d, nil", chunk, n, err, len(chunk))
		}
	}
	if got := buf.String(); got != "abcde" {
		t.Errorf("captured %q, want %q (5-byte cap)", got, "abcde")
	}
	if n, err := lw.Write([]byte("more")); n != 4 || err != nil {
		t.Errorf("post-cap Write = %d, %v; want full-claim 4, nil", n, err)
	}
	if !strings.HasPrefix(buf.String(), "abcde") || buf.Len() != 5 {
		t.Errorf("cap leaked: %q", buf.String())
	}
}
