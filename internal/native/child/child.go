// Package child is the runtime harness linked into every gogen-emitted
// binary. The generated main is a thin shim — it declares the program's
// symmetric heap layout and SPMD body and calls Main — so the flag
// surface, the output plumbing, and the lolserv native-tier protocol
// live here, in reviewable library code, instead of being re-emitted
// into every generated program.
//
// Two modes exist:
//
//   - Live (default): the paper's §VI.E toolchain behaviour. VISIBLE
//     streams to stdout and INVISIBLE to stderr as PEs produce them,
//     GIMMEH lines go to whichever PE asks first, and the process exits
//     0/1/2 for ok / program error / usage error. `go run ./gen -np 16`
//     is the repository's `coprsh -np 16 ./x`.
//
//   - Serve (-serve): the subprocess side of lolserv's native execution
//     tier. The run uses the exact grouped-output, output-cap, and
//     shared-stdin plumbing of the in-process engines (backend.RunSPMD),
//     and the process reports one JSON Result object on stdout — ok or
//     not, both output streams, truncation, the achieved sandbox level,
//     and the PGAS stats — with exit code 0 whenever the protocol itself
//     succeeded. A program failure is data, not an exit code, exactly
//     like the server's 200-with-outcome contract. Exit code 2 still
//     means the harness could not run at all (bad flags, world
//     construction failure); the parent treats that as a tier failure
//     and falls back to an in-process engine. Exit code ExitBudget means
//     the kernel's RLIMIT_CPU soft limit fired — the OS-enforced analog
//     of the in-process step meter — and the parent classifies it as a
//     budget kill, never as a tier failure.
//
// Serve mode self-jails before touching program state: it applies
// internal/native/sandbox (RLIMIT_CPU from the parent's -cpu-budget,
// RLIMIT_AS from -mem-limit, RLIMIT_NOFILE, RLIMIT_CORE=0, plus a
// deny-all Landlock filesystem domain where the kernel supports one)
// and reports the level actually reached in the Result. The jail is
// unprivileged and one-way; -no-sandbox exists for benchmarking the
// difference, not for production.
//
// Because both modes drive backend.RunSPMD, a deterministic program's
// grouped output is byte-identical across all four execution tiers —
// the property the server's result cache and the native differential
// tests are built on.
package child

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/machine"
	"repro/internal/native/sandbox"
	"repro/internal/shmem"
)

// ExitBudget is the serve-mode exit code for an RLIMIT_CPU soft-limit
// death: the child caught SIGXCPU and stopped. The parent maps it onto
// the step-budget outcome, so a kernel CPU kill classifies exactly like
// an in-process step-meter kill.
const ExitBudget = 3

// Spec is what a generated binary knows about its program: the symmetric
// heap layout (paper Figure 1), the implicit lock count, and the SPMD
// body itself.
type Spec struct {
	Symbols []shmem.SymbolSpec
	Locks   int
	Body    func(pe *shmem.PE, peio backend.PEIO) error
}

// Result is the one JSON object a -serve run writes to stdout: the
// subprocess-protocol image of backend.Result plus the fields the parent
// needs to rebuild a server response without re-deriving anything.
type Result struct {
	// OK reports that the program ran to completion. A false OK carries
	// the failure in Error; the harness still exits 0 — the protocol
	// worked, the program failed.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Output and Errout carry VISIBLE and INVISIBLE text, grouped per PE
	// in rank order (partial on failure, same as the in-process tiers).
	Output string `json:"output"`
	Errout string `json:"errout,omitempty"`
	// Truncated reports that the -max-output cap dropped output bytes.
	Truncated bool `json:"truncated,omitempty"`
	// Sandbox is the containment level the self-jailing prologue actually
	// reached (sandbox.Level: "none", "rlimit", or "rlimit+landlock").
	Sandbox string `json:"sandbox,omitempty"`
	// Stats and SimNanos mirror RunResponse: world counters and the
	// slowest PE's simulated time. Stats is nil on failed runs.
	Stats    *shmem.StatsSnapshot `json:"stats,omitempty"`
	SimNanos float64              `json:"sim_nanos,omitempty"`
}

// Main parses the generated binary's flags and runs the program. It does
// not return.
func Main(spec Spec) {
	np := flag.Int("np", 1, "number of processing elements")
	machineName := flag.String("machine", "smp", "cost model: "+strings.Join(machine.Names(), ", "))
	seed := flag.Int64("seed", 1, "base RNG seed (PE i uses seed+i)")
	dissem := flag.Bool("dissemination-barrier", false, "use the dissemination barrier")
	serve := flag.Bool("serve", false, "lolserv native-tier mode: grouped output, JSON result on stdout")
	maxOutput := flag.Int("max-output", 0, "serve mode: cap each output stream at this many bytes (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "serve mode: wall-clock budget; the run is torn down cooperatively (0 = none)")
	cpuBudget := flag.Int64("cpu-budget", 0, "serve mode: RLIMIT_CPU seconds, the step budget's kernel analog (0 = none)")
	memLimit := flag.Int64("mem-limit", 0, "serve mode: RLIMIT_AS bytes (0 = none)")
	noSandbox := flag.Bool("no-sandbox", false, "serve mode: skip the self-jailing prologue (benchmarking only)")
	flag.Parse()

	model, err := machine.ByName(*machineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	alg := shmem.BarrierCentral
	if *dissem {
		alg = shmem.BarrierDissemination
	}
	world, err := shmem.NewWorld(*np, spec.Symbols, spec.Locks, shmem.Options{
		Model: model, Seed: *seed, Barrier: alg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := backend.Config{
		NP:      *np,
		Model:   model,
		Barrier: alg,
		Seed:    *seed,
		Stdin:   os.Stdin,
	}
	if *serve {
		os.Exit(serveMode(cfg, world, spec, serveOpts{
			maxOutput: *maxOutput,
			timeout:   *timeout,
			cpuBudget: *cpuBudget,
			memLimit:  *memLimit,
			noSandbox: *noSandbox,
		}))
	}

	// Live mode: stream through. RunSPMD's ungrouped PEWriters serialize
	// concurrent PEs onto the real streams, the same discipline the
	// in-process engines use.
	cfg.Stdout, cfg.Stderr = os.Stdout, os.Stderr
	if _, err := backend.RunSPMD(cfg, world, spec.Body); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

type serveOpts struct {
	maxOutput int
	timeout   time.Duration
	cpuBudget int64
	memLimit  int64
	noSandbox bool
}

// childNoFile caps new file descriptors in the jailed child. Serve mode
// opens nothing after the prologue — stdio and the runtime's own fds
// are already open and unaffected — so the cap is pure attack-surface
// reduction, sized with slack for runtime internals.
const childNoFile = 64

func serveMode(cfg backend.Config, world *shmem.World, spec Spec, o serveOpts) int {
	// Self-jail before any untrusted program state is touched. SIGXCPU
	// must be subscribed first: the Go runtime swallows it otherwise,
	// and the whole point is a classifiable budget death instead of the
	// hard limit's anonymous SIGKILL.
	level := sandbox.LevelNone
	if !o.noSandbox {
		sandbox.OnCPUBudget(func() { os.Exit(ExitBudget) })
		var err error
		level, err = sandbox.Apply(sandbox.Limits{
			CPUSecs:  o.cpuBudget,
			MemBytes: o.memLimit,
			NoFile:   childNoFile,
		})
		if err != nil {
			// The rlimit layer failed, so the kernel is not holding the
			// budgets the parent thinks it is. Refuse to run: a tier
			// failure (the parent falls back in-process) is strictly
			// safer than executing untrusted code unjailed.
			fmt.Fprintf(os.Stderr, "sandbox: %v\n", err)
			return 2
		}
	}

	var out, errw strings.Builder
	cfg.Stdout, cfg.Stderr = &out, &errw
	cfg.GroupOutput = true
	cfg.MaxOutput = o.maxOutput
	if o.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
		defer cancel()
		cfg.Context = ctx
	}

	res, runErr := backend.RunSPMD(cfg, world, spec.Body)
	r := Result{
		OK:      runErr == nil,
		Output:  out.String(),
		Errout:  errw.String(),
		Sandbox: string(level),
	}
	if res != nil {
		r.Truncated = res.OutputTruncated
	}
	if runErr != nil {
		r.Error = runErr.Error()
	} else if res != nil {
		stats := res.Stats
		r.Stats = &stats
		for _, ns := range res.SimNanos {
			if ns > r.SimNanos {
				r.SimNanos = ns
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		// Stdout is gone; nothing useful left to report.
		return 2
	}
	return 0
}
