package native

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// quotaCache opens a cache over a temp dir without requiring the go
// toolchain — quota logic never shells out.
func quotaCache(t *testing.T) *Cache {
	t.Helper()
	c, err := NewCache(t.TempDir(), moduleRootForTest(t))
	if err != nil {
		t.Skipf("native cache unavailable: %v", err)
	}
	return c
}

func moduleRootForTest(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// plant writes a fake cached binary of the given size whose last-use
// timestamp is age ago.
func plant(t *testing.T, c *Cache, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(c.Dir(), name)
	if err := os.WriteFile(path, make([]byte, size), 0o755); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
	return path
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func TestQuotaEvictsLRU(t *testing.T) {
	c := quotaCache(t)
	oldest := plant(t, c, "a.g3.bin", 1000, 3*time.Hour)
	middle := plant(t, c, "b.g3.bin", 1000, 2*time.Hour)
	newest := plant(t, c, "c.g3.bin", 1000, time.Hour)
	notBin := plant(t, c, "README", 5000, 5*time.Hour) // never quota fodder

	c.SetMaxBytes(2500)

	if exists(oldest) {
		t.Error("oldest binary survived a quota that required one eviction")
	}
	if !exists(middle) || !exists(newest) {
		t.Error("quota evicted more than it needed to")
	}
	if !exists(notBin) {
		t.Error("quota deleted a non-.bin file")
	}
	if got := c.Evictions(); got != 1 {
		t.Errorf("Evictions() = %d, want 1", got)
	}

	// Tighten further: the next-oldest goes too.
	c.SetMaxBytes(1500)
	if exists(middle) {
		t.Error("middle binary survived the tightened quota")
	}
	if !exists(newest) {
		t.Error("newest binary evicted while still under quota")
	}
	if got := c.Evictions(); got != 2 {
		t.Errorf("Evictions() = %d, want 2", got)
	}
}

func TestQuotaGraceSparesHotBinaries(t *testing.T) {
	c := quotaCache(t)
	cold := plant(t, c, "cold.g3.bin", 1000, time.Hour)
	hot := plant(t, c, "hot1.g3.bin", 1000, 0)
	hot2 := plant(t, c, "hot2.g3.bin", 1000, 0)

	// Quota of one file: the cold binary goes, but the two hot ones are
	// both inside the grace window — the cache runs over quota rather
	// than evicting something about to be exec'd.
	c.SetMaxBytes(1000)
	if exists(cold) {
		t.Error("cold binary survived")
	}
	if !exists(hot) || !exists(hot2) {
		t.Error("grace window did not protect recently used binaries")
	}
	if got := c.Evictions(); got != 1 {
		t.Errorf("Evictions() = %d, want 1", got)
	}
}

func TestQuotaCountsStaleVersions(t *testing.T) {
	c := quotaCache(t)
	stale := plant(t, c, strings.Repeat("a", 64)+".g1.bin", 4000, 2*time.Hour)
	fresh := plant(t, c, strings.Repeat("b", 64)+".g3.bin", 1000, time.Hour)

	c.SetMaxBytes(2000)
	if exists(stale) {
		t.Error("stale-version binary should be first out: it can never be adopted")
	}
	if !exists(fresh) {
		t.Error("current-version binary evicted while stale one was available")
	}
}

func TestTouchRefreshesEvictionOrder(t *testing.T) {
	c := quotaCache(t)
	shaA := strings.Repeat("1", 64)
	shaB := strings.Repeat("2", 64)
	a := plant(t, c, shaA+".g3.bin", 1000, 3*time.Hour)
	b := plant(t, c, shaB+".g3.bin", 1000, 2*time.Hour)

	// A run touches the older binary; the other one is now the LRU.
	c.Touch(shaA)
	c.SetMaxBytes(1000)
	if !exists(a) {
		t.Error("touched binary was evicted")
	}
	if exists(b) {
		t.Error("untouched binary survived")
	}
}

func TestRemoveDeletesBinary(t *testing.T) {
	c := quotaCache(t)
	sha := strings.Repeat("c", 64)
	path := plant(t, c, sha+".g3.bin", 100, 0)
	c.Remove(sha)
	if exists(path) {
		t.Error("Remove left the binary on disk")
	}
	c.Remove(sha) // idempotent: removing a missing binary is fine
}

func TestSweepStaleTmp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "x.g3.bin.tmp")
	young := filepath.Join(dir, "y.g3.bin.tmp")
	for _, p := range []string{stale, young} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := NewCache(dir, moduleRootForTest(t)); err != nil {
		t.Skipf("native cache unavailable: %v", err)
	}
	if exists(stale) {
		t.Error("stale .tmp survived NewCache")
	}
	if !exists(young) {
		t.Error("young .tmp was swept; it may belong to a live build")
	}
}
