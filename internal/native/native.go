// Package native is the fourth execution tier: it turns a hot program
// into a standalone gogen-compiled binary and runs jobs for it as OS
// subprocesses. The in-process tiers (interp, vm, compile) share the
// server's address space and rely on cooperative metering; this tier's
// isolation story is the operating system — a hostile program is a
// process the kernel can kill, not a goroutine the runtime must unwind.
//
// The package has two halves:
//
//   - Cache: the on-disk binary cache and builder. Binaries are keyed by
//     the program's source sha256 plus gogen.Version, so a codegen fix
//     invalidates every stale binary by construction, and a restarted
//     server re-adopts binaries built by its predecessor with a stat.
//
//   - RunBinary: the subprocess runner. It maps one job onto the child
//     protocol (internal/native/child): stdin is piped, VISIBLE/INVISIBLE
//     come back grouped inside one JSON result on stdout, output caps are
//     enforced both in-child and on the parent's pipe, and the deadline
//     is a context kill — the child gets no -timeout of its own, so
//     deadline classification belongs to exactly one process. Step
//     budgets cannot be metered inside generated code, so the caller
//     approximates them as a wall deadline (see server's promotion docs).
//
// Promotion policy — when to build, how to route, what to fall back to —
// lives in internal/server; this package only knows how to build and run.
package native

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/gogen"
	"repro/internal/native/child"
	"repro/internal/sema"
)

// ErrUnsupported marks a program the static lowering cannot express
// (currently SRS). The server records it as permanently unpromotable.
var ErrUnsupported = errors.New("native: program not supported by the Go emitter")

// Check reports, without emitting anything, whether the program can be
// lowered by the Go emitter; the error wraps ErrUnsupported. The server's
// promotion policy calls this before queueing a build so unpromotable
// programs are marked up front.
func Check(info *sema.Info) error {
	if err := gogen.Check(info); err != nil {
		return fmt.Errorf("%w: %w", ErrUnsupported, err)
	}
	return nil
}

// TierError is any native-tier infrastructure failure — the binary
// would not start, the protocol broke, the toolchain is missing. It is
// distinct from both a program failure (which the protocol reports as
// data) and a budget/deadline kill (which surfaces as the context's
// error): the server reacts to a TierError by demoting the program and
// falling back to an in-process engine.
type TierError struct{ Err error }

func (e *TierError) Error() string { return fmt.Sprintf("native tier: %v", e.Err) }
func (e *TierError) Unwrap() error { return e.Err }

// Cache builds and stores promoted binaries on disk.
type Cache struct {
	dir        string // binaries live here
	moduleRoot string // the repro module checkout go build runs in
	goTool     string
}

// NewCache opens (creating if needed) the binary cache at dir. moduleRoot
// must be the root of this repository's module checkout: the emitted
// programs import repro/internal/..., so `go build` has to run inside it.
// Empty moduleRoot auto-detects from the working directory.
func NewCache(dir, moduleRoot string) (*Cache, error) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		return nil, fmt.Errorf("native: go toolchain not available: %w", err)
	}
	if moduleRoot == "" {
		moduleRoot, err = FindModuleRoot()
		if err != nil {
			return nil, err
		}
	}
	if _, err := os.Stat(filepath.Join(moduleRoot, "go.mod")); err != nil {
		return nil, fmt.Errorf("native: %s is not a module root: %w", moduleRoot, err)
	}
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "lolserv-native")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("native: creating binary cache: %w", err)
	}
	return &Cache{dir: dir, moduleRoot: moduleRoot, goTool: goTool}, nil
}

// FindModuleRoot walks upward from the working directory to the nearest
// go.mod — where `go build` of emitted programs must run.
func FindModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("native: no go.mod above the working directory; pass the module root explicitly")
		}
		dir = parent
	}
}

// Dir returns the binary cache directory.
func (c *Cache) Dir() string { return c.dir }

// Salt is the executing tier's version fingerprint. The server folds it
// into the result-cache key of every natively-routed job, so results
// produced by one codegen version can never answer jobs that would run
// under another.
func (c *Cache) Salt() string { return "native:gogen@" + gogen.Version }

// PathFor is the cache path of the binary for the program with the given
// source sha256 (hex) under the current gogen version. The layout is
// public so tests and warm-start tooling can pre-populate the cache.
func (c *Cache) PathFor(sha string) string {
	return filepath.Join(c.dir, sha+"."+gogen.Version+".bin")
}

// DiskUsage reports the total size and count of cached binaries on disk,
// across every gogen version — stale-version binaries still occupy the
// disk, so they belong in the gauge. Errors (cache directory removed out
// from under us) report zero rather than failing a stats scrape.
func (c *Cache) DiskUsage() (bytes int64, entries int) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, 0
	}
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".bin") {
			continue
		}
		if fi, err := de.Info(); err == nil && fi.Mode().IsRegular() {
			bytes += fi.Size()
			entries++
		}
	}
	return bytes, entries
}

// Lookup reports whether a binary for sha is already on disk — including
// binaries built by a previous server process.
func (c *Cache) Lookup(sha string) (string, bool) {
	path := c.PathFor(sha)
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		return path, true
	}
	return "", false
}

// Build emits the program to Go and compiles it into the cache,
// returning the binary path. A program the emitter rejects returns an
// error wrapping ErrUnsupported. Build is idempotent — an existing
// binary is reused — but not internally single-flighted; the server's
// promotion queue guarantees one build per program.
func (c *Cache) Build(ctx context.Context, sha string, info *sema.Info) (string, error) {
	if path, ok := c.Lookup(sha); ok {
		return path, nil
	}
	if err := gogen.Check(info); err != nil {
		return "", fmt.Errorf("%w: %w", ErrUnsupported, err)
	}
	src, err := gogen.Emit(info)
	if err != nil {
		// Emit failures beyond Check's list are still "this program
		// cannot be lowered", just discovered later.
		return "", fmt.Errorf("%w: %w", ErrUnsupported, err)
	}

	// The generated main imports repro/internal/..., so it must be built
	// from inside the module tree; the package dir is temporary, the
	// binary is not.
	genDir, err := os.MkdirTemp(c.moduleRoot, ".native-build-")
	if err != nil {
		return "", fmt.Errorf("native: build dir: %w", err)
	}
	defer os.RemoveAll(genDir)
	if err := os.WriteFile(filepath.Join(genDir, "main.go"), src, 0o644); err != nil {
		return "", fmt.Errorf("native: writing generated main: %w", err)
	}

	// Build to a temp name and publish with an atomic rename so a
	// concurrent Lookup never observes a half-written executable.
	final := c.PathFor(sha)
	tmp := final + ".tmp"
	cmd := exec.CommandContext(ctx, c.goTool, "build", "-o", tmp, "./"+filepath.Base(genDir))
	cmd.Dir = c.moduleRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("native: go build: %w\n%s", err, out)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("native: publishing binary: %w", err)
	}
	return final, nil
}

// RunSpec maps the executable part of a backend.Config onto the child
// process.
type RunSpec struct {
	NP        int
	Seed      int64
	Stdin     string
	MaxOutput int // per-stream byte cap enforced in-child and on the pipe
}

// pipeSlack bounds everything in the child's JSON result besides the two
// (already capped) output streams: framing, stats, and escaping overhead.
const pipeSlack = 64 << 10

// RunBinary executes one job on a promoted binary under the -serve
// protocol. The context is the job's full budget: when it ends the child
// is killed and the context's cause is returned, so callers classify
// deadline vs budget-approximation kills exactly like in-process runs.
// Any other failure to complete the protocol returns a *TierError.
//
// The parent enforces its own cap on the result pipe — 12x the
// per-stream limit, the worst case of two fully escaped streams plus
// slack — so even a compromised child cannot flood server memory.
func RunBinary(ctx context.Context, bin string, spec RunSpec) (*child.Result, error) {
	// The parent's context kill is the single deadline authority: the child
	// is NOT given its own -timeout, so a deadline can never race between a
	// cooperative in-child teardown (which would surface as a runtime error
	// in the result) and the parent's kill (which classifies correctly).
	args := []string{
		"-serve",
		"-np", fmt.Sprint(spec.NP),
		"-seed", fmt.Sprint(spec.Seed),
		"-max-output", fmt.Sprint(spec.MaxOutput),
	}
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stdin = strings.NewReader(spec.Stdin)
	var stdout, stderr bytes.Buffer
	if spec.MaxOutput > 0 {
		// Two streams, each at most MaxOutput bytes before JSON escaping
		// (worst case 6x: every byte a \uXXXX sequence), plus slack.
		cmd.Stdout = &limitedWriter{w: &stdout, n: 12*int64(spec.MaxOutput) + pipeSlack}
	} else {
		cmd.Stdout = &stdout
	}
	cmd.Stderr = &limitedWriter{w: &stderr, n: 16 << 10} // diagnostics only
	cmd.WaitDelay = 5 * time.Second

	runErr := cmd.Run()
	if ctx.Err() != nil {
		// Killed (or about to be): surface the cause — the job deadline,
		// the budget approximation, or the client going away.
		return nil, cause(ctx)
	}
	if runErr != nil {
		return nil, &TierError{Err: fmt.Errorf("%s: %w: %s", filepath.Base(bin), runErr, firstLine(stderr.String()))}
	}
	var res child.Result
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		return nil, &TierError{Err: fmt.Errorf("%s: undecodable result: %w", filepath.Base(bin), err)}
	}
	return &res, nil
}

// cause prefers the context's recorded cause (e.g. the step-budget
// sentinel) over the bare Canceled/DeadlineExceeded.
func cause(ctx context.Context) error {
	if c := context.Cause(ctx); c != nil {
		if errors.Is(ctx.Err(), c) {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %w", c, ctx.Err())
	}
	return ctx.Err()
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// limitedWriter accepts at most n bytes and silently drops the rest;
// a flooding child therefore produces a truncated buffer whose JSON
// decode fails, which the server treats as a tier failure.
type limitedWriter struct {
	w io.Writer
	n int64
}

func (l *limitedWriter) Write(p []byte) (int, error) {
	keep := p
	if l.n <= 0 {
		keep = nil
	} else if int64(len(keep)) > l.n {
		keep = keep[:l.n]
	}
	l.n -= int64(len(keep))
	if len(keep) > 0 {
		if _, err := l.w.Write(keep); err != nil {
			return 0, err
		}
	}
	// Claim the full write so exec's pipe copier keeps draining the child.
	return len(p), nil
}
