// Package native is the fourth execution tier: it turns a hot program
// into a standalone gogen-compiled binary and runs jobs for it as OS
// subprocesses. The in-process tiers (interp, vm, compile) share the
// server's address space and rely on cooperative metering; this tier's
// isolation story is the operating system — a hostile program is a
// process the kernel can kill, not a goroutine the runtime must unwind.
//
// The package has two halves:
//
//   - Cache: the on-disk binary cache and builder. Binaries are keyed by
//     the program's source sha256 plus gogen.Version, so a codegen fix
//     invalidates every stale binary by construction, and a restarted
//     server re-adopts binaries built by its predecessor with a stat.
//
//   - RunBinary: the subprocess runner. It maps one job onto the child
//     protocol (internal/native/child): stdin is piped, VISIBLE/INVISIBLE
//     come back grouped inside one JSON result on stdout, output caps are
//     enforced both in-child and on the parent's pipe, and the deadline
//     is a context kill — the child gets no -timeout of its own, so
//     deadline classification belongs to exactly one process. Step
//     budgets cannot be metered inside generated code; where the sandbox
//     is available (Linux) the caller converts them to an RLIMIT_CPU
//     second count the child self-imposes, and a CPU-limit death comes
//     back as backend.ErrStepBudget — the kernel analog of the
//     in-process step meter. Elsewhere the caller falls back to the old
//     wall-deadline approximation.
//
// Promotion policy — when to build, how to route, what to fall back to —
// lives in internal/server; this package only knows how to build and run.
package native

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/faultinject"
	"repro/internal/gogen"
	"repro/internal/native/child"
	"repro/internal/sema"
)

// ErrUnsupported marks a program the static lowering cannot express
// (currently SRS). The server records it as permanently unpromotable.
var ErrUnsupported = errors.New("native: program not supported by the Go emitter")

// Check reports, without emitting anything, whether the program can be
// lowered by the Go emitter; the error wraps ErrUnsupported. The server's
// promotion policy calls this before queueing a build so unpromotable
// programs are marked up front.
func Check(info *sema.Info) error {
	if err := gogen.Check(info); err != nil {
		return fmt.Errorf("%w: %w", ErrUnsupported, err)
	}
	return nil
}

// TierError is any native-tier infrastructure failure — the binary
// would not start, the protocol broke, the toolchain is missing. It is
// distinct from both a program failure (which the protocol reports as
// data) and a budget/deadline kill (which surfaces as the context's
// error): the server reacts to a TierError by demoting the program and
// falling back to an in-process engine.
type TierError struct{ Err error }

func (e *TierError) Error() string { return fmt.Sprintf("native tier: %v", e.Err) }
func (e *TierError) Unwrap() error { return e.Err }

// Cache builds and stores promoted binaries on disk. An optional byte
// quota (SetMaxBytes) bounds the directory: when a newly published
// binary pushes the total over, the least-recently-used binaries are
// evicted. "Used" is the file's access time, which the server bumps
// explicitly (Touch) on every native run, so the LRU order does not
// depend on mount options like noatime.
type Cache struct {
	dir        string // binaries live here
	moduleRoot string // the repro module checkout go build runs in
	goTool     string

	evictMu   sync.Mutex // serializes quota scans; also guards maxBytes
	maxBytes  int64      // 0 = unlimited
	evictions atomic.Int64
}

// NewCache opens (creating if needed) the binary cache at dir. moduleRoot
// must be the root of this repository's module checkout: the emitted
// programs import repro/internal/..., so `go build` has to run inside it.
// Empty moduleRoot auto-detects from the working directory.
func NewCache(dir, moduleRoot string) (*Cache, error) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		return nil, fmt.Errorf("native: go toolchain not available: %w", err)
	}
	if moduleRoot == "" {
		moduleRoot, err = FindModuleRoot()
		if err != nil {
			return nil, err
		}
	}
	if _, err := os.Stat(filepath.Join(moduleRoot, "go.mod")); err != nil {
		return nil, fmt.Errorf("native: %s is not a module root: %w", moduleRoot, err)
	}
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "lolserv-native")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("native: creating binary cache: %w", err)
	}
	c := &Cache{dir: dir, moduleRoot: moduleRoot, goTool: goTool}
	c.sweepStaleTmp()
	return c, nil
}

// sweepStaleTmp deletes build temporaries (*.bin.tmp) older than an
// hour: half-written binaries orphaned by a crashed or killed
// predecessor, which the atomic-rename publish protocol guarantees are
// garbage. Young temporaries are left alone — they may belong to a live
// build in another process sharing the cache directory.
func (c *Cache) sweepStaleTmp() {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".bin.tmp") {
			continue
		}
		if fi, err := de.Info(); err == nil && time.Since(fi.ModTime()) > time.Hour {
			os.Remove(filepath.Join(c.dir, de.Name()))
		}
	}
}

// FindModuleRoot walks upward from the working directory to the nearest
// go.mod — where `go build` of emitted programs must run.
func FindModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("native: no go.mod above the working directory; pass the module root explicitly")
		}
		dir = parent
	}
}

// Dir returns the binary cache directory.
func (c *Cache) Dir() string { return c.dir }

// Salt is the executing tier's version fingerprint. The server folds it
// into the result-cache key of every natively-routed job, so results
// produced by one codegen version can never answer jobs that would run
// under another.
func (c *Cache) Salt() string { return "native:gogen@" + gogen.Version }

// PathFor is the cache path of the binary for the program with the given
// source sha256 (hex) under the current gogen version. The layout is
// public so tests and warm-start tooling can pre-populate the cache.
func (c *Cache) PathFor(sha string) string {
	return filepath.Join(c.dir, sha+"."+gogen.Version+".bin")
}

// DiskUsage reports the total size and count of cached binaries on disk,
// across every gogen version — stale-version binaries still occupy the
// disk, so they belong in the gauge. Errors (cache directory removed out
// from under us) report zero rather than failing a stats scrape.
func (c *Cache) DiskUsage() (bytes int64, entries int) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, 0
	}
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".bin") {
			continue
		}
		if fi, err := de.Info(); err == nil && fi.Mode().IsRegular() {
			bytes += fi.Size()
			entries++
		}
	}
	return bytes, entries
}

// SetMaxBytes installs (or, with 0, removes) the cache's byte quota and
// immediately enforces it. The quota counts every *.bin file in the
// directory, stale gogen versions included — they occupy the same disk.
func (c *Cache) SetMaxBytes(n int64) {
	c.evictMu.Lock()
	c.maxBytes = n
	c.evictMu.Unlock()
	c.enforceQuota()
}

// MaxBytes reports the configured quota (0 = unlimited).
func (c *Cache) MaxBytes() int64 {
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	return c.maxBytes
}

// Evictions reports how many binaries the quota has evicted since the
// cache opened.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Touch marks the binary for sha as just-used by bumping its access
// time. The server calls it on every native run; eviction order reads
// the same timestamp back, so LRU works even on noatime mounts.
func (c *Cache) Touch(sha string) {
	_ = os.Chtimes(c.PathFor(sha), time.Now(), time.Time{})
}

// Remove deletes the cached binary for sha under the current gogen
// version. The server's demotion path calls it so a binary that broke
// the protocol cannot be re-adopted after a restart. Removal is safe
// against a concurrent execution (the inode outlives the unlink) and a
// concurrent adoption (a Lookup after Remove simply misses and the
// program re-enters the build path).
func (c *Cache) Remove(sha string) {
	_ = os.Remove(c.PathFor(sha))
}

// evictionGrace shields binaries used or published within the window
// from eviction: a binary the server touched seconds ago is about to be
// exec'd again, and evicting it would thrash the builder. If everything
// under quota pressure is inside the grace window the cache runs over
// quota briefly instead — the quota is a target, not an invariant.
const evictionGrace = time.Minute

// enforceQuota scans the cache and deletes least-recently-used binaries
// until the total is back under the quota. Called after every publish
// and on SetMaxBytes; a scan that races a publish or an adoption is
// safe for the same reasons Remove is.
func (c *Cache) enforceQuota() {
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	if c.maxBytes <= 0 {
		return
	}
	type ent struct {
		path string
		size int64
		used time.Time
	}
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	var total int64
	var ents []ent
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".bin") {
			continue
		}
		fi, err := de.Info()
		if err != nil || !fi.Mode().IsRegular() {
			continue
		}
		total += fi.Size()
		ents = append(ents, ent{filepath.Join(c.dir, de.Name()), fi.Size(), atime(fi)})
	}
	if total <= c.maxBytes {
		return
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].used.Before(ents[j].used) })
	now := time.Now()
	for _, e := range ents {
		if total <= c.maxBytes {
			break
		}
		if now.Sub(e.used) < evictionGrace {
			// Sorted by age: everything from here on is hotter still.
			break
		}
		if err := os.Remove(e.path); err == nil {
			total -= e.size
			c.evictions.Add(1)
		}
	}
}

// Lookup reports whether a binary for sha is already on disk — including
// binaries built by a previous server process.
func (c *Cache) Lookup(sha string) (string, bool) {
	path := c.PathFor(sha)
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		return path, true
	}
	return "", false
}

// Build emits the program to Go and compiles it into the cache,
// returning the binary path. A program the emitter rejects returns an
// error wrapping ErrUnsupported. Build is idempotent — an existing
// binary is reused — but not internally single-flighted; the server's
// promotion queue guarantees one build per program.
func (c *Cache) Build(ctx context.Context, sha string, info *sema.Info) (string, error) {
	if path, ok := c.Lookup(sha); ok {
		return path, nil
	}
	if faultinject.Fire("native.build.fail") {
		return "", fmt.Errorf("native: go build: %w", faultinject.ErrInjected)
	}
	if err := gogen.Check(info); err != nil {
		return "", fmt.Errorf("%w: %w", ErrUnsupported, err)
	}
	src, err := gogen.Emit(info)
	if err != nil {
		// Emit failures beyond Check's list are still "this program
		// cannot be lowered", just discovered later.
		return "", fmt.Errorf("%w: %w", ErrUnsupported, err)
	}

	// The generated main imports repro/internal/..., so it must be built
	// from inside the module tree; the package dir is temporary, the
	// binary is not.
	genDir, err := os.MkdirTemp(c.moduleRoot, ".native-build-")
	if err != nil {
		return "", fmt.Errorf("native: build dir: %w", err)
	}
	defer os.RemoveAll(genDir)
	if err := os.WriteFile(filepath.Join(genDir, "main.go"), src, 0o644); err != nil {
		return "", fmt.Errorf("native: writing generated main: %w", err)
	}

	// Build to a temp name and publish with an atomic rename so a
	// concurrent Lookup never observes a half-written executable.
	final := c.PathFor(sha)
	tmp := final + ".tmp"
	cmd := exec.CommandContext(ctx, c.goTool, "build", "-o", tmp, "./"+filepath.Base(genDir))
	cmd.Dir = c.moduleRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("native: go build: %w\n%s", err, out)
	}
	if faultinject.Fire("native.build.corrupt") {
		// Chaos seam: publish a well-formed-looking but non-executable
		// binary, the on-disk shape of a torn write or bad disk.
		if err := os.WriteFile(tmp, []byte("#!corrupt\n"), 0o755); err != nil {
			return "", fmt.Errorf("native: corrupt failpoint: %w", err)
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("native: publishing binary: %w", err)
	}
	c.enforceQuota()
	return final, nil
}

// RunSpec maps the executable part of a backend.Config onto the child
// process.
type RunSpec struct {
	NP        int
	Seed      int64
	Stdin     string
	MaxOutput int // per-stream byte cap enforced in-child and on the pipe

	// CPUBudgetSecs, when > 0, becomes the child's RLIMIT_CPU soft limit:
	// the kernel-enforced analog of the job's step budget. A child that
	// dies of it is reported as backend.ErrStepBudget, not a tier failure.
	CPUBudgetSecs int64
	// MemBytes, when > 0, becomes the child's RLIMIT_AS cap. A child that
	// outgrows it dies a runtime-OOM death the parent reports as a
	// TierError, so the job falls back in-process.
	MemBytes int64
	// NoSandbox skips the child's self-jailing prologue (benchmarks only).
	NoSandbox bool
}

// pipeSlack bounds everything in the child's JSON result besides the two
// (already capped) output streams: framing, stats, and escaping overhead.
const pipeSlack = 64 << 10

// RunBinary executes one job on a promoted binary under the -serve
// protocol. The context is the job's wall deadline: when it ends the
// child is killed and the context's cause is returned, so callers
// classify deadline kills exactly like in-process runs. A CPU-budget
// death — the child's RLIMIT_CPU firing, in any of its three shapes —
// returns an error wrapping backend.ErrStepBudget. Any other failure to
// complete the protocol returns a *TierError.
//
// The parent enforces its own cap on the result pipe — 12x the
// per-stream limit, the worst case of two fully escaped streams plus
// slack — so even a compromised child cannot flood server memory.
func RunBinary(ctx context.Context, bin string, spec RunSpec) (*child.Result, error) {
	// The parent's context kill is the single deadline authority: the child
	// is NOT given its own -timeout, so a deadline can never race between a
	// cooperative in-child teardown (which would surface as a runtime error
	// in the result) and the parent's kill (which classifies correctly).
	args := []string{
		"-serve",
		"-np", fmt.Sprint(spec.NP),
		"-seed", fmt.Sprint(spec.Seed),
		"-max-output", fmt.Sprint(spec.MaxOutput),
	}
	if spec.CPUBudgetSecs > 0 {
		args = append(args, "-cpu-budget", fmt.Sprint(spec.CPUBudgetSecs))
	}
	if spec.MemBytes > 0 {
		args = append(args, "-mem-limit", fmt.Sprint(spec.MemBytes))
	}
	if spec.NoSandbox {
		args = append(args, "-no-sandbox")
	}
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stdin = strings.NewReader(spec.Stdin)
	var stdout, stderr bytes.Buffer
	if spec.MaxOutput > 0 {
		// Two streams, each at most MaxOutput bytes before JSON escaping
		// (worst case 6x: every byte a \uXXXX sequence), plus slack.
		cmd.Stdout = &limitedWriter{w: &stdout, n: 12*int64(spec.MaxOutput) + pipeSlack}
	} else {
		cmd.Stdout = &stdout
	}
	cmd.Stderr = &limitedWriter{w: &stderr, n: 16 << 10} // diagnostics only
	cmd.WaitDelay = 5 * time.Second

	if err := cmd.Start(); err != nil {
		return nil, &TierError{Err: fmt.Errorf("%s: %w", filepath.Base(bin), err)}
	}
	if faultinject.Fire("native.run.kill") {
		// Chaos seam: the child dies mid-run for no kernel-attributable
		// reason — an OOM-killer pick, an operator kill -9, a crash.
		_ = cmd.Process.Kill()
	}
	runErr := cmd.Wait()
	if ctx.Err() != nil {
		// Killed (or about to be): surface the cause — the job deadline,
		// the budget approximation, or the client going away.
		return nil, cause(ctx)
	}
	if runErr != nil {
		if cpuBudgetDeath(cmd, spec, runErr) {
			return nil, fmt.Errorf("%w: native child hit RLIMIT_CPU (%ds)", backend.ErrStepBudget, spec.CPUBudgetSecs)
		}
		return nil, &TierError{Err: fmt.Errorf("%s: %w: %s", filepath.Base(bin), runErr, firstLine(stderr.String()))}
	}
	var res child.Result
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		return nil, &TierError{Err: fmt.Errorf("%s: undecodable result: %w", filepath.Base(bin), err)}
	}
	return &res, nil
}

// cpuBudgetDeath recognizes the three shapes of an RLIMIT_CPU kill:
//
//  1. The cooperative exit — the child caught SIGXCPU and exited with
//     child.ExitBudget. The common case.
//  2. Death by SIGXCPU itself — a child built before the harness
//     subscribed the signal (should not occur at matching gogen.Version,
//     but the classification is free).
//  3. The hard-limit SIGKILL backstop, distinguished from other SIGKILLs
//     by evidence: the child actually consumed its CPU budget.
func cpuBudgetDeath(cmd *exec.Cmd, spec RunSpec, runErr error) bool {
	if spec.CPUBudgetSecs <= 0 {
		return false
	}
	var ee *exec.ExitError
	if !errors.As(runErr, &ee) || ee.ProcessState == nil {
		return false
	}
	ps := ee.ProcessState
	if ps.ExitCode() == child.ExitBudget {
		return true
	}
	if ws, ok := ps.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		switch ws.Signal() {
		case syscall.SIGXCPU:
			return true
		case syscall.SIGKILL:
			cpu := ps.UserTime() + ps.SystemTime()
			return cpu >= time.Duration(spec.CPUBudgetSecs)*time.Second
		}
	}
	return false
}

// cause prefers the context's recorded cause (e.g. the step-budget
// sentinel) over the bare Canceled/DeadlineExceeded.
func cause(ctx context.Context) error {
	if c := context.Cause(ctx); c != nil {
		if errors.Is(ctx.Err(), c) {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %w", c, ctx.Err())
	}
	return ctx.Err()
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// limitedWriter accepts at most n bytes and silently drops the rest;
// a flooding child therefore produces a truncated buffer whose JSON
// decode fails, which the server treats as a tier failure.
type limitedWriter struct {
	w io.Writer
	n int64
}

func (l *limitedWriter) Write(p []byte) (int, error) {
	keep := p
	if l.n <= 0 {
		keep = nil
	} else if int64(len(keep)) > l.n {
		keep = keep[:l.n]
	}
	l.n -= int64(len(keep))
	if len(keep) > 0 {
		if _, err := l.w.Write(keep); err != nil {
			return 0, err
		}
	}
	// Claim the full write so exec's pipe copier keeps draining the child.
	return len(p), nil
}
