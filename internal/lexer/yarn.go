package lexer

import (
	"fmt"
	"strconv"
	"strings"
)

// YarnSegment is one piece of a decoded YARN literal: either literal text or
// a ":{var}" interpolation naming a variable to be stringified at runtime.
type YarnSegment struct {
	Text string // literal text (escapes already decoded) when Var == ""
	Var  string // variable name for an interpolation segment
}

// DecodeYarn translates the raw interior of a YARN literal into segments,
// decoding the LOLCODE-1.2 escapes:
//
//	:)  newline     :>  tab      :o  bell
//	:"  quote       ::  colon
//	:(<hex>)        code point by hex value
//	:{<var>}        interpolate variable value
func DecodeYarn(raw string) ([]YarnSegment, error) {
	var segs []YarnSegment
	var buf strings.Builder
	flush := func() {
		if buf.Len() > 0 {
			segs = append(segs, YarnSegment{Text: buf.String()})
			buf.Reset()
		}
	}
	for i := 0; i < len(raw); {
		c := raw[i]
		if c != ':' {
			buf.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(raw) {
			return nil, fmt.Errorf("trailing ':' in YARN literal")
		}
		switch raw[i+1] {
		case ')':
			buf.WriteByte('\n')
			i += 2
		case '>':
			buf.WriteByte('\t')
			i += 2
		case 'o':
			buf.WriteByte('\a')
			i += 2
		case '"':
			buf.WriteByte('"')
			i += 2
		case ':':
			buf.WriteByte(':')
			i += 2
		case '(':
			end := strings.IndexByte(raw[i:], ')')
			if end < 0 {
				return nil, fmt.Errorf("unterminated :(hex) escape")
			}
			hex := raw[i+2 : i+end]
			n, err := strconv.ParseInt(hex, 16, 32)
			if err != nil {
				return nil, fmt.Errorf("bad hex escape :(%s)", hex)
			}
			buf.WriteRune(rune(n))
			i += end + 1
		case '{':
			end := strings.IndexByte(raw[i:], '}')
			if end < 0 {
				return nil, fmt.Errorf("unterminated :{var} escape")
			}
			name := raw[i+2 : i+end]
			if name == "" {
				return nil, fmt.Errorf("empty :{var} escape")
			}
			flush()
			segs = append(segs, YarnSegment{Var: name})
			i += end + 1
		default:
			return nil, fmt.Errorf("unknown YARN escape %q", raw[i:i+2])
		}
	}
	flush()
	return segs, nil
}

// EncodeYarn renders s as the raw interior of a YARN literal, escaping the
// characters that have LOLCODE escape forms.
func EncodeYarn(s string) string {
	var buf strings.Builder
	for _, r := range s {
		switch r {
		case '\n':
			buf.WriteString(":)")
		case '\t':
			buf.WriteString(":>")
		case '\a':
			buf.WriteString(":o")
		case '"':
			buf.WriteString(`:"`)
		case ':':
			buf.WriteString("::")
		default:
			buf.WriteRune(r)
		}
	}
	return buf.String()
}
