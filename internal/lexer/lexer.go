// Package lexer implements the scanner for LOLCODE-1.2 with the parallel
// extensions of Richie & Ross (2017).
//
// Notable lexical rules handled here:
//
//   - Multi-word keywords ("TXT MAH BFF", "IM SRSLY MESIN WIF") are folded
//     into single tokens using longest-match against the token package trie.
//   - A statement ends at a newline or a comma; the triple dot "..." (or the
//     Unicode ellipsis '…') immediately before a newline continues the
//     logical line.
//   - "BTW" starts a line comment; "OBTW" ... "TLDR" is a block comment.
//   - YARN literals keep their raw escaped text; Decode translates the
//     ":)"-style escapes and splits out ":{var}" interpolations.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans LOLCODE source into tokens.
type Lexer struct {
	src  string
	file string

	off  int // current byte offset
	line int
	col  int

	atLineStart bool // no token emitted yet on this logical line
	errs        []*Error
}

// New returns a lexer over src. file is used in positions and errors.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1, atLineStart: true}
}

// Errors returns the lexical errors encountered so far.
func (lx *Lexer) Errors() []*Error { return lx.errs }

func (lx *Lexer) errorf(pos token.Pos, format string, args ...any) {
	lx.errs = append(lx.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) pos() token.Pos {
	return token.Pos{File: lx.file, Line: lx.line, Col: lx.col}
}

// state snapshots the scanner position for backtracking during
// multi-word keyword matching.
type state struct {
	off, line, col int
}

func (lx *Lexer) save() state     { return state{lx.off, lx.line, lx.col} }
func (lx *Lexer) restore(s state) { lx.off, lx.line, lx.col = s.off, s.line, s.col }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipBlanks consumes spaces, tabs, carriage returns, line continuations,
// and comments that do not terminate the logical line.
// It stops at a newline, comma, or any other token byte.
func (lx *Lexer) skipBlanks() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '.' && lx.peekAt(1) == '.' && lx.peekAt(2) == '.':
			// Line continuation: consume "..." plus trailing blanks and
			// exactly one newline; the logical line continues.
			lx.advance()
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) {
				b := lx.peek()
				if b == ' ' || b == '\t' || b == '\r' {
					lx.advance()
					continue
				}
				break
			}
			if lx.peek() == '\n' {
				lx.advance()
			}
		case strings.HasPrefix(lx.src[lx.off:], "…"): // '…'
			lx.off += len("…")
			lx.col++
			for lx.peek() == ' ' || lx.peek() == '\t' || lx.peek() == '\r' {
				lx.advance()
			}
			if lx.peek() == '\n' {
				lx.advance()
			}
		default:
			if lx.startsWord("BTW") {
				for lx.off < len(lx.src) && lx.peek() != '\n' {
					lx.advance()
				}
				return
			}
			if lx.atLineStart && lx.startsWord("OBTW") {
				lx.skipBlockComment()
				continue
			}
			return
		}
	}
}

// startsWord reports whether the input at the current offset begins with the
// given bare word (followed by a non-word byte).
func (lx *Lexer) startsWord(w string) bool {
	if !strings.HasPrefix(lx.src[lx.off:], w) {
		return false
	}
	after := lx.off + len(w)
	if after < len(lx.src) && isWordByte(lx.src[after]) {
		return false
	}
	return true
}

func (lx *Lexer) skipBlockComment() {
	start := lx.pos()
	for i := 0; i < len("OBTW"); i++ {
		lx.advance()
	}
	for lx.off < len(lx.src) {
		if lx.startsWord("TLDR") {
			for i := 0; i < len("TLDR"); i++ {
				lx.advance()
			}
			// Consume trailing blanks and the line break ending the comment.
			for lx.peek() == ' ' || lx.peek() == '\t' || lx.peek() == '\r' {
				lx.advance()
			}
			if lx.peek() == '\n' {
				lx.advance()
			}
			return
		}
		lx.advance()
	}
	lx.errorf(start, "unterminated OBTW comment (missing TLDR)")
}

func isWordStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isWordByte(c byte) bool {
	return isWordStart(c) || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next scans and returns the next token.
func (lx *Lexer) Next() token.Token {
	lx.skipBlanks()
	pos := lx.pos()

	if lx.off >= len(lx.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	c := lx.peek()
	switch {
	case c == '\n' || c == ',':
		lx.advance()
		lx.atLineStart = true
		// Collapse runs of separators into one Newline token.
		for {
			lx.skipBlanks()
			if b := lx.peek(); b == '\n' || b == ',' {
				lx.advance()
				continue
			}
			break
		}
		return token.Token{Kind: token.Newline, Pos: pos}

	case c == '?':
		lx.advance()
		lx.atLineStart = false
		return token.Token{Kind: token.Question, Pos: pos}

	case c == '!':
		lx.advance()
		lx.atLineStart = false
		return token.Token{Kind: token.Bang, Pos: pos}

	case c == '\'' && (lx.peekAt(1) == 'Z' || lx.peekAt(1) == 'z') && !isWordByte(lx.peekAt(2)):
		lx.advance()
		lx.advance()
		lx.atLineStart = false
		return token.Token{Kind: token.IndexZ, Pos: pos}

	case c == '"':
		lx.atLineStart = false
		return lx.scanYarn(pos)

	case isDigit(c) || (c == '-' && isDigit(lx.peekAt(1))):
		lx.atLineStart = false
		return lx.scanNumber(pos)

	case isWordStart(c):
		lx.atLineStart = false
		return lx.scanWordOrKeyword(pos)

	default:
		lx.advance()
		lx.errorf(pos, "unexpected character %q", c)
		return token.Token{Kind: token.Illegal, Pos: pos, Text: string(c)}
	}
}

func (lx *Lexer) scanNumber(pos token.Pos) token.Token {
	start := lx.off
	if lx.peek() == '-' {
		lx.advance()
	}
	for isDigit(lx.peek()) {
		lx.advance()
	}
	isFloat := false
	if lx.peek() == '.' && isDigit(lx.peekAt(1)) {
		isFloat = true
		lx.advance()
		for isDigit(lx.peek()) {
			lx.advance()
		}
	}
	// Exponent form is accepted for convenience in generated workloads.
	if b := lx.peek(); b == 'e' || b == 'E' {
		i := 1
		if lx.peekAt(i) == '+' || lx.peekAt(i) == '-' {
			i++
		}
		if isDigit(lx.peekAt(i)) {
			isFloat = true
			lx.advance() // e
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			for isDigit(lx.peek()) {
				lx.advance()
			}
		}
	}
	text := lx.src[start:lx.off]
	if isFloat {
		return token.Token{Kind: token.NumbarLit, Pos: pos, Text: text}
	}
	return token.Token{Kind: token.NumbrLit, Pos: pos, Text: text}
}

// scanYarn scans a double-quoted YARN literal, keeping the raw interior
// (escapes undecoded) so the formatter can round-trip the source exactly.
func (lx *Lexer) scanYarn(pos token.Pos) token.Token {
	lx.advance() // opening quote
	start := lx.off
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '\n' {
			lx.errorf(pos, "unterminated YARN literal")
			text := lx.src[start:lx.off]
			return token.Token{Kind: token.YarnLit, Pos: pos, Text: text}
		}
		if c == ':' {
			// Escape: consume the colon plus the escape body so an escaped
			// quote does not terminate the literal.
			lx.advance()
			switch lx.peek() {
			case '(', '{', '[':
				open := lx.peek()
				closeB := map[byte]byte{'(': ')', '{': '}', '[': ']'}[open]
				lx.advance()
				for lx.off < len(lx.src) && lx.peek() != closeB && lx.peek() != '\n' {
					lx.advance()
				}
				if lx.peek() == closeB {
					lx.advance()
				}
			default:
				if lx.off < len(lx.src) {
					lx.advance()
				}
			}
			continue
		}
		if c == '"' {
			text := lx.src[start:lx.off]
			lx.advance() // closing quote
			return token.Token{Kind: token.YarnLit, Pos: pos, Text: text}
		}
		lx.advance()
	}
	lx.errorf(pos, "unterminated YARN literal")
	return token.Token{Kind: token.YarnLit, Pos: pos, Text: lx.src[start:lx.off]}
}

// scanWordOrKeyword scans an identifier and folds multi-word keyword
// phrases into a single token by longest match.
func (lx *Lexer) scanWordOrKeyword(pos token.Pos) token.Token {
	first := lx.scanBareWord()
	if !token.IsKeywordWord(first) {
		return token.Token{Kind: token.Ident, Pos: pos, Text: first}
	}

	var m token.Matcher
	m.Reset()
	m.Feed(first)
	bestKind, bestLen := m.Best()
	bestState := lx.save()
	wordsRead := 1

	for m.CanExtend() {
		// Peek the next word on the same logical line.
		s := lx.save()
		lx.skipBlanks()
		if !isWordStart(lx.peek()) {
			lx.restore(s)
			break
		}
		w := lx.scanBareWord()
		if !m.Feed(w) {
			lx.restore(s)
			break
		}
		wordsRead++
		if k, l := m.Best(); l == wordsRead {
			bestKind, bestLen = k, l
			bestState = lx.save()
		}
	}
	_ = bestLen // tracked for clarity; the state snapshot encodes the boundary

	if bestKind == token.Illegal {
		// Started like a keyword but no complete phrase: identifier.
		lx.restore(bestState)
		return token.Token{Kind: token.Ident, Pos: pos, Text: first}
	}
	lx.restore(bestState)
	return token.Token{Kind: bestKind, Pos: pos}
}

func (lx *Lexer) scanBareWord() string {
	start := lx.off
	for lx.off < len(lx.src) && isWordByte(lx.peek()) {
		lx.advance()
	}
	return lx.src[start:lx.off]
}

// ScanAll tokenizes the whole input, always ending with an EOF token.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	lx := New(file, src)
	var toks []token.Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, lx.Errors()
}
