package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func scanKinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll("test.lol", src)
	if len(errs) > 0 {
		t.Fatalf("scan %q: %v", src, errs[0])
	}
	return kinds(toks)
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := scanKinds(t, src)
	want = append(want, token.EOF)
	if len(got) != len(want) {
		t.Fatalf("scan %q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan %q: token %d = %v, want %v\nfull: %v", src, i, got[i], want[i], got)
		}
	}
}

func TestMultiWordKeywords(t *testing.T) {
	expectKinds(t, "IM SRSLY MESIN WIF x",
		token.KwImSrslyMesinWif, token.Ident)
	expectKinds(t, "IM MESIN WIF x",
		token.KwImMesinWif, token.Ident)
	expectKinds(t, "TXT MAH BFF 3",
		token.KwTxtMahBff, token.NumbrLit)
	expectKinds(t, "MAH FRENZ", token.KwMahFrenz)
	expectKinds(t, "MAH x", token.KwMah, token.Ident)
	expectKinds(t, "I HAS A x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32",
		token.KwIHasA, token.Ident, token.KwItzSrslyLotzA, token.Ident,
		token.KwAnTharIz, token.NumbrLit)
	expectKinds(t, "SUM OF a AN b",
		token.KwSumOf, token.Ident, token.KwAn, token.Ident)
	expectKinds(t, "TXT MAH BFF k AN STUFF",
		token.KwTxtMahBff, token.Ident, token.KwAnStuff)
}

func TestLongestMatchBacktracks(t *testing.T) {
	// "BOTH" alone must fall back to an identifier; "BOTH SAEM" is one
	// keyword; "BOTH OF" another.
	expectKinds(t, "BOTH SAEM i AN 32",
		token.KwBothSaem, token.Ident, token.KwAn, token.NumbrLit)
	expectKinds(t, "BOTH OF WIN AN FAIL",
		token.KwBothOf, token.KwWin, token.KwAn, token.KwFail)
	expectKinds(t, "BOTH", token.Ident)
	// "IM" starts several phrases; bare IM is an identifier.
	expectKinds(t, "IM IN YR loop", token.KwImInYr, token.Ident)
	expectKinds(t, "IM OUTTA YR loop", token.KwImOuttaYr, token.Ident)
	expectKinds(t, "IM alone", token.Ident, token.Ident)
}

func TestCommaIsNewline(t *testing.T) {
	expectKinds(t, "GTFO, GTFO", token.KwGtfo, token.Newline, token.KwGtfo)
}

func TestLineContinuation(t *testing.T) {
	expectKinds(t, "SUM OF a ...\n  AN b",
		token.KwSumOf, token.Ident, token.KwAn, token.Ident)
	// Keyword phrases may span a continuation.
	expectKinds(t, "I HAS A x ITZ SRSLY ...\n  A NUMBR",
		token.KwIHasA, token.Ident, token.KwItzSrslyA, token.KwNumbr)
}

func TestComments(t *testing.T) {
	expectKinds(t, "GTFO BTW this is ignored\nGTFO",
		token.KwGtfo, token.Newline, token.KwGtfo)
	expectKinds(t, "OBTW\nanything goes\neven GTFO\nTLDR\nGTFO",
		token.KwGtfo)
	// BTW inside a YARN is literal text.
	toks, errs := ScanAll("t", `VISIBLE "BTW not a comment"`)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if toks[1].Kind != token.YarnLit || toks[1].Text != "BTW not a comment" {
		t.Errorf("yarn with BTW: %v", toks[1])
	}
}

func TestUnterminatedComment(t *testing.T) {
	_, errs := ScanAll("t", "OBTW\nnever closed")
	if len(errs) == 0 {
		t.Error("unterminated OBTW should report an error")
	}
}

func TestNumbers(t *testing.T) {
	toks, _ := ScanAll("t", "42 -7 3.14 -0.5 1e3 2.5e-2")
	wantKind := []token.Kind{
		token.NumbrLit, token.NumbrLit, token.NumbarLit,
		token.NumbarLit, token.NumbarLit, token.NumbarLit, token.EOF,
	}
	wantText := []string{"42", "-7", "3.14", "-0.5", "1e3", "2.5e-2", ""}
	for i, tok := range toks {
		if tok.Kind != wantKind[i] || tok.Text != wantText[i] {
			t.Errorf("token %d = %v %q, want %v %q", i, tok.Kind, tok.Text, wantKind[i], wantText[i])
		}
	}
}

func TestIndexToken(t *testing.T) {
	expectKinds(t, "pos_x'Z i", token.Ident, token.IndexZ, token.Ident)
}

func TestPunctuation(t *testing.T) {
	expectKinds(t, "O RLY?", token.KwORly, token.Question)
	expectKinds(t, "WTF?", token.KwWtf, token.Question)
	expectKinds(t, `VISIBLE "x" !`, token.KwVisible, token.YarnLit, token.Bang)
}

func TestYarnEscapes(t *testing.T) {
	toks, errs := ScanAll("t", `VISIBLE "a:)b:>c:"d::e"`)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	segs, err := DecodeYarn(toks[1].Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Text != "a\nb\tc\"d:e" {
		t.Errorf("decoded segments = %+v", segs)
	}
}

func TestYarnInterpolation(t *testing.T) {
	segs, err := DecodeYarn("count=:{n}!")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || segs[0].Text != "count=" || segs[1].Var != "n" || segs[2].Text != "!" {
		t.Errorf("segments = %+v", segs)
	}
}

func TestYarnHexEscape(t *testing.T) {
	segs, err := DecodeYarn(":(41):(1F63A)")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Text != "A\U0001F63A" {
		t.Errorf("segments = %+v", segs)
	}
}

func TestYarnBadEscapes(t *testing.T) {
	for _, raw := range []string{":", ":x", ":(zz)", ":{", ":{}", ":("} {
		if _, err := DecodeYarn(raw); err == nil {
			t.Errorf("DecodeYarn(%q) should fail", raw)
		}
	}
}

func TestUnterminatedYarn(t *testing.T) {
	_, errs := ScanAll("t", "VISIBLE \"oops\nGTFO")
	if len(errs) == 0 {
		t.Error("unterminated YARN should report an error")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("f.lol", "HAI 1.2\nVISIBLE x")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("HAI at %v", toks[0].Pos)
	}
	var vis token.Token
	for _, tk := range toks {
		if tk.Kind == token.KwVisible {
			vis = tk
		}
	}
	if vis.Pos.Line != 2 || vis.Pos.Col != 1 {
		t.Errorf("VISIBLE at %v, want 2:1", vis.Pos)
	}
}

// Property: EncodeYarn/DecodeYarn round-trip arbitrary printable text.
func TestPropertyYarnRoundTrip(t *testing.T) {
	f := func(s string) bool {
		raw := EncodeYarn(s)
		segs, err := DecodeYarn(raw)
		if err != nil {
			return false
		}
		var b strings.Builder
		for _, seg := range segs {
			if seg.Var != "" {
				return false // escape must never produce interpolations
			}
			b.WriteString(seg.Text)
		}
		return b.String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every keyword phrase in the token table lexes back to exactly
// its own kind (print/re-lex identity over the keyword space).
func TestPropertyKeywordsRoundTrip(t *testing.T) {
	for kind, phrase := range token.Phrases {
		toks, errs := ScanAll("t", phrase)
		if len(errs) > 0 {
			t.Errorf("phrase %q: %v", phrase, errs[0])
			continue
		}
		if len(toks) != 2 || toks[0].Kind != kind {
			// Prefix keywords of longer phrases (e.g. "ITZ" inside
			// "ITZ A") still lex to themselves in isolation, so any
			// mismatch is a real table bug.
			t.Errorf("phrase %q lexed to %v, want [%v EOF]", phrase, kinds(toks), kind)
		}
	}
}
