package server

import (
	"context"
	"strings"
	"testing"
)

// barrierLoopSrc makes every PE cross six barriers before printing, so a
// worker-scheduled run must park and unpark each PE repeatedly — enough
// traffic to move every scheduler counter the server accumulates.
const barrierLoopSrc = `HAI 1.2
I HAS A r ITZ 0
IM IN YR rounds UPPIN YR r TIL BOTH SAEM r AN 6
  HUGZ
IM OUTTA YR rounds
VISIBLE SMOOSH "PE " AN ME MKAY
KTHXBYE`

// TestRunSchedWorkers drives the request-level scheduler selection end to
// end: a job asking for the worker scheduler must run to the same bytes
// as the goroutine-per-PE default, and its park/unpark traffic must show
// up in the server's aggregate scheduler stats (the /v1/stats "sched"
// block and the lolserv_sched_* metrics read the same counters).
func TestRunSchedWorkers(t *testing.T) {
	s := New(Options{Workers: 2, MaxNP: 16})
	defer s.Close()

	base := s.Run(context.Background(), RunRequest{
		Src: barrierLoopSrc, NP: 8, Backend: "vm", Sched: "goroutines",
	})
	if base.Outcome != OutcomeOK {
		t.Fatalf("goroutine-mode outcome %q (%s)", base.Outcome, base.Error)
	}
	if got := s.Stats().Sched; got.JobsWorkers != 0 {
		t.Fatalf("goroutine-mode run counted as a worker job: %+v", got)
	}

	resp := s.Run(context.Background(), RunRequest{
		Src: barrierLoopSrc, NP: 8, Backend: "vm", Sched: "workers",
	})
	if resp.Outcome != OutcomeOK {
		t.Fatalf("worker-mode outcome %q (%s)", resp.Outcome, resp.Error)
	}
	if resp.Output != base.Output {
		t.Errorf("worker-mode output diverged:\nworkers:    %q\ngoroutines: %q", resp.Output, base.Output)
	}
	// The two requests differ only in sched, so the second must have
	// executed rather than been answered from the first one's result.
	if resp.ResultCacheHit {
		t.Error("worker-mode run answered from the goroutine-mode cache line")
	}

	st := s.Stats().Sched
	if st.JobsWorkers != 1 {
		t.Errorf("sched.jobs_workers = %d, want 1", st.JobsWorkers)
	}
	if st.Parks == 0 {
		t.Error("sched.parks = 0; a six-barrier NP=8 run on two workers must park")
	}
	if st.Parks != st.Unparks {
		t.Errorf("sched.parks = %d != sched.unparks = %d after a quiescent run", st.Parks, st.Unparks)
	}

	bad := s.Run(context.Background(), RunRequest{Src: helloSrc, NP: 2, Sched: "fibers"})
	if bad.Outcome != OutcomeRejected || !strings.Contains(bad.Error, "fibers") {
		t.Errorf("bad sched value: outcome %q error %q, want rejection naming the value", bad.Outcome, bad.Error)
	}
}
