package server

import (
	"context"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// BatchRequest is one POST /v1/batch body: a whole assignment's worth of
// jobs submitted in one round trip. Each job is an ordinary RunRequest;
// jobs are independent and may use different programs, backends, and PE
// counts.
type BatchRequest struct {
	Jobs []RunRequest `json:"jobs"`
}

// BatchItem is one line of the streaming NDJSON batch response: the
// job's index in the submitted slice plus its full RunResponse. Items
// stream in completion order, not submission order — the index is how
// the client reassembles them.
type BatchItem struct {
	Index int `json:"index"`
	RunResponse
}

// batchParallelism bounds how many of one batch's jobs are in flight at
// once. Twice the worker count keeps every worker fed while leaving
// headroom for jobs that resolve without a worker at all (result-cache
// hits and coalesced duplicates, the common case for the classroom
// workload of many identical submissions).
func (s *Server) batchParallelism() int {
	p := 2 * s.opts.Workers
	if p < 4 {
		p = 4
	}
	return p
}

// RunBatch executes jobs concurrently and streams each result as it
// completes. Every job is admitted through the same fairness pool,
// result cache, and budgets as a /v1/run submission — a batch buys one
// round trip and in-flight coalescing of its own duplicates, not a
// bigger resource share. The returned channel is closed after the last
// item; the caller must drain it. Cancelling ctx tears down the jobs
// still running (they report OutcomeCancelled).
func (s *Server) RunBatch(ctx context.Context, jobs []RunRequest) <-chan BatchItem {
	s.batchesRun.Add(1)
	// Each job gets a child span (request ID "<parent>.<index>") so its
	// lifecycle stages land in the histograms and the slow ring exactly
	// like a /v1/run job's would; the batch envelope's own span records
	// no job stages and is never double-counted.
	parentID := obs.FromContext(ctx).ID()
	if parentID == "" {
		parentID = obs.NewRequestID()
	}
	out := make(chan BatchItem)
	go func() {
		defer close(out)
		sem := make(chan struct{}, s.batchParallelism())
		var wg sync.WaitGroup
		for i := range jobs {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				sp := obs.NewSpan(parentID+"."+strconv.Itoa(i), "/v1/batch")
				resp := s.Run(obs.WithSpan(ctx, sp), jobs[i])
				s.metrics.finishSpan(sp.Snapshot())
				out <- BatchItem{Index: i, RunResponse: resp}
			}(i)
		}
		wg.Wait()
	}()
	return out
}
