package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/gogen"
	"repro/internal/native"
)

// sumSrc builds a small pure-compute program (cacheable at any NP):
// every PE sums 0..bound-1 and prints the total.
func sumSrc(bound int) string {
	return fmt.Sprintf(`HAI 1.2
I HAS A x ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN %d
  x R SUM OF x AN i
IM OUTTA YR l
VISIBLE x
KTHXBYE`, bound)
}

// TestResultKeyDiscriminates: every launch parameter that can change the
// response must change the key. The same program resubmitted with a
// different stdin, seed, NP, backend, or step budget is a different job
// and must execute, never be answered from the stored result.
func TestResultKeyDiscriminates(t *testing.T) {
	stdinSrc := "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE"
	randSrc := "HAI 1.2\nVISIBLE WHATEVR\nKTHXBYE"
	base := RunRequest{Src: sumSrc(50), NP: 2}
	cases := []struct {
		name     string
		a, b     RunRequest
		wantSame bool // outputs must match even though both executed
	}{
		{"different stdin", RunRequest{Src: stdinSrc, Stdin: "one\n"}, RunRequest{Src: stdinSrc, Stdin: "two\n"}, false},
		{"different seed", RunRequest{Src: randSrc, Seed: 1}, RunRequest{Src: randSrc, Seed: 2}, false},
		{"different np", base, RunRequest{Src: base.Src, NP: 4}, false},
		{"different backend", base, RunRequest{Src: base.Src, NP: 2, Backend: "interp"}, true},
		{"different step budget", base, RunRequest{Src: base.Src, NP: 2, MaxSteps: 10_000}, true},
		{"different timeout", base, RunRequest{Src: base.Src, NP: 2, TimeoutMS: 900}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := New(Options{Workers: 2})
			ra := s.Run(context.Background(), tc.a)
			rb := s.Run(context.Background(), tc.b)
			if ra.Outcome != OutcomeOK || rb.Outcome != OutcomeOK {
				t.Fatalf("outcomes %q/%q (%s/%s)", ra.Outcome, rb.Outcome, ra.Error, rb.Error)
			}
			if rb.ResultCacheHit {
				t.Fatalf("second job was served from the first job's result")
			}
			if st := s.Stats(); st.JobsRun != 2 {
				t.Fatalf("jobs_run = %d, want 2 executions", st.JobsRun)
			}
			if same := ra.Output == rb.Output; same != tc.wantSame {
				t.Errorf("output equality = %v, want %v (%q vs %q)", same, tc.wantSame, ra.Output, rb.Output)
			}
		})
	}
}

// TestUnstorableRunsNeverCached: budget kills and truncated output must
// never be stored — an identical resubmission executes again.
func TestUnstorableRunsNeverCached(t *testing.T) {
	t.Run("budget kill", func(t *testing.T) {
		s := New(Options{Workers: 2})
		req := RunRequest{Src: sumSrc(1_000_000), MaxSteps: 5_000}
		for i := 0; i < 2; i++ {
			resp := s.Run(context.Background(), req)
			if resp.Outcome != OutcomeBudget {
				t.Fatalf("run %d: outcome %q (%s), want budget", i, resp.Outcome, resp.Error)
			}
			if resp.ResultCacheHit {
				t.Fatalf("run %d: budget-killed run was served from cache", i)
			}
		}
		if st := s.Stats(); st.JobsRun != 2 {
			t.Errorf("jobs_run = %d, want 2 (failed run must not be stored)", st.JobsRun)
		}
		if rs := s.results.Stats(); rs.Misses != 2 || rs.Hits != 0 {
			t.Errorf("result cache stats = %+v, want 2 misses / 0 hits", rs)
		}
	})
	t.Run("truncated output", func(t *testing.T) {
		s := New(Options{Workers: 2, MaxOutputBytes: 32})
		req := RunRequest{Src: `HAI 1.2
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 40
  VISIBLE "0123456789"
IM OUTTA YR l
KTHXBYE`}
		for i := 0; i < 2; i++ {
			resp := s.Run(context.Background(), req)
			if resp.Outcome != OutcomeOK || !resp.OutputTruncated {
				t.Fatalf("run %d: outcome %q truncated=%v, want ok+truncated", i, resp.Outcome, resp.OutputTruncated)
			}
			if resp.ResultCacheHit {
				t.Fatalf("run %d: truncated run was served from cache", i)
			}
		}
		if st := s.Stats(); st.JobsRun != 2 {
			t.Errorf("jobs_run = %d, want 2 (truncated run must not be stored)", st.JobsRun)
		}
	})
}

// TestAuditGatesCaching: programs the determinism audit rejects at NP>1
// (stdin arbitration, shared state, locks) are bypass-marked — they
// execute every time — while the same constructs at NP=1 are cacheable,
// because a single PE cannot race.
func TestAuditGatesCaching(t *testing.T) {
	gimmehSrc := "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE"
	sharedSrc := "HAI 1.2\nWE HAS A c ITZ A NUMBR AN ITZ ME\nHUGZ\nVISIBLE SUM OF c AN MAH FRENZ\nKTHXBYE"
	lockSrc := `HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
IM SRSLY MESIN WIF x
DUN MESIN WIF x
VISIBLE "OK"
KTHXBYE`

	cases := []struct {
		name      string
		req       RunRequest
		cacheable bool
	}{
		{"gimmeh np2", RunRequest{Src: gimmehSrc, NP: 2, Stdin: "a\nb\n"}, false},
		{"gimmeh np1", RunRequest{Src: gimmehSrc, NP: 1, Stdin: "a\n"}, true},
		{"shared np2", RunRequest{Src: sharedSrc, NP: 2}, false},
		{"shared np1", RunRequest{Src: sharedSrc, NP: 1}, true},
		{"locks np2", RunRequest{Src: lockSrc, NP: 2}, false},
		{"pure compute np4", RunRequest{Src: sumSrc(60), NP: 4}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := New(Options{Workers: 2})
			first := s.Run(context.Background(), tc.req)
			second := s.Run(context.Background(), tc.req)
			if first.Outcome != OutcomeOK || second.Outcome != OutcomeOK {
				t.Fatalf("outcomes %q/%q (%s/%s)", first.Outcome, second.Outcome, first.Error, second.Error)
			}
			if second.ResultCacheHit != tc.cacheable {
				t.Errorf("second run cache hit = %v, want %v", second.ResultCacheHit, tc.cacheable)
			}
			wantRuns := int64(1)
			if !tc.cacheable {
				wantRuns = 2
			}
			if st := s.Stats(); st.JobsRun != wantRuns {
				t.Errorf("jobs_run = %d, want %d", st.JobsRun, wantRuns)
			}
			if !tc.cacheable {
				if rs := s.results.Stats(); rs.Bypassed == 0 {
					t.Errorf("result cache stats = %+v, want bypasses recorded", rs)
				}
			}
		})
	}
}

// TestResultCacheEviction: a one-entry cache alternating between two
// distinct jobs evicts on every switch yet stays correct — each answer
// matches the direct execution of that job.
func TestResultCacheEviction(t *testing.T) {
	s := New(Options{Workers: 2, ResultCacheSize: 1})
	reqs := []RunRequest{
		{Src: sumSrc(40)},
		{Src: sumSrc(41)},
	}
	want := make([]string, len(reqs))
	for i, req := range reqs {
		resp := s.Run(context.Background(), req)
		if resp.Outcome != OutcomeOK {
			t.Fatalf("seed run %d: %q (%s)", i, resp.Outcome, resp.Error)
		}
		want[i] = resp.Output
	}
	for round := 0; round < 3; round++ {
		for i, req := range reqs {
			resp := s.Run(context.Background(), req)
			if resp.Outcome != OutcomeOK || resp.Output != want[i] {
				t.Fatalf("round %d job %d: outcome %q output %q, want ok %q",
					round, i, resp.Outcome, resp.Output, want[i])
			}
		}
	}
	rs := s.results.Stats()
	if rs.Evicted == 0 {
		t.Errorf("result cache stats = %+v, want evictions under size 1", rs)
	}
	if rs.Size > 1 {
		t.Errorf("result cache size = %d, want <= 1", rs.Size)
	}
}

// TestResultCacheDisabled: ResultCacheSize < 0 turns the layer off —
// identical jobs always execute.
func TestResultCacheDisabled(t *testing.T) {
	s := New(Options{Workers: 2, ResultCacheSize: -1})
	req := RunRequest{Src: sumSrc(30)}
	for i := 0; i < 3; i++ {
		resp := s.Run(context.Background(), req)
		if resp.Outcome != OutcomeOK || resp.ResultCacheHit {
			t.Fatalf("run %d: %+v, want plain execution", i, resp)
		}
	}
	if st := s.Stats(); st.JobsRun != 3 {
		t.Errorf("jobs_run = %d, want 3", st.JobsRun)
	}
	if st := s.Stats(); st.ResultCache.Enabled {
		t.Errorf("stats report an enabled result cache: %+v", st.ResultCache)
	}
}

// TestSingleFlightExecution: many concurrent identical deterministic
// jobs coalesce onto exactly one execution; everyone gets the same
// bytes.
func TestSingleFlightExecution(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 64})
	req := RunRequest{Src: sumSrc(2_000), NP: 2}
	const n = 24
	outs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := s.Run(context.Background(), req)
			if resp.Outcome != OutcomeOK {
				t.Errorf("req %d: outcome %q (%s)", i, resp.Outcome, resp.Error)
				return
			}
			outs[i] = resp.Output
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("req %d output %q differs from %q", i, outs[i], outs[0])
		}
	}
	if st := s.Stats(); st.JobsRun != 1 {
		t.Errorf("jobs_run = %d, want exactly 1 (singleflight)", st.JobsRun)
	}
	rs := s.results.Stats()
	if rs.Misses != 1 || rs.Hits+rs.Coalesced != n-1 {
		t.Errorf("result cache stats = %+v, want 1 miss and %d hits+coalesced", rs, n-1)
	}
}

// TestFailedLeaderWakesWaiters: when the leader of a coalesced group
// dies (budget kill), waiters must not be stuck or handed the nothing —
// they re-resolve, one becomes the next leader, and every request gets
// a classified response.
func TestFailedLeaderWakesWaiters(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 64})
	req := RunRequest{Src: sumSrc(1_000_000), MaxSteps: 20_000}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := s.Run(context.Background(), req)
			if resp.Outcome != OutcomeBudget {
				t.Errorf("outcome %q (%s), want budget", resp.Outcome, resp.Error)
			}
			if !strings.Contains(resp.Error, "step budget") {
				t.Errorf("error %q does not mention the step budget", resp.Error)
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.JobsRun != n {
		t.Errorf("jobs_run = %d, want %d (failures are never shared)", st.JobsRun, n)
	}
}

// TestResultKeyTierSalt: the executing tier's version salt must be part
// of the result key. Two invariants ride on it: a result produced by a
// promoted binary can never answer an in-process job (or vice versa) —
// the native step budget is only a wall-clock approximation — and a
// gogen version bump must orphan every result cached from binaries of
// the old codegen, exactly as it orphans the binaries themselves.
func TestResultKeyTierSalt(t *testing.T) {
	prog := KeyOf(sumSrc(10))
	at := func(salt string) ResultKey {
		return resultKeyOf(prog, "compile", 2, 1, 1000, time.Second, "", salt, backend.SchedGoroutines)
	}
	inProc := at("")
	nativeV1 := at("native:gogen@g1")
	nativeV2 := at("native:gogen@g2")
	if inProc == nativeV1 || inProc == nativeV2 {
		t.Error("native-tier key collides with the in-process key")
	}
	if nativeV1 == nativeV2 {
		t.Error("gogen version bump does not change the native result key")
	}
	// The salt the server actually uses is pinned to the live gogen
	// version, so bumping gogen.Version invalidates stale native results
	// by construction.
	if want := "native:gogen@" + gogen.Version; (&native.Cache{}).Salt() != want {
		t.Errorf("cache salt = %q, want %q", (&native.Cache{}).Salt(), want)
	}
}
