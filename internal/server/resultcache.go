package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// ResultKey identifies one deterministic execution: the SHA-256 over the
// program hash plus every launch parameter that can influence the
// response bytes — engine, NP, seed, the clamped step budget and
// wall-clock budget, and the stdin bytes. Two requests with equal keys
// are the *same job*; for a program whose audit passes
// backend.Audit.DeterministicAt, executing both would produce identical
// responses, so the second can be answered from the first.
type ResultKey [sha256.Size]byte

// resultKeyOf derives the key. The clamped budgets are part of the key
// because they change outcomes at the margin: an OK run under a 500M
// step budget is not a valid answer for the same program asked to run
// under 100 steps (that run would have been budget-killed).
//
// tierSalt names the executing tier's version when the routing decision
// sends the job outside the in-process engines ("" for in-process,
// native.Cache.Salt() for promoted binaries). It is part of the key for
// two reasons: a gogen fix must invalidate results cached from binaries
// of the old codegen version, and the native tier's step budget is a
// wall-clock *approximation* — a result it produces near the budget
// margin is not interchangeable with a metered in-process result, so
// the two must never share a cache line.
// sched is part of the key because the worker scheduler's deadlock
// detector converts a deadlocked program's eventual timeout into an
// immediate error: the two modes' responses differ for such programs,
// so they must not share a cache line (successful outputs are identical,
// but the key must cover every response-changing input).
func resultKeyOf(prog Key, engine string, np int, seed int64,
	steps int64, timeout time.Duration, stdin string, tierSalt string,
	sched backend.SchedMode) ResultKey {
	h := sha256.New()
	h.Write(prog[:])
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(len(engine)))
	h.Write([]byte(engine))
	writeU64(uint64(len(tierSalt)))
	h.Write([]byte(tierSalt))
	writeU64(uint64(np))
	writeU64(uint64(seed))
	writeU64(uint64(steps))
	writeU64(uint64(timeout))
	writeU64(uint64(len(stdin)))
	h.Write([]byte(stdin))
	writeU64(uint64(sched))
	var k ResultKey
	h.Sum(k[:0])
	return k
}

// rcEntry is one key's state. Three shapes exist:
//
//   - in flight: done is open, el is nil — a leader is executing; equal
//     keys arriving now wait on done instead of executing (singleflight).
//   - stored: done closed, resp set, el on the LRU list — a completed
//     deterministic run; equal keys are answered from resp.
//   - bypass: done closed, resp nil, el on the LRU list — the program
//     was audited non-cacheable (or does not parse); equal keys skip the
//     result cache entirely and execute, paying only one map lookup.
type rcEntry struct {
	key  ResultKey
	done chan struct{}
	resp *RunResponse  // immutable once done is closed
	el   *list.Element // non-nil once stored or bypass-marked
}

// resultCache is the second caching layer behind the program cache:
// instead of amortizing the *frontend*, it eliminates re-*execution* of
// identical deterministic jobs, serving stored responses at lookup
// speed and coalescing identical in-flight jobs onto one execution.
// Entries (stored results and bypass markers alike) live on one LRU
// bounded by max.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *rcEntry
	items map[ResultKey]*rcEntry

	hits      obs.Counter // answered from a stored result
	misses    obs.Counter // cacheable job that had to execute
	coalesced obs.Counter // answered by waiting on an in-flight leader
	bypassed  obs.Counter // audited non-cacheable; executed normally
	evicted   obs.Counter
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, ll: list.New(), items: make(map[ResultKey]*rcEntry)}
}

// rcClaim is a leader's obligation: a claim is returned by acquire when
// the caller must execute the job itself, and the caller must resolve
// it on every path — fulfill, bypass, abandonMiss, or abandon — or
// every later equal-key request deadlocks waiting on done.
type rcClaim struct {
	c *resultCache
	e *rcEntry
}

// acquire resolves key against the cache. Exactly one of the returns is
// meaningful:
//
//   - resp non-nil: the job is answered (hit or coalesced); do not run.
//   - claim non-nil: the caller is the leader; execute and resolve.
//   - all nil: the key is bypass-marked; execute without caching.
//   - err non-nil: ctx ended while waiting on an in-flight leader.
func (c *resultCache) acquire(ctx context.Context, key ResultKey) (*RunResponse, *rcClaim, error) {
	for {
		c.mu.Lock()
		e, ok := c.items[key]
		if !ok {
			e = &rcEntry{key: key, done: make(chan struct{})}
			c.items[key] = e
			c.mu.Unlock()
			return nil, &rcClaim{c: c, e: e}, nil
		}
		select {
		case <-e.done:
			// Stored or bypass-marked; both shapes are LRU-listed.
			if e.resp == nil {
				c.ll.MoveToFront(e.el)
				c.bypassed.Add(1)
				c.mu.Unlock()
				return nil, nil, nil
			}
			c.ll.MoveToFront(e.el)
			resp := cloneResponse(e.resp)
			c.hits.Add(1)
			c.mu.Unlock()
			return resp, nil, nil
		default:
		}
		// A leader is executing this exact job right now. Wait for it
		// rather than duplicating the work.
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.resp != nil {
				c.coalesced.Add(1)
				return cloneResponse(e.resp), nil, nil
			}
			// The leader abandoned (failed run) or bypass-marked the
			// key; loop to re-resolve — one waiter becomes the next
			// leader, or everyone sees the bypass marker.
			continue
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// fulfill stores the leader's response and wakes waiters with it. Only
// ok, untruncated runs of audited-deterministic jobs may be fulfilled;
// the caller guarantees that.
func (cl *rcClaim) fulfill(resp *RunResponse) {
	if faultinject.Fire("server.resultcache.dropfulfill") {
		// Chaos seam: the store is lost between execution and fulfilment
		// (as if the entry were evicted at the worst moment). Correctness
		// requires waiters to re-elect a leader and re-execute, never to
		// hang or to see a half-stored result.
		cl.abandonMiss()
		return
	}
	c := cl.c
	c.mu.Lock()
	cl.e.resp = cloneResponse(resp)
	cl.e.el = c.ll.PushFront(cl.e)
	c.trimLocked()
	c.misses.Add(1)
	close(cl.e.done)
	c.mu.Unlock()
}

// bypass marks the key non-cacheable (failed audit or parse failure):
// the entry stays on the LRU as a negative marker so later equal keys
// skip straight to execution — and, crucially, identical non-
// deterministic jobs are never serialized behind each other more than
// this once.
func (cl *rcClaim) bypass() {
	c := cl.c
	c.mu.Lock()
	cl.e.el = c.ll.PushFront(cl.e)
	c.trimLocked()
	c.bypassed.Add(1)
	close(cl.e.done)
	c.mu.Unlock()
}

// abandonMiss removes the entry after a cacheable job's run ended
// unstorable (runtime error, budget kill, timeout, truncated output):
// the lookup still counts as a miss, waiters retry, and the next equal
// key gets a fresh attempt.
func (cl *rcClaim) abandonMiss() {
	cl.c.misses.Add(1)
	cl.release()
}

// abandon removes the entry without counting anything: the job never
// really ran (queue-full rejection, client cancellation).
func (cl *rcClaim) abandon() { cl.release() }

func (cl *rcClaim) release() {
	c := cl.c
	c.mu.Lock()
	delete(c.items, cl.e.key)
	close(cl.e.done)
	c.mu.Unlock()
}

// trimLocked evicts LRU-listed entries beyond max. In-flight entries
// are not listed and therefore never evicted mid-run.
func (c *resultCache) trimLocked() {
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*rcEntry).key)
		c.evicted.Add(1)
	}
}

// Stats snapshots the result-cache counters.
func (c *resultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return ResultCacheStats{
		Enabled:   true,
		Size:      n,
		Max:       c.max,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Bypassed:  c.bypassed.Load(),
		Evicted:   c.evicted.Load(),
	}
}

// ResultCacheStats is the /v1/stats view of the result cache. For
// traffic that is entirely cacheable, Hits+Misses+Coalesced equals the
// number of served (non-rejected, non-cancelled) requests — the
// accounting invariant the server stress test asserts.
type ResultCacheStats struct {
	Enabled   bool  `json:"enabled"`
	Size      int   `json:"size"`
	Max       int   `json:"max"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Bypassed  int64 `json:"bypassed"`
	Evicted   int64 `json:"evicted"`
}

// HitRate counts both stored hits and coalesced joins as wins: neither
// paid for an execution.
func (s ResultCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// cloneResponse copies a response so cached state is never aliased by a
// caller that mutates its copy (the serve path stamps per-request
// timing fields onto it).
func cloneResponse(r *RunResponse) *RunResponse {
	out := *r
	if r.Stats != nil {
		st := *r.Stats
		out.Stats = &st
	}
	return &out
}
