package server

import (
	"context"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/native/sandbox"
	"repro/internal/obs"
)

// nativeStepsPerSecond converts a per-PE step budget into the native
// tier's approximation of it. Generated code has no step counter — that
// is the whole point of the tier — so the budget is converted to time:
// on platforms with the sandbox, an RLIMIT_CPU second count the child
// imposes on itself (NP x MaxSteps worth of CPU, since the kernel meters
// all PE goroutines together), elsewhere a wall-clock deadline of
// MaxSteps/nativeStepsPerSecond. The rate is a deliberate
// *underestimate* of real native throughput (measured well above 100M
// simple steps/s): a program within its budget always finishes before
// the approximated limit, so promotion can never turn an OK run into a
// budget kill. The opposite divergence is allowed and documented: a
// program the metered tiers would kill may complete natively.
// Result-cache safety comes from the tier salt, not from matching kill
// behaviour.
const nativeStepsPerSecond = 20_000_000

// maxTrackedNative bounds the promotion-state map: an adversary
// submitting unbounded distinct hot programs stops being tracked, not
// the server. Programs beyond the bound simply keep running in-process.
const maxTrackedNative = 1024

// nativeBuildQueueDepth bounds builds waiting for a builder goroutine.
// A full queue delays promotion (the program retries on a later hit),
// it never blocks a request.
const nativeBuildQueueDepth = 16

// nativeState is a program's position in the promotion lifecycle.
type nativeState int

const (
	nativeBuilding     nativeState = iota + 1 // queued or mid `go build`
	nativeReady                               // binary on disk, jobs route to it
	nativeUnpromotable                        // unsupported, build failed, or demoted
)

type nativeProg struct {
	state nativeState
	bin   string // binary path, set in nativeReady
}

// nativeTier owns the promotion policy: per-program lifecycle state, the
// bounded background build queue, the tier-wide circuit breaker, and the
// counters /v1/stats reports. Build and run mechanics live in
// internal/native.
type nativeTier struct {
	cache     *native.Cache
	threshold int64
	memBytes  int64 // child RLIMIT_AS; 0 = none
	noSandbox bool
	breaker   *breaker

	queue       chan nativeBuildJob
	stop        chan struct{}
	buildCtx    context.Context
	buildCancel context.CancelFunc
	wg          sync.WaitGroup

	mu           sync.Mutex
	progs        map[Key]*nativeProg
	sandboxLevel string // Probe prediction until the first child reports

	promotions    obs.Counter // binaries built (or adopted from disk)
	buildFailures obs.Counter
	unsupported   obs.Counter
	demotions     obs.Counter
	runs          obs.Counter
	fallbacks     obs.Counter // tier failures that re-ran in-process
	breakerSheds  obs.Counter // jobs kept in-process by an open breaker
}

type nativeBuildJob struct {
	key  Key
	prog *core.Program
}

func newNativeTier(o Options) *nativeTier {
	builders := o.NativeBuilds
	if builders <= 0 {
		builders = 1
	}
	memBytes := o.NativeMemBytes
	if memBytes < 0 {
		memBytes = 0 // explicit "no limit"
	}
	nt := &nativeTier{
		cache:        o.NativeCache,
		threshold:    o.NativeThreshold,
		memBytes:     memBytes,
		noSandbox:    o.NativeNoSandbox,
		breaker:      newBreaker(o.NativeBreakerThreshold, o.NativeBreakerWindow, o.NativeBreakerCooldown),
		queue:        make(chan nativeBuildJob, nativeBuildQueueDepth),
		stop:         make(chan struct{}),
		progs:        make(map[Key]*nativeProg),
		sandboxLevel: string(sandbox.Probe()),
	}
	if nt.noSandbox {
		nt.sandboxLevel = string(sandbox.LevelNone)
	}
	nt.buildCtx, nt.buildCancel = context.WithCancel(context.Background())
	nt.wg.Add(builders)
	for i := 0; i < builders; i++ {
		go nt.builder()
	}
	return nt
}

// noteSandbox records the containment level a child actually reported,
// replacing the parent-side Probe prediction in stats.
func (nt *nativeTier) noteSandbox(level string) {
	if level == "" {
		return
	}
	nt.mu.Lock()
	nt.sandboxLevel = level
	nt.mu.Unlock()
}

// sandboxState reports the current (predicted or child-confirmed)
// containment level.
func (nt *nativeTier) sandboxState() string {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	return nt.sandboxLevel
}

func (nt *nativeTier) close() {
	nt.buildCancel() // aborts any in-flight `go build`
	close(nt.stop)
	nt.wg.Wait()
}

// binaryFor reports the promoted binary for a program, if one is ready.
func (nt *nativeTier) binaryFor(key Key) (string, bool) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	if p, ok := nt.progs[key]; ok && p.state == nativeReady {
		return p.bin, true
	}
	return "", false
}

// maybePromote is called on every program-cache lookup with the entry's
// hit count. Crossing the threshold starts the lifecycle exactly once:
// adopt a binary already on disk (a previous process built it), mark
// unsupported programs terminally, or queue a background build. Never
// blocks the calling request.
func (nt *nativeTier) maybePromote(key Key, prog *core.Program, hits int64) {
	if hits < nt.threshold {
		return
	}
	nt.mu.Lock()
	p, ok := nt.progs[key]
	if ok && p.state != 0 {
		nt.mu.Unlock()
		return
	}
	if !ok {
		if len(nt.progs) >= maxTrackedNative {
			nt.mu.Unlock()
			return
		}
		p = &nativeProg{}
		nt.progs[key] = p
	}
	if bin, onDisk := nt.cache.Lookup(hex.EncodeToString(key[:])); onDisk {
		p.state, p.bin = nativeReady, bin
		nt.promotions.Add(1)
		nt.mu.Unlock()
		return
	}
	if err := native.Check(prog.Info); err != nil {
		p.state = nativeUnpromotable
		nt.unsupported.Add(1)
		nt.mu.Unlock()
		return
	}
	p.state = nativeBuilding
	nt.mu.Unlock()

	select {
	case nt.queue <- nativeBuildJob{key: key, prog: prog}:
	default:
		// Build queue full: un-claim so a later hit retries.
		nt.mu.Lock()
		p.state = 0
		nt.mu.Unlock()
	}
}

// demote terminally removes a program from the tier after an
// infrastructure failure at run time (binary missing, protocol broken)
// and deletes its cached binary: a binary that broke the protocol once
// is suspect forever, and leaving it on disk would let a restarted
// server re-adopt it and break the same way again.
func (nt *nativeTier) demote(key Key) {
	nt.mu.Lock()
	demoted := false
	if p, ok := nt.progs[key]; ok && p.state == nativeReady {
		p.state = nativeUnpromotable
		nt.demotions.Add(1)
		demoted = true
	}
	nt.mu.Unlock()
	if demoted {
		nt.cache.Remove(hex.EncodeToString(key[:]))
	}
}

func (nt *nativeTier) builder() {
	defer nt.wg.Done()
	for {
		select {
		case <-nt.stop:
			return
		case job := <-nt.queue:
			nt.build(job)
		}
	}
}

func (nt *nativeTier) build(job nativeBuildJob) {
	bin, err := nt.cache.Build(nt.buildCtx, hex.EncodeToString(job.key[:]), job.prog.Info)
	nt.mu.Lock()
	defer nt.mu.Unlock()
	p := nt.progs[job.key]
	if p == nil {
		return
	}
	switch {
	case err == nil:
		p.state, p.bin = nativeReady, bin
		nt.promotions.Add(1)
	case errors.Is(err, native.ErrUnsupported):
		p.state = nativeUnpromotable
		nt.unsupported.Add(1)
	default:
		// A failed build is terminal for this process: retrying a
		// deterministic toolchain failure would just burn builders.
		p.state = nativeUnpromotable
		nt.buildFailures.Add(1)
	}
}

// nativeRoute is one job's admission to the native tier: the promoted
// binary plus the breaker ticket the job must settle (succeed on any
// answered run, fail on a tier failure, cancel if it never reaches the
// tier).
type nativeRoute struct {
	bin    string
	ticket *bkTicket
}

// runNative executes one job on a promoted binary. The third return
// reports whether the native tier answered at all: false means an
// infrastructure failure demoted the program and the caller must re-run
// the job on the in-process engine.
func (s *Server) runNative(ctx context.Context, req RunRequest, key Key, route *nativeRoute,
	prog *core.Program, timeout time.Duration, steps int64, resp RunResponse) (RunResponse, bool, bool) {
	spec := native.RunSpec{
		NP: req.NP, Seed: req.Seed, Stdin: req.Stdin, MaxOutput: s.opts.MaxOutputBytes,
		MemBytes:  s.native.memBytes,
		NoSandbox: s.native.noSandbox,
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if sandbox.Supported() && !s.native.noSandbox {
		// The step budget rides on the child's RLIMIT_CPU: the kernel
		// meters all PE goroutines together, so the allowance is NP x
		// steps worth of CPU at the assumed (deliberately low) rate,
		// rounded up. The context carries only the wall deadline.
		spec.CPUBudgetSecs = int64(float64(req.NP)*float64(steps)/nativeStepsPerSecond) + 1
		jobCtx, cancel = context.WithTimeout(ctx, timeout)
	} else if budget := time.Duration(float64(steps) / nativeStepsPerSecond * float64(time.Second)); budget < timeout {
		// No kernel budget available: the old wall-clock approximation,
		// with the step-budget sentinel as the kill's cause.
		jobCtx, cancel = context.WithTimeoutCause(ctx, budget, backend.ErrStepBudget)
	} else {
		jobCtx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	// Same cacheability verdict as in-process: serve mode always groups
	// output, so only the determinism audit is in question.
	cacheable := prog.Audit().DeterministicAt(req.NP)

	s.inFlight.Add(1)
	start := time.Now()
	res, runErr := native.RunBinary(jobCtx, route.bin, spec)
	s.inFlight.Add(-1)
	wall := time.Since(start)
	obs.FromContext(ctx).Record(stageExecute, wall)

	var te *native.TierError
	if errors.As(runErr, &te) {
		// The tier broke, not the program: demote and let the caller's
		// in-process run do all the counting — this attempt produced
		// nothing a client sees.
		route.ticket.fail()
		s.native.demote(key)
		s.native.fallbacks.Add(1)
		return resp, false, false
	}

	// Anything else — success, program error, budget or deadline kill —
	// is the tier doing its job.
	route.ticket.succeed()
	s.native.cache.Touch(hex.EncodeToString(key[:]))

	s.jobsRun.Add(1)
	s.native.runs.Add(1)
	s.metrics.execNative.Inc()
	resp.WallMS = ms(wall)
	resp.Tier = "native"
	if runErr != nil { // RLIMIT_CPU budget kill, or context kill: deadline / client
		s.jobsFailed.Add(1)
		resp.Outcome = classify(runErr, ctx)
		resp.Error = runErr.Error()
		return resp, cacheable, true
	}
	s.native.noteSandbox(res.Sandbox)
	resp.Output = res.Output
	resp.Errout = res.Errout
	resp.OutputTruncated = res.Truncated
	if !res.OK {
		s.jobsFailed.Add(1)
		resp.Outcome = OutcomeRuntime
		resp.Error = res.Error
		return resp, cacheable, true
	}
	s.jobsOK.Add(1)
	resp.Outcome = OutcomeOK
	resp.Stats = res.Stats
	resp.SimNanos = res.SimNanos
	return resp, cacheable, true
}

// NativeStats is the /v1/stats view of the native tier.
type NativeStats struct {
	Enabled   bool  `json:"enabled"`
	Threshold int64 `json:"threshold,omitempty"`
	// Ready / Building / Unpromotable partition the tracked programs.
	Ready        int `json:"ready"`
	Building     int `json:"building"`
	Unpromotable int `json:"unpromotable"`
	// Promotions counts binaries that became routable (built here or
	// adopted from a previous process's disk cache); Runs counts jobs the
	// tier answered; Fallbacks counts jobs that had to re-run in-process
	// after a tier failure.
	Promotions    int64 `json:"promotions"`
	BuildFailures int64 `json:"build_failures"`
	Unsupported   int64 `json:"unsupported"`
	Demotions     int64 `json:"demotions"`
	Runs          int64 `json:"runs"`
	Fallbacks     int64 `json:"fallbacks"`
	// CacheBytes and CacheEntries report the on-disk binary cache —
	// every gogen version's binaries, since stale versions still occupy
	// disk until cleaned. CacheMaxBytes is the configured quota (0 =
	// unlimited) and Evictions counts binaries the quota has deleted.
	CacheBytes    int64 `json:"cache_bytes"`
	CacheEntries  int   `json:"cache_entries"`
	CacheMaxBytes int64 `json:"cache_max_bytes,omitempty"`
	Evictions     int64 `json:"evictions"`
	// Sandbox is the child containment level: the parent's kernel probe
	// until the first child reports, then whatever children actually
	// achieve. Breaker is the tier circuit breaker's state
	// (closed/open/half-open); BreakerTrips counts times it opened and
	// BreakerSheds counts jobs it kept in-process while open.
	Sandbox      string `json:"sandbox"`
	Breaker      string `json:"breaker"`
	BreakerTrips int64  `json:"breaker_trips"`
	BreakerSheds int64  `json:"breaker_sheds"`
}

func (nt *nativeTier) stats() NativeStats {
	bytes, entries := nt.cache.DiskUsage()
	st := NativeStats{
		Enabled:       true,
		Threshold:     nt.threshold,
		CacheBytes:    bytes,
		CacheEntries:  entries,
		CacheMaxBytes: nt.cache.MaxBytes(),
		Evictions:     nt.cache.Evictions(),
		Sandbox:       nt.sandboxState(),
		Breaker:       nt.breaker.stateName(),
		BreakerTrips:  nt.breaker.tripCount(),
		BreakerSheds:  nt.breakerSheds.Load(),
		Promotions:    nt.promotions.Load(),
		BuildFailures: nt.buildFailures.Load(),
		Unsupported:   nt.unsupported.Load(),
		Demotions:     nt.demotions.Load(),
		Runs:          nt.runs.Load(),
		Fallbacks:     nt.fallbacks.Load(),
	}
	nt.mu.Lock()
	for _, p := range nt.progs {
		switch p.state {
		case nativeReady:
			st.Ready++
		case nativeBuilding:
			st.Building++
		case nativeUnpromotable:
			st.Unpromotable++
		}
	}
	nt.mu.Unlock()
	return st
}
