package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gogen"
	"repro/internal/obs"
)

// Handler returns the HTTP API:
//
//	POST /v1/run        run a program (RunRequest JSON in, RunResponse JSON out)
//	POST /v1/batch      run a list of jobs (BatchRequest in, NDJSON BatchItems out)
//	GET  /v1/stats      server, cache, and queue counters
//	GET  /v1/backends   registered engine names
//	GET  /v1/healthz    liveness probe (JSON: status, versions, uptime)
//	GET  /v1/debug/slow slowest recent requests with stage breakdowns
//	GET  /metrics       Prometheus text exposition
//
// Every response carries an X-Request-Id header (a client-supplied one is
// honoured), every request is traced as an obs.Span and logged as one
// structured line, and request/stage latencies feed the /metrics
// histograms.
//
// Job outcomes (runtime error, budget kill, timeout) are reported in the
// 200 response body — the request was served; the program failed. Only
// protocol-level problems map to error statuses: malformed JSON is 400,
// an invalid or oversized request is 422, and a saturated queue sheds
// load with 503 plus a Retry-After header — the server is healthy but
// full, and the client should come back, not back off as if throttled.
// For /v1/batch the protocol check covers only the envelope (parseable
// JSON, 1..MaxBatchJobs jobs); per-job problems, including rejections,
// ride in that job's streamed item.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/debug/slow", s.handleSlow)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	return s.instrument(mux)
}

// DebugHandler returns the operator-only surface — net/http/pprof plus a
// second mount of /metrics and /v1/debug/slow — meant for a separate
// loopback listener (lolserv -debug-addr), never the public port:
// profiles can stall the process and leak source.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	mux.HandleFunc("/v1/debug/slow", s.handleSlow)
	return mux
}

// instrument wraps the API mux with the per-request observability
// envelope: request ID, span, metrics, slow-ring, and one log line.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 64 {
			id = obs.NewRequestID()
		}
		sp := obs.NewSpan(id, r.URL.Path)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		// The mux stamps the matched pattern onto the request it routes, so
		// keep r2 to read the bounded endpoint label after serving.
		r2 := r.WithContext(obs.WithSpan(r.Context(), sp))
		next.ServeHTTP(sw, r2)

		snap := sp.Snapshot()
		endpoint := patternPath(r2.Pattern)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.metrics.httpRequests.With(endpoint, strconv.Itoa(status)).Inc()
		s.metrics.requestSeconds.With(endpoint).Observe(snap.Total.Seconds())
		s.metrics.finishSpan(snap)

		attrs := []slog.Attr{
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("total_ms", snap.TotalMS),
		}
		if snap.Outcome != "" {
			attrs = append(attrs,
				slog.String("outcome", snap.Outcome),
				slog.String("backend", snap.Backend),
				slog.String("tier", snap.Tier))
		}
		for _, st := range snap.Stages {
			attrs = append(attrs, slog.Float64(st.Name+"_ms", st.MS))
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

// patternPath reduces a ServeMux pattern ("POST /v1/run") to its path for
// use as a bounded metric label; unrouted requests fall into "other".
func patternPath(pattern string) string {
	if pattern == "" {
		return "other"
	}
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		pattern = pattern[i+1:]
	}
	return pattern
}

// statusWriter captures the committed status code. It passes Flush
// through so the NDJSON batch stream keeps flushing per item.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sp := obs.FromContext(r.Context())
	var req RunRequest
	// 2x the source limit: JSON escaping can double src (every newline and
	// quote becomes two bytes), and the envelope needs a little room. The
	// precise limit is enforced on the decoded src by validate.
	aStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, 2*int64(s.opts.MaxSrcBytes)+64<<10)
	err := json.NewDecoder(body).Decode(&req)
	sp.Record(stageAdmission, time.Since(aStart))
	if err != nil {
		writeJSON(w, decodeStatus(err), RunResponse{
			Outcome: OutcomeRejected,
			Error:   fmt.Sprintf("decoding request: %v", err),
		})
		return
	}
	// r.Context() is cancelled when the client disconnects, which tears
	// the job down and releases its PEs.
	resp := s.Run(r.Context(), req)
	wStart := time.Now()
	status := statusFor(resp.Outcome, resp.Error)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSecs)
	}
	writeJSON(w, status, resp)
	sp.Record(stageRespond, time.Since(wStart))
}

// handleBatch streams one NDJSON line per job as it completes. The 200
// status is committed before any job runs, so job failures cannot change
// it — exactly like /v1/run, a failed program is a served request.
// Lifecycle stages are recorded per job, on child spans RunBatch creates;
// the envelope span records only its own admission work.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sp := obs.FromContext(r.Context())
	var req BatchRequest
	aStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, int64(s.opts.MaxBatchBytes))
	err := json.NewDecoder(body).Decode(&req)
	sp.Record(stageAdmission, time.Since(aStart))
	if err != nil {
		writeJSON(w, decodeStatus(err), RunResponse{
			Outcome: OutcomeRejected,
			Error:   fmt.Sprintf("decoding batch request: %v", err),
		})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusUnprocessableEntity, RunResponse{
			Outcome: OutcomeRejected, Error: "batch has no jobs",
		})
		return
	}
	if len(req.Jobs) > s.opts.MaxBatchJobs {
		writeJSON(w, http.StatusUnprocessableEntity, RunResponse{
			Outcome: OutcomeRejected,
			Error:   fmt.Sprintf("batch has %d jobs (limit %d)", len(req.Jobs), s.opts.MaxBatchJobs),
		})
		return
	}
	if s.pool.saturated() {
		// Shed the whole batch before committing the 200 stream: once
		// streaming starts the envelope status is spent, and a saturated
		// pool would just emit MaxBatchJobs rejected lines anyway.
		s.jobsRejected.Add(int64(len(req.Jobs)))
		s.metrics.outcomes.With(string(OutcomeRejected)).Add(int64(len(req.Jobs)))
		w.Header().Set("Retry-After", retryAfterSecs)
		writeJSON(w, http.StatusServiceUnavailable, RunResponse{
			Outcome: OutcomeRejected, Error: ErrBusy.Error(),
		})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	// Drain the channel fully even if the client goes away mid-stream:
	// r.Context() cancels the remaining jobs, and the writes fail
	// harmlessly — but the producer goroutines must not be left blocked.
	for item := range s.RunBatch(r.Context(), req.Jobs) {
		if err := enc.Encode(item); err != nil {
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// decodeStatus distinguishes the two ways a request body can fail to
// decode: over the size limit is an invalid request (422, matching the
// documented oversized-request contract), anything else is malformed
// JSON (400).
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// retryAfterSecs is the Retry-After value sent with every 503: queue
// saturation clears in well under a second once any job finishes, so a
// one-second backoff is the smallest hint the header grammar can carry.
const retryAfterSecs = "1"

func statusFor(o Outcome, errMsg string) int {
	switch o {
	case OutcomeRejected:
		if errMsg == ErrBusy.Error() {
			return http.StatusServiceUnavailable
		}
		return http.StatusUnprocessableEntity
	case OutcomeParseError:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusOK
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	// Advertise exactly the set /v1/run accepts (core.ParseBackend), so
	// the two cannot drift from each other.
	names := make([]string, 0, len(core.Backends()))
	for _, b := range core.Backends() {
		names = append(names, b.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": names})
}

// handleHealthz answers the liveness probe with enough identity to tell
// which build is serving: runtime and codegen versions plus uptime, and
// — when the native tier is on — its degradation state (breaker and
// sandbox level), so a fleet check can spot a server quietly running
// three-tiered. A plain `curl -f` still works — status stays 200 and
// "ok" is in the body; a tripped breaker is degradation, not death.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":       "ok",
		"go":           runtime.Version(),
		"gogen":        gogen.Version,
		"uptime_s":     time.Since(s.start).Seconds(),
		"native_tier":  s.native != nil,
		"result_cache": s.results != nil,
	}
	if s.native != nil {
		body["native_breaker"] = s.native.breaker.stateName()
		body["native_sandbox"] = s.native.sandboxState()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleSlow serves the slowest recent requests (default 16, ?n= caps it)
// with their full stage breakdowns, slowest first.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	n := 16
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"requests": s.metrics.slow.Slowest(n)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}
