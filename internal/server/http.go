package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// Handler returns the HTTP API:
//
//	POST /v1/run      run a program (RunRequest JSON in, RunResponse JSON out)
//	GET  /v1/stats    server, cache, and queue counters
//	GET  /v1/backends registered engine names
//	GET  /v1/healthz  liveness probe
//
// Job outcomes (runtime error, budget kill, timeout) are reported in the
// 200 response body — the request was served; the program failed. Only
// protocol-level problems map to error statuses: malformed JSON is 400,
// an invalid or oversized request is 422, a saturated queue is 429.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	// 2x the source limit: JSON escaping can double src (every newline and
	// quote becomes two bytes), and the envelope needs a little room. The
	// precise limit is enforced on the decoded src by validate.
	body := http.MaxBytesReader(w, r.Body, 2*int64(s.opts.MaxSrcBytes)+64<<10)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, RunResponse{
			Outcome: OutcomeRejected,
			Error:   fmt.Sprintf("decoding request: %v", err),
		})
		return
	}
	// r.Context() is cancelled when the client disconnects, which tears
	// the job down and releases its PEs.
	resp := s.Run(r.Context(), req)
	writeJSON(w, statusFor(resp.Outcome, resp.Error), resp)
}

func statusFor(o Outcome, errMsg string) int {
	switch o {
	case OutcomeRejected:
		if errMsg == ErrBusy.Error() {
			return http.StatusTooManyRequests
		}
		return http.StatusUnprocessableEntity
	case OutcomeParseError:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusOK
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	// Advertise exactly the set /v1/run accepts (core.ParseBackend), so
	// the two cannot drift from each other.
	names := make([]string, 0, len(core.Backends()))
	for _, b := range core.Backends() {
		names = append(names, b.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": names})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}
