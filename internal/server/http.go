package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// Handler returns the HTTP API:
//
//	POST /v1/run      run a program (RunRequest JSON in, RunResponse JSON out)
//	POST /v1/batch    run a list of jobs (BatchRequest in, NDJSON BatchItems out)
//	GET  /v1/stats    server, cache, and queue counters
//	GET  /v1/backends registered engine names
//	GET  /v1/healthz  liveness probe
//
// Job outcomes (runtime error, budget kill, timeout) are reported in the
// 200 response body — the request was served; the program failed. Only
// protocol-level problems map to error statuses: malformed JSON is 400,
// an invalid or oversized request is 422, a saturated queue is 429. For
// /v1/batch the protocol check covers only the envelope (parseable JSON,
// 1..MaxBatchJobs jobs); per-job problems, including rejections, ride in
// that job's streamed item.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	// 2x the source limit: JSON escaping can double src (every newline and
	// quote becomes two bytes), and the envelope needs a little room. The
	// precise limit is enforced on the decoded src by validate.
	body := http.MaxBytesReader(w, r.Body, 2*int64(s.opts.MaxSrcBytes)+64<<10)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, decodeStatus(err), RunResponse{
			Outcome: OutcomeRejected,
			Error:   fmt.Sprintf("decoding request: %v", err),
		})
		return
	}
	// r.Context() is cancelled when the client disconnects, which tears
	// the job down and releases its PEs.
	resp := s.Run(r.Context(), req)
	writeJSON(w, statusFor(resp.Outcome, resp.Error), resp)
}

// handleBatch streams one NDJSON line per job as it completes. The 200
// status is committed before any job runs, so job failures cannot change
// it — exactly like /v1/run, a failed program is a served request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, int64(s.opts.MaxBatchBytes))
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, decodeStatus(err), RunResponse{
			Outcome: OutcomeRejected,
			Error:   fmt.Sprintf("decoding batch request: %v", err),
		})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusUnprocessableEntity, RunResponse{
			Outcome: OutcomeRejected, Error: "batch has no jobs",
		})
		return
	}
	if len(req.Jobs) > s.opts.MaxBatchJobs {
		writeJSON(w, http.StatusUnprocessableEntity, RunResponse{
			Outcome: OutcomeRejected,
			Error:   fmt.Sprintf("batch has %d jobs (limit %d)", len(req.Jobs), s.opts.MaxBatchJobs),
		})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	// Drain the channel fully even if the client goes away mid-stream:
	// r.Context() cancels the remaining jobs, and the writes fail
	// harmlessly — but the producer goroutines must not be left blocked.
	for item := range s.RunBatch(r.Context(), req.Jobs) {
		if err := enc.Encode(item); err != nil {
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// decodeStatus distinguishes the two ways a request body can fail to
// decode: over the size limit is an invalid request (422, matching the
// documented oversized-request contract), anything else is malformed
// JSON (400).
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

func statusFor(o Outcome, errMsg string) int {
	switch o {
	case OutcomeRejected:
		if errMsg == ErrBusy.Error() {
			return http.StatusTooManyRequests
		}
		return http.StatusUnprocessableEntity
	case OutcomeParseError:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusOK
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	// Advertise exactly the set /v1/run accepts (core.ParseBackend), so
	// the two cannot drift from each other.
	names := make([]string, 0, len(core.Backends()))
	for _, b := range core.Backends() {
		names = append(names, b.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": names})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}
