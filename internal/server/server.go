// Package server is the concurrent job-execution service behind cmd/lolserv:
// it accepts parallel-LOLCODE source, serves the compiled form out of an
// LRU program cache (parse+sema+codegen happen once per unique program,
// not per request), and executes jobs on a bounded worker pool with a
// per-program fairness queue. Every job runs under an enforced resource
// budget — a wall-clock deadline and a per-PE step budget threaded through
// backend.Config — so a hostile or buggy program (an infinite IM IN YR
// LOOP, a PE that never reaches HUGZ) is killed and its PEs released
// instead of wedging a worker.
//
// Above the program cache sits a second layer: a deterministic result
// cache keyed by (program sha256, backend, NP, seed, clamped budgets,
// stdin), with singleflight coalescing of identical in-flight jobs. A
// run may only be stored and replayed when its determinism audit passes
// (backend.Audit — no stdin arbitration, shared state, or locks at
// NP>1), output was grouped, and the run completed ok and untruncated;
// everything else falls through to execution. Clients may also submit a
// whole list of jobs as one batch (Server.RunBatch, POST /v1/batch),
// streamed back as NDJSON in completion order through the same fairness
// pool and budgets.
//
// The execution ladder has four tiers. Three run in-process — the
// tree-walking interpreter, the bytecode VM, and the closure compiler —
// and a fourth, optional tier promotes hot programs out of the process
// entirely: when a program's cache hit count crosses a threshold, a
// background builder lowers it to Go (internal/gogen), compiles a
// standalone binary into an on-disk cache keyed by source hash and
// codegen version, and subsequent jobs run it as a subprocess
// (internal/native). Promotion is invisible to clients except in speed
// and the response's tier field: all four tiers are semantically
// identical (byte-identical grouped output for deterministic programs,
// enforced by differential tests), unsupported programs (SRS) are
// detected up front and stay in-process, and any native infrastructure
// failure demotes the program and re-runs the job in-process.
//
// The whole request path is observable through internal/obs: every
// request gets an X-Request-Id, a lifecycle span timed stage by stage
// (admission, result cache, queue wait, program cache, compile,
// execute, respond), and one structured slog line; counters and
// latency histograms are exposed in Prometheus text format at GET
// /metrics, the slowest recent requests with stage breakdowns at GET
// /v1/debug/slow, and Server.DebugHandler serves net/http/pprof for a
// separate operator-only listener. See README.md's Observability
// section.
//
// The paper's toolchain stops at a batch launcher (coprsh/aprun); this
// package is the repository's answer to the ROADMAP's production-service
// north star: the same three engines, behind an API that serves a
// course's worth of identical submissions at lookup speed and survives
// concurrent untrusted traffic.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/obs"
	"repro/internal/shmem"
)

// Options configures a Server. The zero value is usable: every field has
// a production-shaped default.
type Options struct {
	// Workers bounds concurrently executing jobs (default 4). Each job may
	// itself run many PE goroutines, so this is the unit of admission
	// control, not of parallelism.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64); beyond it
	// submissions fail fast with ErrBusy.
	QueueDepth int
	// CacheSize bounds the compiled-program LRU (default 128 programs).
	CacheSize int
	// ResultCacheSize bounds the deterministic-result LRU (default 512
	// entries, counting stored results and bypass markers alike). A
	// negative value disables result caching entirely: every job
	// executes. Only jobs whose determinism audit passes are ever
	// stored; see backend.Audit.
	ResultCacheSize int
	// MaxBatchJobs caps the number of jobs one /v1/batch request may
	// carry (default 256).
	MaxBatchJobs int
	// MaxBatchBytes caps the /v1/batch request body (default 16 MiB).
	MaxBatchBytes int
	// MaxNP caps the per-job PE count (default 64).
	MaxNP int
	// MaxSrcBytes caps program size (default 1 MiB).
	MaxSrcBytes int
	// MaxOutputBytes caps each job's retained VISIBLE (and, separately,
	// INVISIBLE) output (default 1 MiB); overflow is dropped and flagged
	// in the response, bounding server memory against print floods.
	MaxOutputBytes int
	// DefaultTimeout and MaxTimeout bound each job's wall clock (defaults
	// 5s and 30s). A request may ask for less than the max, never more.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultStepBudget and MaxStepBudget bound each PE's step count
	// (defaults 50M and 500M). A request may ask for less, never more.
	DefaultStepBudget int64
	MaxStepBudget     int64
	// Sched is the default SPMD scheduler mode for jobs that don't set
	// the request field: SchedAuto (zero value) lets capable engines use
	// the bounded worker pool at high NP, SchedGoroutines forces a
	// goroutine per PE, SchedWorkers forces the pool.
	Sched backend.SchedMode

	// NativeCache enables the fourth execution tier: programs whose
	// program-cache hit count reaches NativeThreshold are compiled by
	// internal/gogen into standalone binaries (stored in this cache) and
	// subsequent jobs for them run as subprocesses. nil, or a
	// NativeThreshold of 0, disables the tier. The caller owns cache
	// construction because it can fail (missing go toolchain) and New
	// cannot — cmd/lolserv warns and runs three-tiered when it does.
	NativeCache     *native.Cache
	NativeThreshold int64
	// NativeBuilds bounds concurrent background `go build`s (default 1).
	NativeBuilds int
	// NativeMemBytes is each native child's RLIMIT_AS cap (default 4 GiB;
	// -1 disables). A child that outgrows it dies and the job falls back
	// in-process.
	NativeMemBytes int64
	// NativeNoSandbox skips the child self-jail entirely (benchmarking
	// only; the child reports sandbox level "none").
	NativeNoSandbox bool
	// NativeBreakerThreshold trips the tier-wide circuit breaker after
	// this many infrastructure failures inside NativeBreakerWindow
	// (defaults 5 and 30s); the breaker then keeps all jobs in-process
	// for NativeBreakerCooldown (default 15s) before probing the tier
	// with single jobs until one succeeds.
	NativeBreakerThreshold int
	NativeBreakerWindow    time.Duration
	NativeBreakerCooldown  time.Duration

	// Logger receives one structured line per HTTP request (request ID,
	// route, status, outcome, per-stage timings). nil discards logs.
	Logger *slog.Logger
	// SlowWindow sizes the ring of recent request spans behind
	// GET /v1/debug/slow (default 64).
	SlowWindow int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.CacheSize <= 0 {
		out.CacheSize = 128
	}
	if out.ResultCacheSize == 0 {
		out.ResultCacheSize = 512
	}
	if out.MaxBatchJobs <= 0 {
		out.MaxBatchJobs = 256
	}
	if out.MaxBatchBytes <= 0 {
		out.MaxBatchBytes = 16 << 20
	}
	if out.MaxNP <= 0 {
		out.MaxNP = 64
	}
	if out.MaxSrcBytes <= 0 {
		out.MaxSrcBytes = 1 << 20
	}
	if out.MaxOutputBytes <= 0 {
		out.MaxOutputBytes = 1 << 20
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 5 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 30 * time.Second
	}
	if out.DefaultStepBudget <= 0 {
		out.DefaultStepBudget = 50_000_000
	}
	if out.MaxStepBudget <= 0 {
		out.MaxStepBudget = 500_000_000
	}
	if out.NativeMemBytes == 0 {
		out.NativeMemBytes = 4 << 30
	}
	if out.NativeBreakerThreshold <= 0 {
		out.NativeBreakerThreshold = 5
	}
	if out.NativeBreakerWindow <= 0 {
		out.NativeBreakerWindow = 30 * time.Second
	}
	if out.NativeBreakerCooldown <= 0 {
		out.NativeBreakerCooldown = 15 * time.Second
	}
	if out.Logger == nil {
		out.Logger = slog.New(slog.DiscardHandler)
	}
	if out.SlowWindow <= 0 {
		out.SlowWindow = 64
	}
	return out
}

// Server executes LOLCODE jobs. Create with New; safe for concurrent use.
type Server struct {
	opts    Options
	cache   *Cache
	results *resultCache // nil when result caching is disabled
	pool    *pool
	native  *nativeTier // nil when the native tier is disabled
	metrics *serverMetrics
	logger  *slog.Logger
	start   time.Time

	jobsRun      obs.Counter
	jobsOK       obs.Counter
	jobsFailed   obs.Counter
	jobsRejected obs.Counter
	batchesRun   obs.Counter
	inFlight     obs.Gauge

	// Worker-scheduler activity, accumulated from each job's world
	// snapshot after the run (shmem.SchedSnapshot).
	schedJobs     obs.Counter // jobs that ran under the worker scheduler
	schedParks    obs.Counter
	schedUnparks  obs.Counter
	schedSpurious obs.Counter
	schedYields   obs.Counter
}

// New builds a Server.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:   o,
		cache:  NewCache(o.CacheSize),
		pool:   newPool(o.Workers, o.QueueDepth),
		logger: o.Logger,
		start:  time.Now(),
	}
	if o.ResultCacheSize > 0 {
		s.results = newResultCache(o.ResultCacheSize)
	}
	if o.NativeCache != nil && o.NativeThreshold > 0 {
		s.native = newNativeTier(o)
	}
	s.metrics = newServerMetrics(s, o.SlowWindow)
	return s
}

// Close stops the native tier's background builders (aborting any
// in-flight `go build`). In-flight jobs are unaffected. Safe to call on
// a server without the native tier, and at most once.
func (s *Server) Close() {
	if s.native != nil {
		s.native.close()
	}
}

// RunRequest is one job: a program plus its launch parameters.
type RunRequest struct {
	// Src is the LOLCODE source (required).
	Src string `json:"src"`
	// NP is the PE count; 0 means 1.
	NP int `json:"np"`
	// Backend selects the engine: "interp", "vm", or "compile" (default).
	Backend string `json:"backend,omitempty"`
	// Stdin feeds GIMMEH.
	Stdin string `json:"stdin,omitempty"`
	// Seed is the base RNG seed (PE i uses Seed+i).
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS overrides the server's default job deadline, clamped to
	// the server max; 0 uses the default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSteps overrides the server's default per-PE step budget, clamped
	// to the server max; 0 uses the default.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Sched selects the SPMD execution mode on engines with resumable
	// state: "goroutines" (one goroutine per PE), "workers" (bounded
	// worker pool), or "auto" (workers at high NP). Empty uses the
	// server's -sched default. Output is byte-identical across modes.
	Sched string `json:"sched,omitempty"`
}

// Outcome classifies how a job ended.
type Outcome string

// Job outcomes.
const (
	OutcomeOK         Outcome = "ok"            // ran to completion
	OutcomeParseError Outcome = "parse_error"   // frontend rejected the program
	OutcomeRuntime    Outcome = "runtime_error" // program died mid-run
	OutcomeBudget     Outcome = "budget"        // a PE exceeded the step budget
	OutcomeTimeout    Outcome = "timeout"       // the job deadline expired
	OutcomeCancelled  Outcome = "cancelled"     // the client went away
	OutcomeRejected   Outcome = "rejected"      // invalid request or server busy
)

// RunResponse reports one job's result.
type RunResponse struct {
	Outcome Outcome `json:"outcome"`
	// Output and Errout carry VISIBLE and INVISIBLE text, grouped per PE
	// in rank order (deterministic for identical seeds).
	Output string `json:"output"`
	Errout string `json:"stderr,omitempty"`
	// Error holds the failure message for non-ok outcomes.
	Error string `json:"error,omitempty"`

	Backend string `json:"backend"`
	NP      int    `json:"np"`
	// Tier names the engine that actually executed the job: the requested
	// backend for in-process runs, or "native" when a promoted binary
	// answered (the native tier serves any requested engine — all four
	// tiers are semantically identical, which the differential tests
	// enforce). Empty for jobs that never executed.
	Tier string `json:"tier,omitempty"`
	// CacheHit reports whether the compiled program came from the cache.
	CacheHit bool `json:"cache_hit"`
	// ResultCacheHit reports that the whole response was served from the
	// deterministic result cache — either a stored result or an
	// identical in-flight job this one coalesced onto — so no execution
	// (and no worker slot) was spent on it.
	ResultCacheHit bool `json:"result_cache_hit,omitempty"`
	// OutputTruncated reports that the job printed more than the server's
	// per-job output budget; the tail was dropped.
	OutputTruncated bool `json:"output_truncated,omitempty"`
	// WallMS is the job's wall-clock time in milliseconds, excluding queue
	// wait; QueueMS is the time spent waiting for a worker.
	WallMS  float64 `json:"wall_ms"`
	QueueMS float64 `json:"queue_ms"`

	// Stats carries the PGAS runtime counters for completed runs.
	Stats *shmem.StatsSnapshot `json:"stats,omitempty"`
	// SimNanos is the slowest PE's simulated time (zero cost model here,
	// kept for parity with lolrun -stats).
	SimNanos float64 `json:"sim_nanos,omitempty"`
}

// Run executes one job synchronously: validate, consult the result
// cache (a deterministic job identical to a stored or in-flight one is
// answered without executing at all), hit the program cache, wait for a
// worker slot (fairly), run under deadline+budget, classify. ctx is the
// client's context — cancel it and the job dies promptly, its PEs
// released from any barrier or lock they block in.
//
// When ctx carries an obs.Span (the HTTP handlers and RunBatch attach
// one), the job's lifecycle stages are recorded onto it and the span's
// job labels are set from the response; callers without a span pay one
// nil check per stage.
func (s *Server) Run(ctx context.Context, req RunRequest) RunResponse {
	resp := s.run(ctx, req)
	if resp.Outcome != "" {
		s.metrics.outcomes.With(string(resp.Outcome)).Add(1)
	}
	obs.FromContext(ctx).SetJob(resp.Backend, resp.Tier, string(resp.Outcome))
	return resp
}

func (s *Server) run(ctx context.Context, req RunRequest) RunResponse {
	if resp, ok := s.validate(&req); !ok {
		s.jobsRejected.Add(1)
		return resp
	}
	coreBackend, _ := core.ParseBackend(req.Backend) // validated above
	timeout := clampDuration(time.Duration(req.TimeoutMS)*time.Millisecond,
		s.opts.DefaultTimeout, s.opts.MaxTimeout)
	steps := clampInt64(req.MaxSteps, s.opts.DefaultStepBudget, s.opts.MaxStepBudget)

	// Tier routing happens before the result cache is consulted, because
	// the executing tier's version salt is part of the result key: a
	// promoted program's results live under the gogen-version salt and can
	// never answer (or be answered by) in-process runs near the budget
	// margin, and a codegen fix orphans every stale native result.
	key := KeyOf(req.Src)
	var route *nativeRoute
	var tierSalt string
	if s.native != nil {
		if bin, ok := s.native.binaryFor(key); ok {
			if tk := s.native.breaker.allow(); tk != nil {
				route = &nativeRoute{bin: bin, ticket: tk}
				tierSalt = s.native.cache.Salt()
				// A job that never reaches the tier (result-cache hit, pool
				// rejection, cancellation) must hand back its ticket — in
				// particular a half-open probe slot — without voting on the
				// tier's health. settle is idempotent, so the explicit
				// succeed/fail in runNative wins when the tier does run.
				defer tk.cancel()
			} else {
				// Breaker open: the tier exists but is not trusted right
				// now. Run in-process under the in-process salt.
				s.native.breakerSheds.Add(1)
			}
		}
	}

	if s.results == nil {
		resp, _ := s.execute(ctx, req, key, coreBackend, timeout, steps, route)
		return resp
	}

	// Result-cache front door. The key covers everything that can change
	// the response bytes of a deterministic job; whether the job IS
	// deterministic is only known after the frontend runs, so a first
	// sight claims the key optimistically and resolves the claim below.
	rkey := resultKeyOf(key, coreBackend.String(), req.NP,
		req.Seed, steps, timeout, req.Stdin, tierSalt, s.schedModeFor(req))
	qStart := time.Now()
	cached, claim, err := s.results.acquire(ctx, rkey)
	obs.FromContext(ctx).Record(stageResultCache, time.Since(qStart))
	switch {
	case err != nil: // client went away while coalesced onto a leader
		return RunResponse{
			Backend: coreBackend.String(), NP: req.NP,
			Outcome: OutcomeCancelled, Error: err.Error(),
			QueueMS: msSince(qStart),
		}
	case cached != nil:
		cached.ResultCacheHit = true
		cached.WallMS = 0
		cached.QueueMS = msSince(qStart)
		return *cached
	case claim == nil: // bypass-marked: known non-cacheable, just run
		resp, _ := s.execute(ctx, req, key, coreBackend, timeout, steps, route)
		return resp
	}

	resp, cacheable := s.execute(ctx, req, key, coreBackend, timeout, steps, route)
	switch {
	case resp.Outcome == OutcomeRejected || resp.Outcome == OutcomeCancelled:
		// The job never really ran; leave the key unresolved for the
		// next request (and let coalesced waiters elect a new leader).
		claim.abandon()
	case resp.Outcome == OutcomeParseError || !cacheable:
		// Deterministically uncacheable: mark the key so equal jobs skip
		// the result cache (and are never serialized behind each other).
		claim.bypass()
	case resp.Outcome == OutcomeOK && !resp.OutputTruncated:
		claim.fulfill(&resp)
	default:
		// Cacheable program, unstorable run: budget kill, timeout,
		// runtime error, or truncated output. Count the miss, forget the
		// key, let the next identical job try again.
		claim.abandonMiss()
	}
	return resp
}

// execute runs one validated job to completion on a worker slot. The
// second return reports whether the job passed the determinism audit —
// i.e. whether an identical future job could be answered from this
// run's result. A non-nil route sends the job to the promoted binary;
// an infrastructure failure there falls back to the in-process engine
// below, after demoting the program and informing the breaker.
func (s *Server) execute(ctx context.Context, req RunRequest, key Key, coreBackend core.Backend,
	timeout time.Duration, steps int64, route *nativeRoute) (RunResponse, bool) {
	resp := RunResponse{Backend: coreBackend.String(), NP: req.NP}
	sp := obs.FromContext(ctx)

	// Admission first: parse+sema runs inside the worker slot too, so a
	// flood of distinct programs cannot compile without bound — the
	// frontend is CPU the pool must account for like any other job work.
	// Native jobs hold a slot too: a subprocess is still one job's worth
	// of machine, and admission is the unit of fairness.
	qStart := time.Now()
	if err := s.pool.acquire(ctx, key); err != nil {
		s.jobsRejected.Add(1)
		qWait := time.Since(qStart)
		sp.Record(stageQueueWait, qWait)
		resp.QueueMS = ms(qWait)
		if errors.Is(err, ErrBusy) {
			resp.Outcome = OutcomeRejected
		} else {
			resp.Outcome = OutcomeCancelled
		}
		resp.Error = err.Error()
		return resp, false
	}
	defer s.pool.release()
	qWait := time.Since(qStart)
	sp.Record(stageQueueWait, qWait)
	resp.QueueMS = ms(qWait)

	// Frontend, amortized: one parse+sema per unique source ever in cache.
	pcStart := time.Now()
	prog, err, hit, hits := s.cache.GetOrCompile(key, "job.lol", req.Src)
	sp.Record(stageProgramCache, time.Since(pcStart))
	resp.CacheHit = hit
	if err != nil {
		s.jobsRejected.Add(1)
		resp.Outcome = OutcomeParseError
		resp.Error = err.Error()
		return resp, false
	}
	if s.native != nil {
		s.native.maybePromote(key, prog, hits)
	}

	if route != nil {
		if nresp, cacheable, answered := s.runNative(ctx, req, key, route, prog,
			timeout, steps, resp); answered {
			return nresp, cacheable
		}
		// Tier failure: the program was demoted; run in-process below.
	}

	// The engine's prepared form (bytecode, closures) is built once per
	// program per engine; timing it here splits the compile stage out of
	// execute, so after the first run of a program the stage reads ~0. A
	// preparation error is left for Run below to surface — the cached
	// error makes the outcome identical.
	cStart := time.Now()
	_ = prog.Prepare(coreBackend)
	sp.Record(stageCompile, time.Since(cStart))

	jobCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var out, errw strings.Builder
	cfg := backend.Config{
		NP:          req.NP,
		Seed:        req.Seed,
		Stdout:      &out,
		Stderr:      &errw,
		Stdin:       strings.NewReader(req.Stdin),
		GroupOutput: true,
		Context:     jobCtx,
		StepBudget:  steps,
		MaxOutput:   s.opts.MaxOutputBytes,
		Sched:       s.schedModeFor(req),
	}
	// The cacheability verdict: the program must be audited schedule-
	// independent at this PE count, and the output discipline must make
	// the merged streams deterministic (grouped mode always is).
	cacheable := prog.Audit().DeterministicAt(req.NP) && cfg.DeterministicOutput()

	s.jobsRun.Add(1)
	s.inFlight.Add(1)
	switch coreBackend {
	case core.BackendInterp:
		s.metrics.execInterp.Inc()
	case core.BackendVM:
		s.metrics.execVM.Inc()
	default:
		s.metrics.execCompile.Inc()
	}
	resp.Tier = coreBackend.String()
	start := time.Now()
	res, runErr := prog.Run(core.RunConfig{Config: cfg, Backend: coreBackend})
	s.inFlight.Add(-1)
	wall := time.Since(start)
	sp.Record(stageExecute, wall)
	resp.WallMS = ms(wall)
	resp.Output = out.String()
	resp.Errout = errw.String()
	if res != nil {
		// Set even for failed runs: the partial output may be clipped.
		resp.OutputTruncated = res.OutputTruncated
		if res.ExecWall > 0 {
			s.metrics.spmdSeconds.With(resp.Tier).Observe(res.ExecWall.Seconds())
		}
		// Failed runs carry post-teardown stats too, so kills and
		// deadlocks still account their scheduler activity.
		if sch := res.Stats.Sched; sch.Mode == "workers" {
			s.schedJobs.Inc()
			s.schedParks.Add(sch.Parks)
			s.schedUnparks.Add(sch.Unparks)
			s.schedSpurious.Add(sch.Spurious)
			s.schedYields.Add(sch.Yields)
		}
	}

	if runErr != nil {
		s.jobsFailed.Add(1)
		resp.Outcome = classify(runErr, ctx)
		resp.Error = runErr.Error()
		return resp, cacheable
	}
	s.jobsOK.Add(1)
	resp.Outcome = OutcomeOK
	if res != nil {
		stats := res.Stats
		resp.Stats = &stats
		for _, ns := range res.SimNanos {
			if ns > resp.SimNanos {
				resp.SimNanos = ns
			}
		}
	}
	return resp, cacheable
}

// validate normalizes the request in place and builds the rejection
// response when it is malformed.
func (s *Server) validate(req *RunRequest) (RunResponse, bool) {
	reject := func(format string, args ...any) (RunResponse, bool) {
		return RunResponse{Outcome: OutcomeRejected, Error: fmt.Sprintf(format, args...)}, false
	}
	if req.Src == "" {
		return reject("empty src")
	}
	if len(req.Src) > s.opts.MaxSrcBytes {
		return reject("src is %d bytes (limit %d)", len(req.Src), s.opts.MaxSrcBytes)
	}
	if req.NP <= 0 {
		req.NP = 1
	}
	if req.NP > s.opts.MaxNP {
		return reject("np %d exceeds the server limit %d", req.NP, s.opts.MaxNP)
	}
	if _, err := core.ParseBackend(req.Backend); err != nil {
		return reject("%v", err)
	}
	if _, err := backend.ParseSchedMode(req.Sched); err != nil {
		return reject("%v", err)
	}
	if req.TimeoutMS < 0 || req.MaxSteps < 0 {
		return reject("negative timeout_ms or max_steps")
	}
	return RunResponse{}, true
}

// schedModeFor resolves a job's scheduler mode: the request's explicit
// choice (validated on admission) or the server default. It is part of
// the result-cache key because the worker scheduler's exact deadlock
// detector changes the *outcome* of a deadlocked program (immediate
// runtime error vs goroutine mode's eventual timeout), even though
// successful output bytes are identical across modes.
func (s *Server) schedModeFor(req RunRequest) backend.SchedMode {
	if req.Sched != "" {
		m, _ := backend.ParseSchedMode(req.Sched)
		return m
	}
	return s.opts.Sched
}

// classify maps a run error onto an outcome. Order matters: a client
// cancellation also surfaces as context.Canceled inside the job context,
// so the client's own context is consulted first.
func classify(err error, clientCtx context.Context) Outcome {
	switch {
	case clientCtx.Err() != nil:
		return OutcomeCancelled
	case errors.Is(err, backend.ErrStepBudget):
		return OutcomeBudget
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeTimeout
	case errors.Is(err, context.Canceled):
		return OutcomeCancelled
	default:
		return OutcomeRuntime
	}
}

// Stats is the server-wide counter snapshot served at /v1/stats.
// JobsRun counts executions; requests answered by the result cache
// never execute, so they appear only under ResultCache.
type Stats struct {
	Cache        CacheStats       `json:"cache"`
	ResultCache  ResultCacheStats `json:"result_cache"`
	Tiers        TierStats        `json:"tiers"`
	Native       NativeStats      `json:"native"`
	Sched        SchedStats       `json:"sched"`
	JobsRun      int64            `json:"jobs_run"`
	JobsOK       int64            `json:"jobs_ok"`
	JobsFailed   int64            `json:"jobs_failed"`
	JobsRejected int64            `json:"jobs_rejected"`
	BatchesRun   int64            `json:"batches_run"`
	InFlight     int64            `json:"in_flight"`
	Queued       int64            `json:"queued"`
	Workers      int              `json:"workers"`
}

// SchedStats aggregates worker-scheduler activity across every job that
// ran under the bounded worker pool (request or server `sched` mode
// "workers", or "auto" at high NP). Parks/unparks balance when every
// blocked PE was resumed exactly once; spurious counts injected
// spurious wakeups absorbed by the park protocol.
type SchedStats struct {
	JobsWorkers int64 `json:"jobs_workers"`
	Parks       int64 `json:"parks"`
	Unparks     int64 `json:"unparks"`
	Spurious    int64 `json:"spurious"`
	Yields      int64 `json:"yields"`
}

// TierStats counts executions by the engine that actually ran each job.
// The four fields sum to JobsRun minus jobs that failed before reaching
// an engine (parse errors, rejections).
type TierStats struct {
	Interp  int64 `json:"interp"`
	VM      int64 `json:"vm"`
	Compile int64 `json:"compile"`
	Native  int64 `json:"native"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Cache: s.cache.Stats(),
		Tiers: TierStats{
			Interp:  s.metrics.execInterp.Load(),
			VM:      s.metrics.execVM.Load(),
			Compile: s.metrics.execCompile.Load(),
			Native:  s.metrics.execNative.Load(),
		},
		Sched: SchedStats{
			JobsWorkers: s.schedJobs.Load(),
			Parks:       s.schedParks.Load(),
			Unparks:     s.schedUnparks.Load(),
			Spurious:    s.schedSpurious.Load(),
			Yields:      s.schedYields.Load(),
		},
		JobsRun:      s.jobsRun.Load(),
		JobsOK:       s.jobsOK.Load(),
		JobsFailed:   s.jobsFailed.Load(),
		JobsRejected: s.jobsRejected.Load(),
		BatchesRun:   s.batchesRun.Load(),
		InFlight:     s.inFlight.Load(),
		Queued:       int64(s.pool.depth()),
		Workers:      s.opts.Workers,
	}
	if s.results != nil {
		st.ResultCache = s.results.Stats()
	}
	if s.native != nil {
		st.Native = s.native.stats()
	}
	return st
}

func clampDuration(v, def, max time.Duration) time.Duration {
	if v <= 0 {
		v = def
	}
	if v > max {
		v = max
	}
	return v
}

func clampInt64(v, def, max int64) int64 {
	if v <= 0 {
		v = def
	}
	if v > max {
		v = max
	}
	return v
}

func msSince(t time.Time) float64 { return ms(time.Since(t)) }

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
