package server

import (
	"sync"
	"time"
)

// breaker is the native tier's circuit breaker. The tier's failure mode
// is infrastructural — a corrupt binary cache, a full /tmp, a kernel
// refusing to exec — and when it breaks it usually breaks for every
// program at once. Each individual failure already falls back in-process
// correctly, but a fully broken tier would pay the subprocess spawn +
// kill + fallback tax on every single native-routed job. The breaker
// bounds that tax: enough infrastructure failures inside a rolling
// window trip it open, open means jobs route straight to the in-process
// engines (no spawn attempt), and after a cooldown single probe jobs are
// let through until one of them succeeds and re-closes it.
//
// States:
//
//	closed    — normal operation; failures are counted in the window.
//	open      — no native routing; entered on trip, left after cooldown.
//	half-open — one probe job at a time may try the tier; a probe
//	            success re-closes the breaker, a probe failure re-opens
//	            it (with a fresh cooldown).
//
// What counts: only TierErrors are failures. A budget kill, a deadline
// kill, or a program error is the tier working as designed and counts
// as a success. Jobs that never reach the tier (result-cache hit, pool
// rejection) count as neither — their ticket is cancelled.
type breaker struct {
	threshold int           // failures in window that trip the breaker
	window    time.Duration // rolling failure-count window
	cooldown  time.Duration // open time before the first probe
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures []time.Time // failure timestamps still inside the window
	openedAt time.Time
	probing  bool // half-open: a probe ticket is outstanding
	trips    int64
}

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func newBreaker(threshold int, window, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		window:    window,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// bkTicket is one admitted job's obligation to report back. Exactly one
// of succeed/fail/cancel must be called; extra calls are no-ops, so
// callers can `defer t.cancel()` at admission and settle explicitly on
// the paths that reached the tier.
type bkTicket struct {
	b       *breaker
	probe   bool
	settled bool
}

// allow asks to route one job to the native tier. nil means the breaker
// is open (or a probe is already in flight): run in-process instead.
func (b *breaker) allow() *bkTicket {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return &bkTicket{b: b}
	case bkOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return nil
		}
		b.state = bkHalfOpen
		b.probing = false
		fallthrough
	default: // bkHalfOpen
		if b.probing {
			return nil
		}
		b.probing = true
		return &bkTicket{b: b, probe: true}
	}
}

// stateName reports the current state for stats/healthz, advancing an
// expired open state to half-open so the report matches what allow
// would do.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == bkOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return bkHalfOpen.String()
	}
	return b.state.String()
}

// tripCount reports how many times the breaker has opened.
func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// stateCode is the numeric state for the metrics gauge: 0 closed,
// 1 half-open, 2 open.
func (b *breaker) stateCode() int64 {
	switch b.stateName() {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

func (t *bkTicket) succeed() {
	t.b.mu.Lock()
	defer t.b.mu.Unlock()
	if t.settled {
		return
	}
	t.settled = true
	if t.probe {
		// The tier is back: full reset.
		t.b.state = bkClosed
		t.b.probing = false
		t.b.failures = nil
	}
}

func (t *bkTicket) fail() {
	b := t.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.settled {
		return
	}
	t.settled = true
	if t.probe {
		b.state = bkOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
		return
	}
	if b.state != bkClosed {
		return
	}
	now := b.now()
	keep := b.failures[:0]
	for _, ts := range b.failures {
		if now.Sub(ts) < b.window {
			keep = append(keep, ts)
		}
	}
	b.failures = append(keep, now)
	if len(b.failures) >= b.threshold {
		b.state = bkOpen
		b.openedAt = now
		b.failures = nil
		b.trips++
	}
}

// cancel releases a ticket whose job never reached the tier, returning
// a probe slot without judging the tier either way.
func (t *bkTicket) cancel() {
	t.b.mu.Lock()
	defer t.b.mu.Unlock()
	if t.settled {
		return
	}
	t.settled = true
	if t.probe && t.b.state == bkHalfOpen {
		t.b.probing = false
	}
}
