package server

import (
	"time"

	"repro/internal/obs"
)

// Lifecycle stage names. Every stage a request passes through is recorded
// on its span (in order, with durations) and observed into the
// lolserv_stage_seconds{stage,tier} histogram family:
//
//	admission      decoding and validating the request body
//	result_cache   result-cache lookup / claim / coalesced wait
//	queue_wait     waiting for a worker slot in the fairness pool
//	program_cache  program-cache lookup (includes parse+sema on a miss)
//	compile        building the engine's prepared form (≈0 once cached)
//	execute        running the job (in-process engine or native binary)
//	respond        encoding and writing the response body
const (
	stageAdmission    = "admission"
	stageResultCache  = "result_cache"
	stageQueueWait    = "queue_wait"
	stageProgramCache = "program_cache"
	stageCompile      = "compile"
	stageExecute      = "execute"
	stageRespond      = "respond"
)

// serverMetrics owns every instrument the server observes into, all
// registered on one obs.Registry that GET /metrics exposes. The registry
// is private to the Server — two Servers never collide on metric names —
// and instruments the hot path touches per job are plain fields or
// pre-resolved Vec children, so a job's metric cost is a handful of
// atomic adds, not map lookups.
type serverMetrics struct {
	reg *obs.Registry

	// HTTP surface.
	httpRequests   *obs.CounterVec   // endpoint, code
	requestSeconds *obs.HistogramVec // endpoint
	stageSeconds   *obs.HistogramVec // stage, tier
	queueWait      *obs.Histogram
	spmdSeconds    *obs.HistogramVec // tier: engine time inside the SPMD world

	// Job accounting (also mirrored into /v1/stats).
	outcomes *obs.CounterVec // outcome

	// Per-tier execution counters with the four children pre-resolved.
	executions                                  *obs.CounterVec // tier
	execInterp, execVM, execCompile, execNative *obs.Counter

	slow *obs.SlowRing
}

// newServerMetrics builds the registry and wires every server-owned
// counter into it. Counters that live inside the subsystems (caches,
// pool, native tier) are registered by reference: the subsystem keeps
// mutating its own field and the registry reads it at scrape time.
func newServerMetrics(s *Server, slowWindow int) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		httpRequests: reg.CounterVec("lolserv_http_requests_total",
			"HTTP requests served, by route and status code.", "endpoint", "code"),
		requestSeconds: reg.HistogramVec("lolserv_request_seconds",
			"End-to-end request wall time, by route.", nil, "endpoint"),
		stageSeconds: reg.HistogramVec("lolserv_stage_seconds",
			"Request lifecycle stage durations, by stage and executing tier.",
			nil, "stage", "tier"),
		queueWait: reg.Histogram("lolserv_queue_wait_seconds",
			"Time jobs spent waiting for a worker slot.", nil),
		spmdSeconds: reg.HistogramVec("lolserv_spmd_seconds",
			"Wall time inside the SPMD world proper (engine execution, "+
				"excluding frontend and output assembly), by tier.", nil, "tier"),
		outcomes: reg.CounterVec("lolserv_job_outcomes_total",
			"Jobs by final outcome.", "outcome"),
		executions: reg.CounterVec("lolserv_executions_total",
			"Jobs executed, by the engine tier that ran them.", "tier"),
		slow: obs.NewSlowRing(slowWindow),
	}
	m.execInterp = m.executions.With("interp")
	m.execVM = m.executions.With("vm")
	m.execCompile = m.executions.With("compile")
	m.execNative = m.executions.With("native")

	reg.RegisterCounter("lolserv_jobs_run_total", "Jobs that reached an execution tier.", &s.jobsRun)
	reg.RegisterCounter("lolserv_jobs_ok_total", "Jobs that ran to completion.", &s.jobsOK)
	reg.RegisterCounter("lolserv_jobs_failed_total", "Jobs that failed at run time (runtime error, budget, timeout, cancel).", &s.jobsFailed)
	reg.RegisterCounter("lolserv_jobs_rejected_total", "Jobs rejected before execution (invalid, parse error, busy).", &s.jobsRejected)
	reg.RegisterCounter("lolserv_batches_total", "Batch requests accepted.", &s.batchesRun)
	reg.RegisterGauge("lolserv_in_flight", "Jobs executing right now.", &s.inFlight)
	reg.RegisterGauge("lolserv_queue_depth", "Jobs waiting for a worker slot.", &s.pool.waiting)
	reg.GaugeFunc("lolserv_uptime_seconds", "Seconds since the server was built.",
		func() float64 { return time.Since(s.start).Seconds() })

	reg.RegisterCounter("lolserv_sched_jobs_total", "Jobs executed under the bounded worker scheduler.", &s.schedJobs)
	reg.RegisterCounter("lolserv_sched_parks_total", "PE continuations parked at a blocking point (barrier, lock, point-to-point wait).", &s.schedParks)
	reg.RegisterCounter("lolserv_sched_unparks_total", "Wakeups delivered to parked PE continuations.", &s.schedUnparks)
	reg.RegisterCounter("lolserv_sched_spurious_total", "Injected spurious wakeups absorbed by the park protocol.", &s.schedSpurious)
	reg.RegisterCounter("lolserv_sched_yields_total", "Cooperative yields by compute-bound PEs.", &s.schedYields)

	reg.RegisterCounter("lolserv_program_cache_hits_total", "Program cache hits.", &s.cache.hits)
	reg.RegisterCounter("lolserv_program_cache_misses_total", "Program cache misses (frontend ran).", &s.cache.misses)
	reg.RegisterCounter("lolserv_program_cache_evictions_total", "Programs evicted from the LRU.", &s.cache.evicted)
	reg.GaugeFunc("lolserv_program_cache_size", "Programs currently cached.",
		func() float64 { return float64(s.cache.Stats().Size) })

	if s.results != nil {
		reg.RegisterCounter("lolserv_result_cache_hits_total", "Jobs answered from a stored result.", &s.results.hits)
		reg.RegisterCounter("lolserv_result_cache_misses_total", "Cacheable jobs that had to execute.", &s.results.misses)
		reg.RegisterCounter("lolserv_result_cache_coalesced_total", "Jobs answered by an identical in-flight leader.", &s.results.coalesced)
		reg.RegisterCounter("lolserv_result_cache_bypassed_total", "Jobs of audited non-cacheable programs.", &s.results.bypassed)
		reg.RegisterCounter("lolserv_result_cache_evictions_total", "Results evicted from the LRU.", &s.results.evicted)
		reg.GaugeFunc("lolserv_result_cache_size", "Stored results and bypass markers.",
			func() float64 { return float64(s.results.Stats().Size) })
	}

	if s.native != nil {
		reg.RegisterCounter("lolserv_native_promotions_total", "Programs promoted to native binaries.", &s.native.promotions)
		reg.RegisterCounter("lolserv_native_build_failures_total", "Native builds that failed.", &s.native.buildFailures)
		reg.RegisterCounter("lolserv_native_unsupported_total", "Programs the native tier cannot express.", &s.native.unsupported)
		reg.RegisterCounter("lolserv_native_demotions_total", "Programs demoted after a tier failure.", &s.native.demotions)
		reg.RegisterCounter("lolserv_native_runs_total", "Jobs the native tier answered.", &s.native.runs)
		reg.RegisterCounter("lolserv_native_fallbacks_total", "Jobs re-run in-process after a tier failure.", &s.native.fallbacks)
		reg.RegisterCounter("lolserv_native_breaker_sheds_total", "Jobs kept in-process by an open circuit breaker.", &s.native.breakerSheds)
		reg.GaugeFunc("lolserv_native_breaker_state", "Circuit breaker state: 0 closed, 1 half-open, 2 open.",
			func() float64 { return float64(s.native.breaker.stateCode()) })
		reg.GaugeFunc("lolserv_native_breaker_trips_total", "Times the circuit breaker has opened.",
			func() float64 { return float64(s.native.breaker.tripCount()) })
		reg.GaugeFunc("lolserv_native_cache_evictions_total", "Binaries deleted by the disk quota.",
			func() float64 { return float64(s.native.cache.Evictions()) })
		reg.GaugeFunc("lolserv_native_cache_bytes", "Bytes of promoted binaries on disk.",
			func() float64 { b, _ := s.native.cache.DiskUsage(); return float64(b) })
		reg.GaugeFunc("lolserv_native_cache_entries", "Promoted binaries on disk.",
			func() float64 { _, n := s.native.cache.DiskUsage(); return float64(n) })
	}
	return m
}

// finishSpan folds one completed request span into the histograms and the
// slow ring. Spans with no recorded stages (the /v1/stats poll, a batch
// envelope whose per-job spans report themselves) are skipped so stage
// totals count each unit of work exactly once.
func (m *serverMetrics) finishSpan(snap obs.SpanSnapshot) {
	if len(snap.Stages) == 0 {
		return
	}
	tier := snap.Tier
	if tier == "" {
		// Jobs that never reached an engine (rejections, cache hits) still
		// have queue/cache stages worth attributing somewhere stable.
		tier = "none"
	}
	for _, st := range snap.Stages {
		m.stageSeconds.With(st.Name, tier).Observe(st.Dur.Seconds())
		if st.Name == stageQueueWait {
			m.queueWait.Observe(st.Dur.Seconds())
		}
	}
	m.slow.Offer(snap)
}
