package server

import (
	"testing"
	"time"
)

// bkClock is a manually advanced clock so breaker tests never sleep.
type bkClock struct{ t time.Time }

func (c *bkClock) now() time.Time          { return c.t }
func (c *bkClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, window, cooldown time.Duration) (*breaker, *bkClock) {
	clk := &bkClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, window, cooldown)
	b.now = clk.now
	return b, clk
}

func mustAllow(t *testing.T, b *breaker) *bkTicket {
	t.Helper()
	tk := b.allow()
	if tk == nil {
		t.Fatalf("allow() denied in state %s", b.stateName())
	}
	return tk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Minute, 10*time.Second)
	for i := 0; i < 2; i++ {
		mustAllow(t, b).fail()
		if got := b.stateName(); got != "closed" {
			t.Fatalf("after %d failures state = %s, want closed", i+1, got)
		}
	}
	mustAllow(t, b).fail()
	if got := b.stateName(); got != "open" {
		t.Fatalf("after threshold failures state = %s, want open", got)
	}
	if b.allow() != nil {
		t.Fatal("open breaker admitted a job")
	}
	if got := b.tripCount(); got != 1 {
		t.Fatalf("tripCount = %d, want 1", got)
	}
}

func TestBreakerWindowExpiresOldFailures(t *testing.T) {
	b, clk := testBreaker(3, time.Minute, 10*time.Second)
	mustAllow(t, b).fail()
	mustAllow(t, b).fail()
	clk.advance(2 * time.Minute) // both failures age out of the window
	mustAllow(t, b).fail()
	if got := b.stateName(); got != "closed" {
		t.Fatalf("state = %s after stale failures, want closed", got)
	}
}

func TestBreakerProbeLifecycle(t *testing.T) {
	b, clk := testBreaker(1, time.Minute, 10*time.Second)
	mustAllow(t, b).fail() // threshold 1: trips immediately
	if b.allow() != nil {
		t.Fatal("open breaker admitted a job before cooldown")
	}

	clk.advance(11 * time.Second)
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("state after cooldown = %s, want half-open", got)
	}
	probe := mustAllow(t, b)
	if !probe.probe {
		t.Fatal("post-cooldown ticket is not a probe")
	}
	if b.allow() != nil {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe failure: back to open, fresh cooldown, another trip.
	probe.fail()
	if got := b.stateName(); got != "open" {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	if got := b.tripCount(); got != 2 {
		t.Fatalf("tripCount = %d, want 2", got)
	}

	// Cooldown again; this probe succeeds and fully closes the breaker.
	clk.advance(11 * time.Second)
	mustAllow(t, b).succeed()
	if got := b.stateName(); got != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
	// Fully reset: one new failure must not re-trip a threshold-2 history.
	if b.allow() == nil {
		t.Fatal("closed breaker denied a job")
	}
}

func TestBreakerProbeCancelReleasesSlot(t *testing.T) {
	b, clk := testBreaker(1, time.Minute, 10*time.Second)
	mustAllow(t, b).fail()
	clk.advance(11 * time.Second)

	// The probe job is answered by the result cache and never reaches the
	// tier: its deferred cancel must hand the probe slot back, or the
	// breaker wedges half-open forever.
	probe := mustAllow(t, b)
	if b.allow() != nil {
		t.Fatal("probe slot double-granted")
	}
	probe.cancel()
	next := mustAllow(t, b)
	if !next.probe {
		t.Fatal("re-granted ticket is not a probe")
	}
	next.succeed()
	if got := b.stateName(); got != "closed" {
		t.Fatalf("state = %s, want closed", got)
	}
}

func TestBreakerTicketSettleIsIdempotent(t *testing.T) {
	b, _ := testBreaker(2, time.Minute, 10*time.Second)
	tk := mustAllow(t, b)
	tk.fail()
	tk.cancel() // the deferred cancel after an explicit settle: no-op
	tk.fail()   // double-settle: no-op
	b.mu.Lock()
	n := len(b.failures)
	b.mu.Unlock()
	if n != 1 {
		t.Fatalf("one failed ticket recorded %d failures", n)
	}

	// succeed-then-cancel on a probe must not release the closed state.
	tk2 := mustAllow(t, b)
	tk2.succeed()
	tk2.cancel()
	if got := b.stateName(); got != "closed" {
		t.Fatalf("state = %s, want closed", got)
	}
}
