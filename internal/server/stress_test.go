package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postJSON posts v and decodes the response into out. It returns errors
// rather than failing the test: it is called from client goroutines,
// where t.Fatal is off-limits (FailNow must run on the test goroutine).
func postJSON(client *http.Client, url string, v, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding %s response: %w", url, err)
	}
	return resp.StatusCode, nil
}

// TestStressRunAndBatch is the race-mode stress satellite: N concurrent
// clients hammer /v1/run and /v1/batch with M distinct deterministic
// programs. Afterwards: no lost or duplicated responses (every job got
// exactly one, with the right output), and the result-cache accounting
// closes exactly — hits + misses + coalesced == jobs, since every job
// here is cacheable and nothing is rejected.
func TestStressRunAndBatch(t *testing.T) {
	const (
		clients  = 8
		rounds   = 6
		batchLen = 5
	)
	s := New(Options{Workers: 4, QueueDepth: 1024, MaxNP: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// M distinct jobs: pure compute, varying bound/NP/backend, all
	// audited deterministic. want[i] is computed locally so the server
	// cannot grade its own homework.
	type jobSpec struct {
		req  RunRequest
		want string
	}
	sum := func(bound int) int { return bound * (bound - 1) / 2 }
	var jobs []jobSpec
	for i, backendName := range []string{"interp", "vm", "compile"} {
		for j, np := range []int{1, 2, 4} {
			bound := 100 + 31*i + 7*j
			line := fmt.Sprintf("%d\n", sum(bound))
			jobs = append(jobs, jobSpec{
				req:  RunRequest{Src: sumSrc(bound), NP: np, Backend: backendName},
				want: strings.Repeat(line, np),
			})
		}
	}

	var (
		mu        sync.Mutex
		responses = make(map[int]int) // job index -> responses received
		failures  []string
	)
	record := func(idx int, resp RunResponse) {
		mu.Lock()
		defer mu.Unlock()
		responses[idx]++
		if resp.Outcome != OutcomeOK {
			failures = append(failures, fmt.Sprintf("job %d: outcome %q (%s)", idx, resp.Outcome, resp.Error))
		} else if resp.Output != jobs[idx].want {
			failures = append(failures, fmt.Sprintf("job %d: output %q, want %q", idx, resp.Output, jobs[idx].want))
		}
	}

	var wg sync.WaitGroup
	perClientJobs := 0
	for c := 0; c < clients; c++ {
		// Every client runs the same deterministic schedule: each round,
		// one /v1/run of a rotating job plus one batch of batchLen
		// rotating jobs (duplicates across clients and rounds on
		// purpose — that is what the cache and coalescer are for).
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				idx := (c + r) % len(jobs)
				var single RunResponse
				code, err := postJSON(client, ts.URL+"/v1/run", jobs[idx].req, &single)
				if err != nil || code != http.StatusOK {
					t.Errorf("client %d round %d: /v1/run status %d err %v", c, r, code, err)
					continue
				}
				record(idx, single)

				batch := BatchRequest{}
				var idxs []int
				for k := 0; k < batchLen; k++ {
					j := (c*rounds + r + k) % len(jobs)
					idxs = append(idxs, j)
					batch.Jobs = append(batch.Jobs, jobs[j].req)
				}
				body, _ := json.Marshal(batch)
				resp, err := client.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d round %d: batch: %v", c, r, err)
					continue
				}
				seen := make(map[int]bool)
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
				for sc.Scan() {
					var item BatchItem
					if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
						t.Errorf("client %d round %d: bad NDJSON line %q: %v", c, r, sc.Text(), err)
						continue
					}
					if item.Index < 0 || item.Index >= len(idxs) || seen[item.Index] {
						t.Errorf("client %d round %d: duplicate or out-of-range batch index %d", c, r, item.Index)
						continue
					}
					seen[item.Index] = true
					record(idxs[item.Index], item.RunResponse)
				}
				resp.Body.Close()
				if err := sc.Err(); err != nil {
					t.Errorf("client %d round %d: reading batch stream: %v", c, r, err)
				}
				if len(seen) != len(idxs) {
					t.Errorf("client %d round %d: got %d batch items, want %d", c, r, len(seen), len(idxs))
				}
			}
		}(c)
	}
	perClientJobs = rounds * (1 + batchLen)
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	total := 0
	for _, n := range responses {
		total += n
	}
	wantTotal := clients * perClientJobs
	if total != wantTotal {
		t.Errorf("received %d responses, want %d (lost or duplicated)", total, wantTotal)
	}

	st := s.Stats()
	if st.JobsRejected != 0 {
		t.Fatalf("%d jobs rejected; the accounting below assumes none", st.JobsRejected)
	}
	rc := st.ResultCache
	if got := rc.Hits + rc.Misses + rc.Coalesced; got != int64(wantTotal) {
		t.Errorf("hits(%d) + misses(%d) + coalesced(%d) = %d, want %d requests",
			rc.Hits, rc.Misses, rc.Coalesced, got, wantTotal)
	}
	if rc.Bypassed != 0 {
		t.Errorf("bypassed = %d on all-cacheable traffic", rc.Bypassed)
	}
	// Sanity: the cache must have actually absorbed work — with
	// clients*rounds duplicates of len(jobs) distinct jobs, executions
	// should be far below requests.
	if st.JobsRun >= int64(wantTotal) {
		t.Errorf("jobs_run = %d of %d requests; the result cache absorbed nothing", st.JobsRun, wantTotal)
	}
}

// TestGracefulDrainLosesNothing starts a real http.Server, puts jobs in
// flight, then calls Shutdown concurrently: every request that was
// accepted must still complete with a full, correct response — drain
// must not drop or clip in-flight work.
func TestGracefulDrainLosesNothing(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 256})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Slow enough that Shutdown overlaps execution, fast enough for CI.
	req := RunRequest{Src: sumSrc(200_000), NP: 2}
	want := ""

	const inFlight = 6
	results := make(chan RunResponse, inFlight)
	errs := make(chan error, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			r.Seed = int64(i) // distinct keys: all six must truly execute
			body, _ := json.Marshal(r)
			resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var rr RunResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				errs <- fmt.Errorf("request %d: truncated response: %w", i, err)
				return
			}
			results <- rr
		}(i)
	}

	// Let the requests reach the server, then start draining while they
	// are still executing.
	time.Sleep(50 * time.Millisecond)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	close(results)
	close(errs)

	for err := range errs {
		t.Errorf("in-flight request lost during drain: %v", err)
	}
	got := 0
	for rr := range results {
		got++
		if rr.Outcome != OutcomeOK {
			t.Errorf("drained job outcome %q (%s), want ok", rr.Outcome, rr.Error)
			continue
		}
		if want == "" {
			want = rr.Output
		} else if rr.Output != want {
			t.Errorf("drained job output %q, want %q", rr.Output, want)
		}
	}
	if got != inFlight {
		t.Errorf("%d/%d in-flight requests completed through the drain", got, inFlight)
	}
}

// TestBatchHTTPProtocol checks the /v1/batch envelope rules: malformed
// JSON is 400, an empty or oversized batch is 422, and a well-formed
// batch streams exactly one NDJSON item per job with every index
// present.
func TestBatchHTTPProtocol(t *testing.T) {
	s := New(Options{Workers: 2, MaxBatchJobs: 4, MaxBatchBytes: 512})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := post("{"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post(`{"jobs":[]}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("empty batch: status %d, want 422", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	big, _ := json.Marshal(BatchRequest{Jobs: make([]RunRequest, 5)})
	if resp := post(string(big)); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("oversized batch: status %d, want 422", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	fat, _ := json.Marshal(BatchRequest{Jobs: []RunRequest{{Src: strings.Repeat("BTW\n", 200)}}})
	if resp := post(string(fat)); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("over-byte-limit batch: status %d, want 422 (not a generic 400)", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	batch := BatchRequest{Jobs: []RunRequest{
		{Src: sumSrc(10)},
		{Src: "HAI 1.2\nVISIBLE \"broken", NP: 1}, // parse error rides in its item
		{Src: sumSrc(12), NP: 2, Backend: "vm"},
	}}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	items := map[int]BatchItem{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := items[item.Index]; dup {
			t.Fatalf("duplicate index %d in batch stream", item.Index)
		}
		items[item.Index] = item
	}
	if len(items) != len(batch.Jobs) {
		t.Fatalf("got %d items, want %d", len(items), len(batch.Jobs))
	}
	if items[0].Outcome != OutcomeOK || items[2].Outcome != OutcomeOK {
		t.Errorf("good jobs: outcomes %q/%q, want ok", items[0].Outcome, items[2].Outcome)
	}
	if items[1].Outcome != OutcomeParseError {
		t.Errorf("broken job: outcome %q, want parse_error", items[1].Outcome)
	}
}
