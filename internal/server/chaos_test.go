package server

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gogen"
	"repro/internal/native"
	"repro/internal/native/sandbox"
)

// The chaos tests arm internal/faultinject failpoints against a real
// server and assert the graceful-degradation contract: every injected
// infrastructure failure must end with the client receiving a correct
// response (byte-identical to an in-process run), the program demoted
// where the binary is suspect, and every counter closing exactly.
// Failpoints are process-global, so each test arms with a finite count
// and defers faultinject.Reset.

// chaosSrc builds a distinct trivial program per tag. Distinct sources
// hash to distinct program keys, so tests that demote (and therefore
// delete binaries) can never interfere with each other through the
// shared build helper.
func chaosSrc(tag string) string {
	return "HAI 1.2\nVISIBLE \"" + tag + "\"\nKTHXBYE"
}

// growSrc doubles an 8-byte string 24 times (to 128 MiB): trivial under
// the step budget and cheap in-process, but guaranteed to blow any
// RLIMIT_AS below its working set when run as a sandboxed native child.
const growSrc = `HAI 1.2
I HAS A s ITZ "xxxxxxxx"
I HAS A i ITZ 0
IM IN YR grow UPPIN YR i TIL BOTH SAEM i AN 24
  s R SMOOSH s AN s MKAY
IM OUTTA YR grow
VISIBLE "grew"
KTHXBYE`

// buildNativeBinaries emits every source and compiles all of them with
// ONE `go build`, installing the results under the cache's public
// PathFor layout so a threshold-1 server adopts them on the second
// request (same trick as TestNativeTierConformanceCorpus).
func buildNativeBinaries(t *testing.T, cache *native.Cache, srcs ...string) {
	t.Helper()
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	genRoot, err := os.MkdirTemp(moduleRoot, "native-chaos-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(genRoot) })

	var shas []string
	for i, src := range srcs {
		prog, err := core.Parse(fmt.Sprintf("chaos%02d.lol", i), src)
		if err != nil {
			t.Fatalf("chaos program %d: parse: %v", i, err)
		}
		out, err := gogen.Emit(prog.Info)
		if err != nil {
			t.Fatalf("chaos program %d: emit: %v", i, err)
		}
		key := KeyOf(src)
		sha := hex.EncodeToString(key[:])
		dir := filepath.Join(genRoot, "b"+sha)
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "main.go"), out, 0o644); err != nil {
			t.Fatal(err)
		}
		shas = append(shas, sha)
	}

	binDir := filepath.Join(genRoot, "bin")
	if err := os.Mkdir(binDir, 0o755); err != nil {
		t.Fatal(err)
	}
	goTool, _ := exec.LookPath("go")
	build := exec.Command(goTool, "build", "-o", binDir, "./"+filepath.Base(genRoot)+"/...")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("chaos programs do not compile: %v\n%s", err, out)
	}
	for _, sha := range shas {
		if err := os.Rename(filepath.Join(binDir, "b"+sha), cache.PathFor(sha)); err != nil {
			t.Fatal(err)
		}
	}
}

// mustOK fails the test unless the response completed in-process (or on
// the given tier) with outcome ok.
func mustOK(t *testing.T, resp RunResponse, what string) RunResponse {
	t.Helper()
	if resp.Outcome != OutcomeOK {
		t.Fatalf("%s: outcome %q (%s)", what, resp.Outcome, resp.Error)
	}
	return resp
}

// TestChaosChildKillFallback: the promoted child is killed mid-run for
// no kernel-attributable reason (OOM-killer pick, operator kill -9).
// The client must still get the correct bytes from the in-process
// fallback, and the suspect binary must be demoted AND deleted from
// disk so a restarted server cannot re-adopt it.
func TestChaosChildKillFallback(t *testing.T) {
	requireGo(t)
	defer faultinject.Reset()
	cache := newNativeCache(t)
	src := chaosSrc("kill the child")
	buildNativeBinaries(t, cache, src)
	srv := New(Options{Workers: 2, ResultCacheSize: -1,
		NativeCache: cache, NativeThreshold: 1})
	defer srv.Close()
	ctx := context.Background()
	req := RunRequest{Src: src, NP: 2, Seed: 7}

	base := mustOK(t, srv.Run(ctx, req), "baseline run")
	mustOK(t, srv.Run(ctx, req), "warm run") // adopts the prebuilt binary

	if err := faultinject.Arm("native.run.kill=1"); err != nil {
		t.Fatal(err)
	}
	resp := mustOK(t, srv.Run(ctx, req), "run with child killed")
	if resp.Tier == "native" {
		t.Fatal("killed child still answered natively")
	}
	if resp.Output != base.Output {
		t.Errorf("fallback body diverges: %q != %q", resp.Output, base.Output)
	}
	if got := faultinject.Fired("native.run.kill"); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}

	st := srv.Stats().Native
	if st.Fallbacks != 1 || st.Demotions != 1 {
		t.Errorf("fallbacks=%d demotions=%d, want 1/1", st.Fallbacks, st.Demotions)
	}
	key := KeyOf(src)
	if _, ok := cache.Lookup(hex.EncodeToString(key[:])); ok {
		t.Error("demoted binary still on disk; a restarted server would re-adopt it")
	}
	if again := mustOK(t, srv.Run(ctx, req), "post-demotion run"); again.Tier == "native" {
		t.Error("demoted program routed native again")
	}
}

// TestChaosCorruptBinaryFallback: the publish step writes a torn,
// non-executable binary (the on-disk shape of a bad disk or a partial
// write that survived rename). The first native-routed job must fall
// back with an identical body and scrub the corrupt file from disk.
func TestChaosCorruptBinaryFallback(t *testing.T) {
	requireGo(t)
	defer faultinject.Reset()
	cache := newNativeCache(t)
	srv := New(Options{Workers: 2, ResultCacheSize: -1,
		NativeCache: cache, NativeThreshold: 1})
	defer srv.Close()
	ctx := context.Background()
	if err := faultinject.Arm("native.build.corrupt=1"); err != nil {
		t.Fatal(err)
	}
	src := chaosSrc("torn write")
	req := RunRequest{Src: src, NP: 2, Seed: 1}

	base := mustOK(t, srv.Run(ctx, req), "baseline run")
	mustOK(t, srv.Run(ctx, req), "warm run") // crosses the threshold, queues the build

	deadline := time.Now().Add(120 * time.Second)
	for srv.Stats().Native.Ready == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("corrupted binary never published: %+v", srv.Stats().Native)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := faultinject.Fired("native.build.corrupt"); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}

	resp := mustOK(t, srv.Run(ctx, req), "run against corrupt binary")
	if resp.Tier == "native" {
		t.Fatal("corrupt binary answered natively")
	}
	if resp.Output != base.Output {
		t.Errorf("fallback body diverges: %q != %q", resp.Output, base.Output)
	}
	st := srv.Stats().Native
	if st.Fallbacks != 1 || st.Demotions != 1 {
		t.Errorf("fallbacks=%d demotions=%d, want 1/1", st.Fallbacks, st.Demotions)
	}
	key := KeyOf(src)
	if _, ok := cache.Lookup(hex.EncodeToString(key[:])); ok {
		t.Error("corrupt binary still on disk after demotion")
	}
}

// TestChaosBuildFailure: the toolchain fails. The program becomes
// terminally unpromotable, the failure is counted, and jobs keep being
// answered in-process — promotion trouble is never client-visible.
func TestChaosBuildFailure(t *testing.T) {
	requireGo(t)
	defer faultinject.Reset()
	cache := newNativeCache(t)
	srv := New(Options{Workers: 2, ResultCacheSize: -1,
		NativeCache: cache, NativeThreshold: 1})
	defer srv.Close()
	ctx := context.Background()
	if err := faultinject.Arm("native.build.fail=1"); err != nil {
		t.Fatal(err)
	}
	req := RunRequest{Src: chaosSrc("will not build"), NP: 2, Seed: 1}

	mustOK(t, srv.Run(ctx, req), "baseline run")
	mustOK(t, srv.Run(ctx, req), "warm run")
	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().Native.BuildFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("build failure never recorded: %+v", srv.Stats().Native)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp := mustOK(t, srv.Run(ctx, req), "post-failure run")
	if resp.Tier == "native" {
		t.Fatal("unbuilt program routed native")
	}
	st := srv.Stats().Native
	if st.Unpromotable != 1 || st.Ready != 0 || st.Promotions != 0 {
		t.Errorf("failed build not terminal: %+v", st)
	}
}

// TestChaosBreakerTripAndRecover drives the tier-wide circuit breaker
// through its whole lifecycle with injected child deaths: two distinct
// programs fail (window threshold 2) and trip it open, a third program
// with a perfectly good binary is shed in-process while it is open, and
// after the cooldown the half-open probe succeeds and closes it again.
func TestChaosBreakerTripAndRecover(t *testing.T) {
	requireGo(t)
	defer faultinject.Reset()
	cache := newNativeCache(t)
	srcA, srcB, srcC := chaosSrc("breaker a"), chaosSrc("breaker b"), chaosSrc("breaker c")
	buildNativeBinaries(t, cache, srcA, srcB, srcC)
	srv := New(Options{Workers: 2, ResultCacheSize: -1,
		NativeCache: cache, NativeThreshold: 1,
		NativeBreakerThreshold: 2,
		NativeBreakerWindow:    time.Minute,
		NativeBreakerCooldown:  100 * time.Millisecond,
	})
	defer srv.Close()
	ctx := context.Background()

	base := map[string]string{}
	for _, src := range []string{srcA, srcB, srcC} {
		req := RunRequest{Src: src, NP: 2, Seed: 3}
		base[src] = mustOK(t, srv.Run(ctx, req), "baseline").Output
		mustOK(t, srv.Run(ctx, req), "warm") // adopts the prebuilt binary
	}

	// Two consecutive child kills on two different programs: failures 1
	// and 2 inside the window trip the breaker.
	if err := faultinject.Arm("native.run.kill=2"); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{srcA, srcB} {
		resp := mustOK(t, srv.Run(ctx, RunRequest{Src: src, NP: 2, Seed: 3}), "killed run")
		if resp.Tier == "native" || resp.Output != base[src] {
			t.Fatalf("killed run: tier=%q output=%q", resp.Tier, resp.Output)
		}
	}
	st := srv.Stats().Native
	if st.Breaker != "open" || st.BreakerTrips != 1 {
		t.Fatalf("breaker=%s trips=%d after threshold failures, want open/1", st.Breaker, st.BreakerTrips)
	}
	if st.Demotions != 2 || st.Fallbacks != 2 {
		t.Errorf("demotions=%d fallbacks=%d, want 2/2", st.Demotions, st.Fallbacks)
	}

	// Open breaker: C's binary is healthy and ready, but the tier is not
	// trusted — the job is shed in-process, correctly.
	shed := mustOK(t, srv.Run(ctx, RunRequest{Src: srcC, NP: 2, Seed: 3}), "shed run")
	if shed.Tier == "native" {
		t.Fatal("open breaker admitted a job to the tier")
	}
	if shed.Output != base[srcC] {
		t.Errorf("shed body diverges: %q != %q", shed.Output, base[srcC])
	}
	if st := srv.Stats().Native; st.BreakerSheds == 0 {
		t.Error("shed job not counted")
	}

	// After the cooldown the next job is the half-open probe; the fault
	// budget is spent, so it runs natively, succeeds, and closes the
	// breaker for everyone.
	time.Sleep(250 * time.Millisecond)
	probe := mustOK(t, srv.Run(ctx, RunRequest{Src: srcC, NP: 2, Seed: 3}), "probe run")
	if probe.Tier != "native" {
		t.Fatalf("probe ran on tier %q, want native", probe.Tier)
	}
	if probe.Output != base[srcC] {
		t.Errorf("probe body diverges: %q != %q", probe.Output, base[srcC])
	}
	if st := srv.Stats().Native; st.Breaker != "closed" {
		t.Errorf("breaker=%s after successful probe, want closed", st.Breaker)
	}
}

// TestChaosResultCacheClaimDrop: the store is lost between execution
// and fulfilment (the injected shape of an eviction at the worst
// moment). The leader's own response must be unaffected, later equal
// keys must re-execute rather than hang, and the hit/miss counters must
// close exactly.
func TestChaosResultCacheClaimDrop(t *testing.T) {
	defer faultinject.Reset()
	if err := faultinject.Arm("server.resultcache.dropfulfill=1"); err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 2})
	defer srv.Close()
	ctx := context.Background()
	req := RunRequest{Src: helloSrc, NP: 2, Seed: 42}

	first := mustOK(t, srv.Run(ctx, req), "leader run")
	if first.ResultCacheHit {
		t.Fatal("first run cannot be a hit")
	}
	second := mustOK(t, srv.Run(ctx, req), "run after dropped fulfil")
	if second.ResultCacheHit {
		t.Fatal("dropped store must force a re-execution, not a hit")
	}
	if second.Output != first.Output {
		t.Errorf("re-executed body diverges: %q != %q", second.Output, first.Output)
	}
	third := mustOK(t, srv.Run(ctx, req), "run after intact fulfil")
	if !third.ResultCacheHit || third.Output != first.Output {
		t.Errorf("third run: hit=%v output=%q, want hit with %q", third.ResultCacheHit, third.Output, first.Output)
	}

	rc := srv.Stats().ResultCache
	if rc.Misses != 2 || rc.Hits != 1 || rc.Coalesced != 0 {
		t.Errorf("counters did not close: misses=%d hits=%d coalesced=%d, want 2/1/0",
			rc.Misses, rc.Hits, rc.Coalesced)
	}
}

// TestNativeOutcomeInvariants pins the outcome-mapping contract across
// the interp/native boundary: a step-budget death is `budget` on both
// tiers (natively: the child's RLIMIT_CPU kill), a wall-deadline death
// is `timeout` on both, and an rlimit-OOM child death is invisible —
// the job falls back in-process and the client sees the ok body.
func TestNativeOutcomeInvariants(t *testing.T) {
	requireGo(t)
	if !sandbox.Supported() {
		t.Skip("kernel step-budget analog needs the linux sandbox")
	}
	cache := newNativeCache(t)
	buildNativeBinaries(t, cache, spinSrc, growSrc)
	srv := New(Options{Workers: 2, ResultCacheSize: -1,
		NativeCache: cache, NativeThreshold: 1})
	defer srv.Close()
	ctx := context.Background()

	t.Run("step budget is the RLIMIT_CPU kill", func(t *testing.T) {
		// NP=1 x 20k steps / 20M steps-per-second, rounded up: the child
		// gets 1 CPU second and the spin must die of it, not the deadline.
		req := RunRequest{Src: spinSrc, NP: 1, MaxSteps: 20_000, TimeoutMS: 20_000}
		for i := 0; i < 2; i++ {
			resp := srv.Run(ctx, req)
			if resp.Outcome != OutcomeBudget || resp.Tier == "native" {
				t.Fatalf("in-process run %d: tier=%q outcome=%q, want budget", i, resp.Tier, resp.Outcome)
			}
		}
		resp := srv.Run(ctx, req)
		if resp.Tier != "native" {
			t.Fatalf("third run on tier %q, want native", resp.Tier)
		}
		if resp.Outcome != OutcomeBudget {
			t.Fatalf("native RLIMIT_CPU death = %q (%s), want budget", resp.Outcome, resp.Error)
		}
	})

	t.Run("deadline is a timeout on both tiers", func(t *testing.T) {
		// spinSrc is already promoted by the subtest above, so this run
		// routes native immediately. The 400M-step budget converts to ~21
		// CPU seconds; the 200ms wall deadline must win and classify as
		// timeout, exactly like the in-process kill in TestRunOutcomes.
		req := RunRequest{Src: spinSrc, NP: 1, MaxSteps: 400_000_000, TimeoutMS: 200}
		resp := srv.Run(ctx, req)
		if resp.Tier != "native" {
			t.Fatalf("run on tier %q, want native", resp.Tier)
		}
		if resp.Outcome != OutcomeTimeout {
			t.Fatalf("native deadline death = %q (%s), want timeout", resp.Outcome, resp.Error)
		}
		// Budget and deadline kills are the tier doing its job: no
		// demotion, and the breaker must still be closed.
		st := srv.Stats().Native
		if st.Demotions != 0 || st.Breaker != "closed" {
			t.Errorf("budget/timeout kills demoted or tripped: %+v", st)
		}
	})

	t.Run("rlimit OOM falls back with an identical body", func(t *testing.T) {
		// A separate server with a 64 MiB child RLIMIT_AS: growSrc needs
		// ~128 MiB, so the native child must die of the cap while the
		// in-process runs complete untouched.
		oomSrv := New(Options{Workers: 2, ResultCacheSize: -1,
			NativeCache: cache, NativeThreshold: 1, NativeMemBytes: 64 << 20})
		defer oomSrv.Close()
		req := RunRequest{Src: growSrc, NP: 1, Seed: 5, TimeoutMS: 20_000}
		base := mustOK(t, oomSrv.Run(ctx, req), "baseline grow run")
		mustOK(t, oomSrv.Run(ctx, req), "warm grow run")
		resp := mustOK(t, oomSrv.Run(ctx, req), "grow run under the cap")
		if resp.Tier == "native" {
			t.Fatal("child outgrew RLIMIT_AS yet answered natively")
		}
		if resp.Output != base.Output {
			t.Errorf("fallback body diverges: %q != %q", resp.Output, base.Output)
		}
		st := oomSrv.Stats().Native
		if st.Fallbacks != 1 || st.Demotions != 1 {
			t.Errorf("fallbacks=%d demotions=%d, want 1/1", st.Fallbacks, st.Demotions)
		}
	})
}
