package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const helloSrc = "HAI 1.2\nVISIBLE SMOOSH \"PE \" AN ME MKAY\nKTHXBYE"

const spinSrc = `HAI 1.2
I HAS A x ITZ 0
IM IN YR forever
  x R SUM OF x AN 1
IM OUTTA YR forever
KTHXBYE`

// stuckBarrierSrc wedges PE 0 in an infinite loop while every other PE
// blocks in HUGZ — the classic way a bad job deadlocks a shared runtime.
const stuckBarrierSrc = `HAI 1.2
BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A x ITZ 0
  IM IN YR forever
    x R SUM OF x AN 1
  IM OUTTA YR forever
OIC
HUGZ
KTHXBYE`

// TestRunOutcomes is the table-driven behaviour matrix for Server.Run.
func TestRunOutcomes(t *testing.T) {
	s := New(Options{Workers: 4, MaxNP: 8})
	cases := []struct {
		name        string
		req         RunRequest
		wantOutcome Outcome
		wantOutput  string
		wantErrSub  string
	}{
		{
			name:        "hello np4 compile",
			req:         RunRequest{Src: helloSrc, NP: 4},
			wantOutcome: OutcomeOK,
			wantOutput:  "PE 0\nPE 1\nPE 2\nPE 3\n",
		},
		{
			name:        "hello np2 interp",
			req:         RunRequest{Src: helloSrc, NP: 2, Backend: "interp"},
			wantOutcome: OutcomeOK,
			wantOutput:  "PE 0\nPE 1\n",
		},
		{
			name:        "hello vm",
			req:         RunRequest{Src: helloSrc, Backend: "vm"},
			wantOutcome: OutcomeOK,
			wantOutput:  "PE 0\n",
		},
		{
			name:        "parse error",
			req:         RunRequest{Src: "HAI 1.2\nVISIBLE \"unterminated\nKTHXBYE"},
			wantOutcome: OutcomeParseError,
		},
		{
			name:        "runtime error",
			req:         RunRequest{Src: "HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE"},
			wantOutcome: OutcomeRuntime,
			wantErrSub:  "division by zero",
		},
		{
			name:        "step budget kills infinite loop",
			req:         RunRequest{Src: spinSrc, NP: 2, MaxSteps: 20_000},
			wantOutcome: OutcomeBudget,
			wantErrSub:  "step budget exceeded",
		},
		{
			name:        "deadline kills infinite loop",
			req:         RunRequest{Src: spinSrc, TimeoutMS: 50},
			wantOutcome: OutcomeTimeout,
		},
		{
			name:        "np over limit rejected",
			req:         RunRequest{Src: helloSrc, NP: 9},
			wantOutcome: OutcomeRejected,
			wantErrSub:  "np 9 exceeds",
		},
		{
			name:        "unknown backend rejected",
			req:         RunRequest{Src: helloSrc, Backend: "jit"},
			wantOutcome: OutcomeRejected,
			wantErrSub:  "unknown backend",
		},
		{
			name:        "empty src rejected",
			req:         RunRequest{},
			wantOutcome: OutcomeRejected,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			resp := s.Run(context.Background(), tc.req)
			if resp.Outcome != tc.wantOutcome {
				t.Fatalf("outcome = %q (err %q), want %q", resp.Outcome, resp.Error, tc.wantOutcome)
			}
			if tc.wantOutput != "" && resp.Output != tc.wantOutput {
				t.Errorf("output = %q, want %q", resp.Output, tc.wantOutput)
			}
			if tc.wantErrSub != "" && !strings.Contains(resp.Error, tc.wantErrSub) {
				t.Errorf("error = %q, want substring %q", resp.Error, tc.wantErrSub)
			}
		})
	}
}

// TestCacheHitServesIdenticalOutput runs the same program three ways:
// an identical resubmission must be answered by the result cache
// without executing, and a different-seed resubmission (a distinct job
// of the same program) must re-execute but hit the program cache.
func TestCacheHitServesIdenticalOutput(t *testing.T) {
	s := New(Options{Workers: 2})
	req := RunRequest{Src: helloSrc, NP: 4, Seed: 7}

	first := s.Run(context.Background(), req)
	if first.Outcome != OutcomeOK || first.CacheHit || first.ResultCacheHit {
		t.Fatalf("first run: %+v, want ok and both caches cold", first)
	}
	second := s.Run(context.Background(), req)
	if second.Outcome != OutcomeOK || !second.ResultCacheHit {
		t.Fatalf("second run: outcome=%q resultCacheHit=%v, want ok served from result cache",
			second.Outcome, second.ResultCacheHit)
	}
	if first.Output != second.Output {
		t.Errorf("result-cache hit changed output: %q vs %q", first.Output, second.Output)
	}
	reseeded := s.Run(context.Background(), RunRequest{Src: helloSrc, NP: 4, Seed: 8})
	if reseeded.Outcome != OutcomeOK || !reseeded.CacheHit || reseeded.ResultCacheHit {
		t.Fatalf("reseeded run: %+v, want ok, program-cache hit, result-cache miss", reseeded)
	}
	if cs := s.cache.Stats(); cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("program cache stats = %+v, want 1 hit / 1 miss", cs)
	}
	if rs := s.results.Stats(); rs.Hits != 1 || rs.Misses != 2 {
		t.Errorf("result cache stats = %+v, want 1 hit / 2 misses", rs)
	}
	if st := s.Stats(); st.JobsRun != 2 {
		t.Errorf("jobs_run = %d, want 2 (the hit must not execute)", st.JobsRun)
	}
}

// TestConcurrentMixedBackendJobs hammers one server with a mix of programs
// and backends from many goroutines; run under -race in CI. Every job must
// land the deterministic output for its seed regardless of interleaving.
// The result cache is disabled so every request truly executes; the
// cache-on concurrency story is TestStressRunAndBatch.
func TestConcurrentMixedBackendJobs(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 256, CacheSize: 8, ResultCacheSize: -1})
	type want struct {
		req RunRequest
		out string
	}
	mix := []want{
		{RunRequest{Src: helloSrc, NP: 2, Backend: "interp"}, "PE 0\nPE 1\n"},
		{RunRequest{Src: helloSrc, NP: 3, Backend: "vm"}, "PE 0\nPE 1\nPE 2\n"},
		{RunRequest{Src: helloSrc, NP: 4, Backend: "compile"}, "PE 0\nPE 1\nPE 2\nPE 3\n"},
		{RunRequest{Src: "HAI 1.2\nVISIBLE SUM OF ME AN 40\nKTHXBYE", NP: 2, Backend: "vm"}, "40\n41\n"},
	}
	const perCase = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(mix)*perCase)
	for _, m := range mix {
		for i := 0; i < perCase; i++ {
			wg.Add(1)
			go func(m want) {
				defer wg.Done()
				resp := s.Run(context.Background(), m.req)
				if resp.Outcome != OutcomeOK {
					errs <- fmt.Errorf("%s np=%d: outcome %q (%s)", m.req.Backend, m.req.NP, resp.Outcome, resp.Error)
					return
				}
				if resp.Output != m.out {
					errs <- fmt.Errorf("%s np=%d: output %q, want %q", m.req.Backend, m.req.NP, resp.Output, m.out)
				}
			}(m)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Stats(); st.JobsOK != int64(len(mix)*perCase) {
		t.Errorf("jobs_ok = %d, want %d", st.JobsOK, len(mix)*perCase)
	}
}

// TestCancelledJobReleasesBarrier cancels a job whose PE 0 spins forever
// while PEs 1..3 block in HUGZ: the job must return promptly (no PE left
// wedged in the barrier) and classify as cancelled.
func TestCancelledJobReleasesBarrier(t *testing.T) {
	s := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	done := make(chan RunResponse, 1)
	go func() {
		done <- s.Run(ctx, RunRequest{Src: stuckBarrierSrc, NP: 4, Backend: "compile"})
	}()
	select {
	case resp := <-done:
		if resp.Outcome != OutcomeCancelled {
			t.Fatalf("outcome = %q (%s), want cancelled", resp.Outcome, resp.Error)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not return: PEs stuck in HUGZ")
	}

	// The worker slot must have been released: a follow-up job runs fine.
	resp := s.Run(context.Background(), RunRequest{Src: helloSrc})
	if resp.Outcome != OutcomeOK {
		t.Fatalf("follow-up job: outcome %q (%s)", resp.Outcome, resp.Error)
	}
}

// TestOutputBudgetTruncates bounds server memory against print floods:
// a job that prints more than MaxOutputBytes gets its tail dropped and
// the truncation flagged, while the run itself still succeeds.
func TestOutputBudgetTruncates(t *testing.T) {
	s := New(Options{Workers: 1, MaxOutputBytes: 64})
	src := `HAI 1.2
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 50
  VISIBLE "0123456789"
IM OUTTA YR l
KTHXBYE`
	resp := s.Run(context.Background(), RunRequest{Src: src})
	if resp.Outcome != OutcomeOK {
		t.Fatalf("outcome = %q (%s)", resp.Outcome, resp.Error)
	}
	if !resp.OutputTruncated {
		t.Error("550-byte print under a 64-byte budget was not flagged truncated")
	}
	if len(resp.Output) > 64 {
		t.Errorf("output is %d bytes, budget 64", len(resp.Output))
	}
	// Truncation must not break output determinism: per-PE budget shares
	// mean the cut point depends only on each PE's own stream.
	again := s.Run(context.Background(), RunRequest{Src: src, NP: 4})
	again2 := s.Run(context.Background(), RunRequest{Src: src, NP: 4})
	if again.Output != again2.Output {
		t.Errorf("truncated multi-PE output is nondeterministic:\n%q\nvs\n%q", again.Output, again2.Output)
	}
}

// TestLRUEviction checks the cache evicts least-recently-used programs and
// counts evictions.
func TestLRUEviction(t *testing.T) {
	c := NewCache(2)
	srcs := []string{
		"HAI 1.2\nVISIBLE 1\nKTHXBYE",
		"HAI 1.2\nVISIBLE 2\nKTHXBYE",
		"HAI 1.2\nVISIBLE 3\nKTHXBYE",
	}
	for _, src := range srcs {
		if _, err, _, _ := c.GetOrCompile(KeyOf(src), "t.lol", src); err != nil {
			t.Fatal(err)
		}
	}
	// srcs[0] is the LRU victim; re-requesting it must miss.
	if _, _, hit, _ := c.GetOrCompile(KeyOf(srcs[0]), "t.lol", srcs[0]); hit {
		t.Error("evicted program reported as cache hit")
	}
	if _, _, hit, _ := c.GetOrCompile(KeyOf(srcs[2]), "t.lol", srcs[2]); !hit {
		t.Error("recently used program reported as miss")
	}
	st := c.Stats()
	if st.Evicted < 1 || st.Size > 2 {
		t.Errorf("cache stats = %+v, want evictions and size <= 2", st)
	}
}

// TestQueueFullRejects saturates the workers and the queue with spinning
// jobs and expects the next submission to fail fast with ErrBusy.
func TestQueueFullRejects(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{})

	// Occupy the only worker slot directly through the pool.
	if err := s.pool.acquire(context.Background(), Key{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // fills the single queue slot
		defer wg.Done()
		close(started)
		if err := s.pool.acquire(context.Background(), Key{1}); err != nil {
			t.Error(err)
			return
		}
		<-release
		s.pool.release()
	}()
	<-started
	// Give the queued acquire a moment to register.
	for i := 0; i < 100 && s.pool.depth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	resp := s.Run(context.Background(), RunRequest{Src: helloSrc})
	if resp.Outcome != OutcomeRejected || !strings.Contains(resp.Error, "busy") {
		t.Fatalf("outcome = %q (%s), want busy rejection", resp.Outcome, resp.Error)
	}
	close(release)
	s.pool.release() // release the directly-held slot
	wg.Wait()
}

// TestPoolFairness floods the pool with one hot key, then queues a single
// job under a second key: the cold key must be served within one round of
// slot handoffs, not after the entire hot backlog.
func TestPoolFairness(t *testing.T) {
	p := newPool(1, 64)
	hot, cold := Key{1}, Key{2}
	if err := p.acquire(context.Background(), hot); err != nil {
		t.Fatal(err)
	}

	const backlog = 8
	order := make(chan string, backlog+1)
	var wg sync.WaitGroup
	depthWas := 0
	// enqueueAndWait serializes arrival order so the FIFO within each key
	// is deterministic.
	enqueueAndWait := func(key Key, label string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.acquire(context.Background(), key); err != nil {
				t.Error(err)
				return
			}
			order <- label
			p.release()
		}()
		depthWas++
		for i := 0; i < 1000 && p.depth() < depthWas; i++ {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < backlog; i++ {
		enqueueAndWait(hot, fmt.Sprintf("hot%d", i))
	}
	enqueueAndWait(cold, "cold")

	p.release() // start the handoff chain
	wg.Wait()
	close(order)

	var got []string
	for label := range order {
		got = append(got, label)
	}
	coldAt := -1
	for i, label := range got {
		if label == "cold" {
			coldAt = i
		}
	}
	if coldAt < 0 {
		t.Fatal("cold job never ran")
	}
	if coldAt > 1 {
		t.Errorf("cold key served at position %d of %v; round-robin should interleave it within one round", coldAt, got)
	}
}

// TestHTTPQuickstart drives the documented curl flow end to end: run a
// program over HTTP, check the JSON, then read /v1/stats and /v1/healthz.
func TestHTTPQuickstart(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(RunRequest{Src: helloSrc, NP: 2, Backend: "vm"})
	httpResp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", httpResp.StatusCode)
	}
	var resp RunResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != OutcomeOK || resp.Output != "PE 0\nPE 1\n" {
		t.Fatalf("response = %+v", resp)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JobsRun != 1 || st.Cache.Misses != 1 {
		t.Errorf("stats = %+v, want 1 job / 1 miss", st)
	}

	health, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", health.StatusCode)
	}

	// Malformed JSON is a protocol error, not a job outcome.
	bad, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d, want 400", bad.StatusCode)
	}
}

// TestSingleFlightCompile fires many concurrent first requests for one
// program and checks the frontend ran once (one miss, rest hits or blocked
// on the same entry — never more than one miss total).
func TestSingleFlightCompile(t *testing.T) {
	s := New(Options{Workers: 8, QueueDepth: 64})
	src := "HAI 1.2\nVISIBLE \"once\"\nKTHXBYE"
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := s.Run(context.Background(), RunRequest{Src: src})
			if resp.Outcome != OutcomeOK {
				t.Errorf("outcome %q: %s", resp.Outcome, resp.Error)
			}
		}()
	}
	wg.Wait()
	cs := s.cache.Stats()
	if cs.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (single-flight)", cs.Misses)
	}
}
