package server

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/gogen"
	"repro/internal/native"
	"repro/internal/native/sandbox"
)

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	if testing.Short() {
		t.Skip("skipping go-build test in -short mode")
	}
}

func newNativeCache(t *testing.T) *native.Cache {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	c, err := native.NewCache(t.TempDir(), root)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	return c
}

// TestNativeTierConformanceCorpus routes the paper's Tables I-III corpus
// through the server's native tier and byte-compares each response
// against the interpreter's for the same NP, seed, and stdin — the
// server-level completion of the backend×fixture matrix: not just "the
// emitted binary matches interp" (gogen's corpus e2e) but "the whole
// promoted path — routing, subprocess protocol, result classification —
// is invisible except for the tier field".
//
// To keep this to ONE `go build` for the ~50-program corpus, the test
// pre-populates the binary cache using its public PathFor layout, then
// runs a server with threshold 1 and the result cache disabled (so
// identical resubmissions really execute and accrue program-cache heat):
// the second request's lookup crosses the threshold and adopts the
// on-disk binary, so the third request must route native.
func TestNativeTierConformanceCorpus(t *testing.T) {
	requireGo(t)
	cache := newNativeCache(t)
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	// Not dot-prefixed: the one-shot `go build ./.../...` below must match
	// the generated packages, and the go tool skips hidden directories.
	genRoot, err := os.MkdirTemp(moduleRoot, "native-corpus-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(genRoot) })

	type kase struct {
		idx int
		row conformance.Row
		sha string
	}
	var cases []kase
	seen := map[string]bool{}
	for i, row := range conformance.All() {
		prog, err := core.Parse(fmt.Sprintf("row%02d.lol", i), row.Source)
		if err != nil {
			t.Fatalf("row %d (%s): parse: %v", i, row.Construct, err)
		}
		if err := native.Check(prog.Info); err != nil {
			// The documented static-lowering limitation: only SRS rows may
			// be unsupported, and they stay in-process by policy.
			if !errors.Is(err, native.ErrUnsupported) {
				t.Errorf("row %d (%s): Check: %v (not ErrUnsupported)", i, row.Construct, err)
			}
			continue
		}
		key := KeyOf(row.Source)
		sha := hex.EncodeToString(key[:])
		if seen[sha] {
			continue
		}
		seen[sha] = true
		src, err := gogen.Emit(prog.Info)
		if err != nil {
			t.Errorf("row %d (%s): emit after Check ok: %v", i, row.Construct, err)
			continue
		}
		dir := filepath.Join(genRoot, "b"+sha)
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
			t.Fatal(err)
		}
		cases = append(cases, kase{idx: i, row: row, sha: sha})
	}
	if len(cases) < 40 {
		t.Fatalf("only %d rows emitted; the corpus should be nearly all of Tables I-III", len(cases))
	}

	// One toolchain invocation for the whole corpus, then install each
	// binary under the cache's public disk layout so the server adopts it.
	binDir := filepath.Join(genRoot, "bin")
	if err := os.Mkdir(binDir, 0o755); err != nil {
		t.Fatal(err)
	}
	goTool, _ := exec.LookPath("go")
	build := exec.Command(goTool, "build", "-o", binDir, "./"+filepath.Base(genRoot)+"/...")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("corpus does not compile: %v\n%s", err, out)
	}
	for _, c := range cases {
		if err := os.Rename(filepath.Join(binDir, "b"+c.sha), cache.PathFor(c.sha)); err != nil {
			t.Fatal(err)
		}
	}

	srv := New(Options{Workers: 2, MaxNP: 8, ResultCacheSize: -1,
		NativeCache: cache, NativeThreshold: 1})
	defer srv.Close()
	ctx := context.Background()
	for _, c := range cases {
		c := c
		np := c.row.NP
		if np == 0 {
			np = 1
		}
		req := RunRequest{Src: c.row.Source, NP: np, Seed: 2017,
			Stdin: c.row.Stdin, Backend: "interp"}

		// Two interpreter runs: the first compiles (hit count 0), the
		// second's cache lookup crosses the threshold and adopts the
		// pre-built binary from disk.
		interpResp := srv.Run(ctx, req)
		if interpResp.Outcome != OutcomeOK {
			t.Errorf("row %d (%s): interp run: %q (%s)", c.idx, c.row.Construct, interpResp.Outcome, interpResp.Error)
			continue
		}
		if warm := srv.Run(ctx, req); warm.Outcome != OutcomeOK {
			t.Errorf("row %d (%s): warm run: %q (%s)", c.idx, c.row.Construct, warm.Outcome, warm.Error)
			continue
		}
		nativeResp := srv.Run(ctx, req)
		if nativeResp.Outcome != OutcomeOK {
			t.Errorf("row %d (%s): native run: %q (%s)", c.idx, c.row.Construct, nativeResp.Outcome, nativeResp.Error)
			continue
		}
		if nativeResp.Tier != "native" {
			t.Errorf("row %d (%s): third request ran on tier %q, want native", c.idx, c.row.Construct, nativeResp.Tier)
			continue
		}
		if c.row.WantCheck != nil {
			// Nondeterministic row: the paper's predicate is the spec.
			if err := c.row.WantCheck(nativeResp.Output); err != nil {
				t.Errorf("row %d (%s): native output check: %v", c.idx, c.row.Construct, err)
			}
			continue
		}
		if nativeResp.Output != interpResp.Output {
			t.Errorf("row %d (%s): native output diverges from interp:\nnative: %q\ninterp: %q\n--- program ---\n%s",
				c.idx, c.row.Construct, nativeResp.Output, interpResp.Output, c.row.Source)
		}
		if nativeResp.Output != c.row.Want {
			t.Errorf("row %d (%s): native output = %q, want %q", c.idx, c.row.Construct, nativeResp.Output, c.row.Want)
		}
	}

	st := srv.Stats()
	if st.Native.Promotions != int64(len(cases)) {
		t.Errorf("promotions = %d, want %d (one adopted binary per unique program)", st.Native.Promotions, len(cases))
	}
	if st.Native.Runs < int64(len(cases)) {
		t.Errorf("native runs = %d, want >= %d", st.Native.Runs, len(cases))
	}
	if st.Native.Fallbacks != 0 || st.Native.Demotions != 0 {
		t.Errorf("native tier was not clean: %+v", st.Native)
	}
	if st.Tiers.Native != st.Native.Runs {
		t.Errorf("per-tier counter (%d) disagrees with native runs (%d)", st.Tiers.Native, st.Native.Runs)
	}
	// Every one of those runs came from a self-jailed child, and the
	// children report the level they actually achieved: stats must show
	// the kernel's best (the parent probe and the children agree — same
	// kernel), never silently degrade to an unjailed tier.
	if sandbox.Supported() {
		if want := string(sandbox.Probe()); st.Native.Sandbox != want {
			t.Errorf("stats sandbox = %q, want child-confirmed %q", st.Native.Sandbox, want)
		}
	} else if st.Native.Sandbox != string(sandbox.LevelNone) {
		t.Errorf("stats sandbox = %q on an unsupported platform, want none", st.Native.Sandbox)
	}
}

// TestNativePromotionLifecycle exercises the full promotion state
// machine against a real background `go build`: below the threshold jobs
// stay in-process, crossing it queues a build, and once Stats reports
// the binary ready the next identical job runs natively with an
// identical response body.
func TestNativePromotionLifecycle(t *testing.T) {
	requireGo(t)
	cache := newNativeCache(t)
	srv := New(Options{Workers: 2, NativeCache: cache, NativeThreshold: 3})
	defer srv.Close()
	ctx := context.Background()
	// Every request gets a fresh seed: an identical resubmission would be
	// answered by the result cache without executing, and only executions
	// advance the program-cache hit count the promotion policy watches.
	// helloSrc never draws from the RNG, so outputs stay comparable.
	seed := int64(0)
	next := func() RunRequest {
		seed++
		return RunRequest{Src: helloSrc, NP: 2, Seed: seed}
	}

	// Four runs: the first compiles (hit count 0), the fourth's lookup
	// reaches the threshold of 3 and queues the background build.
	var inProc RunResponse
	for i := 0; i < 4; i++ {
		resp := srv.Run(ctx, next())
		if resp.Outcome != OutcomeOK {
			t.Fatalf("warm-up run %d: %q (%s)", i, resp.Outcome, resp.Error)
		}
		if resp.Tier == "native" {
			t.Fatalf("run %d went native before the build could have finished adoption gating", i)
		}
		if i == 0 {
			inProc = resp
		}
	}

	// Wait for the background `go build` to publish the binary.
	deadline := time.Now().Add(120 * time.Second)
	for srv.Stats().Native.Ready == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("binary never became ready: %+v", srv.Stats().Native)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Re-submit the FIRST warm-up job verbatim. Its in-process result sits
	// in the result cache under the empty tier salt; the request must
	// nevertheless execute natively, because the routing decision folds
	// the native tier's version salt into the key. Without the salt this
	// would be a result-cache hit and the tier would be unreachable.
	nativeResp := srv.Run(ctx, RunRequest{Src: helloSrc, NP: 2, Seed: 1})
	if nativeResp.Tier != "native" || nativeResp.Outcome != OutcomeOK {
		t.Fatalf("post-promotion run: tier=%q outcome=%q (%s)", nativeResp.Tier, nativeResp.Outcome, nativeResp.Error)
	}
	if nativeResp.ResultCacheHit {
		t.Fatal("post-promotion run was a result-cache hit; the tier salt must separate the keys")
	}
	if nativeResp.Output != inProc.Output {
		t.Errorf("native output %q != in-process output %q", nativeResp.Output, inProc.Output)
	}
	st := srv.Stats()
	if st.Native.Promotions != 1 || st.Native.Runs != 1 {
		t.Errorf("native stats after one promoted run: %+v", st.Native)
	}

	// Infrastructure failure demotes: replace the binary with something
	// that speaks no protocol; the job must fall back in-process with a
	// correct response, and the program must never route native again.
	bin, ok := srv.native.binaryFor(KeyOf(helloSrc))
	if !ok {
		t.Fatal("promoted binary not routable")
	}
	if err := os.WriteFile(bin, []byte("#!/bin/sh\nexit 0\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	fallback := srv.Run(ctx, next())
	if fallback.Outcome != OutcomeOK || fallback.Tier == "native" {
		t.Fatalf("fallback run: tier=%q outcome=%q (%s)", fallback.Tier, fallback.Outcome, fallback.Error)
	}
	if fallback.Output != inProc.Output {
		t.Errorf("fallback output %q != in-process output %q", fallback.Output, inProc.Output)
	}
	st = srv.Stats()
	if st.Native.Demotions != 1 || st.Native.Fallbacks != 1 {
		t.Errorf("demotion not recorded: %+v", st.Native)
	}
	if again := srv.Run(ctx, next()); again.Tier == "native" {
		t.Error("demoted program routed native again")
	}
}

// TestNativeUnsupportedStaysInProcess: a program the emitter cannot
// lower (SRS) is marked unpromotable up front — no build is attempted
// and jobs keep running in-process forever.
func TestNativeUnsupportedStaysInProcess(t *testing.T) {
	requireGo(t)
	cache := newNativeCache(t)
	srv := New(Options{Workers: 2, NativeCache: cache, NativeThreshold: 1})
	defer srv.Close()
	src := "HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE"
	for i := 0; i < 3; i++ {
		resp := srv.Run(context.Background(), RunRequest{Src: src, Seed: int64(i)})
		if resp.Outcome != OutcomeOK || resp.Tier == "native" {
			t.Fatalf("run %d: tier=%q outcome=%q (%s)", i, resp.Tier, resp.Outcome, resp.Error)
		}
	}
	st := srv.Stats().Native
	if st.Unsupported != 1 || st.Unpromotable != 1 {
		t.Errorf("unsupported program not marked exactly once: %+v", st)
	}
	if st.Promotions != 0 || st.Building != 0 || st.Ready != 0 {
		t.Errorf("unsupported program entered the build pipeline: %+v", st)
	}
}
