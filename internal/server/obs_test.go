package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/gogen"
	"repro/internal/obs"
)

// scrapeMetrics fetches /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, client *http.Client, baseURL string) string {
	t.Helper()
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q, want text/plain exposition", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	return string(text)
}

// metricValue finds `name value` or `name{labels} value` in exposition
// text, matching the series whose labels contain every want pair.
func metricValue(t *testing.T, text, name string, want map[string]string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, " ") && len(want) == 0 {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
		if !strings.HasPrefix(rest, "{") {
			continue
		}
		end := strings.Index(rest, "} ")
		if end < 0 {
			continue
		}
		labels := rest[1:end]
		ok := true
		for k, v := range want {
			if !strings.Contains(labels, fmt.Sprintf("%s=%q", k, v)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest[end+2:]), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s%v not found in exposition", name, want)
	return 0
}

// TestRequestIDPropagation: every response carries X-Request-Id; an
// inbound ID survives the round trip (so IDs assigned by a proxy stay
// greppable end to end), an absent or oversized one is replaced.
func TestRequestIDPropagation(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(hdr string) *http.Response {
		body, _ := json.Marshal(RunRequest{Src: helloSrc, NP: 1})
		req, err := http.NewRequest("POST", ts.URL+"/v1/run", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set("X-Request-Id", hdr)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if got := post("").Header.Get("X-Request-Id"); got == "" {
		t.Error("no inbound ID: response should carry a generated X-Request-Id")
	}
	if got := post("trace-abc-123").Header.Get("X-Request-Id"); got != "trace-abc-123" {
		t.Errorf("inbound ID not echoed: got %q, want trace-abc-123", got)
	}
	huge := strings.Repeat("x", 200)
	if got := post(huge).Header.Get("X-Request-Id"); got == huge || got == "" {
		t.Errorf("oversized inbound ID should be replaced, got %q", got)
	}
}

// TestRequestLogLine: each HTTP request produces exactly one structured
// log record carrying the request ID, status, and per-stage latencies.
func TestRequestLogLine(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	locked := slog.New(slog.NewJSONHandler(lockedWriter{&buf, &mu}, nil))
	s := New(Options{Workers: 2, Logger: locked})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(RunRequest{Src: helloSrc, NP: 2, Backend: "vm"})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/run", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "log-line-test")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 log line, got %d:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	for k, want := range map[string]any{
		"msg": "request", "id": "log-line-test", "path": "/v1/run",
		"status": float64(200), "tier": "vm", "outcome": "ok",
	} {
		if rec[k] != want {
			t.Errorf("log[%q] = %v, want %v", k, rec[k], want)
		}
	}
	if _, ok := rec["total_ms"]; !ok {
		t.Error("log line missing total_ms")
	}
	for _, stage := range []string{"execute_ms", "queue_wait_ms"} {
		if _, ok := rec[stage]; !ok {
			t.Errorf("log line missing stage attribute %s", stage)
		}
	}
}

type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestHealthzIdentity: the liveness probe reports enough build identity
// to tell which server is answering.
func TestHealthzIdentity(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status      string  `json:"status"`
		Go          string  `json:"go"`
		Gogen       string  `json:"gogen"`
		UptimeS     float64 `json:"uptime_s"`
		NativeTier  bool    `json:"native_tier"`
		ResultCache bool    `json:"result_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Go != runtime.Version() {
		t.Errorf("go = %q, want %q", h.Go, runtime.Version())
	}
	if h.Gogen != gogen.Version {
		t.Errorf("gogen = %q, want %q", h.Gogen, gogen.Version)
	}
	if h.UptimeS < 0 {
		t.Errorf("uptime_s = %v", h.UptimeS)
	}
	if h.NativeTier {
		t.Error("native_tier should be false without a native cache")
	}
	if !h.ResultCache {
		t.Error("result_cache should be true by default")
	}
}

// TestMetricsExposition drives jobs across tiers and asserts the
// Prometheus endpoint reports them: per-tier execution counters,
// per-stage histograms, queue-wait observations, HTTP counters.
func TestMetricsExposition(t *testing.T) {
	s := New(Options{Workers: 2, ResultCacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const perTier = 3
	for _, backend := range []string{"interp", "vm", "compile"} {
		for i := 0; i < perTier; i++ {
			var rr RunResponse
			status, err := postJSON(client, ts.URL+"/v1/run",
				RunRequest{Src: helloSrc, NP: 1, Backend: backend}, &rr)
			if err != nil || status != http.StatusOK || rr.Outcome != OutcomeOK {
				t.Fatalf("%s job %d: status %d outcome %q err %v", backend, i, status, rr.Outcome, err)
			}
		}
	}

	text := scrapeMetrics(t, client, ts.URL)
	for _, tier := range []string{"interp", "vm", "compile"} {
		if got := metricValue(t, text, "lolserv_executions_total", map[string]string{"tier": tier}); got != perTier {
			t.Errorf("executions_total{tier=%q} = %v, want %d", tier, got, perTier)
		}
		if got := metricValue(t, text, "lolserv_stage_seconds_count",
			map[string]string{"stage": "execute", "tier": tier}); got != perTier {
			t.Errorf("stage execute count for %s = %v, want %d", tier, got, perTier)
		}
	}
	total := float64(3 * perTier)
	if got := metricValue(t, text, "lolserv_queue_wait_seconds_count", nil); got != total {
		t.Errorf("queue_wait count = %v, want %v", got, total)
	}
	if got := metricValue(t, text, "lolserv_jobs_run_total", nil); got != total {
		t.Errorf("jobs_run_total = %v, want %v", got, total)
	}
	if got := metricValue(t, text, "lolserv_job_outcomes_total", map[string]string{"outcome": "ok"}); got != total {
		t.Errorf("outcomes{ok} = %v, want %v", got, total)
	}
	if got := metricValue(t, text, "lolserv_http_requests_total",
		map[string]string{"endpoint": "/v1/run", "code": "200"}); got != total {
		t.Errorf("http_requests_total{/v1/run,200} = %v, want %v", got, total)
	}
	// Histogram invariant: buckets are cumulative and the +Inf bucket
	// equals the count (obs's own tests cover this; here we make sure it
	// held through real traffic and exposition).
	if got := metricValue(t, text, "lolserv_request_seconds_bucket",
		map[string]string{"endpoint": "/v1/run", "le": "+Inf"}); got != total {
		t.Errorf("request_seconds +Inf bucket = %v, want %v", got, total)
	}
	// The program cache saw one miss per backend-set and hits afterwards.
	if got := metricValue(t, text, "lolserv_program_cache_size", nil); got != 1 {
		t.Errorf("program_cache_size = %v, want 1", got)
	}
}

// TestDebugSlowShape: /v1/debug/slow returns full per-stage breakdowns,
// slowest first, honouring ?n=.
func TestDebugSlowShape(t *testing.T) {
	s := New(Options{Workers: 2, ResultCacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const runs = 5
	for i := 0; i < runs; i++ {
		var rr RunResponse
		if _, err := postJSON(client, ts.URL+"/v1/run", RunRequest{Src: helloSrc, NP: 1}, &rr); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := client.Get(ts.URL + "/v1/debug/slow?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Requests []struct {
			ID       string  `json:"id"`
			Endpoint string  `json:"endpoint"`
			Tier     string  `json:"tier"`
			Outcome  string  `json:"outcome"`
			TotalMS  float64 `json:"total_ms"`
			Stages   []struct {
				Name string  `json:"stage"`
				MS   float64 `json:"ms"`
			} `json:"stages"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Requests) != 3 {
		t.Fatalf("?n=3 returned %d requests", len(out.Requests))
	}
	for i, r := range out.Requests {
		if i > 0 && r.TotalMS > out.Requests[i-1].TotalMS {
			t.Errorf("slow list not sorted: [%d]=%v > [%d]=%v", i, r.TotalMS, i-1, out.Requests[i-1].TotalMS)
		}
		if r.ID == "" || r.Endpoint != "/v1/run" {
			t.Errorf("request %d: id=%q endpoint=%q", i, r.ID, r.Endpoint)
		}
		got := map[string]bool{}
		var sum float64
		for _, st := range r.Stages {
			got[st.Name] = true
			sum += st.MS
		}
		for _, want := range []string{"admission", "queue_wait", "program_cache", "execute", "respond"} {
			if !got[want] {
				t.Errorf("request %d (%s): missing stage %q (have %v)", i, r.ID, want, r.Stages)
			}
		}
		// Stage accounting must close: the stages are disjoint intervals
		// of the request, so their sum cannot exceed the wall total.
		if sum > r.TotalMS*1.001 {
			t.Errorf("request %d: stage sum %.3fms exceeds total %.3fms", i, sum, r.TotalMS)
		}
	}
}

// TestObsUnderStress is the satellite's race-mode accounting check:
// concurrent /v1/run and /v1/batch traffic, then every observation must
// be accounted for — no lost counter increments, histogram counts that
// match the served request totals, and stage sums bounded by wall time
// on every recorded span.
func TestObsUnderStress(t *testing.T) {
	const (
		clients  = 8
		rounds   = 5
		batchLen = 4
	)
	s := New(Options{Workers: 4, QueueDepth: 1024, MaxNP: 8, ResultCacheSize: -1, SlowWindow: 4096})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var rr RunResponse
				status, err := postJSON(client, ts.URL+"/v1/run",
					RunRequest{Src: helloSrc, NP: 1 + (c+r)%3, Backend: "interp"}, &rr)
				if err != nil || status != http.StatusOK {
					errCh <- fmt.Errorf("run: status %d err %v", status, err)
					return
				}
				jobs := make([]RunRequest, batchLen)
				for i := range jobs {
					jobs[i] = RunRequest{Src: helloSrc, NP: 1 + i%3, Backend: "vm"}
				}
				body, _ := json.Marshal(BatchRequest{Jobs: jobs})
				resp, err := client.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				got := 0
				dec := json.NewDecoder(resp.Body)
				for dec.More() {
					var item BatchItem
					if err := dec.Decode(&item); err != nil {
						errCh <- err
						resp.Body.Close()
						return
					}
					got++
				}
				resp.Body.Close()
				if got != batchLen {
					errCh <- fmt.Errorf("batch returned %d/%d items", got, batchLen)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	const (
		runJobs   = clients * rounds
		batchJobs = clients * rounds * batchLen
		totalJobs = runJobs + batchJobs
	)
	text := scrapeMetrics(t, client, ts.URL)

	// No lost observations: every executed job shows up once in the tier
	// counters, the execute-stage histogram, and the queue-wait histogram.
	interp := metricValue(t, text, "lolserv_executions_total", map[string]string{"tier": "interp"})
	vm := metricValue(t, text, "lolserv_executions_total", map[string]string{"tier": "vm"})
	if int(interp) != runJobs || int(vm) != batchJobs {
		t.Errorf("executions interp=%v vm=%v, want %d and %d", interp, vm, runJobs, batchJobs)
	}
	execObs := metricValue(t, text, "lolserv_stage_seconds_count", map[string]string{"stage": "execute", "tier": "interp"}) +
		metricValue(t, text, "lolserv_stage_seconds_count", map[string]string{"stage": "execute", "tier": "vm"})
	if int(execObs) != totalJobs {
		t.Errorf("execute-stage observations = %v, want %d", execObs, totalJobs)
	}
	if got := metricValue(t, text, "lolserv_queue_wait_seconds_count", nil); int(got) != totalJobs {
		t.Errorf("queue_wait observations = %v, want %d", got, totalJobs)
	}
	if got := metricValue(t, text, "lolserv_jobs_run_total", nil); int(got) != totalJobs {
		t.Errorf("jobs_run_total = %v, want %d", got, totalJobs)
	}
	if got := metricValue(t, text, "lolserv_http_requests_total",
		map[string]string{"endpoint": "/v1/run", "code": "200"}); int(got) != runJobs {
		t.Errorf("http /v1/run = %v, want %d", got, runJobs)
	}
	if got := metricValue(t, text, "lolserv_http_requests_total",
		map[string]string{"endpoint": "/v1/batch", "code": "200"}); int(got) != clients*rounds {
		t.Errorf("http /v1/batch = %v, want %d", got, clients*rounds)
	}

	// Stage accounting closes on every span the slow ring kept (the
	// window is sized to keep them all): disjoint stages can never sum
	// past the span's wall time.
	for _, snap := range s.metrics.slow.Slowest(0) {
		var sum float64
		for _, st := range snap.Stages {
			sum += st.MS
		}
		if sum > snap.TotalMS*1.001 {
			t.Errorf("span %s (%s): stage sum %.3fms > total %.3fms", snap.ID, snap.Endpoint, sum, snap.TotalMS)
		}
	}

	// Gauges return to rest after the storm.
	if got := metricValue(t, text, "lolserv_in_flight", nil); got != 0 {
		t.Errorf("in_flight = %v after drain", got)
	}
	if got := metricValue(t, text, "lolserv_queue_depth", nil); got != 0 {
		t.Errorf("queue_depth = %v after drain", got)
	}
}

// TestBatchChildSpans: each batch job records its own span (child IDs
// derived from the envelope's), so per-job tier attribution exists even
// though the envelope is one HTTP request.
func TestBatchChildSpans(t *testing.T) {
	s := New(Options{Workers: 2, ResultCacheSize: -1, SlowWindow: 64})
	jobs := []RunRequest{
		{Src: helloSrc, NP: 1, Backend: "interp"},
		{Src: helloSrc, NP: 2, Backend: "vm"},
	}
	ctx := obs.WithSpan(context.Background(), obs.NewSpan("envelope-1", "/v1/batch"))
	drainBatch(t, s.RunBatch(ctx, jobs), len(jobs))

	snaps := s.metrics.slow.Slowest(0)
	byID := map[string]obs.SpanSnapshot{}
	for _, sn := range snaps {
		byID[sn.ID] = sn
	}
	for _, id := range []string{"envelope-1.0", "envelope-1.1"} {
		sn, ok := byID[id]
		if !ok {
			t.Fatalf("no child span %q recorded (have %d spans)", id, len(snaps))
		}
		if sn.StageMS("execute") <= 0 {
			t.Errorf("child span %s: no execute stage", id)
		}
	}
}

func drainBatch(t *testing.T, items <-chan BatchItem, want int) {
	t.Helper()
	got := 0
	for item := range items {
		if item.Outcome != OutcomeOK {
			t.Fatalf("batch item %d: outcome %q: %s", item.Index, item.Outcome, item.Error)
		}
		got++
	}
	if got != want {
		t.Fatalf("batch returned %d/%d items", got, want)
	}
}
