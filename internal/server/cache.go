package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// Key identifies a program in the cache: the SHA-256 of its exact source
// bytes. No normalization is applied — two sources that differ only in
// whitespace are distinct programs (and distinct cache entries).
type Key [sha256.Size]byte

// KeyOf hashes source text.
func KeyOf(src string) Key { return sha256.Sum256([]byte(src)) }

func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// cacheEntry holds one program's frontend result. The once gate gives
// single-flight semantics: when many concurrent requests miss on the same
// new program, exactly one pays for parse+sema (and, lazily via
// core.Program, per-backend codegen); the rest block on the gate and share
// the outcome. Failed programs are cached too, so a client hammering a
// broken program pays the frontend once, not per request.
type cacheEntry struct {
	once sync.Once
	prog *core.Program
	err  error
	// hits counts lookups that found this entry already present — the
	// signal the native tier's promotion policy watches. It restarts at
	// zero if the entry is evicted and recompiled, so promotion measures
	// *sustained* heat, not lifetime popularity.
	hits atomic.Int64
}

// Cache is an LRU of compiled programs keyed by source hash. It bounds
// memory under unbounded distinct programs while serving a hot working set
// without recompilation; hit/miss counters are exposed for the /v1/stats
// endpoint and the lolbench serve experiment.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *lruItem
	items map[Key]*list.Element
	// obs.Counter rather than bare atomics so the server registers the
	// fields directly on its metrics registry (see newServerMetrics).
	hits    obs.Counter
	misses  obs.Counter
	evicted obs.Counter
}

type lruItem struct {
	key   Key
	entry *cacheEntry
}

// NewCache builds an LRU holding at most max programs (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max, ll: list.New(), items: make(map[Key]*list.Element)}
}

// GetOrCompile returns the cached program for src under its precomputed
// key, compiling it on first sight. hit reports whether the entry existed
// before this call (a hit may still block briefly if the first compiler
// is mid-flight); hits is the entry's running hit count, the heat signal
// the native tier's promotion policy consumes.
func (c *Cache) GetOrCompile(key Key, name, src string) (prog *core.Program, err error, hit bool, hits int64) {
	c.mu.Lock()
	var e *cacheEntry
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e = el.Value.(*lruItem).entry
		c.hits.Add(1)
		hits = e.hits.Add(1)
		hit = true
	} else {
		e = &cacheEntry{}
		c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: e})
		c.misses.Add(1)
		for c.ll.Len() > c.max {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruItem).key)
			c.evicted.Add(1)
		}
	}
	c.mu.Unlock()

	// Compile outside the cache lock; concurrent missers on the same key
	// serialize here, everyone else proceeds.
	e.once.Do(func() { e.prog, e.err = core.Parse(name, src) })
	return e.prog, e.err, hit, hits
}

// Stats reports the cache counters and current size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Size:    n,
		Max:     c.max,
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Evicted: c.evicted.Load(),
	}
}

// CacheStats is a snapshot of cache behaviour.
type CacheStats struct {
	Size    int   `json:"size"`
	Max     int   `json:"max"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Evicted int64 `json:"evicted"`
}

// HitRate is hits / (hits + misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
