package server

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrBusy reports that the server is at capacity: every worker slot is in
// use and the wait queue is full. The HTTP layer sheds the request with
// 503 + Retry-After; clients should retry after the hinted delay.
var ErrBusy = errors.New("server: all workers busy and queue full")

// pool bounds concurrent job execution to a fixed number of worker slots
// and hands freed slots to waiters fairly: FIFO within a key, round-robin
// across keys. Keyed by program hash, that fairness means a flood of
// requests for one hot program cannot starve every other program — each
// distinct program gets a turn per round.
type pool struct {
	mu      sync.Mutex
	free    int // slots neither in use nor promised to a waiter
	maxWait int
	// waiting is a gauge so the server exposes queue depth without
	// taking the pool lock on every scrape; it is only written under mu.
	waiting obs.Gauge
	queues  map[Key][]*waiter
	ring    []Key // keys with waiters, in round-robin order
	next    int   // ring cursor
}

type waiter struct {
	ready   chan struct{} // closed when a slot is handed over
	granted bool          // written under pool.mu
}

func newPool(workers, queueDepth int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &pool{free: workers, maxWait: queueDepth, queues: make(map[Key][]*waiter)}
}

// acquire blocks until the caller owns a worker slot, the context is
// cancelled, or the queue is full. Invariant: free > 0 implies no waiters,
// because release hands slots directly to waiters first.
func (p *pool) acquire(ctx context.Context, key Key) error {
	p.mu.Lock()
	if p.free > 0 {
		p.free--
		p.mu.Unlock()
		return nil
	}
	if int(p.waiting.Load()) >= p.maxWait {
		p.mu.Unlock()
		return ErrBusy
	}
	w := &waiter{ready: make(chan struct{})}
	if _, ok := p.queues[key]; !ok {
		p.ring = append(p.ring, key)
	}
	p.queues[key] = append(p.queues[key], w)
	p.waiting.Add(1)
	p.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		defer p.mu.Unlock()
		if w.granted {
			// Lost the race: a slot was handed over concurrently with the
			// cancellation. Pass it on so it is not leaked.
			p.releaseLocked()
		} else {
			p.removeWaiter(key, w)
		}
		return ctx.Err()
	}
}

// release returns a slot, preferring to hand it to the next waiter in
// round-robin key order.
func (p *pool) release() {
	p.mu.Lock()
	p.releaseLocked()
	p.mu.Unlock()
}

func (p *pool) releaseLocked() {
	if len(p.ring) == 0 {
		p.free++
		return
	}
	if p.next >= len(p.ring) {
		p.next = 0
	}
	key := p.ring[p.next]
	q := p.queues[key]
	w := q[0]
	if len(q) == 1 {
		delete(p.queues, key)
		p.ring = append(p.ring[:p.next], p.ring[p.next+1:]...)
		// p.next now indexes the following key (or wraps on the next call).
	} else {
		p.queues[key] = q[1:]
		p.next++
	}
	p.waiting.Add(-1)
	w.granted = true
	close(w.ready)
}

// removeWaiter drops a cancelled waiter from its key queue.
func (p *pool) removeWaiter(key Key, w *waiter) {
	q := p.queues[key]
	for i, cand := range q {
		if cand == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(p.queues, key)
		for i, k := range p.ring {
			if k == key {
				p.ring = append(p.ring[:i], p.ring[i+1:]...)
				if i < p.next {
					p.next--
				}
				break
			}
		}
	} else {
		p.queues[key] = q
	}
	p.waiting.Add(-1)
}

// depth reports current waiters (for stats).
func (p *pool) depth() int { return int(p.waiting.Load()) }

// saturated reports that a job submitted right now would be rejected:
// no free slot and no queue room. A snapshot, not a reservation — the
// batch envelope uses it to shed a whole batch up front instead of
// streaming MaxBatchJobs individual rejections.
func (p *pool) saturated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free == 0 && int(p.waiting.Load()) >= p.maxWait
}
