package core

import (
	"repro/internal/ast"
	"repro/internal/backend"
)

// Audit reports the program's determinism audit (see backend.Audit),
// computed from the AST once on first use and cached. The server's
// result cache gates on it: a job may only be answered from a stored
// result when Audit().DeterministicAt(NP) holds and the run used
// grouped output, so every byte of the response is a pure function of
// the cache key.
func (p *Program) Audit() backend.Audit {
	p.auditOnce.Do(func() { p.audit = auditProgram(p.AST) })
	return p.audit
}

// auditProgram walks the tree and records every construct whose result
// can depend on an un-keyed input or on cross-PE scheduling. The walk
// covers function bodies too (ast.Walk descends into FuncDecl), so a
// GIMMEH buried in a HOW IZ I is found even if no call site is visible
// statically.
func auditProgram(prog *ast.Program) backend.Audit {
	var a backend.Audit
	ast.Walk(prog, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Gimmeh:
			a.ReadsStdin = true
		case *ast.Whatevr, *ast.Whatevar:
			a.UsesRandom = true
		case *ast.Decl:
			if x.Scope == ast.ScopeWe {
				a.UsesShared = true
			}
		case *ast.Lock:
			a.UsesLocks = true
			if x.Action == ast.LockTry {
				a.UsesTrylock = true
			}
		}
		return true
	})
	return a
}
