package core_test

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lolfmt"
	"repro/internal/machine"
)

// ExampleParse shows the minimal embedding: parse a parallel LOLCODE
// program and run it SPMD on 2 PEs with deterministic, rank-ordered output.
func ExampleParse() {
	prog, err := core.Parse("hello.lol", `HAI 1.2
VISIBLE "O HAI FROM " ME " OF " MAH FRENZ
KTHXBYE`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prog.Run(core.RunConfig{Config: interp.Config{
		NP: 2, Stdout: os.Stdout, GroupOutput: true,
	}}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// O HAI FROM 0 OF 2
	// O HAI FROM 1 OF 2
}

// ExampleProgram_Run demonstrates the paper's Figure 2 pattern — a
// one-sided put, a barrier, and a local combine — with a machine cost
// model attached.
func ExampleProgram_Run() {
	prog, err := core.Parse("exchange.lol", `HAI 1.2
WE HAS A a ITZ SRSLY A NUMBR
WE HAS A b ITZ SRSLY A NUMBR
a R SUM OF ME AN 1
HUGZ
I HAS A buddy ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
TXT MAH BFF buddy, UR b R MAH a
HUGZ
VISIBLE SUM OF a AN b
KTHXBYE`)
	if err != nil {
		log.Fatal(err)
	}
	model, err := machine.ByName("parallella")
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(core.RunConfig{Config: interp.Config{
		NP: 2, Model: model, Stdout: os.Stdout, GroupOutput: true,
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("remote puts:", res.Stats.RemotePuts)
	// Output:
	// 3
	// 3
	// remote puts: 2
}

// ExampleFormat shows lolfmt producing the canonical style.
func ExampleFormat() {
	prog, err := core.Parse("messy.lol", "HAI 1.2\nI HAS A x   ITZ  5, VISIBLE x\nKTHXBYE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(lolfmt.Format(prog.AST))
	// Output:
	// HAI 1.2
	// I HAS A x ITZ 5
	// VISIBLE x
	// KTHXBYE
}

// ExampleProgram_Compiled shows reusing a compiled program across runs.
func ExampleProgram_Compiled() {
	prog, err := core.Parse("sum.lol", `HAI 1.2
I HAS A total ITZ A NUMBR
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5
  total R SUM OF total AN i
IM OUTTA YR l
VISIBLE total
KTHXBYE`)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := prog.Compiled()
	if err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	for run := 0; run < 2; run++ {
		if _, err := compiled.Run(interp.Config{NP: 1, Stdout: &out}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(out.String())
	// Output:
	// 10
	// 10
}
