package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lolfmt"
	"repro/internal/progen"
)

func formatSource(t *testing.T, prog *Program) string {
	t.Helper()
	return lolfmt.Format(prog.AST)
}

// TestDifferentialRandomPrograms generates 150 random programs (see
// internal/progen) and requires both backends to agree byte-for-byte on
// their output. This suite caught a real specializer bug during
// development (integer division lowered to float division), so it stays
// aggressive.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 30
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			src := progen.New(int64(seed)).Program(6)
			prog, err := Parse("rand.lol", src)
			if err != nil {
				t.Fatalf("generator produced invalid program: %v\n%s", err, src)
			}
			outs := make(map[Backend]string)
			for _, b := range Backends() {
				var out strings.Builder
				_, err := prog.Run(RunConfig{
					Backend: b,
					Config:  interp.Config{NP: 1, Seed: 9, Stdout: &out, GroupOutput: true},
				})
				if err != nil {
					t.Fatalf("%v: %v\n%s", b, err, src)
				}
				outs[b] = out.String()
			}
			for _, b := range []Backend{BackendVM, BackendCompile} {
				if outs[b] != outs[BackendInterp] {
					t.Errorf("backends disagree:\ninterp: %q\n%v:     %q\n--- program ---\n%s",
						outs[BackendInterp], b, outs[b], src)
				}
			}
		})
	}
}

// TestDifferentialFormattedPrograms closes the loop through the formatter:
// a random program and its lolfmt-canonicalized form must behave
// identically. (Structural equality is tested in internal/lolfmt; this
// adds behavioural equality.)
func TestDifferentialFormattedPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			src := progen.New(int64(1000 + seed)).Program(5)
			run := func(file, source string) string {
				prog, err := Parse(file, source)
				if err != nil {
					t.Fatalf("%s: %v\n%s", file, err, source)
				}
				var out strings.Builder
				if _, err := prog.Run(RunConfig{Config: interp.Config{
					NP: 1, Seed: 4, Stdout: &out, GroupOutput: true,
				}}); err != nil {
					t.Fatalf("%s: %v", file, err)
				}
				return out.String()
			}
			orig := run("orig.lol", src)
			prog, err := Parse("orig.lol", src)
			if err != nil {
				t.Fatal(err)
			}
			formatted := formatSource(t, prog)
			if got := run("formatted.lol", formatted); got != orig {
				t.Errorf("formatted program behaves differently:\noriginal:  %q\nformatted: %q\n--- formatted source ---\n%s",
					orig, got, formatted)
			}
		})
	}
}
