package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/interp"
)

func testdata(name string) string { return filepath.Join("..", "..", "testdata", name) }

func runFile(t *testing.T, name string, np int, backend Backend) string {
	t.Helper()
	prog, err := ParseFile(testdata(name))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	var out strings.Builder
	_, err = prog.Run(RunConfig{
		Config: interp.Config{
			NP:          np,
			Seed:        42,
			Stdout:      &out,
			GroupOutput: true,
		},
		Backend: backend,
	})
	if err != nil {
		t.Fatalf("run %s (np=%d, %v): %v", name, np, backend, err)
	}
	return out.String()
}

var backends = Backends()

// TestLocksListing checks the paper's §VI.B behaviour: with the implicit
// lock, np concurrent increments of PE 0's counter produce exactly np.
func TestLocksListing(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := runFile(t, "locks.lol", 8, b)
			want := "COUNTER IZ 8\n"
			if got != want {
				t.Errorf("output = %q, want %q", got, want)
			}
		})
	}
}

// TestFig2Listing verifies the barrier-synchronized neighbour exchange of
// Figure 2: c = a + b is deterministic because HUGZ orders the puts.
func TestFig2Listing(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := runFile(t, "fig2.lol", 4, b)
			want := "" +
				"PE 0: a=10 b=40 c=50\n" +
				"PE 1: a=20 b=10 c=30\n" +
				"PE 2: a=30 b=20 c=50\n" +
				"PE 3: a=40 b=30 c=70\n"
			if got != want {
				t.Errorf("output =\n%q\nwant\n%q", got, want)
			}
		})
	}
}

// TestRingListing checks §VI.A: every PE ends up with its ring neighbour's
// array after the predicated whole-array copy.
func TestRingListing(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := runFile(t, "ring.lol", 4, b)
			var want strings.Builder
			for pe := 0; pe < 4; pe++ {
				next := (pe + 1) % 4
				fmt.Fprintf(&want, "PE %d HAZ %d THRU %d\n", pe, next*100, next*100+31)
			}
			if got != want.String() {
				t.Errorf("output =\n%q\nwant\n%q", got, want.String())
			}
		})
	}
}

// TestRingRace runs the paper's original §VI.A form, which copies into the
// same symmetric array it reads from. The copy is racy (DESIGN.md §2.5):
// each PE must end with *some* PE's original block, but which one depends
// on scheduling. The test pins down exactly the guaranteed part.
func TestRingRace(t *testing.T) {
	const src = `HAI 1.2
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ
WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32
I HAS A next_pe ITZ A NUMBR AN ITZ SUM OF pe AN 1
next_pe R MOD OF next_pe AN n_pes
IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN 32
  array'Z i R SUM OF PRODUKT OF pe AN 100 AN i
IM OUTTA YR fill
HUGZ
TXT MAH BFF next_pe, MAH array R UR array
HUGZ
VISIBLE array'Z 0
KTHXBYE`
	prog, err := Parse("ring-race.lol", src)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := prog.Run(RunConfig{Config: interp.Config{NP: 4, Stdout: &out, GroupOutput: true}}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Fields(out.String()) {
		switch line {
		case "0", "100", "200", "300":
		default:
			t.Errorf("PE holds %q, which is not any PE's original block", line)
		}
	}
}

// TestTrylockListing runs the §V trylock/lock/unlock fragment.
func TestTrylockListing(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := runFile(t, "trylock.lol", 2, b)
			if !strings.Contains(got, "PE 0 DUN MESIN") || !strings.Contains(got, "PE 1 DUN MESIN") {
				t.Errorf("missing per-PE completion lines in %q", got)
			}
		})
	}
}

// TestNBodyListing runs the paper's full §VI.D 2D n-body program and sanity
// checks its output shape: a greeting plus 32 particle positions per PE.
func TestNBodyListing(t *testing.T) {
	if testing.Short() {
		t.Skip("n-body is heavyweight for -short")
	}
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			np := 2
			got := runFile(t, "nbody.lol", np, b)
			lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
			want := np * (2 + 32)
			if len(lines) != want {
				t.Fatalf("got %d output lines, want %d", len(lines), want)
			}
			if !strings.Contains(got, "HAI ITZ 0 I HAS PARTICLZ 2 MUV") {
				t.Error("missing PE 0 greeting")
			}
			if !strings.Contains(got, "O HAI ITZ 1, MAH PARTICLZ IZ:") {
				t.Error("missing PE 1 trailer")
			}
		})
	}
}

// TestStencil runs the 1D heat-diffusion stencil (halo exchange built from
// the paper's primitives): deterministic arithmetic makes the temperatures
// exact, and physics makes them decay away from PE 0's hot boundary.
func TestStencil(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := runFile(t, "stencil.lol", 4, b)
			want := "" +
				"PE 0 EDGE TEMPZ 82.38 7.84\n" +
				"PE 1 EDGE TEMPZ 4.14 0.02\n" +
				"PE 2 EDGE TEMPZ 0.00 0.00\n" +
				"PE 3 EDGE TEMPZ 0.00 0.00\n"
			if got != want {
				t.Errorf("output =\n%q\nwant\n%q", got, want)
			}
		})
	}
}

// TestFuncsProgram exercises Table I's modular programming: recursion
// (gcd), multiple return paths (clamp), and fall-off-the-end returns.
func TestFuncsProgram(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := runFile(t, "funcs.lol", 1, b)
			want := "21\n9\n0\n5\nO HAI!!!\n"
			if got != want {
				t.Errorf("output = %q, want %q", got, want)
			}
		})
	}
}

// TestSortProgram runs the odd-even transposition sort: after MAH FRENZ
// phases the per-PE values (7*(ME+3)) mod 10 must be globally sorted.
func TestSortProgram(t *testing.T) {
	for _, b := range backends {
		for _, np := range []int{2, 6, 8} {
			b, np := b, np
			t.Run(fmt.Sprintf("%v/np%d", b, np), func(t *testing.T) {
				got := runFile(t, "sort.lol", np, b)
				// Compute the expected sorted sequence.
				vals := make([]int, np)
				for pe := 0; pe < np; pe++ {
					vals[pe] = (7 * (pe + 3)) % 10
				}
				sort.Ints(vals)
				var want strings.Builder
				for pe, v := range vals {
					fmt.Fprintf(&want, "PE %d HAS %d\n", pe, v)
				}
				if got != want.String() {
					t.Errorf("output =\n%q\nwant\n%q", got, want.String())
				}
			})
		}
	}
}

// TestPrimesProgram checks the trial-division sieve: 25 primes below 100.
func TestPrimesProgram(t *testing.T) {
	for _, b := range backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := runFile(t, "primes.lol", 2, b)
			want := "FOUND 25 PRIMEZ\nLAST WUN WUZ 97\nDATS RITE\n"
			if got != want {
				t.Errorf("output = %q, want %q", got, want)
			}
		})
	}
}

// TestBackendsAgree runs every testdata program on all three backends with
// the same seed and requires identical output — the differential test that
// keeps the VM and the compiler honest against the interpreter.
func TestBackendsAgree(t *testing.T) {
	files, err := filepath.Glob(testdata("*.lol"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		name := filepath.Base(f)
		if testing.Short() && name == "nbody.lol" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			np := 4
			ref := runFile(t, name, np, BackendInterp)
			for _, b := range []Backend{BackendVM, BackendCompile} {
				if got := runFile(t, name, np, b); got != ref {
					t.Errorf("%v disagrees with interp:\ninterp: %q\n%v:     %q", b, ref, b, got)
				}
			}
		})
	}
}

// TestParseErrorsSurface checks that broken programs produce diagnostics
// rather than running.
func TestParseErrorsSurface(t *testing.T) {
	if _, err := Parse("bad.lol", "HAI 1.2\nVISIBLE\nKTHXBYE"); err == nil {
		t.Error("VISIBLE with no args should fail")
	}
	if _, err := Parse("bad.lol", "HAI 1.2\nI HAS A x\nI HAS A x\nKTHXBYE"); err == nil {
		t.Error("duplicate declaration should fail")
	}
	if _, err := Parse("bad.lol", "VISIBLE 1\nKTHXBYE"); err == nil {
		t.Error("missing HAI should fail")
	}
}
