// Package core is the public face of the parallel-LOLCODE system: it ties
// the frontend (lexer, parser, sema) to the execution backends — the
// tree-walking interpreter, the bytecode VM, and the closure compiler —
// over the shmem SPMD runtime. Importing core links in all three engines,
// so every backend.Backend is registered and selectable by name.
//
// A minimal session, the library equivalent of the paper's
// `lcc code.lol -o x && coprsh -np 16 ./x`:
//
//	prog, err := core.ParseFile("code.lol")
//	...
//	res, err := prog.Run(core.RunConfig{NP: 16})
package core

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/compile"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/shmem"
	"repro/internal/vm"
)

// Program is a parsed and semantically checked parallel-LOLCODE program.
// The prepared form of each compiling backend is built once on first use
// and cached; a Program is safe for concurrent Runs (internal/server runs
// many jobs against one cached Program).
type Program struct {
	File   string
	Source string
	AST    *ast.Program
	Info   *sema.Info

	compileOnce sync.Once
	compiled    *compile.Program // lazily built by the compile backend
	compiledErr error
	vmOnce      sync.Once
	bytecode    *vm.Program // lazily built by the vm backend
	bytecodeErr error
	auditOnce   sync.Once
	audit       backend.Audit // lazily computed determinism audit
}

// Parse parses and checks LOLCODE source. file is used in diagnostics.
func Parse(file, src string) (*Program, error) {
	tree, err := parser.Parse(file, src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", file, err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", file, err)
	}
	return &Program{File: file, Source: src, AST: tree, Info: info}, nil
}

// ParseFile reads and parses path.
func ParseFile(path string) (*Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, string(src))
}

// Backend selects an execution strategy. The three values cover the
// classic design space of the paper's compiler-vs-interpreter argument;
// each corresponds to a registered backend.Backend of the same name.
type Backend int

const (
	// BackendCompile lowers the AST to closures once and runs those — the
	// production path, analogous to the paper's compiled executables.
	BackendCompile Backend = iota
	// BackendInterp walks the AST directly — the baseline an interpreter
	// represents in the paper's compiler-vs-interpreter argument.
	BackendInterp
	// BackendVM compiles to slot-addressed bytecode and runs a stack VM per
	// PE — the middle point between the two extremes.
	BackendVM
)

func (b Backend) String() string {
	switch b {
	case BackendInterp:
		return "interp"
	case BackendVM:
		return "vm"
	}
	return "compile"
}

// Backends lists every selectable backend, interpreter first (the paper's
// baseline ordering for the E1 comparison).
func Backends() []Backend { return []Backend{BackendInterp, BackendVM, BackendCompile} }

// ParseBackend resolves a backend by name, matching each Backend's own
// String() so the accepted set cannot drift from Backends(); the empty
// string selects the compile backend, the production default.
func ParseBackend(name string) (Backend, error) {
	if name == "" {
		return BackendCompile, nil
	}
	names := make([]string, 0, len(Backends()))
	for _, b := range Backends() {
		if b.String() == name {
			return b, nil
		}
		names = append(names, b.String())
	}
	return BackendCompile, fmt.Errorf("core: unknown backend %q (want one of %v)", name, names)
}

// RunConfig is the execution configuration shared by every backend; it is
// interp.Config with a backend selector.
type RunConfig struct {
	interp.Config
	Backend Backend
}

// Run executes the program SPMD across cfg.NP processing elements. The
// prepared form of each compiling backend is cached on the Program, so
// repeated runs pay compilation once.
func (p *Program) Run(cfg RunConfig) (*interp.Result, error) {
	switch cfg.Backend {
	case BackendInterp:
		return interp.Run(p.Info, cfg.Config)
	case BackendVM:
		vp, err := p.Bytecode()
		if err != nil {
			return nil, err
		}
		return vp.Run(cfg.Config)
	default:
		cp, err := p.Compiled()
		if err != nil {
			return nil, err
		}
		return cp.Run(cfg.Config)
	}
}

// Prepare builds the backend's prepared form ahead of Run — bytecode for
// the VM, closures for the compiler, nothing for the interpreter. Run
// does this lazily anyway; calling Prepare first makes the compilation
// cost observable separately from execution (the server times it as its
// own lifecycle stage). The prepared form is cached, so a second Prepare
// or a following Run pays nothing.
func (p *Program) Prepare(b Backend) error {
	switch b {
	case BackendVM:
		_, err := p.Bytecode()
		return err
	case BackendCompile:
		_, err := p.Compiled()
		return err
	}
	return nil
}

// Compiled returns the closure-compiled form, building it on first use.
// Safe for concurrent callers: compilation happens exactly once.
func (p *Program) Compiled() (*compile.Program, error) {
	p.compileOnce.Do(func() {
		cp, err := compile.Compile(p.Info)
		if err != nil {
			p.compiledErr = fmt.Errorf("compile %s: %w", p.File, err)
			return
		}
		p.compiled = cp
	})
	return p.compiled, p.compiledErr
}

// Bytecode returns the bytecode-compiled form, building it on first use.
// Safe for concurrent callers: compilation happens exactly once.
func (p *Program) Bytecode() (*vm.Program, error) {
	p.vmOnce.Do(func() {
		vp, err := vm.Compile(p.Info)
		if err != nil {
			p.bytecodeErr = fmt.Errorf("vm-compile %s: %w", p.File, err)
			return
		}
		p.bytecode = vp
	})
	return p.bytecode, p.bytecodeErr
}

// NewWorld builds a shmem world sized for this program, for callers that
// want to inspect the world (stats, models) across a run.
func (p *Program) NewWorld(cfg RunConfig) (*shmem.World, error) {
	return interp.NewWorld(p.Info, cfg.Config)
}
