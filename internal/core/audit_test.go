package core_test

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
)

// TestAudit pins the determinism audit's flag extraction and its
// cacheability verdict — the server's result cache is only sound if
// these verdicts are.
func TestAudit(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		want   backend.Audit
		detNP4 bool
	}{
		{
			name:   "pure compute",
			src:    "HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SUM OF x AN 2\nKTHXBYE",
			want:   backend.Audit{},
			detNP4: true,
		},
		{
			name:   "random is keyed by seed",
			src:    "HAI 1.2\nVISIBLE WHATEVR\nVISIBLE WHATEVAR\nKTHXBYE",
			want:   backend.Audit{UsesRandom: true},
			detNP4: true,
		},
		{
			name:   "gimmeh races at np>1",
			src:    "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE",
			want:   backend.Audit{ReadsStdin: true},
			detNP4: false,
		},
		{
			name:   "gimmeh inside a function is still found",
			src:    "HAI 1.2\nHOW IZ I readx\n  I HAS A x\n  GIMMEH x\n  FOUND YR x\nIF U SAY SO\nVISIBLE I IZ readx MKAY\nKTHXBYE",
			want:   backend.Audit{ReadsStdin: true},
			detNP4: false,
		},
		{
			name:   "shared state",
			src:    "HAI 1.2\nWE HAS A c ITZ A NUMBR AN ITZ ME\nHUGZ\nVISIBLE SUM OF c AN MAH FRENZ\nKTHXBYE",
			want:   backend.Audit{UsesShared: true},
			detNP4: false,
		},
		{
			name: "locks",
			src: "HAI 1.2\nWE HAS A x ITZ A NUMBR AN IM SHARIN IT\n" +
				"IM SRSLY MESIN WIF x\nDUN MESIN WIF x\nVISIBLE \"OK\"\nKTHXBYE",
			want:   backend.Audit{UsesShared: true, UsesLocks: true},
			detNP4: false,
		},
		{
			name: "trylock",
			src: "HAI 1.2\nWE HAS A x ITZ A NUMBR AN IM SHARIN IT\n" +
				"IM MESIN WIF x, O RLY?\nYA RLY\n  DUN MESIN WIF x\nOIC\nKTHXBYE",
			want:   backend.Audit{UsesShared: true, UsesLocks: true, UsesTrylock: true},
			detNP4: false,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog, err := core.Parse("audit.lol", tc.src)
			if err != nil {
				t.Fatal(err)
			}
			got := prog.Audit()
			if got != tc.want {
				t.Errorf("Audit() = %+v, want %+v", got, tc.want)
			}
			// NP=1 is always deterministic: one PE cannot race anyone.
			if !got.DeterministicAt(1) {
				t.Error("DeterministicAt(1) = false, want true")
			}
			if got.DeterministicAt(4) != tc.detNP4 {
				t.Errorf("DeterministicAt(4) = %v, want %v", got.DeterministicAt(4), tc.detNP4)
			}
		})
	}
}

// TestDeterministicOutput pins the output-discipline half of the
// contract: grouped mode or a single PE is replayable, live multi-PE
// output is not.
func TestDeterministicOutput(t *testing.T) {
	cases := []struct {
		cfg  backend.Config
		want bool
	}{
		{backend.Config{NP: 1, GroupOutput: false}, true},
		{backend.Config{NP: 4, GroupOutput: true}, true},
		{backend.Config{NP: 4, GroupOutput: false}, false},
	}
	for _, tc := range cases {
		if got := tc.cfg.DeterministicOutput(); got != tc.want {
			t.Errorf("DeterministicOutput(np=%d grouped=%v) = %v, want %v",
				tc.cfg.NP, tc.cfg.GroupOutput, got, tc.want)
		}
	}
}
