package vm

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/value"
)

func compileSrcOpts(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	tree, err := parser.Parse("test.lol", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p, err := CompileOpts(info, opts)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	return p
}

func runProg(t *testing.T, p *Program, np int) string {
	t.Helper()
	var out strings.Builder
	if _, err := p.Run(backend.Config{NP: np, Seed: 7, Stdout: &out, GroupOutput: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// fusionPrograms covers every fused shape plus the control-flow hazards
// the pass must respect: jump targets inside expressions (switch
// fallthrough, short-circuit), predication boundaries, loop heads of both
// the slot-const and slot-slot form, and SRSLY-cast stores.
var fusionPrograms = map[string]string{
	"arith-loop": `HAI 1.2
I HAS A total ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 20
  total R SUM OF total AN PRODUKT OF i AN 3
  total R MOD OF total AN 1000
IM OUTTA YR l
VISIBLE total
KTHXBYE`,

	"slot-slot-head": `HAI 1.2
I HAS A n ITZ 12
I HAS A acc ITZ SRSLY A NUMBAR AN ITZ 0.0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN n
  acc R SUM OF acc AN QUOSHUNT OF 1.0 AN SUM OF i AN 1
IM OUTTA YR l
VISIBLE acc
KTHXBYE`,

	"array-elem-arith": `HAI 1.2
I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 8
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8
  a'Z i R PRODUKT OF i AN i
IM OUTTA YR l
I HAS A sum ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8
  sum R SUM OF sum AN a'Z i
IM OUTTA YR l
VISIBLE sum
KTHXBYE`,

	"srsly-cast-store": `HAI 1.2
I HAS A x ITZ SRSLY A NUMBAR AN ITZ 1.5
I HAS A k ITZ SRSLY A NUMBR AN ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10
  x R PRODUKT OF x AN 1.25
  k R SUM OF k AN 2
IM OUTTA YR l
VISIBLE x
VISIBLE k
KTHXBYE`,

	"wile-head": `HAI 1.2
I HAS A i ITZ 0
IM IN YR l WILE SMALLR i AN 9
  i R SUM OF i AN 2
IM OUTTA YR l
VISIBLE i
KTHXBYE`,

	"switch-fallthrough": `HAI 1.2
I HAS A tally ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 6
  MOD OF i AN 3, WTF?
  OMG 0
    tally R SUM OF tally AN 100
  OMG 1
    tally R SUM OF tally AN 10
    GTFO
  OMG 2
    tally R SUM OF tally AN 1
    GTFO
  OIC
IM OUTTA YR l
VISIBLE tally
KTHXBYE`,

	"short-circuit": `HAI 1.2
I HAS A hits ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10
  BOTH OF SMALLR 2 AN i AN SMALLR i AN 8, O RLY?
  YA RLY
    hits R SUM OF hits AN 1
  OIC
IM OUTTA YR l
VISIBLE hits
KTHXBYE`,

	"predicated-store-loop": `HAI 1.2
WE HAS A counts ITZ LOTZ A NUMBRS AN THAR IZ 4 AN IM SHARIN IT
HUGZ
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4
  TXT MAH BFF MOD OF SUM OF ME AN i AN MAH FRENZ AN STUFF
    UR counts'Z i R SUM OF PRODUKT OF ME AN 10 AN i
  TTYL
IM OUTTA YR l
HUGZ
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4
  VISIBLE SMOOSH ME AN "-" AN counts'Z i MKAY
IM OUTTA YR l
KTHXBYE`,

	"func-calls-in-loop": `HAI 1.2
HOW IZ I triple YR n
  FOUND YR PRODUKT OF n AN 3
IF U SAY SO
I HAS A total ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8
  total R SUM OF total AN I IZ triple YR i MKAY
IM OUTTA YR l
VISIBLE total
KTHXBYE`,
}

// TestFusionDifferential runs every fusion-shape program fused and
// unfused at NP 1 and 4 and requires byte-identical grouped output.
func TestFusionDifferential(t *testing.T) {
	for name, src := range fusionPrograms {
		t.Run(name, func(t *testing.T) {
			fused := compileSrcOpts(t, src, Options{})
			unfused := compileSrcOpts(t, src, Options{DisableFusion: true})
			for _, np := range []int{1, 4} {
				got, want := runProg(t, fused, np), runProg(t, unfused, np)
				if got != want {
					t.Errorf("np=%d fused output %q != unfused %q", np, got, want)
				}
			}
			if len(fused.Main.Code) >= len(unfused.Main.Code) {
				t.Errorf("fusion did not shrink Main: %d >= %d", len(fused.Main.Code), len(unfused.Main.Code))
			}
		})
	}
}

// TestFusionWeightSumInvariant is the static half of the metering
// contract: the step weights of a fused chunk must sum to the pre-fusion
// instruction count, so any executed path is accounted identically.
func TestFusionWeightSumInvariant(t *testing.T) {
	for name, src := range fusionPrograms {
		t.Run(name, func(t *testing.T) {
			fused := compileSrcOpts(t, src, Options{})
			unfused := compileSrcOpts(t, src, Options{DisableFusion: true})
			check := func(f, u *Chunk) {
				var sum int64
				for _, in := range f.Code {
					sum += in.Op.Weight()
				}
				if sum != int64(len(u.Code)) {
					t.Errorf("chunk %s: fused weights sum to %d, unfused has %d instructions", f.Name, sum, len(u.Code))
				}
			}
			check(fused.Main, unfused.Main)
			for i := range fused.Funcs {
				check(fused.Funcs[i], unfused.Funcs[i])
			}
		})
	}
}

// TestFusionPreservesPredication checks the S6 audit property directly:
// fusion must never consume an OpPredPush/OpPredPop, so their counts (and
// thus the predication-stack discipline) are identical pre- and
// post-fusion.
func TestFusionPreservesPredication(t *testing.T) {
	src := fusionPrograms["predicated-store-loop"]
	fused := compileSrcOpts(t, src, Options{})
	unfused := compileSrcOpts(t, src, Options{DisableFusion: true})
	count := func(c *Chunk, op Op) int {
		n := 0
		for _, in := range c.Code {
			if in.Op == op {
				n++
			}
		}
		return n
	}
	for _, op := range []Op{OpPredPush, OpPredPop} {
		if f, u := count(fused.Main, op), count(unfused.Main, op); f != u {
			t.Errorf("%v count changed under fusion: fused %d, unfused %d", op, f, u)
		}
	}
}

// TestFusionRespectsJumpTargets exercises the interior-target refusal on
// a hand-built chunk: a jump into the middle of a fusable sequence must
// block the patterns that would swallow the target, while a pattern
// *starting* at the target may still fuse.
func TestFusionRespectsJumpTargets(t *testing.T) {
	c := &Chunk{
		Name: "synthetic",
		Code: []Instr{
			{Op: OpLoadSlot, A: 1},              // 0: quad/triple blocked by target at 2
			{Op: OpConst, A: 0},                 // 1: pair blocked by target at 2
			{Op: OpBinary, A: int(value.OpSum)}, // 2: jump target; pair with 3 may fuse
			{Op: OpStoreSlot, A: 1},             // 3
			{Op: OpJump, A: 2},                  // 4
			{Op: OpHalt},                        // 5
		},
		Consts: []value.Value{value.NewNumbr(1)},
	}
	fuseChunk(c)
	wantOps := []Op{OpLoadSlot, OpConst, OpFusedBinaryStoreSlot, OpJump, OpHalt}
	if len(c.Code) != len(wantOps) {
		t.Fatalf("fused code length = %d, want %d (%v)", len(c.Code), len(wantOps), c.Code)
	}
	for i, op := range wantOps {
		if c.Code[i].Op != op {
			t.Errorf("code[%d] = %v, want %v", i, c.Code[i].Op, op)
		}
	}
	if c.Code[3].A != 2 {
		t.Errorf("jump target remapped to %d, want 2 (the fused instruction)", c.Code[3].A)
	}
}

// TestFusedJumpTargetsInRange extends the jump-patching invariant to the
// fused branch family: D must land inside the chunk after remapping.
func TestFusedJumpTargetsInRange(t *testing.T) {
	for name, src := range fusionPrograms {
		p := compileSrcOpts(t, src, Options{})
		for _, chunk := range append([]*Chunk{p.Main}, p.Funcs...) {
			for i, in := range chunk.Code {
				switch in.Op {
				case OpJump, OpJumpTrue, OpJumpFalse, OpJumpTrueKeep, OpJumpFalseKeep:
					if in.A < 0 || in.A > len(chunk.Code) {
						t.Errorf("%s: %s[%d]: %v target %d out of range", name, chunk.Name, i, in.Op, in.A)
					}
				case OpFusedSlotJump, OpFusedSlotConstCmpJump, OpFusedSlotSlotCmpJump, OpFusedIncSlotJump:
					if in.D < 0 || in.D > len(chunk.Code) {
						t.Errorf("%s: %s[%d]: %v target %d out of range", name, chunk.Name, i, in.Op, in.D)
					}
				}
			}
		}
	}
}
