package vm

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/value"
)

// Options tune compilation. The zero value is the production
// configuration.
type Options struct {
	// DisableFusion skips the superinstruction peephole pass (fuse.go),
	// leaving the compiler's raw instruction stream. Used by the budget
	// invariant and differential tests to compare fused vs. unfused
	// execution; production callers should never need it.
	DisableFusion bool
}

// Compile lowers a checked program to bytecode: one chunk for the main
// program and one per HOW IZ I function. All symbol resolution uses the
// slot addresses sema attached to the AST, so the emitted code addresses
// variables by frame slot and symmetric-heap index only — the only
// name-keyed lookups left are the ones the language makes dynamic (SRS).
// After each chunk is sealed, the superinstruction pass (fuse.go) rewrites
// the hot fixed shapes into fused opcodes.
func Compile(info *sema.Info) (*Program, error) {
	return CompileOpts(info, Options{})
}

// CompileOpts is Compile with explicit Options.
func CompileOpts(info *sema.Info, opts Options) (*Program, error) {
	p := &Program{
		info:    info,
		funcIdx: make(map[string]int, len(info.Funcs)),
	}
	// Indices first, bodies second, so recursive and forward calls resolve.
	for _, fd := range info.Prog.Funcs {
		fi := info.Funcs[fd.Name]
		if fi == nil || fi.Decl != fd {
			continue
		}
		p.funcIdx[fd.Name] = len(p.Funcs)
		p.Funcs = append(p.Funcs, &Chunk{
			Name:   fd.Name,
			NSlots: len(fi.Scope.Order),
			Params: len(fd.Params),
			Scope:  fi.Scope,
		})
	}
	for _, fd := range info.Prog.Funcs {
		fi := info.Funcs[fd.Name]
		if fi == nil || fi.Decl != fd {
			continue
		}
		c := &compiler{info: info, prog: p, chunk: p.Funcs[p.funcIdx[fd.Name]], scope: fi.Scope, inFunc: true}
		if err := c.stmts(fd.Body); err != nil {
			return nil, err
		}
		c.emit(Instr{Op: OpReturnIT, Pos: fd.Position})
		c.sealConsts()
		if !opts.DisableFusion {
			fuseChunk(c.chunk)
		}
	}
	p.Main = &Chunk{Name: "main", NSlots: len(info.Main.Order), Scope: info.Main}
	c := &compiler{info: info, prog: p, chunk: p.Main, scope: info.Main}
	if err := c.stmts(info.Prog.Body); err != nil {
		return nil, err
	}
	c.emit(Instr{Op: OpHalt, Pos: info.Prog.HaiPos})
	c.sealConsts()
	if !opts.DisableFusion {
		fuseChunk(p.Main)
	}
	return p, nil
}

// compiler emits bytecode for one chunk.
type compiler struct {
	info  *sema.Info
	prog  *Program
	chunk *Chunk
	scope *sema.Scope

	inFunc    bool
	predDepth int        // TXT MAH BFF nesting at the emission point
	ctxs      []breakCtx // innermost-last loop/switch contexts
	consts    map[value.Value]int
}

// breakCtx is one enclosing loop or switch that GTFO can break out of. It
// records the predication depth at entry so a break emitted under deeper
// TXT MAH BFF nesting pops the extra predication entries before jumping —
// the bytecode analog of the interpreter unwinding its pred stack as the
// ctrlBreak signal propagates.
type breakCtx struct {
	breakJumps []int
	predDepth  int
}

func (c *compiler) errf(n ast.Node, format string, args ...any) error {
	return fmt.Errorf("vm: %s: %s", n.Pos(), fmt.Sprintf(format, args...))
}

// emit appends in and returns its index.
func (c *compiler) emit(in Instr) int {
	c.chunk.Code = append(c.chunk.Code, in)
	return len(c.chunk.Code) - 1
}

// emitJump appends a jump with an unresolved target (A = -1).
func (c *compiler) emitJump(op Op, n ast.Node) int {
	return c.emit(Instr{Op: op, A: -1, Pos: n.Pos()})
}

// patch resolves the jump at index at to the next instruction emitted.
func (c *compiler) patch(at int) {
	c.chunk.Code[at].A = len(c.chunk.Code)
}

// konst interns v in the chunk's constant pool.
func (c *compiler) konst(v value.Value) int {
	if c.consts == nil {
		c.consts = make(map[value.Value]int)
	}
	if i, ok := c.consts[v]; ok {
		return i
	}
	c.chunk.Consts = append(c.chunk.Consts, v)
	c.consts[v] = len(c.chunk.Consts) - 1
	return len(c.chunk.Consts) - 1
}

func (c *compiler) sealConsts() { c.consts = nil }

// resolve returns the slot-resolved symbol for a reference.
func (c *compiler) resolve(v *ast.VarRef) (*sema.Symbol, error) {
	if s, ok := v.Sym.(*sema.Symbol); ok {
		return s, nil
	}
	if s, ok := c.scope.Names[v.Name]; ok {
		return s, nil
	}
	return nil, c.errf(v, "unresolved variable %s", v.Name)
}

func remoteFlag(sp ast.Space) int {
	if sp == ast.SpaceUr {
		return flagRemote
	}
	return 0
}

// ---------------------------------------------------------------- statements

func (c *compiler) stmts(ss []ast.Stmt) error {
	for _, s := range ss {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s ast.Stmt) error {
	switch n := s.(type) {
	case *ast.Decl:
		return c.decl(n)

	case *ast.Assign:
		if err := c.expr(n.Value); err != nil {
			return err
		}
		return c.store(n.Target)

	case *ast.CastStmt:
		if err := c.load(n.Target); err != nil {
			return err
		}
		c.emit(Instr{Op: OpCast, A: int(n.Type), Pos: n.Position})
		return c.store(n.Target)

	case *ast.Visible:
		for _, a := range n.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		flags := 0
		if n.NoNewline {
			flags |= visNoNewline
		}
		if n.Invisible {
			flags |= visStderr
		}
		c.emit(Instr{Op: OpVisible, A: len(n.Args), B: flags, Pos: n.Position})
		return nil

	case *ast.Gimmeh:
		c.emit(Instr{Op: OpGimmeh, Pos: n.Position})
		return c.store(n.Target)

	case *ast.ExprStmt:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpStoreSlot, A: 0, Pos: n.Position}) // IT
		return nil

	case *ast.If:
		return c.ifStmt(n)

	case *ast.Switch:
		return c.switchStmt(n)

	case *ast.Loop:
		return c.loop(n)

	case *ast.Gtfo:
		return c.gtfo(n)

	case *ast.FoundYr:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpReturn, Pos: n.Position})
		return nil

	case *ast.FuncDecl:
		return nil // hoisted; compiled as its own chunk

	case *ast.Barrier:
		c.emit(Instr{Op: OpBarrier, Pos: n.Position})
		return nil

	case *ast.Lock:
		return c.lock(n)

	case *ast.TxtStmt:
		return c.predicated(n, n.Target, func() error { return c.stmt(n.Stmt) })

	case *ast.TxtBlock:
		return c.predicated(n, n.Target, func() error { return c.stmts(n.Body) })
	}
	return c.errf(s, "unhandled statement %T", s)
}

func (c *compiler) predicated(n ast.Stmt, target ast.Expr, body func() error) error {
	if err := c.expr(target); err != nil {
		return err
	}
	c.emit(Instr{Op: OpPredPush, Pos: n.Pos()})
	c.predDepth++
	err := body()
	c.predDepth--
	if err != nil {
		return err
	}
	c.emit(Instr{Op: OpPredPop, A: 1, Pos: n.Pos()})
	return nil
}

// gtfo breaks the innermost loop or switch; inside a function with neither
// it is a bare return of NOOB. The predication entries opened since the
// target construct are popped before the jump (slot/pred unwinding).
func (c *compiler) gtfo(n *ast.Gtfo) error {
	if len(c.ctxs) > 0 {
		ctx := &c.ctxs[len(c.ctxs)-1]
		if extra := c.predDepth - ctx.predDepth; extra > 0 {
			c.emit(Instr{Op: OpPredPop, A: extra, Pos: n.Position})
		}
		ctx.breakJumps = append(ctx.breakJumps, c.emitJump(OpJump, n))
		return nil
	}
	if c.inFunc {
		c.emit(Instr{Op: OpConst, A: c.konst(value.NOOB), Pos: n.Position})
		c.emit(Instr{Op: OpReturn, Pos: n.Position})
		return nil
	}
	return c.errf(n, "GTFO outside of a loop, switch, or function")
}

func (c *compiler) decl(n *ast.Decl) error {
	sym, _ := n.Sym.(*sema.Symbol)
	if sym == nil {
		return c.errf(n, "unresolved declaration %s", n.Name)
	}

	if n.IsArray {
		if err := c.expr(n.Size); err != nil {
			return err
		}
		if sym.Kind == sema.SymShared {
			c.emit(Instr{Op: OpDeclArrHeap, A: sym.Heap, S: n.Name, Pos: n.Position})
		} else {
			c.emit(Instr{Op: OpDeclArrSlot, A: sym.Slot, B: int(n.Type), S: n.Name, Pos: n.Position})
		}
		return nil
	}

	if n.Init != nil {
		if err := c.expr(n.Init); err != nil {
			return err
		}
		if sym.Static {
			c.emit(Instr{Op: OpCast, A: int(sym.Type), S: n.Name, Pos: n.Position})
		}
	} else {
		zero := value.NOOB
		if n.Typed {
			z, err := value.Cast(value.NOOB, n.Type)
			if err != nil {
				return c.errf(n, "typed declaration of %s: %v", n.Name, err)
			}
			zero = z
		}
		c.emit(Instr{Op: OpConst, A: c.konst(zero), Pos: n.Position})
	}
	if sym.Kind == sema.SymShared {
		c.emit(Instr{Op: OpInitHeap, A: sym.Heap, Pos: n.Position})
	} else {
		c.emit(Instr{Op: OpStoreSlot, A: sym.Slot, Pos: n.Position})
	}
	return nil
}

func (c *compiler) ifStmt(n *ast.If) error {
	c.emit(Instr{Op: OpLoadSlot, A: 0, Pos: n.Position}) // the implicit IT
	skip := c.emitJump(OpJumpFalse, n)
	if err := c.stmts(n.Then); err != nil {
		return err
	}
	endJumps := []int{c.emitJump(OpJump, n)}
	c.patch(skip)
	for i := range n.Mebbes {
		m := &n.Mebbes[i]
		if err := c.expr(m.Cond); err != nil {
			return err
		}
		// MEBBE sets IT to its condition before testing it.
		c.emit(Instr{Op: OpDup, Pos: m.Position})
		c.emit(Instr{Op: OpStoreSlot, A: 0, Pos: m.Position})
		skip = c.emitJump(OpJumpFalse, n)
		if err := c.stmts(m.Body); err != nil {
			return err
		}
		endJumps = append(endJumps, c.emitJump(OpJump, n))
		c.patch(skip)
	}
	if n.Else != nil {
		if err := c.stmts(n.Else); err != nil {
			return err
		}
	}
	for _, j := range endJumps {
		c.patch(j)
	}
	return nil
}

func (c *compiler) switchStmt(n *ast.Switch) error {
	c.ctxs = append(c.ctxs, breakCtx{predDepth: c.predDepth})

	// Dispatch: compare IT against each OMG literal in order.
	bodyJumps := make([]int, len(n.Cases))
	for i := range n.Cases {
		cs := &n.Cases[i]
		c.emit(Instr{Op: OpLoadSlot, A: 0, Pos: cs.Position})
		if err := c.expr(cs.Lit); err != nil {
			return err
		}
		c.emit(Instr{Op: OpEqual, Pos: cs.Position})
		bodyJumps[i] = c.emitJump(OpJumpTrue, n)
	}
	toDefault := c.emitJump(OpJump, n)

	// Bodies in order; control falls through case to case until GTFO.
	for i := range n.Cases {
		c.chunk.Code[bodyJumps[i]].A = len(c.chunk.Code)
		if err := c.stmts(n.Cases[i].Body); err != nil {
			return err
		}
	}
	// Falling off the last case skips the default arm.
	skipDefault := c.emitJump(OpJump, n)
	c.patch(toDefault)
	if n.Default != nil {
		if err := c.stmts(n.Default); err != nil {
			return err
		}
	}
	c.patch(skipDefault)

	ctx := c.ctxs[len(c.ctxs)-1]
	c.ctxs = c.ctxs[:len(c.ctxs)-1]
	for _, j := range ctx.breakJumps {
		c.patch(j)
	}
	return nil
}

func (c *compiler) loop(n *ast.Loop) error {
	var sym *sema.Symbol
	if n.Var != "" {
		sym, _ = n.Sym.(*sema.Symbol)
		if sym == nil {
			return c.errf(n, "unresolved loop variable %s", n.Var)
		}
	}
	// Implicitly declared counters are restored on exit (the interpreter's
	// saved/restore dance); declared variables keep their final value.
	restore := sym != nil && sym.Kind == sema.SymLoopVar
	if restore {
		c.emit(Instr{Op: OpLoadSlot, A: sym.Slot, Pos: n.Position}) // save
	}
	if sym != nil {
		// The counter always restarts at 0 (lci semantics).
		c.emit(Instr{Op: OpConst, A: c.konst(value.NewNumbr(0)), Pos: n.Position})
		c.emit(Instr{Op: OpStoreSlot, A: sym.Slot, Pos: n.Position})
	}

	start := len(c.chunk.Code)
	exit := -1
	if n.Cond != nil {
		if err := c.expr(n.Cond); err != nil {
			return err
		}
		if n.CondKind == ast.CondTil {
			exit = c.emitJump(OpJumpTrue, n) // TIL: stop once true
		} else {
			exit = c.emitJump(OpJumpFalse, n) // WILE: stop once false
		}
	}

	c.ctxs = append(c.ctxs, breakCtx{predDepth: c.predDepth})
	if err := c.stmts(n.Body); err != nil {
		return err
	}
	ctx := c.ctxs[len(c.ctxs)-1]
	c.ctxs = c.ctxs[:len(c.ctxs)-1]

	if sym != nil {
		step := 1
		if n.Op == ast.LoopNerfin {
			step = -1
		}
		c.emit(Instr{Op: OpIncSlot, A: sym.Slot, B: step, S: n.Var, Pos: n.Position})
	}
	c.emit(Instr{Op: OpJump, A: start, Pos: n.Position})

	if exit >= 0 {
		c.patch(exit)
	}
	for _, j := range ctx.breakJumps {
		c.patch(j)
	}
	if restore {
		c.emit(Instr{Op: OpStoreSlot, A: sym.Slot, Pos: n.Position})
	}
	return nil
}

func (c *compiler) lock(n *ast.Lock) error {
	sym, err := c.resolve(n.Var)
	if err != nil {
		return err
	}
	if sym.Lock < 0 {
		return c.errf(n, "%v on %s without a lock", n.Action, n.Var.Name)
	}
	op := OpLockRelease
	switch n.Action {
	case ast.LockAcquire:
		op = OpLockAcquire
	case ast.LockTry:
		op = OpLockTry
	}
	c.emit(Instr{Op: op, A: sym.Lock, Pos: n.Position})
	return nil
}

// ------------------------------------------------------- loads and stores

// load pushes the current value of a readable target.
func (c *compiler) load(target ast.Expr) error {
	switch n := target.(type) {
	case *ast.VarRef:
		return c.loadVar(n)
	case *ast.Index:
		return c.loadIndex(n)
	case *ast.Srs:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpSrsLoad, B: int(n.Space), Pos: n.Position})
		return nil
	}
	return c.errf(target, "not a readable target")
}

// store pops the top of stack into an assignment target.
func (c *compiler) store(target ast.Expr) error {
	switch n := target.(type) {
	case *ast.VarRef:
		return c.storeVar(n)
	case *ast.Index:
		return c.storeIndex(n)
	case *ast.Srs:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpSrsStore, B: int(n.Space), Pos: n.Position})
		return nil
	}
	return c.errf(target, "cannot assign to this expression")
}

func (c *compiler) loadVar(n *ast.VarRef) error {
	sym, err := c.resolve(n)
	if err != nil {
		return err
	}
	if sym.Kind != sema.SymShared {
		c.emit(Instr{Op: OpLoadSlot, A: sym.Slot, Pos: n.Position})
		return nil
	}
	op := OpLoadHeap
	if sym.IsArray {
		op = OpLoadHeapArr
	}
	c.emit(Instr{Op: op, A: sym.Heap, B: remoteFlag(n.Space), Pos: n.Position})
	return nil
}

func (c *compiler) storeVar(n *ast.VarRef) error {
	sym, err := c.resolve(n)
	if err != nil {
		return err
	}
	if sym.Kind == sema.SymShared {
		if sym.IsArray {
			c.emit(Instr{Op: OpStoreHeapArr, A: sym.Heap, B: remoteFlag(n.Space), S: n.Name, Pos: n.Position})
			return nil
		}
		if sym.Static {
			c.emit(Instr{Op: OpCast, A: int(sym.Type), S: n.Name, Pos: n.Position})
		}
		c.emit(Instr{Op: OpStoreHeap, A: sym.Heap, B: remoteFlag(n.Space), Pos: n.Position})
		return nil
	}
	switch {
	case sym.Static && !sym.IsArray:
		c.emit(Instr{Op: OpStoreSlotCast, A: sym.Slot, B: int(sym.Type), S: n.Name, Pos: n.Position})
	case sym.IsArray:
		c.emit(Instr{Op: OpStoreSlotArr, A: sym.Slot, Pos: n.Position})
	default:
		c.emit(Instr{Op: OpStoreSlot, A: sym.Slot, Pos: n.Position})
	}
	return nil
}

func (c *compiler) loadIndex(n *ast.Index) error {
	sym, err := c.resolve(n.Arr)
	if err != nil {
		return err
	}
	if err := c.expr(n.IndexE); err != nil {
		return err
	}
	if sym.Kind == sema.SymShared {
		c.emit(Instr{Op: OpLoadElem, A: sym.Heap, B: remoteFlag(n.Arr.Space), Pos: n.Position})
	} else {
		c.emit(Instr{Op: OpLoadElemSlot, A: sym.Slot, S: n.Arr.Name, Pos: n.Position})
	}
	return nil
}

func (c *compiler) storeIndex(n *ast.Index) error {
	sym, err := c.resolve(n.Arr)
	if err != nil {
		return err
	}
	if err := c.expr(n.IndexE); err != nil {
		return err
	}
	if sym.Kind == sema.SymShared {
		c.emit(Instr{Op: OpStoreElem, A: sym.Heap, B: remoteFlag(n.Arr.Space), Pos: n.Position})
	} else {
		c.emit(Instr{Op: OpStoreElemSlot, A: sym.Slot, S: n.Arr.Name, Pos: n.Position})
	}
	return nil
}

// --------------------------------------------------------------- expressions

func (c *compiler) expr(e ast.Expr) error {
	switch n := e.(type) {
	case *ast.NumbrLit:
		c.emit(Instr{Op: OpConst, A: c.konst(value.NewNumbr(n.Value)), Pos: n.Position})
	case *ast.NumbarLit:
		c.emit(Instr{Op: OpConst, A: c.konst(value.NewNumbar(n.Value)), Pos: n.Position})
	case *ast.TroofLit:
		c.emit(Instr{Op: OpConst, A: c.konst(value.NewTroof(n.Value)), Pos: n.Position})
	case *ast.NoobLit:
		c.emit(Instr{Op: OpConst, A: c.konst(value.NOOB), Pos: n.Position})
	case *ast.YarnLit:
		return c.yarn(n)
	case *ast.VarRef:
		return c.loadVar(n)
	case *ast.Index:
		return c.loadIndex(n)
	case *ast.BinExpr:
		return c.binExpr(n)
	case *ast.UnExpr:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpUnary, A: int(n.Op), Pos: n.Position})
	case *ast.NaryExpr:
		return c.naryExpr(n)
	case *ast.CastExpr:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpCast, A: int(n.Type), Pos: n.Position})
	case *ast.Call:
		for _, a := range n.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		idx, ok := c.prog.funcIdx[n.Name]
		if !ok {
			return c.errf(n, "I IZ %s: no such function", n.Name)
		}
		c.emit(Instr{Op: OpCall, A: idx, B: len(n.Args), S: n.Name, Pos: n.Position})
	case *ast.Srs:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpSrsLoad, B: int(n.Space), Pos: n.Position})
	case *ast.Me:
		c.emit(Instr{Op: OpMe, Pos: n.Position})
	case *ast.MahFrenz:
		c.emit(Instr{Op: OpMahFrenz, Pos: n.Position})
	case *ast.Whatevr:
		c.emit(Instr{Op: OpWhatevr, Pos: n.Position})
	case *ast.Whatevar:
		c.emit(Instr{Op: OpWhatevar, Pos: n.Position})
	default:
		return c.errf(e, "unhandled expression %T", e)
	}
	return nil
}

func (c *compiler) binExpr(n *ast.BinExpr) error {
	// BOTH OF / EITHER OF short-circuit: evaluate X, coerce to TROOF, and
	// keep it as the result if it decides the answer.
	switch n.Op {
	case value.OpBothOf, value.OpEitherOf:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpTroof, Pos: n.Position})
		op := OpJumpFalseKeep
		if n.Op == value.OpEitherOf {
			op = OpJumpTrueKeep
		}
		end := c.emitJump(op, n)
		c.emit(Instr{Op: OpPop, Pos: n.Position})
		if err := c.expr(n.Y); err != nil {
			return err
		}
		c.emit(Instr{Op: OpTroof, Pos: n.Position})
		c.patch(end)
		return nil
	}
	if err := c.expr(n.X); err != nil {
		return err
	}
	if err := c.expr(n.Y); err != nil {
		return err
	}
	c.emit(Instr{Op: OpBinary, A: int(n.Op), Pos: n.Position})
	return nil
}

func (c *compiler) naryExpr(n *ast.NaryExpr) error {
	switch n.Op {
	case value.OpAllOf, value.OpAnyOf:
		if len(n.Operands) == 0 {
			all := n.Op == value.OpAllOf
			c.emit(Instr{Op: OpConst, A: c.konst(value.NewTroof(all)), Pos: n.Position})
			return nil
		}
		op := OpJumpFalseKeep // ALL OF: first FAIL decides
		if n.Op == value.OpAnyOf {
			op = OpJumpTrueKeep // ANY OF: first WIN decides
		}
		var ends []int
		for i, o := range n.Operands {
			if err := c.expr(o); err != nil {
				return err
			}
			c.emit(Instr{Op: OpTroof, Pos: n.Position})
			if i < len(n.Operands)-1 {
				ends = append(ends, c.emitJump(op, n))
				c.emit(Instr{Op: OpPop, Pos: n.Position})
			}
		}
		for _, j := range ends {
			c.patch(j)
		}
		return nil
	default: // SMOOSH
		for _, o := range n.Operands {
			if err := c.expr(o); err != nil {
				return err
			}
		}
		c.emit(Instr{Op: OpSmoosh, A: len(n.Operands), Pos: n.Position})
		return nil
	}
}

// yarn assembles a YARN literal; :{var} segments compile to slot-resolved
// loads, text segments to constants, joined by OpConcat.
func (c *compiler) yarn(n *ast.YarnLit) error {
	if len(n.Segs) == 0 {
		c.emit(Instr{Op: OpConst, A: c.konst(value.NewYarn("")), Pos: n.Position})
		return nil
	}
	if len(n.Segs) == 1 && n.Segs[0].Var == "" {
		c.emit(Instr{Op: OpConst, A: c.konst(value.NewYarn(n.Segs[0].Text)), Pos: n.Position})
		return nil
	}
	for _, seg := range n.Segs {
		if seg.Var == "" {
			c.emit(Instr{Op: OpConst, A: c.konst(value.NewYarn(seg.Text)), Pos: n.Position})
			continue
		}
		if err := c.loadVar(&ast.VarRef{Position: n.Position, Name: seg.Var}); err != nil {
			return err
		}
	}
	c.emit(Instr{Op: OpConcat, A: len(n.Segs), Pos: n.Position})
	return nil
}
