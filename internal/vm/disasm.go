package vm

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Disassemble renders a compiled program as a readable listing, one chunk
// per section, for `lolrun -dump-bytecode` and the golden tests that pin
// the fusion pass's output. Fused superinstructions print their step
// weight so metering is auditable from the listing alone.
func Disassemble(p *Program) string {
	var b strings.Builder
	disasmChunk(&b, p.Main)
	for _, c := range p.Funcs {
		b.WriteByte('\n')
		disasmChunk(&b, c)
	}
	return b.String()
}

func disasmChunk(b *strings.Builder, c *Chunk) {
	fmt.Fprintf(b, "== %s (code=%d consts=%d slots=%d params=%d)\n",
		c.Name, len(c.Code), len(c.Consts), c.NSlots, c.Params)
	for i := range c.Code {
		in := &c.Code[i]
		line := fmt.Sprintf("%4d  %-28s %s", i, in.Op.String(), disasmOperands(c, in))
		if w := in.Op.Weight(); w > 1 {
			line += fmt.Sprintf(" ; w=%d", w)
		}
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteByte('\n')
	}
}

// konstStr renders a constant-pool entry with its kind, so e.g. NUMBR 1
// and NUMBAR 1.0 stay distinguishable in listings.
func konstStr(c *Chunk, i int) string {
	v := c.Consts[i]
	return fmt.Sprintf("c%d<%s %s>", i, v.Kind(), v.Display())
}

func binOpStr(b int) string { return value.BinOp(b & fuseOpMask).String() }

// senseStr renders a fused branch's sense: the pop-jump it replaced.
func senseStr(b int) string {
	if b&fuseJumpOnTrue != 0 {
		return "if-true"
	}
	return "if-false"
}

func disasmOperands(c *Chunk, in *Instr) string {
	name := func() string {
		if in.S == "" {
			return ""
		}
		return " (" + in.S + ")"
	}
	switch in.Op {
	case OpConst:
		return konstStr(c, in.A)
	case OpLoadSlot, OpStoreSlot, OpStoreSlotArr, OpIncSlot:
		s := fmt.Sprintf("s%d", in.A)
		if in.Op == OpIncSlot {
			s += fmt.Sprintf(" %+d", in.B)
		}
		return s + name()
	case OpStoreSlotCast:
		return fmt.Sprintf("s%d as %s%s", in.A, value.Kind(in.B), name())
	case OpLoadElemSlot, OpStoreElemSlot, OpDeclArrSlot:
		return fmt.Sprintf("s%d%s", in.A, name())
	case OpLoadHeap, OpLoadHeapArr, OpStoreHeap, OpStoreHeapArr,
		OpLoadElem, OpStoreElem, OpDeclArrHeap, OpInitHeap:
		s := fmt.Sprintf("h%d", in.A)
		if in.B&flagRemote != 0 {
			s += " ur"
		}
		return s + name()
	case OpBinary:
		return value.BinOp(in.A).String()
	case OpUnary:
		return value.UnOp(in.A).String()
	case OpCast:
		return value.Kind(in.A).String() + name()
	case OpConcat, OpSmoosh, OpVisible, OpPredPop:
		return fmt.Sprintf("n=%d", in.A)
	case OpJump, OpJumpFalse, OpJumpTrue, OpJumpFalseKeep, OpJumpTrueKeep:
		return fmt.Sprintf("-> %d", in.A)
	case OpLockAcquire, OpLockTry, OpLockRelease:
		return fmt.Sprintf("lock%d", in.A)
	case OpSrsLoad, OpSrsStore:
		return fmt.Sprintf("space=%d", in.B)
	case OpCall:
		return fmt.Sprintf("f%d args=%d%s", in.A, in.B, name())

	case OpFusedConstBinary:
		return fmt.Sprintf("tos %s %s", binOpStr(in.B), konstStr(c, in.A))
	case OpFusedSlotBinary:
		return fmt.Sprintf("tos %s s%d", binOpStr(in.B), in.A)
	case OpFusedSlotConstBinary:
		return fmt.Sprintf("s%d %s %s", in.A, binOpStr(in.B), konstStr(c, in.C))
	case OpFusedSlotSlotBinary:
		return fmt.Sprintf("s%d %s s%d", in.A, binOpStr(in.B), in.C)
	case OpFusedElemSlotBinary:
		return fmt.Sprintf("tos %s s%d[tos]%s", binOpStr(in.B), in.A, name())
	case OpFusedBinaryStoreSlot:
		return fmt.Sprintf("s%d = %s", in.A, binOpStr(in.B))
	case OpFusedBinaryStoreSlotCast:
		return fmt.Sprintf("s%d = %s as %s%s", in.A, binOpStr(in.B), value.Kind(in.C), name())
	case OpFusedSlotJump:
		return fmt.Sprintf("s%d %s -> %d", in.A, senseStr(in.B), in.D)
	case OpFusedSlotConstCmpJump:
		return fmt.Sprintf("s%d %s %s %s -> %d", in.A, binOpStr(in.B), konstStr(c, in.C), senseStr(in.B), in.D)
	case OpFusedSlotSlotCmpJump:
		return fmt.Sprintf("s%d %s s%d %s -> %d", in.A, binOpStr(in.B), in.C, senseStr(in.B), in.D)
	case OpFusedIncSlotJump:
		return fmt.Sprintf("s%d %+d -> %d%s", in.A, in.B, in.D, name())
	case OpFusedSlotConstBinaryStore:
		return fmt.Sprintf("s%d = s%d %s %s", in.D, in.A, binOpStr(in.B), konstStr(c, in.C))
	case OpFusedSlotConstBinaryStoreCast:
		return fmt.Sprintf("s%d = s%d %s %s as %s%s", in.D, in.A, binOpStr(in.B), konstStr(c, in.C), value.Kind(in.B>>fuseKindShift), name())
	case OpFusedSlotSlotBinaryStore:
		return fmt.Sprintf("s%d = s%d %s s%d", in.D, in.A, binOpStr(in.B), in.C)
	case OpFusedSlotSlotBinaryStoreCast:
		return fmt.Sprintf("s%d = s%d %s s%d as %s%s", in.D, in.A, binOpStr(in.B), in.C, value.Kind(in.B>>fuseKindShift), name())
	}
	return ""
}
