// Package vm is the bytecode execution backend: a compact stack VM with
// sema-resolved variable slots, sitting between the tree-walking
// interpreter and the closure compiler in the classic design space the
// paper's compiler-vs-interpreter argument spans. The bytecode compiler
// resolves symbols, operator dispatch and jump targets once; a peephole
// pass (fuse.go) then collapses the hot compiler-emitted shapes — loop
// heads, read-modify-write statements, increment-jump back-edges — into
// fused superinstructions, each carrying the step weight of the sequence
// it replaced so budget metering is unchanged. The VM runs one
// instruction loop per PE over the shmem SPMD runtime with the frame's
// code, constants, slots and instruction pointer cached in locals, and
// arithmetic takes unboxed fast paths on NUMBR/NUMBAR operands, so the
// per-statement cost approaches a single switch dispatch instead of an
// AST type switch. Disassemble (or `lolrun -dump-bytecode`) renders the
// fused form.
package vm

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/sema"
	"repro/internal/shmem"
	"repro/internal/token"
	"repro/internal/value"
)

// engine implements backend.Backend. It recompiles on every Run; callers
// that run one program repeatedly should hold a Program (core.Program
// caches one per engine).
type engine struct{}

func (engine) Name() string { return "vm" }

func (engine) Run(info *sema.Info, cfg backend.Config) (*backend.Result, error) {
	p, err := Compile(info)
	if err != nil {
		return nil, err
	}
	return p.Run(cfg)
}

func init() { backend.Register(engine{}) }

// Program is a compiled bytecode program, safe for concurrent runs.
type Program struct {
	info    *sema.Info
	Main    *Chunk
	Funcs   []*Chunk // indexed by OpCall's A operand
	funcIdx map[string]int
}

const maxCallDepth = 10_000

// Run executes the program under cfg.
func (p *Program) Run(cfg backend.Config) (*backend.Result, error) {
	if cfg.NP <= 0 {
		cfg.NP = 1
	}
	world, err := backend.NewWorld(p.info, cfg)
	if err != nil {
		return nil, err
	}
	return p.RunWorld(cfg, world)
}

// vmYieldInterval is how many instructions a scheduled VM executes
// before yielding its worker. Large enough that the check (one
// predictable branch per dispatch) and the reschedule are noise, small
// enough that a compute-bound PE cannot starve the bounded pool.
const vmYieldInterval = 4096

// RunWorld executes the program on an existing world, one VM per PE.
// The VM keeps its whole execution state in the runner (frames sync ip
// at call, return, and suspension points), so it is the engine that can
// run under the worker scheduler: cfg.Sched selects goroutine-per-PE
// (the differential oracle) or parked continuations on a bounded pool.
func (p *Program) RunWorld(cfg backend.Config, world *shmem.World) (*backend.Result, error) {
	if cfg.UseWorkers(world.N()) {
		return backend.RunSPMDScheduled(cfg, world, func(pe *shmem.PE, io backend.PEIO) func() error {
			r := &runner{
				prog:       p,
				pe:         pe,
				out:        io.Out,
				errw:       io.Err,
				stdin:      io.Stdin,
				stack:      make([]value.Value, 0, 64),
				meter:      backend.NewMeter(&cfg),
				yieldEvery: vmYieldInterval,
			}
			return r.run
		})
	}
	return backend.RunSPMD(cfg, world, func(pe *shmem.PE, io backend.PEIO) error {
		r := &runner{
			prog:  p,
			pe:    pe,
			out:   io.Out,
			errw:  io.Err,
			stdin: io.Stdin,
			stack: make([]value.Value, 0, 64),
			meter: backend.NewMeter(&cfg),
		}
		return r.run()
	})
}

func rerr(pos token.Pos, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*backend.RuntimeError); ok {
		return err
	}
	return &backend.RuntimeError{Pos: pos, Err: err}
}

func rerrf(pos token.Pos, format string, args ...any) error {
	return &backend.RuntimeError{Pos: pos, Err: fmt.Errorf(format, args...)}
}

// frame is one activation record: the chunk being executed, its slot
// array, and the stack/predication watermarks to restore on return.
type frame struct {
	chunk     *Chunk
	ip        int
	slots     []value.Value
	stackBase int
	predBase  int
}

// runner is one PE's virtual machine.
type runner struct {
	prog  *Program
	pe    *shmem.PE
	out   *backend.PEWriter
	errw  *backend.PEWriter
	stdin *backend.SharedReader

	stack  []value.Value
	frames []frame
	pred   []int // TXT MAH BFF predication stack of target PE ids

	// meter enforces the run's deadline and step budget; one VM step is
	// one pre-fusion instruction: plain instructions meter 1, fused
	// superinstructions meter the static weight of the sequence they
	// replaced, so fusion never changes how many steps a budget buys.
	meter backend.Meter

	// yieldEvery > 0 marks a scheduled runner: run() is a resumable step
	// function that suspends at barriers/locks and yields the worker
	// every yieldEvery instructions. 0 (goroutine mode) compiles the
	// yield check down to one never-taken branch.
	yieldEvery int
	sinceYield int
}

func (r *runner) push(v value.Value) { r.stack = append(r.stack, v) }

func (r *runner) pop() value.Value {
	v := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return v
}

// popInt pops an array index.
func (r *runner) popInt(pos token.Pos) (int, error) {
	i, err := r.pop().ToNumbr()
	if err != nil {
		return 0, rerr(pos, fmt.Errorf("array index: %w", err))
	}
	return int(i), nil
}

// predTarget returns the active predication target.
func (r *runner) predTarget(pos token.Pos) (int, error) {
	if len(r.pred) == 0 {
		return 0, rerrf(pos, "UR used outside of TXT MAH BFF predication")
	}
	return r.pred[len(r.pred)-1], nil
}

// target resolves which PE a heap access addresses.
func (r *runner) target(in *Instr) (pe int, remote bool, err error) {
	if in.B&flagRemote != 0 {
		t, err := r.predTarget(in.Pos)
		return t, true, err
	}
	return r.pe.ID(), false, nil
}

// run executes the main chunk to completion.
//
// The inner loop keeps the dispatch state — code, constant pool, slot
// array and instruction pointer — in locals rather than reaching through
// the frame on every instruction; the frame is synchronized only at call
// and return boundaries. Combined with the fused superinstructions (which
// read their operands straight from immediates instead of the value
// stack) this is what closes most of the gap to the closure compiler on
// arithmetic-heavy loops.
// Under the worker scheduler run doubles as the PE's resumable step
// function: the first call lazily pushes the main frame, a suspension
// syncs fr.ip and returns the *Suspend unwrapped, and the next call
// restores the dispatch locals from the top frame — re-executing the
// suspended instruction, which consumes the wakeup (see shmem.Suspend).
func (r *runner) run() error {
	if r.frames == nil {
		r.frames = append(r.frames, frame{
			chunk: r.prog.Main,
			slots: make([]value.Value, r.prog.Main.NSlots),
		})
	}
	fr := &r.frames[len(r.frames)-1]
	code := fr.chunk.Code
	consts := fr.chunk.Consts
	slots := fr.slots
	ip := fr.ip
	for {
		if r.yieldEvery > 0 {
			if r.sinceYield++; r.sinceYield >= r.yieldEvery {
				r.sinceYield = 0
				fr.ip = ip
				return shmem.SuspendYield()
			}
		}
		in := &code[ip]
		ip++
		if err := r.meter.StepN(opWeights[in.Op]); err != nil {
			return rerr(in.Pos, err)
		}
		switch in.Op {
		case OpNop:

		case OpConst:
			r.push(consts[in.A])
		case OpLoadSlot:
			r.push(slots[in.A])
		case OpStoreSlot:
			slots[in.A] = r.pop()
		case OpIncSlot:
			if v := slots[in.A]; v.Kind() == value.Numbr {
				slots[in.A] = value.NewNumbr(v.Numbr() + int64(in.B))
			} else {
				cur, err := v.ToNumbr()
				if err != nil {
					return rerr(in.Pos, fmt.Errorf("loop variable %s: %w", in.S, err))
				}
				slots[in.A] = value.NewNumbr(cur + int64(in.B))
			}
		case OpBinary:
			y, x := r.pop(), r.pop()
			v, err := binFast(value.BinOp(in.A), x, y)
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(v)
		case OpJump:
			ip = in.A
		case OpJumpFalse:
			if !r.pop().ToTroof() {
				ip = in.A
			}
		case OpJumpTrue:
			if r.pop().ToTroof() {
				ip = in.A
			}

		case OpFusedConstBinary:
			t := len(r.stack) - 1
			v, err := binFast(value.BinOp(in.B), r.stack[t], consts[in.A])
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.stack[t] = v
		case OpFusedSlotBinary:
			t := len(r.stack) - 1
			v, err := binFast(value.BinOp(in.B), r.stack[t], slots[in.A])
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.stack[t] = v
		case OpFusedSlotConstBinary:
			v, err := binFast(value.BinOp(in.B), slots[in.A], consts[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(v)
		case OpFusedSlotSlotBinary:
			v, err := binFast(value.BinOp(in.B), slots[in.A], slots[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(v)
		case OpFusedElemSlotBinary:
			i, err := r.popInt(in.Pos)
			if err != nil {
				return err
			}
			av := slots[in.A]
			if av.Kind() != value.ArrayK {
				return rerrf(in.Pos, "%s is not an array", in.S)
			}
			y, err := av.Array().GetChecked(i)
			if err != nil {
				return rerr(in.Pos, err)
			}
			t := len(r.stack) - 1
			v, err := binFast(value.BinOp(in.B), r.stack[t], y)
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.stack[t] = v
		case OpFusedBinaryStoreSlot:
			t := len(r.stack) - 2
			v, err := binFast(value.BinOp(in.B), r.stack[t], r.stack[t+1])
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.stack = r.stack[:t]
			slots[in.A] = v
		case OpFusedBinaryStoreSlotCast:
			t := len(r.stack) - 2
			v, err := binFast(value.BinOp(in.B), r.stack[t], r.stack[t+1])
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.stack = r.stack[:t]
			if v.Kind() != value.Kind(in.C) {
				cv, err := value.Cast(v, value.Kind(in.C))
				if err != nil {
					return rerr(in.Pos, fmt.Errorf("assigning to SRSLY %s %s: %w", value.Kind(in.C), in.S, err))
				}
				v = cv
			}
			slots[in.A] = v
		case OpFusedSlotJump:
			if slots[in.A].ToTroof() == (in.B&fuseJumpOnTrue != 0) {
				ip = in.D
			}
		case OpFusedSlotConstCmpJump:
			res, err := truthyBin(value.BinOp(in.B&fuseOpMask), slots[in.A], consts[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			if res == (in.B&fuseJumpOnTrue != 0) {
				ip = in.D
			}
		case OpFusedSlotSlotCmpJump:
			res, err := truthyBin(value.BinOp(in.B&fuseOpMask), slots[in.A], slots[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			if res == (in.B&fuseJumpOnTrue != 0) {
				ip = in.D
			}
		case OpFusedSlotConstBinaryStore:
			v, err := binFast(value.BinOp(in.B), slots[in.A], consts[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			slots[in.D] = v
		case OpFusedSlotConstBinaryStoreCast:
			v, err := binFast(value.BinOp(in.B&fuseOpMask), slots[in.A], consts[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			if k := value.Kind(in.B >> fuseKindShift); v.Kind() != k {
				cv, err := value.Cast(v, k)
				if err != nil {
					return rerr(in.Pos, fmt.Errorf("assigning to SRSLY %s %s: %w", k, in.S, err))
				}
				v = cv
			}
			slots[in.D] = v
		case OpFusedSlotSlotBinaryStore:
			v, err := binFast(value.BinOp(in.B), slots[in.A], slots[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			slots[in.D] = v
		case OpFusedSlotSlotBinaryStoreCast:
			v, err := binFast(value.BinOp(in.B&fuseOpMask), slots[in.A], slots[in.C])
			if err != nil {
				return rerr(in.Pos, err)
			}
			if k := value.Kind(in.B >> fuseKindShift); v.Kind() != k {
				cv, err := value.Cast(v, k)
				if err != nil {
					return rerr(in.Pos, fmt.Errorf("assigning to SRSLY %s %s: %w", k, in.S, err))
				}
				v = cv
			}
			slots[in.D] = v
		case OpFusedIncSlotJump:
			if v := slots[in.A]; v.Kind() == value.Numbr {
				slots[in.A] = value.NewNumbr(v.Numbr() + int64(in.B))
			} else {
				cur, err := v.ToNumbr()
				if err != nil {
					return rerr(in.Pos, fmt.Errorf("loop variable %s: %w", in.S, err))
				}
				slots[in.A] = value.NewNumbr(cur + int64(in.B))
			}
			ip = in.D

		case OpPop:
			r.stack = r.stack[:len(r.stack)-1]
		case OpDup:
			r.push(r.stack[len(r.stack)-1])
		case OpStoreSlotCast:
			cv, err := value.Cast(r.pop(), value.Kind(in.B))
			if err != nil {
				return rerr(in.Pos, fmt.Errorf("assigning to SRSLY %s %s: %w", value.Kind(in.B), in.S, err))
			}
			slots[in.A] = cv
		case OpStoreSlotArr:
			v := r.pop()
			if cur := slots[in.A]; v.Kind() == value.ArrayK && cur.Kind() == value.ArrayK {
				// Whole-array assignment copies contents (value semantics).
				if err := cur.Array().CopyFrom(v.Array()); err != nil {
					return rerr(in.Pos, err)
				}
			} else {
				slots[in.A] = v
			}

		case OpLoadHeap:
			if in.B&flagRemote != 0 {
				t, err := r.predTarget(in.Pos)
				if err != nil {
					return err
				}
				v, err := r.pe.Get(t, in.A)
				if err != nil {
					return rerr(in.Pos, err)
				}
				r.push(v)
			} else {
				v, err := r.pe.LocalGet(in.A)
				if err != nil {
					return rerr(in.Pos, err)
				}
				r.push(v)
			}
		case OpLoadHeapArr:
			t, _, err := r.target(in)
			if err != nil {
				return err
			}
			// Whole-array read: a deep copy, as on real one-sided hardware.
			arr, err := r.pe.GetArray(t, in.A)
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(value.NewArray(arr))
		case OpStoreHeap:
			t, _, err := r.target(in)
			if err != nil {
				return err
			}
			if err := r.pe.Put(t, in.A, r.pop()); err != nil {
				return rerr(in.Pos, err)
			}
		case OpStoreHeapArr:
			t, _, err := r.target(in)
			if err != nil {
				return err
			}
			v := r.pop()
			if v.Kind() != value.ArrayK {
				return rerrf(in.Pos, "cannot assign %s to array %s", v.Kind(), in.S)
			}
			if err := r.pe.PutArray(t, in.A, v.Array()); err != nil {
				return rerr(in.Pos, err)
			}
		case OpLoadElem:
			i, err := r.popInt(in.Pos)
			if err != nil {
				return err
			}
			t, remote, err := r.target(in)
			if err != nil {
				return err
			}
			var v value.Value
			if remote {
				v, err = r.pe.GetElem(t, in.A, i)
			} else {
				v, err = r.pe.LocalGetElem(in.A, i)
			}
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(v)
		case OpStoreElem:
			i, err := r.popInt(in.Pos)
			if err != nil {
				return err
			}
			v := r.pop()
			t, remote, err := r.target(in)
			if err != nil {
				return err
			}
			if remote {
				err = r.pe.PutElem(t, in.A, i, v)
			} else {
				err = r.pe.LocalSetElem(in.A, i, v)
			}
			if err != nil {
				return rerr(in.Pos, err)
			}
		case OpLoadElemSlot:
			i, err := r.popInt(in.Pos)
			if err != nil {
				return err
			}
			av := slots[in.A]
			if av.Kind() != value.ArrayK {
				return rerrf(in.Pos, "%s is not an array", in.S)
			}
			v, err := av.Array().GetChecked(i)
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(v)
		case OpStoreElemSlot:
			i, err := r.popInt(in.Pos)
			if err != nil {
				return err
			}
			v := r.pop()
			av := slots[in.A]
			if av.Kind() != value.ArrayK {
				return rerrf(in.Pos, "%s is not an array", in.S)
			}
			if err := av.Array().Set(i, v); err != nil {
				return rerr(in.Pos, err)
			}
		case OpDeclArrSlot:
			size, err := r.popSize(in)
			if err != nil {
				return err
			}
			arr, err := value.NewArrayOf(value.Kind(in.B), size)
			if err != nil {
				return rerr(in.Pos, err)
			}
			slots[in.A] = value.NewArray(arr)
		case OpDeclArrHeap:
			size, err := r.popSize(in)
			if err != nil {
				return err
			}
			if err := r.pe.AllocArray(in.A, size); err != nil {
				return rerr(in.Pos, err)
			}
		case OpInitHeap:
			if err := r.pe.InitScalar(in.A, r.pop()); err != nil {
				return rerr(in.Pos, err)
			}

		case OpUnary:
			t := len(r.stack) - 1
			v, err := unFast(value.UnOp(in.A), r.stack[t])
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.stack[t] = v
		case OpCast:
			v, err := value.Cast(r.pop(), value.Kind(in.A))
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(v)
		case OpTroof:
			r.push(value.NewTroof(r.pop().ToTroof()))
		case OpEqual:
			y, x := r.pop(), r.pop()
			r.push(value.NewTroof(value.Equal(x, y)))
		case OpConcat:
			vs := r.stack[len(r.stack)-in.A:]
			var b strings.Builder
			for _, v := range vs {
				b.WriteString(v.Display())
			}
			r.stack = r.stack[:len(r.stack)-in.A]
			r.push(value.NewYarn(b.String()))
		case OpSmoosh:
			vs := make([]value.Value, in.A)
			copy(vs, r.stack[len(r.stack)-in.A:])
			r.stack = r.stack[:len(r.stack)-in.A]
			v, err := value.Nary(value.OpSmoosh, vs)
			if err != nil {
				return rerr(in.Pos, err)
			}
			r.push(v)

		case OpJumpFalseKeep:
			if !r.stack[len(r.stack)-1].ToTroof() {
				ip = in.A
			}
		case OpJumpTrueKeep:
			if r.stack[len(r.stack)-1].ToTroof() {
				ip = in.A
			}

		case OpVisible:
			vs := r.stack[len(r.stack)-in.A:]
			var b strings.Builder
			for _, v := range vs {
				b.WriteString(v.Display())
			}
			r.stack = r.stack[:len(r.stack)-in.A]
			if in.B&visNoNewline == 0 {
				b.WriteByte('\n')
			}
			if in.B&visStderr != 0 {
				r.errw.WriteString(b.String())
			} else {
				r.out.WriteString(b.String())
			}
		case OpGimmeh:
			line, _ := r.stdin.Line()
			r.push(value.NewYarn(line))

		case OpBarrier:
			if err := r.pe.Barrier(); err != nil {
				if shmem.AsSuspend(err) != nil {
					// Park: rewind to this instruction and refund its
					// charge; the resumed step re-executes it (re-charging)
					// and the re-entered Barrier consumes the wakeup.
					r.meter.Refund(opWeights[in.Op])
					fr.ip = ip - 1
					return err
				}
				return rerr(in.Pos, err)
			}
		case OpLockAcquire:
			if err := r.pe.SetLock(in.A); err != nil {
				if shmem.AsSuspend(err) != nil {
					r.meter.Refund(opWeights[in.Op])
					fr.ip = ip - 1
					return err
				}
				return rerr(in.Pos, err)
			}
			slots[0] = value.NewTroof(true) // IT
		case OpLockTry:
			ok, err := r.pe.TestLock(in.A)
			if err != nil {
				return rerr(in.Pos, err)
			}
			slots[0] = value.NewTroof(ok) // IT
		case OpLockRelease:
			if err := r.pe.ClearLock(in.A); err != nil {
				return rerr(in.Pos, err)
			}
		case OpPredPush:
			n, err := r.pop().ToNumbr()
			if err != nil {
				return rerr(in.Pos, fmt.Errorf("TXT MAH BFF target: %w", err))
			}
			if n < 0 || n >= int64(r.pe.NPEs()) {
				return rerrf(in.Pos, "TXT MAH BFF %d: no such friend (MAH FRENZ is %d)", n, r.pe.NPEs())
			}
			r.pred = append(r.pred, int(n))
		case OpPredPop:
			r.pred = r.pred[:len(r.pred)-in.A]

		case OpMe:
			r.push(value.NewNumbr(int64(r.pe.ID())))
		case OpMahFrenz:
			r.push(value.NewNumbr(int64(r.pe.NPEs())))
		case OpWhatevr:
			// rand()-shaped: a non-negative 31-bit integer.
			r.push(value.NewNumbr(r.pe.Rand().Int63n(1 << 31)))
		case OpWhatevar:
			r.push(value.NewNumbar(r.pe.Rand().Float64()))

		case OpSrsLoad:
			sym, err := r.srsResolve(fr, in)
			if err != nil {
				return err
			}
			v, err := r.readSym(fr, sym, ast.Space(in.B), in.Pos)
			if err != nil {
				return err
			}
			r.push(v)
		case OpSrsStore:
			sym, err := r.srsResolve(fr, in)
			if err != nil {
				return err
			}
			if err := r.writeSym(fr, sym, ast.Space(in.B), in.Pos, r.pop()); err != nil {
				return err
			}

		case OpCall:
			if len(r.frames) > maxCallDepth {
				return rerrf(in.Pos, "I IZ %s: call depth exceeds %d (runaway recursion?)", in.S, maxCallDepth)
			}
			cf := r.prog.Funcs[in.A]
			fslots := make([]value.Value, cf.NSlots)
			// Slot 0 is IT; parameters follow in declaration order.
			copy(fslots[1:1+in.B], r.stack[len(r.stack)-in.B:])
			r.stack = r.stack[:len(r.stack)-in.B]
			// Sync the caller's ip before append may move the frame array.
			fr.ip = ip
			r.frames = append(r.frames, frame{
				chunk:     cf,
				slots:     fslots,
				stackBase: len(r.stack),
				predBase:  len(r.pred),
			})
			fr = &r.frames[len(r.frames)-1]
			code, consts, slots, ip = fr.chunk.Code, fr.chunk.Consts, fr.slots, 0
		case OpReturn:
			v := r.pop()
			fr = r.unwind(v)
			code, consts, slots, ip = fr.chunk.Code, fr.chunk.Consts, fr.slots, fr.ip
		case OpReturnIT:
			fr = r.unwind(slots[0])
			code, consts, slots, ip = fr.chunk.Code, fr.chunk.Consts, fr.slots, fr.ip

		case OpHalt:
			return nil

		default:
			return rerrf(in.Pos, "vm: unhandled opcode %v", in.Op)
		}
	}
}

// unwind pops the current frame, restores the caller's stack and
// predication watermarks, and pushes the return value.
func (r *runner) unwind(ret value.Value) *frame {
	top := r.frames[len(r.frames)-1]
	r.frames = r.frames[:len(r.frames)-1]
	r.stack = r.stack[:top.stackBase]
	r.pred = r.pred[:top.predBase]
	r.push(ret)
	return &r.frames[len(r.frames)-1]
}

// popSize pops an array size, rejecting negatives.
func (r *runner) popSize(in *Instr) (int, error) {
	n, err := r.pop().ToNumbr()
	if err != nil {
		return 0, rerr(in.Pos, fmt.Errorf("array size of %s: %w", in.S, err))
	}
	if n < 0 {
		return 0, rerrf(in.Pos, "array size of %s is negative (%d)", in.S, n)
	}
	return int(n), nil
}

// srsResolve pops a YARN name and resolves it in the frame's scope — the
// one lookup the language forces to stay dynamic.
func (r *runner) srsResolve(fr *frame, in *Instr) (*sema.Symbol, error) {
	name, err := r.pop().ToYarn()
	if err != nil {
		return nil, rerr(in.Pos, fmt.Errorf("SRS: %w", err))
	}
	sym, ok := fr.chunk.Scope.Names[name]
	if !ok {
		return nil, rerrf(in.Pos, "SRS %q: no such variable", name)
	}
	return sym, nil
}

// readSym reads a runtime-resolved symbol (SRS), mirroring the
// interpreter's readVar.
func (r *runner) readSym(fr *frame, sym *sema.Symbol, sp ast.Space, pos token.Pos) (value.Value, error) {
	if sym.Kind != sema.SymShared {
		return fr.slots[sym.Slot], nil
	}
	t, remote := r.pe.ID(), false
	if sp == ast.SpaceUr {
		var err error
		if t, err = r.predTarget(pos); err != nil {
			return value.NOOB, err
		}
		remote = true
	}
	if sym.IsArray {
		arr, err := r.pe.GetArray(t, sym.Heap)
		if err != nil {
			return value.NOOB, rerr(pos, err)
		}
		return value.NewArray(arr), nil
	}
	if !remote {
		v, err := r.pe.LocalGet(sym.Heap)
		return v, rerr(pos, err)
	}
	v, err := r.pe.Get(t, sym.Heap)
	return v, rerr(pos, err)
}

// writeSym writes a runtime-resolved symbol (SRS), mirroring the
// interpreter's writeVar.
func (r *runner) writeSym(fr *frame, sym *sema.Symbol, sp ast.Space, pos token.Pos, v value.Value) error {
	if sym.Static && !sym.IsArray {
		cv, err := value.Cast(v, sym.Type)
		if err != nil {
			return rerr(pos, fmt.Errorf("assigning to SRSLY %s %s: %w", sym.Type, sym.Name, err))
		}
		v = cv
	}
	if sym.Kind != sema.SymShared {
		if sym.IsArray && v.Kind() == value.ArrayK {
			if cur := fr.slots[sym.Slot]; cur.Kind() == value.ArrayK {
				return rerr(pos, cur.Array().CopyFrom(v.Array()))
			}
		}
		fr.slots[sym.Slot] = v
		return nil
	}
	t := r.pe.ID()
	if sp == ast.SpaceUr {
		var err error
		if t, err = r.predTarget(pos); err != nil {
			return err
		}
	}
	if sym.IsArray {
		if v.Kind() != value.ArrayK {
			return rerrf(pos, "cannot assign %s to array %s", v.Kind(), sym.Name)
		}
		return rerr(pos, r.pe.PutArray(t, sym.Heap, v.Array()))
	}
	return rerr(pos, r.pe.Put(t, sym.Heap, v))
}
