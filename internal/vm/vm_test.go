package vm

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/parser"
	"repro/internal/sema"
)

func compileSrc(t *testing.T, src string) *Program {
	t.Helper()
	tree, err := parser.Parse("test.lol", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p, err := Compile(info)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	return p
}

func runSrc(t *testing.T, src string, np int) string {
	t.Helper()
	p := compileSrc(t, src)
	var out strings.Builder
	if _, err := p.Run(backend.Config{NP: np, Seed: 7, Stdout: &out, GroupOutput: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// TestJumpPatchingResolved checks the compile-time invariant behind every
// control-flow construct: no emitted jump may keep its -1 placeholder, and
// every target must land inside the chunk.
func TestJumpPatchingResolved(t *testing.T) {
	p := compileSrc(t, `HAI 1.2
HOW IZ I pick YR n
  n, WTF?
  OMG 1
    FOUND YR "wan"
  OMG 2
    VISIBLE "fallin"
  OMG 3
    GTFO
  OMGWTF
    FOUND YR "lots"
  OIC
  FOUND YR "fell out"
IF U SAY SO
I HAS A total ITZ 0
IM IN YR outer UPPIN YR i TIL BOTH SAEM i AN 3
  IM IN YR inner UPPIN YR j TIL BOTH SAEM j AN 3
    BOTH SAEM j AN 2, O RLY?
    YA RLY
      GTFO
    MEBBE BOTH SAEM j AN 1
      total R SUM OF total AN 10
    NO WAI
      total R SUM OF total AN 1
    OIC
  IM OUTTA YR inner
IM OUTTA YR outer
VISIBLE total
VISIBLE I IZ pick YR 1 MKAY
KTHXBYE`)
	for _, chunk := range append([]*Chunk{p.Main}, p.Funcs...) {
		for i, in := range chunk.Code {
			switch in.Op {
			case OpJump, OpJumpTrue, OpJumpFalse, OpJumpTrueKeep, OpJumpFalseKeep:
				if in.A < 0 || in.A > len(chunk.Code) {
					t.Errorf("%s[%d]: %v has unpatched or out-of-range target %d",
						chunk.Name, i, in.Op, in.A)
				}
			}
		}
	}
}

// TestLoopBreakAndCounter pins the loop protocol: counters restart at 0,
// GTFO breaks only the innermost construct, and a declared counter keeps
// its post-loop value (3 iterations x 11 = the mixed MEBBE arithmetic).
func TestLoopBreakAndCounter(t *testing.T) {
	got := runSrc(t, `HAI 1.2
I HAS A total ITZ 0
IM IN YR outer UPPIN YR i TIL BOTH SAEM i AN 3
  IM IN YR inner UPPIN YR j TIL BOTH SAEM j AN 100
    BOTH SAEM j AN 2, O RLY?
    YA RLY
      GTFO
    NO WAI
      total R SUM OF total AN 1
    OIC
  IM OUTTA YR inner
IM OUTTA YR outer
VISIBLE total
KTHXBYE`, 1)
	if got != "6\n" {
		t.Errorf("output = %q, want %q (2 inner iterations x 3 outer)", got, "6\n")
	}
}

// TestNestedImplicitCounterRestored checks the slot save/restore the
// compiler emits around implicit loop counters: an inner loop reusing the
// outer loop's implicit counter name runs on the same slot but must
// restore the outer value on exit, or the outer loop never terminates.
func TestNestedImplicitCounterRestored(t *testing.T) {
	got := runSrc(t, `HAI 1.2
IM IN YR outer UPPIN YR i TIL BOTH SAEM i AN 2
  VISIBLE "outer " i
  IM IN YR inner UPPIN YR i TIL BOTH SAEM i AN 3
    VISIBLE "inner " i
  IM OUTTA YR inner
IM OUTTA YR outer
KTHXBYE`, 1)
	want := "outer 0\ninner 0\ninner 1\ninner 2\nouter 1\ninner 0\ninner 1\ninner 2\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

// TestBreakUnwindsPredication is the pred-stack analog of slot unwinding:
// a GTFO inside TXT MAH BFF ... TTYL inside a loop must pop the
// predication entry before jumping out, or the next UR reference would
// address a stale target. The program breaks out of a predicated block on
// PE 1, then re-predicates on PE 0 and reads UR x; the compiler must have
// emitted a pred.pop before the break jump.
func TestBreakUnwindsPredication(t *testing.T) {
	src := `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
x R PRODUKT OF SUM OF ME AN 1 AN 7
HUGZ
I HAS A got ITZ 0
IM IN YR tryin UPPIN YR i TIL BOTH SAEM i AN 4
  TXT MAH BFF 1 AN STUFF
    GTFO
  TTYL
IM OUTTA YR tryin
TXT MAH BFF 0, got R UR x
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE got
OIC
KTHXBYE`
	got := runSrc(t, src, 2)
	if got != "7\n" {
		t.Errorf("output = %q, want %q (UR x must address PE 0 after the break)", got, "7\n")
	}

	// And the emitted bytecode must carry the unwinding explicitly: a
	// pred.pop immediately before a jump that is not the block's own
	// balanced pop.
	p := compileSrc(t, src)
	found := false
	for i, in := range p.Main.Code {
		if in.Op == OpPredPop && i+1 < len(p.Main.Code) && p.Main.Code[i+1].Op == OpJump {
			found = true
			break
		}
	}
	if !found {
		t.Error("no pred.pop emitted before the break jump out of the TXT block")
	}
}

// TestFunctionFrames checks call/return through the frame machinery:
// recursion, GTFO-as-return (NOOB), and fall-off-the-end returning IT.
func TestFunctionFrames(t *testing.T) {
	got := runSrc(t, `HAI 1.2
HOW IZ I fib YR n
  SMALLR n AN 2, O RLY?
  YA RLY
    FOUND YR n
  OIC
  FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY AN I IZ fib YR DIFF OF n AN 2 MKAY
IF U SAY SO
HOW IZ I bail YR n
  GTFO
IF U SAY SO
HOW IZ I implicit YR n
  PRODUKT OF n AN n
IF U SAY SO
VISIBLE I IZ fib YR 10 MKAY
VISIBLE I IZ bail YR 1 MKAY
VISIBLE I IZ implicit YR 6 MKAY
KTHXBYE`, 1)
	want := "55\nNOOB\n36\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

// TestConstPoolInterned checks constants are deduplicated per chunk.
func TestConstPoolInterned(t *testing.T) {
	p := compileSrc(t, `HAI 1.2
VISIBLE SUM OF 5 AN SUM OF 5 AN SUM OF 5 AN 5
KTHXBYE`)
	fives := 0
	for _, c := range p.Main.Consts {
		if c.Kind().String() == "NUMBR" && c.Numbr() == 5 {
			fives++
		}
	}
	if fives != 1 {
		t.Errorf("constant 5 interned %d times, want 1", fives)
	}
}

// TestEngineRegistered checks the vm engine is selectable by name.
func TestEngineRegistered(t *testing.T) {
	eng, err := backend.ByName("vm")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "vm" {
		t.Errorf("engine name = %q, want vm", eng.Name())
	}
}
