package vm_test

// The step-budget invariant tests live outside package vm so they can use
// the E1 kernel generators (internal/experiments imports internal/core,
// which imports internal/vm).

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/experiments"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/vm"
)

func compileKernel(t *testing.T, src string, opts vm.Options) *vm.Program {
	t.Helper()
	tree, err := parser.Parse("kernel.lol", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p, err := vm.CompileOpts(info, opts)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	return p
}

func runBudget(p *vm.Program, np int, budget int64) (string, error) {
	var out strings.Builder
	_, err := p.Run(backend.Config{NP: np, Seed: 11, Stdout: &out, GroupOutput: true, StepBudget: budget})
	return out.String(), err
}

// minCompletingBudget binary-searches the smallest step budget under
// which the program completes. Budget kills are monotone in the limit, so
// the search is sound.
func minCompletingBudget(t *testing.T, p *vm.Program, np int, hi int64) int64 {
	t.Helper()
	if _, err := runBudget(p, np, hi); err != nil {
		t.Fatalf("kernel does not complete under budget %d: %v", hi, err)
	}
	lo := int64(1)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if _, err := runBudget(p, np, mid); err == nil {
			hi = mid
		} else if !errors.Is(err, backend.ErrStepBudget) {
			t.Fatalf("budget %d: unexpected error class: %v", mid, err)
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// TestStepBudgetInvariantFusedVsUnfused is the S2 acceptance test: for
// each E1 kernel, the smallest completing budget must be IDENTICAL with
// fusion on and off — i.e. fused superinstructions meter exactly the
// pre-fusion step count — and at that boundary both forms produce the
// same bodies as the unlimited run, while one step less kills both.
func TestStepBudgetInvariantFusedVsUnfused(t *testing.T) {
	kernels := map[string]struct {
		src string
		np  int
	}{
		"montecarlo": {experiments.GenMonteCarlo(60, 2), 2},
		"nbody":      {experiments.GenNBody(4, 1), 2},
	}
	for name, k := range kernels {
		t.Run(name, func(t *testing.T) {
			fused := compileKernel(t, k.src, vm.Options{})
			unfused := compileKernel(t, k.src, vm.Options{DisableFusion: true})

			const hi = int64(1) << 22
			sFused := minCompletingBudget(t, fused, k.np, hi)
			sUnfused := minCompletingBudget(t, unfused, k.np, hi)
			if sFused != sUnfused {
				t.Fatalf("smallest completing budget diverges: fused %d, unfused %d", sFused, sUnfused)
			}

			wantOut, err := runBudget(unfused, k.np, 0) // unlimited
			if err != nil {
				t.Fatalf("unlimited run: %v", err)
			}
			for _, budget := range []int64{sFused, sFused + 1, sFused + 1000} {
				for who, p := range map[string]*vm.Program{"fused": fused, "unfused": unfused} {
					out, err := runBudget(p, k.np, budget)
					if err != nil {
						t.Errorf("%s at budget %d: unexpected kill: %v", who, budget, err)
					} else if out != wantOut {
						t.Errorf("%s at budget %d: body diverges from unlimited run", who, budget)
					}
				}
			}
			for _, budget := range []int64{1, 2, sFused / 2, sFused - 1} {
				if budget < 1 {
					continue
				}
				for who, p := range map[string]*vm.Program{"fused": fused, "unfused": unfused} {
					if _, err := runBudget(p, k.np, budget); !errors.Is(err, backend.ErrStepBudget) {
						t.Errorf("%s at budget %d: error = %v, want ErrStepBudget", who, budget, err)
					}
				}
			}
		})
	}
}
