package vm

// The superinstruction pass. The bytecode compiler emits expressions in a
// handful of fixed shapes — slot load + constant + binary op, loop heads
// of the form load/load/compare/branch, binary op straight into a slot
// store — and the dispatch loop pays per-instruction overhead (meter
// check, switch, stack traffic) for each piece. fuseChunk runs after a
// chunk is sealed and rewrites those shapes into single fused opcodes
// with all immediates baked in, cutting both dispatch count and
// value-stack push/pop pairs on the hot arithmetic paths.
//
// Safety rules, by construction:
//
//   - A pattern never fuses across a jump target: interior instructions
//     of a match must not be targeted by any jump, or a branch landing
//     mid-pattern would skip the fused prefix. The FIRST instruction of a
//     pattern may be a target (that is the common loop-head case).
//   - Patterns contain only straight-line value ops (loads, constants,
//     binary ops, slot stores) and the branch that terminates them — never
//     OpPredPush/OpPredPop, so fusion cannot cross a TXT MAH BFF
//     predication boundary, and never the Keep-variant short-circuit
//     jumps, whose stack discipline differs mid-expression.
//   - Each fused opcode carries a static step weight equal to the number
//     of instructions it replaced (see opWeights), so backend.Meter
//     accounting is preserved: a step budget of N still permits exactly N
//     pre-fusion instructions. The one observable difference is kill
//     *placement*: a budget kill that lands inside a fused block reports
//     the block's first instruction and executes none of it, where the
//     unfused program may have executed a partial prefix before dying.
//     For these patterns the prefix has no output effect, so kill/no-kill
//     outcomes and all produced output are identical; only a runtime
//     error coinciding with the last weight-1 steps of the budget could
//     classify differently (budget vs. runtime error), which the
//     conformance harness treats as out of scope for budget-killed runs.
//
// After rewriting, every surviving jump target is remapped through the
// old-index → new-index table; fused branches keep their target in D so
// remapping never confuses a slot/const immediate in A with a code index.

// fuseChunk rewrites c.Code in place with superinstructions.
func fuseChunk(c *Chunk) {
	code := c.Code
	if len(code) == 0 {
		return
	}
	// Jump targets, pre-fusion. patch() can resolve a jump to len(code)
	// (fall off the end of a construct at the chunk tail), so the table is
	// one wider than the code.
	isTarget := make([]bool, len(code)+1)
	for i := range code {
		switch code[i].Op {
		case OpJump, OpJumpFalse, OpJumpTrue, OpJumpFalseKeep, OpJumpTrueKeep:
			isTarget[code[i].A] = true
		}
	}

	out := make([]Instr, 0, len(code))
	remap := make([]int, len(code)+1)
	for i := 0; i < len(code); {
		n, fused := matchFusion(code, i, isTarget)
		for k := 0; k < n; k++ {
			remap[i+k] = len(out)
		}
		if n > 1 {
			out = append(out, fused)
		} else {
			out = append(out, code[i])
		}
		i += n
	}
	remap[len(code)] = len(out)

	for i := range out {
		in := &out[i]
		switch in.Op {
		case OpJump, OpJumpFalse, OpJumpTrue, OpJumpFalseKeep, OpJumpTrueKeep:
			in.A = remap[in.A]
		case OpFusedSlotJump, OpFusedSlotConstCmpJump, OpFusedSlotSlotCmpJump, OpFusedIncSlotJump:
			in.D = remap[in.D]
		}
	}
	c.Code = out
}

// jumpSense maps the two pop-variant conditional jumps to the branch-sense
// bit a fused jump packs into B; -1 for anything else (including the Keep
// variants, which never fuse).
func jumpSense(op Op) int {
	switch op {
	case OpJumpFalse:
		return 0
	case OpJumpTrue:
		return fuseJumpOnTrue
	}
	return -1
}

// matchFusion tries the patterns starting at code[i], longest first, and
// returns the number of instructions consumed plus the replacement
// (meaningful only when n > 1). Interior instructions of a candidate must
// not be jump targets.
func matchFusion(code []Instr, i int, isTarget []bool) (int, Instr) {
	clear := func(n int) bool {
		if i+n > len(code) {
			return false
		}
		for k := 1; k < n; k++ {
			if isTarget[i+k] {
				return false
			}
		}
		return true
	}
	in0 := &code[i]
	switch in0.Op {
	case OpLoadSlot:
		if clear(4) {
			i1, i2, i3 := &code[i+1], &code[i+2], &code[i+3]
			if i2.Op == OpBinary {
				if s := jumpSense(i3.Op); s >= 0 {
					// The canonical loop head: slot ⊕ const (or slot ⊕ slot),
					// branch on the comparison.
					if i1.Op == OpConst {
						return 4, Instr{Op: OpFusedSlotConstCmpJump, A: in0.A, B: i2.A | s, C: i1.A, D: i3.A, Pos: in0.Pos}
					}
					if i1.Op == OpLoadSlot {
						return 4, Instr{Op: OpFusedSlotSlotCmpJump, A: in0.A, B: i2.A | s, C: i1.A, D: i3.A, Pos: in0.Pos}
					}
				}
				// Whole statements of the form `dst R x ⊕ y` with slot/const
				// operands: no value-stack traffic at all.
				if i3.Op == OpStoreSlot {
					if i1.Op == OpConst {
						return 4, Instr{Op: OpFusedSlotConstBinaryStore, A: in0.A, B: i2.A, C: i1.A, D: i3.A, Pos: in0.Pos}
					}
					if i1.Op == OpLoadSlot {
						return 4, Instr{Op: OpFusedSlotSlotBinaryStore, A: in0.A, B: i2.A, C: i1.A, D: i3.A, Pos: in0.Pos}
					}
				}
				if i3.Op == OpStoreSlotCast {
					if i1.Op == OpConst {
						return 4, Instr{Op: OpFusedSlotConstBinaryStoreCast, A: in0.A, B: i2.A | i3.B<<fuseKindShift, C: i1.A, D: i3.A, S: i3.S, Pos: in0.Pos}
					}
					if i1.Op == OpLoadSlot {
						return 4, Instr{Op: OpFusedSlotSlotBinaryStoreCast, A: in0.A, B: i2.A | i3.B<<fuseKindShift, C: i1.A, D: i3.A, S: i3.S, Pos: in0.Pos}
					}
				}
			}
		}
		if clear(3) {
			i1, i2 := &code[i+1], &code[i+2]
			if i2.Op == OpBinary {
				if i1.Op == OpConst {
					return 3, Instr{Op: OpFusedSlotConstBinary, A: in0.A, B: i2.A, C: i1.A, Pos: in0.Pos}
				}
				if i1.Op == OpLoadSlot {
					return 3, Instr{Op: OpFusedSlotSlotBinary, A: in0.A, B: i2.A, C: i1.A, Pos: in0.Pos}
				}
			}
		}
		if clear(2) {
			i1 := &code[i+1]
			if i1.Op == OpBinary {
				return 2, Instr{Op: OpFusedSlotBinary, A: in0.A, B: i1.A, Pos: in0.Pos}
			}
			if s := jumpSense(i1.Op); s >= 0 {
				// O RLY? and friends: load IT (or any slot), branch on it.
				return 2, Instr{Op: OpFusedSlotJump, A: in0.A, B: s, D: i1.A, Pos: in0.Pos}
			}
		}
	case OpConst:
		if clear(2) && code[i+1].Op == OpBinary {
			return 2, Instr{Op: OpFusedConstBinary, A: in0.A, B: code[i+1].A, Pos: in0.Pos}
		}
	case OpLoadElemSlot:
		if clear(2) && code[i+1].Op == OpBinary {
			return 2, Instr{Op: OpFusedElemSlotBinary, A: in0.A, B: code[i+1].A, S: in0.S, Pos: in0.Pos}
		}
	case OpBinary:
		if clear(2) {
			i1 := &code[i+1]
			if i1.Op == OpStoreSlot {
				return 2, Instr{Op: OpFusedBinaryStoreSlot, A: i1.A, B: in0.A, Pos: in0.Pos}
			}
			if i1.Op == OpStoreSlotCast {
				return 2, Instr{Op: OpFusedBinaryStoreSlotCast, A: i1.A, B: in0.A, C: i1.B, S: i1.S, Pos: in0.Pos}
			}
		}
	case OpIncSlot:
		// The loop back-edge: bump the counter and jump to the head.
		if clear(2) && code[i+1].Op == OpJump {
			return 2, Instr{Op: OpFusedIncSlotJump, A: in0.A, B: in0.B, D: code[i+1].A, S: in0.S, Pos: in0.Pos}
		}
	}
	return 1, Instr{}
}
