package vm_test

// Worker-scheduler stress tests: kill classification with PEs parked at
// every blocking point, spurious-wakeup injection, and the high-NP
// goroutine-footprint bound that is the scheduler's reason to exist.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/shmem"
	"repro/internal/vm"
)

// spinBarrierSrc: PE 0 spins forever while every other PE is parked in
// HUGZ with no arrival ever coming. The only way out is a kill.
const spinBarrierSrc = `HAI 1.2
BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A going ITZ A NUMBR AN ITZ 1
  IM IN YR spin UPPIN YR k TIL BOTH SAEM going AN 0
    going R 1
  IM OUTTA YR spin
NO WAI
  HUGZ
OIC
KTHXBYE`

// spinLockSrc: PE 0 takes the global lock and spins forever holding it;
// the other PEs park either in the lock acquire or in the final HUGZ,
// so a kill must drain both wait structures.
const spinLockSrc = `HAI 1.2
WE HAS A l ITZ SRSLY A NUMBR AN IM SHARIN IT
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  IM SRSLY MESIN WIF l
  I HAS A going ITZ A NUMBR AN ITZ 1
  IM IN YR spin UPPIN YR k TIL BOTH SAEM going AN 0
    going R 1
  IM OUTTA YR spin
  DUN MESIN WIF l
NO WAI
  IM SRSLY MESIN WIF l
  DUN MESIN WIF l
OIC
HUGZ
KTHXBYE`

// TestSchedKillClassificationParity kills programs whose PEs are parked
// in HUGZ and in lock acquires — via step budget, context deadline, and
// explicit cancel — in both scheduler modes, with the
// sched.spurious.unpark failpoint injecting spurious wakeups throughout
// the worker runs. The outcome classification (errors.Is identity) must
// match goroutine mode exactly, and after every worker-mode kill the
// scheduler gauges must have drained to zero with parks and unparks
// balanced: no lost wakeup, no double resume, no PE left behind.
func TestSchedKillClassificationParity(t *testing.T) {
	defer faultinject.Reset()
	if err := faultinject.Arm("sched.spurious.unpark"); err != nil {
		t.Fatal(err)
	}

	kills := []struct {
		name  string
		setup func(cfg *backend.Config) (context.CancelFunc, error)
		class error
	}{
		{
			name: "budget",
			setup: func(cfg *backend.Config) (context.CancelFunc, error) {
				cfg.StepBudget = 50_000
				return func() {}, backend.ErrStepBudget
			},
		},
		{
			name: "timeout",
			setup: func(cfg *backend.Config) (context.CancelFunc, error) {
				ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
				cfg.Context = ctx
				return cancel, context.DeadlineExceeded
			},
		},
		{
			name: "cancelled",
			setup: func(cfg *backend.Config) (context.CancelFunc, error) {
				ctx, cancel := context.WithCancel(context.Background())
				cfg.Context = ctx
				time.AfterFunc(50*time.Millisecond, cancel)
				return cancel, context.Canceled
			},
		},
	}
	progs := map[string]*vm.Program{
		"barrier": compileKernel(t, spinBarrierSrc, vm.Options{}),
		"lock":    compileKernel(t, spinLockSrc, vm.Options{}),
	}
	const np = 8
	for pname, p := range progs {
		for _, kill := range kills {
			t.Run(pname+"/"+kill.name, func(t *testing.T) {
				var classes [2]error
				for i, mode := range []backend.SchedMode{backend.SchedGoroutines, backend.SchedWorkers} {
					cfg := backend.Config{NP: np, Seed: 7, GroupOutput: true, Sched: mode}
					cancel, class := kill.setup(&cfg)
					res, err := p.Run(cfg)
					cancel()
					if err == nil {
						t.Fatalf("%v mode: run completed, want a %s kill", mode, kill.name)
					}
					if !errors.Is(err, class) {
						t.Fatalf("%v mode: error %v does not classify as %v", mode, err, class)
					}
					classes[i] = class
					if mode == backend.SchedWorkers {
						s := res.Stats.Sched
						if s.Mode != "workers" {
							t.Fatalf("scheduler did not run in worker mode: %+v", s)
						}
						if s.Parked != 0 || s.Ready != 0 || s.Running != 0 {
							t.Errorf("scheduler gauges not drained after kill: %+v", s)
						}
						if s.Parks != s.Unparks {
							t.Errorf("parks %d != unparks %d after kill", s.Parks, s.Unparks)
						}
					}
				}
				if classes[0] != classes[1] {
					t.Errorf("modes classified differently: %v vs %v", classes[0], classes[1])
				}
			})
		}
	}
	if faultinject.Fired("sched.spurious.unpark") == 0 {
		t.Error("failpoint armed for every worker run but never fired — no park was actually stressed")
	}
}

// TestSchedMonteCarloHighNP is the footprint acceptance test: the
// NP=4096 Monte Carlo workload must complete on the vm tier in worker
// mode with the live goroutine count bounded by the worker pool — not
// O(NP) — while producing output byte-identical to goroutine-per-PE
// mode. The sampler polls runtime.NumGoroutine through the worker run;
// goroutine mode necessarily peaks above NP, so the two bounds straddle
// and the comparison cannot pass vacuously.
func TestSchedMonteCarloHighNP(t *testing.T) {
	np := 4096
	if testing.Short() {
		np = 1024
	}
	p := compileKernel(t, experiments.GenMonteCarlo(10, np), vm.Options{})
	run := func(mode backend.SchedMode) (string, *backend.Result) {
		var out strings.Builder
		res, err := p.Run(backend.Config{NP: np, Seed: 2017, Stdout: &out, GroupOutput: true, Sched: mode})
		if err != nil {
			t.Fatalf("%v mode: %v", mode, err)
		}
		return out.String(), res
	}
	outG, _ := run(backend.SchedGoroutines)

	base := runtime.NumGoroutine()
	var maxG atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g := int64(runtime.NumGoroutine()); g > maxG.Load() {
				maxG.Store(g)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	outW, res := run(backend.SchedWorkers)
	close(stop)
	wg.Wait()

	if outW != outG {
		t.Errorf("worker-mode output diverges from goroutine mode at np=%d", np)
	}
	s := res.Stats.Sched
	workers := shmem.DefaultSchedWorkers(np)
	if s.Mode != "workers" || s.Workers != workers {
		t.Errorf("scheduler config: %+v, want workers mode with %d workers", s, workers)
	}
	if s.MaxRunning > workers {
		t.Errorf("max concurrent steps %d exceeds pool size %d", s.MaxRunning, workers)
	}
	if s.Parked != 0 || s.Ready != 0 || s.Running != 0 || s.Parks != s.Unparks {
		t.Errorf("scheduler gauges not drained: %+v", s)
	}
	// Generous slack for test-runtime goroutines; the point is the order
	// of magnitude: ~workers, not ~NP.
	limit := int64(base + workers + 64)
	if got := maxG.Load(); got > limit || got > int64(np)/4 {
		t.Errorf("peak goroutines %d (base %d) — worker mode must stay bounded by the pool (limit %d), not O(NP=%d)", got, base, limit, np)
	}
}
