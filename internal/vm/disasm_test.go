package vm_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/vm"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDisassembleGoldenMonteCarlo pins the fusion pass's output on an E1
// kernel: any change to the superinstruction set, the pattern matcher or
// the operand encoding shows up as a readable diff against the golden
// listing. Regenerate with: go test ./internal/vm -run Golden -update
func TestDisassembleGoldenMonteCarlo(t *testing.T) {
	p := compileKernel(t, experiments.GenMonteCarlo(60, 2), vm.Options{})
	got := vm.Disassemble(p)

	golden := filepath.Join("testdata", "montecarlo_disasm.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("disassembly drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
