package vm

import (
	"fmt"

	"repro/internal/sema"
	"repro/internal/token"
	"repro/internal/value"
)

// Op is a bytecode operation. The VM is a value-stack machine: operands
// named in the comments are popped from (and results pushed onto) the
// evaluation stack; A and B are immediate operands baked into the
// instruction at compile time.
type Op uint8

const (
	OpNop Op = iota

	// --- stack and constants
	OpConst // push Consts[A]
	OpPop   // drop the top of stack
	OpDup   // duplicate the top of stack

	// --- frame slots (sema-resolved lexical addresses)
	OpLoadSlot      // push slots[A]
	OpStoreSlot     // slots[A] = pop
	OpStoreSlotCast // slots[A] = cast(pop, Kind(B)); S names the SRSLY var
	OpStoreSlotArr  // array-aware store into slots[A]: copy into an existing array
	OpIncSlot       // slots[A] = NUMBR(slots[A]) + B (B is +1 or -1); S names the loop var

	// --- symmetric heap (PGAS); B&flagRemote selects the predication target
	OpLoadHeap     // push scalar heap[A] (local get, or remote get of pred target)
	OpLoadHeapArr  // push a deep copy of array heap[A] (GetArray)
	OpStoreHeap    // put pop into heap[A] of the target PE
	OpStoreHeapArr // put array pop into heap[A] of the target PE; S names the array
	OpLoadElem     // i=pop; push heap[A][i] of the target PE
	OpStoreElem    // i=pop, v=pop; heap[A][i] of the target PE = v
	OpLoadElemSlot // i=pop; push slots[A][i]; S names the array
	OpStoreElemSlot
	OpDeclArrSlot // size=pop; slots[A] = new array of Kind(B); S names the array
	OpDeclArrHeap // size=pop; allocate heap[A] symmetrically; S names the array
	OpInitHeap    // v=pop; initialize scalar heap[A]

	// --- operators
	OpBinary // y=pop, x=pop; push Binary(BinOp(A), x, y)
	OpUnary  // x=pop; push Unary(UnOp(A), x)
	OpCast   // x=pop; push Cast(x, Kind(A)); S gives the error context
	OpTroof  // x=pop; push TROOF(x.ToTroof())
	OpEqual  // y=pop, x=pop; push TROOF(Equal(x, y))  (WTF? case dispatch)
	OpConcat // pop A values; push the YARN of their Displays (:{} interpolation)
	OpSmoosh // pop A values; push Nary(OpSmoosh, ...)

	// --- control flow (A is the absolute jump target, patched at compile)
	OpJump
	OpJumpFalse     // pop; jump when not truthy
	OpJumpTrue      // pop; jump when truthy
	OpJumpFalseKeep // peek; jump when not truthy, keeping the value (short-circuit)
	OpJumpTrueKeep  // peek; jump when truthy, keeping the value (short-circuit)

	// --- I/O
	OpVisible // pop A values; write their Displays; B flags: visNoNewline|visStderr
	OpGimmeh  // push the next stdin line as a YARN

	// --- parallel extensions (paper Table II)
	OpBarrier     // HUGZ
	OpLockAcquire // IM SRSLY MESIN WIF lock A; sets IT to WIN
	OpLockTry     // IM MESIN WIF lock A; sets IT to the outcome
	OpLockRelease // DUN MESIN WIF lock A
	OpPredPush    // pop a PE rank, validate, push onto the predication stack
	OpPredPop     // pop A entries off the predication stack

	// --- builtins
	OpMe       // push the PE id
	OpMahFrenz // push the PE count
	OpWhatevr  // push a random NUMBR
	OpWhatevar // push a random NUMBAR in [0,1)

	// --- dynamic symbol access (SRS); B is the ast.Space
	OpSrsLoad  // name=pop; resolve in the frame scope and read
	OpSrsStore // name=pop, v=pop; resolve and write

	// --- calls
	OpCall     // call Funcs[A] with B arguments popped from the stack; S names it
	OpReturn   // v=pop; unwind the frame and push v on the caller's stack
	OpReturnIT // return the frame's IT (fall-off-the-end semantics)
	OpHalt     // end of the main chunk
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpPop: "pop", OpDup: "dup",
	OpLoadSlot: "load.slot", OpStoreSlot: "store.slot",
	OpStoreSlotCast: "store.slot.cast", OpStoreSlotArr: "store.slot.arr",
	OpIncSlot:  "inc.slot",
	OpLoadHeap: "load.heap", OpLoadHeapArr: "load.heap.arr",
	OpStoreHeap: "store.heap", OpStoreHeapArr: "store.heap.arr",
	OpLoadElem: "load.elem", OpStoreElem: "store.elem",
	OpLoadElemSlot: "load.elem.slot", OpStoreElemSlot: "store.elem.slot",
	OpDeclArrSlot: "decl.arr.slot", OpDeclArrHeap: "decl.arr.heap",
	OpInitHeap: "init.heap",
	OpBinary:   "binary", OpUnary: "unary", OpCast: "cast", OpTroof: "troof",
	OpEqual: "equal", OpConcat: "concat", OpSmoosh: "smoosh",
	OpJump: "jump", OpJumpFalse: "jump.false", OpJumpTrue: "jump.true",
	OpJumpFalseKeep: "jump.false.keep", OpJumpTrueKeep: "jump.true.keep",
	OpVisible: "visible", OpGimmeh: "gimmeh",
	OpBarrier: "barrier", OpLockAcquire: "lock.acquire", OpLockTry: "lock.try",
	OpLockRelease: "lock.release", OpPredPush: "pred.push", OpPredPop: "pred.pop",
	OpMe: "me", OpMahFrenz: "mahfrenz", OpWhatevr: "whatevr", OpWhatevar: "whatevar",
	OpSrsLoad: "srs.load", OpSrsStore: "srs.store",
	OpCall: "call", OpReturn: "return", OpReturnIT: "return.it", OpHalt: "halt",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// OpVisible B flags.
const (
	visNoNewline = 1 << iota
	visStderr
)

// flagRemote in B marks a heap access as addressing the predication target
// (a UR reference) instead of the local PE.
const flagRemote = 1

// Instr is one decoded instruction. The VM trades the byte-packed encoding
// of a production VM for direct struct access: no operand decoding on the
// hot path, and every instruction carries its source position for errors.
type Instr struct {
	Op   Op
	A, B int
	S    string // symbol name for error messages; usually empty
	Pos  token.Pos
}

func (in Instr) String() string {
	s := fmt.Sprintf("%-16s A=%d B=%d", in.Op, in.A, in.B)
	if in.S != "" {
		s += " S=" + in.S
	}
	return s
}

// Chunk is one compiled frame body: the main program or one HOW IZ I
// function. NSlots is the frame size computed by sema's slot resolution;
// Scope is retained only for the dynamic name lookups SRS and :{var}
// interpolation need at runtime.
type Chunk struct {
	Name   string
	Code   []Instr
	Consts []value.Value
	NSlots int
	Params int
	Scope  *sema.Scope
}
