package vm

import (
	"fmt"

	"repro/internal/sema"
	"repro/internal/token"
	"repro/internal/value"
)

// Op is a bytecode operation. The VM is a value-stack machine: operands
// named in the comments are popped from (and results pushed onto) the
// evaluation stack; A, B, C and D are immediate operands baked into the
// instruction at compile time.
//
// The enum is laid out deliberately: the hot arithmetic/control cluster —
// the plain ops the compiler emits in loop bodies plus every fused
// superinstruction — occupies the dense low range so the dispatch
// switch's jump table keeps the loop-dominant cases together; the cold
// I/O, heap-array and dynamic-lookup ops follow.
type Op uint8

const (
	OpNop Op = iota

	// --- the hot cluster: stack, slots, arithmetic, control flow
	OpConst     // push Consts[A]
	OpLoadSlot  // push slots[A]
	OpStoreSlot // slots[A] = pop
	OpIncSlot   // slots[A] = NUMBR(slots[A]) + B (B is +1 or -1); S names the loop var
	OpBinary    // y=pop, x=pop; push Binary(BinOp(A), x, y)
	OpJump      // ip = A (A is the absolute jump target, patched at compile)
	OpJumpFalse // pop; jump when not truthy
	OpJumpTrue  // pop; jump when truthy

	// --- fused superinstructions (see fuse.go). Each replaces a fixed
	// sequence the compiler emits and carries that sequence's step count
	// as its static weight, so backend.Meter accounting is identical to
	// the unfused program. B packs the BinOp in its low bits; fused jumps
	// add the fuseJumpOnTrue bit and carry their target in D.
	OpFusedConstBinary         // tos = Binary(B, tos, Consts[A]); w=2
	OpFusedSlotBinary          // tos = Binary(B, tos, slots[A]); w=2
	OpFusedSlotConstBinary     // push Binary(B, slots[A], Consts[C]); w=3
	OpFusedSlotSlotBinary      // push Binary(B, slots[A], slots[C]); w=3
	OpFusedElemSlotBinary      // i=pop; tos = Binary(B, tos, slots[A][i]); S names the array; w=2
	OpFusedBinaryStoreSlot     // y=pop, x=pop; slots[A] = Binary(B, x, y); w=2
	OpFusedBinaryStoreSlotCast // y=pop, x=pop; slots[A] = cast(Binary(B, x, y), Kind(C)); S names the SRSLY var; w=2
	OpFusedSlotJump            // jump to D when slots[A] truthiness matches B's sense; w=2
	OpFusedSlotConstCmpJump    // jump to D when Binary(B, slots[A], Consts[C]) truthiness matches B's sense; w=4
	OpFusedSlotSlotCmpJump     // jump to D when Binary(B, slots[A], slots[C]) truthiness matches B's sense; w=4
	OpFusedIncSlotJump         // slots[A] = NUMBR(slots[A]) + B; ip = D (loop back-edge); w=2

	// Whole-statement fusions: a two-operand expression assigned straight
	// to a slot, with no value-stack traffic at all. D is the destination
	// slot; the Cast variants pack the SRSLY kind into B above the BinOp.
	OpFusedSlotConstBinaryStore     // slots[D] = Binary(B, slots[A], Consts[C]); w=4
	OpFusedSlotConstBinaryStoreCast // slots[D] = cast(Binary(B, slots[A], Consts[C])); w=4
	OpFusedSlotSlotBinaryStore      // slots[D] = Binary(B, slots[A], slots[C]); w=4
	OpFusedSlotSlotBinaryStoreCast  // slots[D] = cast(Binary(B, slots[A], slots[C])); w=4

	// --- the rest of the frame/stack ops
	OpPop           // drop the top of stack
	OpDup           // duplicate the top of stack
	OpStoreSlotCast // slots[A] = cast(pop, Kind(B)); S names the SRSLY var
	OpStoreSlotArr  // array-aware store into slots[A]: copy into an existing array
	OpLoadElemSlot  // i=pop; push slots[A][i]; S names the array
	OpStoreElemSlot // i=pop, v=pop; slots[A][i] = v; S names the array
	OpJumpFalseKeep // peek; jump when not truthy, keeping the value (short-circuit)
	OpJumpTrueKeep  // peek; jump when truthy, keeping the value (short-circuit)

	// --- symmetric heap (PGAS); B&flagRemote selects the predication target
	OpLoadHeap     // push scalar heap[A] (local get, or remote get of pred target)
	OpLoadHeapArr  // push a deep copy of array heap[A] (GetArray)
	OpStoreHeap    // put pop into heap[A] of the target PE
	OpStoreHeapArr // put array pop into heap[A] of the target PE; S names the array
	OpLoadElem     // i=pop; push heap[A][i] of the target PE
	OpStoreElem    // i=pop, v=pop; heap[A][i] of the target PE = v
	OpDeclArrSlot  // size=pop; slots[A] = new array of Kind(B); S names the array
	OpDeclArrHeap  // size=pop; allocate heap[A] symmetrically; S names the array
	OpInitHeap     // v=pop; initialize scalar heap[A]

	// --- operators
	OpUnary  // x=pop; push Unary(UnOp(A), x)
	OpCast   // x=pop; push Cast(x, Kind(A)); S gives the error context
	OpTroof  // x=pop; push TROOF(x.ToTroof())
	OpEqual  // y=pop, x=pop; push TROOF(Equal(x, y))  (WTF? case dispatch)
	OpConcat // pop A values; push the YARN of their Displays (:{} interpolation)
	OpSmoosh // pop A values; push Nary(OpSmoosh, ...)

	// --- I/O
	OpVisible // pop A values; write their Displays; B flags: visNoNewline|visStderr
	OpGimmeh  // push the next stdin line as a YARN

	// --- parallel extensions (paper Table II)
	OpBarrier     // HUGZ
	OpLockAcquire // IM SRSLY MESIN WIF lock A; sets IT to WIN
	OpLockTry     // IM MESIN WIF lock A; sets IT to the outcome
	OpLockRelease // DUN MESIN WIF lock A
	OpPredPush    // pop a PE rank, validate, push onto the predication stack
	OpPredPop     // pop A entries off the predication stack

	// --- builtins
	OpMe       // push the PE id
	OpMahFrenz // push the PE count
	OpWhatevr  // push a random NUMBR
	OpWhatevar // push a random NUMBAR in [0,1)

	// --- dynamic symbol access (SRS); B is the ast.Space
	OpSrsLoad  // name=pop; resolve in the frame scope and read
	OpSrsStore // name=pop, v=pop; resolve and write

	// --- calls
	OpCall     // call Funcs[A] with B arguments popped from the stack; S names it
	OpReturn   // v=pop; unwind the frame and push v on the caller's stack
	OpReturnIT // return the frame's IT (fall-off-the-end semantics)
	OpHalt     // end of the main chunk
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpPop: "pop", OpDup: "dup",
	OpLoadSlot: "load.slot", OpStoreSlot: "store.slot",
	OpStoreSlotCast: "store.slot.cast", OpStoreSlotArr: "store.slot.arr",
	OpIncSlot:  "inc.slot",
	OpLoadHeap: "load.heap", OpLoadHeapArr: "load.heap.arr",
	OpStoreHeap: "store.heap", OpStoreHeapArr: "store.heap.arr",
	OpLoadElem: "load.elem", OpStoreElem: "store.elem",
	OpLoadElemSlot: "load.elem.slot", OpStoreElemSlot: "store.elem.slot",
	OpDeclArrSlot: "decl.arr.slot", OpDeclArrHeap: "decl.arr.heap",
	OpInitHeap: "init.heap",
	OpBinary:   "binary", OpUnary: "unary", OpCast: "cast", OpTroof: "troof",
	OpEqual: "equal", OpConcat: "concat", OpSmoosh: "smoosh",
	OpJump: "jump", OpJumpFalse: "jump.false", OpJumpTrue: "jump.true",
	OpJumpFalseKeep: "jump.false.keep", OpJumpTrueKeep: "jump.true.keep",
	OpVisible: "visible", OpGimmeh: "gimmeh",
	OpBarrier: "barrier", OpLockAcquire: "lock.acquire", OpLockTry: "lock.try",
	OpLockRelease: "lock.release", OpPredPush: "pred.push", OpPredPop: "pred.pop",
	OpMe: "me", OpMahFrenz: "mahfrenz", OpWhatevr: "whatevr", OpWhatevar: "whatevar",
	OpSrsLoad: "srs.load", OpSrsStore: "srs.store",
	OpCall: "call", OpReturn: "return", OpReturnIT: "return.it", OpHalt: "halt",

	OpFusedConstBinary:         "fuse.const.binary",
	OpFusedSlotBinary:          "fuse.slot.binary",
	OpFusedSlotConstBinary:     "fuse.slot.const.binary",
	OpFusedSlotSlotBinary:      "fuse.slot.slot.binary",
	OpFusedElemSlotBinary:      "fuse.elem.slot.binary",
	OpFusedBinaryStoreSlot:     "fuse.binary.store.slot",
	OpFusedBinaryStoreSlotCast: "fuse.binary.store.slot.cast",
	OpFusedSlotJump:            "fuse.slot.jump",
	OpFusedSlotConstCmpJump:    "fuse.slot.const.cmp.jump",
	OpFusedSlotSlotCmpJump:     "fuse.slot.slot.cmp.jump",
	OpFusedIncSlotJump:         "fuse.inc.slot.jump",

	OpFusedSlotConstBinaryStore:     "fuse.slot.const.binary.store",
	OpFusedSlotConstBinaryStoreCast: "fuse.slot.const.binary.store.cast",
	OpFusedSlotSlotBinaryStore:      "fuse.slot.slot.binary.store",
	OpFusedSlotSlotBinaryStoreCast:  "fuse.slot.slot.binary.store.cast",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// opWeights is the static step weight of every opcode: 1 for plain
// instructions, the replaced sequence's instruction count for fused
// superinstructions. The dispatch loop meters StepN(opWeights[op]) per
// instruction, so a step budget counts pre-fusion instructions exactly.
var opWeights [256]int64

func init() {
	for i := range opWeights {
		opWeights[i] = 1
	}
	opWeights[OpFusedConstBinary] = 2
	opWeights[OpFusedSlotBinary] = 2
	opWeights[OpFusedSlotConstBinary] = 3
	opWeights[OpFusedSlotSlotBinary] = 3
	opWeights[OpFusedElemSlotBinary] = 2
	opWeights[OpFusedBinaryStoreSlot] = 2
	opWeights[OpFusedBinaryStoreSlotCast] = 2
	opWeights[OpFusedSlotJump] = 2
	opWeights[OpFusedSlotConstCmpJump] = 4
	opWeights[OpFusedSlotSlotCmpJump] = 4
	opWeights[OpFusedIncSlotJump] = 2
	opWeights[OpFusedSlotConstBinaryStore] = 4
	opWeights[OpFusedSlotConstBinaryStoreCast] = 4
	opWeights[OpFusedSlotSlotBinaryStore] = 4
	opWeights[OpFusedSlotSlotBinaryStoreCast] = 4
}

// Weight is the opcode's static step weight: the number of pre-fusion
// instructions one executed instance accounts for against the step
// budget. Plain opcodes weigh 1.
func (op Op) Weight() int64 { return opWeights[op] }

// Fused reports whether the opcode is a superinstruction produced by the
// fusion pass (weight > 1).
func (op Op) Fused() bool { return opWeights[op] > 1 }

// OpVisible B flags.
const (
	visNoNewline = 1 << iota
	visStderr
)

// flagRemote in B marks a heap access as addressing the predication target
// (a UR reference) instead of the local PE.
const flagRemote = 1

// Fused instructions pack the expression's BinOp into B's low bits.
// Fused jumps add fuseJumpOnTrue to select the branch sense (set = the
// fused OpJumpTrue shape, clear = OpJumpFalse); fused store-casts pack
// the declared SRSLY kind above fuseKindShift.
const (
	fuseOpMask     = 0xff
	fuseJumpOnTrue = 1 << 8
	fuseKindShift  = 9
)

// Instr is one decoded instruction. The VM trades the byte-packed encoding
// of a production VM for direct struct access: no operand decoding on the
// hot path, and every instruction carries its source position for errors.
// D is the jump target of fused compare-and-branch superinstructions,
// kept separate from A so slot/const operands never alias a target during
// fusion's index remapping.
type Instr struct {
	Op         Op
	A, B, C, D int
	S          string // symbol name for error messages; usually empty
	Pos        token.Pos
}

func (in Instr) String() string {
	s := fmt.Sprintf("%-16s A=%d B=%d", in.Op, in.A, in.B)
	if in.C != 0 || in.D != 0 {
		s += fmt.Sprintf(" C=%d D=%d", in.C, in.D)
	}
	if in.S != "" {
		s += " S=" + in.S
	}
	return s
}

// Chunk is one compiled frame body: the main program or one HOW IZ I
// function. NSlots is the frame size computed by sema's slot resolution;
// Scope is retained only for the dynamic name lookups SRS and :{var}
// interpolation need at runtime.
type Chunk struct {
	Name   string
	Code   []Instr
	Consts []value.Value
	NSlots int
	Params int
	Scope  *sema.Scope
}

// binFast is the unboxed arithmetic fast path shared by OpBinary and the
// fused superinstructions: one Kind check per operand, then raw
// int64/float64 dispatch through the value.Binary*/Raw* helpers so error
// semantics stay single-sourced with the generic path. Non-numeric or
// non-arithmetic operands fall back to value.Binary.
func binFast(op value.BinOp, x, y value.Value) (value.Value, error) {
	xk, yk := x.Kind(), y.Kind()
	if xk == value.Numbr && yk == value.Numbr {
		a, b := x.Numbr(), y.Numbr()
		// +, - and × dominate the kernels; evaluate them without the
		// second dispatch through BinaryNumbr's op switch.
		switch op {
		case value.OpSum:
			return value.NewNumbr(a + b), nil
		case value.OpDiff:
			return value.NewNumbr(a - b), nil
		case value.OpProdukt:
			return value.NewNumbr(a * b), nil
		}
		if op.Arith() {
			return value.BinaryNumbr(op, a, b)
		}
		return value.Binary(op, x, y)
	}
	if (xk == value.Numbr || xk == value.Numbar) && (yk == value.Numbr || yk == value.Numbar) {
		// Mixed numerics widen the NUMBR side, exactly as value.Binary does.
		a, b := x.Numbar(), y.Numbar()
		if xk == value.Numbr {
			a = float64(x.Numbr())
		}
		if yk == value.Numbr {
			b = float64(y.Numbr())
		}
		switch op {
		case value.OpSum:
			return value.NewNumbar(a + b), nil
		case value.OpDiff:
			return value.NewNumbar(a - b), nil
		case value.OpProdukt:
			return value.NewNumbar(a * b), nil
		}
		if op.Arith() {
			return value.BinaryNumbar(op, a, b)
		}
	}
	return value.Binary(op, x, y)
}

// unFast is the unboxed counterpart of binFast for the unary operators:
// the Table III math unaries on a NUMBAR operand skip value.Unary's
// operand coercion, sharing the value.Raw* bodies for error parity.
func unFast(op value.UnOp, x value.Value) (value.Value, error) {
	if x.Kind() == value.Numbar {
		f := x.Numbar()
		switch op {
		case value.OpSquar:
			return value.NewNumbar(f * f), nil
		case value.OpUnsquar:
			r, err := value.RawUnsquar(f)
			if err != nil {
				return value.NOOB, err
			}
			return value.NewNumbar(r), nil
		case value.OpFlip:
			r, err := value.RawFlip(f)
			if err != nil {
				return value.NOOB, err
			}
			return value.NewNumbar(r), nil
		}
	}
	return value.Unary(op, x)
}

// truthyBin evaluates Binary(op, x, y) for a fused compare-and-branch and
// returns the result's truthiness — for numeric comparisons without
// constructing the intermediate TROOF box at all.
func truthyBin(op value.BinOp, x, y value.Value) (bool, error) {
	switch x.Kind() {
	case value.Numbr:
		switch y.Kind() {
		case value.Numbr:
			if res, ok := value.RawCmpNumbr(op, x.Numbr(), y.Numbr()); ok {
				return res, nil
			}
		case value.Numbar:
			if res, ok := value.RawCmpNumbar(op, float64(x.Numbr()), y.Numbar()); ok {
				return res, nil
			}
		}
	case value.Numbar:
		switch y.Kind() {
		case value.Numbar:
			if res, ok := value.RawCmpNumbar(op, x.Numbar(), y.Numbar()); ok {
				return res, nil
			}
		case value.Numbr:
			if res, ok := value.RawCmpNumbar(op, x.Numbar(), float64(y.Numbr())); ok {
				return res, nil
			}
		}
	}
	v, err := binFast(op, x, y)
	if err != nil {
		return false, err
	}
	return v.ToTroof(), nil
}
