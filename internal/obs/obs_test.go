package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	// 50 obs in the first bucket, 30 in the second, 15 in the third,
	// 4 in the fourth, 1 in +Inf.
	for i := 0; i < 50; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 30; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 15; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	h.Observe(5)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := 50*0.0005 + 30*0.005 + 15*0.05 + 4*0.5 + 5
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	// p50 must land in the first bucket, p90 in the third, p99 in the
	// fourth: the quantile is derived from buckets, so assert bucket
	// membership, not exact values.
	if p50 := s.Quantile(0.50); p50 <= 0 || p50 > 0.001 {
		t.Errorf("p50 = %v, want within (0, 0.001]", p50)
	}
	if p90 := s.Quantile(0.90); p90 <= 0.01 || p90 > 0.1 {
		t.Errorf("p90 = %v, want within (0.01, 0.1]", p90)
	}
	if p99 := s.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within (0.1, 1]", p99)
	}
	// An observation beyond every bound sits in +Inf; the quantile
	// saturates at the largest finite bound.
	if p100 := s.Quantile(1); p100 != 1 {
		t.Errorf("p100 = %v, want saturation at 1", p100)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 3 || sa.Counts[0] != 1 || sa.Counts[1] != 1 || sa.Counts[2] != 1 {
		t.Errorf("merged counts = %+v, want one per bucket", sa)
	}
	if math.Abs(sa.Sum-12) > 1e-9 {
		t.Errorf("merged sum = %v, want 12", sa.Sum)
	}
	other := NewHistogram([]float64{1, 3}).Snapshot()
	if err := sa.Merge(other); err == nil {
		t.Error("merging different bounds did not error")
	}
}

// TestHistogramConcurrent is the race-mode satellite: hammer Observe
// from many goroutines while snapshots are taken, then require that no
// observation was lost.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers = 8
		perW    = 5000
	)
	h := NewHistogram(DefBuckets)
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() { // concurrent reader: snapshots must never tear or panic
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var n uint64
				for _, c := range s.Counts {
					n += c
				}
				if n != s.Count {
					t.Errorf("snapshot count %d != bucket total %d", s.Count, n)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	if got := h.Snapshot().Count; got != writers*perW {
		t.Errorf("lost observations: count = %d, want %d", got, writers*perW)
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter(fmt.Sprintf("c%d_total", i), "concurrent")
			c.Add(int64(i))
		}(i)
	}
	wg.Wait()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	for i := 0; i < 32; i++ {
		want := fmt.Sprintf("c%d_total %d\n", i, i)
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", strings.TrimSpace(want))
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}

// TestExposition parses the registry's own output: HELP/TYPE headers,
// cumulative monotone buckets, le="+Inf" equal to _count, and label
// escaping.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs").Add(3)
	r.Gauge("depth", "queue depth").Set(-2)
	r.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 1.5 })
	cv := r.CounterVec("outcomes_total", "by outcome", "outcome")
	cv.With("ok").Add(2)
	cv.With(`we"ird`).Inc()
	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "stage")
	hv.With("execute").Observe(0.05)
	hv.With("execute").Observe(0.5)
	hv.With("execute").Observe(50)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP jobs_total jobs\n# TYPE jobs_total counter\njobs_total 3\n",
		"depth -2\n",
		"uptime_seconds 1.5\n",
		`outcomes_total{outcome="ok"} 2`,
		`outcomes_total{outcome="we\"ird"} 1`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="execute",le="0.1"} 1`,
		`lat_seconds_bucket{stage="execute",le="1"} 2`,
		`lat_seconds_bucket{stage="execute",le="+Inf"} 3`,
		`lat_seconds_sum{stage="execute"} 50.55`,
		`lat_seconds_count{stage="execute"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Every _bucket series must be monotonically non-decreasing in le
	// order (they are cumulative), every value a valid float.
	var prev uint64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		if strings.Contains(fields[0], "_bucket{") {
			v, _ := strconv.ParseUint(fields[1], 10, 64)
			if strings.Contains(fields[0], `le="0.1"`) {
				prev = v // first bucket of the only histogram series
			} else if v < prev {
				t.Errorf("bucket counts not cumulative at %q", line)
			} else {
				prev = v
			}
		}
	}
}

func TestQuantileFromCumulativeEdges(t *testing.T) {
	bounds := []float64{1, 2, 4}
	if got := QuantileFromCumulative(bounds, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// All mass in one bucket: interpolation stays inside (1, 2].
	cum := []uint64{0, 10, 10, 10}
	if got := QuantileFromCumulative(bounds, cum, 0.5); got <= 1 || got > 2 {
		t.Errorf("q0.5 = %v, want within (1, 2]", got)
	}
	// Mass in +Inf only: saturate at the largest finite bound.
	if got := QuantileFromCumulative(bounds, []uint64{0, 0, 0, 5}, 0.99); got != 4 {
		t.Errorf("+Inf quantile = %v, want 4", got)
	}
}

func TestSpan(t *testing.T) {
	var nilSpan *Span
	nilSpan.Record("execute", time.Second) // must not panic
	nilSpan.SetJob("vm", "native", "ok")
	if snap := nilSpan.Snapshot(); snap.ID != "" || len(snap.Stages) != 0 {
		t.Errorf("nil span snapshot = %+v, want zero", snap)
	}

	sp := NewSpan("req1", "/v1/run")
	sp.Record("queue_wait", 2*time.Millisecond)
	sp.Record("execute", 10*time.Millisecond)
	sp.SetJob("interp", "native", "ok")
	snap := sp.Snapshot()
	if snap.ID != "req1" || snap.Endpoint != "/v1/run" || snap.Tier != "native" || snap.Outcome != "ok" {
		t.Errorf("snapshot labels wrong: %+v", snap)
	}
	if got := snap.StageMS("execute"); got != 10 {
		t.Errorf("execute stage = %vms, want 10", got)
	}
	if snap.TotalMS < 0 {
		t.Errorf("negative total %v", snap.TotalMS)
	}

	// Concurrent Record vs Snapshot must be race-clean.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp.Record("respond", time.Microsecond)
				_ = sp.Snapshot()
			}
		}()
	}
	wg.Wait()
}

func TestSpanContext(t *testing.T) {
	ctx := t.Context()
	if got := FromContext(ctx); got != nil {
		t.Errorf("span in empty context: %v", got)
	}
	sp := NewSpan(NewRequestID(), "/v1/batch")
	if got := FromContext(WithSpan(ctx, sp)); got != sp {
		t.Errorf("FromContext = %v, want %v", got, sp)
	}
	if id := sp.ID(); len(id) != 16 {
		t.Errorf("request id %q, want 16 hex chars", id)
	}
}

func TestSlowRing(t *testing.T) {
	r := NewSlowRing(4)
	if got := r.Slowest(10); len(got) != 0 {
		t.Errorf("empty ring returned %d entries", len(got))
	}
	for i := 1; i <= 6; i++ { // 1..6; window keeps 3,4,5,6
		r.Offer(SpanSnapshot{ID: fmt.Sprint(i), Total: time.Duration(i) * time.Millisecond})
	}
	got := r.Slowest(2)
	if len(got) != 2 || got[0].ID != "6" || got[1].ID != "5" {
		t.Errorf("slowest = %+v, want 6 then 5", got)
	}
	all := r.Slowest(0)
	if len(all) != 4 {
		t.Errorf("window holds %d, want 4", len(all))
	}
	for _, s := range all {
		if s.ID == "1" || s.ID == "2" {
			t.Errorf("entry %s should have aged out of the window", s.ID)
		}
	}

	// Concurrent offers are race-clean and never exceed the window.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Offer(SpanSnapshot{Total: time.Duration(j)})
				r.Slowest(3)
			}
		}()
	}
	wg.Wait()
	if got := len(r.Slowest(0)); got != 4 {
		t.Errorf("ring grew to %d, want 4", got)
	}
}
