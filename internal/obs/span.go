package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span records one request's lifecycle: a request ID, the endpoint, and
// the durations of the stages the request passed through (admission,
// queue wait, cache lookups, compile, execute, respond — the stage
// vocabulary belongs to the caller). Spans ride a context through the
// serving path; every method is safe on a nil *Span, so code records
// stages unconditionally and uninstrumented callers pay one nil check.
type Span struct {
	id       string
	endpoint string
	start    time.Time

	mu      sync.Mutex
	backend string
	tier    string
	outcome string
	stages  []Stage
}

// Stage is one recorded lifecycle segment.
type Stage struct {
	Name string        `json:"stage"`
	Dur  time.Duration `json:"-"`
	MS   float64       `json:"ms"`
}

// NewSpan starts a span now. id is typically a request ID (NewRequestID)
// and endpoint the route that is serving the request.
func NewSpan(id, endpoint string) *Span {
	return &Span{id: id, endpoint: endpoint, start: time.Now()}
}

// ID returns the span's request ID ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Record appends a stage duration.
func (s *Span) Record(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, Dur: d, MS: ms(d)})
	s.mu.Unlock()
}

// SetJob labels the span with the job's backend, executing tier, and
// outcome (any may be empty).
func (s *Span) SetJob(backend, tier, outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.backend, s.tier, s.outcome = backend, tier, outcome
	s.mu.Unlock()
}

// Snapshot copies the span's current state; Total is the elapsed wall
// clock since the span started. Returns the zero snapshot on nil.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	total := time.Since(s.start)
	s.mu.Lock()
	snap := SpanSnapshot{
		ID: s.id, Endpoint: s.endpoint, Start: s.start,
		Backend: s.backend, Tier: s.tier, Outcome: s.outcome,
		Total: total, TotalMS: ms(total),
		Stages: append([]Stage(nil), s.stages...),
	}
	s.mu.Unlock()
	return snap
}

// SpanSnapshot is an immutable copy of a finished (or in-flight) span —
// the shape /v1/debug/slow serves.
type SpanSnapshot struct {
	ID       string        `json:"id"`
	Endpoint string        `json:"endpoint"`
	Backend  string        `json:"backend,omitempty"`
	Tier     string        `json:"tier,omitempty"`
	Outcome  string        `json:"outcome,omitempty"`
	Start    time.Time     `json:"start"`
	Total    time.Duration `json:"-"`
	TotalMS  float64       `json:"total_ms"`
	Stages   []Stage       `json:"stages"`
}

// StageMS returns the recorded duration of the named stage in
// milliseconds, summing repeats, 0 when absent.
func (s SpanSnapshot) StageMS(name string) float64 {
	var total float64
	for _, st := range s.Stages {
		if st.Name == name {
			total += st.MS
		}
	}
	return total
}

type spanCtxKey struct{}

// WithSpan attaches a span to a context.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the context's span, nil when absent — and nil is
// a valid receiver for every Span method.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // never fails (crypto/rand panics internally if the OS source is broken)
	return hex.EncodeToString(b[:])
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
