package obs

import (
	"sort"
	"sync"
)

// SlowRing keeps the last `window` request snapshots and answers "which
// recent requests were slowest?" — the /v1/debug/slow data source. A
// ring of recent requests (rather than an all-time top-N heap) is
// deliberate: an incident's slow requests age out of the window once
// traffic recovers, so the endpoint always describes the near past, not
// a record set during a deploy three days ago.
type SlowRing struct {
	mu   sync.Mutex
	buf  []SpanSnapshot
	next int
	full bool
}

// NewSlowRing builds a ring over the last window requests (minimum 1).
func NewSlowRing(window int) *SlowRing {
	if window < 1 {
		window = 1
	}
	return &SlowRing{buf: make([]SpanSnapshot, window)}
}

// Offer records one completed request.
func (r *SlowRing) Offer(s SpanSnapshot) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Slowest returns up to n snapshots from the window, slowest first.
func (r *SlowRing) Slowest(n int) []SpanSnapshot {
	r.mu.Lock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	out := make([]SpanSnapshot, size)
	copy(out, r.buf[:size])
	r.mu.Unlock()

	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
