package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets is the default latency bucket layout: exponential base-2
// bounds from 1µs to ~33s, covering everything from a result-cache
// lookup to the server's maximum job timeout (30s) in 26 buckets.
var DefBuckets = ExpBuckets(1e-6, 2, 26)

// ExpBuckets returns n exponential bucket upper bounds: start, start*
// factor, start*factor², …. Panics on nonsense arguments.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free:
// one binary search over the bounds plus two atomic ops. Bounds are
// upper bounds in le (less-or-equal) semantics, with an implicit +Inf
// bucket at the end; observations are in seconds by convention.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given bucket upper bounds
// (must be sorted ascending; nil uses DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds not sorted")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le bucket
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot copies the histogram state. Concurrent Observes may land
// between bucket reads — each observation is atomically in or out of a
// bucket, so counts never tear, but a snapshot taken mid-burst can be
// off by the in-flight observations; totals reconcile at quiescence.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := uint64(h.counts[i].Load())
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram: per-bucket (non-
// cumulative) counts aligned with Bounds plus the +Inf bucket at the
// end. Snapshots with equal Bounds are mergeable, and quantiles are
// derived from the buckets.
type HistSnapshot struct {
	Bounds []float64 // bucket upper bounds, ascending, +Inf implicit
	Counts []uint64  // len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Merge adds other's counts into s. The two snapshots must share bucket
// bounds (histograms from one Vec family always do).
func (s *HistSnapshot) Merge(other HistSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(s.Bounds), len(other.Bounds))
	}
	for i, b := range s.Bounds {
		if b != other.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d: %v vs %v", i, b, other.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
	return nil
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the bucket holding the target rank — the same estimate
// Prometheus's histogram_quantile computes from the _bucket series.
func (s HistSnapshot) Quantile(q float64) float64 {
	cum := make([]uint64, len(s.Counts))
	var total uint64
	for i, c := range s.Counts {
		total += c
		cum[i] = total
	}
	return QuantileFromCumulative(s.Bounds, cum, q)
}

// QuantileFromCumulative estimates the q-quantile from cumulative
// bucket counts (cum[i] = observations <= Bounds[i]; the final element
// is the +Inf total). Shared by in-process snapshots and scrapers that
// parse the exposition's cumulative _bucket series. Returns 0 for an
// empty histogram; an answer landing in the +Inf bucket returns the
// largest finite bound (the histogram cannot resolve beyond it).
func QuantileFromCumulative(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 || cum[len(cum)-1] == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := cum[len(cum)-1]
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) >= rank {
			if i >= len(bounds) { // +Inf bucket
				return bounds[len(bounds)-1]
			}
			lower, prev := 0.0, uint64(0)
			if i > 0 {
				lower, prev = bounds[i-1], cum[i-1]
			}
			inBucket := float64(c - prev)
			if inBucket == 0 {
				return bounds[i]
			}
			return lower + (bounds[i]-lower)*((rank-float64(prev))/inBucket)
		}
	}
	return bounds[len(bounds)-1]
}
