// Package obs is the dependency-free observability layer behind lolserv:
// metric primitives (atomic counters, gauges, fixed-bucket latency
// histograms with mergeable snapshots), a named registry that serves the
// Prometheus text exposition format, per-request lifecycle spans with
// stage timings, and a bounded ring of the slowest recent requests.
//
// The package deliberately reimplements the small subset of a metrics
// client library this repository needs rather than importing one: the
// container bakes no external modules, and the serving path only needs
// lock-free counters, a histogram whose quantiles are derivable from its
// buckets, and a text writer. Everything is safe for concurrent use; the
// hot-path operations (Counter.Add, Histogram.Observe) are a single
// atomic op plus, for histograms, one binary search over ~26 bucket
// bounds.
//
// Conventions follow Prometheus: counters end in _total, histograms
// observe seconds, and a histogram family exposes cumulative _bucket
// series (le-labeled), _sum, and _count. Instrument values can also be
// read back programmatically (Load, Snapshot) so the same counters feed
// both GET /metrics and the JSON /v1/stats endpoint without double
// bookkeeping.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; embed it by value and register it with
// Registry.RegisterCounter, or create a registered one with
// Registry.Counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 for the exposition to
// stay a valid Prometheus counter; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight jobs).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// metric is one registered family: a name plus the ability to write its
// exposition block.
type metric interface {
	metricName() string
	writeExpo(w *bufio.Writer)
}

// Registry is a named set of metric families served in Prometheus text
// exposition format. Registration is concurrency-safe; registering two
// families under one name panics (a programming error, like a duplicate
// flag). Each Server owns its own Registry so tests and experiments can
// run many servers in one process without name collisions.
type Registry struct {
	mu       sync.Mutex
	families []metric
	names    map[string]bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.metricName()] {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", m.metricName()))
	}
	r.names[m.metricName()] = true
	r.families = append(r.families, m)
}

// Counter creates and registers a counter family.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c)
	return c
}

// RegisterCounter registers an existing counter (typically a by-value
// field of some owning struct) under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.register(&counterFamily{name: name, help: help, c: c})
}

// Gauge creates and registers a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g)
	return g
}

// RegisterGauge registers an existing gauge under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.register(&gaugeFamily{name: name, help: help, g: g})
}

// GaugeFunc registers a gauge whose value is read at scrape time (disk
// usage, uptime, sizes guarded by someone else's lock). fn must be safe
// for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFuncFamily{name: name, help: help, fn: fn})
}

// Histogram creates and registers a histogram family with the given
// bucket upper bounds (see ExpBuckets; nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&histFamily{name: name, help: help, h: h})
	return h
}

// CounterVec creates and registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, labels: labels, children: make(map[string]*counterChild)}
	r.register(&counterVecFamily{name: name, help: help, v: v})
	return v
}

// HistogramVec creates and registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	v := &HistogramVec{name: name, labels: labels, bounds: bounds, children: make(map[string]*histChild)}
	r.register(&histVecFamily{name: name, help: help, v: v})
	return v
}

// WritePrometheus writes every family in text exposition format, sorted
// by name so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]metric, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].metricName() < fams[j].metricName() })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.writeExpo(bw)
	}
	bw.Flush()
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	name   string
	labels []string

	mu       sync.RWMutex
	children map[string]*counterChild
}

type counterChild struct {
	values []string
	c      Counter
}

// With returns the child counter for the given label values (created on
// first use), which callers should cache when the label set is static —
// the lookup is a map access under an RLock.
func (v *CounterVec) With(values ...string) *Counter {
	return &v.child(values).c
}

func (v *CounterVec) child(values []string) *counterChild {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return ch
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok = v.children[key]; ok {
		return ch
	}
	ch = &counterChild{values: append([]string(nil), values...)}
	v.children[key] = ch
	return ch
}

// HistogramVec is a histogram family partitioned by label values; every
// child shares the family's bucket bounds, so children merge.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*histChild
}

type histChild struct {
	values []string
	h      *Histogram
}

// With returns the child histogram for the given label values, created
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return ch.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok = v.children[key]; ok {
		return ch.h
	}
	ch = &histChild{values: append([]string(nil), values...), h: NewHistogram(v.bounds)}
	v.children[key] = ch
	return ch.h
}

// snapshotChildren returns the children in deterministic label order.
func (v *HistogramVec) snapshotChildren() []*histChild {
	v.mu.RLock()
	out := make([]*histChild, 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\xff") < strings.Join(out[j].values, "\xff")
	})
	return out
}

func (v *CounterVec) snapshotChildren() []*counterChild {
	v.mu.RLock()
	out := make([]*counterChild, 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\xff") < strings.Join(out[j].values, "\xff")
	})
	return out
}

// ---- exposition ----

type counterFamily struct {
	name, help string
	c          *Counter
}

func (f *counterFamily) metricName() string { return f.name }
func (f *counterFamily) writeExpo(w *bufio.Writer) {
	header(w, f.name, f.help, "counter")
	fmt.Fprintf(w, "%s %d\n", f.name, f.c.Load())
}

type gaugeFamily struct {
	name, help string
	g          *Gauge
}

func (f *gaugeFamily) metricName() string { return f.name }
func (f *gaugeFamily) writeExpo(w *bufio.Writer) {
	header(w, f.name, f.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", f.name, f.g.Load())
}

type gaugeFuncFamily struct {
	name, help string
	fn         func() float64
}

func (f *gaugeFuncFamily) metricName() string { return f.name }
func (f *gaugeFuncFamily) writeExpo(w *bufio.Writer) {
	header(w, f.name, f.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
}

type counterVecFamily struct {
	name, help string
	v          *CounterVec
}

func (f *counterVecFamily) metricName() string { return f.name }
func (f *counterVecFamily) writeExpo(w *bufio.Writer) {
	header(w, f.name, f.help, "counter")
	for _, ch := range f.v.snapshotChildren() {
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.v.labels, ch.values, ""), ch.c.Load())
	}
}

type histFamily struct {
	name, help string
	h          *Histogram
}

func (f *histFamily) metricName() string { return f.name }
func (f *histFamily) writeExpo(w *bufio.Writer) {
	header(w, f.name, f.help, "histogram")
	writeHist(w, f.name, nil, nil, f.h.Snapshot())
}

type histVecFamily struct {
	name, help string
	v          *HistogramVec
}

func (f *histVecFamily) metricName() string { return f.name }
func (f *histVecFamily) writeExpo(w *bufio.Writer) {
	header(w, f.name, f.help, "histogram")
	for _, ch := range f.v.snapshotChildren() {
		writeHist(w, f.name, f.v.labels, ch.values, ch.h.Snapshot())
	}
}

// writeHist writes one labelset's cumulative _bucket series plus _sum
// and _count.
func writeHist(w *bufio.Writer, name string, labels, values []string, s HistSnapshot) {
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, formatFloat(b)), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels, values, ""), formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values, ""), cum)
}

func header(w *bufio.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// labelString renders {k="v",...}, appending an le pair when le is
// non-empty; empty label sets render as "".
func labelString(labels, values []string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders values the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
