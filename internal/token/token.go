// Package token defines the lexical tokens of LOLCODE-1.2 together with the
// parallel and distributed computing extensions introduced by Richie & Ross,
// "I Can Has Supercomputer?" (2017).
//
// LOLCODE keywords are frequently multi-word phrases ("BOTH SAEM",
// "TXT MAH BFF", "IM SRSLY MESIN WIF"). The lexer folds such phrases into a
// single token using the longest-match trie exported by this package, so the
// parser only ever sees one Kind per construct.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The token kinds. Keyword kinds carry the canonical phrase (see Phrase).
const (
	// Special tokens.
	Illegal Kind = iota
	EOF
	Newline // logical statement separator: '\n' or ','

	// Literals and identifiers.
	Ident     // pos_x
	NumbrLit  // 42, -7
	NumbarLit // 3.14, -0.5
	YarnLit   // "HAI :) WORLD"

	// Punctuation.
	Question // ?   (O RLY?, WTF?, CAN HAS STDIO?)
	Bang     // !   (VISIBLE ... !)
	IndexZ   // 'Z  (array indexing: arr'Z i)

	// Program delimiters.
	KwHai      // HAI
	KwKthxbye  // KTHXBYE
	KwCanHas   // CAN HAS
	KwGimmeh   // GIMMEH
	KwVisible  // VISIBLE
	KwInvisibl // INVISIBLE (diagnostic output to stderr; lci extension)

	// Declarations and assignment.
	KwIHasA         // I HAS A
	KwWeHasA        // WE HAS A
	KwItz           // ITZ
	KwItzA          // ITZ A
	KwItzSrslyA     // ITZ SRSLY A
	KwItzLotzA      // ITZ LOTZ A            (dynamic array)
	KwItzSrslyLotzA // ITZ SRSLY LOTZ A    (static array)
	KwAnTharIz      // AN THAR IZ            (array size clause)
	KwAnImSharinIt  // AN IM SHARIN IT      (implicit lock clause)
	KwAnItz         // AN ITZ                (initializer clause)
	KwR             // R

	// Types.
	KwNumbr  // NUMBR
	KwNumbar // NUMBAR
	KwYarn   // YARN
	KwTroof  // TROOF
	KwNoob   // NOOB

	// Boolean literals.
	KwWin  // WIN
	KwFail // FAIL

	// Arithmetic / comparison operators (prefix, args joined by AN).
	KwSumOf      // SUM OF
	KwDiffOf     // DIFF OF
	KwProduktOf  // PRODUKT OF
	KwQuoshuntOf // QUOSHUNT OF
	KwModOf      // MOD OF
	KwBiggrOf    // BIGGR OF   (max, LOLCODE-1.2)
	KwSmallrOf   // SMALLR OF  (min, LOLCODE-1.2)
	KwBigger     // BIGGER     (greater-than, paper Table I)
	KwSmallr     // SMALLR     (less-than, paper Table I)
	KwBothSaem   // BOTH SAEM
	KwDiffrint   // DIFFRINT
	KwBothOf     // BOTH OF    (and)
	KwEitherOf   // EITHER OF  (or)
	KwWonOf      // WON OF     (xor)
	KwNot        // NOT
	KwAllOf      // ALL OF
	KwAnyOf      // ANY OF
	KwAn         // AN
	KwMkay       // MKAY
	KwSmoosh     // SMOOSH

	// Casting.
	KwMaek   // MAEK
	KwA      // A (in MAEK expr A TYPE)
	KwIsNowA // IS NOW A
	KwSrs    // SRS

	// Control flow.
	KwORly      // O RLY
	KwYaRly     // YA RLY
	KwMebbe     // MEBBE
	KwNoWai     // NO WAI
	KwOic       // OIC
	KwWtf       // WTF
	KwOmg       // OMG
	KwOmgwtf    // OMGWTF
	KwGtfo      // GTFO
	KwImInYr    // IM IN YR
	KwImOuttaYr // IM OUTTA YR
	KwUppin     // UPPIN
	KwNerfin    // NERFIN
	KwYr        // YR
	KwTil       // TIL
	KwWile      // WILE

	// Functions.
	KwHowIzI   // HOW IZ I
	KwIfUSaySo // IF U SAY SO
	KwFoundYr  // FOUND YR
	KwIIz      // I IZ

	// The implicit result variable.
	KwIt // IT

	// Parallel & distributed extensions (paper Table II).
	KwMahFrenz        // MAH FRENZ           (number of PEs)
	KwMe              // ME                  (this PE's id)
	KwHugz            // HUGZ                (barrier)
	KwImSrslyMesinWif // IM SRSLY MESIN WIF  (blocking lock acquire)
	KwImMesinWif      // IM MESIN WIF        (trylock)
	KwDunMesinWif     // DUN MESIN WIF       (lock release)
	KwTxtMahBff       // TXT MAH BFF         (thread predication)
	KwAnStuff         // AN STUFF            (begin predicated block)
	KwTtyl            // TTYL                (end predicated block)
	KwUr              // UR                  (remote address space)
	KwMah             // MAH                 (local address space)

	// Additional extensions (paper Table III).
	KwWhatevr   // WHATEVR    (random NUMBR)
	KwWhatevar  // WHATEVAR   (random NUMBAR)
	KwSquarOf   // SQUAR OF   (x*x)
	KwUnsquarOf // UNSQUAR OF (sqrt)
	KwFlipOf    // FLIP OF    (1/x)

	kindCount
)

var kindNames = map[Kind]string{
	Illegal:   "ILLEGAL",
	EOF:       "EOF",
	Newline:   "NEWLINE",
	Ident:     "IDENT",
	NumbrLit:  "NUMBR_LIT",
	NumbarLit: "NUMBAR_LIT",
	YarnLit:   "YARN_LIT",
	Question:  "?",
	Bang:      "!",
	IndexZ:    "'Z",
}

// Phrases maps every keyword kind to its canonical source phrase.
// The lexer builds its longest-match trie from this table, and the
// formatter uses it to print keywords back out.
var Phrases = map[Kind]string{
	KwHai:             "HAI",
	KwKthxbye:         "KTHXBYE",
	KwCanHas:          "CAN HAS",
	KwGimmeh:          "GIMMEH",
	KwVisible:         "VISIBLE",
	KwInvisibl:        "INVISIBLE",
	KwIHasA:           "I HAS A",
	KwWeHasA:          "WE HAS A",
	KwItz:             "ITZ",
	KwItzA:            "ITZ A",
	KwItzSrslyA:       "ITZ SRSLY A",
	KwItzLotzA:        "ITZ LOTZ A",
	KwItzSrslyLotzA:   "ITZ SRSLY LOTZ A",
	KwAnTharIz:        "AN THAR IZ",
	KwAnImSharinIt:    "AN IM SHARIN IT",
	KwAnItz:           "AN ITZ",
	KwR:               "R",
	KwNumbr:           "NUMBR",
	KwNumbar:          "NUMBAR",
	KwYarn:            "YARN",
	KwTroof:           "TROOF",
	KwNoob:            "NOOB",
	KwWin:             "WIN",
	KwFail:            "FAIL",
	KwSumOf:           "SUM OF",
	KwDiffOf:          "DIFF OF",
	KwProduktOf:       "PRODUKT OF",
	KwQuoshuntOf:      "QUOSHUNT OF",
	KwModOf:           "MOD OF",
	KwBiggrOf:         "BIGGR OF",
	KwSmallrOf:        "SMALLR OF",
	KwBigger:          "BIGGER",
	KwSmallr:          "SMALLR",
	KwBothSaem:        "BOTH SAEM",
	KwDiffrint:        "DIFFRINT",
	KwBothOf:          "BOTH OF",
	KwEitherOf:        "EITHER OF",
	KwWonOf:           "WON OF",
	KwNot:             "NOT",
	KwAllOf:           "ALL OF",
	KwAnyOf:           "ANY OF",
	KwAn:              "AN",
	KwMkay:            "MKAY",
	KwSmoosh:          "SMOOSH",
	KwMaek:            "MAEK",
	KwA:               "A",
	KwIsNowA:          "IS NOW A",
	KwSrs:             "SRS",
	KwORly:            "O RLY",
	KwYaRly:           "YA RLY",
	KwMebbe:           "MEBBE",
	KwNoWai:           "NO WAI",
	KwOic:             "OIC",
	KwWtf:             "WTF",
	KwOmg:             "OMG",
	KwOmgwtf:          "OMGWTF",
	KwGtfo:            "GTFO",
	KwImInYr:          "IM IN YR",
	KwImOuttaYr:       "IM OUTTA YR",
	KwUppin:           "UPPIN",
	KwNerfin:          "NERFIN",
	KwYr:              "YR",
	KwTil:             "TIL",
	KwWile:            "WILE",
	KwHowIzI:          "HOW IZ I",
	KwIfUSaySo:        "IF U SAY SO",
	KwFoundYr:         "FOUND YR",
	KwIIz:             "I IZ",
	KwIt:              "IT",
	KwMahFrenz:        "MAH FRENZ",
	KwMe:              "ME",
	KwHugz:            "HUGZ",
	KwImSrslyMesinWif: "IM SRSLY MESIN WIF",
	KwImMesinWif:      "IM MESIN WIF",
	KwDunMesinWif:     "DUN MESIN WIF",
	KwTxtMahBff:       "TXT MAH BFF",
	KwAnStuff:         "AN STUFF",
	KwTtyl:            "TTYL",
	KwUr:              "UR",
	KwMah:             "MAH",
	KwWhatevr:         "WHATEVR",
	KwWhatevar:        "WHATEVAR",
	KwSquarOf:         "SQUAR OF",
	KwUnsquarOf:       "UNSQUAR OF",
	KwFlipOf:          "FLIP OF",
}

// String returns a human-readable name for the kind: the canonical phrase
// for keywords, an upper-case class name otherwise.
func (k Kind) String() string {
	if s, ok := Phrases[k]; ok {
		return s
	}
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved keyword (or keyword phrase).
func (k Kind) IsKeyword() bool {
	_, ok := Phrases[k]
	return ok
}

// IsLiteral reports whether k is a literal or identifier token.
func (k Kind) IsLiteral() bool {
	switch k {
	case Ident, NumbrLit, NumbarLit, YarnLit:
		return true
	}
	return false
}

// IsType reports whether k names one of the five LOLCODE types.
func (k Kind) IsType() bool {
	switch k {
	case KwNumbr, KwNumbar, KwYarn, KwTroof, KwNoob:
		return true
	}
	return false
}

// Pos is a source position: 1-based line and column plus the file name.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries line information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token with its source position and raw text.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // literal text for Ident and literal kinds; empty for keywords
}

func (t Token) String() string {
	if t.Text != "" && !t.Kind.IsKeyword() {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	}
	return t.Kind.String()
}
