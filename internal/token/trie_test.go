package token

import "testing"

func TestLookupWord(t *testing.T) {
	if got := LookupWord("HUGZ"); got != KwHugz {
		t.Errorf("LookupWord(HUGZ) = %v", got)
	}
	if got := LookupWord("ME"); got != KwMe {
		t.Errorf("LookupWord(ME) = %v", got)
	}
	// Words that only begin longer phrases are not complete keywords.
	if got := LookupWord("BOTH"); got != Illegal {
		t.Errorf("LookupWord(BOTH) = %v, want Illegal", got)
	}
	if got := LookupWord("kitteh"); got != Illegal {
		t.Errorf("LookupWord(kitteh) = %v, want Illegal", got)
	}
}

func TestIsKeywordWord(t *testing.T) {
	for _, w := range []string{"BOTH", "IM", "TXT", "SUM", "HUGZ", "I", "WE"} {
		if !IsKeywordWord(w) {
			t.Errorf("IsKeywordWord(%s) = false", w)
		}
	}
	if IsKeywordWord("CHEEZBURGER") {
		t.Error("IsKeywordWord(CHEEZBURGER) = true")
	}
}

func TestMatcherLongestMatch(t *testing.T) {
	// "IM SRSLY MESIN WIF" must win over the shorter "IM MESIN WIF" path.
	var m Matcher
	m.Reset()
	for _, w := range []string{"IM", "SRSLY", "MESIN", "WIF"} {
		if !m.Feed(w) {
			t.Fatalf("Feed(%s) failed", w)
		}
	}
	kind, n := m.Best()
	if kind != KwImSrslyMesinWif || n != 4 {
		t.Errorf("Best() = %v, %d", kind, n)
	}
}

func TestMatcherTracksIntermediateBest(t *testing.T) {
	// Feeding "ITZ SRSLY" then a dead end must report the 1-word "ITZ".
	var m Matcher
	m.Reset()
	if !m.Feed("ITZ") {
		t.Fatal("Feed(ITZ) failed")
	}
	if !m.Feed("SRSLY") {
		t.Fatal("Feed(SRSLY) failed")
	}
	if m.Feed("CAT") {
		t.Fatal("Feed(CAT) should not extend ITZ SRSLY")
	}
	kind, n := m.Best()
	if kind != KwItz || n != 1 {
		t.Errorf("Best() = %v, %d; want ITZ, 1", kind, n)
	}
}

func TestMatcherCanExtend(t *testing.T) {
	var m Matcher
	m.Reset()
	m.Feed("AN")
	if !m.CanExtend() {
		t.Error("AN begins AN THAR IZ / AN ITZ / AN IM SHARIN IT / AN STUFF; CanExtend should be true")
	}
	m.Feed("STUFF")
	if m.CanExtend() {
		t.Error("AN STUFF is terminal; CanExtend should be false")
	}
	if kind, _ := m.Best(); kind != KwAnStuff {
		t.Errorf("Best() = %v", kind)
	}
}

func TestKindStringAndPredicates(t *testing.T) {
	if KwSumOf.String() != "SUM OF" {
		t.Errorf("KwSumOf.String() = %q", KwSumOf.String())
	}
	if Ident.String() != "IDENT" {
		t.Errorf("Ident.String() = %q", Ident.String())
	}
	if !KwHugz.IsKeyword() || Ident.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
	if !NumbrLit.IsLiteral() || KwHugz.IsLiteral() {
		t.Error("IsLiteral misclassifies")
	}
	if !KwNumbr.IsType() || KwHugz.IsType() {
		t.Error("IsType misclassifies")
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "a.lol", Line: 3, Col: 7}
	if p.String() != "a.lol:3:7" {
		t.Errorf("Pos.String() = %q", p.String())
	}
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Error("file-less Pos format wrong")
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos should be invalid")
	}
}
