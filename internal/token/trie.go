package token

import "strings"

// trieNode is one level of the multi-word keyword trie. Each edge is a
// single upper-case word; a node with kind != Illegal terminates a phrase.
type trieNode struct {
	kind Kind // Illegal when this node does not end a keyword phrase
	next map[string]*trieNode
}

var root *trieNode

func init() {
	root = &trieNode{kind: Illegal}
	for kind, phrase := range Phrases {
		n := root
		for _, w := range strings.Fields(phrase) {
			if n.next == nil {
				n.next = make(map[string]*trieNode)
			}
			child, ok := n.next[w]
			if !ok {
				child = &trieNode{kind: Illegal}
				n.next[w] = child
			}
			n = child
		}
		n.kind = kind
	}
}

// Matcher performs incremental longest-match keyword recognition.
// The lexer feeds it one word at a time; the matcher tracks the longest
// complete phrase seen so far and how many words past it have been consumed.
type Matcher struct {
	node     *trieNode
	best     Kind // longest complete phrase so far (Illegal if none)
	bestLen  int  // words in best
	consumed int  // words fed since Reset
}

// Reset prepares the matcher for a new phrase.
func (m *Matcher) Reset() {
	m.node = root
	m.best = Illegal
	m.bestLen = 0
	m.consumed = 0
}

// Feed advances the matcher with the next word. It returns false when the
// word does not extend any keyword phrase, at which point the caller should
// consult Best for the longest complete phrase seen.
func (m *Matcher) Feed(word string) bool {
	if m.node == nil {
		m.Reset()
	}
	child, ok := m.node.next[word]
	if !ok {
		return false
	}
	m.node = child
	m.consumed++
	if child.kind != Illegal {
		m.best = child.kind
		m.bestLen = m.consumed
	}
	return true
}

// CanExtend reports whether a longer phrase is still possible.
func (m *Matcher) CanExtend() bool { return m.node != nil && len(m.node.next) > 0 }

// Best returns the longest complete keyword phrase matched so far and the
// number of words it spans. Kind is Illegal when no phrase matched.
func (m *Matcher) Best() (Kind, int) { return m.best, m.bestLen }

// LookupWord returns the keyword kind for a single-word phrase, or Illegal.
func LookupWord(w string) Kind {
	if n, ok := root.next[w]; ok {
		return n.kind
	}
	return Illegal
}

// IsKeywordWord reports whether w begins at least one keyword phrase.
// Identifiers that collide with such words are still permitted by the
// grammar in positions where no keyword can begin.
func IsKeywordWord(w string) bool {
	_, ok := root.next[w]
	return ok
}
