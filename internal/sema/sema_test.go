package sema_test

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/sema"
)

func check(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse("t.lol", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = sema.Check(prog)
	return err
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

func TestWeHasAMustBeTopLevel(t *testing.T) {
	wantErr(t, `HAI 1.2
WIN, O RLY?
YA RLY
  WE HAS A x ITZ SRSLY A NUMBR
OIC
KTHXBYE`, "top level")
}

func TestWeHasAInFunctionRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I bad
  WE HAS A x ITZ SRSLY A NUMBR
IF U SAY SO
KTHXBYE`, "collective")
}

func TestSharinOnPrivateRejected(t *testing.T) {
	wantErr(t, "HAI 1.2\nI HAS A x ITZ A NUMBR AN IM SHARIN IT\nKTHXBYE", "WE HAS A")
}

func TestFoundYrOutsideFunction(t *testing.T) {
	wantErr(t, "HAI 1.2\nFOUND YR 1\nKTHXBYE", "outside of a function")
}

func TestGtfoAtTopLevel(t *testing.T) {
	wantErr(t, "HAI 1.2\nGTFO\nKTHXBYE", "outside")
}

func TestCallArityChecked(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I f YR a AN YR b
  FOUND YR a
IF U SAY SO
VISIBLE I IZ f YR 1 MKAY
KTHXBYE`, "arguments")
}

func TestUnknownFunction(t *testing.T) {
	wantErr(t, "HAI 1.2\nVISIBLE I IZ nope MKAY\nKTHXBYE", "no such function")
}

func TestDuplicateFunction(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I f
  GTFO
IF U SAY SO
HOW IZ I f
  GTFO
IF U SAY SO
KTHXBYE`, "declared twice")
}

func TestDuplicateParam(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I f YR a AN YR a
  FOUND YR a
IF U SAY SO
KTHXBYE`, "duplicate parameter")
}

func TestUndeclaredVariable(t *testing.T) {
	wantErr(t, "HAI 1.2\nVISIBLE nope\nKTHXBYE", "has not been declared")
}

func TestUrOnPrivateRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
I HAS A x ITZ 1
TXT MAH BFF 0, VISIBLE UR x
KTHXBYE`, "remotely addressable")
}

func TestIndexingScalarRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
I HAS A x ITZ SRSLY A NUMBR
VISIBLE x'Z 0
KTHXBYE`, "not an array")
}

func TestArrayInitializerRejected(t *testing.T) {
	wantErr(t, "HAI 1.2\nI HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 4 AN ITZ 5\nKTHXBYE", "initializer")
}

func TestTharIzOnScalarRejected(t *testing.T) {
	// The parser already rejects a size clause on a scalar declaration.
	_, err := parser.Parse("t.lol", "HAI 1.2\nI HAS A x ITZ A NUMBR AN THAR IZ 5\nKTHXBYE")
	if err == nil || !strings.Contains(err.Error(), "LOTZ A") {
		t.Fatalf("want LOTZ A diagnostic from the parser, got %v", err)
	}
}

func TestMahOutsidePredicationRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
VISIBLE MAH x
KTHXBYE`, "TXT MAH BFF")
}

func TestSymmetricHeapLayoutIsDeclarationOrder(t *testing.T) {
	prog, err := parser.Parse("t.lol", `HAI 1.2
WE HAS A first ITZ SRSLY A NUMBR
I HAS A private ITZ 0
WE HAS A second ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4 AN IM SHARIN IT
WE HAS A third ITZ SRSLY A YARN AN IM SHARIN IT
KTHXBYE`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Shared) != 3 {
		t.Fatalf("shared symbols = %d, want 3", len(info.Shared))
	}
	for i, name := range []string{"first", "second", "third"} {
		if info.Shared[i].Name != name || info.Shared[i].Heap != i {
			t.Errorf("slot %d = %s (heap %d), want %s", i, info.Shared[i].Name, info.Shared[i].Heap, name)
		}
	}
	if len(info.Locks) != 2 {
		t.Fatalf("locks = %d, want 2", len(info.Locks))
	}
	if info.Locks[0].Name != "second" || info.Locks[1].Name != "third" {
		t.Errorf("lock order = %s, %s", info.Locks[0].Name, info.Locks[1].Name)
	}
	if !info.Shared[1].IsArray || info.Shared[1].Lock != 0 {
		t.Errorf("second: %+v", info.Shared[1])
	}
}

func TestLoopVarScopedToLoop(t *testing.T) {
	// An implicit loop counter is not visible after its loop.
	wantErr(t, `HAI 1.2
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3
  VISIBLE i
IM OUTTA YR l
VISIBLE i
KTHXBYE`, "has not been declared")
}

func TestItAlwaysVisible(t *testing.T) {
	if err := check(t, "HAI 1.2\nVISIBLE IT\nKTHXBYE"); err != nil {
		t.Errorf("IT should always resolve: %v", err)
	}
}
