package sema_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/sema"
)

func check(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse("t.lol", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = sema.Check(prog)
	return err
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

func TestWeHasAMustBeTopLevel(t *testing.T) {
	wantErr(t, `HAI 1.2
WIN, O RLY?
YA RLY
  WE HAS A x ITZ SRSLY A NUMBR
OIC
KTHXBYE`, "top level")
}

func TestWeHasAInFunctionRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I bad
  WE HAS A x ITZ SRSLY A NUMBR
IF U SAY SO
KTHXBYE`, "collective")
}

func TestSharinOnPrivateRejected(t *testing.T) {
	wantErr(t, "HAI 1.2\nI HAS A x ITZ A NUMBR AN IM SHARIN IT\nKTHXBYE", "WE HAS A")
}

func TestFoundYrOutsideFunction(t *testing.T) {
	wantErr(t, "HAI 1.2\nFOUND YR 1\nKTHXBYE", "outside of a function")
}

func TestGtfoAtTopLevel(t *testing.T) {
	wantErr(t, "HAI 1.2\nGTFO\nKTHXBYE", "outside")
}

func TestCallArityChecked(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I f YR a AN YR b
  FOUND YR a
IF U SAY SO
VISIBLE I IZ f YR 1 MKAY
KTHXBYE`, "arguments")
}

func TestUnknownFunction(t *testing.T) {
	wantErr(t, "HAI 1.2\nVISIBLE I IZ nope MKAY\nKTHXBYE", "no such function")
}

func TestDuplicateFunction(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I f
  GTFO
IF U SAY SO
HOW IZ I f
  GTFO
IF U SAY SO
KTHXBYE`, "declared twice")
}

func TestDuplicateParam(t *testing.T) {
	wantErr(t, `HAI 1.2
HOW IZ I f YR a AN YR a
  FOUND YR a
IF U SAY SO
KTHXBYE`, "duplicate parameter")
}

func TestUndeclaredVariable(t *testing.T) {
	wantErr(t, "HAI 1.2\nVISIBLE nope\nKTHXBYE", "has not been declared")
}

func TestUrOnPrivateRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
I HAS A x ITZ 1
TXT MAH BFF 0, VISIBLE UR x
KTHXBYE`, "remotely addressable")
}

func TestIndexingScalarRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
I HAS A x ITZ SRSLY A NUMBR
VISIBLE x'Z 0
KTHXBYE`, "not an array")
}

func TestArrayInitializerRejected(t *testing.T) {
	wantErr(t, "HAI 1.2\nI HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 4 AN ITZ 5\nKTHXBYE", "initializer")
}

func TestTharIzOnScalarRejected(t *testing.T) {
	// The parser already rejects a size clause on a scalar declaration.
	_, err := parser.Parse("t.lol", "HAI 1.2\nI HAS A x ITZ A NUMBR AN THAR IZ 5\nKTHXBYE")
	if err == nil || !strings.Contains(err.Error(), "LOTZ A") {
		t.Fatalf("want LOTZ A diagnostic from the parser, got %v", err)
	}
}

func TestMahOutsidePredicationRejected(t *testing.T) {
	wantErr(t, `HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR
VISIBLE MAH x
KTHXBYE`, "TXT MAH BFF")
}

func TestSymmetricHeapLayoutIsDeclarationOrder(t *testing.T) {
	prog, err := parser.Parse("t.lol", `HAI 1.2
WE HAS A first ITZ SRSLY A NUMBR
I HAS A private ITZ 0
WE HAS A second ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4 AN IM SHARIN IT
WE HAS A third ITZ SRSLY A YARN AN IM SHARIN IT
KTHXBYE`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Shared) != 3 {
		t.Fatalf("shared symbols = %d, want 3", len(info.Shared))
	}
	for i, name := range []string{"first", "second", "third"} {
		if info.Shared[i].Name != name || info.Shared[i].Heap != i {
			t.Errorf("slot %d = %s (heap %d), want %s", i, info.Shared[i].Name, info.Shared[i].Heap, name)
		}
	}
	if len(info.Locks) != 2 {
		t.Fatalf("locks = %d, want 2", len(info.Locks))
	}
	if info.Locks[0].Name != "second" || info.Locks[1].Name != "third" {
		t.Errorf("lock order = %s, %s", info.Locks[0].Name, info.Locks[1].Name)
	}
	if !info.Shared[1].IsArray || info.Shared[1].Lock != 0 {
		t.Errorf("second: %+v", info.Shared[1])
	}
}

func TestLoopVarScopedToLoop(t *testing.T) {
	// An implicit loop counter is not visible after its loop.
	wantErr(t, `HAI 1.2
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3
  VISIBLE i
IM OUTTA YR l
VISIBLE i
KTHXBYE`, "has not been declared")
}

func TestItAlwaysVisible(t *testing.T) {
	if err := check(t, "HAI 1.2\nVISIBLE IT\nKTHXBYE"); err != nil {
		t.Errorf("IT should always resolve: %v", err)
	}
}

// TestSlotResolutionAnnotatesNodes checks the slot-resolution pass every
// backend shares: each VarRef, Decl, and counted Loop carries its resolved
// symbol with a stable frame slot and lexical depth.
func TestSlotResolutionAnnotatesNodes(t *testing.T) {
	prog, err := parser.Parse("t.lol", `HAI 1.2
HOW IZ I f YR p
  I HAS A local ITZ p
  FOUND YR local
IF U SAY SO
I HAS A x ITZ 1
I HAS A y ITZ 2
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 2
  y R SUM OF y AN x
IM OUTTA YR loop
VISIBLE I IZ f YR y MKAY
KTHXBYE`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}

	syms := map[string]*sema.Symbol{}
	for _, s := range info.Main.Order {
		syms[s.Name] = s
	}
	// IT always owns slot 0; declarations follow in source order.
	for name, slot := range map[string]int{"IT": 0, "x": 1, "y": 2, "i": 3} {
		s := syms[name]
		if s == nil {
			t.Fatalf("main frame has no symbol %s", name)
		}
		if s.Slot != slot || s.Depth != 0 {
			t.Errorf("%s = slot %d depth %d, want slot %d depth 0", name, s.Slot, s.Depth, slot)
		}
	}
	for _, s := range info.Funcs["f"].Scope.Order {
		if s.Depth != 1 {
			t.Errorf("function symbol %s has depth %d, want 1", s.Name, s.Depth)
		}
	}

	// Every resolved node must carry the same *Symbol the Refs table has.
	annotated := 0
	ast.Walk(prog, func(n ast.Node) bool {
		if v, ok := n.(*ast.VarRef); ok {
			sym, _ := v.Sym.(*sema.Symbol)
			if sym == nil {
				t.Errorf("VarRef %s at %s not annotated", v.Name, v.Position)
			} else if info.Refs[v] != sym {
				t.Errorf("VarRef %s annotation disagrees with Refs", v.Name)
			}
			annotated++
		}
		return true
	})
	if annotated == 0 {
		t.Fatal("walk found no VarRefs")
	}
}
