// Package sema performs semantic analysis over a parsed parallel-LOLCODE
// program: symbol resolution, scope construction, and the legality rules of
// the paper's SPMD/PGAS extensions (symmetric declarations must be
// collective, UR/MAH only under TXT MAH BFF predication, locks only on
// IM SHARIN IT symbols).
//
// The analysis also assigns frame slots to every symbol and a symmetric
// heap index to every WE HAS A symbol; the interpreter, the closure
// compiler and the Go emitter all consume this layout, which is exactly the
// per-PE symmetric layout of the paper's Figure 1.
package sema

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/value"
)

// Error is a semantic error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// SymKind classifies a resolved symbol.
type SymKind int

const (
	SymPrivate SymKind = iota // I HAS A: per-PE private variable
	SymShared                 // WE HAS A: symmetric shared variable (PGAS)
	SymParam                  // HOW IZ I parameter
	SymLoopVar                // implicitly declared loop counter
	SymIt                     // the implicit IT result variable
)

func (k SymKind) String() string {
	switch k {
	case SymPrivate:
		return "private"
	case SymShared:
		return "shared"
	case SymParam:
		return "param"
	case SymLoopVar:
		return "loopvar"
	case SymIt:
		return "IT"
	}
	return "?"
}

// Symbol is a resolved variable. Slot and Depth together are the lexical
// address every backend shares: LOLCODE scoping is function-flat, so two
// frame depths suffice (0 = the main program frame, 1 = a HOW IZ I frame)
// and a reference can never see a frame other than its own — which is why
// the interpreter and the VM address variables by Slot alone.
type Symbol struct {
	Name    string
	Kind    SymKind
	Decl    *ast.Decl // nil for params, loop vars and IT
	Static  bool      // ITZ SRSLY A: statically typed
	Type    value.Kind
	IsArray bool
	Sharin  bool // AN IM SHARIN IT: has an implicit lock
	Slot    int  // index into the owning frame
	Depth   int  // lexical frame depth: 0 = main, 1 = function body
	Heap    int  // symmetric heap index for shared symbols; -1 otherwise
	Lock    int  // lock index for Sharin symbols; -1 otherwise
}

// Scope is a flat name table for one frame (the main program or one
// function body). LOLCODE scoping is function-flat; loop variables are the
// only block-scoped names and are handled by the resolver.
type Scope struct {
	Names map[string]*Symbol
	Order []*Symbol // slot order
	Depth int       // lexical frame depth: 0 = main, 1 = function body
}

func newScope(depth int) *Scope {
	return &Scope{Names: make(map[string]*Symbol), Depth: depth}
}

func (s *Scope) declare(sym *Symbol) {
	sym.Slot = len(s.Order)
	sym.Depth = s.Depth
	s.Names[sym.Name] = sym
	s.Order = append(s.Order, sym)
}

// FuncInfo is the analysis result for one HOW IZ I declaration.
type FuncInfo struct {
	Decl  *ast.FuncDecl
	Scope *Scope
}

// Info is the full analysis result consumed by all backends.
type Info struct {
	Prog  *ast.Program
	Main  *Scope
	Funcs map[string]*FuncInfo

	// Refs annotates resolved nodes with their symbols: *ast.VarRef
	// references, *ast.Decl declarations, and *ast.Loop counter variables.
	Refs map[ast.Node]*Symbol

	// Shared lists the symmetric symbols in declaration order: the
	// symmetric heap layout shared by every PE (paper Figure 1).
	Shared []*Symbol

	// Locks lists the Sharin symbols in declaration order; index is the
	// lock id used by the runtime.
	Locks []*Symbol
}

type checker struct {
	info *Info
	errs ErrorList

	scope       *Scope // current frame scope
	inFunc      bool
	loopDepth   int
	switchDepth int
	predicated  int  // nesting depth of TXT MAH BFF
	topLevel    bool // directly in the main body (for WE HAS A placement)
}

// Check analyses prog and returns the binding information.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:  prog,
			Main:  newScope(0),
			Funcs: make(map[string]*FuncInfo),
			Refs:  make(map[ast.Node]*Symbol),
		},
	}

	// IT exists in every frame.
	c.scope = c.info.Main
	c.scope.declare(&Symbol{Name: "IT", Kind: SymIt, Heap: -1, Lock: -1})

	// Functions are hoisted: declare headers first so calls resolve in any
	// order.
	for _, fd := range prog.Funcs {
		if _, dup := c.info.Funcs[fd.Name]; dup {
			c.errorf(fd.Position, "function %s declared twice", fd.Name)
			continue
		}
		c.info.Funcs[fd.Name] = &FuncInfo{Decl: fd}
	}

	c.topLevel = true
	c.stmts(prog.Body)
	c.topLevel = false

	for _, fd := range prog.Funcs {
		fi := c.info.Funcs[fd.Name]
		if fi == nil || fi.Decl != fd {
			continue // duplicate
		}
		fi.Scope = newScope(1)
		saved := c.scope
		c.scope = fi.Scope
		c.scope.declare(&Symbol{Name: "IT", Kind: SymIt, Heap: -1, Lock: -1})
		for _, pname := range fd.Params {
			if _, dup := c.scope.Names[pname]; dup {
				c.errorf(fd.Position, "function %s has duplicate parameter %s", fd.Name, pname)
				continue
			}
			c.scope.declare(&Symbol{Name: pname, Kind: SymParam, Heap: -1, Lock: -1})
		}
		c.inFunc = true
		c.stmts(fd.Body)
		c.inFunc = false
		c.scope = saved
	}

	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Decl:
		c.decl(n)

	case *ast.Assign:
		c.target(n.Target)
		c.expr(n.Value)

	case *ast.CastStmt:
		c.target(n.Target)

	case *ast.Visible:
		for _, a := range n.Args {
			c.expr(a)
		}

	case *ast.Gimmeh:
		c.target(n.Target)

	case *ast.ExprStmt:
		c.expr(n.X)

	case *ast.If:
		saved := c.topLevel
		c.topLevel = false
		c.stmts(n.Then)
		for _, m := range n.Mebbes {
			c.expr(m.Cond)
			c.stmts(m.Body)
		}
		c.stmts(n.Else)
		c.topLevel = saved

	case *ast.Switch:
		saved := c.topLevel
		c.topLevel = false
		c.switchDepth++
		for _, cs := range n.Cases {
			c.expr(cs.Lit)
			c.stmts(cs.Body)
		}
		c.stmts(n.Default)
		c.switchDepth--
		c.topLevel = saved

	case *ast.Loop:
		c.loop(n)

	case *ast.Gtfo:
		if c.loopDepth == 0 && c.switchDepth == 0 && !c.inFunc {
			c.errorf(n.Position, "GTFO outside of a loop, switch, or function")
		}

	case *ast.FoundYr:
		if !c.inFunc {
			c.errorf(n.Position, "FOUND YR outside of a function")
		}
		c.expr(n.X)

	case *ast.FuncDecl:
		// Hoisted by the parser at top level; nested ones are parse errors.

	case *ast.Barrier:
		if c.inFunc {
			// Legal but noteworthy: a barrier inside a function is
			// collective and must be reached by all PEs. No error.
			_ = n
		}

	case *ast.Lock:
		c.lock(n)

	case *ast.TxtStmt:
		c.expr(n.Target)
		saved := c.topLevel
		c.topLevel = false
		c.predicated++
		c.stmt(n.Stmt)
		c.predicated--
		c.topLevel = saved

	case *ast.TxtBlock:
		c.expr(n.Target)
		saved := c.topLevel
		c.topLevel = false
		c.predicated++
		c.stmts(n.Body)
		c.predicated--
		c.topLevel = saved
	}
}

func (c *checker) decl(n *ast.Decl) {
	if n.Scope == ast.ScopeWe {
		if c.inFunc {
			c.errorf(n.Position, "WE HAS A is not allowed inside a function: symmetric allocation must be collective")
		} else if !c.topLevel {
			c.errorf(n.Position, "WE HAS A must appear at the top level of the program so every PE allocates it")
		}
	}
	if prev, dup := c.scope.Names[n.Name]; dup {
		if prev.Kind != SymLoopVar {
			c.errorf(n.Position, "variable %s is already declared", n.Name)
			return
		}
	}

	sym := &Symbol{
		Name:    n.Name,
		Decl:    n,
		Static:  n.Static,
		Type:    n.Type,
		IsArray: n.IsArray,
		Sharin:  n.Sharin,
		Heap:    -1,
		Lock:    -1,
	}
	if n.Scope == ast.ScopeWe {
		sym.Kind = SymShared
		sym.Heap = len(c.info.Shared)
		c.info.Shared = append(c.info.Shared, sym)
	} else {
		sym.Kind = SymPrivate
		if n.Sharin {
			c.errorf(n.Position, "AN IM SHARIN IT requires a WE HAS A declaration")
		}
	}
	if n.Sharin && n.Scope == ast.ScopeWe {
		sym.Lock = len(c.info.Locks)
		c.info.Locks = append(c.info.Locks, sym)
	}
	c.scope.declare(sym)
	c.info.Refs[n] = sym
	n.Sym = sym

	if n.Size != nil {
		c.expr(n.Size)
	}
	if n.Init != nil {
		c.expr(n.Init)
	}
	if n.IsArray && n.Init != nil {
		c.errorf(n.Position, "array %s cannot take an ITZ initializer", n.Name)
	}
}

func (c *checker) loop(n *ast.Loop) {
	saved := c.topLevel
	c.topLevel = false
	var implicit *Symbol
	if n.Var != "" {
		if existing, ok := c.scope.Names[n.Var]; ok {
			c.info.Refs[n] = existing
			n.Sym = existing
		} else {
			// The paper's n-body listing uses undeclared loop counters; they
			// are implicitly declared as NUMBR 0 for the loop's duration.
			implicit = &Symbol{Name: n.Var, Kind: SymLoopVar, Type: value.Numbr, Heap: -1, Lock: -1}
			c.scope.declare(implicit)
			c.info.Refs[n] = implicit
			n.Sym = implicit
		}
	}
	if n.Cond != nil {
		c.expr(n.Cond)
	}
	c.loopDepth++
	c.stmts(n.Body)
	c.loopDepth--
	if implicit != nil {
		// The name stays in the frame (slots are stable) but is no longer
		// visible for resolution outside the loop.
		delete(c.scope.Names, n.Var)
	}
	c.topLevel = saved
}

func (c *checker) lock(n *ast.Lock) {
	sym := c.resolve(n.Var)
	if sym == nil {
		return
	}
	if !sym.Sharin {
		c.errorf(n.Position, "%v: variable %s has no lock; declare it with AN IM SHARIN IT", n.Action, n.Var.Name)
	}
}

// target checks an assignment/GIMMEH target.
func (c *checker) target(e ast.Expr) {
	switch t := e.(type) {
	case *ast.VarRef:
		sym := c.resolve(t)
		if sym != nil && sym.IsArray {
			// Whole-array assignment is legal (ring example); nothing to do.
			_ = sym
		}
	case *ast.Index:
		sym := c.resolve(t.Arr)
		if sym != nil && !sym.IsArray && sym.Kind != SymParam && sym.Kind != SymIt {
			c.errorf(t.Position, "%s is not an array; 'Z indexing needs a LOTZ A declaration", t.Arr.Name)
		}
		c.expr(t.IndexE)
	case *ast.Srs:
		c.expr(t.X)
		c.spaceCheck(t.Position, t.Space)
	default:
		c.errorf(e.Pos(), "cannot assign to this expression")
	}
}

func (c *checker) expr(e ast.Expr) {
	switch n := e.(type) {
	case nil:
	case *ast.VarRef:
		c.resolve(n)
	case *ast.Index:
		sym := c.resolve(n.Arr)
		if sym != nil && !sym.IsArray && sym.Kind != SymParam && sym.Kind != SymIt {
			c.errorf(n.Position, "%s is not an array; 'Z indexing needs a LOTZ A declaration", n.Arr.Name)
		}
		c.expr(n.IndexE)
	case *ast.BinExpr:
		c.expr(n.X)
		c.expr(n.Y)
	case *ast.UnExpr:
		c.expr(n.X)
	case *ast.NaryExpr:
		for _, o := range n.Operands {
			c.expr(o)
		}
	case *ast.CastExpr:
		c.expr(n.X)
	case *ast.Call:
		fi, ok := c.info.Funcs[n.Name]
		if !ok {
			c.errorf(n.Position, "I IZ %s: no such function", n.Name)
		} else if len(n.Args) != len(fi.Decl.Params) {
			c.errorf(n.Position, "I IZ %s: %d arguments for %d parameters",
				n.Name, len(n.Args), len(fi.Decl.Params))
		}
		for _, a := range n.Args {
			c.expr(a)
		}
	case *ast.Srs:
		c.expr(n.X)
		c.spaceCheck(n.Position, n.Space)
	case *ast.YarnLit:
		// Interpolation names resolve at runtime (SRS-like semantics).
	}
}

// resolve binds a VarRef to its symbol, enforcing the UR/MAH predication
// rule from Table II ("only valid within a statement that is predicated").
func (c *checker) resolve(v *ast.VarRef) *Symbol {
	c.spaceCheck(v.Position, v.Space)
	sym, ok := c.scope.Names[v.Name]
	if !ok {
		c.errorf(v.Position, "variable %s has not been declared", v.Name)
		return nil
	}
	if v.Space == ast.SpaceUr && sym.Kind != SymShared {
		c.errorf(v.Position, "UR %s: only WE HAS A symmetric variables are remotely addressable", v.Name)
	}
	c.info.Refs[v] = sym
	v.Sym = sym
	return sym
}

func (c *checker) spaceCheck(pos token.Pos, sp ast.Space) {
	if sp != ast.SpaceDefault && c.predicated == 0 {
		c.errorf(pos, "%v is only valid inside a TXT MAH BFF predicated statement or block", sp)
	}
}
