// Package faultinject is the repository's failpoint seam: named places
// in production code where a test (or an operator running a chaos
// drill) can force a failure that is otherwise hard to reach — a child
// process killed mid-run, a binary corrupted on publish, a result-cache
// claim dropped between execution and fulfilment.
//
// The design constraints, in order:
//
//   - Zero overhead when disarmed. Fire is one atomic bool load on the
//     fast path; no map lookup, no lock, no allocation. Production
//     binaries carry the seam at the cost of a predictable branch.
//   - No build tags. The chaos tests run against the same code the
//     server ships; a failpoint that exists only in a -tags=chaos build
//     would exercise a different binary than production runs.
//   - Armed explicitly: programmatically via Arm (tests), or from the
//     LOLSERV_FAILPOINTS environment variable via ArmFromEnv
//     (cmd/lolserv calls it at startup and logs loudly when anything is
//     armed, so a failpoint can never be live in production silently).
//
// A failpoint spec is a comma-separated list of "name[=count]" terms:
// "native.run.kill=2" fires the named point twice and then goes dead;
// a bare "name" (or count -1) fires forever. What "firing" means is the
// call site's business — faultinject only answers "should this point
// fail now?"; the call site constructs the failure that is natural
// there (kill the process, truncate the file, drop the claim).
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "LOLSERV_FAILPOINTS"

// ErrInjected is the error call sites conventionally wrap when a fired
// failpoint's natural failure is "return an error". Tests can assert
// errors.Is(err, ErrInjected) to distinguish an injected failure from a
// real one that happened to occur during the drill.
var ErrInjected = errors.New("injected fault")

var (
	armed  atomic.Bool // true iff any failpoint may still fire
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	remaining int64 // -1 = unlimited
	fired     int64
}

// Fire reports whether the named failpoint triggers now, consuming one
// fire from its budget. Disarmed (the steady state) it is a single
// atomic load and returns false.
func Fire(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok || p.remaining == 0 {
		return false
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.fired++
	return true
}

// Arm parses a failpoint spec ("a=2,b,c=-1") and arms every named
// point, adding to any already-armed set. An empty spec is a no-op.
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type parsed struct {
		name  string
		count int64
	}
	var ps []parsed
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, countStr, has := strings.Cut(term, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("faultinject: empty failpoint name in %q", spec)
		}
		count := int64(-1)
		if has {
			n, err := strconv.ParseInt(strings.TrimSpace(countStr), 10, 64)
			if err != nil || n < -1 {
				return fmt.Errorf("faultinject: bad count in %q (want an integer >= -1)", term)
			}
			count = n
		}
		ps = append(ps, parsed{name, count})
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range ps {
		points[p.name] = &point{remaining: p.count}
	}
	if len(points) > 0 {
		armed.Store(true)
	}
	return nil
}

// ArmFromEnv arms failpoints from the LOLSERV_FAILPOINTS environment
// variable and returns the names it armed (for the caller to log).
func ArmFromEnv() ([]string, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	if err := Arm(spec); err != nil {
		return nil, err
	}
	return Active(), nil
}

// Active returns the names of failpoints that may still fire, sorted.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	var names []string
	for name, p := range points {
		if p.remaining != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Fired reports how many times the named failpoint has triggered.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// Reset disarms every failpoint and forgets their history. Tests that
// arm failpoints must defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}
