package faultinject

import (
	"sync"
	"testing"
)

func TestDisarmedNeverFires(t *testing.T) {
	Reset()
	if Fire("anything") {
		t.Fatal("disarmed failpoint fired")
	}
	if got := Active(); len(got) != 0 {
		t.Fatalf("Active() = %v, want empty", got)
	}
}

func TestArmCountedAndUnlimited(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("kill=2, forever, never=0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !Fire("kill") {
			t.Fatalf("kill fire %d: did not trigger", i)
		}
	}
	if Fire("kill") {
		t.Fatal("kill fired beyond its count")
	}
	if Fired("kill") != 2 {
		t.Fatalf("Fired(kill) = %d, want 2", Fired("kill"))
	}
	for i := 0; i < 10; i++ {
		if !Fire("forever") {
			t.Fatalf("unlimited point stopped firing at %d", i)
		}
	}
	if Fire("never") {
		t.Fatal("count-0 point fired")
	}
	if Fire("unarmed") {
		t.Fatal("unknown point fired while others armed")
	}
	// Exhausted points drop out of Active; unlimited ones stay.
	if got := Active(); len(got) != 1 || got[0] != "forever" {
		t.Fatalf("Active() = %v, want [forever]", got)
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	defer Reset()
	for _, spec := range []string{"=3", "a=x", "a=-2"} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) succeeded, want error", spec)
		}
	}
	if err := Arm(""); err != nil {
		t.Errorf("empty spec: %v", err)
	}
}

func TestConcurrentFireExactCount(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("race=100"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var hits sync.Map
	total := make(chan int, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 50; i++ {
				if Fire("race") {
					n++
				}
			}
			hits.Store(g, n)
			total <- n
		}(g)
	}
	wg.Wait()
	close(total)
	sum := 0
	for n := range total {
		sum += n
	}
	if sum != 100 {
		t.Fatalf("100-count point fired %d times across goroutines", sum)
	}
}
