// Quickstart: parse and run a parallel LOLCODE program from Go.
//
// The embedded program is the classic first SPMD exercise — every PE
// introduces itself, they all meet at a barrier (HUGZ), then PE 0 reports
// how many friends showed up. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/interp"
)

const program = `HAI 1.2
BTW Every PE runs this same program (SPMD); ME and MAH FRENZ tell it who
BTW it is and how many friends are running alongside it.

WE HAS A roster ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 16

VISIBLE "O HAI! I IZ FREND " ME " OF " MAH FRENZ

BTW Everyone records itself on PE 0's roster, one-sided.
TXT MAH BFF 0, UR roster'Z ME R SUM OF ME AN 1

HUGZ

BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A count ITZ A NUMBR
  IM IN YR tally UPPIN YR i TIL BOTH SAEM i AN MAH FRENZ
    count R SUM OF count AN roster'Z i
  IM OUTTA YR tally
  VISIBLE "PE 0 COUNTED " count " CHECKINZ. KTHX!"
OIC
KTHXBYE`

func main() {
	prog, err := core.Parse("quickstart.lol", program)
	if err != nil {
		log.Fatal(err)
	}

	res, err := prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config: interp.Config{
			NP:          4,
			Seed:        1,
			Stdout:      os.Stdout,
			GroupOutput: true, // deterministic ordering for the demo
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n-- runtime: %d remote puts, %d barriers --\n",
		res.Stats.RemotePuts, res.Stats.Barriers)
}
