// Ring: use the shmem PGAS runtime directly from Go — the substrate under
// the LOLCODE extensions is a library in its own right, with the same
// minimal OpenSHMEM surface the paper builds on (my_pe/n_pes, put/get,
// barrier).
//
// Each PE passes a token around the ring np times, accumulating every
// rank it visits; the result checks that one-sided puts plus barriers give
// exactly the data movement of the paper's Figure 2.
//
//	go run ./examples/ring -np 8 -machine parallella
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/machine"
	"repro/internal/shmem"
	"repro/internal/value"
)

func main() {
	np := flag.Int("np", 8, "number of processing elements")
	machineName := flag.String("machine", "parallella", "cost model: "+strings.Join(machine.Names(), ", "))
	flag.Parse()

	model, err := machine.ByName(*machineName)
	if err != nil {
		log.Fatal(err)
	}

	// Symmetric layout: one token slot per PE, as in Figure 1.
	syms := []shmem.SymbolSpec{{Name: "token"}}
	world, err := shmem.NewWorld(*np, syms, 0, shmem.Options{Model: model})
	if err != nil {
		log.Fatal(err)
	}

	const tokenSlot = 0
	err = world.Run(func(pe *shmem.PE) error {
		if err := pe.InitScalar(tokenSlot, value.NewNumbr(int64(pe.ID()))); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}

		// Each round, push the running token to the right neighbour, then
		// barrier so everyone sees a settled value before reading it back.
		next := (pe.ID() + 1) % pe.NPEs()
		for round := 0; round < pe.NPEs(); round++ {
			tok, err := pe.LocalGet(tokenSlot)
			if err != nil {
				return err
			}
			sum := tok.Numbr() + int64(pe.ID())
			if err := pe.Put(next, tokenSlot, value.NewNumbr(sum)); err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	stats := world.Stats()
	fmt.Printf("ring of %d PEs on %s: %d one-sided puts, %d barrier episodes\n",
		*np, model.Name(), stats.RemotePuts, stats.Barriers/int64(*np))

	if p, ok := model.(*machine.Parallella); ok {
		bytes, msgs := p.Mesh().TotalTraffic()
		core, dir, hot := p.Mesh().HottestLink()
		fmt.Printf("NoC traffic: %d bytes in %d messages; hottest link: core %d %v (%d bytes)\n",
			bytes, msgs, core, dir, hot)
	}
}
