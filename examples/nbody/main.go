// N-body: run the paper's §VI.D parallel 2D n-body program (verbatim
// LOLCODE) on a chosen machine model and compare the interpreter and
// compiled backends — the paper's compiler-vs-interpreter argument made
// measurable.
//
//	go run ./examples/nbody -np 4 -machine parallella
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/machine"
)

func main() {
	np := flag.Int("np", 4, "number of processing elements")
	machineName := flag.String("machine", "smp", "cost model: "+strings.Join(machine.Names(), ", "))
	show := flag.Bool("show", false, "print the particle positions")
	flag.Parse()

	model, err := machine.ByName(*machineName)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := core.ParseFile("testdata/nbody.lol")
	if err != nil {
		log.Fatal(err)
	}

	run := func(backend core.Backend, out io.Writer) (time.Duration, *interp.Result) {
		start := time.Now()
		res, err := prog.Run(core.RunConfig{
			Backend: backend,
			Config: interp.Config{
				NP:          *np,
				Model:       model,
				Seed:        7,
				Stdout:      out,
				GroupOutput: true,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), res
	}

	var interpOut, compileOut strings.Builder
	interpTime, _ := run(core.BackendInterp, &interpOut)
	compileTime, res := run(core.BackendCompile, &compileOut)

	if interpOut.String() != compileOut.String() {
		log.Fatal("backends disagree on n-body output; this is a bug")
	}
	if *show {
		fmt.Print(compileOut.String())
	}

	fmt.Printf("n-body (32 particles/PE, 10 steps) at np=%d on %s:\n", *np, model.Name())
	fmt.Printf("  interpreter backend: %v\n", interpTime)
	fmt.Printf("  compiled backend:    %v  (%.1fx faster)\n",
		compileTime, float64(interpTime)/float64(compileTime))
	fmt.Printf("  remote gets: %d, barriers: %d\n", res.Stats.RemoteGets, res.Stats.Barriers)

	var slowest float64
	for _, ns := range res.SimNanos {
		if ns > slowest {
			slowest = ns
		}
	}
	fmt.Printf("  simulated communication time on %s: %.2f us (slowest PE)\n",
		model.Name(), slowest/1000)
}
