// Monte Carlo pi: a fourth workload in pure parallel LOLCODE, exercising
// the Table III extensions (WHATEVAR random numbers, SQUAR OF) plus the
// one-sided result collection pattern: every PE estimates pi from its own
// random stream, writes its hit count to PE 0's array, and PE 0 combines.
//
//	go run ./examples/montecarlo -np 8 -darts 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
)

const src = `HAI 1.2
I HAS A darts ITZ A NUMBR AN ITZ %d
WE HAS A hits ITZ SRSLY LOTZ A NUMBRS AN THAR IZ %d

I HAS A x ITZ SRSLY A NUMBAR
I HAS A y ITZ SRSLY A NUMBAR
I HAS A insider ITZ A NUMBR AN ITZ 0

IM IN YR throwin UPPIN YR i TIL BOTH SAEM i AN darts
  x R WHATEVAR
  y R WHATEVAR
  SMALLR SUM OF SQUAR OF x AN SQUAR OF y AN 1.0, O RLY?
  YA RLY
    insider R SUM OF insider AN 1
  OIC
IM OUTTA YR throwin

TXT MAH BFF 0, UR hits'Z ME R insider

HUGZ

BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A total ITZ A NUMBR AN ITZ 0
  IM IN YR gatherin UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    total R SUM OF total AN hits'Z k
  IM OUTTA YR gatherin
  I HAS A pi ITZ SRSLY A NUMBAR
  pi R QUOSHUNT OF PRODUKT OF 4.0 AN MAEK total A NUMBAR ...
    AN PRODUKT OF MAEK darts A NUMBAR AN MAEK MAH FRENZ A NUMBAR
  VISIBLE pi
OIC
KTHXBYE`

func main() {
	np := flag.Int("np", 8, "number of processing elements")
	darts := flag.Int("darts", 100_000, "darts per PE")
	flag.Parse()

	prog, err := core.Parse("montecarlo.lol", fmt.Sprintf(src, *darts, *np))
	if err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	if _, err := prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config:  interp.Config{NP: *np, Seed: 2017, Stdout: &out, GroupOutput: true},
	}); err != nil {
		log.Fatal(err)
	}

	est, err := strconv.ParseFloat(strings.TrimSpace(out.String()), 64)
	if err != nil {
		log.Fatalf("unexpected program output %q: %v", out.String(), err)
	}
	fmt.Printf("pi ~= %.2f from %d darts across %d PEs (true pi %.5f, error %.3f)\n",
		est, *np**darts, *np, math.Pi, math.Abs(est-math.Pi))
}
