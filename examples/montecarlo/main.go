// Monte Carlo pi: a fourth workload in pure parallel LOLCODE, exercising
// the Table III extensions (WHATEVAR random numbers, SQUAR OF) plus the
// one-sided result collection pattern: every PE estimates pi from its own
// random stream, writes its hit count to PE 0's array, and PE 0 combines.
//
//	go run ./examples/montecarlo -np 8 -darts 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/interp"
)

func main() {
	np := flag.Int("np", 8, "number of processing elements")
	darts := flag.Int("darts", 100_000, "darts per PE")
	flag.Parse()

	prog, err := core.Parse("montecarlo.lol", experiments.GenMonteCarlo(*darts, *np))
	if err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	if _, err := prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config:  interp.Config{NP: *np, Seed: 2017, Stdout: &out, GroupOutput: true},
	}); err != nil {
		log.Fatal(err)
	}

	est, err := strconv.ParseFloat(strings.TrimSpace(out.String()), 64)
	if err != nil {
		log.Fatalf("unexpected program output %q: %v", out.String(), err)
	}
	fmt.Printf("pi ~= %.2f from %d darts across %d PEs (true pi %.5f, error %.3f)\n",
		est, *np**darts, *np, math.Pi, math.Abs(est-math.Pi))
}
