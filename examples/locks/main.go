// Locks: the paper's §VI.B mutual-exclusion lesson as a measurable
// experiment. Every PE increments a shared counter on PE 0 many times,
// once with the implicit lock (IM SRSLY MESIN WIF) and once without. With
// the lock the count is exact; without it, updates are lost — the output
// shows exactly how many.
//
//	go run ./examples/locks -np 8 -iters 200
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
)

const lockedSrc = `HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
I HAS A iters ITZ A NUMBR AN ITZ %d
HUGZ
TXT MAH BFF 0 AN STUFF
  IM IN YR bump UPPIN YR i TIL BOTH SAEM i AN iters
    IM SRSLY MESIN WIF x
    UR x R SUM OF UR x AN 1
    DUN MESIN WIF x
  IM OUTTA YR bump
TTYL
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE x
OIC
KTHXBYE`

const racySrc = `HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
I HAS A iters ITZ A NUMBR AN ITZ %d
I HAS A tmp ITZ A NUMBR
I HAS A spin ITZ A NUMBR
HUGZ
TXT MAH BFF 0 AN STUFF
  IM IN YR bump UPPIN YR i TIL BOTH SAEM i AN iters
    tmp R UR x
    BTW the classic lost-update window: another PE can read the same
    BTW value of x before this PE writes tmp+1 back.
    IM IN YR stall UPPIN YR w TIL BOTH SAEM w AN 20
      spin R SUM OF spin AN 1
    IM OUTTA YR stall
    UR x R SUM OF tmp AN 1
  IM OUTTA YR bump
TTYL
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE x
OIC
KTHXBYE`

func run(src string, np, iters int) int64 {
	prog, err := core.Parse("locks-demo.lol", fmt.Sprintf(src, iters))
	if err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	if _, err := prog.Run(core.RunConfig{
		Backend: core.BackendCompile,
		Config:  interp.Config{NP: np, Stdout: &out, GroupOutput: true},
	}); err != nil {
		log.Fatal(err)
	}
	var n int64
	if _, err := fmt.Sscan(strings.TrimSpace(out.String()), &n); err != nil {
		log.Fatalf("unexpected program output %q: %v", out.String(), err)
	}
	return n
}

func main() {
	np := flag.Int("np", 8, "number of processing elements")
	iters := flag.Int("iters", 200, "increments per PE")
	flag.Parse()

	want := int64(*np) * int64(*iters)
	locked := run(lockedSrc, *np, *iters)
	racy := run(racySrc, *np, *iters)

	fmt.Printf("%d PEs x %d increments (expected total %d)\n", *np, *iters, want)
	fmt.Printf("  with IM SRSLY MESIN WIF: %6d  (exact: %v)\n", locked, locked == want)
	fmt.Printf("  without the lock:        %6d  (lost %d updates, %.1f%%)\n",
		racy, want-racy, 100*float64(want-racy)/float64(want))
	if locked != want {
		log.Fatal("locked counter was not exact; mutual exclusion is broken")
	}
}
